// Package apf is a Go implementation of Adaptive Parameter Freezing (APF)
// — the communication-efficient federated-learning scheme of Chen et al.,
// "Communication-Efficient Federated Learning with Adaptive Parameter
// Freezing" (IEEE ICDCS 2021; extended in IEEE TPDS 2023) — together with
// everything needed to use and evaluate it: a from-scratch neural-network
// substrate, a federated-learning engine, competing compression schemes
// (Gaia, CMFL, fp16 quantization), a real TCP transport, and the paper's
// full experiment suite.
//
// This file is the library's public API: a curated facade over the
// implementation packages. The typical flow is
//
//	ds := apf.SynthImages(apf.ImageConfig{...})                  // or your own Dataset
//	parts := apf.PartitionDirichlet(rng, ds.Labels, 10, 50, 1.0) // non-IID split
//	engine := apf.NewEngine(cfg, model, optimizer, apf.ManagerFactoryFor(apfCfg), ds, parts, test)
//	result := engine.Run()
//
// where apfCfg configures the APF manager (stability threshold, check
// frequency, AIMD policy, APF#/APF++ random freezing). See the runnable
// programs under examples/ and the experiment harness in cmd/apfbench.
package apf

import (
	"apf/internal/compress"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/models"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/perturb"
	"apf/internal/tensor"
	"apf/internal/transport"
)

// ---- The APF manager (the paper's contribution) ----

type (
	// Manager is the per-client APF synchronization manager: it
	// identifies stable parameters by effective perturbation, freezes
	// them for adaptively controlled periods, and elides them from both
	// synchronization phases.
	Manager = core.Manager
	// ManagerConfig configures a Manager; zero fields take the paper's
	// defaults (threshold 0.05, EMA α 0.99, checks every 5 rounds,
	// threshold decay at 80%, AIMD policy).
	ManagerConfig = core.Config
	// FreezePolicy controls freezing-period evolution across checks.
	FreezePolicy = core.FreezePolicy
	// AIMD is the paper's TCP-style additively-increase,
	// multiplicatively-decrease policy.
	AIMD = core.AIMD
	// PureAdditive is the Fig. 15 ablation policy.
	PureAdditive = core.PureAdditive
	// PureMultiplicative is the Fig. 15 ablation policy.
	PureMultiplicative = core.PureMultiplicative
	// Fixed freezes for a constant number of checks (Fig. 15).
	Fixed = core.Fixed
	// Permanent never unfreezes (the §4.1 strawman).
	Permanent = core.Permanent
	// RandomFreeze configures the APF# / APF++ extensions.
	RandomFreeze = core.RandomFreeze
	// RandomFreezeMode selects the extension behaviour.
	RandomFreezeMode = core.RandomFreezeMode
)

// Random-freezing modes re-exported from the implementation.
const (
	// RandomOff disables random freezing (standard APF).
	RandomOff = core.RandomOff
	// RandomFixed is APF#: freeze unstable scalars for one round with a
	// fixed probability.
	RandomFixed = core.RandomFixed
	// RandomGrowing is APF++: probability and length grow with the round
	// number.
	RandomGrowing = core.RandomGrowing
)

// MaskServer computes freezing masks centrally (§9's server-side
// placement for compute-constrained clients); MaskClient is its thin
// per-client counterpart. The two placements produce bit-identical masks.
type (
	MaskServer = core.MaskServer
	MaskClient = core.MaskClient
)

// NewManager constructs an APF manager.
func NewManager(cfg ManagerConfig) *Manager { return core.NewManager(cfg) }

// NewMaskServer constructs the central mask computer (§9 placement).
func NewMaskServer(cfg ManagerConfig) *MaskServer { return core.NewMaskServer(cfg) }

// NewMaskClient constructs a thin client attached to a MaskServer.
func NewMaskClient(srv *MaskServer, bytesPerValue int) *MaskClient {
	return core.NewMaskClient(srv, bytesPerValue)
}

// ManagerFactoryFor adapts a ManagerConfig into the engine's per-client
// factory; the flat model dimension is filled in per client.
func ManagerFactoryFor(cfg ManagerConfig) ManagerFactory {
	return func(clientID, dim int) SyncManager {
		c := cfg
		c.Dim = dim
		return core.NewManager(c)
	}
}

// ---- Federated-learning engine ----

type (
	// Engine simulates a federated cluster in-process with exact byte
	// accounting.
	Engine = fl.Engine
	// EngineConfig configures a training run (rounds, Fs, FedProx μ,
	// stragglers, ...).
	EngineConfig = fl.Config
	// Result aggregates a run's metrics.
	Result = fl.Result
	// RoundMetrics records one communication round.
	RoundMetrics = fl.RoundMetrics
	// SyncManager is the pluggable per-client synchronization scheme.
	SyncManager = fl.SyncManager
	// ModelFactory builds one model replica.
	ModelFactory = fl.ModelFactory
	// OptimizerFactory builds a client-local optimizer.
	OptimizerFactory = fl.OptimizerFactory
	// ManagerFactory builds the SyncManager for one client.
	ManagerFactory = fl.ManagerFactory
	// PassthroughManager is the vanilla full-model-sync baseline.
	PassthroughManager = fl.PassthroughManager
)

// NewEngine assembles a federated run; parts[i] lists the training-sample
// indices owned by client i.
func NewEngine(cfg EngineConfig, model ModelFactory, optimizer OptimizerFactory, manager ManagerFactory, train *Dataset, parts [][]int, test *Dataset) *Engine {
	return fl.New(cfg, model, optimizer, manager, train, parts, test)
}

// NewPassthroughManager returns the no-compression baseline manager.
func NewPassthroughManager(bytesPerValue int) *PassthroughManager {
	return fl.NewPassthroughManager(bytesPerValue)
}

// EvaluateModel scores net on ds in batches.
func EvaluateModel(net *Network, ds *Dataset, batch int) (loss, acc float64) {
	return fl.EvaluateModel(net, ds, batch)
}

// ---- Competing compression schemes ----

type (
	// Gaia is the relative-significance sparsification baseline.
	Gaia = compress.Gaia
	// CMFL is the sign-relevance gating baseline.
	CMFL = compress.CMFL
	// PartialSync is the §4.1 strawman that stops syncing stable scalars.
	PartialSync = compress.PartialSync
	// Quantized wraps any SyncManager with fp16 transmission.
	Quantized = compress.Quantized
	// TopK is the magnitude-based sparsification baseline.
	TopK = compress.TopK
	// StochasticQuantized wraps any SyncManager with QSGD-style
	// stochastic uniform quantization.
	StochasticQuantized = compress.StochasticQuantized
	// DPNoise wraps any SyncManager with Gaussian differential-privacy
	// noise on uploads (§9).
	DPNoise = compress.DPNoise
)

// NewGaia constructs the Gaia baseline.
func NewGaia(dim int, threshold float64, decayEvery, bytesPerValue int) *Gaia {
	return compress.NewGaia(dim, threshold, decayEvery, bytesPerValue)
}

// NewCMFL constructs the CMFL baseline.
func NewCMFL(dim int, threshold, decayPerRound float64, bytesPerValue int) *CMFL {
	return compress.NewCMFL(dim, threshold, decayPerRound, bytesPerValue)
}

// NewPartialSync constructs the partial-synchronization strawman.
func NewPartialSync(dim, checkEveryRounds int, threshold, emaAlpha float64, bytesPerValue int) *PartialSync {
	return compress.NewPartialSync(dim, checkEveryRounds, threshold, emaAlpha, bytesPerValue)
}

// NewQuantized wraps inner with fp16 transmission (the paper's APF+Q).
func NewQuantized(inner SyncManager) *Quantized { return compress.NewQuantized(inner) }

// NewTopK constructs the top-k sparsification baseline.
func NewTopK(dim int, fraction float64, bytesPerValue int) *TopK {
	return compress.NewTopK(dim, fraction, bytesPerValue)
}

// NewStochasticQuantized wraps inner with `levels`-level stochastic
// quantization (1 level reproduces TernGrad's {-1,0,1} grid).
func NewStochasticQuantized(inner SyncManager, levels int, clientSeed, sharedSeed int64) *StochasticQuantized {
	return compress.NewStochasticQuantized(inner, levels, clientSeed, sharedSeed)
}

// NewDPNoise wraps inner with Gaussian DP noise of the given sigma.
func NewDPNoise(inner SyncManager, sigma float64, clientSeed int64) *DPNoise {
	return compress.NewDPNoise(inner, sigma, clientSeed)
}

// ---- Neural-network substrate ----

type (
	// Network is a layer stack with a softmax-cross-entropy head.
	Network = nn.Network
	// Layer is one differentiable stage.
	Layer = nn.Layer
	// Param is one learnable tensor with its gradient.
	Param = nn.Param
	// Optimizer updates parameters from gradients.
	Optimizer = opt.Optimizer
	// ResNetConfig selects residual-network depth and width.
	ResNetConfig = models.ResNetConfig
	// NormFactory builds normalization layers for residual blocks.
	NormFactory = nn.NormFactory
	// ManagerState is a serializable APF manager snapshot for
	// checkpoint/restart.
	ManagerState = core.State
)

// RestoreManager reconstructs an APF manager from a snapshot taken with
// Manager.Snapshot and the original configuration.
func RestoreManager(cfg ManagerConfig, s *ManagerState) (*Manager, error) {
	return core.Restore(cfg, s)
}

// Tensor is the dense row-major array type used throughout the library.
type Tensor = tensor.Tensor

// NewNetwork wraps layers with a classification head.
func NewNetwork(layers ...Layer) *Network { return nn.NewNetwork(layers...) }

// Layer constructors for building custom architectures.
var (
	// NewDense builds a fully connected layer.
	NewDense = nn.NewDense
	// NewConv2D builds a 2-D convolution.
	NewConv2D = nn.NewConv2D
	// NewMaxPool2D builds a max-pooling layer.
	NewMaxPool2D = nn.NewMaxPool2D
	// NewAvgPool2D builds a windowed average-pooling layer.
	NewAvgPool2D = nn.NewAvgPool2D
	// NewGlobalAvgPool2D builds a global average pool.
	NewGlobalAvgPool2D = nn.NewGlobalAvgPool2D
	// NewReLU / NewTanh / NewSigmoid build activations.
	NewReLU    = nn.NewReLU
	NewTanh    = nn.NewTanh
	NewSigmoid = nn.NewSigmoid
	// NewFlatten reshapes [N, ...] inputs to [N, rest].
	NewFlatten = nn.NewFlatten
	// NewDropout builds inverted dropout.
	NewDropout = nn.NewDropout
	// NewBatchNorm2D builds channelwise batch normalization.
	NewBatchNorm2D = nn.NewBatchNorm2D
	// NewGroupNorm2D builds group normalization (the FL-friendly choice).
	NewGroupNorm2D = nn.NewGroupNorm2D
	// GroupNormFactory builds a NormFactory for residual blocks.
	GroupNormFactory = nn.GroupNormFactory
	// NewBasicBlockNorm builds a residual block with a chosen norm.
	NewBasicBlockNorm = nn.NewBasicBlockNorm
	// NewBasicBlock builds a ResNet basic residual block.
	NewBasicBlock = nn.NewBasicBlock
	// NewLSTM builds one recurrent layer with BPTT.
	NewLSTM = nn.NewLSTM
	// NewLastStep selects the final time step of a sequence.
	NewLastStep = nn.NewLastStep
)

// Model constructors (see internal/models for details).
var (
	// LeNet5 builds the classic LeNet-5 CNN.
	LeNet5 = models.LeNet5
	// ResNet builds a BasicBlock residual network.
	ResNet = models.ResNet
	// ResNet18Config is the standard ResNet-18 geometry.
	ResNet18Config = models.ResNet18Config
	// ResNet8Config is a CPU-scale residual geometry.
	ResNet8Config = models.ResNet8Config
	// VGG builds a VGG-style plain CNN (Fig. 9's second model family).
	VGG = models.VGG
	// KWSLSTM builds the keyword-spotting LSTM stack.
	KWSLSTM = models.KWSLSTM
	// MLP builds a plain fully connected network.
	MLP = models.MLP
)

// Optimizer constructors.
var (
	// NewSGD builds SGD with momentum and weight decay.
	NewSGD = opt.NewSGD
	// NewAdam builds Adam with weight decay.
	NewAdam = opt.NewAdam
)

// ---- Datasets and non-IID partitioning ----

type (
	// Dataset is an in-memory classification dataset.
	Dataset = data.Dataset
	// ImageConfig parameterizes SynthImages.
	ImageConfig = data.ImageConfig
	// SequenceConfig parameterizes SynthSequences.
	SequenceConfig = data.SequenceConfig
)

// Data generation and partitioning.
var (
	// SynthImages generates a class-conditional image task.
	SynthImages = data.SynthImages
	// SynthSequences generates a keyword-spotting-like sequence task.
	SynthSequences = data.SynthSequences
	// PartitionIID deals samples round-robin.
	PartitionIID = data.PartitionIID
	// PartitionDirichlet splits classes by Dirichlet(α) shares (§7.1).
	PartitionDirichlet = data.PartitionDirichlet
	// PartitionByClass gives each client k distinct classes (§7.3).
	PartitionByClass = data.PartitionByClass
	// LoadIDX / LoadIDXFile / LoadIDXDataset read MNIST-style IDX data.
	LoadIDX        = data.LoadIDX
	LoadIDXFile    = data.LoadIDXFile
	LoadIDXDataset = data.LoadIDXDataset
	// LoadCSV reads a numeric CSV feature table.
	LoadCSV = data.LoadCSV
)

// ---- Effective perturbation (Eq. 1 / Eq. 17) ----

type (
	// EMATracker is the memory-efficient effective-perturbation tracker
	// used by the manager.
	EMATracker = perturb.EMATracker
	// WindowTracker is the exact windowed form for analyses.
	WindowTracker = perturb.WindowTracker
)

// Perturbation tracker constructors.
var (
	// NewEMATracker constructs an EMA tracker over dim scalars.
	NewEMATracker = perturb.NewEMATracker
	// NewWindowTracker constructs a windowed tracker.
	NewWindowTracker = perturb.NewWindowTracker
)

// ---- Real TCP deployment ----

type (
	// Server is the TCP aggregation server.
	Server = transport.Server
	// ServerConfig configures a Server.
	ServerConfig = transport.ServerConfig
	// ClientConfig configures a TCP trainer client.
	ClientConfig = transport.ClientConfig
	// ClientResult summarizes one TCP client run.
	ClientResult = transport.ClientResult
)

// TCP deployment entry points.
var (
	// NewServer binds the aggregation endpoint.
	NewServer = transport.NewServer
	// RunClient connects and trains until the announced rounds finish.
	RunClient = transport.RunClient
)
