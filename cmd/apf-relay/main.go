// Command apf-relay runs one edge pre-aggregator of the two-tier
// topology. Downward it is a full aggregation server — clients connect
// with apf-client exactly as they would to a flat apf-server, with the
// same codec negotiation, sanitization, durability, and fault-tolerance
// options. Upward it joins an apf-server started with -relays, streams
// one exact fixed-point partial sum per round, and re-broadcasts the
// root's committed aggregate, so the training trajectory is bit-identical
// to a flat deployment over the same clients.
//
// The run geometry (model dimension, rounds, initial weights) comes from
// the root's welcome: only the root needs -model and -seed.
//
// Example (one root, two relays, two clients each):
//
//	apf-server -addr :7070 -relays 2 -rounds 50 -model lenet -seed 42
//	apf-relay  -addr :7171 -upstream host:7070 -name edge-a -clients 2
//	apf-relay  -addr :7272 -upstream host:7070 -name edge-b -clients 2
//	apf-client -addr host:7171 -model lenet -seed 42 -shard 0 -shards 4 -scheme apf
//	...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apf/internal/core"
	"apf/internal/metrics"
	"apf/internal/telemetry"
	"apf/internal/transport"
	"apf/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apf-relay:", err)
		os.Exit(1)
	}
}

// run parses flags and serves one relay session.
func run(args []string) error {
	fs := flag.NewFlagSet("apf-relay", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":7171", "downward listen address for client sessions")
		upstream   = fs.String("upstream", "127.0.0.1:7070", "root coordinator address (an apf-server started with -relays)")
		name       = fs.String("name", "relay", "relay name, also the upstream session key (must be unique per relay)")
		clients    = fs.Int("clients", 3, "number of clients this relay terminates")
		ioTimeout  = fs.Duration("io-timeout", 30*time.Second, "per-message network deadline on both faces; upstream it must exceed the root's full round time")
		deadline   = fs.Duration("deadline", 0, "downward round deadline enabling partial aggregation and session resume (0 = strict barrier)")
		minClients = fs.Int("min-clients", 1, "minimum updates before a round deadline may aggregate")
		ckptDir    = fs.String("checkpoint-dir", "", "directory for the downward face's durable snapshot + WAL (empty = not durable)")
		snapEvery  = fs.Int("snapshot-every", 5, "rotate the checkpoint snapshot every K committed rounds")
		histRounds = fs.Int("history-rounds", 0, "cap the downward face's aggregate replay history to this many rounds, bounding relay memory; clients absent past the cap catch up via sketch reconciliation or a snapshot instead of replay (0 = unbounded)")
		shadow     = fs.Bool("shadow", false, "maintain a shadow APF replica of the client trajectory (requires clients with -scheme apf and the same -seed), enabling stateful O(diff) sketch catch-up for clients absent past -history-rounds")
		maxNorm    = fs.Float64("max-norm-mult", 0, "arm this edge's update sanitization pipeline, striking updates whose L2 norm exceeds this multiple of the rolling median (0 = off); in a hierarchy per-client defenses live on the relays, never the root")
		cosFloor   = fs.Float64("cosine-floor", 0, "with sanitization armed, also strike updates whose cosine against the decayed reference direction falls below this floor (0 = direction gate off)")
		roundNorm  = fs.Float64("round-norm-mult", 0, "with sanitization armed, also strike accepted updates after the round when their norm exceeds this multiple of the round median (0 = off)")
		codec      = fs.String("codec", "dense", "strongest payload codec to offer client sessions: dense | sparse | sparse-q16 (with a q16 edge, start the root with the same -codec so its commits stay lossless)")
		retries    = fs.Int("retries", 3, "upstream reconnect attempts after a connection failure")
		seed       = fs.Int64("seed", 42, "seed for the upstream backoff jitter stream")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = disabled)")
		logLevel    = fs.String("log-level", "warn", "log verbosity: debug | info | warn | error")
		logFormat   = fs.String("log-format", "text", "log output format: text | json")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("apf-relay", telemetry.ReadBuildInfo().String())
		return nil
	}
	if *ioTimeout <= 0 {
		return fmt.Errorf("-io-timeout must be positive, got %v", *ioTimeout)
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	format, err := telemetry.ParseFormat(*logFormat)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, format)

	// The registry only exists when something serves it; with -metrics-addr
	// unset every instrumented path below degrades to nil-safe no-ops.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New()
		telemetry.RegisterBuildInfo(reg)
	}

	var validator *transport.ValidatorConfig
	if *maxNorm > 0 {
		validator = &transport.ValidatorConfig{
			MaxNormMult:   *maxNorm,
			CosineFloor:   *cosFloor,
			RoundNormMult: *roundNorm,
		}
	} else if *cosFloor != 0 || *roundNorm != 0 {
		return fmt.Errorf("-cosine-floor and -round-norm-mult need -max-norm-mult to arm sanitization")
	}
	maxCodec, err := wire.ParseCodec(*codec)
	if err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	if *histRounds < 0 {
		return fmt.Errorf("-history-rounds must be non-negative, got %d", *histRounds)
	}
	var shadowCfg *core.Config
	if *shadow {
		// Mirror apf-client's -scheme apf manager exactly: the shadow is a
		// deterministic replica of the client trajectory, so the configs
		// (and the shared seed) must match bit for bit.
		shadowCfg = &core.Config{CheckEveryRounds: 2, Threshold: 0.1, EMAAlpha: 0.85, Seed: *seed}
	}

	rel, err := transport.NewRelay(transport.RelayConfig{
		Addr:          *addr,
		Upstream:      *upstream,
		Name:          *name,
		SessionKey:    *name,
		NumClients:    *clients,
		IOTimeout:     *ioTimeout,
		RoundDeadline: *deadline,
		MinClients:    *minClients,
		Codec:         maxCodec,
		CheckpointDir: *ckptDir,
		SnapshotEvery: *snapEvery,
		HistoryRounds: *histRounds,
		Shadow:        shadowCfg,
		Validator:     validator,
		MaxRetries:    *retries,
		Seed:          *seed,
		Metrics:       reg,
		Log:           logger,
	})
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		h := telemetry.Handler(reg, telemetry.HealthFunc(func() []any {
			hs := []any{"relay", *name, "upstream", *upstream}
			if srv := rel.Server(); srv != nil {
				hs = append(hs,
					"round", srv.Round(),
					"committed_rounds", srv.CommittedRounds(),
					"recovered", srv.Recovered(),
				)
			}
			return hs
		}))
		mln, err := telemetry.Serve(*metricsAddr, h, func(err error) {
			logger.Error("observability endpoint failed", "err", err)
		})
		if err != nil {
			return err
		}
		defer mln.Close()
		fmt.Printf("apf-relay: observability on http://%s/metrics\n", mln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("apf-relay: %s on %s — %d client(s) downward, root at %s\n",
		*name, rel.Addr(), *clients, *upstream)
	if _, err := rel.Run(ctx); err != nil {
		return err
	}
	upRead, upWritten := rel.UpstreamBytes()
	fmt.Printf("apf-relay: done — upstream bytes read %s, written %s\n",
		metrics.FormatBytes(upRead), metrics.FormatBytes(upWritten))
	if srv := rel.Server(); srv != nil {
		read, sent := srv.WireBytes()
		fmt.Printf("apf-relay: downward wire bytes received %s, sent %s\n",
			metrics.FormatBytes(read), metrics.FormatBytes(sent))
		if n := srv.PartialRounds(); n > 0 {
			fmt.Printf("apf-relay: %d round(s) aggregated without full participation\n", n)
		}
		if n := srv.RejectedUpdates(); n > 0 {
			fmt.Printf("apf-relay: %d update(s) rejected by sanitization\n", n)
		}
		if v := srv.Validator(); v != nil && v.QuarantinedCount() > 0 {
			fmt.Printf("apf-relay: %d client(s) quarantined\n", v.QuarantinedCount())
		}
	}
	return nil
}
