package main

import (
	"testing"
)

func TestRelayRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"zero clients", []string{"-clients", "0"}},
		{"empty upstream", []string{"-upstream", ""}},
		{"bad address", []string{"-addr", "256.256.256.256:99999"}},
		{"zero io timeout", []string{"-io-timeout", "0s"}},
		{"bad codec", []string{"-codec", "zip"}},
		{"orphan cosine floor", []string{"-cosine-floor", "0.5"}},
		{"bad log level", []string{"-log-level", "loud"}},
		{"bad log format", []string{"-log-format", "xml"}},
		{"bad metrics address", []string{"-addr", "127.0.0.1:0", "-metrics-addr", "256.256.256.256:99999"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRelayVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
