package main

import (
	"fmt"
	"os"

	"apf/internal/scenario"
)

// runScenarios executes a scenario matrix over the real transport stack,
// writes BENCH_scenarios.json to path, prints a per-cell summary, and
// fails (non-zero exit) when any CI gate is violated — the command is the
// regression check, not just the report generator.
func runScenarios(path, matrix string, seed int64, trials int) error {
	var cells []scenario.Config
	switch matrix {
	case "full":
		// The full benchmark is the defended matrix plus the defense
		// ablation tiers (norm-only → +cosine/review → +trimmed), so the
		// report both gates the defended TPRs and shows what each layer
		// buys over the last.
		cells = scenario.DefaultMatrix(seed, trials)
		cells = append(cells, scenario.DefenseMatrix(seed, trials)...)
	case "smoke":
		cells = scenario.SmokeMatrix(seed)
	default:
		return fmt.Errorf("unknown scenario matrix %q (want full or smoke)", matrix)
	}

	// Fail fast on an unwritable path before spending minutes on trials.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rep, err := scenario.RunMatrix(matrix, cells, seed, scenario.DefaultGates(), func(name string) {
		fmt.Fprintf(os.Stderr, "scenario: %s\n", name)
	})
	if err != nil {
		return err
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}

	fmt.Printf("== scenarios: %s matrix, %d cells, seed %d ==\n\n", matrix, len(rep.Cells), seed)
	fmt.Printf("%-34s %7s %6s %6s %6s %10s\n", "cell", "acc", "TPR", "FPR", "TTQ", "wireB")
	for _, c := range rep.Cells {
		fmt.Printf("%-34s %7.3f %6s %6s %6s %10.0f\n",
			c.Cell.Name, c.FinalAccMean,
			rate(c.TruePositiveRate), rate(c.FalsePositiveRate), rate(c.TimeToQuarantineMean),
			c.WireMean)
	}
	fmt.Printf("\nwrote %s\n", path)

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "gate violation:", v)
		}
		return fmt.Errorf("%d scenario gate violation(s)", len(rep.Violations))
	}
	fmt.Println("all scenario gates passed")
	return nil
}

// rate renders a detection metric, eliding the -1 "undefined" sentinel.
func rate(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
