package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"apf/internal/swarm"
)

// Scaling-benchmark geometry: a root over 32 edge relays at the paper's
// mid-size model dimension, measured at 100k and 1M simulated clients —
// a 10x population growth over which the root's per-round work must stay
// flat.
const (
	scalebenchRelays = 32
	scalebenchDim    = 256
	scalebenchRounds = 3
	scalebenchSeed   = 17
)

// scalebenchClients are the measured population scales, ascending.
var scalebenchClients = []int{100_000, 1_000_000}

// scalebenchReport is the BENCH_scale.json document. The flatness gate is
// evaluated on the deterministic quantities (boundary bytes and frames per
// round); root CPU is wall-clock and carries scheduler noise, so it gets a
// generous sanity bound that still rules out O(clients) root work.
type scalebenchReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`

	Relays int `json:"relays"`
	Dim    int `json:"dim"`
	Rounds int `json:"rounds"`

	Runs []*swarm.Result `json:"runs"`

	// ClientGrowth is the population ratio between the last and first run;
	// RootBytesRatio/RootCPURatio are the corresponding root per-round work
	// ratios. Flat requires bytes ≤ 1.5x and CPU ≤ 3x across that growth.
	ClientGrowth   float64 `json:"client_growth"`
	RootBytesRatio float64 `json:"root_bytes_ratio"`
	RootCPURatio   float64 `json:"root_cpu_ratio"`
	EdgeCPURatio   float64 `json:"edge_cpu_ratio"`
	Flat           bool    `json:"flat"`
}

// runScalebench simulates the two-tier topology at each population scale,
// writes the report, and fails when the root's per-round work grows with
// the client count — the hierarchy's core claim.
func runScalebench(path string) error {
	// Fail fast on an unwritable path before spending time measuring.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rep := scalebenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Relays:     scalebenchRelays,
		Dim:        scalebenchDim,
		Rounds:     scalebenchRounds,
		Note: "two-tier discrete-event simulation through the real aggregation and wire-codec paths; " +
			"root work must stay flat as clients grow 10x (bytes ratio <= 1.5 hard, CPU ratio <= 3 as a noise-tolerant sanity bound); " +
			"oracle_match certifies bit-identity with a flat aggregation over all clients",
	}
	for _, clients := range scalebenchClients {
		fmt.Fprintf(os.Stderr, "scalebench: %d clients over %d relays (dim %d, %d rounds)\n",
			clients, scalebenchRelays, scalebenchDim, scalebenchRounds)
		res, err := swarm.Run(swarm.Config{
			Clients: clients,
			Relays:  scalebenchRelays,
			Dim:     scalebenchDim,
			Rounds:  scalebenchRounds,
			Seed:    scalebenchSeed,
			Oracle:  true,
		})
		if err != nil {
			return err
		}
		if !res.OracleMatch {
			return fmt.Errorf("scalebench: %d-client two-tier trajectory diverged from the flat oracle", clients)
		}
		fmt.Fprintf(os.Stderr, "scalebench: %d clients — root %.0f B/round, %.3f ms root CPU/round, edge %.2f s, wall %.2f s\n",
			clients, res.RootBytesPerRound, 1e3*res.RootCPUPerRound, res.EdgeCPUSeconds, res.WallSeconds)
		rep.Runs = append(rep.Runs, res)
	}

	first, last := rep.Runs[0], rep.Runs[len(rep.Runs)-1]
	rep.ClientGrowth = float64(last.Clients) / float64(first.Clients)
	rep.RootBytesRatio = last.RootBytesPerRound / first.RootBytesPerRound
	rep.RootCPURatio = last.RootCPUPerRound / first.RootCPUPerRound
	rep.EdgeCPURatio = last.EdgeCPUSeconds / first.EdgeCPUSeconds
	rep.Flat = rep.RootBytesRatio <= 1.5 && rep.RootCPURatio <= 3

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("scalebench: %s written — %.0fx clients, root bytes %.3fx, root CPU %.2fx, edge CPU %.1fx\n",
		path, rep.ClientGrowth, rep.RootBytesRatio, rep.RootCPURatio, rep.EdgeCPURatio)
	if !rep.Flat {
		return fmt.Errorf("scalebench: root per-round work is not flat across %.0fx client growth (bytes %.3fx, cpu %.2fx)",
			rep.ClientGrowth, rep.RootBytesRatio, rep.RootCPURatio)
	}
	return nil
}
