// Command apfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	apfbench -list
//	apfbench -exp fig11                 # quick scale (seconds)
//	apfbench -exp table2 -scale full    # paper-like scale (hours on CPU)
//	apfbench -exp all -seed 7
//	apfbench -hotpath BENCH_hotpath.json  # hot-path perf report
//	apfbench -wire BENCH_wire.json        # gob vs wire broadcast report
//	apfbench -telemetry BENCH_telemetry.json  # telemetry overhead report
//	apfbench -scenarios BENCH_scenarios.json  # adversary × network × data matrix
//	apfbench -scenarios smoke.json -matrix smoke  # CI smoke subset
//	apfbench -scaling BENCH_scale.json        # two-tier topology at 100k–1M clients
//	apfbench -resume BENCH_resume.json        # snapshot vs sketch catch-up cost
//
// Output is a textual report per experiment: markdown tables for the
// paper's tables and per-series digests (+ optional TSV dumps via -tsv)
// for its figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"apf/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apfbench:", err)
		os.Exit(1)
	}
}

// run parses flags and executes the selected experiments.
func run(args []string) error {
	fs := flag.NewFlagSet("apfbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment id (see -list), or 'all'")
		scale   = fs.String("scale", "quick", "experiment scale: quick | full")
		seed    = fs.Int64("seed", 1, "base RNG seed")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		tsv     = fs.String("tsv", "", "directory to dump figure series as TSV files")
		plot    = fs.Bool("plot", false, "render figures as terminal plots")
		hotpath = fs.String("hotpath", "", "measure the APF hot-path benchmarks and write the JSON report to this file")
		wirerep = fs.String("wire", "", "measure gob vs wire-format broadcast cost and write the JSON report to this file")
		telem   = fs.String("telemetry", "", "measure the telemetry observer's hot-path overhead and write the JSON report to this file")
		scen    = fs.String("scenarios", "", "run the adversary × network × data scenario matrix and write the JSON report to this file")
		scaling = fs.String("scaling", "", "simulate the two-tier topology at 100k and 1M clients and write the JSON scaling report to this file (fails unless root work stays flat)")
		resume  = fs.String("resume", "", "measure snapshot vs sketch catch-up cost for resuming clients and write the JSON report to this file (fails unless snapshot is flat in absence and sketch beats it)")
		matrix  = fs.String("matrix", "full", "scenario matrix: full | smoke (with -scenarios)")
		trials  = fs.Int("trials", 2, "trials per scenario cell (with -scenarios, full matrix only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *hotpath != "" {
		return runHotpath(*hotpath)
	}
	if *wirerep != "" {
		return runWirebench(*wirerep)
	}
	if *telem != "" {
		return runTelemetrybench(*telem)
	}
	if *scen != "" {
		return runScenarios(*scen, *matrix, *seed, *trials)
	}
	if *scaling != "" {
		return runScalebench(*scaling)
	}
	if *resume != "" {
		return runResumebench(*resume)
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("missing -exp (use -list to see the available ids)")
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scale)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, ok := experiments.Get(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		out, err := runner(sc, *seed)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := out.Render(os.Stdout); err != nil {
			return err
		}
		if *plot {
			for _, fig := range out.Figures {
				if p := fig.ASCIIPlot(72, 14); p != "" {
					fmt.Println(p)
				}
			}
		}
		fmt.Printf("(%s at %s scale in %s)\n\n", id, sc, time.Since(start).Round(time.Millisecond))

		if *tsv != "" {
			if err := dumpTSV(*tsv, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// dumpTSV writes each figure of out as a TSV file under dir.
func dumpTSV(dir string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, fig := range out.Figures {
		name := fmt.Sprintf("%s_%d.tsv", out.ID, i)
		name = strings.ReplaceAll(name, " ", "_")
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fig.WriteTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
