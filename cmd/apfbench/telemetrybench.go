package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"apf/internal/core"
	"apf/internal/hotbench"
	"apf/internal/telemetry"
	"apf/internal/telemetry/hooks"
)

// telemetryEntry is one benchmark case in BENCH_telemetry.json: the same
// steady-state manager round measured without and with a live telemetry
// registry observing it.
type telemetryEntry struct {
	Name             string  `json:"name"`
	NopNsPerOp       float64 `json:"nop_ns_per_op"`
	TelemetryNsPerOp float64 `json:"telemetry_ns_per_op"`
	OverheadPct      float64 `json:"overhead_pct"`
	TelemetryAllocs  int64   `json:"telemetry_allocs_per_op"`
}

// telemetryReport is the BENCH_telemetry.json document.
type telemetryReport struct {
	GoVersion      string           `json:"go_version"`
	GOMAXPROCS     int              `json:"gomaxprocs"`
	Note           string           `json:"note"`
	ManagerRound   []telemetryEntry `json:"manager_round"`
	MaxOverheadPct float64          `json:"max_overhead_pct"`
}

// runTelemetrybench measures the full hotbench grid and writes the report
// to path. The acceptance bar tracked across PRs: every case stays
// allocation-free under instrumentation and the worst-case overhead stays
// within single-digit percent (noise-dominated — the observer is a handful
// of atomic stores per round).
func runTelemetrybench(path string) error {
	return telemetryReportFor(path, hotbench.Cases())
}

// telemetryReportFor measures the given cases (tests use a reduced grid).
func telemetryReportFor(path string, cases []hotbench.Case) error {
	// Fail fast on an unwritable path before spending minutes measuring.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rep := telemetryReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       "overhead_pct compares the steady-state manager round with a live telemetry registry attached against the identical uninstrumented fixture; fastest of 4 interleaved runs per arm",
	}
	for _, c := range cases {
		name := fmt.Sprintf("dim=%d/frozen=%.2f", c.Dim, c.Frozen)
		fmt.Fprintf(os.Stderr, "telemetry: ManagerRound/%s\n", name)

		// Interleave the arms and keep each arm's fastest run: drift on a
		// shared machine (frequency scaling, cache pressure from neighbours)
		// dwarfs the effect under test, and interleaving exposes both arms
		// to the same drift.
		var nop, tel roundMeasurement
		for run := 0; run < measureRuns; run++ {
			n := measureRound(c, nil)
			o := measureRound(c, func() core.Observer { return hooks.Manager(telemetry.New()) })
			if run == 0 || n.nsPerOp < nop.nsPerOp {
				nop = n
			}
			if run == 0 || o.nsPerOp < tel.nsPerOp {
				tel = o
			}
		}

		e := telemetryEntry{
			Name:             name,
			NopNsPerOp:       nop.nsPerOp,
			TelemetryNsPerOp: tel.nsPerOp,
			OverheadPct:      (tel.nsPerOp - nop.nsPerOp) / nop.nsPerOp * 100,
			TelemetryAllocs:  tel.allocs,
		}
		if e.OverheadPct > rep.MaxOverheadPct {
			rep.MaxOverheadPct = e.OverheadPct
		}
		rep.ManagerRound = append(rep.ManagerRound, e)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "telemetry: wrote %s (max overhead %.2f%%)\n", path, rep.MaxOverheadPct)
	return nil
}

// measureRuns is how many interleaved (nop, telemetry) measurement pairs
// each case gets; the reported number per arm is the fastest run.
const measureRuns = 4

// roundMeasurement is one benchmark run's result.
type roundMeasurement struct {
	nsPerOp float64
	allocs  int64
}

// measureRound benchmarks the steady-state round once over a fresh
// fixture — observed when newObs is non-nil.
func measureRound(c hotbench.Case, newObs func() core.Observer) roundMeasurement {
	var obs core.Observer
	if newObs != nil {
		obs = newObs()
	}
	m, x, start := hotbench.NewManagerAtObserved(c.Dim, c.Frozen, obs)
	hotbench.Round(m, start, x) // warm scratch buffers
	offset := start + 1
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hotbench.Round(m, offset+i, x)
		}
		offset += b.N
	})
	return roundMeasurement{nsPerOp: float64(r.NsPerOp()), allocs: r.AllocsPerOp()}
}
