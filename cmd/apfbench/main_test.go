package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no experiment", nil},
		{"unknown experiment", []string{"-exp", "fig99"}},
		{"unknown scale", []string{"-exp", "fig2", "-scale", "huge"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunExperimentWithTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (seconds-long) experiment")
	}
	dir := t.TempDir()
	// fig2 is the cheapest figure-producing experiment.
	if err := run([]string{"-exp", "fig2", "-tsv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no TSV files written")
	}
	content, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(content)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "\t") {
		t.Errorf("TSV malformed:\n%s", string(content))
	}
}
