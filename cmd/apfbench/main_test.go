package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"apf/internal/hotbench"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"no experiment", nil},
		{"unknown experiment", []string{"-exp", "fig99"}},
		{"unknown scale", []string{"-exp", "fig2", "-scale", "huge"}},
		{"unknown scenario matrix", []string{"-scenarios", "out.json", "-matrix", "bogus"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTelemetryBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real (seconds-long) benchmarks")
	}
	path := filepath.Join(t.TempDir(), "BENCH_telemetry.json")
	if err := telemetryReportFor(path, []hotbench.Case{{Dim: 10_000, Frozen: 0.5}}); err != nil {
		t.Fatalf("telemetry report: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetryReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.ManagerRound) != 1 {
		t.Fatalf("got %d entries, want 1", len(rep.ManagerRound))
	}
	e := rep.ManagerRound[0]
	if e.NopNsPerOp <= 0 || e.TelemetryNsPerOp <= 0 {
		t.Fatalf("non-positive timings: %+v", e)
	}
	if e.TelemetryAllocs != 0 {
		t.Errorf("instrumented round allocates %d times per op, want 0", e.TelemetryAllocs)
	}
}

func TestRunExperimentWithTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (seconds-long) experiment")
	}
	dir := t.TempDir()
	// fig2 is the cheapest figure-producing experiment.
	if err := run([]string{"-exp", "fig2", "-tsv", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no TSV files written")
	}
	content, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(content)), "\n")
	if len(lines) < 2 || !strings.Contains(lines[0], "\t") {
		t.Errorf("TSV malformed:\n%s", string(content))
	}
}
