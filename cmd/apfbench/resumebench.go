package main

// Resume-cost benchmark: measures the wire bytes a resuming client costs
// the server under the two catch-up modes, end to end over loopback
// (BENCH_resume.json). Three clients train under a partial-aggregation
// deadline; one severs its connection at round 1 and stays away for a
// scripted number of rounds, longer than the server's aggregate-history
// window, so the rejoin must catch up rather than replay.
//
// Gates (the report fails the run when violated):
//   - snapshot catch-up is O(dim): its cost stays flat as the absence
//     grows from 10 to 200 rounds;
//   - sketch catch-up is O(diff): with freezing-mask drift far below the
//     model dimension it costs a fraction of the snapshot.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
	"apf/internal/telemetry"
	"apf/internal/transport"
)

const (
	resumebenchSeed     = 5
	resumebenchHistory  = 4
	resumebenchDeadline = 20 * time.Millisecond
)

// resumebenchSnapshotAbsences are the snapshot-mode absence lengths; the
// flatness gate compares catch-up cost across this 20x spread.
var resumebenchSnapshotAbsences = []int{10, 50, 200}

// resumebenchModel builds the benchmark model (dim 2563): large enough
// that an O(dim) snapshot and an O(diff) sketch are clearly separated.
func resumebenchModel(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", 36, 64),
		nn.NewTanh(),
		nn.NewDense(rng, "fc2", 64, 3),
	)
}

// resumebenchRun is one measured cell of the report.
type resumebenchRun struct {
	Mode         string  `json:"mode"`
	Absence      int     `json:"absence_rounds"`
	CatchupBytes float64 `json:"catchup_bytes"`
	BytesPerDim  float64 `json:"bytes_per_dim"`
}

// resumebenchReport is the BENCH_resume.json document.
type resumebenchReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`

	Dim           int `json:"dim"`
	HistoryRounds int `json:"history_rounds"`

	Runs []resumebenchRun `json:"runs"`

	// SnapshotFlatRatio is max/min snapshot cost across the absence spread
	// (gate: <= 1.25); SketchVsSnapshot is sketch cost over snapshot cost
	// at the same dimension (gate: < 1, expected far below).
	SnapshotFlatRatio float64 `json:"snapshot_flat_ratio"`
	SketchVsSnapshot  float64 `json:"sketch_vs_snapshot"`
	Pass              bool    `json:"pass"`
}

// resumebenchCell runs one three-client cluster in which the third client
// severs at the given round and stays absent for the given number of
// rounds, and returns the catch-up mode the rejoin used and its measured
// wire cost.
func resumebenchCell(absence, sever int, shadow *core.Config) (mode string, bytes float64, err error) {
	gate := sever + 1 + absence
	rounds := gate + 2

	ds := data.SynthImages(data.ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 90, NoiseStd: 0.5, Seed: resumebenchSeed})
	parts := data.PartitionIID(stats.SplitRNG(resumebenchSeed, 50), ds.Len(), 3)
	init := nn.FlattenParams(resumebenchModel(stats.SplitRNG(resumebenchSeed, 99)).Params(), nil)

	factory := func(clientID, dim int) fl.SyncManager {
		if shadow == nil {
			return fl.NewPassthroughManager(8)
		}
		cfg := *shadow
		cfg.Dim = dim
		return core.NewManager(cfg)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	reg := telemetry.New()
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:          "127.0.0.1:0",
		NumClients:    3,
		Rounds:        rounds,
		Init:          init,
		IOTimeout:     30 * time.Second,
		RoundDeadline: resumebenchDeadline,
		MinClients:    2,
		HistoryRounds: resumebenchHistory,
		Shadow:        shadow,
		Metrics:       reg,
	})
	if err != nil {
		return "", 0, err
	}
	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		serverErr <- err
	}()

	// The severed client's dialer: the first dial connects immediately;
	// re-dials block until the scripted absence has elapsed on the server.
	var connMu sync.Mutex
	var shardConn net.Conn
	dials := 0
	dial := func(network, addr string) (net.Conn, error) {
		connMu.Lock()
		n := dials
		dials++
		connMu.Unlock()
		if n > 0 {
			for srv.CommittedRounds() < gate {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
		c, err := net.Dial(network, addr)
		if err == nil {
			connMu.Lock()
			shardConn = c
			connMu.Unlock()
		}
		return c, err
	}

	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cfg := transport.ClientConfig{
			Addr:           srv.Addr().String(),
			Name:           fmt.Sprintf("bench-%d", i),
			SessionKey:     fmt.Sprintf("bench-%d", i),
			Model:          resumebenchModel,
			Optimizer:      func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) },
			Manager:        factory,
			Data:           ds,
			Indices:        parts[i],
			LocalIters:     1,
			BatchSize:      10,
			Seed:           resumebenchSeed,
			MaxRetries:     60,
			RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay:  100 * time.Millisecond,
		}
		if i == 2 {
			cfg.Dial = dial
			cfg.OnRound = func(round int, _ []float64) {
				if round == sever {
					connMu.Lock()
					if shardConn != nil {
						shardConn.Close()
					}
					connMu.Unlock()
				}
			}
		}
		wg.Add(1)
		go func(i int, cfg transport.ClientConfig) {
			defer wg.Done()
			_, errs[i] = transport.RunClient(ctx, cfg)
		}(i, cfg)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		return "", 0, fmt.Errorf("server: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return "", 0, fmt.Errorf("client %d: %w", i, err)
		}
	}

	h := reg.Histogram("apf_catchup_bytes", "", nil)
	if h.Count() != 1 {
		return "", 0, fmt.Errorf("expected exactly one catch-up, measured %d", h.Count())
	}
	for _, m := range []string{"sketch", "snapshot", "replay"} {
		if reg.Counter("apf_resume_mode_total", "", "mode", m).Value() > 0 {
			mode = m
		}
	}
	return mode, h.Sum(), nil
}

// runResumebench measures both catch-up modes, writes BENCH_resume.json,
// and fails when a cost gate is violated.
func runResumebench(path string) error {
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	dim := nn.ParamCount(resumebenchModel(stats.SplitRNG(resumebenchSeed, 99)).Params())
	rep := resumebenchReport{
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Dim:           dim,
		HistoryRounds: resumebenchHistory,
		Note: "end-to-end catch-up cost over TCP loopback: a client absent past the aggregate-history window rejoins; " +
			"snapshot mode must cost O(dim) independent of the absence length (flat ratio <= 1.25 across 10..200 rounds); " +
			"sketch mode (freezing-mask drift far below dim) must cost less than the snapshot",
	}

	// Snapshot series: passthrough clients on a shadowless server pin the
	// catch-up to the stateless O(dim) snapshot.
	var snapMin, snapMax float64
	for _, absence := range resumebenchSnapshotAbsences {
		fmt.Fprintf(os.Stderr, "resumebench: snapshot cell, %d-round absence (dim %d)\n", absence, dim)
		mode, bytes, err := resumebenchCell(absence, 1, nil)
		if err != nil {
			return fmt.Errorf("snapshot absence %d: %w", absence, err)
		}
		if mode != "snapshot" {
			return fmt.Errorf("snapshot absence %d: caught up in %s mode", absence, mode)
		}
		rep.Runs = append(rep.Runs, resumebenchRun{
			Mode: mode, Absence: absence, CatchupBytes: bytes, BytesPerDim: bytes / float64(dim),
		})
		if snapMin == 0 || bytes < snapMin {
			snapMin = bytes
		}
		if bytes > snapMax {
			snapMax = bytes
		}
	}

	// Sketch series: APF clients against the server's shadow replica. With
	// an aggressive stability threshold (decay off), freezing matures into
	// long fully-frozen spans; the sever and the whole absence land inside
	// one span (rounds 42..53 under this schedule), so no mask word's
	// generation moves while the client is away and the rejoin reconciles
	// in O(diff) — here a handful of sketch cells and a header-only delta
	// instead of the full state.
	shadow := &core.Config{CheckEveryRounds: 2, Threshold: 1e6, ThresholdDecayFrac: -1, EMAAlpha: 0.85, Seed: resumebenchSeed}
	const (
		sketchAbsence = 6
		sketchSever   = 44
	)
	fmt.Fprintf(os.Stderr, "resumebench: sketch cell, %d-round absence after round %d (dim %d)\n", sketchAbsence, sketchSever, dim)
	mode, sketchBytes, err := resumebenchCell(sketchAbsence, sketchSever, shadow)
	if err != nil {
		return fmt.Errorf("sketch cell: %w", err)
	}
	if mode != "sketch" {
		return fmt.Errorf("sketch cell: caught up in %s mode", mode)
	}
	rep.Runs = append(rep.Runs, resumebenchRun{
		Mode: mode, Absence: sketchAbsence, CatchupBytes: sketchBytes, BytesPerDim: sketchBytes / float64(dim),
	})

	rep.SnapshotFlatRatio = snapMax / snapMin
	rep.SketchVsSnapshot = sketchBytes / snapMax
	rep.Pass = rep.SnapshotFlatRatio <= 1.25 && rep.SketchVsSnapshot < 1

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("resumebench: %s written — snapshot flat %.3fx across %dx absence growth, sketch/snapshot %.3f\n",
		path, rep.SnapshotFlatRatio,
		resumebenchSnapshotAbsences[len(resumebenchSnapshotAbsences)-1]/resumebenchSnapshotAbsences[0],
		rep.SketchVsSnapshot)
	if !rep.Pass {
		return fmt.Errorf("resumebench: cost gates violated (snapshot flat %.3fx > 1.25, or sketch/snapshot %.3f >= 1)",
			rep.SnapshotFlatRatio, rep.SketchVsSnapshot)
	}
	return nil
}
