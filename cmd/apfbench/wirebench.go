package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"apf/internal/stats"
	"apf/internal/wire"
)

// wirebenchDim is the model size for the broadcast measurements — the
// 1M-scalar regime the paper's larger workloads live in.
const wirebenchDim = 1_000_000

// wirebenchEntry is one client-count row of BENCH_wire.json. Bytes are per
// round per client (the stream a single subscriber sees); broadcast times
// are per round across all clients. EncodeNs is the wire format's one-off
// serialization cost, which must not grow with the client count — the
// encode-once fan-out is the point.
type wirebenchEntry struct {
	Clients          int     `json:"clients"`
	GobBytesPerMsg   int64   `json:"gob_bytes_per_msg"`
	WireBytesPerMsg  int64   `json:"wire_bytes_per_msg"`
	BytesRatio       float64 `json:"wire_over_gob_bytes"`
	GobBroadcastNs   float64 `json:"gob_broadcast_ns_per_round"`
	WireBroadcastNs  float64 `json:"wire_broadcast_ns_per_round"`
	WireEncodeNs     float64 `json:"wire_encode_ns_per_round"`
	BroadcastSpeedup float64 `json:"broadcast_speedup"`
}

// wirebenchReport is the BENCH_wire.json document.
type wirebenchReport struct {
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Dim        int              `json:"dim"`
	Note       string           `json:"note"`
	Broadcast  []wirebenchEntry `json:"broadcast"`
}

// countingWriter swallows writes and counts bytes, standing in for a
// connected socket whose kernel buffer never fills.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// runWirebench compares the legacy per-session gob encoding against the
// encode-once wire framing for GlobalMsg broadcast and writes the report
// to path.
func runWirebench(path string) error {
	// Fail fast on an unwritable path before spending time measuring.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rng := stats.SplitRNG(1, 7)
	payload := make([]float64, wirebenchDim)
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	msg := &wire.GlobalMsg{Round: 3, Payload: payload, Participants: 2}

	rep := wirebenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dim:        wirebenchDim,
		Note:       "bytes are per round per client (steady-state stream); broadcast ns are per round across all clients; wire_encode_ns must stay flat as clients grow",
	}

	for _, clients := range []int{2, 8, 32} {
		fmt.Fprintf(os.Stderr, "wirebench: clients=%d\n", clients)
		e := wirebenchEntry{Clients: clients}

		// Steady-state gob bytes: the first message on a stream carries the
		// type descriptors, so warm each encoder once and count the second
		// message — that is what every subsequent round costs.
		{
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			if err := enc.Encode(msg); err != nil {
				return err
			}
			buf.Reset()
			if err := enc.Encode(msg); err != nil {
				return err
			}
			e.GobBytesPerMsg = int64(buf.Len())
		}
		e.WireBytesPerMsg = int64(len(wire.Encode(msg)))
		e.BytesRatio = float64(e.WireBytesPerMsg) / float64(e.GobBytesPerMsg)

		// Legacy broadcast: one persistent gob encoder per session, the
		// message re-encoded into every stream each round.
		sinks := make([]*countingWriter, clients)
		encs := make([]*gob.Encoder, clients)
		for i := range encs {
			sinks[i] = &countingWriter{}
			encs[i] = gob.NewEncoder(sinks[i])
			if err := encs[i].Encode(msg); err != nil { // warm descriptors
				return err
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, enc := range encs {
					if err := enc.Encode(msg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		e.GobBroadcastNs = float64(r.NsPerOp())

		// Wire broadcast: encode once, hand the same frame to every sink.
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frame := wire.Encode(msg)
				for _, w := range sinks {
					if _, err := w.Write(frame); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		e.WireBroadcastNs = float64(r.NsPerOp())

		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = wire.Encode(msg)
			}
		})
		e.WireEncodeNs = float64(r.NsPerOp())
		e.BroadcastSpeedup = e.GobBroadcastNs / e.WireBroadcastNs
		rep.Broadcast = append(rep.Broadcast, e)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirebench: wrote %s\n", path)
	return nil
}
