package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"apf/internal/stats"
	"apf/internal/wire"
)

// wirebenchDim is the model size for the broadcast measurements — the
// 1M-scalar regime the paper's larger workloads live in.
const wirebenchDim = 1_000_000

// wirebenchEntry is one client-count row of BENCH_wire.json. Bytes are per
// round per client (the stream a single subscriber sees); broadcast times
// are per round across all clients. EncodeNs is the wire format's one-off
// serialization cost, which must not grow with the client count — the
// encode-once fan-out is the point.
type wirebenchEntry struct {
	Clients          int     `json:"clients"`
	GobBytesPerMsg   int64   `json:"gob_bytes_per_msg"`
	WireBytesPerMsg  int64   `json:"wire_bytes_per_msg"`
	BytesRatio       float64 `json:"wire_over_gob_bytes"`
	GobBroadcastNs   float64 `json:"gob_broadcast_ns_per_round"`
	WireBroadcastNs  float64 `json:"wire_broadcast_ns_per_round"`
	WireEncodeNs     float64 `json:"wire_encode_ns_per_round"`
	BroadcastSpeedup float64 `json:"broadcast_speedup"`
}

// sparsebenchEntry is one frozen-fraction row of the sparse codec arm:
// the bytes of a full-model dense global frame against the sparse
// (unfrozen-scalars-only) framing of the same round, lossless and
// quantized. Reductions are dense_bytes / codec_bytes.
type sparsebenchEntry struct {
	FrozenFrac      float64 `json:"frozen_frac"`
	Unfrozen        int     `json:"unfrozen_scalars"`
	DenseBytes      int64   `json:"dense_bytes_per_msg"`
	SparseBytes     int64   `json:"sparse_bytes_per_msg"`
	SparseQ16Bytes  int64   `json:"sparse_q16_bytes_per_msg"`
	SparseReduction float64 `json:"sparse_reduction"`
	Q16Reduction    float64 `json:"sparse_q16_reduction"`
	SparseEncodeNs  float64 `json:"sparse_encode_ns"`
	Q16EncodeNs     float64 `json:"sparse_q16_encode_ns"`
}

// wirebenchReport is the BENCH_wire.json document.
type wirebenchReport struct {
	GoVersion  string             `json:"go_version"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Dim        int                `json:"dim"`
	Note       string             `json:"note"`
	Broadcast  []wirebenchEntry   `json:"broadcast"`
	SparseNote string             `json:"sparse_note"`
	Sparse     []sparsebenchEntry `json:"sparse"`
}

// countingWriter swallows writes and counts bytes, standing in for a
// connected socket whose kernel buffer never fills.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// runWirebench compares the legacy per-session gob encoding against the
// encode-once wire framing for GlobalMsg broadcast and writes the report
// to path.
func runWirebench(path string) error {
	// Fail fast on an unwritable path before spending time measuring.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rng := stats.SplitRNG(1, 7)
	payload := make([]float64, wirebenchDim)
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	msg := &wire.GlobalMsg{Round: 3, Payload: payload, Participants: 2}

	rep := wirebenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Dim:        wirebenchDim,
		Note:       "bytes are per round per client (steady-state stream); broadcast ns are per round across all clients; wire_encode_ns must stay flat as clients grow",
	}

	for _, clients := range []int{2, 8, 32} {
		fmt.Fprintf(os.Stderr, "wirebench: clients=%d\n", clients)
		e := wirebenchEntry{Clients: clients}

		// Steady-state gob bytes: the first message on a stream carries the
		// type descriptors, so warm each encoder once and count the second
		// message — that is what every subsequent round costs.
		{
			var buf bytes.Buffer
			enc := gob.NewEncoder(&buf)
			if err := enc.Encode(msg); err != nil {
				return err
			}
			buf.Reset()
			if err := enc.Encode(msg); err != nil {
				return err
			}
			e.GobBytesPerMsg = int64(buf.Len())
		}
		e.WireBytesPerMsg = int64(len(wire.Encode(msg)))
		e.BytesRatio = float64(e.WireBytesPerMsg) / float64(e.GobBytesPerMsg)

		// Legacy broadcast: one persistent gob encoder per session, the
		// message re-encoded into every stream each round.
		sinks := make([]*countingWriter, clients)
		encs := make([]*gob.Encoder, clients)
		for i := range encs {
			sinks[i] = &countingWriter{}
			encs[i] = gob.NewEncoder(sinks[i])
			if err := encs[i].Encode(msg); err != nil { // warm descriptors
				return err
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, enc := range encs {
					if err := enc.Encode(msg); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		e.GobBroadcastNs = float64(r.NsPerOp())

		// Wire broadcast: encode once, hand the same frame to every sink.
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				frame := wire.Encode(msg)
				for _, w := range sinks {
					if _, err := w.Write(frame); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		e.WireBroadcastNs = float64(r.NsPerOp())

		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = wire.Encode(msg)
			}
		})
		e.WireEncodeNs = float64(r.NsPerOp())
		e.BroadcastSpeedup = e.GobBroadcastNs / e.WireBroadcastNs
		rep.Broadcast = append(rep.Broadcast, e)
	}

	if err := runSparsebench(&rep); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wirebench: wrote %s\n", path)
	return nil
}

// sparseGateFrac/sparseGateSlack define the CI regression gate: at the
// gate fraction the lossless sparse reduction must stay within 5% of the
// geometric ideal 1/(1-frozen) — any framing bloat (accidental indices,
// padding, metadata growth) trips it.
const (
	sparseGateFrac  = 0.95
	sparseGateSlack = 0.95
)

// runSparsebench fills the report's sparse arm: dense full-model global
// frames against sparse framing across frozen fractions, plus the CI gate.
func runSparsebench(rep *wirebenchReport) error {
	rng := stats.SplitRNG(2, 11)
	dense := make([]float64, wirebenchDim)
	for i := range dense {
		dense[i] = rng.NormFloat64()
	}
	denseFrame := wire.Encode(&wire.GlobalMsg{Round: 3, Payload: dense, Participants: 2})

	rep.SparseNote = fmt.Sprintf(
		"sparse rows compare a dense full-model global frame against positional sparse framing of the unfrozen scalars; reductions are dense/codec bytes; CI gate: sparse_reduction at frozen_frac %.2f must be >= %.2f of the ideal 1/(1-frac)",
		sparseGateFrac, sparseGateSlack)

	for _, frac := range []float64{0, 0.5, 0.9, 0.95, 0.99} {
		fmt.Fprintf(os.Stderr, "wirebench: sparse frozen_frac=%.2f\n", frac)
		unfrozen := wirebenchDim - int(frac*wirebenchDim)
		values := dense[:unfrozen]

		e := sparsebenchEntry{
			FrozenFrac: frac,
			Unfrozen:   unfrozen,
			DenseBytes: int64(len(denseFrame)),
		}
		mk := func(enc wire.Enc) *wire.SparseGlobalMsg {
			g := &wire.SparseGlobalMsg{
				Round: 3, Participants: 2,
				MaskHash: 0x9e3779b97f4a7c15, MaskGen: 4,
				Dim: wirebenchDim, Enc: enc,
			}
			g.Values, g.Q = wire.PackSparse(enc, values)
			return g
		}
		lossless, q16 := mk(wire.EncF64), mk(wire.EncF16)
		e.SparseBytes = int64(len(wire.Encode(lossless)))
		e.SparseQ16Bytes = int64(len(wire.Encode(q16)))
		e.SparseReduction = float64(e.DenseBytes) / float64(e.SparseBytes)
		e.Q16Reduction = float64(e.DenseBytes) / float64(e.SparseQ16Bytes)

		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := mk(wire.EncF64)
				_ = wire.Encode(g)
			}
		})
		e.SparseEncodeNs = float64(r.NsPerOp())
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := mk(wire.EncF16)
				_ = wire.Encode(g)
			}
		})
		e.Q16EncodeNs = float64(r.NsPerOp())
		rep.Sparse = append(rep.Sparse, e)

		if frac == sparseGateFrac {
			ideal := 1 / (1 - frac)
			if e.SparseReduction < sparseGateSlack*ideal {
				return fmt.Errorf("sparse regression gate: reduction %.2fx at frozen_frac %.2f is below %.2f×%.2fx",
					e.SparseReduction, frac, sparseGateSlack, ideal)
			}
		}
	}
	return nil
}
