package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"apf/internal/fl"
	"apf/internal/hotbench"
)

// Pre-optimization hot-path numbers, measured on the reference machine
// (Intel Xeon @ 2.70GHz, linux/amd64) with the same hotbench fixtures
// before the word-level mask iteration, scratch buffers, and sharded
// aggregation landed. They anchor the speedup column of
// BENCH_hotpath.json; absolute current numbers vary with hardware, the
// ratio is the tracked quantity.
var baselineRound = map[string]float64{
	"dim=10000/frozen=0.00":   169_710,
	"dim=10000/frozen=0.50":   212_756,
	"dim=10000/frozen=0.95":   214_130,
	"dim=1000000/frozen=0.00": 18_410_770,
	"dim=1000000/frozen=0.50": 22_382_860,
	"dim=1000000/frozen=0.95": 22_673_637,
}

var baselineAggregate = map[string]float64{
	"dim=10000":   63_162,
	"dim=1000000": 12_429_250,
}

// hotpathEntry is one benchmark case in BENCH_hotpath.json.
type hotpathEntry struct {
	Name           string  `json:"name"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	BaselineNsOp   float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	BaselineAllocs int64   `json:"baseline_allocs_per_op"`
}

// hotpathReport is the BENCH_hotpath.json document.
type hotpathReport struct {
	GoVersion    string         `json:"go_version"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	BaselineNote string         `json:"baseline_note"`
	ManagerRound []hotpathEntry `json:"manager_round"`
	Aggregate    []hotpathEntry `json:"aggregate"`
}

// runHotpath measures the hotbench grid with testing.Benchmark and writes
// the report to path.
func runHotpath(path string) error {
	// Fail fast on an unwritable path before spending minutes measuring.
	probe, err := os.Create(path)
	if err != nil {
		return err
	}
	probe.Close()

	rep := hotpathReport{
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		BaselineNote: "baseline_ns_per_op measured pre-optimization on Intel Xeon @ 2.70GHz, linux/amd64; compare speedups, not absolute times, across machines",
	}

	for _, c := range hotbench.Cases() {
		name := fmt.Sprintf("dim=%d/frozen=%.2f", c.Dim, c.Frozen)
		fmt.Fprintf(os.Stderr, "hotpath: ManagerRound/%s\n", name)
		m, x, start := hotbench.NewManagerAt(c.Dim, c.Frozen)
		hotbench.Round(m, start, x) // warm scratch buffers
		offset := 1
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				hotbench.Round(m, start+offset+i, x)
			}
			offset += b.N
		})
		e := hotpathEntry{
			Name:           name,
			NsPerOp:        float64(r.NsPerOp()),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			BaselineAllocs: 3,
		}
		if base, ok := baselineRound[name]; ok {
			e.BaselineNsOp = base
			e.Speedup = base / e.NsPerOp
		}
		rep.ManagerRound = append(rep.ManagerRound, e)
	}

	for _, dim := range []int{10_000, 1_000_000} {
		name := fmt.Sprintf("dim=%d", dim)
		fmt.Fprintf(os.Stderr, "hotpath: Aggregate/%s\n", name)
		contribs, weights := hotbench.NewAggregateInput(dim)
		agg := fl.NewAggregator(0)
		dst := make([]float64, dim)
		agg.WeightedMean(dst, contribs, weights)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				agg.WeightedMean(dst, contribs, weights)
			}
		})
		agg.Close()
		e := hotpathEntry{
			Name:           name,
			NsPerOp:        float64(r.NsPerOp()),
			AllocsPerOp:    r.AllocsPerOp(),
			BytesPerOp:     r.AllocedBytesPerOp(),
			BaselineAllocs: 1,
		}
		if base, ok := baselineAggregate[name]; ok {
			e.BaselineNsOp = base
			e.Speedup = base / e.NsPerOp
		}
		rep.Aggregate = append(rep.Aggregate, e)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hotpath: wrote %s\n", path)
	return nil
}
