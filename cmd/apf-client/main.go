// Command apf-client runs one federated-learning trainer against an
// apf-server. The client regenerates the shared synthetic dataset from
// (-model, -seed) and trains on its -shard of a -shards-way split.
//
// Example:
//
//	apf-client -addr host:7070 -model lenet -seed 42 -shard 0 -shards 3 -scheme apf
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"apf/internal/chaos"
	"apf/internal/checkpoint"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/metrics"
	"apf/internal/preset"
	"apf/internal/stats"
	"apf/internal/telemetry"
	"apf/internal/telemetry/hooks"
	"apf/internal/transport"
	"apf/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apf-client:", err)
		os.Exit(1)
	}
}

// run parses flags and executes one client session.
func run(args []string) error {
	fs := flag.NewFlagSet("apf-client", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7070", "server address")
		model     = fs.String("model", "lenet", "workload preset: lenet | lstm | mlp")
		seed      = fs.Int64("seed", 42, "shared seed (must match the server)")
		shard     = fs.Int("shard", 0, "this client's shard index")
		shards    = fs.Int("shards", 3, "total number of shards (= clients)")
		iters     = fs.Int("iters", 4, "local iterations per round (Fs)")
		scheme    = fs.String("scheme", "apf", "sync scheme: apf | none")
		codec     = fs.String("codec", "dense", "strongest payload codec to offer the server: dense | sparse | sparse-q16 (sparse codecs need -scheme apf)")
		alpha     = fs.Float64("dirichlet", 1.0, "Dirichlet concentration for the non-IID split")
		ioTimeout = fs.Duration("io-timeout", 30*time.Second, "per-message network read/write deadline")
		retries   = fs.Int("retries", 0, "reconnect attempts after a connection failure (0 = fail fast)")
		ckptDir   = fs.String("checkpoint-dir", "", "directory for periodic APF manager state exports (empty = none)")
		snapEvery = fs.Int("snapshot-every", 5, "export the manager state every K applied rounds")
		chaosSpec = fs.String("chaos", "", "fault-injection script, e.g. 'sever@3;delay@7:500ms' (testing)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for randomized chaos choices")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = disabled)")
		logLevel    = fs.String("log-level", "warn", "log verbosity: debug | info | warn | error")
		logFormat   = fs.String("log-format", "text", "log output format: text | json")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("apf-client", telemetry.ReadBuildInfo().String())
		return nil
	}
	if *shard < 0 || *shard >= *shards {
		return fmt.Errorf("shard %d out of range [0,%d)", *shard, *shards)
	}
	if *ioTimeout <= 0 {
		return fmt.Errorf("-io-timeout must be positive, got %v", *ioTimeout)
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	format, err := telemetry.ParseFormat(*logFormat)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, format)

	// The registry only exists when something serves it; with -metrics-addr
	// unset every instrumented path below degrades to nil-safe no-ops.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New()
		telemetry.RegisterBuildInfo(reg)
	}

	p, err := preset.Load(*model, *seed)
	if err != nil {
		return err
	}
	// All clients derive the identical split from the shared seed, then
	// pick their own shard.
	parts := data.PartitionDirichlet(stats.SplitRNG(*seed, 1), p.Data.Labels, p.Data.Classes, *shards, *alpha)

	offer, err := wire.ParseCodec(*codec)
	if err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	if offer != wire.CodecDense && *scheme != "apf" {
		// Sparse framing is positional against the freezing mask; only the
		// APF manager exposes one. Fail here rather than at the handshake.
		return fmt.Errorf("-codec %s requires -scheme apf (sparse payloads encode against the freezing mask)", offer)
	}

	var manager fl.ManagerFactory
	var apfManager *core.Manager // captured for -checkpoint-dir exports
	switch *scheme {
	case "apf":
		manager = func(clientID, dim int) fl.SyncManager {
			m := core.NewManager(core.Config{
				Dim: dim, CheckEveryRounds: 2, Threshold: 0.1, EMAAlpha: 0.85, Seed: *seed,
				Observer: hooks.Manager(reg),
			})
			apfManager = m
			return m
		}
	case "none":
		manager = func(clientID, dim int) fl.SyncManager { return fl.NewPassthroughManager(4) }
	default:
		return fmt.Errorf("unknown scheme %q (want apf or none)", *scheme)
	}

	// Periodic manager export: every K applied rounds the freezing state
	// (EMAs, periods, mask) is framed to disk, so an operator can inspect
	// or archive a client's APF trajectory. Best-effort: an export failure
	// warns but never aborts training.
	var onRound func(round int, model []float64)
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		every := *snapEvery
		if every <= 0 {
			every = 5
		}
		onRound = func(round int, model []float64) {
			if apfManager == nil || (round+1)%every != 0 {
				return
			}
			buf := checkpoint.EncodeManager(apfManager.Snapshot())
			path := filepath.Join(*ckptDir, fmt.Sprintf("manager-%08d.ckpt", round+1))
			tmp := path + ".tmp"
			if err := os.WriteFile(tmp, buf, 0o644); err == nil {
				err = os.Rename(tmp, path)
				if err == nil {
					return
				}
			}
			fmt.Fprintf(os.Stderr, "apf-client: checkpoint export for round %d failed\n", round)
		}
	}

	name := fmt.Sprintf("shard-%d", *shard)
	var dial transport.DialFunc
	if *chaosSpec != "" {
		faults, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		script := chaos.NewScript(*chaosSeed, faults...)
		dial = transport.DialFunc(script.Dialer(name, func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, 10*time.Second)
		}))
		fmt.Printf("apf-client: chaos script armed with %d fault(s)\n", len(faults))
	}

	if *metricsAddr != "" {
		h := telemetry.Handler(reg, telemetry.HealthFunc(func() []any {
			return []any{"client", name, "shard", *shard}
		}))
		mln, err := telemetry.Serve(*metricsAddr, h, func(err error) {
			logger.Error("observability endpoint failed", "err", err)
		})
		if err != nil {
			return err
		}
		defer mln.Close()
		fmt.Printf("apf-client: observability on http://%s/metrics\n", mln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("apf-client: shard %d/%d of %s, scheme %s, connecting to %s\n",
		*shard, *shards, *model, *scheme, *addr)
	res, err := transport.RunClient(ctx, transport.ClientConfig{
		Addr:       *addr,
		Name:       name,
		SessionKey: name,
		Model:      p.Model,
		Optimizer:  p.Optimizer,
		Manager:    manager,
		Data:       p.Data,
		Indices:    parts[*shard],
		LocalIters: *iters,
		BatchSize:  p.Batch,
		Seed:       *seed + int64(*shard),
		IOTimeout:  *ioTimeout,
		Codec:      offer,
		MaxRetries: *retries,
		Dial:       dial,
		OnRound:    onRound,
		Metrics:    reg,
		Log:        logger,
	})
	if err != nil {
		return err
	}
	fmt.Printf("apf-client: finished %d rounds as client %d — payload bytes up %s / down %s, wire bytes written %s / read %s\n",
		res.Rounds, res.ClientID,
		metrics.FormatBytes(res.UpBytes), metrics.FormatBytes(res.DownBytes),
		metrics.FormatBytes(res.WireWritten), metrics.FormatBytes(res.WireRead))
	if res.Reconnects > 0 {
		fmt.Printf("apf-client: resumed its session %d time(s)\n", res.Reconnects)
	}
	return nil
}
