package main

import (
	"testing"
	"time"
)

func TestClientRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad shard", []string{"-shard", "3", "-shards", "2"}},
		{"bad model", []string{"-model", "nope"}},
		{"bad scheme", []string{"-scheme", "nope", "-addr", "127.0.0.1:1"}},
		{"zero io timeout", []string{"-io-timeout", "0s", "-addr", "127.0.0.1:1"}},
		{"negative io timeout", []string{"-io-timeout", "-5s", "-addr", "127.0.0.1:1"}},
		{"bad log level", []string{"-log-level", "loud", "-addr", "127.0.0.1:1"}},
		{"bad log format", []string{"-log-format", "xml", "-addr", "127.0.0.1:1"}},
		{"bad metrics address", []string{"-metrics-addr", "256.256.256.256:99999", "-addr", "127.0.0.1:1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestClientFailsFastWithoutServer(t *testing.T) {
	start := time.Now()
	err := run([]string{"-addr", "127.0.0.1:1", "-model", "mlp", "-shard", "0", "-shards", "1"})
	if err == nil {
		t.Fatal("expected connection error")
	}
	if time.Since(start) > 15*time.Second {
		t.Error("client hung instead of failing fast")
	}
}

func TestClientVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
