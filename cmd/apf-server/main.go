// Command apf-server runs the central federated-learning aggregation
// server over TCP. Pair it with cmd/apf-client instances (on the same or
// other machines); both sides must agree on -model and -seed.
//
// Example (one server, three clients, APF enabled on the clients):
//
//	apf-server -addr :7070 -clients 3 -rounds 50 -model lenet -seed 42
//	apf-client -addr host:7070 -model lenet -seed 42 -shard 0 -shards 3 -scheme apf
//	...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"apf/internal/metrics"
	"apf/internal/preset"
	"apf/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apf-server:", err)
		os.Exit(1)
	}
}

// run parses flags and serves one full training session.
func run(args []string) error {
	fs := flag.NewFlagSet("apf-server", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":7070", "listen address")
		clients = fs.Int("clients", 3, "number of clients to wait for")
		rounds  = fs.Int("rounds", 50, "aggregation rounds")
		model   = fs.String("model", "lenet", "workload preset: lenet | lstm | mlp")
		seed    = fs.Int64("seed", 42, "shared seed (must match the clients)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := preset.Load(*model, *seed)
	if err != nil {
		return err
	}
	init := p.InitVector(*seed)

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       *addr,
		NumClients: *clients,
		Rounds:     *rounds,
		Init:       init,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("apf-server: %s on %s — waiting for %d client(s), %d rounds, model dim %d\n",
		*model, srv.Addr(), *clients, *rounds, len(init))
	if _, err := srv.Run(ctx); err != nil {
		return err
	}
	read, sent := srv.WireBytes()
	fmt.Printf("apf-server: done — wire bytes received %s, sent %s\n",
		metrics.FormatBytes(read), metrics.FormatBytes(sent))
	return nil
}
