// Command apf-server runs the central federated-learning aggregation
// server over TCP. Pair it with cmd/apf-client instances (on the same or
// other machines); both sides must agree on -model and -seed.
//
// Example (one server, three clients, APF enabled on the clients):
//
//	apf-server -addr :7070 -clients 3 -rounds 50 -model lenet -seed 42
//	apf-client -addr host:7070 -model lenet -seed 42 -shard 0 -shards 3 -scheme apf
//	...
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"apf/internal/chaos"
	"apf/internal/core"
	"apf/internal/fl"
	"apf/internal/metrics"
	"apf/internal/preset"
	"apf/internal/telemetry"
	"apf/internal/transport"
	"apf/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "apf-server:", err)
		os.Exit(1)
	}
}

// run parses flags and serves one full training session.
func run(args []string) error {
	fs := flag.NewFlagSet("apf-server", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":7070", "listen address")
		clients    = fs.Int("clients", 3, "number of clients to wait for")
		relays     = fs.Int("relays", 0, "run as the hierarchy's root tier over this many apf-relay edge pre-aggregators instead of direct clients (0 = flat coordinator; incompatible with -aggregator trimmed and sanitization, which need per-client payloads)")
		rounds     = fs.Int("rounds", 50, "aggregation rounds")
		model      = fs.String("model", "lenet", "workload preset: lenet | lstm | mlp")
		seed       = fs.Int64("seed", 42, "shared seed (must match the clients)")
		ioTimeout  = fs.Duration("io-timeout", 30*time.Second, "per-message network read/write deadline")
		deadline   = fs.Duration("deadline", 0, "round deadline enabling partial aggregation and session resume (0 = strict barrier)")
		minClients = fs.Int("min-clients", 1, "minimum updates before a round deadline may aggregate")
		ckptDir    = fs.String("checkpoint-dir", "", "directory for the durable snapshot + WAL; a restarted server resumes from it bit-exactly (empty = not durable)")
		snapEvery  = fs.Int("snapshot-every", 5, "rotate the checkpoint snapshot every K committed rounds")
		histRounds = fs.Int("history-rounds", 0, "cap the aggregate replay history to this many rounds, bounding server memory; clients absent past the cap catch up via sketch reconciliation or a snapshot instead of replay (0 = unbounded)")
		shadow     = fs.Bool("shadow", false, "maintain a shadow APF replica of the client trajectory (requires clients with -scheme apf and the same -seed), enabling stateful O(diff) sketch catch-up for clients absent past -history-rounds")
		maxNorm    = fs.Float64("max-norm-mult", 0, "arm the update sanitization pipeline (non-finite and dimension checks plus the norm gate), striking updates whose L2 norm exceeds this multiple of the rolling median (0 = sanitization off)")
		cosFloor   = fs.Float64("cosine-floor", 0, "with sanitization armed, also strike updates whose cosine against the decayed reference direction falls below this floor (0 = direction gate off; negative floors are meaningful)")
		roundNorm  = fs.Float64("round-norm-mult", 0, "with sanitization armed, also strike accepted updates after the round when their norm exceeds this multiple of the round median (0 = post-round review off)")
		aggregator = fs.String("aggregator", "mean", "aggregation reduction: mean | trimmed (coordinate-wise trimmed mean)")
		trimFrac   = fs.Float64("trim-frac", 0, "per-side trim fraction for -aggregator trimmed, in [0, 0.5); 0 = default 0.25")
		codec      = fs.String("codec", "dense", "strongest payload codec to offer sessions: dense | sparse | sparse-q16 (each client negotiates down to what it supports)")
		chaosSpec  = fs.String("chaos", "", "fault-injection script, e.g. 'accept:1/sever-write@5;kill-server@7' (testing)")
		chaosSeed  = fs.Int64("chaos-seed", 1, "seed for randomized chaos choices")

		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = disabled)")
		logLevel    = fs.String("log-level", "warn", "log verbosity: debug | info | warn | error")
		logFormat   = fs.String("log-format", "text", "log output format: text | json")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("apf-server", telemetry.ReadBuildInfo().String())
		return nil
	}
	if *ioTimeout <= 0 {
		return fmt.Errorf("-io-timeout must be positive, got %v", *ioTimeout)
	}
	level, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	format, err := telemetry.ParseFormat(*logFormat)
	if err != nil {
		return fmt.Errorf("-log-format: %w", err)
	}
	logger := telemetry.NewLogger(os.Stderr, level, format)

	// The registry only exists when something serves it; with -metrics-addr
	// unset every instrumented path below degrades to nil-safe no-ops.
	var reg *telemetry.Registry
	if *metricsAddr != "" {
		reg = telemetry.New()
		telemetry.RegisterBuildInfo(reg)
	}

	p, err := preset.Load(*model, *seed)
	if err != nil {
		return err
	}
	init := p.InitVector(*seed)

	var ln net.Listener
	if *chaosSpec != "" {
		faults, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			return err
		}
		inner, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		script := chaos.NewScript(*chaosSeed, faults...)
		// A scripted kill-server fault is a real crash: SIGKILL skips all
		// deferred cleanup, exactly what the durable checkpoint recovery
		// must tolerate (make crashtest exercises this path).
		script.SetOnKill(func() {
			fmt.Println("apf-server: chaos kill-server fault fired, crashing")
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		})
		ln = script.Listener(inner)
		fmt.Printf("apf-server: chaos script armed with %d fault(s)\n", len(faults))
	}

	var validator *transport.ValidatorConfig
	if *maxNorm > 0 {
		validator = &transport.ValidatorConfig{
			MaxNormMult:   *maxNorm,
			CosineFloor:   *cosFloor,
			RoundNormMult: *roundNorm,
		}
	} else if *cosFloor != 0 || *roundNorm != 0 {
		return fmt.Errorf("-cosine-floor and -round-norm-mult need -max-norm-mult to arm sanitization")
	}
	maxCodec, err := wire.ParseCodec(*codec)
	if err != nil {
		return fmt.Errorf("-codec: %w", err)
	}
	reduction, err := fl.ParseReduction(*aggregator)
	if err != nil {
		return fmt.Errorf("-aggregator: %w", err)
	}
	if *trimFrac < 0 || *trimFrac >= 0.5 {
		return fmt.Errorf("-trim-frac %g outside [0, 0.5)", *trimFrac)
	}
	if *histRounds < 0 {
		return fmt.Errorf("-history-rounds must be non-negative, got %d", *histRounds)
	}
	var shadowCfg *core.Config
	if *shadow {
		// Mirror apf-client's -scheme apf manager exactly: the shadow is a
		// deterministic replica of the client trajectory, so the configs
		// (and the shared seed) must match bit for bit.
		shadowCfg = &core.Config{CheckEveryRounds: 2, Threshold: 0.1, EMAAlpha: 0.85, Seed: *seed}
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:          *addr,
		Listener:      ln,
		NumClients:    *clients,
		Relays:        *relays,
		Rounds:        *rounds,
		Init:          init,
		IOTimeout:     *ioTimeout,
		RoundDeadline: *deadline,
		MinClients:    *minClients,
		CheckpointDir: *ckptDir,
		SnapshotEvery: *snapEvery,
		HistoryRounds: *histRounds,
		Shadow:        shadowCfg,
		Validator:     validator,
		Codec:         maxCodec,
		Reduction:     reduction,
		TrimFraction:  *trimFrac,
		Metrics:       reg,
		Log:           logger,
	})
	if err != nil {
		return err
	}
	if *ckptDir != "" && srv.Recovered() {
		fmt.Printf("apf-server: resumed from checkpoint at round %d\n", srv.StartRound())
	}

	if *metricsAddr != "" {
		h := telemetry.Handler(reg, telemetry.HealthFunc(func() []any {
			return []any{
				"round", srv.Round(),
				"committed_rounds", srv.CommittedRounds(),
				"recovered", srv.Recovered(),
			}
		}))
		mln, err := telemetry.Serve(*metricsAddr, h, func(err error) {
			logger.Error("observability endpoint failed", "err", err)
		})
		if err != nil {
			return err
		}
		defer mln.Close()
		fmt.Printf("apf-server: observability on http://%s/metrics\n", mln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *relays > 0 {
		fmt.Printf("apf-server: %s root tier on %s — waiting for %d relay(s), %d rounds, model dim %d\n",
			*model, srv.Addr(), *relays, *rounds, len(init))
	} else {
		fmt.Printf("apf-server: %s on %s — waiting for %d client(s), %d rounds, model dim %d\n",
			*model, srv.Addr(), *clients, *rounds, len(init))
	}
	if _, err := srv.Run(ctx); err != nil {
		return err
	}
	read, sent := srv.WireBytes()
	fmt.Printf("apf-server: done — wire bytes received %s, sent %s\n",
		metrics.FormatBytes(read), metrics.FormatBytes(sent))
	if n := srv.PartialRounds(); n > 0 {
		fmt.Printf("apf-server: %d round(s) aggregated without full participation\n", n)
	}
	if n := srv.RejectedUpdates(); n > 0 {
		fmt.Printf("apf-server: %d update(s) rejected by sanitization\n", n)
	}
	if v := srv.Validator(); v != nil && v.QuarantinedCount() > 0 {
		fmt.Printf("apf-server: %d client(s) quarantined\n", v.QuarantinedCount())
	}
	return nil
}
