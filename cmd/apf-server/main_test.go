package main

import (
	"testing"
)

func TestServerRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad model", []string{"-model", "nope"}},
		{"zero clients", []string{"-clients", "0"}},
		{"bad address", []string{"-addr", "256.256.256.256:99999"}},
		{"zero io timeout", []string{"-io-timeout", "0s"}},
		{"negative io timeout", []string{"-io-timeout", "-5s"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}
