package main

import (
	"testing"
)

func TestServerRejectsBadFlags(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad model", []string{"-model", "nope"}},
		{"zero clients", []string{"-clients", "0"}},
		{"bad address", []string{"-addr", "256.256.256.256:99999"}},
		{"zero io timeout", []string{"-io-timeout", "0s"}},
		{"negative io timeout", []string{"-io-timeout", "-5s"}},
		{"bad log level", []string{"-log-level", "loud"}},
		{"bad log format", []string{"-log-format", "xml"}},
		{"bad metrics address", []string{"-addr", "127.0.0.1:0", "-metrics-addr", "256.256.256.256:99999"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestServerVersionFlag(t *testing.T) {
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("-version: %v", err)
	}
}
