// Benchmarks regenerating every table and figure of the paper at Quick
// scale (one benchmark per artifact — BenchmarkFig11 regenerates Fig. 11,
// BenchmarkTable2 regenerates Table 2, ...), plus microbenchmarks of the
// APF manager hot path and the numeric substrate.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// One artifact benchmark iteration is one complete experiment, so expect
// seconds per iteration; cmd/apfbench prints the same artifacts with their
// numbers.
package apf_test

import (
	"fmt"
	"math/rand"
	"testing"

	"apf"
	"apf/internal/core"
	"apf/internal/experiments"
	"apf/internal/fl"
	"apf/internal/hotbench"
	"apf/internal/nn"
	"apf/internal/perturb"
	"apf/internal/quantize"
	"apf/internal/telemetry"
	"apf/internal/telemetry/hooks"
	"apf/internal/tensor"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := runner(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
		if out == nil || (len(out.Figures) == 0 && len(out.Tables) == 0) {
			b.Fatal("experiment produced no artifacts")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkFig22(b *testing.B)  { benchExperiment(b, "fig22") }

// ---- Microbenchmarks: APF manager hot path ----

// benchManager builds a manager over dim scalars with some parameters
// frozen.
func benchManager(dim int) (*core.Manager, []float64) {
	m := core.NewManager(core.Config{
		Dim:              dim,
		CheckEveryRounds: 1,
		Threshold:        0.5,
		EMAAlpha:         0.9,
		Seed:             1,
	})
	x := make([]float64, dim)
	rng := rand.New(rand.NewSource(2))
	// Drive a few oscillating rounds so part of the model freezes.
	for round := 0; round < 10; round++ {
		for j := range x {
			if j%2 == 0 {
				x[j] += float64(1 - 2*(round%2))
			} else {
				x[j] += rng.NormFloat64()
			}
		}
		m.PostIterate(round, x)
		contrib, _, _ := m.PrepareUpload(round, x)
		m.ApplyDownload(round, x, contrib)
	}
	return m, x
}

// BenchmarkManagerPostIterate measures the per-iteration rollback cost
// (Table 4's computation overhead, per iteration).
func BenchmarkManagerPostIterate(b *testing.B) {
	m, x := benchManager(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PostIterate(10, x)
	}
}

// BenchmarkManagerRoundSync measures a full upload+download exchange
// including the stability check.
func BenchmarkManagerRoundSync(b *testing.B) {
	m, x := benchManager(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round := 10 + i
		m.PostIterate(round, x)
		contrib, _, _ := m.PrepareUpload(round, x)
		m.ApplyDownload(round, x, contrib)
	}
}

// BenchmarkEMATrackerObserve measures the effective-perturbation update.
func BenchmarkEMATrackerObserve(b *testing.B) {
	t := perturb.NewEMATracker(100_000, 0.99)
	delta := make([]float64, 100_000)
	for i := range delta {
		delta[i] = float64(i%7) - 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Observe(delta)
	}
}

// ---- Hot-path benchmarks (tracked in BENCH_hotpath.json) ----

// BenchmarkManagerRound measures one full steady-state client round
// (rollback + upload + compact codec + download/check) over the
// Dim × frozen-ratio grid. `apfbench -hotpath` records the same cases.
// The /telemetry variants attach a live telemetry registry through the
// manager's observer hook — they must stay at 0 allocs/op and within
// noise of the uninstrumented numbers (`apfbench -telemetry` tracks the
// ratio in BENCH_telemetry.json).
func BenchmarkManagerRound(b *testing.B) {
	for _, c := range hotbench.Cases() {
		b.Run(fmt.Sprintf("dim=%d/frozen=%.2f", c.Dim, c.Frozen), func(b *testing.B) {
			m, x, start := hotbench.NewManagerAt(c.Dim, c.Frozen)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hotbench.Round(m, start+i, x)
			}
		})
		b.Run(fmt.Sprintf("dim=%d/frozen=%.2f/telemetry", c.Dim, c.Frozen), func(b *testing.B) {
			obs := hooks.Manager(telemetry.New())
			m, x, start := hotbench.NewManagerAtObserved(c.Dim, c.Frozen, obs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hotbench.Round(m, start+i, x)
			}
		})
	}
}

// BenchmarkAggregate measures the server-side weighted aggregation over
// 10 client contributions: the sharded worker-pool reduction the engine
// uses, with the serial client-major loop it replaced as the reference.
func BenchmarkAggregate(b *testing.B) {
	for _, dim := range []int{10_000, 1_000_000} {
		contribs, weights := hotbench.NewAggregateInput(dim)
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			agg := fl.NewAggregator(0)
			defer agg.Close()
			dst := make([]float64, dim)
			if !agg.WeightedMean(dst, contribs, weights) {
				b.Fatal("nothing aggregated")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.WeightedMean(dst, contribs, weights)
			}
		})
		b.Run(fmt.Sprintf("dim=%d/serial", dim), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hotbench.SerialAggregate(dim, contribs, weights)
			}
		})
	}
}

// ---- Microbenchmarks: numeric substrate ----

// BenchmarkMatMul measures the 128×128 matrix product.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 0, 1, 128, 128)
	y := tensor.Randn(rng, 0, 1, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

// BenchmarkConvForward measures a LeNet-sized convolution forward pass.
func BenchmarkConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	conv := nn.NewConv2D(rng, "conv", 6, 16, 5, 1, 0)
	x := tensor.Randn(rng, 0, 1, 20, 6, 12, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, true)
	}
}

// BenchmarkLSTMStep measures a full LSTM forward+backward pass.
func BenchmarkLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	lstm := nn.NewLSTM(rng, "lstm", 16, 64)
	x := tensor.Randn(rng, 0, 1, 20, 10, 16)
	grad := tensor.Randn(rng, 0, 1, 20, 10, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lstm.Forward(x, true)
		lstm.Backward(grad)
	}
}

// BenchmarkHalfRoundTrip measures fp16 quantization of a 100k-scalar
// payload (the APF+Q wire transform).
func BenchmarkHalfRoundTrip(b *testing.B) {
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = float64(i) * 1e-3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quantize.RoundTripSlice(xs)
	}
}

// BenchmarkEngineRound measures one full federated round (3 clients, MLP)
// through the public facade.
func BenchmarkEngineRound(b *testing.B) {
	const seed = 6
	pool := apf.SynthImages(apf.ImageConfig{
		Classes: 4, Channels: 1, Size: 8, Samples: 240, NoiseStd: 0.6, Seed: seed,
	})
	parts := [][]int{{}, {}, {}}
	for i := 0; i < pool.Len(); i++ {
		parts[i%3] = append(parts[i%3], i)
	}
	model := func(rng *rand.Rand) *apf.Network {
		return apf.NewNetwork(
			apf.NewFlatten(),
			apf.NewDense(rng, "fc1", 64, 24),
			apf.NewTanh(),
			apf.NewDense(rng, "fc2", 24, 4),
		)
	}
	optimizer := func(p []*apf.Param) apf.Optimizer { return apf.NewSGD(p, 0.3, 0, 0) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := apf.EngineConfig{Rounds: 1, LocalIters: 4, BatchSize: 16, Seed: seed}
		e := apf.NewEngine(cfg, model, optimizer,
			apf.ManagerFactoryFor(apf.ManagerConfig{CheckEveryRounds: 2, Seed: seed}),
			pool, parts, nil)
		e.Run()
	}
}

// BenchmarkDenseForwardBackward measures a 256→128 dense layer pass.
func BenchmarkDenseForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	layer := nn.NewDense(rng, "fc", 256, 128)
	x := tensor.Randn(rng, 0, 1, 32, 256)
	grad := tensor.Randn(rng, 0, 1, 32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
		nn.ZeroGrads(layer.Params())
		layer.Backward(grad)
	}
}

// BenchmarkBatchNormForward measures batch normalization over a typical
// activation block.
func BenchmarkBatchNormForward(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	layer := nn.NewBatchNorm2D("bn", 16)
	x := tensor.Randn(rng, 0, 1, 16, 16, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
	}
}

// BenchmarkGroupNormForward measures group normalization over the same
// block for comparison with batch norm.
func BenchmarkGroupNormForward(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	layer := nn.NewGroupNorm2D("gn", 16, 4)
	x := tensor.Randn(rng, 0, 1, 16, 16, 8, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Forward(x, true)
	}
}

// BenchmarkResNetTrainStep measures one forward+backward of the CPU-scale
// residual network (the experiments' dominant cost).
func BenchmarkResNetTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	net := apf.ResNet(rng, apf.ResNet8Config(), 1, 10)
	x := tensor.Randn(rng, 0, 1, 10, 1, 10, 10)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(net.Params())
		net.LossGrad(x, labels)
	}
}

// BenchmarkCompactCodec measures the APF wire codec over a 100k-scalar
// model with half the mask frozen.
func BenchmarkCompactCodec(b *testing.B) {
	m, x := benchManager(100_000)
	contrib, _, _ := m.PrepareUpload(10, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compact := m.CompactUpload(10, contrib)
		m.ExpandDownload(10, compact)
	}
}
