package apf_test

import (
	"fmt"
	"math/rand"

	"apf"
	"apf/internal/stats"
)

// ExampleNewManager shows the APF manager driving one client's
// synchronization by hand (the engine normally does this).
func ExampleNewManager() {
	const dim = 4
	m := apf.NewManager(apf.ManagerConfig{
		Dim:              dim,
		CheckEveryRounds: 1,
		Threshold:        0.3,
		EMAAlpha:         0.8,
	})

	x := make([]float64, dim)
	for round := 0; round < 12; round++ {
		// Local training: scalars 0 and 2 oscillate (converged), 1 and 3
		// keep drifting.
		for j := range x {
			if j%2 == 0 {
				x[j] += float64(1 - 2*(round%2))
			} else {
				x[j] += 0.5
			}
		}
		m.PostIterate(round, x) // frozen scalars roll back here

		contrib, _, upBytes := m.PrepareUpload(round, x)
		_ = upBytes                        // what the push would cost
		m.ApplyDownload(round, x, contrib) // single client: global = own contribution
	}

	fmt.Printf("frozen ratio: %.2f\n", m.FrozenRatio())
	// Output:
	// frozen ratio: 0.50
}

// ExampleNewEngine runs a miniature federated job end to end through the
// public API.
func ExampleNewEngine() {
	pool := apf.SynthImages(apf.ImageConfig{
		Classes: 4, Channels: 1, Size: 8, Samples: 120, NoiseStd: 0.5, Seed: 1,
	})
	parts := apf.PartitionDirichlet(stats.SplitRNG(1, 0), pool.Labels, pool.Classes, 2, 1.0)

	model := func(rng *rand.Rand) *apf.Network {
		return apf.NewNetwork(
			apf.NewFlatten(),
			apf.NewDense(rng, "fc", 64, 4),
		)
	}
	optimizer := func(p []*apf.Param) apf.Optimizer { return apf.NewSGD(p, 0.3, 0, 0) }

	engine := apf.NewEngine(
		apf.EngineConfig{Rounds: 5, LocalIters: 2, BatchSize: 10, Seed: 1},
		model, optimizer,
		apf.ManagerFactoryFor(apf.ManagerConfig{Seed: 1}),
		pool, parts, nil,
	)
	res := engine.Run()
	fmt.Printf("rounds: %d, clients: %d, traffic accounted: %v\n",
		len(res.Rounds), res.NumClients, res.CumUpBytes > 0)
	// Output:
	// rounds: 5, clients: 2, traffic accounted: true
}

// ExampleNewWindowTracker demonstrates the effective-perturbation metric
// (Eq. 1): oscillating updates read as stable (P→0), directional ones as
// drifting (P→1).
func ExampleNewWindowTracker() {
	w := apf.NewWindowTracker(2, 4)
	for i := 0; i < 4; i++ {
		osc := 1.0
		if i%2 == 1 {
			osc = -1
		}
		w.Observe([]float64{osc, 0.5})
	}
	fmt.Printf("oscillating: %.1f, drifting: %.1f\n", w.Perturbation(0), w.Perturbation(1))
	// Output:
	// oscillating: 0.0, drifting: 1.0
}
