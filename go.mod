module apf

go 1.22
