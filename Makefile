# Development entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: tier1 vet race bench hotpath ci

# Tier-1 verify (see ROADMAP.md): must stay green on every commit.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine pool, sharded aggregation, and transport goroutines are the
# concurrency surface; run them under the race detector.
race:
	$(GO) test -race ./internal/fl/ ./internal/transport/

# Quick look at the round-critical benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkManagerRound$$|BenchmarkAggregate$$' -benchmem .

# Regenerate the tracked hot-path perf report.
hotpath:
	$(GO) run ./cmd/apfbench -hotpath BENCH_hotpath.json

ci: tier1 vet race hotpath
