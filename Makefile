# Development entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: tier1 vet race fuzz crashtest bench hotpath wirebench telemetrybench ci

# Tier-1 verify (see ROADMAP.md): must stay green on every commit.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine pool, sharded aggregation, transport goroutines (including
# the per-session broadcast writers), telemetry registry, and chaos
# harness are the concurrency surface; run them under the race detector
# (this includes the chaos fault-injection suite and the concurrent
# /metrics scrape test).
race:
	$(GO) test -race ./internal/fl/ ./internal/transport/ ./internal/chaos/ ./internal/wire/ ./internal/telemetry/

# Fuzz smoke: a short randomized pass over each decode target on top of
# the checked-in corpus (go only runs one -fuzz target per invocation).
fuzz:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime 10s
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzSparseDecode$$' -fuzztime 10s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzServerDecode$$' -fuzztime 10s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzClientDecode$$' -fuzztime 10s
	$(GO) test ./internal/checkpoint/ -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime 10s

# Crash drill: build the real apf-server binary, SIGKILL it mid-round via
# a scripted chaos fault, restart it against the same checkpoint
# directory, and require the final weights to be bit-identical to an
# uninterrupted run.
crashtest:
	APF_CRASHTEST=1 $(GO) test ./internal/transport/ -run '^TestCrashRealSIGKILL$$' -v -timeout 8m

# Quick look at the round-critical benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkManagerRound$$|BenchmarkAggregate$$' -benchmem .

# Regenerate the tracked hot-path perf report.
hotpath:
	$(GO) run ./cmd/apfbench -hotpath BENCH_hotpath.json

# Regenerate the tracked gob-vs-wire broadcast report, including the
# sparse-codec arm across frozen fractions. The run itself enforces the
# regression gate: at frozen_frac 0.95 the lossless sparse reduction must
# stay within 5% of the geometric ideal 20x, or the target fails.
wirebench:
	$(GO) run ./cmd/apfbench -wire BENCH_wire.json

# Regenerate the tracked telemetry-overhead report (instrumented vs nop
# registry on the steady-state manager round).
telemetrybench:
	$(GO) run ./cmd/apfbench -telemetry BENCH_telemetry.json

ci: tier1 vet race fuzz crashtest hotpath wirebench telemetrybench
