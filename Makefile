# Development entry points. `make ci` is what the CI workflow runs.

GO ?= go

.PHONY: tier1 vet race fuzz bench hotpath ci

# Tier-1 verify (see ROADMAP.md): must stay green on every commit.
tier1:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The engine pool, sharded aggregation, transport goroutines, and chaos
# harness are the concurrency surface; run them under the race detector
# (this includes the chaos fault-injection test suite).
race:
	$(GO) test -race ./internal/fl/ ./internal/transport/ ./internal/chaos/

# Fuzz smoke: a short randomized pass over each wire-decode target on top
# of the checked-in corpus (go only runs one -fuzz target per invocation).
fuzz:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzServerDecode$$' -fuzztime 10s
	$(GO) test ./internal/transport/ -run '^$$' -fuzz '^FuzzClientDecode$$' -fuzztime 10s

# Quick look at the round-critical benchmarks.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkManagerRound$$|BenchmarkAggregate$$' -benchmem .

# Regenerate the tracked hot-path perf report.
hotpath:
	$(GO) run ./cmd/apfbench -hotpath BENCH_hotpath.json

ci: tier1 vet race fuzz hotpath
