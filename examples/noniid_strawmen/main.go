// Why "just stop syncing stable parameters" fails — and how APF fixes it.
//
// This example reproduces the paper's §4.1 exploration on extremely
// non-IID data (each client hosts only 2 of 10 classes):
//
//   - partial synchronization (strawman 1): stable scalars keep training
//     locally and drift to different local optima on different clients;
//   - permanent freezing (strawman 2): temporarily-stable scalars get
//     trapped away from their true optima;
//   - APF: tentative freezing with AIMD periods keeps consistency AND lets
//     temporarily-stable scalars escape.
//
// Run with:
//
//	go run ./examples/noniid_strawmen
package main

import (
	"fmt"
	"math/rand"
	"os"

	"apf/internal/compress"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/models"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "noniid_strawmen:", err)
		os.Exit(1)
	}
}

// run executes the strawman comparison.
func run() error {
	const (
		seed    = 7
		clients = 5
		rounds  = 80
	)

	pool := data.SynthImages(data.ImageConfig{
		Classes: 10, Channels: 1, Size: 16, Samples: 650, NoiseStd: 0.8, Seed: seed,
	})
	trainIdx, testIdx := make([]int, 0, 550), make([]int, 0, 100)
	for i := 0; i < pool.Len(); i++ {
		if i < 550 {
			trainIdx = append(trainIdx, i)
		} else {
			testIdx = append(testIdx, i)
		}
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)

	// Extremely non-IID: each client hosts exactly 2 classes.
	parts := data.PartitionByClass(stats.SplitRNG(seed, 1), train.Labels, train.Classes, clients, 2)
	for i, p := range parts {
		classes := map[int]bool{}
		for _, idx := range p {
			classes[train.Labels[idx]] = true
		}
		fmt.Printf("client %d: %d samples, %d classes\n", i, len(p), len(classes))
	}

	model := func(rng *rand.Rand) *nn.Network { return models.LeNet5(rng, 1, 16, 10) }
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewAdam(p, 0.002, 0) }
	cfg := fl.Config{Rounds: rounds, LocalIters: 4, BatchSize: 20, Seed: seed, EvalEvery: 10}

	schemes := []struct {
		name string
		mf   fl.ManagerFactory
	}{
		{"full synchronization", func(_, _ int) fl.SyncManager { return fl.NewPassthroughManager(4) }},
		{"partial synchronization", func(_, dim int) fl.SyncManager {
			return compress.NewPartialSync(dim, 1, 0.3, 0.9, 4)
		}},
		{"permanent freezing", func(_, dim int) fl.SyncManager {
			return core.NewManager(core.Config{
				Dim: dim, CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9,
				Policy: core.Permanent{}, ThresholdDecayFrac: -1, Seed: seed,
			})
		}},
		{"APF", func(_, dim int) fl.SyncManager {
			return core.NewManager(core.Config{
				Dim: dim, CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9, Seed: seed,
			})
		}},
	}

	fmt.Println("\ntraining each scheme...")
	fmt.Printf("%-26s %-10s %-12s\n", "scheme", "best acc", "traffic saved")
	var baseBytes int64
	for _, s := range schemes {
		res := fl.New(cfg, model, optimizer, s.mf, train, parts, test).Run()
		total := res.CumUpBytes + res.CumDownBytes
		if s.name == "full synchronization" {
			baseBytes = total
		}
		saved := 100 * (1 - float64(total)/float64(baseBytes))
		fmt.Printf("%-26s %-10.3f %.1f%%\n", s.name, res.BestAcc, saved)
	}
	fmt.Println("\nexpected shape: both strawmen fall below full synchronization;")
	fmt.Println("APF matches (or beats) it while still saving traffic.")
	return nil
}
