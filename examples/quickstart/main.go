// Quickstart: federated training of a small CNN on synthetic non-IID
// image data, with and without Adaptive Parameter Freezing (APF).
//
// Run with:
//
//	go run ./examples/quickstart
//
// It prints the accuracy trajectory of both runs and the traffic APF
// saved. Expect APF to reach comparable (often slightly better) accuracy
// while transmitting substantially less data.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/metrics"
	"apf/internal/models"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run executes the quickstart scenario.
func run() error {
	const (
		seed    = 42
		clients = 5
		rounds  = 80
	)

	// 1. Synthetic 10-class image data, split non-IID across clients with
	// a Dirichlet(1.0) draw (the paper's §7.1 setup).
	pool := data.SynthImages(data.ImageConfig{
		Classes: 10, Channels: 1, Size: 16, Samples: 650, NoiseStd: 0.8, Seed: seed,
	})
	trainIdx, testIdx := make([]int, 0, 550), make([]int, 0, 100)
	for i := 0; i < pool.Len(); i++ {
		if i < 550 {
			trainIdx = append(trainIdx, i)
		} else {
			testIdx = append(testIdx, i)
		}
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	parts := data.PartitionDirichlet(stats.SplitRNG(seed, 1), train.Labels, train.Classes, clients, 1.0)

	// 2. Model + optimizer factories: LeNet-5 with Adam, as in the paper.
	model := func(rng *rand.Rand) *nn.Network { return models.LeNet5(rng, 1, 16, 10) }
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewAdam(p, 0.002, 0) }

	cfg := fl.Config{
		Rounds:     rounds,
		LocalIters: 4,
		BatchSize:  20,
		Seed:       seed,
		EvalEvery:  5,
	}

	// 3. Run once with the APF manager, once with vanilla full-model sync.
	apfManager := func(clientID, dim int) fl.SyncManager {
		return core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 1,
			Threshold:        0.3,
			EMAAlpha:         0.9,
			Seed:             seed,
		})
	}
	vanilla := func(clientID, dim int) fl.SyncManager { return fl.NewPassthroughManager(4) }

	fmt.Println("training with APF...")
	apfRes := fl.New(cfg, model, optimizer, apfManager, train, parts, test).Run()
	fmt.Println("training without APF (vanilla FedAvg)...")
	baseRes := fl.New(cfg, model, optimizer, vanilla, train, parts, test).Run()

	// 4. Report.
	fmt.Println()
	fmt.Printf("%-8s %-12s %-12s %-14s\n", "round", "APF acc", "FedAvg acc", "APF frozen")
	apfEvals, baseEvals := apfRes.EvaluatedRounds(), baseRes.EvaluatedRounds()
	for i := range apfEvals {
		fmt.Printf("%-8d %-12.3f %-12.3f %.1f%%\n",
			apfEvals[i].Round, apfEvals[i].BestAcc, baseEvals[i].BestAcc, 100*apfEvals[i].FrozenRatio)
	}
	apfBytes := apfRes.CumUpBytes + apfRes.CumDownBytes
	baseBytes := baseRes.CumUpBytes + baseRes.CumDownBytes
	fmt.Println()
	fmt.Printf("best accuracy:   APF %.3f | FedAvg %.3f\n", apfRes.BestAcc, baseRes.BestAcc)
	fmt.Printf("traffic (all clients, push+pull): APF %s | FedAvg %s (saving %.1f%%)\n",
		metrics.FormatBytes(apfBytes), metrics.FormatBytes(baseBytes),
		100*(1-float64(apfBytes)/float64(baseBytes)))
	return nil
}
