// Writing your own synchronization scheme, and benchmarking it against the
// built-in ones.
//
// This example implements a naive custom SyncManager — "lazy sync", which
// simply skips synchronization entirely on every other round — and races
// it against vanilla FedAvg, APF, Top-K sparsification, and APF stacked
// with stochastic 8-bit quantization, all on a group-norm ResNet (the
// FL-friendly normalization) over non-IID data.
//
// Run with:
//
//	go run ./examples/custom_scheme
package main

import (
	"fmt"
	"math/rand"
	"os"

	"apf"
	"apf/internal/stats"
)

// lazySync is the custom scheme: on even rounds it behaves like vanilla
// full-model synchronization; on odd rounds it uploads nothing (weight 0)
// and ignores the broadcast, halving traffic at the cost of staleness.
// It only needs the three SyncManager methods — state, freezing, and
// byte accounting are entirely up to the implementation.
type lazySync struct {
	bytesPerValue int64
}

// PostIterate does nothing: local training is unrestricted.
func (m *lazySync) PostIterate(int, []float64) {}

// PrepareUpload pushes the full model on even rounds only.
func (m *lazySync) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	contrib := append([]float64(nil), x...)
	if round%2 == 1 {
		return contrib, 0, 0
	}
	return contrib, 1, int64(len(x)) * m.bytesPerValue
}

// ApplyDownload pulls the aggregate on even rounds only.
func (m *lazySync) ApplyDownload(round int, x, global []float64) int64 {
	if round%2 == 1 {
		return 0
	}
	copy(x, global)
	return int64(len(x)) * m.bytesPerValue
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom_scheme:", err)
		os.Exit(1)
	}
}

// run races the schemes.
func run() error {
	const (
		seed    = 17
		clients = 4
		rounds  = 60
	)
	pool := apf.SynthImages(apf.ImageConfig{
		Classes: 6, Channels: 1, Size: 10, Samples: 360, NoiseStd: 0.8, Seed: seed,
	})
	trainIdx := make([]int, 300)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, 60)
	for i := range testIdx {
		testIdx[i] = 300 + i
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	parts := apf.PartitionDirichlet(stats.SplitRNG(seed, 1), train.Labels, train.Classes, clients, 1.0)

	// A residual network with group norm: per-sample statistics, so the
	// non-IID client batches cannot skew normalization.
	model := func(rng *rand.Rand) *apf.Network {
		return apf.ResNet(rng, apf.ResNetConfig{
			StageWidths:    []int{8, 16},
			BlocksPerStage: 1,
			Norm:           apf.GroupNormFactory(4),
		}, 1, 6)
	}
	optimizer := func(p []*apf.Param) apf.Optimizer { return apf.NewSGD(p, 0.05, 0.9, 0) }
	cfg := apf.EngineConfig{Rounds: rounds, LocalIters: 3, BatchSize: 15, Seed: seed, EvalEvery: 10}

	apfCfg := apf.ManagerConfig{CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9, Seed: seed}
	schemes := []struct {
		name string
		mf   apf.ManagerFactory
	}{
		{"vanilla FedAvg", func(_, _ int) apf.SyncManager { return apf.NewPassthroughManager(4) }},
		{"lazy sync (custom)", func(_, _ int) apf.SyncManager { return &lazySync{bytesPerValue: 4} }},
		{"top-10% sparsification", func(_, dim int) apf.SyncManager { return apf.NewTopK(dim, 0.10, 4) }},
		{"APF", apf.ManagerFactoryFor(apfCfg)},
		{"APF + 8-bit stochastic quantization", func(clientID, dim int) apf.SyncManager {
			inner := apf.ManagerFactoryFor(apfCfg)(clientID, dim)
			return apf.NewStochasticQuantized(inner, 127 /* 255 grid points → 8 bits */, int64(clientID), seed)
		}},
	}

	fmt.Printf("%-36s %-10s %-12s %s\n", "scheme", "best acc", "traffic", "saved")
	var baseline int64
	for _, s := range schemes {
		res := apf.NewEngine(cfg, model, optimizer, s.mf, train, parts, test).Run()
		total := res.CumUpBytes + res.CumDownBytes
		if baseline == 0 {
			baseline = total
		}
		fmt.Printf("%-36s %-10.3f %-12s %.1f%%\n",
			s.name, res.BestAcc, formatMB(total), 100*(1-float64(total)/float64(baseline)))
	}
	fmt.Println("\nany type with PostIterate / PrepareUpload / ApplyDownload is a scheme —")
	fmt.Println("see the lazySync implementation above (25 lines).")
	return nil
}

// formatMB renders bytes as megabytes.
func formatMB(n int64) string { return fmt.Sprintf("%.2f MB", float64(n)/(1<<20)) }
