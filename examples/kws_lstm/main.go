// Keyword spotting with a 2-layer LSTM under APF — the paper's
// Speech-Commands setting (§7.1), on synthetic class-conditional
// frequency-pattern sequences.
//
// Run with:
//
//	go run ./examples/kws_lstm
package main

import (
	"fmt"
	"math/rand"
	"os"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/metrics"
	"apf/internal/models"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kws_lstm:", err)
		os.Exit(1)
	}
}

// run executes the LSTM scenario.
func run() error {
	const (
		seed    = 11
		clients = 5
		rounds  = 80
	)

	// 10 "keywords", each a characteristic multi-frequency trajectory.
	pool := data.SynthSequences(data.SequenceConfig{
		Classes: 10, SeqLen: 10, Features: 8, Samples: 550, NoiseStd: 0.4, Seed: seed,
	})
	trainIdx, testIdx := make([]int, 0, 450), make([]int, 0, 100)
	for i := 0; i < pool.Len(); i++ {
		if i < 450 {
			trainIdx = append(trainIdx, i)
		} else {
			testIdx = append(testIdx, i)
		}
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	parts := data.PartitionDirichlet(stats.SplitRNG(seed, 1), train.Labels, train.Classes, clients, 1.0)

	// 2 recurrent layers, as in the paper (hidden size scaled to CPU).
	model := func(rng *rand.Rand) *nn.Network { return models.KWSLSTM(rng, 8, 16, 2, 10) }
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0.9, 0) }
	cfg := fl.Config{Rounds: rounds, LocalIters: 4, BatchSize: 20, Seed: seed, EvalEvery: 5}

	apf := func(_, dim int) fl.SyncManager {
		return core.NewManager(core.Config{
			Dim: dim, CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9, Seed: seed,
		})
	}
	vanilla := func(_, _ int) fl.SyncManager { return fl.NewPassthroughManager(4) }

	fmt.Println("federated keyword spotting, 2-layer LSTM, 5 clients")
	apfRes := fl.New(cfg, model, optimizer, apf, train, parts, test).Run()
	baseRes := fl.New(cfg, model, optimizer, vanilla, train, parts, test).Run()

	fmt.Printf("\n%-8s %-10s %-10s %-10s\n", "round", "APF", "FedAvg", "frozen")
	a, b := apfRes.EvaluatedRounds(), baseRes.EvaluatedRounds()
	for i := range a {
		fmt.Printf("%-8d %-10.3f %-10.3f %.1f%%\n", a[i].Round, a[i].BestAcc, b[i].BestAcc, 100*a[i].FrozenRatio)
	}
	apfBytes := apfRes.CumUpBytes + apfRes.CumDownBytes
	baseBytes := baseRes.CumUpBytes + baseRes.CumDownBytes
	fmt.Printf("\nbest accuracy: APF %.3f | FedAvg %.3f\n", apfRes.BestAcc, baseRes.BestAcc)
	fmt.Printf("traffic: APF %s | FedAvg %s (saving %.1f%%)\n",
		metrics.FormatBytes(apfBytes), metrics.FormatBytes(baseBytes),
		100*(1-float64(apfBytes)/float64(baseBytes)))
	return nil
}
