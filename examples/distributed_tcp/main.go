// Real distributed federated learning over TCP: this example starts the
// aggregation server and three trainer clients (as goroutines, over
// loopback — the same code paths cmd/apf-server and cmd/apf-client use
// across machines) and shows APF's compact payloads saving real wire
// bytes, not just modeled ones.
//
// Run with:
//
//	go run ./examples/distributed_tcp
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/metrics"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
	"apf/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed_tcp:", err)
		os.Exit(1)
	}
}

// run launches one cluster with APF and one without, comparing measured
// TCP bytes.
func run() error {
	const (
		seed    = 3
		clients = 3
		rounds  = 80
	)
	pool := data.SynthImages(data.ImageConfig{
		Classes: 6, Channels: 1, Size: 10, Samples: 360, NoiseStd: 0.7, Seed: seed,
	})
	parts := data.PartitionDirichlet(stats.SplitRNG(seed, 1), pool.Labels, pool.Classes, clients, 1.0)

	model := func(rng *rand.Rand) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewDense(rng, "fc1", 100, 32),
			nn.NewTanh(),
			nn.NewDense(rng, "fc2", 32, 6),
		)
	}
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) }

	apf := func(_, dim int) fl.SyncManager {
		return core.NewManager(core.Config{
			Dim: dim, CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9, Seed: seed,
		})
	}
	vanilla := func(_, _ int) fl.SyncManager { return fl.NewPassthroughManager(4) }

	fmt.Println("running TCP cluster with APF...")
	apfRead, apfSent, err := runCluster(pool, parts, model, optimizer, apf, clients, rounds, seed)
	if err != nil {
		return err
	}
	fmt.Println("running TCP cluster without APF...")
	baseRead, baseSent, err := runCluster(pool, parts, model, optimizer, vanilla, clients, rounds, seed)
	if err != nil {
		return err
	}

	fmt.Println("\nmeasured TCP bytes at the server:")
	fmt.Printf("  APF:     received %-12s sent %s\n", metrics.FormatBytes(apfRead), metrics.FormatBytes(apfSent))
	fmt.Printf("  vanilla: received %-12s sent %s\n", metrics.FormatBytes(baseRead), metrics.FormatBytes(baseSent))
	fmt.Printf("  wire saving: %.1f%% received, %.1f%% sent\n",
		100*(1-float64(apfRead)/float64(baseRead)),
		100*(1-float64(apfSent)/float64(baseSent)))
	return nil
}

// runCluster starts one server and its clients, waits for completion, and
// returns the server-side wire byte counters.
func runCluster(pool *data.Dataset, parts [][]int, model fl.ModelFactory, optimizer fl.OptimizerFactory, mf fl.ManagerFactory, clients, rounds int, seed int64) (read, sent int64, err error) {
	initNet := model(stats.SplitRNG(seed, 1000))
	init := nn.FlattenParams(initNet.Params(), nil)

	srv, err := transport.NewServer(transport.ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: clients,
		Rounds:     rounds,
		Init:       init,
	})
	if err != nil {
		return 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	serverErr := make(chan error, 1)
	go func() {
		_, err := srv.Run(ctx)
		serverErr <- err
	}()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = transport.RunClient(ctx, transport.ClientConfig{
				Addr:       srv.Addr().String(),
				Name:       fmt.Sprintf("client-%d", i),
				Model:      model,
				Optimizer:  optimizer,
				Manager:    mf,
				Data:       pool,
				Indices:    parts[i],
				LocalIters: 3,
				BatchSize:  16,
				Seed:       seed,
			})
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return 0, 0, fmt.Errorf("client %d: %w", i, e)
		}
	}
	if e := <-serverErr; e != nil {
		return 0, 0, fmt.Errorf("server: %w", e)
	}
	read, sent = srv.WireBytes()
	return read, sent, nil
}
