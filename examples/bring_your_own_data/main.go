// Federated training on your own dataset: this example shows the
// MNIST-style IDX loading path end to end. It writes a small synthetic
// dataset to disk in the exact IDX format the MNIST distribution uses
// (so the same code loads real train-images-idx3-ubyte[.gz] files), loads
// it back through apf.LoadIDXDataset, and runs APF over it.
//
// Run with:
//
//	go run ./examples/bring_your_own_data
//
// To train on actual MNIST, point -images/-labels at the downloaded files.
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"apf"
	"apf/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bring_your_own_data:", err)
		os.Exit(1)
	}
}

// run loads (or fabricates) an IDX dataset and trains on it.
func run() error {
	imagesPath := flag.String("images", "", "IDX image file (e.g. train-images-idx3-ubyte.gz); empty fabricates a demo set")
	labelsPath := flag.String("labels", "", "IDX label file (e.g. train-labels-idx1-ubyte.gz)")
	classes := flag.Int("classes", 10, "number of classes")
	flag.Parse()

	const seed = 29
	if *imagesPath == "" {
		dir, err := os.MkdirTemp("", "apf-idx-demo")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		*imagesPath = filepath.Join(dir, "images.idx")
		*labelsPath = filepath.Join(dir, "labels.idx")
		if err := fabricateIDX(*imagesPath, *labelsPath, *classes, seed); err != nil {
			return err
		}
		fmt.Println("no -images given: fabricated a synthetic IDX dataset (same wire format as MNIST)")
	}

	ds, err := apf.LoadIDXDataset(*imagesPath, *labelsPath, *classes)
	if err != nil {
		return err
	}
	size := ds.X.Shape[2]
	fmt.Printf("loaded %d samples of %dx%d, %d classes\n", ds.Len(), size, ds.X.Shape[3], ds.Classes)

	// Hold out a test split and shard the rest across clients.
	testN := ds.Len() / 6
	trainIdx := make([]int, 0, ds.Len()-testN)
	testIdx := make([]int, 0, testN)
	for i := 0; i < ds.Len(); i++ {
		if i%6 == 5 && len(testIdx) < testN {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	train, test := ds.Subset(trainIdx), ds.Subset(testIdx)
	const clients = 4
	parts := apf.PartitionDirichlet(stats.SplitRNG(seed, 1), train.Labels, train.Classes, clients, 1.0)

	flat := ds.X.Shape[1] * size * ds.X.Shape[3]
	model := func(rng *rand.Rand) *apf.Network {
		return apf.NewNetwork(
			apf.NewFlatten(),
			apf.NewDense(rng, "fc1", flat, 48),
			apf.NewTanh(),
			apf.NewDense(rng, "fc2", 48, *classes),
		)
	}
	optimizer := func(p []*apf.Param) apf.Optimizer { return apf.NewSGD(p, 0.3, 0.9, 0) }

	cfg := apf.EngineConfig{Rounds: 100, LocalIters: 4, BatchSize: 20, Seed: seed, EvalEvery: 10}
	res := apf.NewEngine(cfg, model, optimizer,
		apf.ManagerFactoryFor(apf.ManagerConfig{CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.9, Seed: seed}),
		train, parts, test).Run()
	base := apf.NewEngine(cfg, model, optimizer,
		func(_, _ int) apf.SyncManager { return apf.NewPassthroughManager(4) },
		train, parts, test).Run()

	apfBytes := res.CumUpBytes + res.CumDownBytes
	baseBytes := base.CumUpBytes + base.CumDownBytes
	fmt.Printf("best accuracy: APF %.3f | FedAvg %.3f\n", res.BestAcc, base.BestAcc)
	fmt.Printf("traffic: APF %.2f MB | FedAvg %.2f MB (saving %.1f%%)\n",
		float64(apfBytes)/(1<<20), float64(baseBytes)/(1<<20),
		100*(1-float64(apfBytes)/float64(baseBytes)))
	return nil
}

// fabricateIDX writes a small class-conditional dataset in MNIST's IDX
// format: uint8 images [N, 12, 12] and uint8 labels [N].
func fabricateIDX(imagesPath, labelsPath string, classes int, seed int64) error {
	const (
		n    = 480
		size = 12
	)
	rng := stats.SplitRNG(seed, 9)
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = make([]float64, size*size)
		for i := range protos[c] {
			protos[c][i] = rng.Float64()
		}
	}

	var images bytes.Buffer
	images.Write([]byte{0, 0, 0x08, 3})
	for _, d := range []uint32{n, size, size} {
		binary.Write(&images, binary.BigEndian, d)
	}
	var labels bytes.Buffer
	labels.Write([]byte{0, 0, 0x08, 1})
	binary.Write(&labels, binary.BigEndian, uint32(n))

	for i := 0; i < n; i++ {
		c := i % classes
		labels.WriteByte(byte(c))
		for _, p := range protos[c] {
			v := p*200 + rng.Float64()*55
			if v > 255 {
				v = 255
			}
			images.WriteByte(byte(v))
		}
	}
	if err := os.WriteFile(imagesPath, images.Bytes(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(labelsPath, labels.Bytes(), 0o644)
}
