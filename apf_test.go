package apf_test

import (
	"math/rand"
	"testing"

	"apf"
	"apf/internal/stats"
)

// TestPublicAPIEndToEnd drives the whole library through the public facade
// only: synthesize data, split non-IID, train with APF and the passthrough
// baseline, and verify APF's contract (less traffic, frozen parameters,
// comparable accuracy).
func TestPublicAPIEndToEnd(t *testing.T) {
	const seed = 21
	pool := apf.SynthImages(apf.ImageConfig{
		Classes: 4, Channels: 1, Size: 8, Samples: 280, NoiseStd: 0.6, Seed: seed,
	})
	trainIdx := make([]int, 240)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, 40)
	for i := range testIdx {
		testIdx[i] = 240 + i
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	parts := apf.PartitionDirichlet(stats.SplitRNG(seed, 1), train.Labels, train.Classes, 3, 1.0)

	model := func(rng *rand.Rand) *apf.Network {
		return apf.NewNetwork(
			apf.NewFlatten(),
			apf.NewDense(rng, "fc1", 64, 24),
			apf.NewTanh(),
			apf.NewDense(rng, "fc2", 24, 4),
		)
	}
	optimizer := func(p []*apf.Param) apf.Optimizer { return apf.NewSGD(p, 0.3, 0, 0) }

	cfg := apf.EngineConfig{
		Rounds:     30,
		LocalIters: 4,
		BatchSize:  16,
		Seed:       seed,
		EvalEvery:  5,
	}

	apfRes := apf.NewEngine(cfg, model, optimizer,
		apf.ManagerFactoryFor(apf.ManagerConfig{
			CheckEveryRounds: 2, Threshold: 0.2, EMAAlpha: 0.9, Seed: seed,
		}),
		train, parts, test).Run()

	baseRes := apf.NewEngine(cfg, model, optimizer,
		func(_, _ int) apf.SyncManager { return apf.NewPassthroughManager(4) },
		train, parts, test).Run()

	if apfRes.CumUpBytes >= baseRes.CumUpBytes {
		t.Errorf("APF up bytes %d not below baseline %d", apfRes.CumUpBytes, baseRes.CumUpBytes)
	}
	if apfRes.Rounds[len(apfRes.Rounds)-1].FrozenRatio <= 0 {
		t.Error("APF froze nothing")
	}
	if apfRes.BestAcc < baseRes.BestAcc-0.15 {
		t.Errorf("APF accuracy %v too far below baseline %v", apfRes.BestAcc, baseRes.BestAcc)
	}
	if baseRes.BestAcc < 0.7 {
		t.Errorf("baseline failed to learn (best %v) — test setup broken", baseRes.BestAcc)
	}
}

// TestFacadeExtensions exercises APF#/APF++ and the Quantized wrapper
// through the public API.
func TestFacadeExtensions(t *testing.T) {
	mgr := apf.NewManager(apf.ManagerConfig{
		Dim:              16,
		CheckEveryRounds: 1,
		Threshold:        0.2,
		EMAAlpha:         0.8,
		Random:           apf.RandomFreeze{Mode: apf.RandomFixed, Prob: 0.5},
		Seed:             3,
	})
	q := apf.NewQuantized(mgr)
	x := make([]float64, 16)
	for round := 0; round < 6; round++ {
		for j := range x {
			x[j] += 0.1
		}
		q.PostIterate(round, x)
		contrib, w, _ := q.PrepareUpload(round, x)
		if w != 1 {
			t.Fatal("unexpected weight")
		}
		q.ApplyDownload(round, x, contrib)
	}
	if q.FrozenRatio() < 0 || q.FrozenRatio() > 1 {
		t.Errorf("frozen ratio out of range: %v", q.FrozenRatio())
	}
}
