package chaos

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	faults, err := ParseSpec("sever@3; delay@4:500ms; partial@2:16; accept:1/sever-write@5; sever-read@1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Round: 3, Kind: Sever},
		{Round: 4, Kind: Delay, Delay: 500 * time.Millisecond},
		{Round: 2, Kind: PartialWrite, Bytes: 16},
		{Peer: "accept:1", Round: 5, Kind: Sever, Op: OnWrite},
		{Round: 1, Kind: Sever, Op: OnRead},
	}
	if len(faults) != len(want) {
		t.Fatalf("parsed %d faults, want %d", len(faults), len(want))
	}
	for i, f := range faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}

	for _, bad := range []string{"", "sever", "sever@x", "sever@-1", "delay@3", "delay@3:xyz", "partial@3:-2", "flip@1", ";;", "sever@3:junk", "kill-server@2:5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestParseSpecErrorsNamePosition checks a bad token in a long spec is
// reported with its 1-based position and its own text, so the operator
// can find it without bisecting the flag value.
func TestParseSpecErrorsNamePosition(t *testing.T) {
	cases := []struct {
		spec       string
		wantSubstr []string
	}{
		{"sever@3;delay@4:oops;partial@2", []string{"fault 2", `"delay@4:oops"`, "invalid delay"}},
		{"sever@3;sever@4;flip@1", []string{"fault 3", `"flip@1"`, "unknown fault kind"}},
		{"sever@nope", []string{"fault 1", `"sever@nope"`, "invalid round"}},
		{"sever@1; ;sever", []string{"fault 3", `"sever"`, "missing @round"}},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Fatalf("ParseSpec(%q) accepted", tc.spec)
		}
		for _, sub := range tc.wantSubstr {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("ParseSpec(%q) error %q missing %q", tc.spec, err, sub)
			}
		}
	}
}

// TestSpecRoundTrip formats faults back to spec syntax and re-parses
// them: the table covers every kind, both explicit anchors, peers, and
// arguments.
func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		faults []Fault
		spec   string // expected FormatSpec output
	}{
		{"sever at mark", []Fault{{Round: 3, Kind: Sever}}, "sever@3"},
		{"sever on write", []Fault{{Round: 5, Kind: Sever, Op: OnWrite}}, "sever-write@5"},
		{"sever on read", []Fault{{Round: 1, Kind: Sever, Op: OnRead}}, "sever-read@1"},
		{"delay", []Fault{{Round: 4, Kind: Delay, Delay: 500 * time.Millisecond}}, "delay@4:500ms"},
		{"partial sized", []Fault{{Round: 2, Kind: PartialWrite, Bytes: 16}}, "partial@2:16"},
		{"partial random", []Fault{{Round: 2, Kind: PartialWrite}}, "partial@2"},
		{"kill server", []Fault{{Round: 7, Kind: KillServer}}, "kill-server@7"},
		{"peered", []Fault{{Peer: "accept:1", Round: 5, Kind: Sever, Op: OnWrite}}, "accept:1/sever-write@5"},
		{
			"mixed script",
			[]Fault{
				{Peer: "eq-0", Round: 1, Kind: Sever},
				{Round: 3, Kind: Delay, Delay: 20 * time.Millisecond},
				{Round: 6, Kind: KillServer},
			},
			"eq-0/sever@1;delay@3:20ms;kill-server@6",
		},
	}
	for _, tc := range cases {
		spec := FormatSpec(tc.faults)
		if spec != tc.spec {
			t.Errorf("%s: FormatSpec = %q, want %q", tc.name, spec, tc.spec)
		}
		parsed, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("%s: re-parse %q: %v", tc.name, spec, err)
			continue
		}
		if len(parsed) != len(tc.faults) {
			t.Errorf("%s: round trip produced %d faults, want %d", tc.name, len(parsed), len(tc.faults))
			continue
		}
		for i := range parsed {
			if parsed[i] != tc.faults[i] {
				t.Errorf("%s: fault %d round-tripped to %+v, want %+v", tc.name, i, parsed[i], tc.faults[i])
			}
		}
	}
}

// TestKillServerFiresHook checks a kill-server fault invokes the OnKill
// hook exactly once, at the scripted round, and that firing without a
// hook panics (a mis-wired crash script must be loud).
func TestKillServerFiresHook(t *testing.T) {
	s := NewScript(1, Fault{Round: 4, Kind: KillServer})
	kills := 0
	s.SetOnKill(func() { kills++ })
	c, srv := pipePeer(s, "accept:0")
	defer srv.Close()

	c.MarkRound(3)
	if kills != 0 {
		t.Fatalf("hook fired before the scripted round")
	}
	c.MarkRound(4)
	if kills != 1 {
		t.Fatalf("kills = %d after the scripted round, want 1", kills)
	}
	c.MarkRound(4) // fault already consumed
	c2, srv2 := pipePeer(s, "accept:1")
	defer srv2.Close()
	c2.MarkRound(4)
	if kills != 1 {
		t.Fatalf("kills = %d, kill fault fired more than once", kills)
	}

	s2 := NewScript(1, Fault{Round: 0, Kind: KillServer})
	c3, srv3 := pipePeer(s2, "accept:0")
	defer srv3.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("KillServer with no OnKill hook did not panic")
		}
	}()
	c3.MarkRound(0)
}

// pipePeer returns a wrapped client end and the raw server end of a pipe.
func pipePeer(s *Script, peer string) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return s.Wrap(peer, a), b
}

func TestSeverAtMark(t *testing.T) {
	s := NewScript(1, Fault{Peer: "c0", Round: 3, Kind: Sever})
	c, srv := pipePeer(s, "c0")
	defer srv.Close()

	c.MarkRound(2) // not scripted: no effect
	go func() { _, _ = srv.Read(make([]byte, 8)) }()
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("write before fault: %v", err)
	}

	c.MarkRound(3)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after sever: err = %v, want ErrInjected", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Errorf("read after sever: err = %v, want ErrInjected", err)
	}
}

func TestFaultFiresOncePerScript(t *testing.T) {
	s := NewScript(1, Fault{Peer: "c0", Round: 3, Kind: Sever})
	c1, srv1 := pipePeer(s, "c0")
	defer srv1.Close()
	c1.MarkRound(3)
	if _, err := c1.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("first connection not severed")
	}

	// The reconnected peer marks the same round without re-triggering.
	c2, srv2 := pipePeer(s, "c0")
	defer srv2.Close()
	c2.MarkRound(3)
	go func() { _, _ = srv2.Read(make([]byte, 8)) }()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Errorf("second connection severed again: %v", err)
	}
}

func TestDelayOnWrite(t *testing.T) {
	const d = 60 * time.Millisecond
	s := NewScript(1, Fault{Round: 1, Kind: Delay, Delay: d})
	c, srv := pipePeer(s, "any")
	defer srv.Close()
	go func() { _, _ = io.ReadFull(srv, make([]byte, 4)) }()

	c.MarkRound(1)
	start := time.Now()
	if _, err := c.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < d {
		t.Errorf("delayed write took %v, want >= %v", took, d)
	}
	// The delay is consumed: the next write is prompt.
	go func() { _, _ = io.ReadFull(srv, make([]byte, 4)) }()
	start = time.Now()
	if _, err := c.Write([]byte("fast")); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > d {
		t.Errorf("second write took %v, delay not consumed", took)
	}
}

func TestPartialWriteTearsMessage(t *testing.T) {
	s := NewScript(1, Fault{Round: 2, Kind: PartialWrite, Bytes: 4})
	c, srv := pipePeer(s, "c0")
	defer srv.Close()

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := srv.Read(buf)
		got <- buf[:n]
	}()

	c.MarkRound(2)
	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v, want ErrInjected", err)
	}
	if n != 4 {
		t.Errorf("partial write wrote %d bytes, want 4", n)
	}
	select {
	case b := <-got:
		if string(b) != "0123" {
			t.Errorf("peer read %q, want prefix \"0123\"", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never saw the torn prefix")
	}
}

func TestPeerScoping(t *testing.T) {
	s := NewScript(1, Fault{Peer: "victim", Round: 0, Kind: Sever})
	bystander, srv := pipePeer(s, "bystander")
	defer srv.Close()
	bystander.MarkRound(0)
	go func() { _, _ = srv.Read(make([]byte, 8)) }()
	if _, err := bystander.Write([]byte("ok")); err != nil {
		t.Errorf("fault leaked to a different peer: %v", err)
	}
}

func TestListenerNamesByAcceptOrder(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScript(1, Fault{Peer: "accept:1", Round: 0, Kind: Sever})
	ln := s.Listener(inner)
	defer ln.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
	}
	first := (<-accepted).(*Conn)
	second := (<-accepted).(*Conn)
	first.MarkRound(0)
	second.MarkRound(0)
	if _, err := first.Write([]byte("x")); err != nil {
		t.Errorf("accept:0 severed, fault targeted accept:1: %v", err)
	}
	if _, err := second.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("accept:1 not severed: %v", err)
	}
}
