// Package chaos injects deterministic, scripted network faults into the
// transport layer for fault-tolerance testing. A Script holds faults keyed
// by (peer, round); Conn wraps a net.Conn and fires the scripted fault —
// connection severing, message delay, or a partial (torn) write — when the
// protocol reaches the scripted round. The transport announces rounds by
// calling MarkRound on its connections, so scripts are expressed in
// protocol terms ("kill client shard-1 at round 3") rather than byte or
// call counts.
//
// Every randomized choice (partial-write prefix length when unspecified)
// derives from the script seed and the peer name, never from wall clock or
// global state, so a scripted run is reproducible bit for bit. The
// transport writes each wire frame with a single Write call, so a torn
// write cuts a frame mid-header or mid-payload — exactly the truncation
// the framing's length and CRC checks exist to catch. Each fault
// fires exactly once per script: after a severed client redials, the new
// connection does not re-trigger the fault that killed its predecessor.
//
// Wrap a client's dialer with Script.Dialer, or a server's listener with
// Script.Listener (accepted connections are named "accept:0", "accept:1",
// … in accept order). Command-line use: ParseSpec parses the -chaos flag
// syntax of cmd/apf-client and cmd/apf-server.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind selects the fault behaviour.
type Kind int

// Fault kinds.
const (
	// Sever closes the connection at the trigger point.
	Sever Kind = iota + 1
	// Delay sleeps before the triggering operation proceeds.
	Delay
	// PartialWrite writes only a prefix of the triggering write, then
	// severs the connection, leaving a torn message on the wire.
	PartialWrite
	// KillServer invokes the script's OnKill hook at the trigger point,
	// modelling a coordinator crash (kill -9) rather than a connection
	// fault. The process under test wires OnKill to its crash path:
	// cmd/apf-server SIGKILLs itself; in-process tests cancel the server
	// context. Peer naming still applies — the fault fires when the
	// scripted round is marked on a matching connection.
	KillServer
)

// String names the kind in -chaos flag syntax.
func (k Kind) String() string {
	switch k {
	case Sever:
		return "sever"
	case Delay:
		return "delay"
	case PartialWrite:
		return "partial"
	case KillServer:
		return "kill-server"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op anchors a fault to an operation at or after its round mark.
type Op int

// Fault trigger anchors.
const (
	// AtMark fires immediately when the round is marked.
	AtMark Op = iota + 1
	// OnWrite fires on the first write at/after the round mark.
	OnWrite
	// OnRead fires on the first read at/after the round mark.
	OnRead
)

// Fault is one scripted injection point.
type Fault struct {
	// Peer names the connection the fault applies to: the dialer name for
	// clients, "accept:<i>" for the i-th server-side accepted connection.
	// Empty matches every peer.
	Peer string
	// Round is the protocol round (as announced via MarkRound) at which
	// the fault arms.
	Round int
	// Kind selects the behaviour; Op anchors it (zero value picks the
	// kind's natural anchor: Sever→AtMark, Delay→OnWrite,
	// PartialWrite→OnWrite).
	Kind Kind
	Op   Op
	// Delay is the sleep for Kind Delay.
	Delay time.Duration
	// Bytes is the prefix length for Kind PartialWrite; 0 draws a seeded
	// random prefix of the triggering write.
	Bytes int
}

// anchor resolves the fault's effective trigger anchor.
func (f Fault) anchor() Op {
	if f.Op != 0 {
		return f.Op
	}
	if f.Kind == Sever || f.Kind == KillServer {
		return AtMark
	}
	return OnWrite
}

// ErrInjected is the error surfaced by I/O on a chaos-severed connection.
var ErrInjected = fmt.Errorf("chaos: connection severed by fault injection")

// Script is a seeded set of faults consumed over one run. Safe for
// concurrent use by multiple connections.
type Script struct {
	seed int64

	mu       sync.Mutex
	faults   []Fault
	fired    []bool
	accepted int
	onKill   func()
}

// NewScript builds a script from the given faults.
func NewScript(seed int64, faults ...Fault) *Script {
	return &Script{
		seed:   seed,
		faults: append([]Fault(nil), faults...),
		fired:  make([]bool, len(faults)),
	}
}

// SetOnKill installs the hook invoked by KillServer faults. Set it before
// any connection reaches a scripted kill round; a KillServer fault firing
// with no hook installed panics (a mis-wired crash script must not
// silently keep the process alive).
func (s *Script) SetOnKill(fn func()) {
	s.mu.Lock()
	s.onKill = fn
	s.mu.Unlock()
}

// kill invokes the OnKill hook for a fired KillServer fault.
func (s *Script) kill() {
	s.mu.Lock()
	fn := s.onKill
	s.mu.Unlock()
	if fn == nil {
		panic("chaos: KillServer fault fired with no OnKill hook installed")
	}
	fn()
}

// take consumes all unfired faults for (peer, round); each is returned at
// most once per script.
func (s *Script) take(peer string, round int) []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Fault
	for i, f := range s.faults {
		if s.fired[i] || f.Round != round {
			continue
		}
		if f.Peer != "" && f.Peer != peer {
			continue
		}
		s.fired[i] = true
		out = append(out, f)
	}
	return out
}

// rngFor derives the deterministic random stream for one peer.
func (s *Script) rngFor(peer string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(peer))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
}

// Wrap instruments one connection for the named peer.
func (s *Script) Wrap(peer string, conn net.Conn) *Conn {
	return &Conn{Conn: conn, script: s, peer: peer, rng: s.rngFor(peer)}
}

// DialFunc matches the transport's pluggable dialer signature.
type DialFunc func(network, addr string) (net.Conn, error)

// Dialer wraps base so every dialed connection is instrumented for peer.
func (s *Script) Dialer(peer string, base DialFunc) DialFunc {
	return func(network, addr string) (net.Conn, error) {
		conn, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		return s.Wrap(peer, conn), nil
	}
}

// Listener wraps ln so accepted connections are instrumented, named
// "accept:<i>" in accept order.
func (s *Script) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, script: s}
}

// listener implements net.Listener with chaos instrumentation.
type listener struct {
	net.Listener
	script *Script
}

// Accept wraps the next connection with its accept-order peer name.
func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.script.mu.Lock()
	peer := fmt.Sprintf("accept:%d", l.script.accepted)
	l.script.accepted++
	l.script.mu.Unlock()
	return l.script.Wrap(peer, conn), nil
}

// Conn is a fault-injecting net.Conn. The transport announces protocol
// progress via MarkRound; armed faults then fire on the anchored operation.
type Conn struct {
	net.Conn
	script *Script
	peer   string

	mu           sync.Mutex
	rng          *rand.Rand
	pendingWrite []Fault
	pendingRead  []Fault
	severed      bool
}

// MarkRound arms this connection's faults scripted for round; an AtMark
// sever fires immediately.
func (c *Conn) MarkRound(round int) {
	for _, f := range c.script.take(c.peer, round) {
		if f.Kind == KillServer && f.anchor() == AtMark {
			c.script.kill()
			continue
		}
		switch f.anchor() {
		case AtMark:
			c.sever()
		case OnWrite:
			c.mu.Lock()
			c.pendingWrite = append(c.pendingWrite, f)
			c.mu.Unlock()
		case OnRead:
			c.mu.Lock()
			c.pendingRead = append(c.pendingRead, f)
			c.mu.Unlock()
		}
	}
}

// sever closes the underlying connection; subsequent I/O fails.
func (c *Conn) sever() {
	c.mu.Lock()
	c.severed = true
	c.mu.Unlock()
	closeConn(c.Conn)
}

// closeConn force-closes, using SetLinger(0) on TCP connections so the
// peer observes a reset rather than a clean shutdown.
func closeConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// Write applies pending write-anchored faults, then forwards.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	pending := c.pendingWrite
	c.pendingWrite = nil
	rng := c.rng
	c.mu.Unlock()

	for _, f := range pending {
		switch f.Kind {
		case Sever:
			c.sever()
			return 0, ErrInjected
		case KillServer:
			c.script.kill()
			c.sever() // the dead process's sockets reset
			return 0, ErrInjected
		case Delay:
			time.Sleep(f.Delay)
		case PartialWrite:
			n := f.Bytes
			if n <= 0 || n >= len(p) {
				n = rng.Intn(len(p)/2 + 1) // torn prefix, at most half
			}
			written, _ := c.Conn.Write(p[:n])
			c.sever()
			return written, ErrInjected
		}
	}
	return c.Conn.Write(p)
}

// Read applies pending read-anchored faults, then forwards.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.severed {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	pending := c.pendingRead
	c.pendingRead = nil
	c.mu.Unlock()

	for _, f := range pending {
		switch f.Kind {
		case Sever, PartialWrite:
			c.sever()
			return 0, ErrInjected
		case KillServer:
			c.script.kill()
			c.sever()
			return 0, ErrInjected
		case Delay:
			time.Sleep(f.Delay)
		}
	}
	return c.Conn.Read(p)
}

// ParseSpec parses the -chaos flag syntax: semicolon-separated faults
//
//	[peer/]kind@round[:arg]
//
// where kind is sever, sever-write, sever-read, delay, partial, or
// kill-server; arg is the delay duration (delay) or prefix byte count
// (partial). Examples:
//
//	sever@3                        kill the connection at round 3
//	delay@4:500ms                  sleep 500ms before round 4's send
//	partial@2:16                   tear round 2's send after 16 bytes
//	accept:1/sever-write@5         server side: sever accepted conn 1
//	                               during round 5's broadcast write
//	kill-server@7                  crash the coordinator when round 7
//	                               is announced (needs an OnKill hook)
//
// Errors name the offending token and its 1-based position in the spec,
// so a long flag value pinpoints its own bad entry.
func ParseSpec(spec string) ([]Fault, error) {
	var out []Fault
	for pos, raw := range strings.Split(spec, ";") {
		part := strings.TrimSpace(raw)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, fmt.Errorf("chaos: fault %d (%q): %w", pos+1, part, err)
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty fault spec %q", spec)
	}
	return out, nil
}

// parseFault parses one [peer/]kind@round[:arg] token.
func parseFault(part string) (Fault, error) {
	var f Fault
	if i := strings.LastIndex(part, "/"); i >= 0 {
		f.Peer, part = part[:i], part[i+1:]
	}
	kindArg, roundArg, ok := strings.Cut(part, "@")
	if !ok {
		return Fault{}, fmt.Errorf("missing @round")
	}
	roundStr, arg, hasArg := strings.Cut(roundArg, ":")
	round, err := strconv.Atoi(roundStr)
	if err != nil || round < 0 {
		return Fault{}, fmt.Errorf("invalid round %q", roundStr)
	}
	f.Round = round
	switch kindArg {
	case "sever":
		f.Kind = Sever
	case "sever-write":
		f.Kind, f.Op = Sever, OnWrite
	case "sever-read":
		f.Kind, f.Op = Sever, OnRead
	case "kill-server":
		f.Kind = KillServer
	case "delay":
		f.Kind = Delay
		if !hasArg {
			return Fault{}, fmt.Errorf("delay missing duration")
		}
		d, err := time.ParseDuration(arg)
		if err != nil {
			return Fault{}, fmt.Errorf("invalid delay %q: %w", arg, err)
		}
		f.Delay = d
	case "partial":
		f.Kind = PartialWrite
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 0 {
				return Fault{}, fmt.Errorf("invalid partial-write size %q", arg)
			}
			f.Bytes = n
		}
	default:
		return Fault{}, fmt.Errorf("unknown fault kind %q", kindArg)
	}
	if hasArg && f.Kind != Delay && f.Kind != PartialWrite {
		return Fault{}, fmt.Errorf("%s takes no :%s argument", kindArg, arg)
	}
	return f, nil
}

// FormatSpec renders faults back into ParseSpec syntax; parsing the
// result reproduces the faults (the round-trip is tested). Faults with
// anchors or kinds the flag syntax cannot express come out closest-match
// (e.g. an OnRead delay formats as a plain delay).
func FormatSpec(faults []Fault) string {
	parts := make([]string, 0, len(faults))
	for _, f := range faults {
		var b strings.Builder
		if f.Peer != "" {
			b.WriteString(f.Peer)
			b.WriteByte('/')
		}
		switch {
		case f.Kind == Sever && f.Op == OnWrite:
			b.WriteString("sever-write")
		case f.Kind == Sever && f.Op == OnRead:
			b.WriteString("sever-read")
		default:
			b.WriteString(f.Kind.String())
		}
		fmt.Fprintf(&b, "@%d", f.Round)
		switch f.Kind {
		case Delay:
			fmt.Fprintf(&b, ":%s", f.Delay)
		case PartialWrite:
			if f.Bytes > 0 {
				fmt.Fprintf(&b, ":%d", f.Bytes)
			}
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}
