package data

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// encodeIDX builds an IDX byte stream for tests.
func encodeIDX(t *testing.T, elemType byte, shape []int, write func(w *bytes.Buffer)) []byte {
	t.Helper()
	var b bytes.Buffer
	b.Write([]byte{0, 0, elemType, byte(len(shape))})
	for _, d := range shape {
		if err := binary.Write(&b, binary.BigEndian, uint32(d)); err != nil {
			t.Fatal(err)
		}
	}
	write(&b)
	return b.Bytes()
}

func TestLoadIDXUint8(t *testing.T) {
	raw := encodeIDX(t, idxTypeUint8, []int{2, 2}, func(w *bytes.Buffer) {
		w.Write([]byte{0, 128, 255, 7})
	})
	got, err := LoadIDX(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shape[0] != 2 || got.Shape[1] != 2 {
		t.Fatalf("shape %v", got.Shape)
	}
	want := []float64{0, 128, 255, 7}
	for i, v := range want {
		if got.Data[i] != v {
			t.Errorf("data[%d] = %v, want %v", i, got.Data[i], v)
		}
	}
}

func TestLoadIDXFloat64(t *testing.T) {
	raw := encodeIDX(t, idxTypeFloat64, []int{3}, func(w *bytes.Buffer) {
		binary.Write(w, binary.BigEndian, []float64{1.5, -2.25, 0})
	})
	got, err := LoadIDX(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[1] != -2.25 {
		t.Errorf("data = %v", got.Data)
	}
}

func TestLoadIDXErrors(t *testing.T) {
	tests := []struct {
		name string
		raw  []byte
	}{
		{"short magic", []byte{0, 0}},
		{"bad magic", []byte{1, 2, 8, 1, 0, 0, 0, 1, 5}},
		{"rank zero", []byte{0, 0, 8, 0}},
		{"bad type", func() []byte {
			var b bytes.Buffer
			b.Write([]byte{0, 0, 0x42, 1})
			binary.Write(&b, binary.BigEndian, uint32(1))
			b.WriteByte(5)
			return b.Bytes()
		}()},
		{"truncated payload", func() []byte {
			var b bytes.Buffer
			b.Write([]byte{0, 0, 8, 1})
			binary.Write(&b, binary.BigEndian, uint32(10))
			b.Write([]byte{1, 2})
			return b.Bytes()
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadIDX(bytes.NewReader(tt.raw)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestLoadIDXDatasetMNISTStyle(t *testing.T) {
	dir := t.TempDir()
	// 3 "images" of 4×4 uint8 pixels, labels {0, 2, 1}.
	images := encodeIDX(t, idxTypeUint8, []int{3, 4, 4}, func(w *bytes.Buffer) {
		for i := 0; i < 3*16; i++ {
			w.WriteByte(byte(i * 5))
		}
	})
	labels := encodeIDX(t, idxTypeUint8, []int{3}, func(w *bytes.Buffer) {
		w.Write([]byte{0, 2, 1})
	})

	imgPath := filepath.Join(dir, "images.idx.gz")
	labPath := filepath.Join(dir, "labels.idx")
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	gz.Write(images)
	gz.Close()
	if err := os.WriteFile(imgPath, gzBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(labPath, labels, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := LoadIDXDataset(imgPath, labPath, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Classes != 3 {
		t.Fatalf("dataset %d samples, %d classes", ds.Len(), ds.Classes)
	}
	// Channel dimension inserted: [3, 1, 4, 4].
	if ds.X.Rank() != 4 || ds.X.Shape[1] != 1 {
		t.Fatalf("image shape %v", ds.X.Shape)
	}
	// Pixel scaling to [0, 1].
	for _, v := range ds.X.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v not scaled", v)
		}
	}
	if ds.Labels[1] != 2 {
		t.Errorf("labels = %v", ds.Labels)
	}
}

func TestLoadIDXDatasetValidation(t *testing.T) {
	dir := t.TempDir()
	images := encodeIDX(t, idxTypeUint8, []int{2, 2, 2}, func(w *bytes.Buffer) {
		w.Write(make([]byte, 8))
	})
	labels := encodeIDX(t, idxTypeUint8, []int{3}, func(w *bytes.Buffer) {
		w.Write([]byte{0, 1, 2})
	})
	imgPath := filepath.Join(dir, "img.idx")
	labPath := filepath.Join(dir, "lab.idx")
	os.WriteFile(imgPath, images, 0o644)
	os.WriteFile(labPath, labels, 0o644)
	if _, err := LoadIDXDataset(imgPath, labPath, 3); err == nil {
		t.Error("accepted mismatched image/label counts")
	}
	if _, err := LoadIDXDataset(filepath.Join(dir, "missing"), labPath, 3); err == nil {
		t.Error("accepted missing file")
	}
}

func TestLoadCSV(t *testing.T) {
	csv := `
# a comment
feat1,feat2,label
0.5,1.5,0
-1.0,2.0,1
3.5,0.0,2
`
	ds, err := LoadCSV(strings.NewReader(csv), -1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.X.Shape[1] != 2 {
		t.Fatalf("dataset shape %v, %d samples", ds.X.Shape, ds.Len())
	}
	if ds.Labels[2] != 2 || ds.X.At(1, 0) != -1.0 {
		t.Errorf("parsed wrong: labels=%v x=%v", ds.Labels, ds.X.Data)
	}
}

func TestLoadCSVLabelColumnFirst(t *testing.T) {
	ds, err := LoadCSV(strings.NewReader("1,0.5,2.5\n0,1.5,3.5\n"), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labels[0] != 1 || ds.X.At(0, 1) != 2.5 {
		t.Errorf("labels=%v x=%v", ds.Labels, ds.X.Data)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	tests := []struct {
		name  string
		csv   string
		col   int
		class int
	}{
		{"empty", "", -1, 2},
		{"label out of range", "1,5\n", -1, 2},
		{"non-integer label", "1,0.5\n", -1, 2},
		{"ragged rows", "1,2,0\n1,0\n", -1, 2},
		{"bad column", "1,0\n", 7, 2},
		{"mid-file garbage", "1,0\nx,y\n", -1, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadCSV(strings.NewReader(tt.csv), tt.col, tt.class); err == nil {
				t.Error("expected error")
			}
		})
	}
}
