package data

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"apf/internal/tensor"
)

// The synthetic generators make the reproduction self-contained, but a
// downstream user will want to train on real data. These loaders cover the
// two most common offline formats: the IDX format of MNIST-style image
// datasets and plain CSV feature tables.

// idx magic data types (the third magic byte).
const (
	idxTypeUint8   = 0x08
	idxTypeInt8    = 0x09
	idxTypeInt16   = 0x0B
	idxTypeInt32   = 0x0C
	idxTypeFloat32 = 0x0D
	idxTypeFloat64 = 0x0E
)

// LoadIDX parses an IDX-encoded tensor (the MNIST container format:
// big-endian magic [0, 0, type, rank] followed by rank dimension sizes and
// the raw elements). Gzip-compressed streams (*.gz, as distributed on the
// MNIST site) are detected by their path suffix in LoadIDXFile.
func LoadIDX(r io.Reader) (*tensor.Tensor, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("data: idx magic: %w", err)
	}
	if magic[0] != 0 || magic[1] != 0 {
		return nil, fmt.Errorf("data: bad idx magic % x", magic)
	}
	rank := int(magic[3])
	if rank == 0 || rank > 4 {
		return nil, fmt.Errorf("data: unsupported idx rank %d", rank)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.BigEndian, &d); err != nil {
			return nil, fmt.Errorf("data: idx dimension %d: %w", i, err)
		}
		if d == 0 || d > 1<<28 {
			return nil, fmt.Errorf("data: implausible idx dimension %d", d)
		}
		shape[i] = int(d)
		n *= int(d)
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("data: idx tensor too large (%d elements)", n)
	}

	out := tensor.New(shape...)
	br := bufio.NewReader(r)
	switch magic[2] {
	case idxTypeUint8:
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: idx payload: %w", err)
		}
		for i, b := range buf {
			out.Data[i] = float64(b)
		}
	case idxTypeInt8:
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: idx payload: %w", err)
		}
		for i, b := range buf {
			out.Data[i] = float64(int8(b))
		}
	case idxTypeInt16:
		for i := 0; i < n; i++ {
			var v int16
			if err := binary.Read(br, binary.BigEndian, &v); err != nil {
				return nil, fmt.Errorf("data: idx payload: %w", err)
			}
			out.Data[i] = float64(v)
		}
	case idxTypeInt32:
		for i := 0; i < n; i++ {
			var v int32
			if err := binary.Read(br, binary.BigEndian, &v); err != nil {
				return nil, fmt.Errorf("data: idx payload: %w", err)
			}
			out.Data[i] = float64(v)
		}
	case idxTypeFloat32:
		for i := 0; i < n; i++ {
			var v float32
			if err := binary.Read(br, binary.BigEndian, &v); err != nil {
				return nil, fmt.Errorf("data: idx payload: %w", err)
			}
			out.Data[i] = float64(v)
		}
	case idxTypeFloat64:
		if err := binary.Read(br, binary.BigEndian, out.Data); err != nil {
			return nil, fmt.Errorf("data: idx payload: %w", err)
		}
	default:
		return nil, fmt.Errorf("data: unsupported idx element type %#02x", magic[2])
	}
	return out, nil
}

// LoadIDXFile opens (and transparently gunzips *.gz) an IDX file.
func LoadIDXFile(path string) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("data: gunzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return LoadIDX(r)
}

// LoadIDXDataset assembles a Dataset from an MNIST-style pair of IDX
// files: images of rank ≥ 2 ([N, ...]) and labels of rank 1 ([N]). Image
// values are scaled by 1/255 when they exceed [0, 1] (the MNIST
// convention); rank-3 image tensors gain a singleton channel dimension so
// convolutions can consume them directly.
func LoadIDXDataset(imagesPath, labelsPath string, classes int) (*Dataset, error) {
	images, err := LoadIDXFile(imagesPath)
	if err != nil {
		return nil, fmt.Errorf("data: images: %w", err)
	}
	labelsT, err := LoadIDXFile(labelsPath)
	if err != nil {
		return nil, fmt.Errorf("data: labels: %w", err)
	}
	if labelsT.Rank() != 1 {
		return nil, fmt.Errorf("data: labels must be rank 1, got %v", labelsT.Shape)
	}
	if images.Rank() < 2 {
		return nil, fmt.Errorf("data: images must be rank ≥ 2, got %v", images.Shape)
	}
	if images.Shape[0] != labelsT.Shape[0] {
		return nil, fmt.Errorf("data: %d images but %d labels", images.Shape[0], labelsT.Shape[0])
	}

	if images.Rank() == 3 { // [N, H, W] → [N, 1, H, W]
		images = images.Reshape(images.Shape[0], 1, images.Shape[1], images.Shape[2])
	}
	maxV := 0.0
	for _, v := range images.Data {
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 1 {
		images.Scale(1 / 255.0)
	}

	labels := make([]int, labelsT.Shape[0])
	for i, v := range labelsT.Data {
		y := int(v)
		if float64(y) != v || y < 0 || y >= classes {
			return nil, fmt.Errorf("data: label %v at row %d out of range [0,%d)", v, i, classes)
		}
		labels[i] = y
	}
	return &Dataset{X: images, Labels: labels, Classes: classes}, nil
}

// LoadCSV parses a numeric CSV feature table into a Dataset: every row is
// one sample, the column at labelCol (negative counts from the end) holds
// the integer class label, and all remaining columns are features. Rows
// beginning with '#' and a single header row of non-numeric cells are
// skipped.
func LoadCSV(r io.Reader, labelCol, classes int) (*Dataset, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var features [][]float64
	var labels []int
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		cells := strings.Split(text, ",")
		col := labelCol
		if col < 0 {
			col += len(cells)
		}
		if col < 0 || col >= len(cells) {
			return nil, fmt.Errorf("data: line %d: label column %d out of range for %d cells", line, labelCol, len(cells))
		}
		row := make([]float64, 0, len(cells)-1)
		label := -1
		parseOK := true
		for i, cell := range cells {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				parseOK = false
				break
			}
			if i == col {
				label = int(v)
				if float64(label) != v {
					return nil, fmt.Errorf("data: line %d: non-integer label %q", line, cell)
				}
				continue
			}
			row = append(row, v)
		}
		if !parseOK {
			if len(features) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("data: line %d: non-numeric cell", line)
		}
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("data: line %d: label %d out of range [0,%d)", line, label, classes)
		}
		if len(features) > 0 && len(row) != len(features[0]) {
			return nil, fmt.Errorf("data: line %d: %d features, want %d", line, len(row), len(features[0]))
		}
		features = append(features, row)
		labels = append(labels, label)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("data: read csv: %w", err)
	}
	if len(features) == 0 {
		return nil, fmt.Errorf("data: empty csv")
	}

	dim := len(features[0])
	x := tensor.New(len(features), dim)
	for i, row := range features {
		copy(x.Data[i*dim:(i+1)*dim], row)
	}
	return &Dataset{X: x, Labels: labels, Classes: classes}, nil
}
