// Package data provides the datasets and non-IID partitioning used by the
// reproduction. The paper trains on CIFAR-10 and the Speech-Commands
// keyword-spotting subset; neither is available offline, so this package
// generates synthetic class-conditional substitutes that preserve the
// properties APF depends on: fast early learning followed by a stationary
// oscillation phase, non-uniform per-parameter convergence, and genuinely
// divergent local optima under non-IID splits (see DESIGN.md).
package data

import (
	"fmt"
	"math"

	"apf/internal/stats"
	"apf/internal/tensor"
)

// Dataset is an in-memory supervised classification dataset. X is a
// [N, ...] tensor whose first dimension indexes samples.
type Dataset struct {
	X       *tensor.Tensor
	Labels  []int
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int {
	if d.X.Rank() == 0 {
		return 0
	}
	return d.X.Shape[0]
}

// rowSize returns the flat element count of a single sample.
func (d *Dataset) rowSize() int {
	if d.Len() == 0 {
		return 0
	}
	return d.X.Size() / d.Len()
}

// sampleShape returns the shape of one sample (without the batch dim).
func (d *Dataset) sampleShape() []int { return d.X.Shape[1:] }

// Gather copies the samples at indices into a new batch tensor and label
// slice.
func (d *Dataset) Gather(indices []int) (*tensor.Tensor, []int) {
	row := d.rowSize()
	shape := append([]int{len(indices)}, d.sampleShape()...)
	x := tensor.New(shape...)
	labels := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			panic(fmt.Sprintf("data: sample index %d out of range [0,%d)", idx, d.Len()))
		}
		copy(x.Data[i*row:(i+1)*row], d.X.Data[idx*row:(idx+1)*row])
		labels[i] = d.Labels[idx]
	}
	return x, labels
}

// Subset materializes a new dataset containing the samples at indices.
func (d *Dataset) Subset(indices []int) *Dataset {
	x, labels := d.Gather(indices)
	return &Dataset{X: x, Labels: labels, Classes: d.Classes}
}

// ImageConfig parameterizes SynthImages.
type ImageConfig struct {
	Classes  int
	Channels int
	Size     int // square spatial extent
	Samples  int
	NoiseStd float64
	Seed     int64
}

// SynthImages generates a class-conditional image classification task: each
// class has a spatially smooth prototype pattern, and each sample is its
// class prototype plus white noise. Smoothness (via repeated box blurs)
// gives convolutions local structure to exploit; the noise floor keeps
// late-training gradients oscillatory, reproducing the stationary phase of
// the paper's Fig. 1.
func SynthImages(cfg ImageConfig) *Dataset {
	if cfg.Classes <= 1 || cfg.Channels <= 0 || cfg.Size <= 0 || cfg.Samples <= 0 {
		panic(fmt.Sprintf("data: invalid ImageConfig %+v", cfg))
	}
	rng := stats.SplitRNG(cfg.Seed, 0)
	protos := make([]*tensor.Tensor, cfg.Classes)
	for c := range protos {
		p := tensor.Randn(rng, 0, 1, cfg.Channels, cfg.Size, cfg.Size)
		smooth2D(p, cfg.Channels, cfg.Size)
		smooth2D(p, cfg.Channels, cfg.Size)
		normalize(p)
		protos[c] = p
	}

	sampleRNG := stats.SplitRNG(cfg.Seed, 1)
	x := tensor.New(cfg.Samples, cfg.Channels, cfg.Size, cfg.Size)
	labels := make([]int, cfg.Samples)
	row := cfg.Channels * cfg.Size * cfg.Size
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		labels[i] = c
		dst := x.Data[i*row : (i+1)*row]
		for j, v := range protos[c].Data {
			dst[j] = v + cfg.NoiseStd*sampleRNG.NormFloat64()
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: cfg.Classes}
}

// smooth2D applies one 3×3 box blur per channel plane in place.
func smooth2D(t *tensor.Tensor, channels, size int) {
	tmp := make([]float64, size*size)
	for c := 0; c < channels; c++ {
		plane := t.Data[c*size*size : (c+1)*size*size]
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				sum, n := 0.0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy, xx := y+dy, x+dx
						if yy < 0 || yy >= size || xx < 0 || xx >= size {
							continue
						}
						sum += plane[yy*size+xx]
						n++
					}
				}
				tmp[y*size+x] = sum / float64(n)
			}
		}
		copy(plane, tmp)
	}
}

// normalize scales t to zero mean and unit standard deviation.
func normalize(t *tensor.Tensor) {
	m := t.Mean()
	s := 0.0
	for _, v := range t.Data {
		s += (v - m) * (v - m)
	}
	std := math.Sqrt(s / float64(t.Size()))
	if std == 0 {
		std = 1
	}
	for i := range t.Data {
		t.Data[i] = (t.Data[i] - m) / std
	}
}

// SequenceConfig parameterizes SynthSequences.
type SequenceConfig struct {
	Classes  int
	SeqLen   int
	Features int
	Samples  int
	NoiseStd float64
	Seed     int64
}

// SynthSequences generates a keyword-spotting-like sequence classification
// task: each class has characteristic per-feature frequencies and phases,
// and each sample traces those sinusoids (with a random global phase shift,
// so the recurrent state matters) plus white noise.
func SynthSequences(cfg SequenceConfig) *Dataset {
	if cfg.Classes <= 1 || cfg.SeqLen <= 0 || cfg.Features <= 0 || cfg.Samples <= 0 {
		panic(fmt.Sprintf("data: invalid SequenceConfig %+v", cfg))
	}
	rng := stats.SplitRNG(cfg.Seed, 2)
	freq := make([][]float64, cfg.Classes)
	phase := make([][]float64, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		freq[c] = make([]float64, cfg.Features)
		phase[c] = make([]float64, cfg.Features)
		for f := 0; f < cfg.Features; f++ {
			freq[c][f] = 0.2 + 1.2*rng.Float64()
			phase[c][f] = 2 * math.Pi * rng.Float64()
		}
	}

	sampleRNG := stats.SplitRNG(cfg.Seed, 3)
	x := tensor.New(cfg.Samples, cfg.SeqLen, cfg.Features)
	labels := make([]int, cfg.Samples)
	row := cfg.SeqLen * cfg.Features
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes
		labels[i] = c
		shift := 2 * math.Pi * sampleRNG.Float64()
		dst := x.Data[i*row : (i+1)*row]
		for t := 0; t < cfg.SeqLen; t++ {
			for f := 0; f < cfg.Features; f++ {
				v := math.Sin(freq[c][f]*float64(t)+phase[c][f]+shift) +
					cfg.NoiseStd*sampleRNG.NormFloat64()
				dst[t*cfg.Features+f] = v
			}
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: cfg.Classes}
}
