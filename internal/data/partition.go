package data

import (
	"fmt"
	"math/rand"

	"apf/internal/stats"
	"apf/internal/tensor"
)

// PartitionIID shuffles sample indices and deals them round-robin to
// clients, producing (near-)identical local distributions.
func PartitionIID(rng *rand.Rand, n, clients int) [][]int {
	if clients <= 0 {
		panic(fmt.Sprintf("data: invalid client count %d", clients))
	}
	perm := rng.Perm(n)
	out := make([][]int, clients)
	for i, idx := range perm {
		c := i % clients
		out[c] = append(out[c], idx)
	}
	return out
}

// PartitionDirichlet synthesizes non-IID local datasets as in the paper's
// §7.1: for every class, a Dirichlet(alpha) draw over clients decides what
// share of that class each client receives. Smaller alpha means more
// skewed (less IID) splits; every sample is assigned to exactly one client.
func PartitionDirichlet(rng *rand.Rand, labels []int, classes, clients int, alpha float64) [][]int {
	if clients <= 0 || classes <= 0 {
		panic(fmt.Sprintf("data: invalid partition geometry classes=%d clients=%d", classes, clients))
	}
	byClass := make([][]int, classes)
	for i, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("data: label %d out of range [0,%d)", y, classes))
		}
		byClass[y] = append(byClass[y], i)
	}
	out := make([][]int, clients)
	for c := 0; c < classes; c++ {
		idxs := byClass[c]
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		shares := stats.Dirichlet(rng, alpha, clients)
		// Convert shares to cumulative cut points over this class's samples.
		start := 0
		cum := 0.0
		for k := 0; k < clients; k++ {
			cum += shares[k]
			end := int(cum*float64(len(idxs)) + 0.5)
			if k == clients-1 {
				end = len(idxs)
			}
			if end > len(idxs) {
				end = len(idxs)
			}
			if end > start {
				out[k] = append(out[k], idxs[start:end]...)
			}
			start = end
		}
	}
	return out
}

// PartitionByClass gives every client exactly classesPerClient distinct
// label classes (the paper's "extremely non-IID" setup, e.g. 5 clients × 2
// CIFAR classes in §7.3). Classes are assigned round-robin and each class's
// samples are divided evenly among the clients hosting it.
func PartitionByClass(rng *rand.Rand, labels []int, classes, clients, classesPerClient int) [][]int {
	if classesPerClient <= 0 || classesPerClient > classes {
		panic(fmt.Sprintf("data: classesPerClient %d out of range (1..%d)", classesPerClient, classes))
	}
	byClass := make([][]int, classes)
	for i, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("data: label %d out of range [0,%d)", y, classes))
		}
		byClass[y] = append(byClass[y], i)
	}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
	}

	// hosts[c] lists the clients hosting class c.
	hosts := make([][]int, classes)
	for k := 0; k < clients; k++ {
		for j := 0; j < classesPerClient; j++ {
			c := (k*classesPerClient + j) % classes
			hosts[c] = append(hosts[c], k)
		}
	}

	out := make([][]int, clients)
	for c := 0; c < classes; c++ {
		hs := hosts[c]
		if len(hs) == 0 {
			continue // class unused under this geometry
		}
		idxs := byClass[c]
		per := len(idxs) / len(hs)
		for hi, k := range hs {
			start := hi * per
			end := start + per
			if hi == len(hs)-1 {
				end = len(idxs)
			}
			out[k] = append(out[k], idxs[start:end]...)
		}
	}
	return out
}

// Batcher yields shuffled mini-batches from a subset of a dataset,
// reshuffling at every epoch boundary. Each client owns one Batcher seeded
// from its own RNG stream.
type Batcher struct {
	ds      *Dataset
	indices []int
	batch   int
	rng     *rand.Rand
	pos     int
}

// NewBatcher constructs a batcher over ds restricted to indices.
func NewBatcher(ds *Dataset, indices []int, batchSize int, rng *rand.Rand) *Batcher {
	if batchSize <= 0 {
		panic(fmt.Sprintf("data: invalid batch size %d", batchSize))
	}
	if len(indices) == 0 {
		panic("data: batcher needs at least one sample")
	}
	b := &Batcher{
		ds:      ds,
		indices: append([]int(nil), indices...),
		batch:   batchSize,
		rng:     rng,
	}
	b.shuffle()
	return b
}

// shuffle permutes the index order for a new epoch.
func (b *Batcher) shuffle() {
	b.rng.Shuffle(len(b.indices), func(i, j int) {
		b.indices[i], b.indices[j] = b.indices[j], b.indices[i]
	})
	b.pos = 0
}

// Len returns the number of samples the batcher draws from.
func (b *Batcher) Len() int { return len(b.indices) }

// Next returns the next mini-batch tensor and labels, wrapping (and
// reshuffling) at epoch boundaries. Batches are full-sized; a final short
// remainder is folded into the next epoch. When the subset holds fewer
// samples than one batch, the whole subset is returned.
func (b *Batcher) Next() (*tensor.Tensor, []int) {
	n := b.batch
	if n > len(b.indices) {
		n = len(b.indices)
	}
	if b.pos+n > len(b.indices) {
		b.shuffle()
	}
	sel := b.indices[b.pos : b.pos+n]
	b.pos += n
	return b.ds.Gather(sel)
}
