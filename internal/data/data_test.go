package data

import (
	"math"
	"testing"
	"testing/quick"

	"apf/internal/stats"
)

func TestSynthImagesShapeAndLabels(t *testing.T) {
	ds := SynthImages(ImageConfig{Classes: 4, Channels: 2, Size: 8, Samples: 40, NoiseStd: 0.5, Seed: 1})
	if ds.Len() != 40 {
		t.Fatalf("Len = %d", ds.Len())
	}
	wantShape := []int{40, 2, 8, 8}
	for i, d := range wantShape {
		if ds.X.Shape[i] != d {
			t.Fatalf("shape %v, want %v", ds.X.Shape, wantShape)
		}
	}
	counts := make([]int, 4)
	for _, y := range ds.Labels {
		counts[y]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d samples, want 10", c, n)
		}
	}
}

func TestSynthImagesClassSeparation(t *testing.T) {
	// Same-class samples must be closer than cross-class samples on
	// average, otherwise the task is unlearnable.
	ds := SynthImages(ImageConfig{Classes: 2, Channels: 1, Size: 8, Samples: 40, NoiseStd: 0.5, Seed: 2})
	row := 64
	dist := func(i, j int) float64 {
		s := 0.0
		for k := 0; k < row; k++ {
			d := ds.X.Data[i*row+k] - ds.X.Data[j*row+k]
			s += d * d
		}
		return s
	}
	intra, inter, nIntra, nInter := 0.0, 0.0, 0, 0
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if ds.Labels[i] == ds.Labels[j] {
				intra += dist(i, j)
				nIntra++
			} else {
				inter += dist(i, j)
				nInter++
			}
		}
	}
	if inter/float64(nInter) <= intra/float64(nIntra) {
		t.Error("cross-class distance not larger than same-class distance")
	}
}

func TestSynthImagesDeterministic(t *testing.T) {
	a := SynthImages(ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 9, NoiseStd: 0.3, Seed: 7})
	b := SynthImages(ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 9, NoiseStd: 0.3, Seed: 7})
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must generate identical datasets")
		}
	}
	c := SynthImages(ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 9, NoiseStd: 0.3, Seed: 8})
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different datasets")
	}
}

func TestSynthSequencesShape(t *testing.T) {
	ds := SynthSequences(SequenceConfig{Classes: 3, SeqLen: 12, Features: 4, Samples: 30, NoiseStd: 0.2, Seed: 3})
	if ds.Len() != 30 || ds.X.Shape[1] != 12 || ds.X.Shape[2] != 4 {
		t.Fatalf("unexpected shape %v", ds.X.Shape)
	}
	// Values are sin(...)+noise: should be bounded sanely.
	for _, v := range ds.X.Data {
		if math.Abs(v) > 1+6*0.2 {
			t.Fatalf("sequence value %v outside plausible range", v)
		}
	}
}

func TestGatherAndSubset(t *testing.T) {
	ds := SynthImages(ImageConfig{Classes: 2, Channels: 1, Size: 6, Samples: 10, NoiseStd: 0.1, Seed: 4})
	x, labels := ds.Gather([]int{3, 0})
	if x.Shape[0] != 2 || labels[0] != ds.Labels[3] || labels[1] != ds.Labels[0] {
		t.Fatal("Gather returned wrong rows")
	}
	row := 36
	for k := 0; k < row; k++ {
		if x.Data[k] != ds.X.Data[3*row+k] {
			t.Fatal("Gather copied wrong data")
		}
	}
	sub := ds.Subset([]int{1, 2, 5})
	if sub.Len() != 3 || sub.Classes != 2 {
		t.Fatal("Subset wrong")
	}
	// Subset is a copy.
	sub.X.Data[0] = 999
	if ds.X.Data[1*row] == 999 {
		t.Fatal("Subset shares storage with parent")
	}
}

func TestGatherValidatesIndices(t *testing.T) {
	ds := SynthImages(ImageConfig{Classes: 2, Channels: 1, Size: 6, Samples: 4, NoiseStd: 0.1, Seed: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("Gather with bad index did not panic")
		}
	}()
	ds.Gather([]int{4})
}

// checkPartition verifies the common partition invariants: every sample
// assigned exactly once, all indices valid.
func checkPartition(t *testing.T, parts [][]int, n int) {
	t.Helper()
	seen := make(map[int]int)
	for _, part := range parts {
		for _, idx := range part {
			if idx < 0 || idx >= n {
				t.Fatalf("index %d out of range", idx)
			}
			seen[idx]++
		}
	}
	if len(seen) != n {
		t.Fatalf("partition covers %d of %d samples", len(seen), n)
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d assigned %d times", idx, c)
		}
	}
}

func TestPartitionIID(t *testing.T) {
	rng := stats.SplitRNG(1, 0)
	parts := PartitionIID(rng, 100, 7)
	checkPartition(t, parts, 100)
	for i, p := range parts {
		if len(p) < 14 || len(p) > 15 {
			t.Errorf("client %d has %d samples, want 14-15", i, len(p))
		}
	}
}

func TestPartitionDirichlet(t *testing.T) {
	rng := stats.SplitRNG(2, 0)
	labels := make([]int, 1000)
	for i := range labels {
		labels[i] = i % 10
	}
	parts := PartitionDirichlet(rng, labels, 10, 5, 1.0)
	checkPartition(t, parts, 1000)

	// With alpha=1 the max/min class ratio per client should be large
	// (the paper reports expected max-min ratio > 50 across clients).
	skewed := false
	for _, part := range parts {
		counts := make([]float64, 10)
		for _, idx := range part {
			counts[labels[idx]]++
		}
		maxC, minC := counts[0], counts[0]
		for _, c := range counts[1:] {
			maxC = math.Max(maxC, c)
			minC = math.Min(minC, c)
		}
		if minC == 0 || maxC/math.Max(minC, 1) > 3 {
			skewed = true
		}
	}
	if !skewed {
		t.Error("Dirichlet(1) partition produced no skewed client — suspicious")
	}
}

func TestPartitionByClass(t *testing.T) {
	rng := stats.SplitRNG(3, 0)
	labels := make([]int, 500)
	for i := range labels {
		labels[i] = i % 10
	}
	parts := PartitionByClass(rng, labels, 10, 5, 2)
	checkPartition(t, parts, 500)
	for i, part := range parts {
		classes := make(map[int]bool)
		for _, idx := range part {
			classes[labels[idx]] = true
		}
		if len(classes) != 2 {
			t.Errorf("client %d hosts %d classes, want exactly 2", i, len(classes))
		}
	}
}

func TestBatcherCyclesAndShapes(t *testing.T) {
	ds := SynthImages(ImageConfig{Classes: 2, Channels: 1, Size: 6, Samples: 10, NoiseStd: 0.1, Seed: 5})
	b := NewBatcher(ds, []int{0, 1, 2, 3, 4}, 2, stats.SplitRNG(9, 0))
	seen := make(map[float64]int)
	for i := 0; i < 10; i++ { // 4 epochs' worth of batches
		x, labels := b.Next()
		if x.Shape[0] != 2 || len(labels) != 2 {
			t.Fatalf("batch shape wrong: %v", x.Shape)
		}
		seen[x.Data[0]]++
	}
	// Batches only draw from the 5 permitted samples.
	if len(seen) > 5 {
		t.Errorf("batcher produced %d distinct first-values from 5 samples", len(seen))
	}
}

func TestBatcherSmallSubset(t *testing.T) {
	ds := SynthImages(ImageConfig{Classes: 2, Channels: 1, Size: 6, Samples: 4, NoiseStd: 0.1, Seed: 6})
	b := NewBatcher(ds, []int{2}, 8, stats.SplitRNG(10, 0))
	x, labels := b.Next()
	if x.Shape[0] != 1 || labels[0] != ds.Labels[2] {
		t.Fatal("undersized subset should yield the whole subset")
	}
}

// Property: Dirichlet partition preserves all samples for random
// geometries.
func TestQuickDirichletPartitionComplete(t *testing.T) {
	f := func(seed int64, clientsRaw, classesRaw uint8) bool {
		clients := int(clientsRaw%8) + 1
		classes := int(classesRaw%6) + 2
		n := classes * 20
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % classes
		}
		rng := stats.SplitRNG(seed, 1)
		parts := PartitionDirichlet(rng, labels, classes, clients, 0.5)
		seen := make(map[int]bool)
		for _, part := range parts {
			for _, idx := range part {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
