package models

import (
	"math/rand"
	"testing"

	"apf/internal/nn"
	"apf/internal/tensor"
)

// forwardShape runs a forward pass and returns the logits shape.
func forwardShape(t *testing.T, net *nn.Network, x *tensor.Tensor) []int {
	t.Helper()
	return net.Forward(x, true).Shape
}

func TestLeNet5Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name           string
		channels, size int
	}{
		{"cifar-like", 3, 32},
		{"small", 1, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			net := LeNet5(rng, tt.channels, tt.size, 10)
			x := tensor.Randn(rng, 0, 1, 2, tt.channels, tt.size, tt.size)
			shape := forwardShape(t, net, x)
			if shape[0] != 2 || shape[1] != 10 {
				t.Errorf("logits shape %v", shape)
			}
		})
	}
}

func TestLeNet5ParamCountCIFAR(t *testing.T) {
	// The classic CIFAR LeNet-5: conv1 3→6 (456), conv2 6→16 (2416),
	// fc1 400→120 (48120), fc2 120→84 (10164), fc3 84→10 (850).
	rng := rand.New(rand.NewSource(2))
	net := LeNet5(rng, 3, 32, 10)
	want := 456 + 2416 + 48120 + 10164 + 850
	if got := nn.ParamCount(net.Params()); got != want {
		t.Errorf("LeNet-5 parameter count %d, want %d", got, want)
	}
}

func TestLeNet5RejectsTinyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too-small input")
		}
	}()
	LeNet5(rng, 1, 8, 10)
}

func TestResNet8Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := ResNet(rng, ResNet8Config(), 1, 10)
	x := tensor.Randn(rng, 0, 1, 2, 1, 16, 16)
	shape := forwardShape(t, net, x)
	if shape[0] != 2 || shape[1] != 10 {
		t.Errorf("logits shape %v", shape)
	}
}

func TestResNet18HasExpectedScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := ResNet(rng, ResNet18Config(), 3, 10)
	n := nn.ParamCount(net.Params())
	// ~11.2M trainable + BN buffers; accept the known ballpark.
	if n < 10_000_000 || n > 13_000_000 {
		t.Errorf("ResNet-18 parameter count %d outside the expected ~11M range", n)
	}
}

func TestResNetTrainsOneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := ResNet(rng, ResNet8Config(), 1, 4)
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	labels := []int{0, 1, 2, 3}
	nn.ZeroGrads(net.Params())
	loss1, _ := net.LossGrad(x, labels)
	for _, p := range net.Params() {
		if p.Trainable {
			p.Data.Axpy(-0.01, p.Grad)
		}
	}
	nn.ZeroGrads(net.Params())
	loss2, _ := net.LossGrad(x, labels)
	if loss2 >= loss1 {
		t.Errorf("gradient step did not reduce ResNet loss: %v -> %v", loss1, loss2)
	}
}

func TestKWSLSTMShapesAndParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := KWSLSTM(rng, 16, 64, 2, 10)
	x := tensor.Randn(rng, 0, 1, 3, 20, 16)
	shape := forwardShape(t, net, x)
	if shape[0] != 3 || shape[1] != 10 {
		t.Errorf("logits shape %v", shape)
	}
	// lstm1: (16+64)*256+256 ; lstm2: (64+64)*256+256 ; fc: 64*10+10.
	want := (16*256 + 64*256 + 256) + (64*256 + 64*256 + 256) + (64*10 + 10)
	if got := nn.ParamCount(net.Params()); got != want {
		t.Errorf("KWS LSTM parameter count %d, want %d", got, want)
	}
}

func TestMLPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := MLP(rng, 5, []int{32, 16}, 3)
	x := tensor.Randn(rng, 0, 1, 4, 5)
	shape := forwardShape(t, net, x)
	if shape[0] != 4 || shape[1] != 3 {
		t.Errorf("logits shape %v", shape)
	}
}

func TestModelParamNamesAreDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, net := range map[string]*nn.Network{
		"lenet":  LeNet5(rng, 1, 16, 10),
		"resnet": ResNet(rng, ResNet8Config(), 1, 10),
		"lstm":   KWSLSTM(rng, 8, 16, 2, 10),
	} {
		seen := make(map[string]bool)
		for _, p := range net.Params() {
			if seen[p.Name] {
				t.Errorf("%s: duplicate parameter name %q", name, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func TestVGGShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := VGG(rng, 1, 16, 10, []int{8, 16}, nil)
	x := tensor.Randn(rng, 0, 1, 2, 1, 16, 16)
	shape := forwardShape(t, net, x)
	if shape[0] != 2 || shape[1] != 10 {
		t.Errorf("logits shape %v", shape)
	}
}

func TestVGGWithGroupNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := VGG(rng, 1, 8, 4, []int{4}, nn.GroupNormFactory(2))
	x := tensor.Randn(rng, 0, 1, 3, 1, 8, 8)
	shape := forwardShape(t, net, x)
	if shape[0] != 3 || shape[1] != 4 {
		t.Errorf("logits shape %v", shape)
	}
}

func TestVGGTrainsOneStep(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := VGG(rng, 1, 8, 4, []int{6, 12}, nil)
	x := tensor.Randn(rng, 0, 1, 4, 1, 8, 8)
	labels := []int{0, 1, 2, 3}
	nn.ZeroGrads(net.Params())
	loss1, _ := net.LossGrad(x, labels)
	for _, p := range net.Params() {
		if p.Trainable {
			p.Data.Axpy(-0.01, p.Grad)
		}
	}
	nn.ZeroGrads(net.Params())
	loss2, _ := net.LossGrad(x, labels)
	if loss2 >= loss1 {
		t.Errorf("gradient step did not reduce VGG loss: %v -> %v", loss1, loss2)
	}
}

func TestVGGValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, f := range []func(){
		func() { VGG(rng, 1, 8, 4, nil, nil) },
		func() { VGG(rng, 1, 4, 4, []int{4, 8, 16}, nil) }, // too many halvings
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
