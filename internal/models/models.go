// Package models constructs the paper's evaluation networks over the nn
// substrate: LeNet-5 and ResNet-18 for image classification (CIFAR-10 in
// the paper) and a 2-layer hidden-size-64 LSTM for keyword spotting (§7.1).
// Architectures are parameterizable so the CPU-scale experiments can use
// reduced widths/inputs while keeping the paper's exact shapes available.
package models

import (
	"fmt"
	"math/rand"

	"apf/internal/nn"
)

// LeNet5 builds the classic LeNet-5 CNN (two 5×5 convolutions with 2×2 max
// pooling, then 120/84-unit dense layers) for square inputs of the given
// channel count and spatial size. The flattened dimension is derived from
// the input size; size must be at least 14 for the geometry to remain
// valid.
func LeNet5(rng *rand.Rand, channels, size, classes int) *nn.Network {
	s1 := size - 4 // conv1, 5×5 valid
	s2 := s1 / 2   // pool1
	s3 := s2 - 4   // conv2, 5×5 valid
	s4 := s3 / 2   // pool2
	if s4 < 1 {
		panic(fmt.Sprintf("models: input size %d too small for LeNet-5", size))
	}
	return nn.NewNetwork(
		nn.NewConv2D(rng, "conv1", channels, 6, 5, 1, 0),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(rng, "conv2", 6, 16, 5, 1, 0),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", 16*s4*s4, 120),
		nn.NewReLU(),
		nn.NewDense(rng, "fc2", 120, 84),
		nn.NewReLU(),
		nn.NewDense(rng, "fc3", 84, classes),
	)
}

// ResNetConfig selects the depth and width of a residual network.
type ResNetConfig struct {
	// StageWidths is the channel count of each stage; stages after the
	// first downsample by 2.
	StageWidths []int
	// BlocksPerStage is the number of BasicBlocks in every stage.
	BlocksPerStage int
	// Norm selects the normalization layers; nil uses batch norm (the
	// classic recipe). Use nn.GroupNormFactory for federated training on
	// non-IID data, where batch statistics differ across clients.
	Norm nn.NormFactory
}

// ResNet18Config is the standard ResNet-18 geometry (~11M parameters).
func ResNet18Config() ResNetConfig {
	return ResNetConfig{StageWidths: []int{64, 128, 256, 512}, BlocksPerStage: 2}
}

// ResNet8Config is a narrow three-stage residual network suitable for
// CPU-scale experiments; it keeps the residual/batch-norm structure whose
// stability behaviour the paper studies (Fig. 9, Fig. 17b) at a tractable
// size.
func ResNet8Config() ResNetConfig {
	return ResNetConfig{StageWidths: []int{8, 16, 32}, BlocksPerStage: 1}
}

// ResNet builds a ResNet-v1-style network: 3×3 stem convolution, stages of
// BasicBlocks, global average pooling, and a dense classifier.
func ResNet(rng *rand.Rand, cfg ResNetConfig, channels, classes int) *nn.Network {
	if len(cfg.StageWidths) == 0 || cfg.BlocksPerStage <= 0 {
		panic(fmt.Sprintf("models: invalid ResNetConfig %+v", cfg))
	}
	norm := cfg.Norm
	if norm == nil {
		norm = nn.BatchNormFactory
	}
	layers := []nn.Layer{
		nn.NewConv2D(rng, "stem.conv", channels, cfg.StageWidths[0], 3, 1, 1),
		norm("stem.norm", cfg.StageWidths[0]),
		nn.NewReLU(),
	}
	inC := cfg.StageWidths[0]
	for si, width := range cfg.StageWidths {
		for bi := 0; bi < cfg.BlocksPerStage; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			name := fmt.Sprintf("stage%d.block%d", si+1, bi+1)
			layers = append(layers, nn.NewBasicBlockNorm(rng, name, inC, width, stride, norm))
			inC = width
		}
	}
	layers = append(layers,
		nn.NewGlobalAvgPool2D(),
		nn.NewDense(rng, "fc", inC, classes),
	)
	return nn.NewNetwork(layers...)
}

// KWSLSTM builds the paper's keyword-spotting network: numLayers stacked
// LSTM layers of the given hidden size, a last-step readout, and a dense
// classifier (§7.1 uses 2 layers with hidden size 64).
func KWSLSTM(rng *rand.Rand, features, hidden, numLayers, classes int) *nn.Network {
	if numLayers <= 0 {
		panic(fmt.Sprintf("models: invalid LSTM layer count %d", numLayers))
	}
	layers := make([]nn.Layer, 0, numLayers+2)
	in := features
	for i := 0; i < numLayers; i++ {
		layers = append(layers, nn.NewLSTM(rng, fmt.Sprintf("lstm%d", i+1), in, hidden))
		in = hidden
	}
	layers = append(layers, nn.NewLastStep(), nn.NewDense(rng, "fc", hidden, classes))
	return nn.NewNetwork(layers...)
}

// VGG builds a VGG-style plain convolutional network: blocks of 3×3
// convolutions (optionally normalized) each followed by 2×2 max pooling,
// then a dense classifier head. The paper's Fig. 9 uses VGG alongside
// ResNet as its second over-parameterized model. blockWidths gives the
// channel count per block; the input must survive len(blockWidths)
// halvings.
func VGG(rng *rand.Rand, channels, size, classes int, blockWidths []int, norm nn.NormFactory) *nn.Network {
	if len(blockWidths) == 0 {
		panic("models: VGG needs at least one block")
	}
	s := size
	layers := make([]nn.Layer, 0, 4*len(blockWidths)+3)
	inC := channels
	for bi, width := range blockWidths {
		name := fmt.Sprintf("block%d", bi+1)
		layers = append(layers, nn.NewConv2D(rng, name+".conv", inC, width, 3, 1, 1))
		if norm != nil {
			layers = append(layers, norm(name+".norm", width))
		}
		layers = append(layers, nn.NewReLU(), nn.NewMaxPool2D(2, 2))
		inC = width
		s /= 2
		if s < 1 {
			panic(fmt.Sprintf("models: input size %d too small for %d VGG blocks", size, len(blockWidths)))
		}
	}
	flat := inC * s * s
	hidden := flat
	if hidden > 128 {
		hidden = 128
	}
	layers = append(layers,
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", flat, hidden),
		nn.NewReLU(),
		nn.NewDense(rng, "fc2", hidden, classes),
	)
	return nn.NewNetwork(layers...)
}

// MLP builds a plain fully connected network with tanh activations, used
// for the over-parameterization study (a very wide MLP on an easy task
// reproduces the post-convergence random-walk behaviour of Fig. 9).
func MLP(rng *rand.Rand, in int, hidden []int, classes int) *nn.Network {
	layers := make([]nn.Layer, 0, 2*len(hidden)+1)
	prev := in
	for i, h := range hidden {
		layers = append(layers, nn.NewDense(rng, fmt.Sprintf("fc%d", i+1), prev, h), nn.NewTanh())
		prev = h
	}
	layers = append(layers, nn.NewDense(rng, fmt.Sprintf("fc%d", len(hidden)+1), prev, classes))
	return nn.NewNetwork(layers...)
}
