package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		mean float64
		std  float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{5}, 5, 0},
		{"pair", []float64{1, 3}, 2, 1},
		{"symmetric", []float64{-2, 0, 2}, 0, math.Sqrt(8.0 / 3.0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Std(tt.xs); math.Abs(got-tt.std) > 1e-12 {
				t.Errorf("Std = %v, want %v", got, tt.std)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {12.5, 1.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input must remain unsorted.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile of empty slice should be NaN")
	}
}

func TestPercentileRangeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestMax(t *testing.T) {
	if got := Max([]float64{-3, -1, -2}); got != -1 {
		t.Errorf("Max = %v", got)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := SplitRNG(1, 0)
	for _, shape := range []float64{0.5, 1, 2, 5} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += GammaSample(rng, shape)
		}
		mean := sum / float64(n)
		// Gamma(shape, 1) has mean = shape.
		if math.Abs(mean-shape)/shape > 0.08 {
			t.Errorf("Gamma(%v) sample mean %v too far from %v", shape, mean, shape)
		}
	}
}

func TestDirichletProperties(t *testing.T) {
	rng := SplitRNG(2, 0)
	for _, alpha := range []float64{0.1, 1, 10} {
		for trial := 0; trial < 50; trial++ {
			d := Dirichlet(rng, alpha, 5)
			sum := 0.0
			for _, v := range d {
				if v < 0 {
					t.Fatalf("negative Dirichlet component %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet components sum to %v", sum)
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small alpha → skewed draws; large alpha → near-uniform draws.
	rng := SplitRNG(3, 0)
	maxShare := func(alpha float64) float64 {
		total := 0.0
		const trials = 200
		for i := 0; i < trials; i++ {
			d := Dirichlet(rng, alpha, 10)
			m := d[0]
			for _, v := range d[1:] {
				if v > m {
					m = v
				}
			}
			total += m
		}
		return total / trials
	}
	skewed := maxShare(0.1)
	uniform := maxShare(100)
	if skewed < 2*uniform {
		t.Errorf("expected alpha=0.1 draws (max share %v) much more skewed than alpha=100 (%v)", skewed, uniform)
	}
}

func TestSplitRNGIndependence(t *testing.T) {
	a := SplitRNG(7, 0)
	b := SplitRNG(7, 1)
	c := SplitRNG(7, 0)
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		va, vb, vc := a.Int63(), b.Int63(), c.Int63()
		if va == vc {
			same++
		}
		if va != vb {
			diff++
		}
	}
	if same != 100 {
		t.Error("identical (seed, stream) must give identical streams")
	}
	if diff < 99 {
		t.Error("different streams should diverge")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(v, 1e9)
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi+1e-9 &&
			Percentile(xs, 0) <= lo+1e-9 &&
			hi <= Percentile(xs, 100)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
