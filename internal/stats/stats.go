// Package stats provides the small statistical helpers the reproduction
// needs: means, percentiles, Dirichlet sampling for non-IID data splits,
// and deterministic RNG stream splitting.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// GammaSample draws one Gamma(shape, 1) variate using the
// Marsaglia–Tsang method (with Ahrens-style boosting for shape < 1).
func GammaSample(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic(fmt.Sprintf("stats: Gamma shape must be positive, got %v", shape))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return GammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws one sample from a symmetric Dirichlet(alpha) distribution
// of the given dimension. It is used to synthesize non-IID client class
// mixes as in the paper's §7.1 (concentration α=1; α→∞ approaches IID).
func Dirichlet(rng *rand.Rand, alpha float64, dim int) []float64 {
	if dim <= 0 {
		panic(fmt.Sprintf("stats: Dirichlet dimension must be positive, got %d", dim))
	}
	out := make([]float64, dim)
	sum := 0.0
	for i := range out {
		out[i] = GammaSample(rng, alpha)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (possible only in floating-point corner cases):
		// fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(dim)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SplitRNG derives an independent deterministic RNG stream from a base seed
// and a stream index, so that clients, data generators, and managers can be
// seeded reproducibly without sharing rand.Rand state across goroutines.
func SplitRNG(seed int64, stream int64) *rand.Rand {
	// SplitMix64-style mixing of (seed, stream) into a child seed.
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}
