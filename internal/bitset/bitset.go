// Package bitset implements the compact freezing-status bitmap
// (M_is_frozen in the paper's Alg. 1). One bit per model scalar keeps the
// mask memory overhead at 1/32 of the model itself.
package bitset

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// BitSet is a fixed-length bitmap.
type BitSet struct {
	n     int
	words []uint64
}

// New returns an all-clear bitmap of n bits.
func New(n int) *BitSet {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative length %d", n))
	}
	return &BitSet{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of bits.
func (b *BitSet) Len() int { return b.n }

// check panics when i is out of range.
func (b *BitSet) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Set sets bit i.
func (b *BitSet) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (i % wordBits)
}

// Clear clears bit i.
func (b *BitSet) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (i % wordBits)
}

// SetTo sets bit i to v.
func (b *BitSet) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Clear(i)
	}
}

// Get reports bit i.
func (b *BitSet) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Ratio returns Count/Len, or 0 for an empty set.
func (b *BitSet) Ratio() float64 {
	if b.n == 0 {
		return 0
	}
	return float64(b.Count()) / float64(b.n)
}

// Reset clears all bits.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Clone returns a deep copy.
func (b *BitSet) Clone() *BitSet {
	c := New(b.n)
	copy(c.words, b.words)
	return c
}

// Equal reports whether b and o have identical length and contents.
func (b *BitSet) Equal(o *BitSet) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the raw backing words (read-only use, e.g. serialization).
func (b *BitSet) Words() []uint64 { return b.words }

// FromWords reconstructs a bitmap of n bits from raw words. Bits beyond n
// in the final word must be zero.
func FromWords(n int, words []uint64) (*BitSet, error) {
	b := New(n)
	if len(words) != len(b.words) {
		return nil, fmt.Errorf("bitset: %d words cannot back %d bits", len(words), n)
	}
	copy(b.words, words)
	if n%wordBits != 0 && len(words) > 0 {
		tail := words[len(words)-1] >> (n % wordBits)
		if tail != 0 {
			return nil, fmt.Errorf("bitset: nonzero bits beyond length %d", n)
		}
	}
	return b, nil
}
