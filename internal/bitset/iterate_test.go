package bitset

import (
	"math/rand"
	"testing"
)

// randomSet builds a bitmap of n bits where each bit is set with
// probability p, plus the plain bool reference.
func randomSet(t *testing.T, rng *rand.Rand, n int, p float64) (*BitSet, []bool) {
	t.Helper()
	b := New(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

// lengths exercises word boundaries: sub-word, aligned, and ragged tails.
var lengths = []int{0, 1, 63, 64, 65, 127, 128, 130, 1000}

func TestNextSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.03, 0.5, 1} {
			b, ref := randomSet(t, rng, n, p)
			for i := 0; i <= n; i++ {
				want := -1
				for j := i; j < n; j++ {
					if ref[j] {
						want = j
						break
					}
				}
				if got := b.NextSet(i); got != want {
					t.Fatalf("n=%d p=%v NextSet(%d) = %d, want %d", n, p, i, got, want)
				}
			}
			if got := b.NextSet(-5); got != b.NextSet(0) {
				t.Fatalf("NextSet(-5) = %d, want NextSet(0) = %d", got, b.NextSet(0))
			}
		}
	}
}

func TestIterateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range lengths {
		b, ref := randomSet(t, rng, n, 0.4)
		var got []int
		b.IterateSet(func(i int) { got = append(got, i) })
		var want []int
		for j, set := range ref {
			if set {
				want = append(want, j)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d IterateSet visited %d bits, want %d", n, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("n=%d IterateSet[%d] = %d, want %d", n, k, got[k], want[k])
			}
		}
	}
}

func TestIterateClear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.5, 1} {
			b, ref := randomSet(t, rng, n, p)
			var got []int
			b.IterateClear(func(i int) { got = append(got, i) })
			var want []int
			for j, set := range ref {
				if !set {
					want = append(want, j)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d p=%v IterateClear visited %d bits, want %d", n, p, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("n=%d IterateClear[%d] = %d, want %d", n, k, got[k], want[k])
				}
			}
		}
	}
}

func TestAnyInWord(t *testing.T) {
	b := New(130)
	b.Set(70)
	for wi, want := range []bool{false, true, false} {
		if got := b.AnyInWord(wi); got != want {
			t.Fatalf("AnyInWord(%d) = %v, want %v", wi, got, want)
		}
	}
}

func TestSetWordClampsTail(t *testing.T) {
	b := New(70)
	b.SetWord(1, allOnes) // only bits 64..69 are valid
	if got := b.Count(); got != 6 {
		t.Fatalf("Count after SetWord = %d, want 6", got)
	}
	if _, err := FromWords(70, b.Words()); err != nil {
		t.Fatalf("SetWord left invalid tail bits: %v", err)
	}
}

func TestApplyMaskedUnmasked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.2, 0.5, 0.97, 1} {
			b, ref := randomSet(t, rng, n, p)
			src := make([]float64, n)
			for j := range src {
				src[j] = rng.NormFloat64()
			}
			dstM := make([]float64, n)
			dstU := make([]float64, n)
			for j := range dstM {
				dstM[j], dstU[j] = -1, -1
			}
			b.ApplyMasked(dstM, src)
			b.ApplyUnmasked(dstU, src)
			for j := range ref {
				wantM, wantU := -1.0, src[j]
				if ref[j] {
					wantM, wantU = src[j], -1.0
				}
				if dstM[j] != wantM {
					t.Fatalf("n=%d p=%v ApplyMasked[%d] = %v, want %v", n, p, j, dstM[j], wantM)
				}
				if dstU[j] != wantU {
					t.Fatalf("n=%d p=%v ApplyUnmasked[%d] = %v, want %v", n, p, j, dstU[j], wantU)
				}
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.3, 0.96, 1} {
			b, ref := randomSet(t, rng, n, p)
			src := make([]float64, n)
			fill := make([]float64, n)
			for j := range src {
				src[j] = rng.NormFloat64()
				fill[j] = 100 + float64(j)
			}

			compact := b.GatherUnmasked(nil, src)
			wantLen := n - b.Count()
			if len(compact) != wantLen {
				t.Fatalf("n=%d p=%v gather produced %d values, want %d", n, p, len(compact), wantLen)
			}
			k := 0
			for j, set := range ref {
				if !set {
					if compact[k] != src[j] {
						t.Fatalf("n=%d compact[%d] = %v, want src[%d] = %v", n, k, compact[k], j, src[j])
					}
					k++
				}
			}

			dst := make([]float64, n)
			if used := b.ScatterUnmasked(dst, compact, fill); used != wantLen {
				t.Fatalf("n=%d scatter consumed %d values, want %d", n, used, wantLen)
			}
			for j, set := range ref {
				want := src[j]
				if set {
					want = fill[j]
				}
				if dst[j] != want {
					t.Fatalf("n=%d p=%v scatter[%d] = %v, want %v", n, p, j, dst[j], want)
				}
			}
		}
	}
}

func TestFillMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range lengths {
		b, ref := randomSet(t, rng, n, 0.5)
		f := New(n)
		f.Fill(func(i int) bool { return ref[i] })
		if !f.Equal(b) {
			t.Fatalf("n=%d Fill disagrees with Set", n)
		}
		// Refilling with an all-false predicate must clear stale words.
		f.Fill(func(int) bool { return false })
		if f.Count() != 0 {
			t.Fatalf("n=%d Fill(false) left %d bits set", n, f.Count())
		}
	}
}
