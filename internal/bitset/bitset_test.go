package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("new bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 8 {
		t.Errorf("Count = %d, want 8", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Error("Clear failed")
	}
	b.SetTo(64, true)
	b.SetTo(0, false)
	if !b.Get(64) || b.Get(0) {
		t.Error("SetTo failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestRatioAndReset(t *testing.T) {
	b := New(4)
	if b.Ratio() != 0 {
		t.Error("empty ratio should be 0")
	}
	b.Set(0)
	b.Set(1)
	if b.Ratio() != 0.5 {
		t.Errorf("Ratio = %v, want 0.5", b.Ratio())
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset failed")
	}
	empty := New(0)
	if empty.Ratio() != 0 {
		t.Error("zero-length ratio should be 0")
	}
}

func TestCloneEqual(t *testing.T) {
	b := New(100)
	b.Set(3)
	b.Set(99)
	c := b.Clone()
	if !b.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(50)
	if b.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
	if b.Equal(New(99)) {
		t.Fatal("Equal ignored length")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	b := New(70)
	b.Set(0)
	b.Set(69)
	got, err := FromWords(70, b.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(got) {
		t.Fatal("FromWords round trip failed")
	}

	if _, err := FromWords(70, []uint64{1}); err == nil {
		t.Error("FromWords accepted wrong word count")
	}
	if _, err := FromWords(3, []uint64{0xFF}); err == nil {
		t.Error("FromWords accepted stray bits beyond the length")
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesSets(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(n)
		set := make(map[int]bool)
		for i := 0; i < n/2; i++ {
			j := rng.Intn(n)
			b.Set(j)
			set[j] = true
		}
		if b.Count() != len(set) {
			return false
		}
		for j := 0; j < n; j++ {
			if b.Get(j) != set[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzFromWords checks the deserializer never panics and only accepts
// word slices that exactly back the claimed length.
func FuzzFromWords(f *testing.F) {
	f.Add(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(3, []byte{0xFF})
	f.Add(0, []byte{})
	f.Fuzz(func(t *testing.T, n int, raw []byte) {
		if n < 0 || n > 1<<20 {
			return
		}
		words := make([]uint64, len(raw)/8)
		for i := range words {
			for b := 0; b < 8; b++ {
				words[i] |= uint64(raw[i*8+b]) << (8 * b)
			}
		}
		bs, err := FromWords(n, words)
		if err != nil {
			return
		}
		// Round trip must be exact.
		again, err := FromWords(n, bs.Words())
		if err != nil || !bs.Equal(again) {
			t.Fatalf("round trip failed: %v", err)
		}
		if bs.Count() > n {
			t.Fatalf("count %d exceeds length %d", bs.Count(), n)
		}
	})
}
