// Word-level iteration and gather/scatter over the freezing bitmap. The
// APF hot path touches every model scalar several times per round; these
// helpers process the mask 64 bits at a time — skipping all-clear words
// outright, bulk-copying through all-set words, and walking mixed words
// with bits.TrailingZeros64 — instead of testing scalars one by one.
package bitset

import "math/bits"

// allOnes is a fully set word.
const allOnes = ^uint64(0)

// NextSet returns the index of the first set bit at or after i, or -1 when
// no set bit remains.
func (b *BitSet) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	// Mask off the bits below i in the first candidate word.
	w := b.words[wi] >> (i % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if w := b.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// IterateSet calls fn for every set bit in ascending order.
func (b *BitSet) IterateSet(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1 // clear the lowest set bit
		}
	}
}

// IterateClear calls fn for every clear bit in ascending order.
func (b *BitSet) IterateClear(fn func(i int)) {
	for wi, w := range b.words {
		tail := b.tailMask(wi)
		if w == tail {
			continue
		}
		base := wi * wordBits
		inv := ^w & tail
		for inv != 0 {
			fn(base + bits.TrailingZeros64(inv))
			inv &= inv - 1
		}
	}
}

// WordCount returns the number of backing words.
func (b *BitSet) WordCount() int { return len(b.words) }

// AnyInWord reports whether backing word wi contains any set bit.
func (b *BitSet) AnyInWord(wi int) bool { return b.words[wi] != 0 }

// SetWord overwrites backing word wi. Bits beyond Len in the final word
// must be zero; they are cleared defensively.
func (b *BitSet) SetWord(wi int, w uint64) {
	if wi == len(b.words)-1 && b.n%wordBits != 0 {
		w &= allOnes >> (wordBits - b.n%wordBits)
	}
	b.words[wi] = w
}

// tailMask returns the valid-bit mask of the final word (allOnes when the
// length is word-aligned).
func (b *BitSet) tailMask(wi int) uint64 {
	if wi == len(b.words)-1 && b.n%wordBits != 0 {
		return allOnes >> (wordBits - b.n%wordBits)
	}
	return allOnes
}

// checkLen panics when v cannot cover the bitmap.
func (b *BitSet) checkLen(v []float64) {
	if len(v) < b.n {
		panic("bitset: vector shorter than bitmap")
	}
}

// ApplyMasked copies src[j] into dst[j] for every set bit j.
func (b *BitSet) ApplyMasked(dst, src []float64) {
	b.checkLen(dst)
	b.checkLen(src)
	for wi, w := range b.words {
		if w == 0 {
			continue
		}
		base := wi * wordBits
		if w == b.tailMask(wi) {
			end := base + wordBits
			if end > b.n {
				end = b.n
			}
			copy(dst[base:end], src[base:end])
			continue
		}
		for w != 0 {
			j := base + bits.TrailingZeros64(w)
			dst[j] = src[j]
			w &= w - 1
		}
	}
}

// ApplyUnmasked copies src[j] into dst[j] for every clear bit j.
func (b *BitSet) ApplyUnmasked(dst, src []float64) {
	b.checkLen(dst)
	b.checkLen(src)
	for wi, w := range b.words {
		tail := b.tailMask(wi)
		if w == tail {
			continue
		}
		base := wi * wordBits
		if w == 0 {
			end := base + wordBits
			if end > b.n {
				end = b.n
			}
			copy(dst[base:end], src[base:end])
			continue
		}
		inv := ^w & tail
		for inv != 0 {
			j := base + bits.TrailingZeros64(inv)
			dst[j] = src[j]
			inv &= inv - 1
		}
	}
}

// GatherUnmasked appends src[j] for every clear bit j to dst in ascending
// order and returns the extended slice — the compact (masked_select) form.
func (b *BitSet) GatherUnmasked(dst, src []float64) []float64 {
	b.checkLen(src)
	for wi, w := range b.words {
		tail := b.tailMask(wi)
		if w == tail {
			continue
		}
		base := wi * wordBits
		if w == 0 {
			end := base + wordBits
			if end > b.n {
				end = b.n
			}
			dst = append(dst, src[base:end]...)
			continue
		}
		inv := ^w & tail
		for inv != 0 {
			dst = append(dst, src[base+bits.TrailingZeros64(inv)])
			inv &= inv - 1
		}
	}
	return dst
}

// ScatterUnmasked is the inverse of GatherUnmasked (masked_fill): clear
// bits of dst consume compact in order, set bits take fill[j]. It returns
// the number of compact values consumed.
func (b *BitSet) ScatterUnmasked(dst, compact, fill []float64) int {
	b.checkLen(dst)
	b.checkLen(fill)
	i := 0
	for wi, w := range b.words {
		base := wi * wordBits
		end := base + wordBits
		if end > b.n {
			end = b.n
		}
		tail := b.tailMask(wi)
		switch w {
		case 0:
			i += copy(dst[base:end], compact[i:])
		case tail:
			copy(dst[base:end], fill[base:end])
		default:
			for k := base; k < end; k++ {
				if w&1 != 0 {
					dst[k] = fill[k]
				} else {
					dst[k] = compact[i]
					i++
				}
				w >>= 1
			}
		}
	}
	return i
}

// Fill rebuilds the bitmap from pred, invoked once per index in ascending
// order, accumulating whole words before a single store each.
func (b *BitSet) Fill(pred func(i int) bool) {
	for wi := range b.words {
		base := wi * wordBits
		end := base + wordBits
		if end > b.n {
			end = b.n
		}
		var w uint64
		for k := base; k < end; k++ {
			if pred(k) {
				w |= 1 << (k - base)
			}
		}
		b.words[wi] = w
	}
}
