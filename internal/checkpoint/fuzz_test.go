package checkpoint

import (
	"testing"

	"apf/internal/fl"
)

// FuzzCheckpointDecode throws arbitrary bytes at every decode surface of
// the package: the frame reader and both state codecs. Invariants: no
// panic, no over-allocation (the length guards bound slices by the
// payload), and anything that decodes successfully must re-encode to a
// frame that decodes to the same bytes.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, KindUser, []byte("payload")))
	f.Add(EncodeManager(testManagerState()))
	f.Add(EncodeAggregator(&fl.AggregatorState{
		Open:     true,
		Round:    2,
		Clients:  3,
		IDs:      []int{1},
		Contribs: [][]float64{{0.5, -1}},
		Weights:  []float64{4},
	}))
	var w Writer
	w.Int(1 << 50) // absurd length claim: must be bounded, not allocated
	f.Add(AppendFrame(nil, KindManager, w.Bytes()))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame stream: walk every frame, as Store.replayWAL does.
		buf := data
		for i := 0; i < 1000; i++ {
			_, payload, rest, err := ReadFrame(buf)
			if err != nil {
				break
			}
			if len(payload) > len(data) {
				t.Fatalf("payload %d bytes from a %d-byte input", len(payload), len(data))
			}
			buf = rest
		}

		if s, err := DecodeManager(data); err == nil {
			again, err := DecodeManager(EncodeManager(s))
			if err != nil {
				t.Fatalf("re-decode manager: %v", err)
			}
			if again.Dim != s.Dim || again.LastRound != s.LastRound || len(again.Ref) != len(s.Ref) {
				t.Fatalf("manager re-encode drifted: %+v vs %+v", again, s)
			}
		}
		if s, err := DecodeAggregator(data); err == nil {
			again, err := DecodeAggregator(EncodeAggregator(s))
			if err != nil {
				t.Fatalf("re-decode aggregator: %v", err)
			}
			if again.Round != s.Round || len(again.IDs) != len(s.IDs) {
				t.Fatalf("aggregator re-encode drifted: %+v vs %+v", again, s)
			}
		}
	})
}
