package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Store persists a coordinator under one directory as generations of
//
//	snap-<rounds>.ckpt   one frame: state after <rounds> completed rounds
//	wal-<rounds>.log     framed records appended since that snapshot
//
// WriteSnapshot is atomic (tmp file + fsync + rename + directory fsync)
// and rotates the WAL: records always append to the newest generation's
// log, and older generations are pruned once the new snapshot is durable.
// Append fsyncs each record before returning, so a record that was
// acknowledged survives kill -9.
//
// Load recovers the newest generation whose snapshot decodes with a valid
// checksum, then replays its WAL up to the first damaged frame — a torn
// tail (the record being appended when the process died) truncates the
// replay rather than failing it, and is trimmed from the file so records
// appended after recovery stay reachable by the next recovery.
type Store struct {
	dir    string
	rounds int      // generation currently appended to
	wal    *os.File // open WAL of that generation
	obs    Observer // nil disables instrumentation
}

// Observer receives durability events from a Store. checkpoint defines
// the interface itself and carries no telemetry dependency — the metrics
// adapter is injected with SetObserver. Implementations must be cheap;
// they run synchronously on the append path.
type Observer interface {
	// AppendDone fires after each durable (fsync'd) WAL append.
	AppendDone(bytes int, d time.Duration)
	// SnapshotDone fires after each durable snapshot rotation.
	SnapshotDone(rounds, bytes int, d time.Duration)
	// LoadDone fires after recovery: whether a usable snapshot was found,
	// at how many completed rounds, and how many WAL records replayed.
	LoadDone(found bool, rounds, walRecords int, d time.Duration)
}

// SetObserver installs (or, with nil, removes) the store's event hook.
// Call it before the store is shared across goroutines.
func (s *Store) SetObserver(obs Observer) { s.obs = obs }

const (
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
	walPrefix  = "wal-"
	walSuffix  = ".log"
)

// Open prepares a store in dir, creating it when missing. No files are
// written until the first WriteSnapshot.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store: %w", err)
	}
	return &Store{dir: dir, rounds: -1}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) snapPath(rounds int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", snapPrefix, rounds, snapSuffix))
}

func (s *Store) walPath(rounds int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d%s", walPrefix, rounds, walSuffix))
}

// generations lists the snapshot round numbers present on disk,
// ascending. Unparseable names are ignored.
func (s *Store) generations() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scan store: %w", err)
	}
	var gens []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix))
		if err != nil || n < 0 {
			continue
		}
		gens = append(gens, n)
	}
	sort.Ints(gens)
	return gens, nil
}

// syncDir fsyncs the store directory so renames and unlinks are durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// WriteSnapshot durably begins a new generation: the framed snapshot
// payload is written atomically, a fresh (empty) WAL replaces the append
// target, and older generations are pruned. rounds is the number of
// completed rounds the snapshot captures and must increase across calls.
func (s *Store) WriteSnapshot(rounds int, kind uint16, payload []byte) error {
	if rounds < 0 {
		return fmt.Errorf("checkpoint: negative snapshot round %d", rounds)
	}
	if rounds <= s.rounds {
		return fmt.Errorf("checkpoint: snapshot rounds %d not beyond current generation %d", rounds, s.rounds)
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	tmp := filepath.Join(s.dir, fmt.Sprintf(".snap-%08d.tmp", rounds))
	frame := AppendFrame(nil, kind, payload)
	if err := writeFileSync(tmp, frame); err != nil {
		return fmt.Errorf("checkpoint: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath(rounds)); err != nil {
		return fmt.Errorf("checkpoint: publish snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("checkpoint: sync store: %w", err)
	}

	// The snapshot is durable; switch the WAL and prune behind it.
	if s.wal != nil {
		_ = s.wal.Close()
		s.wal = nil
	}
	wal, err := os.OpenFile(s.walPath(rounds), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: open wal: %w", err)
	}
	prev := s.rounds
	s.wal, s.rounds = wal, rounds
	if prev >= 0 {
		_ = os.Remove(s.snapPath(prev))
		_ = os.Remove(s.walPath(prev))
		_ = s.syncDir()
	}
	if s.obs != nil {
		s.obs.SnapshotDone(rounds, len(frame), time.Since(start))
	}
	return nil
}

// Append durably appends one framed record to the current generation's
// WAL. It must follow a WriteSnapshot (or a Load that found one).
func (s *Store) Append(kind uint16, payload []byte) error {
	if s.wal == nil {
		return fmt.Errorf("checkpoint: append without a snapshot generation")
	}
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	frame := AppendFrame(nil, kind, payload)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append wal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync wal: %w", err)
	}
	if s.obs != nil {
		s.obs.AppendDone(len(frame), time.Since(start))
	}
	return nil
}

// Record is one replayed WAL entry.
type Record struct {
	Kind    uint16
	Payload []byte
}

// Load recovers the newest consistent generation: it returns the snapshot
// round count, kind and payload, and the WAL records appended after it,
// stopping the replay at the first corrupt frame (torn tail). found is
// false when the store holds no usable snapshot (fresh start). After a
// successful Load, Append continues the recovered generation's WAL.
func (s *Store) Load() (rounds int, kind uint16, payload []byte, wal []Record, found bool, err error) {
	var start time.Time
	if s.obs != nil {
		start = time.Now()
	}
	gens, err := s.generations()
	if err != nil {
		return 0, 0, nil, nil, false, err
	}
	for i := len(gens) - 1; i >= 0; i-- {
		r := gens[i]
		buf, rerr := os.ReadFile(s.snapPath(r))
		if rerr != nil {
			continue
		}
		k, p, rest, ferr := ReadFrame(buf)
		if ferr != nil || len(rest) != 0 {
			continue // damaged snapshot: fall back to the previous generation
		}
		records, intact := s.replayWAL(r)
		f, oerr := os.OpenFile(s.walPath(r), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if oerr != nil {
			return 0, 0, nil, nil, false, fmt.Errorf("checkpoint: reopen wal: %w", oerr)
		}
		// Cut off a torn tail before appending: a corrupt frame left in
		// the middle of the log would stop every future replay there and
		// silently orphan the records appended after it.
		if terr := truncateSync(f, intact); terr != nil {
			f.Close()
			return 0, 0, nil, nil, false, fmt.Errorf("checkpoint: trim torn wal tail: %w", terr)
		}
		if s.wal != nil {
			_ = s.wal.Close()
		}
		s.wal, s.rounds = f, r
		if s.obs != nil {
			s.obs.LoadDone(true, r, len(records), time.Since(start))
		}
		return r, k, p, records, true, nil
	}
	if s.obs != nil {
		s.obs.LoadDone(false, 0, 0, time.Since(start))
	}
	return 0, 0, nil, nil, false, nil
}

// replayWAL reads a generation's records up to the first damaged frame,
// returning them together with the byte length of the intact prefix.
func (s *Store) replayWAL(rounds int) ([]Record, int64) {
	buf, err := os.ReadFile(s.walPath(rounds))
	if err != nil {
		return nil, 0
	}
	var out []Record
	total := len(buf)
	for {
		kind, payload, rest, err := ReadFrame(buf)
		if err != nil {
			// io.EOF: clean end; ErrCorrupt/ErrVersion: torn tail.
			return out, int64(total - len(buf))
		}
		out = append(out, Record{Kind: kind, Payload: append([]byte(nil), payload...)})
		buf = rest
	}
}

// truncateSync shortens f to size iff it is longer, making the cut
// durable.
func truncateSync(f *os.File, size int64) error {
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() <= size {
		return nil
	}
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// Close releases the open WAL handle.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
