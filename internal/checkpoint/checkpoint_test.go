package checkpoint

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"apf/internal/core"
	"apf/internal/fl"
	"apf/internal/perturb"
)

// TestFrameRoundTrip encodes frames of several kinds back to back and
// reads them off again.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("hello"), nil, {0, 1, 2, 255}, make([]byte, 1000)}
	kinds := []uint16{KindManager, KindAggregator, KindUser, KindUser + 7}
	var buf []byte
	for i, p := range payloads {
		buf = AppendFrame(buf, kinds[i], p)
	}
	for i, want := range payloads {
		kind, payload, rest, err := ReadFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != kinds[i] {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, kinds[i])
		}
		if len(payload) != len(want) {
			t.Fatalf("frame %d: payload length %d, want %d", i, len(payload), len(want))
		}
		for j := range want {
			if payload[j] != want[j] {
				t.Fatalf("frame %d: payload[%d] = %d, want %d", i, j, payload[j], want[j])
			}
		}
		buf = rest
	}
	if _, _, _, err := ReadFrame(buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestFrameCorruption flips every byte of an encoded frame in turn; each
// damaged copy must be rejected, never silently decoded.
func TestFrameCorruption(t *testing.T) {
	frame := AppendFrame(nil, KindManager, []byte("state bytes"))
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		_, _, _, err := ReadFrame(bad)
		if err == nil {
			t.Fatalf("flip byte %d: frame still decoded", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip byte %d: err = %v, want ErrCorrupt or ErrVersion", i, err)
		}
	}
	for n := 1; n < len(frame); n++ {
		if _, _, _, err := ReadFrame(frame[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestWriterReaderRoundTrip exercises every primitive, including NaN bit
// patterns, which must survive bit-exactly.
func TestWriterReaderRoundTrip(t *testing.T) {
	nan := math.Float64frombits(0x7ff8_0000_dead_beef) // NaN with payload bits
	var w Writer
	w.U16(0xbeef)
	w.U64(1 << 63)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.F64(nan)
	w.F64s([]float64{1.5, math.Inf(-1), 0})
	w.Ints([]int{-1, 0, 7})
	w.U64s([]uint64{3, 1 << 40})
	w.String("client-a")
	w.String("")

	r := NewReader(w.Bytes())
	if got := r.U16(); got != 0xbeef {
		t.Fatalf("U16 = %#x", got)
	}
	if got := r.U64(); got != 1<<63 {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("Bool round trip failed")
	}
	if got := r.F64(); math.Float64bits(got) != math.Float64bits(nan) {
		t.Fatalf("F64 NaN bits %#x, want %#x", math.Float64bits(got), math.Float64bits(nan))
	}
	if got := r.F64s(); len(got) != 3 || got[0] != 1.5 || !math.IsInf(got[1], -1) || got[2] != 0 {
		t.Fatalf("F64s = %v", got)
	}
	if got := r.Ints(); !reflect.DeepEqual(got, []int{-1, 0, 7}) {
		t.Fatalf("Ints = %v", got)
	}
	if got := r.U64s(); !reflect.DeepEqual(got, []uint64{3, 1 << 40}) {
		t.Fatalf("U64s = %v", got)
	}
	if got := r.String(); got != "client-a" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestReaderGuards checks the sticky error, trailing-garbage detection,
// and the slice-length bound (a corrupt length must not allocate).
func TestReaderGuards(t *testing.T) {
	r := NewReader([]byte{1, 2}) // too short for a U64
	if got := r.U64(); got != 0 {
		t.Fatalf("truncated U64 = %d, want 0", got)
	}
	if r.Err() == nil || !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
	if got := r.Int(); got != 0 { // sticky: still zero, no panic
		t.Fatalf("post-error Int = %d", got)
	}

	var w Writer
	w.Int(1 << 50) // claimed slice length far beyond the payload
	r = NewReader(w.Bytes())
	if got := r.F64s(); got != nil {
		t.Fatalf("overrun F64s = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("overrun Err = %v, want ErrCorrupt", r.Err())
	}

	w = Writer{}
	w.Int(5)
	buf := append(w.Bytes(), 0xff) // trailing garbage
	r = NewReader(buf)
	_ = r.Int()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Done with trailing byte = %v, want ErrCorrupt", err)
	}
}

func testManagerState() *core.State {
	return &core.State{
		Dim:       4,
		Ref:       []float64{1, -2.5, 0, 3.25},
		LastCheck: []float64{0.5, 0, -1, 2},
		Tracker: perturb.EMAState{
			Alpha:  0.85,
			E:      []float64{0.1, -0.2, 0.3, 0},
			A:      []float64{0.4, 0.5, 0, 0.6},
			Seen:   9,
			Seeded: []uint64{^uint64(0), 0, 5, 0},
		},
		Period:      []float64{1, 2, 4, 8},
		UnfreezeAt:  []int{3, 0, 12, 7},
		RandomUntil: []int{0, 0, 15, 0},
		Threshold:   0.3,
		CheckCount:  4,
		Initialized: true,
		InitRound:   1,
		LastRound:   11,
	}
}

// TestManagerCodecRoundTrip checks the manager snapshot codec is
// bit-exact and feeds core.Restore.
func TestManagerCodecRoundTrip(t *testing.T) {
	s := testManagerState()
	got, err := DecodeManager(EncodeManager(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

// TestManagerCodecRejectsDamage flips bytes across the encoded manager
// frame; every damaged copy must fail to decode.
func TestManagerCodecRejectsDamage(t *testing.T) {
	buf := EncodeManager(testManagerState())
	for i := 0; i < len(buf); i += 7 {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x10
		if _, err := DecodeManager(bad); err == nil {
			t.Fatalf("flip byte %d: damaged manager frame decoded", i)
		}
	}
	if _, err := DecodeManager(append(buf, 0)); err == nil {
		t.Fatalf("trailing byte after manager frame accepted")
	}
}

// TestAggregatorCodecRoundTrip round-trips an in-flight round, and
// rejects a snapshot whose parallel arrays disagree.
func TestAggregatorCodecRoundTrip(t *testing.T) {
	s := &fl.AggregatorState{
		Open:     true,
		Round:    6,
		Clients:  3,
		IDs:      []int{0, 2},
		Contribs: [][]float64{{1, 2, 3}, {-0.5, 0.25, 8}},
		Weights:  []float64{10, 20},
	}
	got, err := DecodeAggregator(EncodeAggregator(s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}

	s.Weights = s.Weights[:1] // parallel arrays disagree
	if _, err := DecodeAggregator(EncodeAggregator(s)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent aggregator snapshot: err = %v, want ErrCorrupt", err)
	}
}

// TestStoreRoundTrip writes a snapshot plus WAL records, reloads with a
// fresh store, and checks everything comes back; then appends through the
// recovered handle and reloads again.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, found, err := st.Load(); err != nil || found {
		t.Fatalf("empty store Load: found=%v err=%v", found, err)
	}
	if err := st.Append(KindUser, []byte("early")); err == nil {
		t.Fatalf("append before any snapshot succeeded")
	}
	if err := st.WriteSnapshot(0, KindUser, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(KindUser+1, []byte("rec0")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(KindUser+2, []byte("rec1")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rounds, kind, payload, wal, found, err := st2.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if rounds != 0 || kind != KindUser || string(payload) != "base" {
		t.Fatalf("snapshot = (%d, %d, %q)", rounds, kind, payload)
	}
	if len(wal) != 2 || string(wal[0].Payload) != "rec0" || string(wal[1].Payload) != "rec1" {
		t.Fatalf("wal = %v", wal)
	}

	// Append continues the recovered generation's log.
	if err := st2.Append(KindUser+3, []byte("rec2")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	_, _, _, wal, _, err = st3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 3 || string(wal[2].Payload) != "rec2" {
		t.Fatalf("wal after continued append = %v", wal)
	}
}

// TestStoreRotationPrunes checks that a newer snapshot supersedes the old
// generation and removes its files.
func TestStoreRotationPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.WriteSnapshot(0, KindUser, []byte("gen0")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(KindUser, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(5, KindUser, []byte("gen5")); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(5, KindUser, []byte("again")); err == nil {
		t.Fatalf("non-increasing snapshot accepted")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // snap-00000005.ckpt + wal-00000005.log
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("store holds %v, want exactly the new generation", names)
	}
	rounds, _, payload, wal, found, err := st.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if rounds != 5 || string(payload) != "gen5" || len(wal) != 0 {
		t.Fatalf("recovered (%d, %q, %d records)", rounds, payload, len(wal))
	}
}

// TestStoreTornTail simulates kill -9 mid-append: garbage (and a valid
// prefix of a frame) after the last good record must truncate the replay,
// not fail it.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(0, KindUser, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(KindUser, []byte("good")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	walPath := filepath.Join(dir, "wal-00000000.log")
	torn := AppendFrame(nil, KindUser, []byte("torn-away"))
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil { // frame cut short
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, _, _, wal, found, err := st2.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if len(wal) != 1 || string(wal[0].Payload) != "good" {
		t.Fatalf("replay over torn tail = %v, want the one good record", wal)
	}

	// Double-crash: appending after a torn-tail recovery must land where
	// the next recovery can read it — the torn bytes are trimmed, not
	// appended past.
	if err := st2.Append(KindUser, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	_, _, _, wal, found, err = st3.Load()
	if err != nil || !found {
		t.Fatalf("second Load: found=%v err=%v", found, err)
	}
	if len(wal) != 2 || string(wal[1].Payload) != "after-recovery" {
		t.Fatalf("replay after torn-tail append = %v, want [good after-recovery]", wal)
	}
}

// TestStoreDamagedSnapshotFallsBack plants two generations by hand and
// corrupts the newer snapshot; Load must recover the older one.
func TestStoreDamagedSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	writeGen := func(rounds int, payload string) {
		frame := AppendFrame(nil, KindUser, []byte(payload))
		name := filepath.Join(dir, "snap-0000000"+string(rune('0'+rounds))+".ckpt")
		if err := os.WriteFile(name, frame, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeGen(0, "old")
	writeGen(5, "new")
	newSnap := filepath.Join(dir, "snap-00000005.ckpt")
	buf, err := os.ReadFile(newSnap)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newSnap, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rounds, _, payload, _, found, err := st.Load()
	if err != nil || !found {
		t.Fatalf("Load: found=%v err=%v", found, err)
	}
	if rounds != 0 || string(payload) != "old" {
		t.Fatalf("recovered (%d, %q), want the older intact generation", rounds, payload)
	}
}
