// Package checkpoint makes the coordinator durable. It provides
//
//   - a versioned, checksummed binary framing for protocol-state blobs
//     (Frame/ReadFrame), plus little-endian Writer/Reader primitives that
//     encode float64s via their IEEE-754 bit patterns, so a decoded
//     snapshot is bit-identical to the encoded state;
//   - codecs for the two pieces of irreplaceable server-side state: the
//     APF manager snapshot (core.State — EMAs, freezing periods, AIMD
//     state, threshold, round/check counters) and the aggregator's
//     in-flight round (fl.AggregatorState — partial contributions and the
//     received-set);
//   - a Store that persists a coordinator as an atomically rotated
//     snapshot plus an append-only, fsync'd write-ahead log, and recovers
//     the newest consistent (snapshot, WAL-suffix) pair after a crash,
//     tolerating torn tails from kill -9.
//
// The freezing masks, per-scalar EMAs, and AIMD freezing periods are a
// pure function of the synchronized trajectory (PAPER.md §IV), so a
// coordinator that loses them cannot be reconstructed by the clients;
// persisting the trajectory (the emitted aggregates) and replaying it is
// what makes a restart bit-exact.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Version is the on-disk format version stamped into every frame.
// Decoders reject frames from a different major format.
const Version = 1

// frame layout: magic(4) version(2) kind(2) length(4) payload CRC32(4).
const (
	frameMagic     = 0x41504643 // "APFC"
	frameHeaderLen = 12
	frameTrailLen  = 4
	// MaxFramePayload bounds a frame so corrupt length fields cannot drive
	// giant allocations during recovery or fuzzing.
	MaxFramePayload = 1 << 30
)

// Frame kinds. Store callers may define further kinds above KindUser.
const (
	// KindManager frames a core.State manager snapshot.
	KindManager uint16 = 1
	// KindAggregator frames an fl.AggregatorState in-flight round.
	KindAggregator uint16 = 2
	// KindUser is the first kind value free for embedding packages
	// (the transport's server snapshot and WAL records live here).
	KindUser uint16 = 64
)

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrCorrupt marks a frame whose checksum, magic, or structure is
	// damaged (torn writes, bit rot, truncation mid-frame).
	ErrCorrupt = errors.New("checkpoint: corrupt frame")
	// ErrVersion marks a frame written by an incompatible format version.
	ErrVersion = errors.New("checkpoint: unsupported format version")
)

// AppendFrame appends one checksummed frame of the given kind to dst and
// returns the extended slice. The CRC covers the header and the payload,
// so a torn header is as detectable as a torn payload.
func AppendFrame(dst []byte, kind uint16, payload []byte) []byte {
	if len(payload) > MaxFramePayload {
		panic(fmt.Sprintf("checkpoint: frame payload %d exceeds limit", len(payload)))
	}
	start := len(dst)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint16(hdr[6:], kind)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	var tr [frameTrailLen]byte
	binary.LittleEndian.PutUint32(tr[0:], sum)
	return append(dst, tr[:]...)
}

// ReadFrame decodes the frame at the front of buf, returning its kind,
// payload (aliasing buf), and the remaining bytes. io.EOF is returned on
// an empty buffer; ErrCorrupt on any damage, including a truncated tail.
func ReadFrame(buf []byte) (kind uint16, payload, rest []byte, err error) {
	if len(buf) == 0 {
		return 0, nil, nil, io.EOF
	}
	if len(buf) < frameHeaderLen+frameTrailLen {
		return 0, nil, nil, fmt.Errorf("%w: %d-byte tail shorter than a frame", ErrCorrupt, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != frameMagic {
		return 0, nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != Version {
		return 0, nil, nil, fmt.Errorf("%w: frame version %d, this build reads %d", ErrVersion, v, Version)
	}
	kind = binary.LittleEndian.Uint16(buf[6:])
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	if n > MaxFramePayload || len(buf) < frameHeaderLen+n+frameTrailLen {
		return 0, nil, nil, fmt.Errorf("%w: frame payload length %d overruns buffer", ErrCorrupt, n)
	}
	end := frameHeaderLen + n
	want := binary.LittleEndian.Uint32(buf[end:])
	if crc32.ChecksumIEEE(buf[:end]) != want {
		return 0, nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return kind, buf[frameHeaderLen:end], buf[end+frameTrailLen:], nil
}

// Writer serializes scalars and slices little-endian into a growing
// buffer. Floats are written as raw IEEE-754 bits, never formatted, so
// encode/decode round-trips bit-exactly (NaN payloads included).
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset discards the accumulated encoding but keeps the backing array, so
// a pooled Writer re-encodes without reallocating (package wire re-frames
// every protocol message through one of these).
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// U16 appends one uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U64 appends one uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int appends one int (as a sign-preserving 64-bit value).
func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

// Bool appends one bool.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// F64 appends one float64 as its bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed []float64.
func (w *Writer) F64s(v []float64) {
	w.Int(len(v))
	for _, x := range v {
		w.F64(x)
	}
}

// Ints appends a length-prefixed []int.
func (w *Writer) Ints(v []int) {
	w.Int(len(v))
	for _, x := range v {
		w.Int(x)
	}
}

// U64s appends a length-prefixed []uint64.
func (w *Writer) U64s(v []uint64) {
	w.Int(len(v))
	for _, x := range v {
		w.U64(x)
	}
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// Reader decodes a Writer-produced buffer. It is error-sticky: after the
// first failure every further read returns zero values, and Err reports
// the failure, so decoders can be written without per-field checks.
type Reader struct {
	buf []byte
	err error
}

// NewReader wraps an encoded payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode failure, wrapping ErrCorrupt.
func (r *Reader) Err() error { return r.err }

// Remaining returns how many undecoded bytes are left. Decoders of
// variable-count structures (the wire protocol's missed-payload lists, the
// transport's session tables) use it to bound counts before allocating.
func (r *Reader) Remaining() int { return len(r.buf) }

// Fail marks the Reader corrupt with the given reason (wrapping
// ErrCorrupt) unless it already failed. Decoders use it to reject
// structurally valid but semantically impossible values — counts that
// overrun the payload, enum bytes outside their range.
func (r *Reader) Fail(msg string) { r.fail(msg) }

// Done returns Err, or ErrCorrupt if undecoded bytes trail the payload.
func (r *Reader) Done() error {
	if r.err == nil && len(r.buf) != 0 {
		r.fail("trailing garbage")
	}
	return r.err
}

func (r *Reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf) < n {
		r.fail("truncated payload")
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U16 reads one uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U64 reads one uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads one int.
func (r *Reader) Int() int { return int(int64(r.U64())) }

// Bool reads one bool.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		r.fail("invalid bool")
		return false
	}
	return b[0] == 1
}

// F64 reads one float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// length reads a slice length and bounds it by the remaining bytes at
// elemSize each, so corrupt lengths cannot drive giant allocations.
func (r *Reader) length(elemSize int) int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	// Divide rather than multiply: n*elemSize could overflow for a
	// corrupt length and slip past the bound.
	if n < 0 || n > len(r.buf)/elemSize {
		r.fail("slice length overruns payload")
		return 0
	}
	return n
}

// F64s reads a length-prefixed []float64 (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// Ints reads a length-prefixed []int (nil when empty).
func (r *Reader) Ints() []int {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// U64s reads a length-prefixed []uint64 (nil when empty).
func (r *Reader) U64s() []uint64 {
	n := r.length(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	if r.err != nil {
		return ""
	}
	return string(r.take(n))
}
