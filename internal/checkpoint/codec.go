package checkpoint

import (
	"fmt"

	"apf/internal/core"
	"apf/internal/fl"
	"apf/internal/perturb"
)

// EncodeManager frames a core.State manager snapshot (KindManager). The
// encoding is bit-exact: every float64 round-trips through its IEEE-754
// bits, so a restored manager continues the freezing protocol from the
// identical EMAs, periods, and threshold.
func EncodeManager(s *core.State) []byte {
	var w Writer
	w.Int(s.Dim)
	w.F64s(s.Ref)
	w.F64s(s.LastCheck)
	w.F64(s.Tracker.Alpha)
	w.F64s(s.Tracker.E)
	w.F64s(s.Tracker.A)
	w.Int(s.Tracker.Seen)
	w.U64s(s.Tracker.Seeded)
	w.F64s(s.Period)
	w.Ints(s.UnfreezeAt)
	w.Ints(s.RandomUntil)
	w.F64(s.Threshold)
	w.Int(s.CheckCount)
	w.Bool(s.Initialized)
	w.Int(s.InitRound)
	w.Int(s.LastRound)
	// Optional tail (absent in pre-reconciliation frames): the per-word
	// generation vector.
	gens := make([]int, len(s.WordGen))
	for i, g := range s.WordGen {
		gens[i] = int(g)
	}
	w.Ints(gens)
	return AppendFrame(nil, KindManager, w.Bytes())
}

// DecodeManager reads an EncodeManager frame back into a core.State,
// verifying checksum, version, kind, and structure.
func DecodeManager(buf []byte) (*core.State, error) {
	kind, payload, rest, err := ReadFrame(buf)
	if err != nil {
		return nil, err
	}
	if kind != KindManager {
		return nil, fmt.Errorf("%w: frame kind %d, want manager (%d)", ErrCorrupt, kind, KindManager)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after manager frame", ErrCorrupt, len(rest))
	}
	r := NewReader(payload)
	s := &core.State{}
	s.Dim = r.Int()
	s.Ref = r.F64s()
	s.LastCheck = r.F64s()
	s.Tracker = perturb.EMAState{
		Alpha:  r.F64(),
		E:      r.F64s(),
		A:      r.F64s(),
		Seen:   r.Int(),
		Seeded: r.U64s(),
	}
	s.Period = r.F64s()
	s.UnfreezeAt = r.Ints()
	s.RandomUntil = r.Ints()
	s.Threshold = r.F64()
	s.CheckCount = r.Int()
	s.Initialized = r.Bool()
	s.InitRound = r.Int()
	s.LastRound = r.Int()
	if r.Err() == nil && r.Remaining() > 0 {
		gens := r.Ints()
		if len(gens) > 0 {
			s.WordGen = make([]uint32, len(gens))
			for i, g := range gens {
				if g < 0 || g > 1<<32-1 {
					return nil, fmt.Errorf("%w: word generation %d out of range", ErrCorrupt, g)
				}
				s.WordGen[i] = uint32(g)
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeAggregator frames an fl.AggregatorState — the in-flight partial
// contributions and received-set of one round (KindAggregator).
func EncodeAggregator(s *fl.AggregatorState) []byte {
	var w Writer
	w.Bool(s.Open)
	w.Int(s.Round)
	w.Int(s.Clients)
	w.Ints(s.IDs)
	w.Int(len(s.Contribs))
	for _, c := range s.Contribs {
		w.F64s(c)
	}
	w.F64s(s.Weights)
	return AppendFrame(nil, KindAggregator, w.Bytes())
}

// DecodeAggregator reads an EncodeAggregator frame back into an
// fl.AggregatorState.
func DecodeAggregator(buf []byte) (*fl.AggregatorState, error) {
	kind, payload, rest, err := ReadFrame(buf)
	if err != nil {
		return nil, err
	}
	if kind != KindAggregator {
		return nil, fmt.Errorf("%w: frame kind %d, want aggregator (%d)", ErrCorrupt, kind, KindAggregator)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes after aggregator frame", ErrCorrupt, len(rest))
	}
	r := NewReader(payload)
	s := &fl.AggregatorState{}
	s.Open = r.Bool()
	s.Round = r.Int()
	s.Clients = r.Int()
	s.IDs = r.Ints()
	n := r.Int()
	if r.Err() == nil {
		if n < 0 || n > len(payload)/8 {
			return nil, fmt.Errorf("%w: contribution count %d overruns payload", ErrCorrupt, n)
		}
		for i := 0; i < n; i++ {
			s.Contribs = append(s.Contribs, r.F64s())
		}
	}
	s.Weights = r.F64s()
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(s.IDs) != len(s.Contribs) || len(s.IDs) != len(s.Weights) {
		return nil, fmt.Errorf("%w: aggregator snapshot with %d ids, %d contribs, %d weights",
			ErrCorrupt, len(s.IDs), len(s.Contribs), len(s.Weights))
	}
	return s, nil
}
