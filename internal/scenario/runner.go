package scenario

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"sync"
	"time"

	"apf/internal/chaos"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/netsim"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/scenario/adversary"
	"apf/internal/stats"
	"apf/internal/transport"
	"apf/internal/wire"
)

// RoundEval is one evaluated point of a trial's accuracy/loss curve.
type RoundEval struct {
	Round int     `json:"round"`
	Acc   float64 `json:"acc"`
	Loss  float64 `json:"loss"`
}

// ClientOutcome is one client's detection record, indexed by the
// server-assigned id (equal to the launch index — the runner staggers
// registration so ids are deterministic).
type ClientOutcome struct {
	Client    int  `json:"client"`
	Adversary bool `json:"adversary"`
	Strikes   int  `json:"strikes"`
	// Quarantined and QuarantineRound come from the coordinator's
	// validator; QuarantineRound is -1 while not quarantined.
	Quarantined     bool `json:"quarantined"`
	QuarantineRound int  `json:"quarantineRound"`
}

// TrialResult is the outcome of one seeded trial of a cell.
type TrialResult struct {
	Trial int   `json:"trial"`
	Seed  int64 `json:"seed"`

	// RoundsCommitted counts durably committed rounds; PartialRounds how
	// many of them aggregated fewer than the full cluster.
	RoundsCommitted int `json:"roundsCommitted"`
	PartialRounds   int `json:"partialRounds"`

	// Curve is the accuracy/loss trajectory of the global model, sampled
	// every EvalEvery rounds on an honest client.
	Curve     []RoundEval `json:"curve"`
	FinalAcc  float64     `json:"finalAcc"`
	FinalLoss float64     `json:"finalLoss"`

	// UpBytes/DownBytes are the managers' payload accounting summed over
	// clients; WireRead/WireWritten the measured TCP bytes (client side,
	// including re-sends after severs).
	UpBytes     int64 `json:"upBytes"`
	DownBytes   int64 `json:"downBytes"`
	WireRead    int64 `json:"wireRead"`
	WireWritten int64 `json:"wireWritten"`
	Reconnects  int   `json:"reconnects"`

	Clients []ClientOutcome `json:"clients"`

	// Confusion counts of the validator's quarantine decisions against
	// the trial's ground truth.
	TruePos  int `json:"truePos"`
	FalsePos int `json:"falsePos"`
	TrueNeg  int `json:"trueNeg"`
	FalseNeg int `json:"falseNeg"`
	// TimeToQuarantine is the mean number of attacked rounds a detected
	// adversary survived (quarantine round − onset + 1); -1 with no
	// quarantines.
	TimeToQuarantine float64 `json:"timeToQuarantine"`

	// OracleChecked records that the in-process simulator reproduced the
	// TCP run bit-exactly (only attempted where applicable).
	OracleChecked bool `json:"oracleChecked"`

	// ModelHash is the FNV-1a hash of client 0's final dense model bits:
	// a compact bit-exactness witness for determinism and kill-restart
	// equivalence checks.
	ModelHash uint64 `json:"modelHash"`
}

// hashModel fingerprints a dense model vector.
func hashModel(v []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// scenarioWorkload holds one trial's data and factories.
type scenarioWorkload struct {
	train, test *data.Dataset
	parts       [][]int
	model       fl.ModelFactory
	optimizer   fl.OptimizerFactory
	inner       fl.ManagerFactory // honest manager (oracle arm)
}

// tinyNet is the harness model: 6×6 grayscale → dense tanh → 3 classes,
// 495 parameters — big enough for APF's mask dynamics, small enough that
// a 60-cell matrix finishes in CI time.
func tinyNet(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", 36, 12),
		nn.NewTanh(),
		nn.NewDense(rng, "fc2", 12, 3),
	)
}

// buildWorkload derives the trial's dataset, shards, and factories from
// the trial seed alone.
func buildWorkload(cfg Config, tseed int64) scenarioWorkload {
	pool := data.SynthImages(data.ImageConfig{
		Classes: 3, Channels: 1, Size: 6, Samples: 120, NoiseStd: 0.5, Seed: tseed,
	})
	// Head/tail split keeps the class mix balanced (labels cycle).
	n := pool.Len()
	trainIdx := make([]int, n-30)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, 30)
	for i := range testIdx {
		testIdx[i] = n - 30 + i
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)

	var parts [][]int
	if cfg.Alpha > 0 {
		rng := stats.SplitRNG(tseed, 7001)
		parts = data.PartitionDirichlet(rng, train.Labels, train.Classes, cfg.Clients, cfg.Alpha)
		rebalance(parts)
	} else {
		rng := stats.SplitRNG(tseed, 50)
		parts = data.PartitionIID(rng, train.Len(), cfg.Clients)
	}

	inner := func(clientID, dim int) fl.SyncManager {
		return core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			Threshold:        0.3,
			EMAAlpha:         0.85,
			Seed:             tseed,
		})
	}
	return scenarioWorkload{
		train: train, test: test, parts: parts,
		model:     tinyNet,
		optimizer: func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) },
		inner:     inner,
	}
}

// rebalance guarantees every Dirichlet shard at least one sample by
// moving indices from the largest shard — deterministically, so the
// repair is part of the trial's reproducible derivation.
func rebalance(parts [][]int) {
	for {
		smallest, largest := 0, 0
		for i := range parts {
			if len(parts[i]) < len(parts[smallest]) {
				smallest = i
			}
			if len(parts[i]) > len(parts[largest]) {
				largest = i
			}
		}
		if len(parts[smallest]) > 0 || len(parts[largest]) < 2 {
			return
		}
		last := len(parts[largest]) - 1
		parts[smallest] = append(parts[smallest], parts[largest][last])
		parts[largest] = parts[largest][:last]
	}
}

// buildFaults converts the cell's network spec into a deterministic
// chaos fault list. Severs and delays start at round 1: round 0 carries
// session registration, whose ordering the runner pins separately.
func buildFaults(cfg Config, tseed int64) ([]chaos.Fault, []int) {
	var faults []chaos.Fault
	severs := make([]int, cfg.Clients)
	if cfg.Network.DropRate > 0 {
		sched := netsim.NewDropoutSchedule(tseed, cfg.Clients, cfg.Network.DropRate)
		for r := 1; r < cfg.Rounds; r++ {
			for c := 0; c < cfg.Clients; c++ {
				if !sched.Active(r, c) {
					faults = append(faults, chaos.Fault{Peer: clientName(c), Round: r, Kind: chaos.Sever})
					severs[c]++
				}
			}
		}
	}
	if cfg.Network.DelayRate > 0 && cfg.Network.Delay > 0 {
		sched := netsim.NewDelaySchedule(tseed, cfg.Clients, cfg.Network.DelayRate, cfg.Network.Delay)
		for r := 1; r < cfg.Rounds; r++ {
			for c := 0; c < cfg.Clients; c++ {
				if d := sched.DelayAt(r, c); d > 0 {
					faults = append(faults, chaos.Fault{Peer: clientName(c), Round: r, Kind: chaos.Delay, Delay: d})
				}
			}
		}
	}
	if cfg.Network.Kill {
		faults = append(faults, chaos.Fault{Round: cfg.Network.KillRound, Kind: chaos.KillServer})
	}
	return faults, severs
}

// clientName is the stable chaos/session identity of a launch slot.
func clientName(i int) string { return fmt.Sprintf("c%d", i) }

// RunTrial executes one seeded trial of the cell over a real TCP
// cluster and scores it. The trial is a pure function of
// (cfg.Seed, trial).
func RunTrial(cfgIn Config, trial int) (*TrialResult, error) {
	cfg := cfgIn.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Network.Kill && cfg.Network.KillRound >= cfg.Rounds {
		return nil, fmt.Errorf("scenario %s: kill round %d outside %d rounds", cfg.Name, cfg.Network.KillRound, cfg.Rounds)
	}
	tseed := TrialSeed(cfg.Seed, trial)
	w := buildWorkload(cfg, tseed)

	advSet := make([]bool, cfg.Clients)
	for i := cfg.Clients - cfg.Adversary.Count; i < cfg.Clients; i++ {
		advSet[i] = true
	}

	faults, severs := buildFaults(cfg, tseed)
	script := chaos.NewScript(tseed, faults...)

	initNet := tinyNet(stats.SplitRNG(tseed, 1_000_000))
	init := nn.FlattenParams(initNet.Params(), nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	scfg := transport.ServerConfig{
		Addr:          "127.0.0.1:0",
		NumClients:    cfg.Clients,
		Rounds:        cfg.Rounds,
		Init:          init,
		RoundDeadline: cfg.RoundDeadline,
		MinClients:    1,
		Codec:         cfg.Codec,
		Reduction:     cfg.reduction(),
		TrimFraction:  cfg.TrimFraction,
		Validator: &transport.ValidatorConfig{
			MaxNormMult:   cfg.MaxNormMult,
			StrikeLimit:   cfg.StrikeLimit,
			CosineFloor:   cfg.CosineFloor,
			RoundNormMult: cfg.RoundNormMult,
		},
	}
	if cfg.CheckpointDir != "" {
		scfg.CheckpointDir = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("trial%d", trial))
		scfg.SnapshotEvery = 1
	}

	srv, err := transport.NewServer(scfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: server: %w", cfg.Name, err)
	}
	addr := srv.Addr().String()
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()
	script.SetOnKill(srvCancel)

	type serverDone struct{ err error }
	done := make(chan serverDone, 1)
	go func() {
		_, err := srv.Run(srvCtx)
		done <- serverDone{err}
	}()

	// Launch clients one by one, gating each on the previous session's
	// registration, so server-assigned ids equal launch slots and every
	// RNG stream keyed by client id is deterministic.
	results := make([]*transport.ClientResult, cfg.Clients)
	errs := make([]error, cfg.Clients)
	snapshots := make([][]float64, cfg.Rounds)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		if err := waitSessions(ctx, srv, i); err != nil {
			srvCancel()
			wg.Wait()
			return nil, fmt.Errorf("scenario %s: client %d registration: %w", cfg.Name, i, err)
		}
		name := clientName(i)
		ccfg := transport.ClientConfig{
			Addr:       addr,
			Name:       name,
			SessionKey: name,
			Model:      w.model,
			Optimizer:  w.optimizer,
			Manager:    managerFactory(w, cfg, tseed, i, advSet[i]),
			Data:       w.train,
			Indices:    w.parts[i],
			LocalIters: cfg.LocalIters,
			BatchSize:  cfg.BatchSize,
			Seed:       tseed,
			Codec:      cfg.Codec,
			// Every scheduled sever costs one reconnect; the margin covers
			// the kill-restart dial window and incidental timing.
			MaxRetries:     severs[i] + 24,
			RetryBaseDelay: 10 * time.Millisecond,
			RetryMaxDelay:  100 * time.Millisecond,
			Dial: transport.DialFunc(script.Dialer(name, func(network, addr string) (net.Conn, error) {
				return net.DialTimeout(network, addr, 5*time.Second)
			})),
		}
		if i == 0 {
			ccfg.OnRound = func(round int, model []float64) {
				if round >= 0 && round < len(snapshots) {
					snapshots[round] = append([]float64(nil), model...)
				}
			}
		}
		wg.Add(1)
		go func(i int, ccfg transport.ClientConfig) {
			defer wg.Done()
			results[i], errs[i] = transport.RunClient(ctx, ccfg)
		}(i, ccfg)
	}

	finalSrv := srv
	if cfg.Network.Kill {
		d := <-done
		if d.err == nil {
			wg.Wait()
			return nil, fmt.Errorf("scenario %s: kill fault never fired", cfg.Name)
		}
		srv2, err := rebindServer(ctx, scfg, addr)
		if err != nil {
			wg.Wait()
			return nil, fmt.Errorf("scenario %s: restart: %w", cfg.Name, err)
		}
		finalSrv = srv2
		done2 := make(chan serverDone, 1)
		go func() {
			_, err := srv2.Run(ctx)
			done2 <- serverDone{err}
		}()
		wg.Wait()
		if d2 := <-done2; d2.err != nil {
			return nil, fmt.Errorf("scenario %s: restarted server: %w", cfg.Name, d2.err)
		}
	} else {
		wg.Wait()
		if d := <-done; d.err != nil {
			return nil, fmt.Errorf("scenario %s: server: %w", cfg.Name, d.err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario %s: client %d: %w", cfg.Name, i, err)
		}
	}

	res := &TrialResult{
		Trial:           trial,
		Seed:            tseed,
		RoundsCommitted: finalSrv.CommittedRounds(),
		PartialRounds:   finalSrv.PartialRounds(),
		ModelHash:       hashModel(results[0].FinalModel),
	}

	// Detection outcomes, indexed by server-assigned id (== launch slot
	// thanks to the registration stagger; the mapping below stays correct
	// even if they ever diverged).
	v := finalSrv.Validator()
	res.Clients = make([]ClientOutcome, cfg.Clients)
	for i, r := range results {
		sid := r.ClientID
		res.Clients[sid] = ClientOutcome{
			Client:          sid,
			Adversary:       advSet[i],
			Strikes:         v.Strikes(sid),
			Quarantined:     v.Quarantined(sid),
			QuarantineRound: v.QuarantineRound(sid),
		}
	}
	ttqSum, ttqN := 0.0, 0
	for _, o := range res.Clients {
		switch {
		case o.Adversary && o.Quarantined:
			res.TruePos++
			if o.QuarantineRound >= 0 {
				ttqSum += float64(o.QuarantineRound - cfg.Adversary.Onset + 1)
				ttqN++
			}
		case o.Adversary:
			res.FalseNeg++
		case o.Quarantined:
			res.FalsePos++
		default:
			res.TrueNeg++
		}
	}
	res.TimeToQuarantine = -1
	if ttqN > 0 {
		res.TimeToQuarantine = ttqSum / float64(ttqN)
	}

	for _, r := range results {
		res.UpBytes += r.UpBytes
		res.DownBytes += r.DownBytes
		res.WireRead += r.WireRead
		res.WireWritten += r.WireWritten
		res.Reconnects += r.Reconnects
	}

	// Accuracy/loss curve from the honest client-0 snapshots.
	evalNet := tinyNet(stats.SplitRNG(tseed, 555))
	for r := 0; r < cfg.Rounds; r++ {
		if snapshots[r] == nil {
			continue
		}
		if (r+1)%cfg.EvalEvery != 0 && r != cfg.Rounds-1 {
			continue
		}
		nn.SetFlat(evalNet.Params(), snapshots[r])
		loss, acc := fl.EvaluateModel(evalNet, w.test, 64)
		res.Curve = append(res.Curve, RoundEval{Round: r, Acc: acc, Loss: loss})
	}
	if len(res.Curve) > 0 {
		last := res.Curve[len(res.Curve)-1]
		res.FinalAcc, res.FinalLoss = last.Acc, last.Loss
	} else {
		res.FinalAcc, res.FinalLoss = -1, -1
	}

	if oracleApplies(cfg) {
		if err := runOracle(cfg, tseed, w, results[0].FinalModel); err != nil {
			return nil, fmt.Errorf("scenario %s trial %d: %w", cfg.Name, trial, err)
		}
		res.OracleChecked = true
	}
	return res, nil
}

// managerFactory builds the launch slot's manager: the honest APF
// manager, wrapped with the poisoner when the slot is adversarial.
func managerFactory(w scenarioWorkload, cfg Config, tseed int64, slot int, isAdv bool) fl.ManagerFactory {
	return func(clientID, dim int) fl.SyncManager {
		inner := w.inner(clientID, dim)
		if isAdv {
			return adversary.Wrap(inner, cfg.Adversary, tseed, slot)
		}
		return inner
	}
}

// waitSessions blocks until the server has registered at least n
// sessions, pinning the join order of staggered client launches.
func waitSessions(ctx context.Context, srv *transport.Server, n int) error {
	deadline := time.Now().Add(15 * time.Second)
	for srv.Sessions() < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %d registered sessions (have %d)", n, srv.Sessions())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// rebindServer reconstructs the coordinator on its previous address,
// retrying while the OS releases the old listener.
func rebindServer(ctx context.Context, scfg transport.ServerConfig, addr string) (*transport.Server, error) {
	scfg.Addr = addr
	var lastErr error
	for attempt := 0; attempt < 200; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		srv, err := transport.NewServer(scfg)
		if err == nil {
			return srv, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, lastErr
}

// oracleApplies reports whether the in-process simulator reproduces the
// cell bit-exactly: honest clients, a quiet network, a lossless codec
// (q16 sessions quantize commits, which the simulator does not model),
// and mean reduction (the simulator has no trimmed-mean arm).
func oracleApplies(cfg Config) bool {
	return cfg.Oracle &&
		!cfg.Adversary.Active() &&
		cfg.Network.DropRate == 0 && cfg.Network.DelayRate == 0 && !cfg.Network.Kill &&
		cfg.Codec != wire.CodecSparseQ16 &&
		cfg.reduction() == fl.ReduceMean
}

// runOracle replays the trial through the fl simulator and requires the
// TCP final model to match bit-exactly (modulo the usual FMA-free
// float64 path, which in practice means every scalar identical).
func runOracle(cfg Config, tseed int64, w scenarioWorkload, tcpFinal []float64) error {
	engine := fl.New(fl.Config{
		Rounds:     cfg.Rounds,
		LocalIters: cfg.LocalIters,
		BatchSize:  cfg.BatchSize,
		Seed:       tseed,
	}, w.model, w.optimizer, w.inner, w.train, w.parts, nil)
	engine.Run()
	sim := engine.Global()
	if len(sim) != len(tcpFinal) {
		return fmt.Errorf("oracle: simulator dim %d, tcp dim %d", len(sim), len(tcpFinal))
	}
	exact := 0
	for i := range sim {
		if math.Float64bits(sim[i]) == math.Float64bits(tcpFinal[i]) {
			exact++
			continue
		}
		diff := math.Abs(sim[i] - tcpFinal[i])
		scale := math.Max(math.Abs(sim[i]), math.Abs(tcpFinal[i]))
		if diff > 1e-12*math.Max(scale, 1) {
			return fmt.Errorf("oracle: scalar %d diverged: sim %v, tcp %v", i, sim[i], tcpFinal[i])
		}
	}
	if frac := float64(exact) / float64(len(sim)); frac < 0.9 {
		return fmt.Errorf("oracle: only %.1f%% of scalars bit-exact", 100*frac)
	}
	return nil
}
