// Package adversary wraps fl.SyncManagers with model-poisoning behavior
// for the scenario harness: a compromised client trains honestly but
// corrupts the contribution it uploads. Every attack decision is a pure
// function of (seed, client, round), so adversarial trials replay
// bit-identically across runs and across the TCP transport and the
// in-process simulator.
package adversary

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"apf/internal/fl"
)

// Strategy names one poisoning behavior.
type Strategy string

const (
	// None leaves the client honest.
	None Strategy = "none"
	// Scale multiplies the contribution by Factor (a blatant magnitude
	// attack — the norm gate's home turf).
	Scale Strategy = "scale"
	// SignFlip negates the contribution. Its L2 norm is unchanged, so a
	// pure norm gate cannot see it; the harness keeps it in the matrix to
	// measure that blind spot honestly.
	SignFlip Strategy = "sign-flip"
	// Noise adds Gaussian noise with per-scalar sigma
	// Factor·‖contrib‖/√dim, inflating the norm by about √(1+Factor²).
	Noise Strategy = "noise"
)

// Spec declares which clients attack, how, and when.
type Spec struct {
	// Strategy selects the poisoning behavior; None (or "") disables.
	Strategy Strategy `json:"strategy"`
	// Count is how many clients are adversarial. The harness assigns the
	// highest client indices.
	Count int `json:"count,omitempty"`
	// AttackRate is the per-round probability an adversary attacks once
	// past Onset (seeded draw; 0 means always).
	AttackRate float64 `json:"attackRate,omitempty"`
	// Onset is the first round eligible for attack. Leaving the earliest
	// rounds honest lets the validator's norm history arm first, which is
	// also what a stealthy adversary would do.
	Onset int `json:"onset,omitempty"`
	// Factor scales the attack magnitude (default 8 for Scale, 4 for
	// Noise; unused by SignFlip).
	Factor float64 `json:"factor,omitempty"`
	// Evasion, when > 0, rescales every poisoned contribution's L2 norm to
	// Evasion × the honest norm. An evasion factor under the validator's
	// MaxNormMult slips beneath the gate while still steering the average.
	Evasion float64 `json:"evasion,omitempty"`
}

// Active reports whether the spec poisons anyone at all.
func (s Spec) Active() bool {
	return s.Strategy != None && s.Strategy != "" && s.Count > 0
}

// factor returns the attack magnitude with per-strategy defaults.
func (s Spec) factor() float64 {
	if s.Factor > 0 {
		return s.Factor
	}
	switch s.Strategy {
	case Noise:
		return 4
	default:
		return 8
	}
}

// Validate rejects specs the harness cannot honor.
func (s Spec) Validate() error {
	switch s.Strategy {
	case None, "", Scale, SignFlip, Noise:
	default:
		return fmt.Errorf("adversary: unknown strategy %q", s.Strategy)
	}
	if s.Count < 0 || s.AttackRate < 0 || s.AttackRate > 1 || s.Onset < 0 || s.Factor < 0 || s.Evasion < 0 {
		return fmt.Errorf("adversary: invalid spec %+v", s)
	}
	return nil
}

// Attacks reports whether the adversary on client attacks in round: the
// round is past onset and the seeded (seed, client, round) draw clears
// the attack rate. Pure function, shared by the runner for ground truth
// and by the wrapper for the attack itself.
func (s Spec) Attacks(seed int64, client, round int) bool {
	if !s.Active() || round < s.Onset {
		return false
	}
	if s.AttackRate <= 0 || s.AttackRate >= 1 {
		return true
	}
	return cellRNG(seed, client, round).Float64() < s.AttackRate
}

// cellRNG derives the deterministic RNG of one (seed, client, round)
// attack cell (the netsim schedule idiom).
func cellRNG(seed int64, client, round int) *rand.Rand {
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(client))
	binary.LittleEndian.PutUint64(buf[16:], uint64(round))
	h.Write(buf[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Wrap returns inner with the spec's poisoning applied to every attacked
// round's upload. client is the wrapped client's index (seeds the attack
// draws). The wrapper forwards the compact-codec and mask interfaces, so
// a poisoned APF client still negotiates sparse sessions; poisoning
// happens on the dense contribution before compaction, exactly where a
// compromised client would inject it.
func Wrap(inner fl.SyncManager, spec Spec, seed int64, client int) fl.SyncManager {
	if !spec.Active() {
		return inner
	}
	return &manager{inner: inner, spec: spec, seed: seed, client: client}
}

// manager is the poisoning SyncManager wrapper.
type manager struct {
	inner  fl.SyncManager
	spec   Spec
	seed   int64
	client int
	buf    []float64
}

var _ fl.SyncManager = (*manager)(nil)

// PostIterate trains honestly — the attack only touches the upload.
func (m *manager) PostIterate(round int, x []float64) { m.inner.PostIterate(round, x) }

// PrepareUpload poisons a copy of the inner contribution on attacked
// rounds. The copy lives in the wrapper's own scratch: the inner
// manager's contribution buffer is reused across rounds and must not be
// mutated behind its back.
func (m *manager) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	contrib, w, up := m.inner.PrepareUpload(round, x)
	if !m.spec.Attacks(m.seed, m.client, round) {
		return contrib, w, up
	}
	m.buf = append(m.buf[:0], contrib...)
	m.poison(round, m.buf)
	return m.buf, w, up
}

// ApplyDownload delegates; the adversary accepts globals like any client.
func (m *manager) ApplyDownload(round int, x, global []float64) int64 {
	return m.inner.ApplyDownload(round, x, global)
}

// poison corrupts one contribution in place per the spec.
func (m *manager) poison(round int, v []float64) {
	honest := norm2(v)
	switch m.spec.Strategy {
	case Scale:
		f := m.spec.factor()
		for i := range v {
			v[i] *= f
		}
	case SignFlip:
		for i := range v {
			v[i] = -v[i]
		}
	case Noise:
		sigma := m.spec.factor() * honest / math.Sqrt(float64(len(v)))
		rng := cellRNG(m.seed^noiseStream, m.client, round)
		for i := range v {
			v[i] += sigma * rng.NormFloat64()
		}
	}
	if m.spec.Evasion > 0 && honest > 0 {
		if cur := norm2(v); cur > 0 {
			f := m.spec.Evasion * honest / cur
			for i := range v {
				v[i] *= f
			}
		}
	}
}

// noiseStream decorrelates the noise draws from the attack-rate draws.
const noiseStream = 0x6e6f697365 // "noise"

// norm2 returns the L2 norm of v.
func norm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// CompactUpload delegates mask-elided extraction; it receives whatever
// contribution PrepareUpload returned, so poisoned values flow through.
func (m *manager) CompactUpload(round int, contrib []float64) []float64 {
	if cc, ok := m.inner.(fl.CompactCodec); ok {
		return cc.CompactUpload(round, contrib)
	}
	return append([]float64(nil), contrib...)
}

// ExpandDownload delegates compact-payload expansion.
func (m *manager) ExpandDownload(round int, compact []float64) []float64 {
	if cc, ok := m.inner.(fl.CompactCodec); ok {
		return cc.ExpandDownload(round, compact)
	}
	return append([]float64(nil), compact...)
}

// CompactLen delegates the compact payload length; -1 means unknown.
func (m *manager) CompactLen(round int) int {
	if cl, ok := m.inner.(interface{ CompactLen(round int) int }); ok {
		return cl.CompactLen(round)
	}
	return -1
}

// FrozenRatio delegates when the wrapped manager freezes parameters.
func (m *manager) FrozenRatio() float64 {
	if fr, ok := m.inner.(fl.FrozenRatioReporter); ok {
		return fr.FrozenRatio()
	}
	return 0
}

// MaskWords delegates when the wrapped manager exposes a mask.
func (m *manager) MaskWords() []uint64 {
	if mr, ok := m.inner.(fl.MaskReporter); ok {
		return mr.MaskWords()
	}
	return nil
}

// MaskGeneration delegates when the wrapped manager versions its mask;
// -1 means none.
func (m *manager) MaskGeneration() int {
	if mg, ok := m.inner.(fl.MaskGenerationReporter); ok {
		return mg.MaskGeneration()
	}
	return -1
}
