package adversary

import (
	"math"
	"testing"

	"apf/internal/fl"
)

// fixedManager is a stub inner manager returning a constant contribution.
type fixedManager struct {
	contrib []float64
	post    int
}

func (m *fixedManager) PostIterate(round int, x []float64) { m.post++ }
func (m *fixedManager) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	return m.contrib, 1, int64(len(m.contrib)) * 4
}
func (m *fixedManager) ApplyDownload(round int, x, global []float64) int64 {
	copy(x, global)
	return int64(len(global)) * 4
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func TestWrapNoneIsIdentity(t *testing.T) {
	t.Parallel()
	inner := &fixedManager{contrib: []float64{1, 2}}
	if got := Wrap(inner, Spec{Strategy: None, Count: 1}, 1, 0); got != fl.SyncManager(inner) {
		t.Error("inactive spec should return the inner manager unchanged")
	}
	if got := Wrap(inner, Spec{Strategy: Scale, Count: 0}, 1, 0); got != fl.SyncManager(inner) {
		t.Error("zero-count spec should return the inner manager unchanged")
	}
}

func TestAttacksOnsetAndDeterminism(t *testing.T) {
	t.Parallel()
	s := Spec{Strategy: Scale, Count: 1, Onset: 3}
	for r := 0; r < 3; r++ {
		if s.Attacks(7, 0, r) {
			t.Errorf("attacked round %d before onset", r)
		}
	}
	for r := 3; r < 8; r++ {
		if !s.Attacks(7, 0, r) {
			t.Errorf("rate-1 spec skipped round %d", r)
		}
	}
	// A fractional rate draws deterministically and hits its marginal.
	s.AttackRate = 0.3
	hits, total := 0, 5000
	for r := 3; r < 3+total; r++ {
		a := s.Attacks(7, 0, r)
		if a != s.Attacks(7, 0, r) {
			t.Fatal("attack draw is not deterministic")
		}
		if a {
			hits++
		}
	}
	got := float64(hits) / float64(total)
	if got < 0.27 || got > 0.33 {
		t.Errorf("attack rate 0.3: empirical %.3f", got)
	}
}

func TestScalePoisonsOnlyAttackedRounds(t *testing.T) {
	t.Parallel()
	base := []float64{1, -2, 3}
	inner := &fixedManager{contrib: append([]float64(nil), base...)}
	m := Wrap(inner, Spec{Strategy: Scale, Count: 1, Onset: 2, Factor: 8}, 1, 0)

	contrib, w, up := m.PrepareUpload(1, nil) // before onset: pass-through
	if w != 1 || up != 12 {
		t.Errorf("weight/bytes not forwarded: %v %v", w, up)
	}
	for i, x := range contrib {
		if x != base[i] {
			t.Errorf("pre-onset contrib mutated: %v", contrib)
		}
	}

	poisoned, _, _ := m.PrepareUpload(2, nil)
	for i, x := range poisoned {
		if x != 8*base[i] {
			t.Errorf("scalar %d = %v, want %v", i, x, 8*base[i])
		}
	}
	// The inner manager's scratch must not be mutated behind its back.
	for i, x := range inner.contrib {
		if x != base[i] {
			t.Errorf("inner contrib mutated at %d: %v", i, x)
		}
	}
}

func TestSignFlipPreservesNorm(t *testing.T) {
	t.Parallel()
	base := []float64{1, -2, 3, 0.5}
	inner := &fixedManager{contrib: append([]float64(nil), base...)}
	m := Wrap(inner, Spec{Strategy: SignFlip, Count: 1}, 1, 0)
	poisoned, _, _ := m.PrepareUpload(0, nil)
	if math.Abs(norm(poisoned)-norm(base)) > 1e-15 {
		t.Errorf("sign flip changed the norm: %v vs %v", norm(poisoned), norm(base))
	}
	for i, x := range poisoned {
		if x != -base[i] {
			t.Errorf("scalar %d = %v, want %v", i, x, -base[i])
		}
	}
}

func TestEvasionRescalesToHonestMultiple(t *testing.T) {
	t.Parallel()
	base := []float64{3, 4} // norm 5
	inner := &fixedManager{contrib: append([]float64(nil), base...)}
	m := Wrap(inner, Spec{Strategy: Scale, Count: 1, Factor: 100, Evasion: 1.5}, 1, 0)
	poisoned, _, _ := m.PrepareUpload(0, nil)
	if got, want := norm(poisoned), 1.5*5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("evasive norm = %v, want %v", got, want)
	}
}

func TestNoiseInflatesNormDeterministically(t *testing.T) {
	t.Parallel()
	base := make([]float64, 256)
	for i := range base {
		base[i] = 0.1
	}
	inner := &fixedManager{contrib: append([]float64(nil), base...)}
	m := Wrap(inner, Spec{Strategy: Noise, Count: 1, Factor: 4}, 9, 0)
	a, _, _ := m.PrepareUpload(0, nil)
	first := append([]float64(nil), a...)

	inner2 := &fixedManager{contrib: append([]float64(nil), base...)}
	m2 := Wrap(inner2, Spec{Strategy: Noise, Count: 1, Factor: 4}, 9, 0)
	b, _, _ := m2.PrepareUpload(0, nil)
	for i := range first {
		if first[i] != b[i] {
			t.Fatal("noise attack is not deterministic across runs")
		}
	}
	// Expected inflation ≈ √(1+16); allow a wide statistical band.
	ratio := norm(first) / norm(base)
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("noise norm ratio = %.2f, want ≈ 4.1", ratio)
	}
}

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	good := []Spec{
		{},
		{Strategy: None},
		{Strategy: Scale, Count: 1, AttackRate: 0.5, Onset: 2, Factor: 8, Evasion: 1.5},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %+v: unexpected error %v", s, err)
		}
	}
	bad := []Spec{
		{Strategy: "volt-typo"},
		{Strategy: Scale, Count: -1},
		{Strategy: Scale, AttackRate: 1.5},
		{Strategy: Scale, Evasion: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v: expected validation error", s)
		}
	}
}
