package scenario

import (
	"encoding/json"
	"testing"
	"time"

	"apf/internal/scenario/adversary"
	"apf/internal/wire"
)

// testCfg is a fast single-trial cell for TCP tests.
func testCfg() Config {
	return Config{
		Trials:        1,
		Seed:          11,
		Alpha:         0.3,
		Codec:         wire.CodecDense,
		Network:       CleanNetwork(),
		RoundDeadline: 400 * time.Millisecond,
	}
}

// TestTrialDeterministicJSON is the RNG-plumbing regression test: two
// runs of the same scenario cell — adversary, flaky network, sparse
// codec, the full stack — must serialize to byte-identical JSON.
func TestTrialDeterministicJSON(t *testing.T) {
	cfg := testCfg()
	cfg.Adversary = adversary.Spec{Strategy: adversary.Scale, Count: 1, Onset: 3}
	cfg.Network = FlakyNetwork()
	cfg.Codec = wire.CodecSparse

	run := func() []byte {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed runs diverged:\n%s\n---\n%s", a, b)
	}
}

// TestScaleAdversaryDetected: a blatant scaler must be quarantined after
// exactly StrikeLimit attacked rounds, with clean honest scores.
func TestScaleAdversaryDetected(t *testing.T) {
	cfg := testCfg()
	cfg.Adversary = adversary.Spec{Strategy: adversary.Scale, Count: 1, Onset: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePositiveRate != 1 {
		t.Errorf("TPR = %v, want 1", res.TruePositiveRate)
	}
	if res.FalsePositiveRate != 0 {
		t.Errorf("FPR = %v, want 0", res.FalsePositiveRate)
	}
	// Strikes accumulate on consecutive attacked rounds: onset and the
	// next round, so quarantine lands at round onset+1 and the adversary
	// survived exactly StrikeLimit attacked rounds.
	if res.TimeToQuarantineMean != 2 {
		t.Errorf("time-to-quarantine = %v, want 2", res.TimeToQuarantineMean)
	}
	tr := res.Trials[0]
	advOut := tr.Clients[len(tr.Clients)-1]
	if !advOut.Adversary || !advOut.Quarantined || advOut.QuarantineRound != 4 || advOut.Strikes != 2 {
		t.Errorf("adversary outcome = %+v, want quarantined at round 4 with 2 strikes", advOut)
	}
	for _, o := range tr.Clients[:len(tr.Clients)-1] {
		if o.Adversary || o.Quarantined || o.Strikes != 0 {
			t.Errorf("honest outcome = %+v, want clean", o)
		}
	}
	// The poisoner's round-3 rejection makes that round partial; after
	// quarantine every remaining round aggregates without it.
	if tr.PartialRounds == 0 {
		t.Error("expected partial rounds once the poisoner was rejected")
	}
}

// TestSignFlipEvadesNormGate documents the norm gate's blind spot: a
// sign-flipped update has an identical L2 norm, so detection stays at 0.
func TestSignFlipEvadesNormGate(t *testing.T) {
	cfg := testCfg()
	cfg.Adversary = adversary.Spec{Strategy: adversary.SignFlip, Count: 1, Onset: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TruePositiveRate != 0 {
		t.Errorf("TPR = %v, want 0 (norm gate cannot see sign flips)", res.TruePositiveRate)
	}
	if res.FalsePositiveRate != 0 {
		t.Errorf("FPR = %v, want 0", res.FalsePositiveRate)
	}
}

// TestHonestCellOracle: an honest clean-network cell must reproduce
// bit-exactly in the in-process simulator, keep full participation, and
// learn.
func TestHonestCellOracle(t *testing.T) {
	cfg := testCfg()
	cfg.Oracle = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trials[0]
	if !tr.OracleChecked {
		t.Error("oracle did not run on an applicable cell")
	}
	if tr.PartialRounds != 0 {
		t.Errorf("honest clean cell had %d partial rounds", tr.PartialRounds)
	}
	if tr.RoundsCommitted != cfg.withDefaults().Rounds {
		t.Errorf("committed %d rounds, want %d", tr.RoundsCommitted, cfg.withDefaults().Rounds)
	}
	if res.FinalAccMean < 0.5 {
		t.Errorf("final accuracy %.3f, expected learning above 0.5", res.FinalAccMean)
	}
	if res.TruePositiveRate != -1 {
		t.Errorf("TPR = %v, want -1 (undefined without adversaries)", res.TruePositiveRate)
	}
}

// TestFlakyNetworkPreservesTraining: scheduled severs force reconnects
// but session resume keeps every client participating.
func TestFlakyNetworkPreservesTraining(t *testing.T) {
	cfg := testCfg()
	cfg.Network = FlakyNetwork()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trials[0]
	if tr.Reconnects == 0 {
		t.Error("flaky network produced no reconnects")
	}
	if tr.RoundsCommitted != cfg.withDefaults().Rounds {
		t.Errorf("committed %d rounds, want %d", tr.RoundsCommitted, cfg.withDefaults().Rounds)
	}
	if res.FalsePositiveRate != 0 {
		t.Errorf("FPR = %v under churn, want 0", res.FalsePositiveRate)
	}
}

// TestMatrixShape verifies the benchmark matrix covers the acceptance
// axes: ≥3 real adversary strategies, ≥2 network models, ≥2 Dirichlet α,
// all 3 codecs, with unique cell names.
func TestMatrixShape(t *testing.T) {
	t.Parallel()
	cells := DefaultMatrix(1, 2)
	strategies := map[string]bool{}
	nets := map[string]bool{}
	alphas := map[float64]bool{}
	codecs := map[string]bool{}
	names := map[string]bool{}
	for _, c := range cells {
		if c.Adversary.Active() {
			strategies[string(c.Adversary.Strategy)] = true
		}
		nets[c.Network.Name] = true
		alphas[c.Alpha] = true
		codecs[c.Codec.String()] = true
		if names[c.Name] {
			t.Errorf("duplicate cell name %q", c.Name)
		}
		names[c.Name] = true
		if err := c.validate(); err != nil {
			t.Errorf("cell %s invalid: %v", c.Name, err)
		}
	}
	if len(strategies) < 3 {
		t.Errorf("matrix covers %d adversary strategies, want >= 3", len(strategies))
	}
	if len(nets) < 2 {
		t.Errorf("matrix covers %d network models, want >= 2", len(nets))
	}
	if len(alphas) < 2 {
		t.Errorf("matrix covers %d alphas, want >= 2", len(alphas))
	}
	if len(codecs) != 3 {
		t.Errorf("matrix covers %d codecs, want 3", len(codecs))
	}
}

// TestGates exercises the report gate logic on synthetic cells without
// running any trials.
func TestGates(t *testing.T) {
	t.Parallel()
	rep := &Report{Gates: DefaultGates()}
	mk := func(name, strategy string, count int, tpr, fpr, acc, minAcc float64) ExperimentResult {
		return ExperimentResult{
			Cell: CellKey{
				Name:      name,
				Adversary: adversary.Spec{Strategy: adversary.Strategy(strategy), Count: count},
				MinAcc:    minAcc,
			},
			TruePositiveRate:  tpr,
			FalsePositiveRate: fpr,
			FinalAccMean:      acc,
		}
	}
	rep.Cells = []ExperimentResult{
		mk("ok-honest", "none", 0, -1, 0, 0.9, 0.5),
		mk("ok-scale", "scale", 1, 1, 0, 0.8, 0),
		mk("bad-tpr", "scale", 1, 0, 0, 0.8, 0),
		mk("bad-fpr", "noise", 1, 1, 0.5, 0.8, 0),
		mk("bad-acc", "none", 0, -1, 0, 0.2, 0.5),
	}
	violations := rep.Check()
	if len(violations) != 3 {
		t.Fatalf("got %d violations (%v), want 3", len(violations), violations)
	}
}

// TestTrialSeedStable pins the (seed, trial) derivation: changing either
// input changes the trial seed, and the mapping is stable across calls.
func TestTrialSeedStable(t *testing.T) {
	t.Parallel()
	if TrialSeed(1, 0) != TrialSeed(1, 0) {
		t.Error("TrialSeed is not deterministic")
	}
	if TrialSeed(1, 0) == TrialSeed(1, 1) || TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("TrialSeed does not separate seeds/trials")
	}
}
