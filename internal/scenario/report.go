package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"apf/internal/scenario/adversary"
	"apf/internal/stats"
)

// CellKey is the JSON-stable identity of one matrix cell — everything
// needed to reproduce it with RunTrial.
type CellKey struct {
	Name       string         `json:"name"`
	Clients    int            `json:"clients"`
	Rounds     int            `json:"rounds"`
	LocalIters int            `json:"localIters"`
	BatchSize  int            `json:"batchSize"`
	Alpha      float64        `json:"alpha"`
	Codec      string         `json:"codec"`
	Adversary  adversary.Spec `json:"adversary"`
	Network    networkKey     `json:"network"`
	Trials     int            `json:"trials"`
	Seed       int64          `json:"seed"`
	MinAcc     float64        `json:"minAcc,omitempty"`

	// Defense knobs of the cell; zero values mean "off"/"mean" and are
	// omitted so pre-defense reports stay readable.
	CosineFloor   float64 `json:"cosineFloor,omitempty"`
	RoundNormMult float64 `json:"roundNormMult,omitempty"`
	Aggregator    string  `json:"aggregator,omitempty"`
	TrimFraction  float64 `json:"trimFraction,omitempty"`
	// MinTPR is the per-cell TPR floor override (> 0 floor, < 0 exempt,
	// 0 defer to the matrix gates).
	MinTPR float64 `json:"minTPR,omitempty"`
}

// networkKey flattens NetworkSpec with the delay in integer milliseconds
// so the JSON never carries locale- or precision-dependent duration
// strings.
type networkKey struct {
	Name      string  `json:"name"`
	DropRate  float64 `json:"dropRate,omitempty"`
	DelayRate float64 `json:"delayRate,omitempty"`
	DelayMs   int64   `json:"delayMs,omitempty"`
}

// key derives the cell identity from a (defaulted) config.
func (c Config) key() CellKey {
	return CellKey{
		Name:       c.Name,
		Clients:    c.Clients,
		Rounds:     c.Rounds,
		LocalIters: c.LocalIters,
		BatchSize:  c.BatchSize,
		Alpha:      c.Alpha,
		Codec:      c.Codec.String(),
		Adversary:  c.Adversary,
		Network: networkKey{
			Name:      c.Network.Name,
			DropRate:  c.Network.DropRate,
			DelayRate: c.Network.DelayRate,
			DelayMs:   int64(c.Network.Delay / time.Millisecond),
		},
		Trials:        c.Trials,
		Seed:          c.Seed,
		CosineFloor:   c.CosineFloor,
		RoundNormMult: c.RoundNormMult,
		Aggregator:    c.Aggregator,
		TrimFraction:  c.TrimFraction,
	}
}

// ExperimentResult aggregates a cell's trials (satnet-simulator style:
// the config, the raw trials, and mean/stddev summaries).
type ExperimentResult struct {
	Cell   CellKey       `json:"cell"`
	Trials []TrialResult `json:"trials"`

	FinalAccMean float64 `json:"finalAccMean"`
	FinalAccStd  float64 `json:"finalAccStd"`
	RoundsMean   float64 `json:"roundsMean"`
	UpBytesMean  float64 `json:"upBytesMean"`
	WireMean     float64 `json:"wireMean"` // read+written

	// TruePositiveRate / FalsePositiveRate pool the confusion counts of
	// every trial; -1 when the denominator is empty (e.g. TPR with no
	// adversaries).
	TruePositiveRate  float64 `json:"truePositiveRate"`
	FalsePositiveRate float64 `json:"falsePositiveRate"`
	// TimeToQuarantineMean averages over trials that quarantined someone;
	// -1 when none did.
	TimeToQuarantineMean float64 `json:"timeToQuarantineMean"`
}

// Run executes every trial of one cell and aggregates.
func Run(cfgIn Config) (*ExperimentResult, error) {
	cfg := cfgIn.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &ExperimentResult{Cell: cfg.key()}
	for t := 0; t < cfg.Trials; t++ {
		tr, err := RunTrial(cfg, t)
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, *tr)
	}
	res.aggregate()
	return res, nil
}

// aggregate fills the summary statistics from the trials.
func (r *ExperimentResult) aggregate() {
	var accs, rounds, up, wireB []float64
	tp, fp, tn, fn := 0, 0, 0, 0
	ttqSum, ttqN := 0.0, 0
	for _, t := range r.Trials {
		accs = append(accs, t.FinalAcc)
		rounds = append(rounds, float64(t.RoundsCommitted))
		up = append(up, float64(t.UpBytes))
		wireB = append(wireB, float64(t.WireRead+t.WireWritten))
		tp += t.TruePos
		fp += t.FalsePos
		tn += t.TrueNeg
		fn += t.FalseNeg
		if t.TimeToQuarantine >= 0 {
			ttqSum += t.TimeToQuarantine
			ttqN++
		}
	}
	r.FinalAccMean = stats.Mean(accs)
	r.FinalAccStd = stats.Std(accs)
	r.RoundsMean = stats.Mean(rounds)
	r.UpBytesMean = stats.Mean(up)
	r.WireMean = stats.Mean(wireB)
	r.TruePositiveRate, r.FalsePositiveRate = -1, -1
	if tp+fn > 0 {
		r.TruePositiveRate = float64(tp) / float64(tp+fn)
	}
	if fp+tn > 0 {
		r.FalsePositiveRate = float64(fp) / float64(fp+tn)
	}
	r.TimeToQuarantineMean = -1
	if ttqN > 0 {
		r.TimeToQuarantineMean = ttqSum / float64(ttqN)
	}
}

// Gates are the CI regression bounds evaluated over a report.
type Gates struct {
	// TPRFloor maps an adversary strategy name to the minimum pooled
	// true-positive rate of every cell running it. Strategies absent from
	// the map are ungated (sign-flip and the evasive scaler are the norm
	// gate's documented blind spots — gating them at 0 would only hide
	// that).
	TPRFloor map[string]float64 `json:"tprFloor"`
	// FPRCeiling bounds every cell's pooled false-positive rate: an
	// honest client quarantined anywhere in the matrix is a regression.
	FPRCeiling float64 `json:"fprCeiling"`
	// AccFloor is enforced per cell via CellKey.MinAcc (set by the matrix
	// builder on honest arms).
	AccFloor bool `json:"accFloor"`
}

// DefaultGates gates what the defended validator delivers: blatant
// magnitude attacks (scale, noise) must always quarantine, the two
// former blind spots are floored now that the direction gate and the
// post-round norm review are armed — sign-flip (cosine ≈ −1 against the
// reference) at 0.9, the evasive scaler (caught only by the lagging
// round review) at 0.5 — honest clients never strike, and honest cells
// must keep learning. Cells carrying MinTPR < 0 (the norm-only ablation
// tier) are exempt from the strategy floors.
func DefaultGates() Gates {
	return Gates{
		TPRFloor: map[string]float64{
			string(adversary.Scale):    1,
			string(adversary.Noise):    1,
			string(adversary.SignFlip): 0.9,
			"scale-evade":              0.5,
		},
		FPRCeiling: 0,
		AccFloor:   true,
	}
}

// Report is the BENCH_scenarios.json payload.
type Report struct {
	Suite      string             `json:"suite"`
	Version    int                `json:"version"`
	Matrix     string             `json:"matrix"`
	Seed       int64              `json:"seed"`
	Gates      Gates              `json:"gates"`
	Cells      []ExperimentResult `json:"cells"`
	Violations []string           `json:"violations"`
}

// Check evaluates the gates over every cell and records violations.
func (rep *Report) Check() []string {
	rep.Violations = []string{}
	for _, cell := range rep.Cells {
		strat := string(cell.Cell.Adversary.Strategy)
		// Evasive variants are keyed separately so a floor on the plain
		// strategy doesn't accidentally gate its blind-spot sibling.
		if cell.Cell.Adversary.Evasion > 0 {
			strat += "-evade"
		}
		// Per-cell MinTPR overrides the strategy map: > 0 is the floor,
		// < 0 exempts the cell (ablation tiers that measure a blind spot
		// rather than gate it), 0 defers to the map.
		floor, gated := rep.Gates.TPRFloor[strat]
		switch {
		case cell.Cell.MinTPR > 0:
			floor, gated = cell.Cell.MinTPR, true
		case cell.Cell.MinTPR < 0:
			gated = false
		}
		if gated && cell.Cell.Adversary.Count > 0 {
			if cell.TruePositiveRate < floor {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s: TPR %.3f below floor %.3f", cell.Cell.Name, cell.TruePositiveRate, floor))
			}
		}
		if cell.FalsePositiveRate > rep.Gates.FPRCeiling {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s: FPR %.3f above ceiling %.3f", cell.Cell.Name, cell.FalsePositiveRate, rep.Gates.FPRCeiling))
		}
		if rep.Gates.AccFloor && cell.Cell.MinAcc > 0 && cell.FinalAccMean < cell.Cell.MinAcc {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s: final accuracy %.3f below floor %.3f", cell.Cell.Name, cell.FinalAccMean, cell.Cell.MinAcc))
		}
	}
	return rep.Violations
}

// RunMatrix executes every cell and assembles the checked report.
func RunMatrix(matrixName string, cells []Config, seed int64, gates Gates, progress func(string)) (*Report, error) {
	rep := &Report{
		Suite:   "scenarios",
		Version: 1,
		Matrix:  matrixName,
		Seed:    seed,
		Gates:   gates,
	}
	for _, cfg := range cells {
		cfg = cfg.withDefaults()
		// Carry the builder's gate overrides into the cell identity so the
		// report is self-describing.
		key := cfg.key()
		key.MinAcc = cfg.MinAcc
		key.MinTPR = cfg.MinTPR
		if progress != nil {
			progress(cfg.Name)
		}
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		res.Cell = key
		rep.Cells = append(rep.Cells, *res)
	}
	rep.Check()
	return rep, nil
}

// WriteFile serializes the report deterministically (fixed field order,
// no timestamps) so same-seed runs are byte-identical.
func (rep *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
