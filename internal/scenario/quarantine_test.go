package scenario

import (
	"reflect"
	"testing"
	"time"

	"apf/internal/scenario/adversary"
	"apf/internal/wire"
)

// codecCell builds the shared adversarial cell of the codec-equivalence
// tests; only the codec varies between arms.
func codecCell(codec wire.Codec, spec adversary.Spec) Config {
	cfg := testCfg()
	cfg.Codec = codec
	cfg.Adversary = spec
	return cfg
}

// outcomes runs one cell and returns the per-client detection records.
func outcomes(t *testing.T, cfg Config) []ClientOutcome {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trials[0].Clients
}

// TestBlatantPoisonerQuarantinedIdenticallyAcrossCodecs: the same scale
// attack must produce identical strikes, quarantine flags, and
// quarantine rounds whether the session negotiated dense, sparse, or
// sparse-q16 framing — the validator sees through the codec.
func TestBlatantPoisonerQuarantinedIdenticallyAcrossCodecs(t *testing.T) {
	spec := adversary.Spec{Strategy: adversary.Scale, Count: 1, Onset: 3}
	dense := outcomes(t, codecCell(wire.CodecDense, spec))

	adv := dense[len(dense)-1]
	if !adv.Quarantined || adv.Strikes != 2 || adv.QuarantineRound != 4 {
		t.Fatalf("dense adversary outcome = %+v, want quarantine at round 4 with 2 strikes", adv)
	}
	for _, codec := range []wire.Codec{wire.CodecSparse, wire.CodecSparseQ16} {
		got := outcomes(t, codecCell(codec, spec))
		if !reflect.DeepEqual(got, dense) {
			t.Errorf("codec %s outcomes %+v differ from dense %+v", codec, got, dense)
		}
	}
}

// TestEvasivePoisonerScoredIdenticallyAcrossCodecs: an evasive scaler
// (1.5× the honest norm, just under the gate once the lagging median is
// accounted for) must slip through with zero strikes on every codec —
// including sparse-q16, whose binary16 rounding must not nudge the norm
// across the gate in either direction.
func TestEvasivePoisonerScoredIdenticallyAcrossCodecs(t *testing.T) {
	spec := adversary.Spec{Strategy: adversary.Scale, Count: 1, Onset: 3, Evasion: 1.5}
	dense := outcomes(t, codecCell(wire.CodecDense, spec))

	adv := dense[len(dense)-1]
	if adv.Quarantined || adv.Strikes != 0 {
		t.Fatalf("dense evasive adversary outcome = %+v, want zero strikes (under the gate)", adv)
	}
	for _, codec := range []wire.Codec{wire.CodecSparse, wire.CodecSparseQ16} {
		got := outcomes(t, codecCell(codec, spec))
		if !reflect.DeepEqual(got, dense) {
			t.Errorf("codec %s outcomes %+v differ from dense %+v", codec, got, dense)
		}
	}
}

// TestQuarantineSurvivesKillRestart: the coordinator is killed after the
// poisoner is quarantined and restarted from its checkpoint; the
// restored validator must still hold the quarantine (and its strike
// count), the run must finish every round, and the final model must be
// bit-identical to an uninterrupted run of the same cell.
func TestQuarantineSurvivesKillRestart(t *testing.T) {
	spec := adversary.Spec{Strategy: adversary.Scale, Count: 1, Onset: 2}
	base := testCfg()
	base.Adversary = spec
	base.Codec = wire.CodecSparse
	base.RoundDeadline = 600 * time.Millisecond

	plain, err := RunTrial(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	padv := plain.Clients[len(plain.Clients)-1]
	if !padv.Quarantined || padv.QuarantineRound != 3 {
		t.Fatalf("uninterrupted adversary outcome = %+v, want quarantine at round 3", padv)
	}

	killed := base
	killed.CheckpointDir = t.TempDir()
	killed.Network.Kill = true
	killed.Network.KillRound = 5 // after the round-3 quarantine is snapshotted
	kres, err := RunTrial(killed, 0)
	if err != nil {
		t.Fatal(err)
	}
	kadv := kres.Clients[len(kres.Clients)-1]
	if !kadv.Quarantined {
		t.Error("quarantine did not survive the kill+restart")
	}
	if kadv.Strikes != padv.Strikes {
		t.Errorf("restored strikes = %d, want %d", kadv.Strikes, padv.Strikes)
	}
	// Snapshots carry the quarantine round since the validator state grew
	// its optional tail; the restored record matches the uninterrupted one.
	if kadv.QuarantineRound != padv.QuarantineRound {
		t.Errorf("restored quarantine round = %d, want %d", kadv.QuarantineRound, padv.QuarantineRound)
	}
	if kres.RoundsCommitted != plain.RoundsCommitted {
		t.Errorf("killed run committed %d rounds, uninterrupted %d", kres.RoundsCommitted, plain.RoundsCommitted)
	}
	if kres.ModelHash != plain.ModelHash {
		t.Errorf("final model diverged across kill+restart: %x vs %x", kres.ModelHash, plain.ModelHash)
	}
	if kres.Reconnects < len(kres.Clients) {
		t.Errorf("expected every client to resume after the kill, got %d reconnects", kres.Reconnects)
	}
}

// TestCosineQuarantineSurvivesKillRestart: a sign-flipper is caught by
// the direction gate (the norm gate is blind to it), the coordinator is
// killed after the quarantine is snapshotted, and the restored
// validator — including the persisted reference direction and decay
// bookkeeping — must still hold the quarantine rather than readmit the
// flipper with a blank reference.
func TestCosineQuarantineSurvivesKillRestart(t *testing.T) {
	base := testCfg()
	base.Rounds = 8
	base.Adversary = adversary.Spec{Strategy: adversary.SignFlip, Count: 1, Onset: 2}
	base.CosineFloor = matrixCosineFloor
	base.RoundNormMult = matrixRoundNormMult
	base.RoundDeadline = 600 * time.Millisecond

	plain, err := RunTrial(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	padv := plain.Clients[len(plain.Clients)-1]
	if !padv.Quarantined {
		t.Fatalf("uninterrupted sign-flip outcome = %+v, want cosine-gate quarantine", padv)
	}

	killed := base
	killed.CheckpointDir = t.TempDir()
	killed.Network.Kill = true
	killed.Network.KillRound = padv.QuarantineRound + 2 // after the quarantine is snapshotted
	if killed.Network.KillRound >= killed.Rounds {
		t.Fatalf("quarantine round %d too late to kill after", padv.QuarantineRound)
	}
	kres, err := RunTrial(killed, 0)
	if err != nil {
		t.Fatal(err)
	}
	kadv := kres.Clients[len(kres.Clients)-1]
	if !kadv.Quarantined {
		t.Error("cosine-gate quarantine did not survive the kill+restart")
	}
	if kadv.QuarantineRound != padv.QuarantineRound {
		t.Errorf("restored quarantine round = %d, want %d", kadv.QuarantineRound, padv.QuarantineRound)
	}
	if kres.ModelHash != plain.ModelHash {
		t.Errorf("final model diverged across kill+restart: %x vs %x", kres.ModelHash, plain.ModelHash)
	}
}
