// Package scenario is the declarative experiment harness that sweeps the
// adversary × network × data-skew × codec space over the real transport
// stack. A Config names one cell of the matrix; the runner executes it as
// N seeded trials — each one a real TCP coordinator plus clients, with
// chaos-scripted network behavior and optionally poisoned uploads — and
// scores both APF (accuracy vs bytes) and the transport validator
// (TPR / FPR / time-to-quarantine). Results aggregate into
// ExperimentResults and serialize to BENCH_scenarios.json with CI
// regression gates.
//
// Every trial is a pure function of (Config.Seed, trial index): data,
// partitions, model init, dropout/delay schedules, and attack draws all
// derive from the trial seed, so two runs of the same cell are
// byte-identical in JSON output.
package scenario

import (
	"fmt"
	"time"

	"apf/internal/fl"
	"apf/internal/scenario/adversary"
	"apf/internal/stats"
	"apf/internal/wire"
)

// NetworkSpec declares one network model applied to a trial through
// chaos faults generated from netsim schedules.
type NetworkSpec struct {
	// Name labels the model in reports ("clean", "flaky", "jittery").
	Name string `json:"name"`
	// DropRate is the per-(round, client) probability that the client's
	// connection is severed at that round's mark (netsim.DropoutSchedule).
	// Severed clients resume their session and re-send, so participation
	// is preserved — the cost is reconnects and re-sent wire bytes.
	DropRate float64 `json:"dropRate,omitempty"`
	// DelayRate and Delay drive a netsim.DelaySchedule: with probability
	// DelayRate a client's first write of the round stalls for a jittered
	// duration up to Delay.
	DelayRate float64       `json:"delayRate,omitempty"`
	Delay     time.Duration `json:"delay,omitempty"`
	// Kill crashes the coordinator when the first client reaches
	// KillRound and restarts it from its checkpoint directory. Test-only:
	// kill cells are excluded from benchmark matrices because in-flight
	// byte counts at the kill point are scheduling-dependent.
	Kill      bool `json:"kill,omitempty"`
	KillRound int  `json:"killRound,omitempty"`
}

// CleanNetwork is the no-fault baseline.
func CleanNetwork() NetworkSpec { return NetworkSpec{Name: "clean"} }

// FlakyNetwork severs a quarter of (round, client) cells.
func FlakyNetwork() NetworkSpec { return NetworkSpec{Name: "flaky", DropRate: 0.25} }

// JitteryNetwork combines moderate severs with write stalls.
func JitteryNetwork() NetworkSpec {
	return NetworkSpec{Name: "jittery", DropRate: 0.15, DelayRate: 0.3, Delay: 30 * time.Millisecond}
}

// Config declares one cell of the scenario matrix.
type Config struct {
	// Name labels the cell in reports; derived from the axes when empty.
	Name string `json:"name"`

	// Cluster shape and training schedule (defaults: 3 clients, 8 rounds,
	// 2 local iters, batch 10).
	Clients    int `json:"clients"`
	Rounds     int `json:"rounds"`
	LocalIters int `json:"localIters"`
	BatchSize  int `json:"batchSize"`

	// Alpha is the Dirichlet concentration of the label skew; <= 0 means
	// IID shards.
	Alpha float64 `json:"alpha"`

	// Codec selects the negotiated wire codec (dense | sparse | sparse-q16).
	Codec wire.Codec `json:"-"`

	// Adversary poisons the highest Adversary.Count client indices.
	Adversary adversary.Spec `json:"adversary"`

	// Network is the chaos model of the trial.
	Network NetworkSpec `json:"network"`

	// Trials is how many seeded trials to run (default 2).
	Trials int `json:"trials"`
	// Seed is the base seed; trial t runs under TrialSeed(Seed, t).
	Seed int64 `json:"seed"`

	// EvalEvery evaluates the global model every K rounds (default 2).
	EvalEvery int `json:"evalEvery"`

	// RoundDeadline bounds each round's barrier (fault tolerance); the
	// default 800ms comfortably covers honest trials on loopback while
	// keeping rejected-update rounds short.
	RoundDeadline time.Duration `json:"-"`

	// Validator knobs (defaults: 3× median norm gate, 2 strikes).
	MaxNormMult float64 `json:"maxNormMult"`
	StrikeLimit int     `json:"strikeLimit"`

	// CosineFloor arms the validator's direction gate: updates whose
	// cosine against the decayed reference direction falls below the
	// floor are struck. 0 leaves the gate off (the pre-defense matrix).
	CosineFloor float64 `json:"cosineFloor,omitempty"`
	// RoundNormMult arms the post-round norm review: accepted updates
	// whose norm exceeds RoundNormMult × the round median are struck
	// after the round. 0 leaves the review off.
	RoundNormMult float64 `json:"roundNormMult,omitempty"`

	// Aggregator selects the server reduction ("", "mean", or "trimmed").
	Aggregator string `json:"aggregator,omitempty"`
	// TrimFraction is the per-side trim fraction when Aggregator is
	// "trimmed"; 0 takes the fl default.
	TrimFraction float64 `json:"trimFraction,omitempty"`

	// MinTPR overrides the matrix-wide TPR floor for this cell: > 0 is
	// the floor, < 0 exempts the cell from strategy floors (used by the
	// norm-only defense tier, which documents its blind spots instead of
	// gating them), 0 defers to the Gates.TPRFloor map.
	MinTPR float64 `json:"minTPR,omitempty"`

	// CheckpointDir persists coordinator state; required when Network.Kill.
	CheckpointDir string `json:"-"`

	// Oracle additionally runs the in-process simulator and requires the
	// TCP trial's final model to match bit-exactly. Only honored where
	// applicable (no adversary, clean network, lossless codec).
	Oracle bool `json:"-"`

	// MinAcc, when > 0, is the cell's CI accuracy floor: the aggregated
	// mean final accuracy must not fall below it.
	MinAcc float64 `json:"minAcc,omitempty"`
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 3
	}
	if c.Rounds == 0 {
		c.Rounds = 8
	}
	if c.LocalIters == 0 {
		c.LocalIters = 2
	}
	if c.BatchSize == 0 {
		c.BatchSize = 10
	}
	if c.Trials == 0 {
		c.Trials = 2
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 2
	}
	if c.RoundDeadline == 0 {
		c.RoundDeadline = 800 * time.Millisecond
	}
	if c.MaxNormMult == 0 {
		c.MaxNormMult = 3
	}
	if c.StrikeLimit == 0 {
		c.StrikeLimit = 2
	}
	if c.Name == "" {
		c.Name = c.cellName()
	}
	return c
}

// cellName derives the canonical cell label from the axes.
func (c Config) cellName() string {
	adv := string(c.Adversary.Strategy)
	if !c.Adversary.Active() {
		adv = "none"
	} else if c.Adversary.Evasion > 0 {
		adv = fmt.Sprintf("%s-evade", c.Adversary.Strategy)
	}
	net := c.Network.Name
	if net == "" {
		net = "clean"
	}
	return fmt.Sprintf("%s/%s/a%g/%s", adv, net, c.Alpha, c.Codec)
}

// validate rejects configurations the runner cannot honor.
func (c Config) validate() error {
	if err := c.Adversary.Validate(); err != nil {
		return err
	}
	if c.Adversary.Count >= c.Clients {
		return fmt.Errorf("scenario %s: %d adversaries need at least %d clients (client 0 must stay honest to carry the eval curve)",
			c.Name, c.Adversary.Count, c.Adversary.Count+1)
	}
	if c.Network.Kill && c.CheckpointDir == "" {
		return fmt.Errorf("scenario %s: kill cells need a CheckpointDir", c.Name)
	}
	if c.Network.DropRate < 0 || c.Network.DropRate > 1 || c.Network.DelayRate < 0 || c.Network.DelayRate > 1 {
		return fmt.Errorf("scenario %s: invalid network rates %+v", c.Name, c.Network)
	}
	if c.Codec < wire.CodecDense || c.Codec > wire.CodecSparseQ16 {
		return fmt.Errorf("scenario %s: unknown codec %d", c.Name, c.Codec)
	}
	if _, err := fl.ParseReduction(c.Aggregator); err != nil {
		return fmt.Errorf("scenario %s: %w", c.Name, err)
	}
	if c.TrimFraction < 0 || c.TrimFraction >= 0.5 {
		return fmt.Errorf("scenario %s: trim fraction %g outside [0, 0.5)", c.Name, c.TrimFraction)
	}
	return nil
}

// reduction resolves the Aggregator string; validate() has already
// rejected unknown names.
func (c Config) reduction() fl.Reduction {
	r, err := fl.ParseReduction(c.Aggregator)
	if err != nil {
		return fl.ReduceMean
	}
	return r
}

// TrialSeed derives the seed of one trial from the cell's base seed. It
// is the single reproducibility handle: re-running a cell's trial t with
// the same base seed replays data, partitions, init, schedules, and
// attack draws identically.
func TrialSeed(seed int64, trial int) int64 {
	return stats.SplitRNG(seed, int64(9_000_000+trial)).Int63()
}

// matrixAdversaries returns the adversary axis of the default matrix:
// one honest arm and four single-poisoner strategies, including the two
// the norm gate is blind to. Sign-flip preserves the norm exactly; the
// evasive scaler stays at 1.5× the honest norm — model norms grow while
// the median history lags, so the gate's effective multiple over the
// *current* honest norm shrinks below its nominal 3×, and 1.5× is the
// largest factor that stays under it across the whole run in every
// arrival order. Onset 3 gives the validator's median history time to
// arm, which is also what a stealthy adversary would do.
func matrixAdversaries() []adversary.Spec {
	return []adversary.Spec{
		{Strategy: adversary.None},
		{Strategy: adversary.Scale, Count: 1, Onset: 3},
		{Strategy: adversary.Scale, Count: 1, Onset: 3, Evasion: 1.5},
		{Strategy: adversary.SignFlip, Count: 1, Onset: 3},
		{Strategy: adversary.Noise, Count: 1, Onset: 3},
	}
}

// DefaultMatrix is the full benchmark matrix behind BENCH_scenarios.json:
// 5 adversary arms × 2 network models × 2 Dirichlet α × 3 codecs.
func DefaultMatrix(seed int64, trials int) []Config {
	return buildMatrix(seed, trials,
		matrixAdversaries(),
		[]NetworkSpec{CleanNetwork(), FlakyNetwork()},
		[]float64{0.3, 10},
		[]wire.Codec{wire.CodecDense, wire.CodecSparse, wire.CodecSparseQ16},
	)
}

// SmokeMatrix is the CI smoke subset: one α, two codecs, three adversary
// arms, both network models, one trial per cell — small enough to run
// race-enabled on every push while still exercising every gate kind.
func SmokeMatrix(seed int64) []Config {
	adv := matrixAdversaries()
	return buildMatrix(seed, 1,
		[]adversary.Spec{adv[0], adv[1], adv[3]}, // none, scale, sign-flip
		[]NetworkSpec{CleanNetwork(), FlakyNetwork()},
		[]float64{0.3},
		[]wire.Codec{wire.CodecDense, wire.CodecSparseQ16},
	)
}

// Matrix-wide defense calibration. The cosine floor sits well under the
// ≥ 0.5 cosines honest tinyNet updates keep against the decayed
// reference even at α = 0.3, while a sign-flip lands near −1; the round
// review multiple sits between the honest round spread (within ~1.2× of
// the round median on every matrix cell) and the 1.5× evasive scaler.
const (
	matrixCosineFloor   = 0.2
	matrixRoundNormMult = 1.35
)

// buildMatrix crosses the axes into cell configs.
func buildMatrix(seed int64, trials int, advs []adversary.Spec, nets []NetworkSpec, alphas []float64, codecs []wire.Codec) []Config {
	var out []Config
	for _, a := range advs {
		for _, n := range nets {
			for _, alpha := range alphas {
				for _, codec := range codecs {
					cfg := Config{
						Alpha:     alpha,
						Codec:     codec,
						Adversary: a,
						Network:   n,
						Trials:    trials,
						Seed:      seed,
						// The benchmark matrix runs with the direction gate
						// and post-round norm review armed; the norm-only
						// baseline lives in DefenseMatrix.
						CosineFloor:   matrixCosineFloor,
						RoundNormMult: matrixRoundNormMult,
						// Clean honest cells must actually learn; the floor
						// is far under the ~0.9 these cells reach, so it only
						// trips on real convergence regressions.
						MinAcc: accFloor(a, n),
					}
					out = append(out, cfg.withDefaults())
				}
			}
		}
	}
	return out
}

// DefenseMatrix is the ablation appended to the benchmark matrix: the
// three blind-spot-relevant adversaries under cumulative defense tiers —
// norm gate only (the documented blind spots, TPR floors exempted),
// + cosine gate and round review, + trimmed-mean aggregation. All cells
// run clean network, α 0.3, dense codec so the only moving axis is the
// defense; EXPERIMENTS.md reads its time-to-quarantine comparison off
// these cells.
func DefenseMatrix(seed int64, trials int) []Config {
	advs := map[string]adversary.Spec{
		"scale":       {Strategy: adversary.Scale, Count: 1, Onset: 3},
		"scale-evade": {Strategy: adversary.Scale, Count: 1, Onset: 3, Evasion: 1.5},
		"sign-flip":   {Strategy: adversary.SignFlip, Count: 1, Onset: 3},
	}
	tiers := []struct {
		name string
		arm  func(*Config)
	}{
		{"norm", func(c *Config) {
			// Norm gate only: sign-flip and the evasive scaler slip
			// through by construction, so exempt the cells from the
			// strategy TPR floors — the measured TPR is the point.
			c.MinTPR = -1
		}},
		{"cosine", func(c *Config) {
			c.CosineFloor = matrixCosineFloor
			c.RoundNormMult = matrixRoundNormMult
		}},
		{"trimmed", func(c *Config) {
			c.CosineFloor = matrixCosineFloor
			c.RoundNormMult = matrixRoundNormMult
			c.Aggregator = "trimmed"
		}},
	}
	var out []Config
	for _, tier := range tiers {
		for _, strat := range []string{"scale", "scale-evade", "sign-flip"} {
			cfg := Config{
				Name:      fmt.Sprintf("defense/%s/%s", tier.name, strat),
				Alpha:     0.3,
				Codec:     wire.CodecDense,
				Adversary: advs[strat],
				Network:   CleanNetwork(),
				Trials:    trials,
				Seed:      seed,
			}
			tier.arm(&cfg)
			out = append(out, cfg.withDefaults())
		}
	}
	return out
}

// accFloor assigns the per-cell CI accuracy floor. Only honest arms are
// gated: poisoned-cell accuracy is a measurement (how much damage gets
// through), not an invariant.
func accFloor(a adversary.Spec, n NetworkSpec) float64 {
	if a.Active() {
		return 0
	}
	_ = n
	return 0.5
}
