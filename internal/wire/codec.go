package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"apf/internal/checkpoint"
)

// wireVersion implements Msg: a Join advertising capabilities needs v2;
// the zero-capability form is the v1 body.
func (m *JoinMsg) wireVersion() uint8 {
	if m.Caps != 0 {
		return 2
	}
	return 1
}

// appendBody serializes a JoinMsg body.
func (m *JoinMsg) appendBody(w *checkpoint.Writer, version uint8) {
	w.String(m.Name)
	w.String(m.SessionKey)
	w.Int(m.HaveRound)
	if version >= 2 {
		w.U64(m.Caps)
	}
}

// readJoin decodes a JoinMsg body.
func readJoin(r *checkpoint.Reader, version uint8) *JoinMsg {
	m := &JoinMsg{Name: r.String(), SessionKey: r.String(), HaveRound: r.Int()}
	if version >= 2 {
		m.Caps = r.U64()
	}
	return m
}

// wireVersion implements Msg: a Welcome initiating catch-up needs v4, one
// selecting a non-dense codec needs v2; the dense no-catch-up form is the
// v1 body.
func (m *WelcomeMsg) wireVersion() uint8 {
	if m.CatchUp {
		return 4
	}
	if m.Codec != CodecDense {
		return 2
	}
	return 1
}

// appendBody serializes a WelcomeMsg body.
func (m *WelcomeMsg) appendBody(w *checkpoint.Writer, version uint8) {
	w.Int(m.ClientID)
	w.Int(m.NumClients)
	w.Int(m.Rounds)
	w.Int(m.Dim)
	w.F64s(m.Init)
	w.Int(m.Round)
	w.Bool(m.Resumed)
	w.Int(len(m.Missed))
	for i := range m.Missed {
		AppendGlobalBody(w, &m.Missed[i])
	}
	if version >= 2 {
		w.U16(uint16(m.Codec))
	}
	if version >= 4 {
		w.Bool(m.CatchUp)
		w.Int(m.MaskGen)
	}
}

// globalBodyMinLen is the encoded size of a GlobalMsg with an empty
// payload (round + participants + length prefix, 8 bytes each); it bounds
// hostile missed-list counts before allocation.
const globalBodyMinLen = 24

// readWelcome decodes a WelcomeMsg body.
func readWelcome(r *checkpoint.Reader, version uint8) *WelcomeMsg {
	m := &WelcomeMsg{
		ClientID:   r.Int(),
		NumClients: r.Int(),
		Rounds:     r.Int(),
		Dim:        r.Int(),
		Init:       r.F64s(),
		Round:      r.Int(),
		Resumed:    r.Bool(),
	}
	n := r.Int()
	if r.Err() != nil {
		return m
	}
	if n < 0 || n > r.Remaining()/globalBodyMinLen {
		r.Fail("missed-payload count overruns frame")
		return m
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Missed = append(m.Missed, ReadGlobalBody(r))
	}
	if version >= 2 {
		c := r.U16()
		if r.Err() == nil && c > uint16(CodecSparseQ16) {
			r.Fail(fmt.Sprintf("unknown negotiated codec %d", c))
		}
		m.Codec = Codec(c)
	}
	if version >= 4 {
		m.CatchUp = r.Bool()
		m.MaskGen = r.Int()
	}
	return m
}

// AppendUpdateBody serializes an UpdateMsg body without the frame — the
// shared form used by both the socket codec and the server's write-ahead
// log (package transport prefixes the WAL record with the client id).
func AppendUpdateBody(w *checkpoint.Writer, m *UpdateMsg) {
	w.Int(m.Round)
	w.F64(m.Weight)
	w.U64(m.MaskHash)
	w.F64s(m.Payload)
}

// ReadUpdateBody decodes an AppendUpdateBody encoding.
func ReadUpdateBody(r *checkpoint.Reader) UpdateMsg {
	return UpdateMsg{Round: r.Int(), Weight: r.F64(), MaskHash: r.U64(), Payload: r.F64s()}
}

// wireVersion implements Msg: the dense body is unchanged since v1 (the
// WAL shares it, so its layout is frozen).
func (m *UpdateMsg) wireVersion() uint8 { return 1 }

// appendBody serializes an UpdateMsg body.
func (m *UpdateMsg) appendBody(w *checkpoint.Writer, _ uint8) { AppendUpdateBody(w, m) }

// AppendGlobalBody serializes a GlobalMsg body without the frame — shared
// by the socket codec, the WelcomeMsg missed-payload list, and the
// transport's WAL commit records.
func AppendGlobalBody(w *checkpoint.Writer, m *GlobalMsg) {
	w.Int(m.Round)
	w.Int(m.Participants)
	w.F64s(m.Payload)
}

// ReadGlobalBody decodes an AppendGlobalBody encoding.
func ReadGlobalBody(r *checkpoint.Reader) GlobalMsg {
	return GlobalMsg{Round: r.Int(), Participants: r.Int(), Payload: r.F64s()}
}

// wireVersion implements Msg.
func (m *GlobalMsg) wireVersion() uint8 { return 1 }

// appendBody serializes a GlobalMsg body.
func (m *GlobalMsg) appendBody(w *checkpoint.Writer, _ uint8) { AppendGlobalBody(w, m) }

// Append frames m and appends the frame to dst, returning the extended
// slice. The result is self-contained and immutable once built: broadcast
// paths encode a message once and hand the same frame to every connection.
func Append(dst []byte, m Msg) []byte {
	var w checkpoint.Writer
	version := m.wireVersion()
	m.appendBody(&w, version)
	payload := w.Bytes()
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("wire: message payload %d exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = version
	hdr[5] = byte(m.WireKind())
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], sum)
	return append(dst, tr[:]...)
}

// Encode frames m into a fresh buffer.
func Encode(m Msg) []byte { return Append(nil, m) }

// checkHeader validates a frame header against limit, returning the kind,
// frame version, and payload length.
func checkHeader(hdr []byte, limit int) (Kind, uint8, int, error) {
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := hdr[4]
	if version < MinVersion || version > Version {
		return 0, 0, 0, fmt.Errorf("%w: frame version %d, this build speaks %d-%d",
			ErrVersion, version, MinVersion, Version)
	}
	kind := Kind(hdr[5])
	switch kind {
	case KindJoin, KindWelcome, KindUpdate, KindGlobal:
	case KindSparseUpdate, KindSparseGlobal:
		if version < 2 {
			return 0, 0, 0, fmt.Errorf("%w: kind %s requires version 2, frame stamped %d",
				ErrVersion, kind, version)
		}
	case KindRelayJoin, KindPartialUpdate:
		if version < 3 {
			return 0, 0, 0, fmt.Errorf("%w: kind %s requires version 3, frame stamped %d",
				ErrVersion, kind, version)
		}
	case KindResumeOffer, KindSketch, KindSnapshot, KindDelta:
		if version < 4 {
			return 0, 0, 0, fmt.Errorf("%w: kind %s requires version 4, frame stamped %d",
				ErrVersion, kind, version)
		}
	default:
		return 0, 0, 0, fmt.Errorf("%w: kind %d", ErrUnknownKind, uint8(kind))
	}
	if limit <= 0 || limit > MaxPayload {
		limit = MaxPayload
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	if n > limit {
		return 0, 0, 0, fmt.Errorf("%w: declared payload %d over limit %d", ErrTooLarge, n, limit)
	}
	return kind, version, n, nil
}

// decodeBody dispatches a validated payload to its body decoder and
// requires it to consume the payload exactly. The decoded message must
// also need exactly the stamped frame version (canonical versioning): a
// v2 frame whose body is expressible at v1 — a Join with zero Caps, a
// Welcome selecting dense — re-encodes differently and is refused, so
// decode∘encode stays the identity on accepted frames.
func decodeBody(kind Kind, version uint8, payload []byte) (Msg, error) {
	r := checkpoint.NewReader(payload)
	var m Msg
	switch kind {
	case KindJoin:
		m = readJoin(r, version)
	case KindWelcome:
		m = readWelcome(r, version)
	case KindUpdate:
		u := ReadUpdateBody(r)
		m = &u
	case KindGlobal:
		g := ReadGlobalBody(r)
		m = &g
	case KindSparseUpdate:
		u := ReadSparseUpdateBody(r)
		m = &u
	case KindSparseGlobal:
		g := ReadSparseGlobalBody(r)
		m = &g
	case KindRelayJoin:
		m = readRelayJoin(r)
	case KindPartialUpdate:
		u := ReadPartialUpdateBody(r)
		m = &u
	case KindResumeOffer:
		m = readResumeOffer(r)
	case KindSketch:
		m = readSketch(r)
	case KindSnapshot:
		m = readSnapshot(r)
	case KindDelta:
		m = readDelta(r)
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %s body: %v", ErrCorrupt, kind, err)
	}
	if m.wireVersion() != version {
		return nil, fmt.Errorf("%w: %s body is canonical at version %d, frame stamped %d",
			ErrCorrupt, kind, m.wireVersion(), version)
	}
	return m, nil
}

// Decode reads the frame at the front of buf, returning the decoded
// message and the remaining bytes. io.EOF is returned on an empty buffer;
// every form of damage maps to a typed error. limit bounds the payload
// length (≤ 0 means MaxPayload).
func Decode(buf []byte, limit int) (Msg, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, io.EOF
	}
	if len(buf) < headerLen+trailerLen {
		return nil, nil, fmt.Errorf("%w: %d-byte tail shorter than a frame", ErrCorrupt, len(buf))
	}
	kind, version, n, err := checkHeader(buf[:headerLen], limit)
	if err != nil {
		return nil, nil, err
	}
	if len(buf) < headerLen+n+trailerLen {
		return nil, nil, fmt.Errorf("%w: payload length %d overruns buffer", ErrCorrupt, n)
	}
	end := headerLen + n
	want := binary.LittleEndian.Uint32(buf[end:])
	if crc32.ChecksumIEEE(buf[:end]) != want {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	m, err := decodeBody(kind, version, buf[headerLen:end])
	if err != nil {
		return nil, nil, err
	}
	return m, buf[end+trailerLen:], nil
}

// WriteMsg frames m and writes it to w in a single Write call, so a frame
// is never interleaved with another writer's output and torn-write faults
// (package chaos) tear at most one message.
func WriteMsg(w io.Writer, m Msg) error {
	_, err := w.Write(Encode(m))
	return err
}

// ReadMsg reads exactly one frame from r and decodes it. limit bounds the
// declared payload length (≤ 0 means MaxPayload): an oversized header
// fails with ErrTooLarge before any payload is read or allocated, so a
// hostile peer cannot drive allocations past the caller's bound. An EOF
// before the first header byte is io.EOF (clean connection shutdown); a
// connection dying mid-frame surfaces as the underlying read error.
func ReadMsg(r io.Reader, limit int) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, err
	}
	kind, version, n, err := checkHeader(hdr[:], limit)
	if err != nil {
		return nil, err
	}
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return nil, err
	}
	want := binary.LittleEndian.Uint32(body[n:])
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:n])
	if sum != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return decodeBody(kind, version, body[:n])
}
