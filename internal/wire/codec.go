package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"apf/internal/checkpoint"
)

// appendBody serializes a JoinMsg body.
func (m *JoinMsg) appendBody(w *checkpoint.Writer) {
	w.String(m.Name)
	w.String(m.SessionKey)
	w.Int(m.HaveRound)
}

// readJoin decodes a JoinMsg body.
func readJoin(r *checkpoint.Reader) *JoinMsg {
	return &JoinMsg{Name: r.String(), SessionKey: r.String(), HaveRound: r.Int()}
}

// appendBody serializes a WelcomeMsg body.
func (m *WelcomeMsg) appendBody(w *checkpoint.Writer) {
	w.Int(m.ClientID)
	w.Int(m.NumClients)
	w.Int(m.Rounds)
	w.Int(m.Dim)
	w.F64s(m.Init)
	w.Int(m.Round)
	w.Bool(m.Resumed)
	w.Int(len(m.Missed))
	for i := range m.Missed {
		AppendGlobalBody(w, &m.Missed[i])
	}
}

// globalBodyMinLen is the encoded size of a GlobalMsg with an empty
// payload (round + participants + length prefix, 8 bytes each); it bounds
// hostile missed-list counts before allocation.
const globalBodyMinLen = 24

// readWelcome decodes a WelcomeMsg body.
func readWelcome(r *checkpoint.Reader) *WelcomeMsg {
	m := &WelcomeMsg{
		ClientID:   r.Int(),
		NumClients: r.Int(),
		Rounds:     r.Int(),
		Dim:        r.Int(),
		Init:       r.F64s(),
		Round:      r.Int(),
		Resumed:    r.Bool(),
	}
	n := r.Int()
	if r.Err() != nil {
		return m
	}
	if n < 0 || n > r.Remaining()/globalBodyMinLen {
		r.Fail("missed-payload count overruns frame")
		return m
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Missed = append(m.Missed, ReadGlobalBody(r))
	}
	return m
}

// AppendUpdateBody serializes an UpdateMsg body without the frame — the
// shared form used by both the socket codec and the server's write-ahead
// log (package transport prefixes the WAL record with the client id).
func AppendUpdateBody(w *checkpoint.Writer, m *UpdateMsg) {
	w.Int(m.Round)
	w.F64(m.Weight)
	w.U64(m.MaskHash)
	w.F64s(m.Payload)
}

// ReadUpdateBody decodes an AppendUpdateBody encoding.
func ReadUpdateBody(r *checkpoint.Reader) UpdateMsg {
	return UpdateMsg{Round: r.Int(), Weight: r.F64(), MaskHash: r.U64(), Payload: r.F64s()}
}

// appendBody serializes an UpdateMsg body.
func (m *UpdateMsg) appendBody(w *checkpoint.Writer) { AppendUpdateBody(w, m) }

// AppendGlobalBody serializes a GlobalMsg body without the frame — shared
// by the socket codec, the WelcomeMsg missed-payload list, and the
// transport's WAL commit records.
func AppendGlobalBody(w *checkpoint.Writer, m *GlobalMsg) {
	w.Int(m.Round)
	w.Int(m.Participants)
	w.F64s(m.Payload)
}

// ReadGlobalBody decodes an AppendGlobalBody encoding.
func ReadGlobalBody(r *checkpoint.Reader) GlobalMsg {
	return GlobalMsg{Round: r.Int(), Participants: r.Int(), Payload: r.F64s()}
}

// appendBody serializes a GlobalMsg body.
func (m *GlobalMsg) appendBody(w *checkpoint.Writer) { AppendGlobalBody(w, m) }

// Append frames m and appends the frame to dst, returning the extended
// slice. The result is self-contained and immutable once built: broadcast
// paths encode a message once and hand the same frame to every connection.
func Append(dst []byte, m Msg) []byte {
	var w checkpoint.Writer
	m.appendBody(&w)
	payload := w.Bytes()
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("wire: message payload %d exceeds MaxPayload", len(payload)))
	}
	start := len(dst)
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = Version
	hdr[5] = byte(m.WireKind())
	binary.LittleEndian.PutUint32(hdr[6:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start:])
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[0:], sum)
	return append(dst, tr[:]...)
}

// Encode frames m into a fresh buffer.
func Encode(m Msg) []byte { return Append(nil, m) }

// checkHeader validates a frame header against limit, returning the kind
// and payload length.
func checkHeader(hdr []byte, limit int) (Kind, int, error) {
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if hdr[4] != Version {
		return 0, 0, fmt.Errorf("%w: frame version %d, this build speaks %d", ErrVersion, hdr[4], Version)
	}
	kind := Kind(hdr[5])
	switch kind {
	case KindJoin, KindWelcome, KindUpdate, KindGlobal:
	default:
		return 0, 0, fmt.Errorf("%w: kind %d", ErrUnknownKind, uint8(kind))
	}
	if limit <= 0 || limit > MaxPayload {
		limit = MaxPayload
	}
	n := int(binary.LittleEndian.Uint32(hdr[6:]))
	if n > limit {
		return 0, 0, fmt.Errorf("%w: declared payload %d over limit %d", ErrTooLarge, n, limit)
	}
	return kind, n, nil
}

// decodeBody dispatches a validated payload to its body decoder and
// requires it to consume the payload exactly.
func decodeBody(kind Kind, payload []byte) (Msg, error) {
	r := checkpoint.NewReader(payload)
	var m Msg
	switch kind {
	case KindJoin:
		m = readJoin(r)
	case KindWelcome:
		m = readWelcome(r)
	case KindUpdate:
		u := ReadUpdateBody(r)
		m = &u
	case KindGlobal:
		g := ReadGlobalBody(r)
		m = &g
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: %s body: %v", ErrCorrupt, kind, err)
	}
	return m, nil
}

// Decode reads the frame at the front of buf, returning the decoded
// message and the remaining bytes. io.EOF is returned on an empty buffer;
// every form of damage maps to a typed error. limit bounds the payload
// length (≤ 0 means MaxPayload).
func Decode(buf []byte, limit int) (Msg, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, io.EOF
	}
	if len(buf) < headerLen+trailerLen {
		return nil, nil, fmt.Errorf("%w: %d-byte tail shorter than a frame", ErrCorrupt, len(buf))
	}
	kind, n, err := checkHeader(buf[:headerLen], limit)
	if err != nil {
		return nil, nil, err
	}
	if len(buf) < headerLen+n+trailerLen {
		return nil, nil, fmt.Errorf("%w: payload length %d overruns buffer", ErrCorrupt, n)
	}
	end := headerLen + n
	want := binary.LittleEndian.Uint32(buf[end:])
	if crc32.ChecksumIEEE(buf[:end]) != want {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	m, err := decodeBody(kind, buf[headerLen:end])
	if err != nil {
		return nil, nil, err
	}
	return m, buf[end+trailerLen:], nil
}

// WriteMsg frames m and writes it to w in a single Write call, so a frame
// is never interleaved with another writer's output and torn-write faults
// (package chaos) tear at most one message.
func WriteMsg(w io.Writer, m Msg) error {
	_, err := w.Write(Encode(m))
	return err
}

// ReadMsg reads exactly one frame from r and decodes it. limit bounds the
// declared payload length (≤ 0 means MaxPayload): an oversized header
// fails with ErrTooLarge before any payload is read or allocated, so a
// hostile peer cannot drive allocations past the caller's bound. An EOF
// before the first header byte is io.EOF (clean connection shutdown); a
// connection dying mid-frame surfaces as the underlying read error.
func ReadMsg(r io.Reader, limit int) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, err
	}
	kind, n, err := checkHeader(hdr[:], limit)
	if err != nil {
		return nil, err
	}
	body := make([]byte, n+trailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		return nil, err
	}
	want := binary.LittleEndian.Uint32(body[n:])
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, body[:n])
	if sum != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return decodeBody(kind, body[:n])
}
