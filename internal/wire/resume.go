package wire

import (
	"fmt"

	"apf/internal/checkpoint"
	"apf/internal/core"
	"apf/internal/recon"
)

// This file is the v4 O(diff) catch-up sub-protocol. A resuming client
// whose round fell off the server's bounded replay history receives a
// Welcome with CatchUp set and then drives:
//
//	client                          server
//	ResumeOffer{Round, MaskGen}  →
//	                             ←  Sketch{Cells...}      (sketch mode)
//	ResumeOffer{NeedMore}        →                        (not decoded yet)
//	                             ←  Sketch{Cells...}
//	ResumeOffer{Words: [...]}    →                        (decoded)
//	                             ←  Delta{Header, Words}
//	— or —
//	                             ←  Snapshot{Payload, Manager}
//
// A ResumeOffer with MaskGen -1 requests the snapshot mode outright
// (managers without reconciliation state, and relays adopting the
// root's round). All four kinds exist only at v4.

// CapRecon is the capability bit a client advertises in JoinMsg.Caps
// when its manager supports sketch reconciliation (per-word generation
// tracking and word-block import).
const CapRecon uint64 = 1 << 2

// ResumeOfferMsg is the client's catch-up move. Exactly one of three
// forms: the opening offer (NeedMore false, Words nil), a request for
// more sketch cells (NeedMore true), or the decoded diff (Words set to
// the mask-word indices whose state the client needs).
type ResumeOfferMsg struct {
	// Round is the last round the client has applied.
	Round int
	// MaskGen is the client's mask generation; -1 requests snapshot
	// catch-up unconditionally.
	MaskGen int
	// NeedMore asks for another sketch batch.
	NeedMore bool
	// Words, when non-nil, closes sketch mode: the decoded diff.
	Words []int
}

// SketchMsg streams one batch of rateless coded cells over the
// server's (word, generation) set, starting at stream index Start.
type SketchMsg struct {
	Round   int
	MaskGen int
	Start   int
	Cells   []recon.Cell
}

// SnapshotMsg ships the server's full current state in one bounded
// frame: the canonical post-round model plus (for stateful managers)
// the manager snapshot in its durable encoding. Cost is O(dim)
// regardless of how long the client was away.
type SnapshotMsg struct {
	Round   int
	MaskGen int
	// Payload is the canonical post-ApplyDownload model at Round.
	Payload []float64
	// Manager is the checkpoint-encoded core manager state
	// (checkpoint.EncodeManager); empty for stateless managers, which
	// need only Round and Payload.
	Manager []byte
}

// DeltaMsg closes sketch mode: the manager-global header plus the full
// state of exactly the words the client's ResumeOffer listed.
type DeltaMsg struct {
	Round   int
	MaskGen int
	Header  core.SyncHeader
	Words   []core.WordBlock
}

// WireKind implements Msg.
func (*ResumeOfferMsg) WireKind() Kind { return KindResumeOffer }

// WireKind implements Msg.
func (*SketchMsg) WireKind() Kind { return KindSketch }

// WireKind implements Msg.
func (*SnapshotMsg) WireKind() Kind { return KindSnapshot }

// WireKind implements Msg.
func (*DeltaMsg) WireKind() Kind { return KindDelta }

func (m *ResumeOfferMsg) wireVersion() uint8 { return 4 }
func (m *SketchMsg) wireVersion() uint8      { return 4 }
func (m *SnapshotMsg) wireVersion() uint8    { return 4 }
func (m *DeltaMsg) wireVersion() uint8       { return 4 }

func (m *ResumeOfferMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	w.Int(m.Round)
	w.Int(m.MaskGen)
	w.Bool(m.NeedMore)
	w.Bool(m.Words != nil)
	if m.Words != nil {
		w.Ints(m.Words)
	}
}

func readResumeOffer(r *checkpoint.Reader) *ResumeOfferMsg {
	m := &ResumeOfferMsg{Round: r.Int(), MaskGen: r.Int(), NeedMore: r.Bool()}
	if r.Bool() {
		m.Words = r.Ints()
		if m.Words == nil {
			m.Words = []int{}
		}
	}
	return m
}

// cellLen is the encoded size of one coded cell (sum, hash, count).
const cellLen = 24

func (m *SketchMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	w.Int(m.Round)
	w.Int(m.MaskGen)
	w.Int(m.Start)
	w.Int(len(m.Cells))
	for _, c := range m.Cells {
		w.U64(uint64(c.Sum))
		w.U64(c.Hash)
		w.U64(uint64(c.Count))
	}
}

func readSketch(r *checkpoint.Reader) *SketchMsg {
	m := &SketchMsg{Round: r.Int(), MaskGen: r.Int(), Start: r.Int()}
	n := r.Int()
	if r.Err() != nil {
		return m
	}
	if n < 0 || n > r.Remaining()/cellLen {
		r.Fail("sketch cell count overruns frame")
		return m
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Cells = append(m.Cells, recon.Cell{
			Sum:   recon.Symbol(r.U64()),
			Hash:  r.U64(),
			Count: int64(r.U64()),
		})
	}
	return m
}

func (m *SnapshotMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	w.Int(m.Round)
	w.Int(m.MaskGen)
	w.F64s(m.Payload)
	w.String(string(m.Manager))
}

func readSnapshot(r *checkpoint.Reader) *SnapshotMsg {
	m := &SnapshotMsg{Round: r.Int(), MaskGen: r.Int(), Payload: r.F64s()}
	if s := r.String(); s != "" {
		m.Manager = []byte(s)
	}
	return m
}

// wordBlockMinLen is the encoded size of a WordBlock with empty slices
// (word + gen + seeded + six float-slice prefixes + two int-slice
// prefixes, 8 bytes each); it bounds hostile word counts before
// allocation.
const wordBlockMinLen = 88

func appendWordBlock(w *checkpoint.Writer, b *core.WordBlock) {
	w.Int(b.Word)
	w.U64(uint64(b.Gen))
	w.U64(b.Seeded)
	w.F64s(b.X)
	w.F64s(b.Ref)
	w.F64s(b.LastCheck)
	w.F64s(b.E)
	w.F64s(b.A)
	w.F64s(b.Period)
	w.Ints(b.UnfreezeAt)
	w.Ints(b.RandomUntil)
}

func readWordBlock(r *checkpoint.Reader) core.WordBlock {
	b := core.WordBlock{Word: r.Int()}
	gen := r.U64()
	if r.Err() == nil && gen > 1<<32-1 {
		r.Fail(fmt.Sprintf("word generation %d out of range", gen))
		return b
	}
	b.Gen = uint32(gen)
	b.Seeded = r.U64()
	b.X = r.F64s()
	b.Ref = r.F64s()
	b.LastCheck = r.F64s()
	b.E = r.F64s()
	b.A = r.F64s()
	b.Period = r.F64s()
	b.UnfreezeAt = r.Ints()
	b.RandomUntil = r.Ints()
	return b
}

func (m *DeltaMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	w.Int(m.Round)
	w.Int(m.MaskGen)
	w.F64(m.Header.Threshold)
	w.Int(m.Header.CheckCount)
	w.Int(m.Header.Seen)
	w.Bool(m.Header.Initialized)
	w.Int(m.Header.InitRound)
	w.Int(m.Header.LastRound)
	w.Int(len(m.Words))
	for i := range m.Words {
		appendWordBlock(w, &m.Words[i])
	}
}

func readDelta(r *checkpoint.Reader) *DeltaMsg {
	m := &DeltaMsg{Round: r.Int(), MaskGen: r.Int()}
	m.Header.Threshold = r.F64()
	m.Header.CheckCount = r.Int()
	m.Header.Seen = r.Int()
	m.Header.Initialized = r.Bool()
	m.Header.InitRound = r.Int()
	m.Header.LastRound = r.Int()
	n := r.Int()
	if r.Err() != nil {
		return m
	}
	if n < 0 || n > r.Remaining()/wordBlockMinLen {
		r.Fail("delta word count overruns frame")
		return m
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Words = append(m.Words, readWordBlock(r))
	}
	return m
}
