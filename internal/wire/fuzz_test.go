package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder. Whatever the
// input, Decode must never panic and must either fail with one of the
// package's typed errors or hand back a message that re-encodes canonically
// — byte-for-byte — to the frame it was decoded from.
func FuzzWireDecode(f *testing.F) {
	for _, m := range []Msg{
		&JoinMsg{Name: "shard-0", SessionKey: "shard-0", HaveRound: -1},
		&UpdateMsg{Round: 3, Payload: []float64{1, -2.5, 3e300}, Weight: 30, MaskHash: 0xfeedface},
		&GlobalMsg{Round: 7, Payload: []float64{0.25, -0.75}, Participants: 2},
		&WelcomeMsg{
			ClientID: 1, NumClients: 2, Rounds: 8, Dim: 3,
			Init: []float64{1, 2, 3}, Round: 5, Resumed: true,
			Missed: []GlobalMsg{{Round: 4, Payload: []float64{7, 8, 9}, Participants: 2}},
		},
	} {
		f.Add(Encode(m))
	}
	// Two frames back to back: Decode must return the remainder intact.
	f.Add(append(Encode(&JoinMsg{Name: "a"}), Encode(&GlobalMsg{Round: 0})...))
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<20 {
			t.Skip("oversized input")
		}
		m, rest, err := Decode(in, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrUnknownKind) && !errors.Is(err, ErrTooLarge) &&
				!errors.Is(err, io.EOF) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		frame := in[:len(in)-len(rest)]
		if got := Encode(m); !bytes.Equal(got, frame) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", frame, got)
		}
		// The streaming reader must agree with the in-memory decoder.
		m2, err := ReadMsg(bytes.NewReader(in), 0)
		if err != nil {
			t.Fatalf("ReadMsg failed on a frame Decode accepted: %v", err)
		}
		if !bytes.Equal(Encode(m2), frame) {
			t.Fatal("ReadMsg and Decode disagree")
		}
	})
}
