package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"apf/internal/core"
	"apf/internal/recon"
)

// FuzzWireDecode throws arbitrary bytes at the frame decoder. Whatever the
// input, Decode must never panic and must either fail with one of the
// package's typed errors or hand back a message that re-encodes canonically
// — byte-for-byte — to the frame it was decoded from.
func FuzzWireDecode(f *testing.F) {
	for _, m := range []Msg{
		&JoinMsg{Name: "shard-0", SessionKey: "shard-0", HaveRound: -1},
		&UpdateMsg{Round: 3, Payload: []float64{1, -2.5, 3e300}, Weight: 30, MaskHash: 0xfeedface},
		&GlobalMsg{Round: 7, Payload: []float64{0.25, -0.75}, Participants: 2},
		&WelcomeMsg{
			ClientID: 1, NumClients: 2, Rounds: 8, Dim: 3,
			Init: []float64{1, 2, 3}, Round: 5, Resumed: true,
			Missed: []GlobalMsg{{Round: 4, Payload: []float64{7, 8, 9}, Participants: 2}},
		},
	} {
		f.Add(Encode(m))
	}
	// v2 handshake and sparse forms: the canonical-versioning rule makes
	// these the interesting mutation targets (version byte vs body shape).
	for _, m := range []Msg{
		&JoinMsg{Name: "shard-1", Caps: CapSparse | CapQuantized},
		&WelcomeMsg{ClientID: 0, NumClients: 1, Rounds: 1, Dim: 2, Init: []float64{0, 0}, Codec: CodecSparseQ16},
		&SparseUpdateMsg{Round: 2, Weight: 4, MaskHash: 0xabad1dea, MaskGen: 3, Dim: 6,
			Enc: EncF64, Values: []float64{1.5, -2.25}},
		&SparseUpdateMsg{Round: 2, Weight: 4, MaskHash: 1, MaskGen: -1, Dim: 6,
			Enc: EncF16, Q: []uint16{0x3c00, 0xfc01, 0x7e33}},
		&SparseGlobalMsg{Round: 9, Participants: 4, MaskHash: 7, MaskGen: 0, Dim: 4,
			Enc: EncF64, Values: []float64{-0.5}},
		&SparseGlobalMsg{Round: 9, Participants: 4, MaskHash: 7, MaskGen: 2, Dim: 4,
			Enc: EncF16, Q: []uint16{0, 0x8000, 0x7bff}},
	} {
		f.Add(Encode(m))
	}
	// v3 relay forms: the kind↔version gate and the bounded accumulator
	// length are the mutation targets.
	for _, m := range []Msg{
		&RelayJoinMsg{Name: "edge-0", SessionKey: "edge-0", HaveRound: -1, Clients: 128},
		&PartialUpdateMsg{Round: 4, Count: 3, WeightLo: 1, WeightHi: 2,
			MaskHash: 0xabad1dea, Cols: []uint64{0, 1, ^uint64(0), 5}},
	} {
		f.Add(Encode(m))
	}
	// v4 catch-up forms: sketch-cell and delta word-block counts are
	// length-bounded, the catch-up Welcome is the canonical-versioning
	// target, and truncated snapshot frames must fail typed.
	for _, m := range []Msg{
		&WelcomeMsg{ClientID: 2, NumClients: 4, Rounds: 9, Dim: 2,
			Init: []float64{1, 2}, Round: 6, Resumed: true, CatchUp: true, MaskGen: 3},
		&ResumeOfferMsg{Round: 5, MaskGen: 2},
		&ResumeOfferMsg{Round: 5, MaskGen: 2, NeedMore: true},
		&ResumeOfferMsg{Round: 5, MaskGen: 2, Words: []int{0, 3, 7}},
		&ResumeOfferMsg{Round: -1, MaskGen: -1},
		&SketchMsg{Round: 8, MaskGen: 2, Start: 32, Cells: []recon.Cell{
			{Sum: 0x300000001, Hash: 0xfeedface, Count: 1},
			{Sum: 0, Hash: 0, Count: -2},
		}},
		&SnapshotMsg{Round: 8, MaskGen: 2, Payload: []float64{1, math.NaN()},
			Manager: []byte{0xde, 0xad, 0x00, 0xef}},
		&SnapshotMsg{Round: 0, MaskGen: -1, Payload: []float64{0}},
		&DeltaMsg{Round: 8, MaskGen: 2,
			Header: core.SyncHeader{Threshold: 0.05, CheckCount: 2, Seen: 2, Initialized: true, InitRound: 0, LastRound: 8},
			Words: []core.WordBlock{{
				Word: 1, Gen: 9, Seeded: ^uint64(0),
				X: []float64{1}, Ref: []float64{2}, LastCheck: []float64{3},
				E: []float64{4}, A: []float64{5}, Period: []float64{6},
				UnfreezeAt: []int{7}, RandomUntil: []int{0},
			}}},
	} {
		f.Add(Encode(m))
	}
	// A snapshot frame truncated mid-payload.
	snap := Encode(&SnapshotMsg{Round: 3, MaskGen: 1, Payload: []float64{1, 2, 3, 4}})
	f.Add(snap[:len(snap)-11])
	// Two frames back to back: Decode must return the remainder intact.
	f.Add(append(Encode(&JoinMsg{Name: "a"}), Encode(&GlobalMsg{Round: 0})...))
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 1<<20 {
			t.Skip("oversized input")
		}
		m, rest, err := Decode(in, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) &&
				!errors.Is(err, ErrUnknownKind) && !errors.Is(err, ErrTooLarge) &&
				!errors.Is(err, io.EOF) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		frame := in[:len(in)-len(rest)]
		if got := Encode(m); !bytes.Equal(got, frame) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", frame, got)
		}
		// The streaming reader must agree with the in-memory decoder.
		m2, err := ReadMsg(bytes.NewReader(in), 0)
		if err != nil {
			t.Fatalf("ReadMsg failed on a frame Decode accepted: %v", err)
		}
		if !bytes.Equal(Encode(m2), frame) {
			t.Fatal("ReadMsg and Decode disagree")
		}
	})
}

// FuzzSparseDecode drives the sparse body decoders through structured
// field space: any (round, weight, hash, generation, dimension, encoding,
// payload bytes) combination must either decode to exactly the encoded
// message or fail typed — hostile generation/dimension/length combos
// included.
func FuzzSparseDecode(f *testing.F) {
	f.Add(int64(1), 2.5, uint64(9), int64(0), int64(4), byte(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(int64(7), 1.0, uint64(0xfeedface), int64(-1), int64(2), byte(1), []byte{0x00, 0x3c, 0x01, 0xfc})
	f.Add(int64(0), 0.0, uint64(0), int64(-2), int64(0), byte(2), []byte{})
	f.Add(int64(3), 8.0, uint64(5), int64(10), int64(1), byte(1), []byte{1, 2, 3, 4, 5, 6})

	f.Fuzz(func(t *testing.T, round int64, weight float64, hash uint64, gen, dim int64, encRaw byte, raw []byte) {
		if len(raw) > 1<<16 {
			t.Skip("oversized payload")
		}
		m := &SparseUpdateMsg{
			Round: int(round), Weight: weight, MaskHash: hash,
			MaskGen: int(gen), Dim: int(dim), Enc: Enc(encRaw % 2),
		}
		if m.Enc == EncF16 {
			for i := 0; i+1 < len(raw); i += 2 {
				m.Q = append(m.Q, uint16(raw[i])|uint16(raw[i+1])<<8)
			}
		} else {
			for i := 0; i+7 < len(raw); i += 8 {
				bits := uint64(0)
				for b := 0; b < 8; b++ {
					bits |= uint64(raw[i+b]) << (8 * b)
				}
				m.Values = append(m.Values, math.Float64frombits(bits))
			}
		}
		frame := Encode(m)
		got, rest, err := Decode(frame, 0)
		if err != nil {
			// The encoder accepts shapes the decoder's validation refuses
			// (non-positive dim, scalars > dim, gen < -1); those must fail
			// as corruption, not silently load.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("hostile sparse shape: got %v, want ErrCorrupt", err)
			}
			valid := m.Dim > 0 && m.Scalars() <= m.Dim && m.MaskGen >= -1
			if valid {
				t.Fatalf("decoder rejected a valid sparse message: %v", err)
			}
			return
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes after a single frame", len(rest))
		}
		if !bytes.Equal(Encode(got), frame) {
			t.Fatal("sparse decode/encode not canonical")
		}
	})
}
