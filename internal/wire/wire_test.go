package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"apf/internal/core"
	"apf/internal/recon"
)

// sampleMsgs covers all four kinds with awkward values: NaN and ±Inf
// payloads, empty slices, a nested missed-payload list, negative ints.
func sampleMsgs() []Msg {
	return []Msg{
		&JoinMsg{Name: "shard-0", SessionKey: "key/with=padding==", HaveRound: -1},
		&JoinMsg{},
		&WelcomeMsg{
			ClientID:   3,
			NumClients: 8,
			Rounds:     40,
			Dim:        4,
			Init:       []float64{0, math.NaN(), math.Inf(1), -0.0},
			Round:      7,
			Resumed:    true,
			Missed: []GlobalMsg{
				{Round: 5, Payload: []float64{1, 2, 3, 4}, Participants: 8},
				{Round: 6, Payload: []float64{math.Inf(-1)}, Participants: 2},
			},
		},
		&WelcomeMsg{Dim: 1, Init: []float64{42}},
		&UpdateMsg{Round: 9, Payload: []float64{1.5, math.NaN()}, Weight: 0.125, MaskHash: 0xdeadbeefcafe},
		&UpdateMsg{},
		&GlobalMsg{Round: 11, Payload: []float64{math.Copysign(0, -1), 7}, Participants: 32},
		&GlobalMsg{},
		&WelcomeMsg{ClientID: 2, NumClients: 4, Rounds: 90, Dim: 2,
			Init: []float64{1, 2}, Round: 61, Resumed: true, CatchUp: true, MaskGen: 17},
		&ResumeOfferMsg{Round: 60, MaskGen: 17},
		&ResumeOfferMsg{Round: 60, MaskGen: 17, NeedMore: true},
		&ResumeOfferMsg{Round: 60, MaskGen: 17, Words: []int{0, 5, 63}},
		&ResumeOfferMsg{Round: 60, MaskGen: 17, Words: []int{}},
		&ResumeOfferMsg{Round: -1, MaskGen: -1},
		&SketchMsg{Round: 61, MaskGen: 17, Start: 128, Cells: []recon.Cell{
			{Sum: recon.PackWordGen(5, 18), Hash: 0xfeedface, Count: 1},
			{Sum: 0, Hash: 0, Count: -3},
		}},
		&SketchMsg{Round: 61, MaskGen: 17},
		&SnapshotMsg{Round: 61, MaskGen: 17,
			Payload: []float64{math.NaN(), math.Inf(-1), -0.0},
			Manager: []byte{0x00, 0xff, 0x7f}},
		&SnapshotMsg{Round: 0, MaskGen: -1, Payload: []float64{4}},
		&DeltaMsg{Round: 61, MaskGen: 17,
			Header: core.SyncHeader{Threshold: 0.22, CheckCount: 12, Seen: 3,
				Initialized: true, InitRound: 0, LastRound: 61},
			Words: []core.WordBlock{{
				Word: 3, Gen: 62, Seeded: 0x8000000000000001,
				X: []float64{1, math.NaN()}, Ref: []float64{2, 0}, LastCheck: []float64{3, -0.0},
				E: []float64{4, 0.5}, A: []float64{5, 0.25}, Period: []float64{6, 1},
				UnfreezeAt: []int{7, -1}, RandomUntil: []int{0, 9},
			}}},
		&DeltaMsg{Round: 61, MaskGen: 17},
	}
}

// sameMsg compares messages bit-exactly (NaN == NaN, -0 != +0).
func sameMsg(t *testing.T, a, b Msg) {
	t.Helper()
	var wa, wb [2][]byte
	wa[0] = Encode(a)
	wb[0] = Encode(b)
	if !bytes.Equal(wa[0], wb[0]) {
		t.Fatalf("messages differ:\n got %#v\nwant %#v", b, a)
	}
	if reflect.TypeOf(a) != reflect.TypeOf(b) {
		t.Fatalf("type mismatch: %T vs %T", a, b)
	}
}

func TestRoundTripDecode(t *testing.T) {
	for _, m := range sampleMsgs() {
		frame := Encode(m)
		got, rest, err := Decode(frame, 0)
		if err != nil {
			t.Fatalf("%s: Decode: %v", m.WireKind(), err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d bytes left after sole frame", m.WireKind(), len(rest))
		}
		sameMsg(t, m, got)
	}
}

func TestRoundTripStream(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := WriteMsg(&buf, m); err != nil {
			t.Fatalf("WriteMsg: %v", err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMsg(&buf, 0)
		if err != nil {
			t.Fatalf("%s: ReadMsg: %v", want.WireKind(), err)
		}
		sameMsg(t, want, got)
	}
	if _, err := ReadMsg(&buf, 0); err != io.EOF {
		t.Fatalf("EOF after last frame: got %v", err)
	}
}

// TestCanonicalEncoding pins the property fuzzing relies on: re-encoding a
// decoded message reproduces the original frame byte for byte.
func TestCanonicalEncoding(t *testing.T) {
	var stream []byte
	for _, m := range sampleMsgs() {
		stream = Append(stream, m)
	}
	rest := stream
	var rebuilt []byte
	for len(rest) > 0 {
		m, tail, err := Decode(rest, 0)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		rebuilt = Append(rebuilt, m)
		rest = tail
	}
	if !bytes.Equal(stream, rebuilt) {
		t.Fatal("re-encoded stream differs from original")
	}
}

func TestDecodeEmptyIsEOF(t *testing.T) {
	if _, _, err := Decode(nil, 0); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	frame := Encode(&UpdateMsg{Round: 3, Payload: []float64{1, 2, 3}, Weight: 1})
	for n := 1; n < len(frame); n++ {
		if _, _, err := Decode(frame[:n], 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Decode of %d/%d bytes: got %v, want ErrCorrupt", n, len(frame), err)
		}
		if _, err := ReadMsg(bytes.NewReader(frame[:n]), 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ReadMsg of %d/%d bytes: got %v, want ErrCorrupt", n, len(frame), err)
		}
	}
}

func TestBadCRC(t *testing.T) {
	frame := Encode(&GlobalMsg{Round: 1, Payload: []float64{9}, Participants: 4})
	// Flip one bit in every byte position in turn; all must be detected as
	// one of the typed failures (header damage may surface as bad
	// magic/version/kind/length instead of a checksum mismatch).
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x10
		_, _, err := Decode(bad, 0)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected", i)
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrUnknownKind) && !errors.Is(err, ErrTooLarge) {
			t.Fatalf("bit flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestUnknownVersion(t *testing.T) {
	frame := Encode(&JoinMsg{Name: "v2-client"})
	frame[4] = Version + 1
	if _, _, err := Decode(frame, 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
	if _, err := ReadMsg(bytes.NewReader(frame), 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("ReadMsg: got %v, want ErrVersion", err)
	}
}

func TestUnknownKind(t *testing.T) {
	frame := Encode(&JoinMsg{Name: "x"})
	frame[5] = 0x7f
	if _, _, err := Decode(frame, 0); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("got %v, want ErrUnknownKind", err)
	}
}

func TestPayloadOverLimit(t *testing.T) {
	frame := Encode(&UpdateMsg{Round: 1, Payload: make([]float64, 64), Weight: 1})
	if _, _, err := Decode(frame, 32); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Decode under tight limit: got %v, want ErrTooLarge", err)
	}
	if _, err := ReadMsg(bytes.NewReader(frame), 32); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ReadMsg under tight limit: got %v, want ErrTooLarge", err)
	}
	// The same frame decodes under the default limit.
	if _, _, err := Decode(frame, 0); err != nil {
		t.Fatalf("Decode under default limit: %v", err)
	}
}

// TestHostileMissedCount feeds the Welcome decoder a body whose missed
// count claims 2^40 entries backed by no bytes; the count must be rejected
// before any allocation happens.
func TestHostileMissedCount(t *testing.T) {
	var m WelcomeMsg
	frame := Encode(&m)
	body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
	// The final 8 bytes are the missed count (0); overwrite with 1<<40.
	for i := len(body) - 8; i < len(body); i++ {
		body[i] = 0
	}
	body[len(body)-3] = 1 // little-endian byte 5 → 2^40
	if _, err := decodeBody(KindWelcome, 1, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile missed count: got %v, want ErrCorrupt", err)
	}
}

func TestTrailingGarbageInBody(t *testing.T) {
	good := Encode(&JoinMsg{Name: "a"})
	// Rebuild the frame with one extra payload byte and a fixed-up CRC: the
	// body decoder must reject the leftovers.
	body := append([]byte(nil), good[headerLen:len(good)-trailerLen]...)
	body = append(body, 0)
	if _, err := decodeBody(KindJoin, 1, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte in body: got %v, want ErrCorrupt", err)
	}
}

// TestCatchUpWelcomeVersion pins canonical versioning for the catch-up
// handshake: a Welcome encodes at v4 exactly when CatchUp is set, so
// pre-v4 peers interoperate until a catch-up is actually needed.
func TestCatchUpWelcomeVersion(t *testing.T) {
	plain := Encode(&WelcomeMsg{Dim: 1, Init: []float64{1}, Round: 3})
	if got := plain[4]; got != 1 {
		t.Fatalf("plain welcome stamped v%d, want v1", got)
	}
	catch := Encode(&WelcomeMsg{Dim: 1, Init: []float64{1}, Round: 3, CatchUp: true, MaskGen: 2})
	if got := catch[4]; got != 4 {
		t.Fatalf("catch-up welcome stamped v%d, want v4", got)
	}
	// The v4 kinds are rejected below v4 from the header check alone.
	frame := Encode(&ResumeOfferMsg{Round: 1, MaskGen: 1})
	frame[4] = 3
	if _, _, err := Decode(frame, 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("v3-stamped resume-offer: got %v, want ErrVersion", err)
	}
}

// TestHostileCatchUpCounts feeds the sketch and delta decoders bodies
// whose element counts claim 2^40 entries backed by no bytes; both must
// reject before allocating.
func TestHostileCatchUpCounts(t *testing.T) {
	for _, m := range []Msg{&SketchMsg{Round: 1, MaskGen: 1}, &DeltaMsg{Round: 1, MaskGen: 1}} {
		frame := Encode(m)
		body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
		// The final 8 bytes are the element count (0); overwrite with 2^40.
		for i := len(body) - 8; i < len(body); i++ {
			body[i] = 0
		}
		body[len(body)-3] = 1
		if _, err := decodeBody(m.WireKind(), 4, body); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: hostile count: got %v, want ErrCorrupt", m.WireKind(), err)
		}
	}
	// A word generation beyond 2^32-1 is structural damage, not data.
	frame := Encode(&DeltaMsg{Round: 1, MaskGen: 1, Words: []core.WordBlock{{Word: 0, Gen: 1}}})
	body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
	// The empty word block is the final wordBlockMinLen bytes of the
	// body: word(8) gen(8) ... — flip the generation's high byte.
	genOff := len(body) - wordBlockMinLen + 8 + 7
	body[genOff] = 0xff
	if _, err := decodeBody(KindDelta, 4, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized word generation: got %v, want ErrCorrupt", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindJoin: "join", KindWelcome: "welcome", KindUpdate: "update", KindGlobal: "global",
		KindResumeOffer: "resume-offer", KindSketch: "sketch", KindSnapshot: "snapshot",
		KindDelta: "delta", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}
