package wire

import (
	"fmt"

	"apf/internal/checkpoint"
	"apf/internal/quantize"
)

// Codec identifies a per-session payload codec, negotiated at the
// Join/Welcome handshake: the client advertises capability bits (Caps),
// the server picks the strongest codec both sides support, bounded by its
// own configured maximum.
type Codec uint8

// The negotiable codecs, weakest to strongest.
const (
	// CodecDense is the v1 behaviour: dense UpdateMsg/GlobalMsg frames.
	CodecDense Codec = 0
	// CodecSparse sends only the unfrozen scalars as float64, framed by
	// the sparse kinds. Lossless: models stay bit-identical to dense mode.
	CodecSparse Codec = 1
	// CodecSparseQ16 additionally quantizes the unfrozen scalars to IEEE
	// binary16 (4x fewer payload bytes than CodecSparse; lossy).
	CodecSparseQ16 Codec = 2
)

// Capability bits a client advertises in JoinMsg.Caps. Unknown bits are
// ignored by the server (forward compatibility).
const (
	// CapSparse: the client can frame its unfrozen scalars as sparse
	// messages and expand sparse globals (requires a mask-reporting
	// compact manager).
	CapSparse uint64 = 1 << 0
	// CapQuantized: the client additionally speaks binary16 payloads.
	CapQuantized uint64 = 1 << 1
)

// String names the codec for flags, metrics, and errors.
func (c Codec) String() string {
	switch c {
	case CodecDense:
		return "dense"
	case CodecSparse:
		return "sparse"
	case CodecSparseQ16:
		return "sparse-q16"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// ParseCodec maps a flag value to its codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "dense":
		return CodecDense, nil
	case "sparse":
		return CodecSparse, nil
	case "sparse-q16":
		return CodecSparseQ16, nil
	}
	return 0, fmt.Errorf("wire: unknown codec %q (want dense, sparse, or sparse-q16)", s)
}

// Caps returns the capability bits a client must advertise to obtain this
// codec.
func (c Codec) Caps() uint64 {
	switch c {
	case CodecSparse:
		return CapSparse
	case CodecSparseQ16:
		return CapSparse | CapQuantized
	}
	return 0
}

// Enc returns the payload scalar encoding this codec puts on the wire.
func (c Codec) Enc() Enc {
	if c == CodecSparseQ16 {
		return EncF16
	}
	return EncF64
}

// NegotiateCodec picks the strongest codec allowed by both the server's
// configured maximum and the client's advertised capability bits. Missing
// capabilities degrade gracefully toward dense; the result never exceeds
// what the client asked for, so a v1 client (Caps 0) always gets the v1
// dense session.
func NegotiateCodec(max Codec, caps uint64) Codec {
	c := CodecDense
	if max >= CodecSparse && caps&CapSparse != 0 {
		c = CodecSparse
	}
	if max >= CodecSparseQ16 && caps&CapSparse != 0 && caps&CapQuantized != 0 {
		c = CodecSparseQ16
	}
	return c
}

// Enc identifies the scalar encoding of a sparse payload.
type Enc uint8

// Sparse payload encodings.
const (
	// EncF64 carries raw IEEE-754 float64 bits (lossless).
	EncF64 Enc = 0
	// EncF16 carries IEEE-754 binary16 bits (package quantize semantics).
	EncF16 Enc = 1
)

// String names the encoding for error messages.
func (e Enc) String() string {
	switch e {
	case EncF64:
		return "f64"
	case EncF16:
		return "f16"
	}
	return fmt.Sprintf("Enc(%d)", uint8(e))
}

// SparseUpdateMsg is the v2 form of UpdateMsg: only the unfrozen scalars
// cross the wire, positionally against the shared freezing bitset. No
// indices are transmitted — MaskHash (and MaskGen) prove both sides hold
// the identical mask, which is what makes the positional encoding sound;
// a disagreement surfaces as a typed divergence error instead of a silent
// mis-expansion.
//
// Exactly one of Values/Q is populated, selected by Enc. EncF16 payloads
// stay raw uint16 in memory so decode→encode is the identity even for
// non-canonical NaN patterns (the canonical-encoding fuzz oracle).
type SparseUpdateMsg struct {
	Round  int
	Weight float64
	// MaskHash is the FNV-1a hash of the sender's freezing-mask words
	// (transport.HashMaskWords).
	MaskHash uint64
	// MaskGen counts the sender's stability checks — the mask's
	// generation. -1 means unknown (managers without a generation
	// counter).
	MaskGen int
	// Dim is the dense model dimension the payload expands into.
	Dim    int
	Enc    Enc
	Values []float64 // EncF64 payload
	Q      []uint16  // EncF16 payload
}

// SparseGlobalMsg is the v2 form of GlobalMsg: the aggregate's unfrozen
// scalars against the round's agreed mask, which the server echoes back
// via MaskHash/MaskGen so each client can verify its own mask matches
// before expanding.
type SparseGlobalMsg struct {
	Round        int
	Participants int
	MaskHash     uint64
	MaskGen      int // -1 when the round's updates carried no generation
	Dim          int
	Enc          Enc
	Values       []float64
	Q            []uint16
}

// WireKind implements Msg.
func (*SparseUpdateMsg) WireKind() Kind { return KindSparseUpdate }

// WireKind implements Msg.
func (*SparseGlobalMsg) WireKind() Kind { return KindSparseGlobal }

// wireVersion implements Msg: the sparse kinds exist only at v2.
func (*SparseUpdateMsg) wireVersion() uint8 { return 2 }

// wireVersion implements Msg.
func (*SparseGlobalMsg) wireVersion() uint8 { return 2 }

// Scalars returns the number of payload scalars under either encoding.
func (m *SparseUpdateMsg) Scalars() int { return sparseScalars(m.Enc, m.Values, m.Q) }

// Scalars returns the number of payload scalars under either encoding.
func (m *SparseGlobalMsg) Scalars() int { return sparseScalars(m.Enc, m.Values, m.Q) }

// Floats expands the payload scalars to float64 into dst (grown as
// needed): a copy for EncF64, a binary16 decode for EncF16.
func (m *SparseUpdateMsg) Floats(dst []float64) []float64 {
	return sparseFloats(dst, m.Enc, m.Values, m.Q)
}

// Floats expands the payload scalars to float64 into dst.
func (m *SparseGlobalMsg) Floats(dst []float64) []float64 {
	return sparseFloats(dst, m.Enc, m.Values, m.Q)
}

func sparseScalars(enc Enc, values []float64, q []uint16) int {
	if enc == EncF16 {
		return len(q)
	}
	return len(values)
}

func sparseFloats(dst []float64, enc Enc, values []float64, q []uint16) []float64 {
	if enc == EncF64 {
		return append(dst[:0], values...)
	}
	dst = dst[:0]
	for _, h := range q {
		dst = append(dst, quantize.HalfToFloat64(h))
	}
	return dst
}

// PackSparse converts float64 scalars into a sparse message's payload
// columns under the given encoding: (vals, nil) for EncF64, (nil, halves)
// for EncF16. The EncF16 column quantizes with round-to-nearest-even; a
// sender that needs its local copy to match what the receiver decodes
// should quantize.RoundTripSlice its values first.
func PackSparse(enc Enc, vals []float64) ([]float64, []uint16) {
	if enc == EncF64 {
		return vals, nil
	}
	q := make([]uint16, len(vals))
	for i, v := range vals {
		q[i] = quantize.Float64ToHalf(v)
	}
	return nil, q
}

// AppendSparseUpdateBody serializes a SparseUpdateMsg body without the
// frame — the shared form used by the socket codec and the server's
// write-ahead log.
func AppendSparseUpdateBody(w *checkpoint.Writer, m *SparseUpdateMsg) {
	w.Int(m.Round)
	w.F64(m.Weight)
	w.U64(m.MaskHash)
	w.Int(m.MaskGen)
	w.Int(m.Dim)
	w.U16(uint16(m.Enc))
	appendSparseValues(w, m.Enc, m.Values, m.Q)
}

// ReadSparseUpdateBody decodes an AppendSparseUpdateBody encoding,
// validating the hostile-input surface (dimension, generation, scalar
// count, encoding tag) before any expansion happens.
func ReadSparseUpdateBody(r *checkpoint.Reader) SparseUpdateMsg {
	m := SparseUpdateMsg{
		Round:    r.Int(),
		Weight:   r.F64(),
		MaskHash: r.U64(),
		MaskGen:  r.Int(),
		Dim:      r.Int(),
	}
	m.Enc = readEnc(r)
	m.Values, m.Q = readSparseValues(r, m.Enc)
	validateSparse(r, m.Dim, m.MaskGen, m.Scalars())
	return m
}

// AppendSparseGlobalBody serializes a SparseGlobalMsg body without the
// frame.
func AppendSparseGlobalBody(w *checkpoint.Writer, m *SparseGlobalMsg) {
	w.Int(m.Round)
	w.Int(m.Participants)
	w.U64(m.MaskHash)
	w.Int(m.MaskGen)
	w.Int(m.Dim)
	w.U16(uint16(m.Enc))
	appendSparseValues(w, m.Enc, m.Values, m.Q)
}

// ReadSparseGlobalBody decodes an AppendSparseGlobalBody encoding.
func ReadSparseGlobalBody(r *checkpoint.Reader) SparseGlobalMsg {
	m := SparseGlobalMsg{
		Round:        r.Int(),
		Participants: r.Int(),
		MaskHash:     r.U64(),
		MaskGen:      r.Int(),
		Dim:          r.Int(),
	}
	m.Enc = readEnc(r)
	m.Values, m.Q = readSparseValues(r, m.Enc)
	validateSparse(r, m.Dim, m.MaskGen, m.Scalars())
	return m
}

// appendBody implements Msg.
func (m *SparseUpdateMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	AppendSparseUpdateBody(w, m)
}

// appendBody implements Msg.
func (m *SparseGlobalMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	AppendSparseGlobalBody(w, m)
}

// appendSparseValues writes the payload column selected by enc.
func appendSparseValues(w *checkpoint.Writer, enc Enc, values []float64, q []uint16) {
	if enc == EncF16 {
		w.Int(len(q))
		for _, h := range q {
			w.U16(h)
		}
		return
	}
	w.F64s(values)
}

// readEnc decodes and validates the encoding tag.
func readEnc(r *checkpoint.Reader) Enc {
	e := r.U16()
	if r.Err() == nil && e > uint16(EncF16) {
		r.Fail(fmt.Sprintf("unknown sparse payload encoding %d", e))
	}
	return Enc(e)
}

// readSparseValues decodes the payload column selected by enc, bounding
// hostile counts by the remaining frame bytes before allocation.
func readSparseValues(r *checkpoint.Reader, enc Enc) ([]float64, []uint16) {
	if enc != EncF16 {
		return r.F64s(), nil
	}
	n := r.Int()
	if r.Err() != nil {
		return nil, nil
	}
	if n < 0 || n > r.Remaining()/2 {
		r.Fail("binary16 scalar count overruns frame")
		return nil, nil
	}
	q := make([]uint16, n)
	for i := range q {
		q[i] = r.U16()
	}
	return nil, q
}

// validateSparse enforces the structural invariants a sparse message must
// satisfy regardless of transport context: a positive dense dimension, at
// most Dim payload scalars (the unfrozen subset cannot exceed the model),
// and a generation of -1 (unknown) or above.
func validateSparse(r *checkpoint.Reader, dim, gen, scalars int) {
	if r.Err() != nil {
		return
	}
	switch {
	case dim <= 0:
		r.Fail(fmt.Sprintf("sparse dense dimension %d not positive", dim))
	case scalars > dim:
		r.Fail(fmt.Sprintf("%d sparse scalars exceed dense dimension %d", scalars, dim))
	case gen < -1:
		r.Fail(fmt.Sprintf("sparse mask generation %d below -1", gen))
	}
}

// DenseGlobalFrameSize returns the encoded size of a dense full-dimension
// GlobalMsg frame — the v1 wire cost of broadcasting one aggregate without
// masking, the baseline against which sparse bytes-saved accounting and
// the wire benchmark measure.
func DenseGlobalFrameSize(dim int) int {
	return headerLen + trailerLen + 3*8 + 8*dim
}

// FrameKind reports the kind byte of an already-encoded frame without
// decoding it (no validation beyond the header length); broadcast paths
// use it to account pre-encoded frames they fan out.
func FrameKind(frame []byte) Kind {
	if len(frame) < headerLen {
		return 0
	}
	return Kind(frame[5])
}
