// Package wire is the federated protocol's binary wire format: a
// versioned, length-prefixed, CRC-checked framing plus codecs for the four
// protocol messages (Join, Welcome, Update, Global). It replaces
// encoding/gob on the socket so that
//
//   - a message is serialized exactly once into an immutable frame that
//     can be fanned out to any number of connections (encode-once
//     broadcast: the server's per-round encode cost is O(1) in client
//     count);
//   - payload floats cross the wire as raw IEEE-754 bit patterns via
//     package checkpoint's codec primitives, so a decoded model vector is
//     bit-identical to the encoded one, NaN payloads included;
//   - decoders survive hostile input: a frame declares its length up
//     front, lengths are bounded before allocation, checksums cover the
//     header and payload, and structural damage surfaces as typed errors
//     (ErrCorrupt, ErrVersion, ErrUnknownKind, ErrTooLarge) rather than
//     panics or giant allocations.
//
// # Frame layout
//
// Every message is one frame:
//
//	offset  size  field
//	0       4     magic "APFW" (0x57465041 little-endian)
//	4       1     protocol version (Version)
//	5       1     message kind (KindJoin … KindGlobal)
//	6       4     payload length, little-endian
//	10      n     payload (checkpoint.Writer encoding of the message body)
//	10+n    4     CRC-32 (IEEE) over header + payload
//
// # Versioning
//
// The version byte is stamped per frame and checked on every decode: a
// frame outside [MinVersion, Version] fails with ErrVersion before any of
// its payload is interpreted, so incompatible peers part ways at the first
// message instead of mis-decoding each other.
//
// Version 2 adds the mask-aware sparse message kinds (KindSparseUpdate,
// KindSparseGlobal) and the codec-negotiation fields on the handshake
// (JoinMsg.Caps, WelcomeMsg.Codec). Encoding is canonical per message, not
// per build: a message whose v2 fields are zero — a Join advertising no
// capabilities, a Welcome selecting the dense codec, and every dense
// Update/Global — still encodes as a v1 frame, byte-identical to what a v1
// build produces. A v1 peer therefore interoperates until (and unless) a
// sparse codec is actually negotiated, and rejects a sparse frame cleanly
// with ErrVersion from its own header check. The canonical rule also cuts
// the other way: decoding re-derives the minimal version from the body and
// refuses a frame whose stamped version disagrees (ErrCorrupt), so every
// accepted frame re-encodes byte-identically — the fuzz oracle.
//
// Version 3 adds the hierarchical relay kinds (KindRelayJoin,
// KindPartialUpdate): a relay registers with the root as an edge
// pre-aggregator and streams one exact fixed-point partial sum per round
// instead of per-client updates. Both kinds exist only at v3, so their
// bodies carry no version branches; the canonical rule is unchanged — a
// pre-v3 peer rejects them from its own header check, and every other
// message keeps encoding exactly as before.
//
// Version 4 adds the O(diff) catch-up protocol (KindResumeOffer,
// KindSketch, KindSnapshot, KindDelta) plus the WelcomeMsg catch-up
// fields: a server whose replay history no longer reaches a resuming
// client's round answers the join with CatchUp set, and the peers then
// reconcile state by rateless-IBLT sketch (nearly in sync, O(diff)
// bytes) or by snapshot (O(dim) regardless of absence). The four kinds
// exist only at v4, and a Welcome without CatchUp still encodes
// exactly as before — v1-v3 peers interoperate until a catch-up is
// actually needed.
package wire

import (
	"errors"
	"fmt"

	"apf/internal/checkpoint"
)

// Version is the newest protocol version this build speaks; MinVersion is
// the oldest it still decodes. Frames are stamped with the minimal version
// their body needs (see the package comment on canonical versioning).
const (
	Version    = 4
	MinVersion = 1
)

// Frame geometry.
const (
	frameMagic = 0x57465041 // "APFW" little-endian
	headerLen  = 10
	trailerLen = 4
	// MaxPayload is the hard upper bound on a frame payload; hostile
	// length fields beyond it are rejected before any allocation. Callers
	// reading from a network usually pass ReadMsg a much tighter limit
	// derived from the model geometry.
	MaxPayload = 1 << 30
)

// Kind identifies a protocol message within a frame.
type Kind uint8

// Message kinds.
const (
	// KindJoin frames a JoinMsg (client → server).
	KindJoin Kind = 1
	// KindWelcome frames a WelcomeMsg (server → client).
	KindWelcome Kind = 2
	// KindUpdate frames an UpdateMsg (client → server).
	KindUpdate Kind = 3
	// KindGlobal frames a GlobalMsg (server → client).
	KindGlobal Kind = 4
	// KindSparseUpdate frames a SparseUpdateMsg (client → server, v2).
	KindSparseUpdate Kind = 5
	// KindSparseGlobal frames a SparseGlobalMsg (server → client, v2).
	KindSparseGlobal Kind = 6
	// KindRelayJoin frames a RelayJoinMsg (relay → root, v3).
	KindRelayJoin Kind = 7
	// KindPartialUpdate frames a PartialUpdateMsg (relay → root, v3).
	KindPartialUpdate Kind = 8
	// KindResumeOffer frames a ResumeOfferMsg (client → server, v4).
	KindResumeOffer Kind = 9
	// KindSketch frames a SketchMsg (server → client, v4).
	KindSketch Kind = 10
	// KindSnapshot frames a SnapshotMsg (server → client, v4).
	KindSnapshot Kind = 11
	// KindDelta frames a DeltaMsg (server → client, v4).
	KindDelta Kind = 12
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindWelcome:
		return "welcome"
	case KindUpdate:
		return "update"
	case KindGlobal:
		return "global"
	case KindSparseUpdate:
		return "sparse-update"
	case KindSparseGlobal:
		return "sparse-global"
	case KindRelayJoin:
		return "relay-join"
	case KindPartialUpdate:
		return "partial-update"
	case KindResumeOffer:
		return "resume-offer"
	case KindSketch:
		return "sketch"
	case KindSnapshot:
		return "snapshot"
	case KindDelta:
		return "delta"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Typed decode failures, distinguishable with errors.Is.
var (
	// ErrCorrupt marks a frame whose magic, checksum, or body structure is
	// damaged (torn writes, truncation, trailing garbage).
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrVersion marks a frame from an incompatible protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrUnknownKind marks a structurally valid frame whose kind this
	// build does not understand.
	ErrUnknownKind = errors.New("wire: unknown message kind")
	// ErrTooLarge marks a frame whose declared payload exceeds the
	// caller's limit; it is detected from the header alone, before the
	// payload is read or allocated.
	ErrTooLarge = errors.New("wire: frame exceeds payload limit")
)

// Msg is one protocol message. The implementations are JoinMsg,
// WelcomeMsg, UpdateMsg, GlobalMsg, SparseUpdateMsg, SparseGlobalMsg,
// RelayJoinMsg, PartialUpdateMsg, ResumeOfferMsg, SketchMsg,
// SnapshotMsg, and DeltaMsg.
type Msg interface {
	// WireKind returns the frame kind this message serializes under.
	WireKind() Kind
	// wireVersion returns the minimal protocol version whose frames can
	// carry this message's body — the version stamped on encode and
	// required on decode (canonical versioning).
	wireVersion() uint8
	// appendBody serializes the message body under the given frame
	// version; the interface is sealed to this package so the kind↔type
	// mapping stays closed.
	appendBody(w *checkpoint.Writer, version uint8)
}

// JoinMsg registers a client with the server, or resumes a session.
type JoinMsg struct {
	Name string
	// SessionKey identifies a resumable session. Empty disables resume:
	// the connection registers a fresh anonymous session (pre-resume
	// behaviour). Reconnecting with a known key re-attaches to that
	// session instead of being rejected.
	SessionKey string
	// HaveRound is the last round the client has applied (-1 when it has
	// none); on resume the server replies with the missed payloads
	// (HaveRound+1 … current-1).
	HaveRound int
	// Caps advertises the client's codec capabilities (CapSparse,
	// CapQuantized). 0 — the v1 form — requests the dense codec.
	Caps uint64
}

// WelcomeMsg tells a client its identity and the run geometry.
type WelcomeMsg struct {
	ClientID   int
	NumClients int
	Rounds     int
	Dim        int
	// Init is the initial global model (round-0 state).
	Init []float64
	// Round is the round the server is currently collecting; 0 on a fresh
	// registration.
	Round int
	// Resumed marks a session re-attachment.
	Resumed bool
	// Missed carries the GlobalMsg payloads for rounds HaveRound+1 … Round-1
	// so a resuming client can replay them and rebuild its mask state.
	// Replay frames stay dense/lossless regardless of the negotiated
	// codec, so resume reconstruction is bit-exact by construction.
	Missed []GlobalMsg
	// Codec is the server's pick for this session given the client's
	// advertised Caps (never stronger than them). CodecDense — the v1
	// form — keeps the session on the dense Update/Global kinds.
	Codec Codec
	// CatchUp (v4) tells a resuming client that replay history no
	// longer reaches its round: Missed is empty and the client must run
	// the catch-up sub-protocol (ResumeOffer → Sketch/Delta or
	// Snapshot) before normal rounds resume.
	CatchUp bool
	// MaskGen (v4, meaningful only with CatchUp) is the server-side
	// mask generation, letting the client detect a generation *ahead*
	// of the server's before any state moves (ErrFutureGeneration at
	// the transport layer).
	MaskGen int
}

// UpdateMsg carries one client's per-round push.
type UpdateMsg struct {
	Round   int
	Payload []float64
	Weight  float64
	// MaskHash is the FNV-1a hash of the sender's freezing-mask words;
	// 0 for managers without a mask. The server rejects rounds whose
	// participants disagree (transport.ErrMaskDivergence).
	MaskHash uint64
}

// GlobalMsg carries the aggregated model back to the clients.
type GlobalMsg struct {
	Round   int
	Payload []float64
	// Participants is the number of client updates folded into Payload
	// (K ≤ N under partial aggregation).
	Participants int
}

// WireKind implements Msg.
func (*JoinMsg) WireKind() Kind { return KindJoin }

// WireKind implements Msg.
func (*WelcomeMsg) WireKind() Kind { return KindWelcome }

// WireKind implements Msg.
func (*UpdateMsg) WireKind() Kind { return KindUpdate }

// WireKind implements Msg.
func (*GlobalMsg) WireKind() Kind { return KindGlobal }
