package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"apf/internal/quantize"
)

// reframe patches the version byte of an encoded frame and repairs the
// CRC, producing a structurally intact frame with a lying version stamp.
func reframe(frame []byte, version uint8) []byte {
	f := append([]byte(nil), frame...)
	f[4] = version
	sum := crc32.ChecksumIEEE(f[:len(f)-trailerLen])
	binary.LittleEndian.PutUint32(f[len(f)-trailerLen:], sum)
	return f
}

func TestSparseRoundTrip(t *testing.T) {
	msgs := []Msg{
		&SparseUpdateMsg{Round: 5, Weight: 30, MaskHash: 0xdeadbeef, MaskGen: 2, Dim: 8,
			Enc: EncF64, Values: []float64{1.5, -2.25, math.Inf(1), 0}},
		&SparseUpdateMsg{Round: 0, Weight: 1, MaskHash: 1, MaskGen: -1, Dim: 3,
			Enc: EncF16, Q: []uint16{0x3c00, 0xfbff}},
		&SparseGlobalMsg{Round: 9, Participants: 4, MaskHash: 7, MaskGen: 0, Dim: 6,
			Enc: EncF64, Values: []float64{-0.5, 3e300}},
		&SparseGlobalMsg{Round: 12, Participants: 2, MaskHash: 99, MaskGen: 3, Dim: 4,
			// Non-canonical NaN patterns: the raw uint16 column must survive
			// a round trip untouched even though no float64 conversion could
			// reproduce these bits.
			Enc: EncF16, Q: []uint16{0x7e33, 0xfe01, 0x7c01}},
	}
	for _, m := range msgs {
		frame := Encode(m)
		if frame[4] != 2 {
			t.Fatalf("%s frame stamped version %d, want 2", m.WireKind(), frame[4])
		}
		got, rest, err := Decode(frame, 0)
		if err != nil {
			t.Fatalf("decode %s: %v", m.WireKind(), err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip mutated %s:\n got  %+v\n want %+v", m.WireKind(), got, m)
		}
		if !bytes.Equal(Encode(got), frame) {
			t.Fatalf("%s re-encode not byte-identical", m.WireKind())
		}
	}
}

// TestCanonicalVersionStamping pins the minimal-version rule: handshake
// messages encode as v1 frames exactly when their v2 fields are zero, so a
// v2 build talking dense is byte-compatible with a v1 peer.
func TestCanonicalVersionStamping(t *testing.T) {
	cases := []struct {
		m    Msg
		want uint8
	}{
		{&JoinMsg{Name: "a"}, 1},
		{&JoinMsg{Name: "a", Caps: CapSparse}, 2},
		{&WelcomeMsg{Dim: 1, Init: []float64{0}}, 1},
		{&WelcomeMsg{Dim: 1, Init: []float64{0}, Codec: CodecSparse}, 2},
		{&UpdateMsg{Round: 1, Payload: []float64{1}}, 1},
		{&GlobalMsg{Round: 1, Payload: []float64{1}}, 1},
		{&SparseUpdateMsg{Dim: 1, Values: []float64{1}}, 2},
		{&SparseGlobalMsg{Dim: 1, Values: []float64{1}}, 2},
	}
	for _, tt := range cases {
		frame := Encode(tt.m)
		if frame[4] != tt.want {
			t.Errorf("%s (%+v): stamped version %d, want %d", tt.m.WireKind(), tt.m, frame[4], tt.want)
		}
		if _, _, err := Decode(frame, 0); err != nil {
			t.Errorf("%s: canonical frame refused: %v", tt.m.WireKind(), err)
		}
	}
}

// TestNonCanonicalVersionRejected: a structurally intact frame whose
// stamped version disagrees with the minimal version its body needs is
// corrupt — decode∘encode must stay the identity on accepted frames.
func TestNonCanonicalVersionRejected(t *testing.T) {
	// A zero-caps Join is a v1 body; stamping it v2 is non-canonical.
	join := reframe(Encode(&JoinMsg{Name: "a"}), 2)
	if _, _, err := Decode(join, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2-stamped v1 join body: got %v, want ErrCorrupt", err)
	}
	// A dense Update stamped v2 likewise.
	up := reframe(Encode(&UpdateMsg{Round: 1, Payload: []float64{1}}), 2)
	if _, _, err := Decode(up, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2-stamped dense update: got %v, want ErrCorrupt", err)
	}
}

// TestSparseKindNeedsV2 is the mixed-version story: a v1 peer (or a liar)
// framing a sparse kind under version 1 is refused at the header with
// ErrVersion, before any payload is touched.
func TestSparseKindNeedsV2(t *testing.T) {
	frame := reframe(Encode(&SparseUpdateMsg{Dim: 2, Values: []float64{1}}), 1)
	if _, _, err := Decode(frame, 0); !errors.Is(err, ErrVersion) {
		t.Fatalf("sparse kind in v1 frame: got %v, want ErrVersion", err)
	}
}

func TestVersionRange(t *testing.T) {
	good := Encode(&JoinMsg{Name: "a"})
	for _, v := range []uint8{0, Version + 1, 200} {
		if _, _, err := Decode(reframe(good, v), 0); !errors.Is(err, ErrVersion) {
			t.Errorf("version %d: got %v, want ErrVersion", v, err)
		}
	}
}

func TestHostileSparseBodies(t *testing.T) {
	encode := func(m *SparseUpdateMsg) []byte { return Encode(m) }
	cases := []struct {
		name  string
		frame []byte
	}{
		{"zero dim", encode(&SparseUpdateMsg{Dim: 0})},
		{"negative dim", encode(&SparseUpdateMsg{Dim: -4, Values: []float64{1}})},
		{"scalars exceed dim", encode(&SparseUpdateMsg{Dim: 2, Values: []float64{1, 2, 3}})},
		{"generation below -1", encode(&SparseUpdateMsg{Dim: 2, MaskGen: -2, Values: []float64{1}})},
		{"unknown encoding", encode(&SparseUpdateMsg{Dim: 2, Enc: Enc(7)})},
	}
	for _, tt := range cases {
		if _, _, err := Decode(tt.frame, 0); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", tt.name, err)
		}
	}
}

// TestHostileHalfCount claims 2^40 binary16 scalars backed by no bytes;
// the count must be rejected before allocation.
func TestHostileHalfCount(t *testing.T) {
	m := &SparseUpdateMsg{Dim: 1 << 41, Enc: EncF16}
	frame := Encode(m)
	body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
	// The final 8 bytes are the scalar count (0); overwrite with 1<<40.
	for i := len(body) - 8; i < len(body); i++ {
		body[i] = 0
	}
	body[len(body)-3] = 1
	if _, err := decodeBody(KindSparseUpdate, 2, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile half count: got %v, want ErrCorrupt", err)
	}
}

func TestNegotiateCodec(t *testing.T) {
	cases := []struct {
		max  Codec
		caps uint64
		want Codec
	}{
		{CodecDense, 0, CodecDense},
		{CodecDense, CapSparse | CapQuantized, CodecDense},
		{CodecSparse, 0, CodecDense},
		{CodecSparse, CapSparse, CodecSparse},
		{CodecSparse, CapSparse | CapQuantized, CodecSparse},
		{CodecSparseQ16, CapSparse, CodecSparse},
		{CodecSparseQ16, CapSparse | CapQuantized, CodecSparseQ16},
		// Quantization without sparsity is not a codec: degrade to dense.
		{CodecSparseQ16, CapQuantized, CodecDense},
		// Unknown future bits are ignored.
		{CodecSparseQ16, CapSparse | CapQuantized | 1<<40, CodecSparseQ16},
	}
	for _, tt := range cases {
		if got := NegotiateCodec(tt.max, tt.caps); got != tt.want {
			t.Errorf("NegotiateCodec(%v, %b) = %v, want %v", tt.max, tt.caps, got, tt.want)
		}
	}
}

func TestCodecStringsAndCaps(t *testing.T) {
	for _, tt := range []struct {
		c    Codec
		s    string
		caps uint64
		enc  Enc
	}{
		{CodecDense, "dense", 0, EncF64},
		{CodecSparse, "sparse", CapSparse, EncF64},
		{CodecSparseQ16, "sparse-q16", CapSparse | CapQuantized, EncF16},
	} {
		if tt.c.String() != tt.s {
			t.Errorf("%d.String() = %q, want %q", tt.c, tt.c.String(), tt.s)
		}
		if tt.c.Caps() != tt.caps {
			t.Errorf("%v.Caps() = %b, want %b", tt.c, tt.c.Caps(), tt.caps)
		}
		if tt.c.Enc() != tt.enc {
			t.Errorf("%v.Enc() = %v, want %v", tt.c, tt.c.Enc(), tt.enc)
		}
		got, err := ParseCodec(tt.s)
		if err != nil || got != tt.c {
			t.Errorf("ParseCodec(%q) = %v, %v", tt.s, got, err)
		}
	}
	if _, err := ParseCodec("gzip"); err == nil {
		t.Error("ParseCodec accepted an unknown name")
	}
	if s := Codec(9).String(); s != "Codec(9)" {
		t.Errorf("unknown codec string %q", s)
	}
	if s := Enc(9).String(); s != "Enc(9)" {
		t.Errorf("unknown enc string %q", s)
	}
}

func TestPackSparseAndFloats(t *testing.T) {
	vals := []float64{1.5, -0.25, 1024}

	v, q := PackSparse(EncF64, vals)
	if q != nil || !reflect.DeepEqual(v, vals) {
		t.Fatalf("EncF64 pack: %v, %v", v, q)
	}
	m := &SparseUpdateMsg{Dim: 4, Enc: EncF64, Values: v}
	if got := m.Floats(nil); !reflect.DeepEqual(got, vals) {
		t.Fatalf("EncF64 floats: %v", got)
	}

	v, q = PackSparse(EncF16, vals)
	if v != nil || len(q) != len(vals) {
		t.Fatalf("EncF16 pack: %v, %v", v, q)
	}
	g := &SparseGlobalMsg{Dim: 4, Enc: EncF16, Q: q}
	want := quantize.RoundTripSlice(append([]float64(nil), vals...))
	if got := g.Floats(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("EncF16 floats: got %v, want %v", got, want)
	}
	if g.Scalars() != 3 || m.Scalars() != 3 {
		t.Fatal("Scalars miscounted")
	}
	// Floats reuses dst capacity.
	dst := make([]float64, 0, 8)
	if got := g.Floats(dst); &got[0] != &dst[:1][0] {
		t.Error("Floats did not reuse dst backing array")
	}
}

func TestFrameKind(t *testing.T) {
	if k := FrameKind(Encode(&SparseGlobalMsg{Dim: 1, Values: []float64{1}})); k != KindSparseGlobal {
		t.Fatalf("FrameKind = %v", k)
	}
	if k := FrameKind([]byte{1, 2}); k != 0 {
		t.Fatalf("short frame: %v", k)
	}
}

// TestV2HandshakeRoundTrip covers Caps/Codec surviving the wire.
func TestV2HandshakeRoundTrip(t *testing.T) {
	j := &JoinMsg{Name: "c1", SessionKey: "k", HaveRound: 4, Caps: CapSparse | CapQuantized}
	got, _, err := Decode(Encode(j), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("join round trip: %+v", got)
	}
	w := &WelcomeMsg{ClientID: 2, NumClients: 4, Rounds: 10, Dim: 2,
		Init: []float64{1, 2}, Round: 3, Codec: CodecSparseQ16,
		Missed: []GlobalMsg{{Round: 2, Payload: []float64{5, 6}, Participants: 4}}}
	got, _, err = Decode(Encode(w), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("welcome round trip: %+v", got)
	}
	// An out-of-range negotiated codec is corrupt.
	frame := Encode(w)
	body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
	body[len(body)-2] = 9 // codec u16 little-endian low byte
	if _, err := decodeBody(KindWelcome, 2, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile codec value: got %v, want ErrCorrupt", err)
	}
}
