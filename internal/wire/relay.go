package wire

import "apf/internal/checkpoint"

// RelayJoinMsg registers an edge relay with the root, or resumes a relay
// session. It is the relay-tier analogue of JoinMsg: the root answers with
// the same WelcomeMsg a client would get (geometry, init model, missed
// rounds), but the session collects PartialUpdateMsg pushes instead of
// per-client updates. Relay↔root traffic is always dense — a relay folds
// whatever its clients negotiated back into exact fixed-point columns — so
// the message advertises no codec capabilities.
type RelayJoinMsg struct {
	Name string
	// SessionKey identifies a resumable relay session, exactly as on
	// JoinMsg. Empty registers a fresh anonymous session.
	SessionKey string
	// HaveRound is the last round the relay has applied (-1 when none).
	HaveRound int
	// Clients is the number of client sessions the relay intends to
	// terminate — advisory capacity information the root exposes through
	// telemetry; the authoritative per-round count rides on each
	// PartialUpdateMsg.
	Clients int
}

// PartialUpdateMsg carries one relay's pre-aggregated round contribution:
// the exact 128-bit fixed-point partial sum over its accepted client
// updates (fl.Partial). Because the accumulator is an integer, the root's
// merge is bit-exact under any client→relay partitioning; Count and the
// weight words travel alongside so weighted FedAvg divides by the true
// totals.
type PartialUpdateMsg struct {
	Round int
	// Count is the number of client contributions folded into the sum.
	Count int
	// WeightLo/WeightHi are the Q64.64 fixed-point total client weight
	// (fl.Partial's weight words, little-end first).
	WeightLo, WeightHi uint64
	// MaskHash is the freezing-mask hash shared by every client folded
	// into this partial; the root rejects rounds whose relays disagree,
	// exactly as it does for direct clients (transport.ErrMaskDivergence).
	MaskHash uint64
	// Cols is the per-coordinate accumulator: 2 words per model
	// coordinate, lo at 2j and hi at 2j+1 (fl.Partial.Cols verbatim).
	Cols []uint64
}

// WireKind implements Msg.
func (*RelayJoinMsg) WireKind() Kind { return KindRelayJoin }

// WireKind implements Msg.
func (*PartialUpdateMsg) WireKind() Kind { return KindPartialUpdate }

// wireVersion implements Msg: the relay kinds exist only at v3, so the
// body is canonical there unconditionally.
func (m *RelayJoinMsg) wireVersion() uint8 { return 3 }

// appendBody serializes a RelayJoinMsg body.
func (m *RelayJoinMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	w.String(m.Name)
	w.String(m.SessionKey)
	w.Int(m.HaveRound)
	w.Int(m.Clients)
}

// readRelayJoin decodes a RelayJoinMsg body.
func readRelayJoin(r *checkpoint.Reader) *RelayJoinMsg {
	m := &RelayJoinMsg{
		Name:       r.String(),
		SessionKey: r.String(),
		HaveRound:  r.Int(),
		Clients:    r.Int(),
	}
	if r.Err() == nil && m.Clients < 0 {
		r.Fail("negative relay client count")
	}
	return m
}

// wireVersion implements Msg.
func (m *PartialUpdateMsg) wireVersion() uint8 { return 3 }

// AppendPartialUpdateBody serializes a PartialUpdateMsg body without the
// frame — the shared form used by both the socket codec and the root's
// write-ahead log (package transport prefixes the WAL record with the
// relay id, mirroring AppendUpdateBody).
func AppendPartialUpdateBody(w *checkpoint.Writer, m *PartialUpdateMsg) {
	w.Int(m.Round)
	w.Int(m.Count)
	w.U64(m.WeightLo)
	w.U64(m.WeightHi)
	w.U64(m.MaskHash)
	w.U64s(m.Cols)
}

// ReadPartialUpdateBody decodes an AppendPartialUpdateBody encoding. The
// column count is bounded against the remaining payload before allocation
// (checkpoint.Reader.U64s), and structural invariants — non-negative
// count, an even number of accumulator words — fail the reader rather
// than escape into the aggregation path.
func ReadPartialUpdateBody(r *checkpoint.Reader) PartialUpdateMsg {
	m := PartialUpdateMsg{
		Round:    r.Int(),
		Count:    r.Int(),
		WeightLo: r.U64(),
		WeightHi: r.U64(),
		MaskHash: r.U64(),
		Cols:     r.U64s(),
	}
	if r.Err() != nil {
		return m
	}
	if m.Count < 0 {
		r.Fail("negative partial-update count")
		return m
	}
	if len(m.Cols)%2 != 0 {
		r.Fail("odd accumulator word count")
	}
	return m
}

// appendBody serializes a PartialUpdateMsg body.
func (m *PartialUpdateMsg) appendBody(w *checkpoint.Writer, _ uint8) {
	AppendPartialUpdateBody(w, m)
}
