package wire

import (
	"bytes"
	"errors"
	"testing"
)

// relaySampleMsgs covers the v3 relay kinds with awkward values: empty and
// populated accumulators, negative rounds, resumable sessions.
func relaySampleMsgs() []Msg {
	return []Msg{
		&RelayJoinMsg{Name: "edge-0", SessionKey: "edge-0/key==", HaveRound: -1, Clients: 4096},
		&RelayJoinMsg{},
		&PartialUpdateMsg{
			Round: 12, Count: 31250,
			WeightLo: 0, WeightHi: 31250,
			MaskHash: 0xfeedface,
			Cols:     []uint64{0, 1, ^uint64(0), ^uint64(0) >> 1, 42, 7},
		},
		&PartialUpdateMsg{Round: -1},
	}
}

func TestRelayRoundTrip(t *testing.T) {
	for _, m := range relaySampleMsgs() {
		frame := Encode(m)
		if frame[4] != 3 {
			t.Fatalf("%s: stamped version %d, want 3", m.WireKind(), frame[4])
		}
		got, rest, err := Decode(frame, 0)
		if err != nil {
			t.Fatalf("%s: Decode: %v", m.WireKind(), err)
		}
		if len(rest) != 0 {
			t.Fatalf("%s: %d bytes left after sole frame", m.WireKind(), len(rest))
		}
		sameMsg(t, m, got)
		// The streaming reader must agree.
		got2, err := ReadMsg(bytes.NewReader(frame), 0)
		if err != nil {
			t.Fatalf("%s: ReadMsg: %v", m.WireKind(), err)
		}
		sameMsg(t, m, got2)
	}
}

// TestRelayKindsNeedV3 pins the header gate: the relay kinds framed under
// an older version stamp are refused with ErrVersion before any payload is
// interpreted.
func TestRelayKindsNeedV3(t *testing.T) {
	for _, m := range []Msg{
		&RelayJoinMsg{Name: "edge-0"},
		&PartialUpdateMsg{Round: 1, Count: 1, Cols: []uint64{1, 2}},
	} {
		for _, v := range []uint8{1, 2} {
			frame := reframe(Encode(m), v)
			if _, _, err := Decode(frame, 0); !errors.Is(err, ErrVersion) {
				t.Fatalf("%s stamped v%d: got %v, want ErrVersion", m.WireKind(), v, err)
			}
		}
	}
}

// TestHostileRelayBodies: structural invariants the aggregation path
// depends on — non-negative counts, an even accumulator word count — must
// fail decode as corruption rather than load.
func TestHostileRelayBodies(t *testing.T) {
	cases := []struct {
		name string
		m    Msg
	}{
		{"negative relay client count", &RelayJoinMsg{Name: "edge", Clients: -1}},
		{"negative partial count", &PartialUpdateMsg{Round: 1, Count: -7, Cols: []uint64{1, 2}}},
		{"odd accumulator word count", &PartialUpdateMsg{Round: 1, Count: 2, Cols: []uint64{1, 2, 3}}},
	}
	for _, tt := range cases {
		if _, _, err := Decode(Encode(tt.m), 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", tt.name, err)
		}
	}
}

// TestHostileColsCount feeds the partial decoder a column count that
// overruns the frame; it must be rejected before allocation.
func TestHostileColsCount(t *testing.T) {
	frame := Encode(&PartialUpdateMsg{Round: 1, Count: 1, Cols: []uint64{1, 2}})
	body := append([]byte(nil), frame[headerLen:len(frame)-trailerLen]...)
	// The Cols length prefix sits 8 bytes before the two column words.
	off := len(body) - 3*8
	for i := 0; i < 8; i++ {
		body[off+i] = 0
	}
	body[off+5] = 1 // little-endian byte 5 → 2^40 words
	if _, err := decodeBody(KindPartialUpdate, 3, body); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile cols count: got %v, want ErrCorrupt", err)
	}
}

func TestRelayKindStrings(t *testing.T) {
	if got := KindRelayJoin.String(); got != "relay-join" {
		t.Fatalf("KindRelayJoin.String() = %q", got)
	}
	if got := KindPartialUpdate.String(); got != "partial-update" {
		t.Fatalf("KindPartialUpdate.String() = %q", got)
	}
}
