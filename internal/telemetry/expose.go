package telemetry

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
)

// WriteText renders every family in the registry in Prometheus text
// exposition format 0.0.4, in registration order. Samples are read with
// atomic loads while writers keep recording; each individual sample is
// consistent but the page as a whole is not a point-in-time snapshot —
// standard scrape semantics. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	// Copy the family/child structure so exposition doesn't hold the
	// registration lock while doing I/O. The metric values themselves are
	// read lock-free afterwards.
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	type snap struct {
		f        *family
		children []*child
	}
	snaps := make([]snap, len(fams))
	for i, f := range fams {
		cs := make([]*child, len(f.children))
		copy(cs, f.children)
		snaps[i] = snap{f: f, children: cs}
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, s := range snaps {
		writeHeader(bw, s.f)
		for _, c := range s.children {
			switch s.f.kind {
			case kindCounter:
				writeSample(bw, s.f.name, "", c.labels, "", float64(c.ctr.Value()))
			case kindGauge:
				writeSample(bw, s.f.name, "", c.labels, "", c.gauge.Value())
			case kindHistogram:
				writeHistogram(bw, s.f.name, c)
			}
		}
	}
	return bw.Flush()
}

// writeHeader emits the # HELP / # TYPE preamble for one family.
func writeHeader(w *bufio.Writer, f *family) {
	if f.help != "" {
		w.WriteString("# HELP ")
		w.WriteString(f.name)
		w.WriteByte(' ')
		w.WriteString(escapeHelp(f.help))
		w.WriteByte('\n')
	}
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind.String())
	w.WriteByte('\n')
}

// escapeHelp escapes backslash and newline (HELP text keeps quotes raw).
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// writeSample emits one `name{labels,extra}value` line. suffix extends
// the metric name (e.g. "_sum"); extra is an extra pre-rendered label
// (e.g. `le="0.5"`) appended after the child's own labels.
func writeSample(w *bufio.Writer, name, suffix, labels, extra string, v float64) {
	w.WriteString(name)
	w.WriteString(suffix)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// formatValue renders a float the way Prometheus expects: integral values
// without exponent noise, specials as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// writeHistogram emits the cumulative bucket series, _sum, and _count for
// one histogram child. Buckets are stored per-bucket and accumulated
// here; the +Inf bucket count always equals _count.
func writeHistogram(w *bufio.Writer, name string, c *child) {
	h := c.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name, "_bucket", c.labels, `le="`+formatValue(bound)+`"`, float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name, "_bucket", c.labels, `le="+Inf"`, float64(cum))
	writeSample(w, name, "_sum", c.labels, "", h.Sum())
	writeSample(w, name, "_count", c.labels, "", float64(cum))
}

// Snapshot returns the current value of every series as a map from
// "name{labels}" to value — counters and gauges map to their value,
// histograms to their observation count (with "name_sum{labels}" holding
// the sum). Intended for tests and debugging, not the scrape path.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := make(map[string]float64)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, c := range f.children {
			key := f.name
			if c.labels != "" {
				key += "{" + c.labels + "}"
			}
			switch f.kind {
			case kindCounter:
				out[key] = float64(c.ctr.Value())
			case kindGauge:
				out[key] = c.gauge.Value()
			case kindHistogram:
				out[key] = float64(c.hist.Count())
				sumKey := f.name + "_sum"
				if c.labels != "" {
					sumKey += "{" + c.labels + "}"
				}
				out[sumKey] = c.hist.Sum()
			}
		}
	}
	return out
}

// Names returns the registered family names, sorted. Test helper.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
