// Package hooks adapts the narrow observer interfaces that the library
// packages define (core.Observer, checkpoint.Observer) onto a
// telemetry.Registry. The direction of the dependency is the point:
// core and checkpoint know nothing about telemetry — they publish events
// through interfaces they own, and this package (linked only by the
// binaries and tests that opt in) turns those events into metrics, so
// the APF hot path carries no metrics dependency and a nil observer
// costs one predictable branch.
package hooks

import (
	"time"

	"apf/internal/checkpoint"
	"apf/internal/core"
	"apf/internal/telemetry"
)

// managerObserver implements core.Observer against pre-registered metric
// handles. All record calls are atomic ops on scalar arguments — nothing
// escapes, so instrumented rounds stay 0 allocs/op.
type managerObserver struct {
	rounds          *telemetry.Counter
	frozenFraction  *telemetry.Gauge
	frozenScalars   *telemetry.Gauge
	stabilityChecks *telemetry.Counter
	checkFrozen     *telemetry.Gauge
	thresholdDecays *telemetry.Counter
	threshold       *telemetry.Gauge
}

// Manager builds a core.Observer recording freezing-state metrics on reg.
// Returns nil (meaning: leave Config.Observer unset) for a nil registry,
// so callers can wire it unconditionally.
func Manager(reg *telemetry.Registry) core.Observer {
	if reg == nil {
		return nil
	}
	return &managerObserver{
		rounds: reg.Counter("apf_manager_rounds_total",
			"Synchronization rounds applied by the APF manager (mask merges)."),
		frozenFraction: reg.Gauge("apf_frozen_fraction",
			"Fraction of model scalars frozen in the most recent round."),
		frozenScalars: reg.Gauge("apf_frozen_scalars",
			"Number of model scalars frozen in the most recent round."),
		stabilityChecks: reg.Counter("apf_stability_checks_total",
			"Stability checks run by the APF manager."),
		checkFrozen: reg.Gauge("apf_stability_frozen_scalars",
			"Scalars frozen by stability (random freezing excluded) at the last check."),
		thresholdDecays: reg.Counter("apf_threshold_decays_total",
			"Stability-threshold halvings (paper §6.1 decay)."),
		threshold: reg.Gauge("apf_stability_threshold",
			"Current effective-perturbation stability threshold."),
	}
}

func (o *managerObserver) RoundApplied(round, frozen, dim int) {
	o.rounds.Inc()
	o.frozenScalars.Set(float64(frozen))
	if dim > 0 {
		o.frozenFraction.Set(float64(frozen) / float64(dim))
	}
}

func (o *managerObserver) StabilityChecked(check, round, frozen int) {
	o.stabilityChecks.Inc()
	o.checkFrozen.Set(float64(frozen))
}

func (o *managerObserver) ThresholdDecayed(threshold float64) {
	o.thresholdDecays.Inc()
	o.threshold.Set(threshold)
}

// storeObserver implements checkpoint.Observer against metric handles.
type storeObserver struct {
	log *telemetry.Logger

	appends       *telemetry.Counter
	appendSeconds *telemetry.Histogram
	walBytes      *telemetry.Counter

	snapshots       *telemetry.Counter
	snapshotSeconds *telemetry.Histogram
	snapshotRounds  *telemetry.Gauge

	loads         *telemetry.Counter
	loadsFound    *telemetry.Counter
	replayRecords *telemetry.Counter
}

// Store builds a checkpoint.Observer recording durability metrics on reg
// and logging snapshot/recovery milestones on log (either may be nil).
func Store(reg *telemetry.Registry, log *telemetry.Logger) checkpoint.Observer {
	if reg == nil && log == nil {
		return nil
	}
	return &storeObserver{
		log: log.With("component", "checkpoint"),
		appends: reg.Counter("apf_wal_appends_total",
			"Durable (fsync'd) WAL record appends."),
		appendSeconds: reg.Histogram("apf_wal_append_seconds",
			"Latency of one WAL append including fsync.", nil),
		walBytes: reg.Counter("apf_wal_bytes_total",
			"Framed bytes appended to the WAL."),
		snapshots: reg.Counter("apf_snapshots_total",
			"Durable snapshot rotations."),
		snapshotSeconds: reg.Histogram("apf_snapshot_seconds",
			"Latency of one snapshot rotation (write, fsync, rename, prune).", nil),
		snapshotRounds: reg.Gauge("apf_snapshot_rounds",
			"Completed rounds captured by the current snapshot generation."),
		loads: reg.Counter("apf_checkpoint_loads_total",
			"Recovery attempts via Store.Load."),
		loadsFound: reg.Counter("apf_checkpoint_loads_found_total",
			"Recovery attempts that found a usable snapshot generation."),
		replayRecords: reg.Counter("apf_wal_replayed_records_total",
			"WAL records replayed during recoveries."),
	}
}

func (o *storeObserver) AppendDone(bytes int, d time.Duration) {
	o.appends.Inc()
	o.walBytes.Add(int64(bytes))
	o.appendSeconds.Observe(d.Seconds())
}

func (o *storeObserver) SnapshotDone(rounds, bytes int, d time.Duration) {
	o.snapshots.Inc()
	o.snapshotRounds.Set(float64(rounds))
	o.snapshotSeconds.Observe(d.Seconds())
	o.log.Info("snapshot rotated", "rounds", rounds, "bytes", bytes, "took", d)
}

func (o *storeObserver) LoadDone(found bool, rounds, walRecords int, d time.Duration) {
	o.loads.Inc()
	if found {
		o.loadsFound.Inc()
		o.replayRecords.Add(int64(walRecords))
		o.log.Info("checkpoint recovered",
			"rounds", rounds, "wal_records", walRecords, "took", d)
	} else {
		o.log.Info("no checkpoint found, fresh start", "took", d)
	}
}
