// Package telemetry is the runtime observability plane: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms), a
// Prometheus text-exposition endpoint with pprof and health mounts, and a
// leveled structured event logger.
//
// Design constraints, in order:
//
//   - Record paths must be safe on the APF hot path: every Inc/Add/Set/
//     Observe is a handful of atomic operations, allocates nothing, and
//     takes no locks. Registration (Counter/Gauge/Histogram) takes a
//     mutex and may allocate — it happens once, at setup.
//   - Everything is nil-safe. A nil *Registry hands out nil metric
//     handles, and every method on a nil handle is a no-op, so library
//     code instruments unconditionally and stays silent (and nearly free:
//     one nil check) unless a registry is injected. The same holds for
//     *Logger. There is no global state to configure or leak.
//   - Exposition is Prometheus text format version 0.0.4 — counters and
//     gauges one sample line each, histograms as cumulative buckets with
//     `le` labels ending in `+Inf` plus `_sum`/`_count` — so any scraper
//     or `curl | grep` works against /metrics unchanged.
//
// Metric families are identified by name; children of one family differ
// by their label sets, fixed at registration (there is no dynamic label
// lookup on the record path — callers hold child handles). Registering
// the same (name, labels) twice returns the same handle, so independent
// components may share a series without coordinating.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates family types within a registry.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// String names the kind in exposition TYPE lines and error messages.
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("metricKind(%d)", uint8(k))
}

// child is one labeled series of a family. labels is the pre-rendered
// `key="value",...` list (empty for an unlabeled series); the concrete
// metric is exactly one of the three pointers.
type child struct {
	labels string
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is one named metric with its HELP/TYPE metadata and children.
type family struct {
	name string
	help string
	kind metricKind

	children []*child
	byLabels map[string]*child
}

// Registry holds metric families in registration order. All methods are
// safe for concurrent use; all methods on a nil *Registry are no-ops that
// return nil handles.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns (creating if needed) the named family, panicking on a
// kind or help conflict — mixing types under one name is a programming
// error that would corrupt the exposition.
func (r *Registry) family(name, help string, kind metricKind) *family {
	if err := checkName(name); err != nil {
		panic(err.Error())
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*child)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter registers (or returns) the counter name with the given label
// pairs (alternating key, value). A nil registry returns a nil handle,
// whose methods are no-ops.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	labels := renderLabels(labelPairs)
	if c, ok := f.byLabels[labels]; ok {
		return c.ctr
	}
	c := &child{labels: labels, ctr: &Counter{}}
	f.byLabels[labels] = c
	f.children = append(f.children, c)
	return c.ctr
}

// Gauge registers (or returns) the gauge name with the given label pairs.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	labels := renderLabels(labelPairs)
	if c, ok := f.byLabels[labels]; ok {
		return c.gauge
	}
	c := &child{labels: labels, gauge: &Gauge{}}
	f.byLabels[labels] = c
	f.children = append(f.children, c)
	return c.gauge
}

// Histogram registers (or returns) the histogram name over the given
// bucket upper bounds (ascending; the +Inf bucket is implicit) with the
// given label pairs. Pass nil buckets for DefBuckets. Re-registering an
// existing series with different buckets panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: %s buckets not ascending: %v", name, buckets))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	labels := renderLabels(labelPairs)
	if c, ok := f.byLabels[labels]; ok {
		if len(c.hist.bounds) != len(buckets) {
			panic(fmt.Sprintf("telemetry: %s re-registered with different buckets", name))
		}
		for i := range buckets {
			if c.hist.bounds[i] != buckets[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with different buckets", name))
			}
		}
		return c.hist
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	c := &child{labels: labels, hist: h}
	f.byLabels[labels] = c
	f.children = append(f.children, c)
	return c.hist
}

// DefBuckets is the default latency bucket layout (seconds): sub-ms
// through minute scale, matching round/WAL/broadcast timings.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// checkName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return fmt.Errorf("telemetry: invalid metric name %q", name)
		}
	}
	return nil
}

// renderLabels builds the canonical `k="v",...` form of alternating
// key/value pairs, escaping values per the exposition format. Keys keep
// caller order (the registration site fixes it once).
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", pairs))
	}
	var b strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if err := checkName(pairs[i]); err != nil {
			panic(fmt.Sprintf("telemetry: invalid label key %q", pairs[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(pairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline, the three
// characters the text exposition format requires escaped in label values.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. The zero value is
// ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta atomically.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds set at
// registration, +Inf implicit) and tracks their sum. A nil *Histogram is
// a no-op. Buckets are stored non-cumulatively and accumulated only at
// exposition time, so Observe touches exactly one bucket counter.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound ≥ v is v's bucket (le semantics); past the end is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}
