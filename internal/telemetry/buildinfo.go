package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo is the identity stamped on the apf_build_info gauge and
// printed by the binaries' -version flag.
type BuildInfo struct {
	// Version is the module version ("(devel)" for source builds).
	Version string
	// Revision is the VCS commit hash, if the build embedded one.
	Revision string
	// Modified reports uncommitted changes at build time.
	Modified bool
	// GoVersion is the toolchain that produced the binary.
	GoVersion string
}

// ReadBuildInfo extracts version identity from the binary's embedded
// build metadata. Missing metadata (e.g. test binaries) degrades to
// "unknown" fields rather than failing.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.Main.Version != "" {
		bi.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// RegisterBuildInfo publishes the constant apf_build_info gauge (value 1,
// identity in labels — the Prometheus build-info convention) on reg.
// No-op on a nil registry.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	bi := ReadBuildInfo()
	modified := "false"
	if bi.Modified {
		modified = "true"
	}
	reg.Gauge("apf_build_info",
		"Build identity of this binary; constant 1 with version info in labels.",
		"version", bi.Version,
		"revision", bi.Revision,
		"modified", modified,
		"goversion", bi.GoVersion,
	).Set(1)
	return bi
}

// String renders the identity for -version output.
func (b BuildInfo) String() string {
	s := "version " + b.Version + " revision " + b.Revision
	if b.Modified {
		s += " (modified)"
	}
	return s + " " + b.GoVersion
}
