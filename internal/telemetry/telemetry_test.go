package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := New()
	c := reg.Counter("apf_test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("apf_test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	reg := New()
	a := reg.Counter("apf_dup_total", "h", "k", "v")
	b := reg.Counter("apf_dup_total", "h", "k", "v")
	if a != b {
		t.Fatal("same (name, labels) must return the same handle")
	}
	other := reg.Counter("apf_dup_total", "h", "k", "w")
	if a == other {
		t.Fatal("different labels must return different handles")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := New()
	reg.Counter("apf_conflict", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind conflict")
		}
	}()
	reg.Gauge("apf_conflict", "h")
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "h")
	g := reg.Gauge("x", "h")
	h := reg.Histogram("x", "h", nil)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := reg.WriteText(io.Discard); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
	if reg.Snapshot() != nil || reg.Names() != nil {
		t.Fatal("nil registry reads must be nil")
	}

	var log *Logger
	log.Info("silent", "k", "v")
	log.Error("silent")
	if log.With("a", 1) != nil {
		t.Fatal("nil With must stay nil")
	}
	if log.Enabled(LevelError) {
		t.Fatal("nil logger enables nothing")
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := New()
	h := reg.Histogram("apf_lat_seconds", "h", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.7, 2.0} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-3.15) > 1e-12 {
		t.Fatalf("sum = %v, want 3.15", h.Sum())
	}
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Buckets must be cumulative: 0.05 and 0.1 both fall in le="0.1"
	// (le is inclusive), 0.3 adds to le="0.5", 0.7 to le="1", and 2.0
	// only appears in +Inf.
	for _, want := range []string{
		`apf_lat_seconds_bucket{le="0.1"} 2`,
		`apf_lat_seconds_bucket{le="0.5"} 3`,
		`apf_lat_seconds_bucket{le="1"} 4`,
		`apf_lat_seconds_bucket{le="+Inf"} 5`,
		`apf_lat_seconds_sum 3.15`,
		`apf_lat_seconds_count 5`,
		"# TYPE apf_lat_seconds histogram",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	reg := New()
	h := reg.Histogram("apf_edge_seconds", "h", []float64{1})
	h.Observe(1) // exactly on the bound: le="1" means ≤ 1
	var buf strings.Builder
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), `apf_edge_seconds_bucket{le="1"} 1`) {
		t.Fatalf("observation at bound must land in its bucket:\n%s", buf.String())
	}
}

func TestExpositionEscaping(t *testing.T) {
	reg := New()
	reg.Counter("apf_esc_total", `help with \ and newline`+"\n", "path", `a"b\c`+"\n").Inc()
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP apf_esc_total help with \\ and newline\n`) {
		t.Errorf("HELP escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `apf_esc_total{path="a\"b\\c\n"} 1`) {
		t.Errorf("label value escaping wrong:\n%s", out)
	}
	// Escaped output must stay one line per sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Errorf("empty exposition line in:\n%s", out)
		}
	}
}

func TestExpositionLabelsAndOrder(t *testing.T) {
	reg := New()
	reg.Counter("apf_first_total", "h").Add(7)
	reg.Gauge("apf_second", "h", "kind", "update").Set(3)
	reg.Gauge("apf_second", "h", "kind", "global").Set(4)
	var buf strings.Builder
	reg.WriteText(&buf)
	out := buf.String()
	first := strings.Index(out, "apf_first_total")
	second := strings.Index(out, "apf_second")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("families must expose in registration order:\n%s", out)
	}
	for _, want := range []string{
		`apf_second{kind="update"} 3`,
		`apf_second{kind="global"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		5:            "5",
		-3:           "-3",
		2.5:          "2.5",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatValue(math.NaN()); got != "NaN" {
		t.Errorf("formatValue(NaN) = %q", got)
	}
}

func TestConcurrentRecordAndScrape(t *testing.T) {
	reg := New()
	c := reg.Counter("apf_conc_total", "h")
	h := reg.Histogram("apf_conc_seconds", "h", nil)
	const workers, perWorker = 4, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := reg.WriteText(io.Discard); err != nil {
			t.Errorf("scrape %d: %v", i, err)
		}
		// Registration while recording must also be safe.
		reg.Counter("apf_conc_total", "h").Value()
	}
	wg.Wait()
	if c.Value() != workers*perWorker || h.Count() != workers*perWorker {
		t.Fatalf("lost updates: counter=%d histogram=%d want %d",
			c.Value(), h.Count(), workers*perWorker)
	}
}

func TestParseLevelAndFormat(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "WARN": LevelWarn,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if f, err := ParseFormat("text"); err != nil || f != FormatText {
		t.Errorf("ParseFormat(text) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat must reject unknown formats")
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf strings.Builder
	log := NewLogger(&buf, LevelInfo, FormatJSON)
	log.now = func() time.Time { return time.Date(2026, 8, 5, 1, 2, 3, 0, time.UTC) }
	log.Debug("dropped below level")
	log = log.With("component", "server")
	log.Info("round committed", "round", 7, "clients", int64(3), "frac", 0.25,
		"partial", true, "err", io.EOF)
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("debug must be filtered at info level: %s", out)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(out), &ev); err != nil {
		t.Fatalf("event is not valid JSON: %v\n%s", err, out)
	}
	if ev["level"] != "info" || ev["msg"] != "round committed" ||
		ev["component"] != "server" || ev["round"] != float64(7) ||
		ev["clients"] != float64(3) || ev["frac"] != 0.25 ||
		ev["partial"] != true || ev["err"] != "EOF" {
		t.Fatalf("bad event fields: %#v", ev)
	}
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("want exactly one JSONL line, got %q", out)
	}
}

func TestLoggerJSONEscaping(t *testing.T) {
	var buf strings.Builder
	log := NewLogger(&buf, LevelDebug, FormatJSON)
	log.Debug("quote \" slash \\ newline \n tab \t", "k", "v\"w")
	var ev map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &ev); err != nil {
		t.Fatalf("escaped event is not valid JSON: %v\n%s", err, buf.String())
	}
	if ev["msg"] != "quote \" slash \\ newline \n tab \t" || ev["k"] != `v"w` {
		t.Fatalf("escaping mangled content: %#v", ev)
	}
}

func TestLoggerText(t *testing.T) {
	var buf strings.Builder
	log := NewLogger(&buf, LevelWarn, FormatText)
	log.Info("hidden")
	log.Warn("slow append", "latency", 250*time.Millisecond, "path", "/tmp/a b")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("info must be filtered at warn level: %s", out)
	}
	if !strings.Contains(out, "warn slow append latency=250ms") ||
		!strings.Contains(out, `path="/tmp/a b"`) {
		t.Fatalf("bad text line: %q", out)
	}
}

func TestLoggerEnabled(t *testing.T) {
	log := NewLogger(io.Discard, LevelWarn, FormatText)
	if log.Enabled(LevelInfo) || !log.Enabled(LevelWarn) || !log.Enabled(LevelError) {
		t.Fatal("Enabled must respect the configured level")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("apf_handler_total", "h").Add(9)
	health := HealthFunc(func() []any {
		return []any{"round", 12, "recovered", true, "committed_rounds", int64(12)}
	})
	srv := httptest.NewServer(Handler(reg, health))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.Contains(metrics, "apf_handler_total 9") {
		t.Errorf("metrics body missing counter:\n%s", metrics)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("metrics content type = %q", ctype)
	}

	healthz, _ := get("/healthz")
	var hv map[string]any
	if err := json.Unmarshal([]byte(healthz), &hv); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, healthz)
	}
	if hv["status"] != "ok" || hv["round"] != float64(12) || hv["recovered"] != true {
		t.Errorf("bad healthz: %#v", hv)
	}

	pprofIdx, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIdx, "goroutine") {
		t.Errorf("pprof index missing profiles:\n%.200s", pprofIdx)
	}
}

func TestServe(t *testing.T) {
	reg := New()
	reg.Counter("apf_serve_total", "h").Inc()
	ln, err := Serve("127.0.0.1:0", Handler(reg, nil), func(err error) {
		t.Errorf("serve error: %v", err)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "apf_serve_total 1") {
		t.Fatalf("bad body: %s", body)
	}
	ln.Close()
	// Give the swallow-net.ErrClosed path a moment to run under -race.
	time.Sleep(10 * time.Millisecond)
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := New()
	bi := RegisterBuildInfo(reg)
	if bi.GoVersion == "" {
		t.Fatal("GoVersion must be populated")
	}
	var buf strings.Builder
	reg.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "apf_build_info{") || !strings.Contains(out, "} 1\n") {
		t.Fatalf("build info gauge missing:\n%s", out)
	}
	if !strings.Contains(out, "goversion=") {
		t.Fatalf("goversion label missing:\n%s", out)
	}
	if bi.String() == "" {
		t.Fatal("String must render")
	}
}

func TestSnapshot(t *testing.T) {
	reg := New()
	reg.Counter("apf_snap_total", "h", "k", "v").Add(3)
	reg.Gauge("apf_snap_gauge", "h").Set(1.5)
	reg.Histogram("apf_snap_seconds", "h", []float64{1}).Observe(0.5)
	s := reg.Snapshot()
	if s[`apf_snap_total{k="v"}`] != 3 || s["apf_snap_gauge"] != 1.5 ||
		s["apf_snap_seconds"] != 1 || s["apf_snap_seconds_sum"] != 0.5 {
		t.Fatalf("bad snapshot: %v", s)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("apf_bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("apf_bench_seconds", "h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func TestRecordPathsDoNotAllocate(t *testing.T) {
	reg := New()
	c := reg.Counter("apf_alloc_total", "h")
	g := reg.Gauge("apf_alloc_gauge", "h")
	h := reg.Histogram("apf_alloc_seconds", "h", nil)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(0.5)
		h.Observe(0.01)
	}); n != 0 {
		t.Fatalf("record path allocates %v per run, want 0", n)
	}
}
