package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Events below the logger's configured level are
// dropped before any formatting work happens.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel maps a flag value to a Level; unknown names are an error so
// binaries can reject bad -log-level the way they reject bad -io-timeout.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("invalid log level %q (want debug, info, warn, or error)", s)
}

// Format selects the event encoding.
type Format int32

const (
	// FormatText renders `ts level msg k=v ...` lines for humans.
	FormatText Format = iota
	// FormatJSON renders one JSON object per line (JSONL) for machines.
	FormatJSON
)

// ParseFormat maps a flag value to a Format, rejecting unknown names.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return 0, fmt.Errorf("invalid log format %q (want text or json)", s)
}

// Logger writes leveled structured events to a sink. A nil *Logger is the
// nop logger: every method is a cheap no-op, so libraries log
// unconditionally and stay silent unless a sink is injected. Loggers are
// safe for concurrent use; each event is written in a single Write call.
type Logger struct {
	// mu is shared by every logger derived via With so interleaved events
	// from sibling loggers land on the sink one whole line at a time.
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	// attrs are pre-rendered key/value pairs attached to every event
	// (component bindings from With).
	attrs []attr
	// now is stubbed in tests for deterministic timestamps.
	now func() time.Time
}

type attr struct {
	key string
	val any
}

// NewLogger builds a logger writing events at or above level to w in the
// given format.
func NewLogger(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, format: format, now: time.Now}
}

// With returns a logger that attaches the given alternating key/value
// pairs to every event. Nil receivers stay nil.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil || len(kv) == 0 {
		return l
	}
	child := &Logger{mu: l.mu, w: l.w, level: l.level, format: l.format, now: l.now}
	child.attrs = append(append([]attr(nil), l.attrs...), toAttrs(kv)...)
	return child
}

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug emits a debug-level event.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info-level event.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warn-level event.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error-level event.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if l == nil || level < l.level || l.w == nil {
		return
	}
	attrs := toAttrs(kv)
	var b strings.Builder
	ts := l.now().UTC()
	switch l.format {
	case FormatJSON:
		b.WriteString(`{"ts":"`)
		b.WriteString(ts.Format(time.RFC3339Nano))
		b.WriteString(`","level":"`)
		b.WriteString(level.String())
		b.WriteString(`","msg":`)
		b.WriteString(jsonString(msg))
		for _, a := range l.attrs {
			writeJSONAttr(&b, a)
		}
		for _, a := range attrs {
			writeJSONAttr(&b, a)
		}
		b.WriteString("}\n")
	default:
		b.WriteString(ts.Format("2006-01-02T15:04:05.000Z"))
		b.WriteByte(' ')
		b.WriteString(level.String())
		b.WriteByte(' ')
		b.WriteString(msg)
		for _, a := range l.attrs {
			writeTextAttr(&b, a)
		}
		for _, a := range attrs {
			writeTextAttr(&b, a)
		}
		b.WriteByte('\n')
	}
	l.mu.Lock()
	l.w.Write([]byte(b.String()))
	l.mu.Unlock()
}

// toAttrs pairs up alternating key/value arguments; a trailing odd value
// is recorded under "!BADKEY" rather than dropped, matching slog.
func toAttrs(kv []any) []attr {
	if len(kv) == 0 {
		return nil
	}
	attrs := make([]attr, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := "", false
		if i < len(kv) {
			key, ok = kv[i].(string)
		}
		if !ok {
			attrs = append(attrs, attr{key: "!BADKEY", val: kv[i]})
			continue
		}
		if i+1 < len(kv) {
			attrs = append(attrs, attr{key: key, val: kv[i+1]})
		} else {
			attrs = append(attrs, attr{key: "!BADKEY", val: key})
		}
	}
	return attrs
}

func writeTextAttr(b *strings.Builder, a attr) {
	b.WriteByte(' ')
	b.WriteString(a.key)
	b.WriteByte('=')
	s := renderValue(a.val)
	if strings.ContainsAny(s, " \"\n") {
		b.WriteString(strconv.Quote(s))
	} else {
		b.WriteString(s)
	}
}

func writeJSONAttr(b *strings.Builder, a attr) {
	b.WriteByte(',')
	b.WriteString(jsonString(a.key))
	b.WriteByte(':')
	switch v := a.val.(type) {
	case int:
		b.WriteString(strconv.Itoa(v))
	case int64:
		b.WriteString(strconv.FormatInt(v, 10))
	case uint64:
		b.WriteString(strconv.FormatUint(v, 10))
	case bool:
		b.WriteString(strconv.FormatBool(v))
	case float64:
		if math.IsInf(v, 0) || math.IsNaN(v) {
			b.WriteString(jsonString(renderValue(v)))
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	default:
		b.WriteString(jsonString(renderValue(a.val)))
	}
}

// renderValue stringifies an attribute value without reflection-heavy
// formatting for the common types.
func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case time.Duration:
		return x.String()
	case error:
		return x.Error()
	case fmt.Stringer:
		return x.String()
	case nil:
		return "<nil>"
	default:
		return fmt.Sprint(x)
	}
}

// jsonString renders s as a JSON string literal, escaping per RFC 8259.
func jsonString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
