package telemetry

import (
	"errors"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// Health is polled by the /healthz endpoint on every request. Implement
// it with cheap accessors — it is called on the scrape path.
type Health interface {
	// Healthz returns alternating key/value pairs describing live state
	// (round, committed rounds, recovery status, ...). The endpoint
	// renders them as a flat JSON object alongside "status":"ok".
	Healthz() []any
}

// HealthFunc adapts a closure to the Health interface.
type HealthFunc func() []any

// Healthz implements Health.
func (f HealthFunc) Healthz() []any { return f() }

// Handler builds the observability mux: Prometheus text metrics on
// /metrics, liveness + state on /healthz, and the standard runtime
// profiles under /debug/pprof/. The pprof handlers are mounted explicitly
// on this private mux — importing net/http/pprof for its side effect
// would pollute http.DefaultServeMux for every binary linking this
// package. health may be nil (the endpoint then reports only status).
func Handler(reg *Registry, health Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var b strings.Builder
		b.WriteString(`{"status":"ok"`)
		if health != nil {
			kv := health.Healthz()
			for i := 0; i+1 < len(kv); i += 2 {
				key, ok := kv[i].(string)
				if !ok {
					continue
				}
				b.WriteByte(',')
				b.WriteString(jsonString(key))
				b.WriteByte(':')
				writeHealthValue(&b, kv[i+1])
			}
		}
		b.WriteString("}\n")
		w.Write([]byte(b.String()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeHealthValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case float64:
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	default:
		b.WriteString(jsonString(renderValue(v)))
	}
}

// Serve listens on addr and serves the observability handler until the
// listener is closed. It returns the bound listener (so callers using
// ":0" can learn the port) and never blocks; serve errors after Close are
// swallowed, earlier ones are passed to onErr if non-nil.
func Serve(addr string, h http.Handler, onErr func(error)) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() {
		err := srv.Serve(ln)
		// Closing the listener is the intended shutdown; both sentinels
		// mean "stopped on purpose".
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) && onErr != nil {
			onErr(err)
		}
	}()
	return ln, nil
}
