package quantize

import (
	"math"
	"testing"
	"testing/quick"

	"apf/internal/stats"
)

func TestStochasticQuantizeGridAndScale(t *testing.T) {
	q := NewStochasticQuantizer(4, stats.SplitRNG(1, 0))
	xs := []float64{0.5, -2, 1.3, 0}
	scale := q.Quantize(xs)
	if scale != 2 {
		t.Fatalf("scale = %v, want max |x| = 2", scale)
	}
	for i, v := range xs {
		g := v / scale * 4
		if math.Abs(g-math.Round(g)) > 1e-12 {
			t.Errorf("xs[%d] = %v not on the grid", i, v)
		}
		if math.Abs(v) > scale {
			t.Errorf("xs[%d] = %v exceeds the scale", i, v)
		}
	}
	// Zero must stay exactly zero... probabilistically it can round to
	// ±scale/levels only if frac > 0; for v=0, t=0, floor=0, frac=0 → stays 0.
	if xs[3] != 0 {
		t.Errorf("zero value moved to %v", xs[3])
	}
}

func TestStochasticQuantizerValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewStochasticQuantizer(0, stats.SplitRNG(1, 0)) },
		func() { NewStochasticQuantizer(2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestExpectedError(t *testing.T) {
	q := NewStochasticQuantizer(8, stats.SplitRNG(2, 0))
	if got := q.ExpectedError(4); got != 0.5 {
		t.Errorf("ExpectedError = %v, want 0.5 (scale/levels)", got)
	}
}

// Property: quantized values stay within one bucket of the original and
// within [-scale, scale].
func TestQuickStochasticBounded(t *testing.T) {
	q := NewStochasticQuantizer(5, stats.SplitRNG(3, 0))
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(v, 1e6)
		}
		orig := append([]float64(nil), xs...)
		scale := q.Quantize(xs)
		bucket := scale / 5
		for i := range xs {
			if math.Abs(xs[i]-orig[i]) > bucket+1e-9 {
				return false
			}
			if math.Abs(xs[i]) > scale+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitsFor(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {9, 4}, {255, 8}, {256, 8}, {257, 9},
	}
	for _, tt := range tests {
		if got := bitsFor(tt.n); got != tt.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}
