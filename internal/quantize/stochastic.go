package quantize

import (
	"fmt"
	"math"
	"math/rand"
)

// StochasticQuantizer implements QSGD-style stochastic uniform quantization
// (Alistarh et al. [5], from the paper's §2.2 related-work family): values
// are scaled into `levels` uniform buckets per sign and rounded up or down
// with probability proportional to the remainder, making the quantizer
// unbiased (E[Q(v)] = v). The wire cost per value is
// ceil(log2(2·levels+1)) bits plus the shared scale.
type StochasticQuantizer struct {
	levels int
	rng    *rand.Rand
}

// NewStochasticQuantizer constructs a quantizer with the given number of
// positive levels (e.g. 1 reproduces TernGrad's {-1, 0, +1} grid).
func NewStochasticQuantizer(levels int, rng *rand.Rand) *StochasticQuantizer {
	if levels < 1 {
		panic(fmt.Sprintf("quantize: levels must be ≥ 1, got %d", levels))
	}
	if rng == nil {
		panic("quantize: nil rng")
	}
	return &StochasticQuantizer{levels: levels, rng: rng}
}

// BitsPerValue returns the wire bits each quantized value needs.
func (q *StochasticQuantizer) BitsPerValue() int {
	return bitsFor(2*q.levels + 1)
}

// bitsFor returns ceil(log2(n)) for n ≥ 1.
func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Quantize rounds xs in place onto the stochastic grid scaled by
// max(|xs|), returning the scale. A zero vector is returned unchanged with
// scale 0.
func (q *StochasticQuantizer) Quantize(xs []float64) (scale float64) {
	for _, v := range xs {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return 0
	}
	l := float64(q.levels)
	for i, v := range xs {
		t := v / scale * l // in [-levels, levels]
		lo := math.Floor(t)
		frac := t - lo
		qv := lo
		if q.rng.Float64() < frac {
			qv = lo + 1
		}
		xs[i] = qv / l * scale
	}
	return scale
}

// ExpectedError returns the worst-case per-value quantization step for a
// given scale (half the bucket width bounds the absolute rounding error in
// expectation-free terms).
func (q *StochasticQuantizer) ExpectedError(scale float64) float64 {
	return scale / float64(q.levels)
}
