package quantize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	tests := []struct {
		name string
		v    float64
		bits uint16
	}{
		{"zero", 0, 0x0000},
		{"neg zero", math.Copysign(0, -1), 0x8000},
		{"one", 1, 0x3c00},
		{"neg one", -1, 0xbc00},
		{"two", 2, 0x4000},
		{"half", 0.5, 0x3800},
		{"max half", 65504, 0x7bff},
		{"smallest normal", 6.103515625e-05, 0x0400},
		{"smallest subnormal", 5.960464477539063e-08, 0x0001},
		{"inf", math.Inf(1), 0x7c00},
		{"neg inf", math.Inf(-1), 0xfc00},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Float64ToHalf(tt.v); got != tt.bits {
				t.Errorf("Float64ToHalf(%v) = %#04x, want %#04x", tt.v, got, tt.bits)
			}
			back := HalfToFloat64(tt.bits)
			if math.IsInf(tt.v, 0) {
				if !math.IsInf(back, int(math.Copysign(1, tt.v))) {
					t.Errorf("HalfToFloat64(%#04x) = %v", tt.bits, back)
				}
				return
			}
			if back != tt.v {
				t.Errorf("HalfToFloat64(%#04x) = %v, want %v", tt.bits, back, tt.v)
			}
		})
	}
}

func TestNaNPreserved(t *testing.T) {
	h := Float64ToHalf(math.NaN())
	if !math.IsNaN(HalfToFloat64(h)) {
		t.Error("NaN not preserved")
	}
}

func TestOverflowSaturates(t *testing.T) {
	if !math.IsInf(RoundTrip(1e6), 1) {
		t.Error("large positive should saturate to +Inf")
	}
	if !math.IsInf(RoundTrip(-1e6), -1) {
		t.Error("large negative should saturate to -Inf")
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := RoundTrip(1e-12); got != 0 {
		t.Errorf("tiny value should flush to 0, got %v", got)
	}
}

func TestRoundTripSlice(t *testing.T) {
	xs := []float64{0.1, -3.25, 100}
	RoundTripSlice(xs)
	if xs[1] != -3.25 {
		t.Error("exactly representable value changed")
	}
	if math.Abs(xs[0]-0.1) > 1e-4 {
		t.Errorf("0.1 quantized too coarsely: %v", xs[0])
	}
}

// Property: round trip is idempotent and the relative error of normal-range
// values is within half precision's 2^-11 bound.
func TestQuickRoundTripError(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Mod(raw, 60000)
		if math.IsNaN(v) {
			v = 1
		}
		q := RoundTrip(v)
		if RoundTrip(q) != q {
			return false // must be idempotent
		}
		if v == 0 {
			return q == 0
		}
		if math.Abs(v) < 6.2e-05 {
			// Subnormal range: absolute error bounded by one subnormal ulp.
			return math.Abs(q-v) <= 6e-8
		}
		return math.Abs(q-v)/math.Abs(v) <= 1.0/2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: quantization is monotone (order-preserving).
func TestQuickMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 60000)
		b = math.Mod(b, 60000)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return RoundTrip(a) <= RoundTrip(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzHalfBits checks that decoding any 16-bit pattern and re-encoding it
// is the identity (modulo NaN payload canonicalization): the fp16 codec
// never corrupts representable values.
func FuzzHalfBits(f *testing.F) {
	for _, seed := range []uint16{0, 1, 0x3c00, 0x7c00, 0x8000, 0xfc00, 0x7e00, 0xffff, 0x0400, 0x7bff} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h uint16) {
		v := HalfToFloat64(h)
		back := Float64ToHalf(v)
		if math.IsNaN(v) {
			if !math.IsNaN(HalfToFloat64(back)) {
				t.Fatalf("NaN %#04x did not survive round trip (got %#04x)", h, back)
			}
			return
		}
		if back != h {
			t.Fatalf("half bits %#04x -> %v -> %#04x", h, v, back)
		}
	})
}

// FuzzHalfValue checks that arbitrary float64 inputs never panic and
// always produce a representable (or saturated) result.
func FuzzHalfValue(f *testing.F) {
	for _, seed := range []float64{0, 1, -1, 0.1, 65504, 65520, 1e-8, -1e300, math.Inf(1)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		q := RoundTrip(v)
		if math.IsNaN(v) {
			if !math.IsNaN(q) {
				t.Fatal("NaN lost")
			}
			return
		}
		if RoundTrip(q) != q {
			t.Fatalf("not idempotent: %v -> %v -> %v", v, q, RoundTrip(q))
		}
	})
}

// TestExhaustiveHalfRoundTrip drives every one of the 65536 binary16 bit
// patterns through decode→encode. Non-NaN patterns must survive exactly;
// NaN payloads canonicalize to the quiet NaN of their sign.
func TestExhaustiveHalfRoundTrip(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		h := uint16(i)
		v := HalfToFloat64(h)
		back := Float64ToHalf(v)
		if math.IsNaN(v) {
			if want := h&0x8000 | 0x7e00; back != want {
				t.Fatalf("NaN %#04x re-encoded as %#04x, want %#04x", h, back, want)
			}
			continue
		}
		if back != h {
			t.Fatalf("half %#04x -> %v -> %#04x", h, v, back)
		}
	}
}

// TestDirectRoundingBoundaries pins inputs near binary16 half-ulp
// boundaries where rounding through a float32 intermediate double-rounds
// to the wrong half. These cases fail on the pre-fix converter.
func TestDirectRoundingBoundaries(t *testing.T) {
	exp2 := func(e int) float64 { return math.Ldexp(1, e) }
	tests := []struct {
		name string
		v    float64
		bits uint16
	}{
		// 1 + 2⁻¹¹ is the exact midpoint between 1.0 (0x3c00) and
		// 1+2⁻¹⁰ (0x3c01); the extra 2⁻⁴⁰ pushes it strictly above the
		// midpoint, so RNE must round up. float32 first collapses the
		// value onto the midpoint (2⁻⁴⁰ is below float32's half-ulp at
		// 1.0) and then ties-to-even lands on 0x3c00 — off by one ulp.
		{"just above midpoint rounds up", 1 + exp2(-11) + exp2(-40), 0x3c01},
		{"exact midpoint ties to even", 1 + exp2(-11), 0x3c00},
		{"next interval midpoint ties to even", 1 + 3*exp2(-11), 0x3c02},
		{"just below midpoint rounds down", 1 + exp2(-11) - exp2(-40), 0x3c00},
		{"negative mirror", -(1 + exp2(-11) + exp2(-40)), 0xbc01},
		// Same hazard at the zero/subnormal boundary: 2⁻²⁵ is the exact
		// midpoint between 0 and the smallest subnormal 2⁻²⁴; a hair
		// above it must produce 0x0001, which the float32 detour loses.
		{"subnormal boundary exact tie", exp2(-25), 0x0000},
		{"just above subnormal boundary", exp2(-25) + exp2(-60), 0x0001},
		// Largest-half boundary: 65520 = midpoint(65504, 65536) ties up
		// into the carry → Inf; just below stays at 65504.
		{"overflow midpoint carries to inf", 65520, 0x7c00},
		{"just below overflow midpoint", 65520 - exp2(-20), 0x7bff},
		// Subnormal interior midpoint: 3·2⁻²⁵ = midpoint(2⁻²⁴, 2⁻²³)
		// ties to even (0x0002); just above must round up from the tie.
		{"subnormal midpoint ties to even", 3 * exp2(-25), 0x0002},
		{"subnormal just above midpoint", 3*exp2(-25) + exp2(-70), 0x0002},
		// float64 subnormals underflow to signed zero.
		{"f64 subnormal flushes to zero", exp2(-1030), 0x0000},
		{"negative f64 subnormal keeps sign", -exp2(-1030), 0x8000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Float64ToHalf(tt.v); got != tt.bits {
				t.Errorf("Float64ToHalf(%g) = %#04x, want %#04x", tt.v, got, tt.bits)
			}
		})
	}
}
