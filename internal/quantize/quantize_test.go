package quantize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	tests := []struct {
		name string
		v    float64
		bits uint16
	}{
		{"zero", 0, 0x0000},
		{"neg zero", math.Copysign(0, -1), 0x8000},
		{"one", 1, 0x3c00},
		{"neg one", -1, 0xbc00},
		{"two", 2, 0x4000},
		{"half", 0.5, 0x3800},
		{"max half", 65504, 0x7bff},
		{"smallest normal", 6.103515625e-05, 0x0400},
		{"smallest subnormal", 5.960464477539063e-08, 0x0001},
		{"inf", math.Inf(1), 0x7c00},
		{"neg inf", math.Inf(-1), 0xfc00},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Float64ToHalf(tt.v); got != tt.bits {
				t.Errorf("Float64ToHalf(%v) = %#04x, want %#04x", tt.v, got, tt.bits)
			}
			back := HalfToFloat64(tt.bits)
			if math.IsInf(tt.v, 0) {
				if !math.IsInf(back, int(math.Copysign(1, tt.v))) {
					t.Errorf("HalfToFloat64(%#04x) = %v", tt.bits, back)
				}
				return
			}
			if back != tt.v {
				t.Errorf("HalfToFloat64(%#04x) = %v, want %v", tt.bits, back, tt.v)
			}
		})
	}
}

func TestNaNPreserved(t *testing.T) {
	h := Float64ToHalf(math.NaN())
	if !math.IsNaN(HalfToFloat64(h)) {
		t.Error("NaN not preserved")
	}
}

func TestOverflowSaturates(t *testing.T) {
	if !math.IsInf(RoundTrip(1e6), 1) {
		t.Error("large positive should saturate to +Inf")
	}
	if !math.IsInf(RoundTrip(-1e6), -1) {
		t.Error("large negative should saturate to -Inf")
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := RoundTrip(1e-12); got != 0 {
		t.Errorf("tiny value should flush to 0, got %v", got)
	}
}

func TestRoundTripSlice(t *testing.T) {
	xs := []float64{0.1, -3.25, 100}
	RoundTripSlice(xs)
	if xs[1] != -3.25 {
		t.Error("exactly representable value changed")
	}
	if math.Abs(xs[0]-0.1) > 1e-4 {
		t.Errorf("0.1 quantized too coarsely: %v", xs[0])
	}
}

// Property: round trip is idempotent and the relative error of normal-range
// values is within half precision's 2^-11 bound.
func TestQuickRoundTripError(t *testing.T) {
	f := func(raw float64) bool {
		v := math.Mod(raw, 60000)
		if math.IsNaN(v) {
			v = 1
		}
		q := RoundTrip(v)
		if RoundTrip(q) != q {
			return false // must be idempotent
		}
		if v == 0 {
			return q == 0
		}
		if math.Abs(v) < 6.2e-05 {
			// Subnormal range: absolute error bounded by one subnormal ulp.
			return math.Abs(q-v) <= 6e-8
		}
		return math.Abs(q-v)/math.Abs(v) <= 1.0/2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: quantization is monotone (order-preserving).
func TestQuickMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 60000)
		b = math.Mod(b, 60000)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return RoundTrip(a) <= RoundTrip(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzHalfBits checks that decoding any 16-bit pattern and re-encoding it
// is the identity (modulo NaN payload canonicalization): the fp16 codec
// never corrupts representable values.
func FuzzHalfBits(f *testing.F) {
	for _, seed := range []uint16{0, 1, 0x3c00, 0x7c00, 0x8000, 0xfc00, 0x7e00, 0xffff, 0x0400, 0x7bff} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, h uint16) {
		v := HalfToFloat64(h)
		back := Float64ToHalf(v)
		if math.IsNaN(v) {
			if !math.IsNaN(HalfToFloat64(back)) {
				t.Fatalf("NaN %#04x did not survive round trip (got %#04x)", h, back)
			}
			return
		}
		if back != h {
			t.Fatalf("half bits %#04x -> %v -> %#04x", h, v, back)
		}
	})
}

// FuzzHalfValue checks that arbitrary float64 inputs never panic and
// always produce a representable (or saturated) result.
func FuzzHalfValue(f *testing.F) {
	for _, seed := range []float64{0, 1, -1, 0.1, 65504, 65520, 1e-8, -1e300, math.Inf(1)} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v float64) {
		q := RoundTrip(v)
		if math.IsNaN(v) {
			if !math.IsNaN(q) {
				t.Fatal("NaN lost")
			}
			return
		}
		if RoundTrip(q) != q {
			t.Fatalf("not idempotent: %v -> %v -> %v", v, q, RoundTrip(q))
		}
	})
}
