// Package quantize implements IEEE-754 binary16 (half precision)
// conversion. The paper's §7.7 stacks a Quantization_Manager on top of APF
// that transmits parameters as 16-bit floats (PyTorch's Tensor.half());
// this package provides the identical numeric semantics.
package quantize

import "math"

// Float64ToHalf converts v to the nearest IEEE binary16 value, with
// round-to-nearest-even, returning its 16-bit encoding. Out-of-range values
// saturate to ±Inf; NaN is preserved.
//
// The rounding works directly on the float64 bits. Going through a float32
// intermediate would round twice, and double rounding is not innocent: an
// input just above a binary16 half-ulp boundary can collapse onto the
// boundary in the float32 step and then break the tie the wrong way (e.g.
// 1+2⁻¹¹+2⁻⁴⁰ must round up to 1+2⁻¹⁰ but lands on 1.0 via float32).
func Float64ToHalf(v float64) uint16 {
	b := math.Float64bits(v)
	sign := uint16(b>>48) & 0x8000
	exp := int(b>>52) & 0x7ff
	mant := b & 0xfffffffffffff

	switch {
	case exp == 0x7ff: // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp == 0:
		// float64 subnormals (< 2⁻¹⁰²²) are far below half's smallest
		// subnormal 2⁻²⁴; they (and ±0) underflow to signed zero.
		return sign
	}

	e := exp - 1023 // unbiased exponent
	switch {
	case e >= 16: // ≥ 2¹⁶: past the largest half even before rounding
		return sign | 0x7c00
	case e >= -14:
		// Normal half: keep the top 10 mantissa bits, round on the 42
		// dropped ones. A mantissa carry bumps the exponent, which is the
		// correct result up to and including overflow to Inf (65520
		// rounds to 2¹⁶ → 0x7c00).
		half := sign | uint16(e+15)<<10 | uint16(mant>>42)
		rem := mant & (1<<42 - 1)
		const mid = uint64(1) << 41
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return half
	case e >= -25:
		// Subnormal half: the target is round(|v|·2²⁴) with the implicit
		// leading 1 restored, i.e. (2⁵²|mant) >> (28-e) under RNE. A
		// round-up from 1023 to 1024 lands on the smallest normal half,
		// which the carry again produces naturally. e = -25 covers the
		// boundary with zero: exactly 2⁻²⁵ ties to even (0), anything
		// above it rounds to the smallest subnormal.
		m := mant | 1<<52
		shift := uint(28 - e) // 43 … 53
		half := sign | uint16(m>>shift)
		rem := m & (1<<shift - 1)
		mid := uint64(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return half
	default: // below 2⁻²⁵: closer to zero than to any subnormal
		return sign
	}
}

// HalfToFloat64 decodes a 16-bit IEEE binary16 encoding.
func HalfToFloat64(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	var bits32 uint32
	switch {
	case exp == 0 && mant == 0:
		bits32 = sign
	case exp == 0:
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		bits32 = sign | e<<23 | mant<<13
	case exp == 0x1f:
		bits32 = sign | 0xff<<23 | mant<<13
	default:
		bits32 = sign | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(bits32))
}

// RoundTrip quantizes v through half precision and back, simulating
// transmission of a 16-bit representation.
func RoundTrip(v float64) float64 { return HalfToFloat64(Float64ToHalf(v)) }

// RoundTripSlice quantizes every element of xs in place and returns xs.
func RoundTripSlice(xs []float64) []float64 {
	for i, v := range xs {
		xs[i] = RoundTrip(v)
	}
	return xs
}
