// Package quantize implements IEEE-754 binary16 (half precision)
// conversion. The paper's §7.7 stacks a Quantization_Manager on top of APF
// that transmits parameters as 16-bit floats (PyTorch's Tensor.half());
// this package provides the identical numeric semantics.
package quantize

import "math"

// Float64ToHalf converts v to the nearest IEEE binary16 value, with
// round-to-nearest-even, returning its 16-bit encoding. Out-of-range values
// saturate to ±Inf; NaN is preserved.
func Float64ToHalf(v float64) uint16 {
	b := math.Float32bits(float32(v))
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	mant := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp == 0 && mant == 0:
		return sign
	}

	// Unbias from float32 (127) and rebias for half (15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1f: // overflow → Inf
		return sign | 0x7c00
	case e <= 0:
		// Subnormal half (or underflow to zero).
		if e < -10 {
			return sign
		}
		mant |= 0x800000 // implicit leading 1
		shift := uint32(14 - e)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(e<<10) | uint16(mant>>13)
		// Round to nearest even on the 13 dropped bits.
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++ // may carry into the exponent, which is correct
		}
		return half
	}
}

// HalfToFloat64 decodes a 16-bit IEEE binary16 encoding.
func HalfToFloat64(h uint16) float64 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	var bits32 uint32
	switch {
	case exp == 0 && mant == 0:
		bits32 = sign
	case exp == 0:
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		bits32 = sign | e<<23 | mant<<13
	case exp == 0x1f:
		bits32 = sign | 0xff<<23 | mant<<13
	default:
		bits32 = sign | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(bits32))
}

// RoundTrip quantizes v through half precision and back, simulating
// transmission of a 16-bit representation.
func RoundTrip(v float64) float64 { return HalfToFloat64(Float64ToHalf(v)) }

// RoundTripSlice quantizes every element of xs in place and returns xs.
func RoundTripSlice(xs []float64) []float64 {
	for i, v := range xs {
		xs[i] = RoundTrip(v)
	}
	return xs
}
