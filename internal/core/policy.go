package core

import (
	"fmt"
	"math"
)

// FreezePolicy controls how a parameter's freezing period evolves across
// stability checks. The paper's APF uses the TCP-inspired AIMD policy; the
// alternatives reproduce the §7.5 ablation (Fig. 15).
//
// Periods are measured in rounds. step is the check interval in rounds
// (the paper's Fc expressed in rounds), which is also the additive
// increment, matching Alg. 1's "L += Fc".
type FreezePolicy interface {
	// NextPeriod returns the new freezing period given the previous one
	// and whether the parameter is still stable at this check.
	NextPeriod(prev float64, stable bool, step float64) float64
}

// AIMD additively increases the period while the parameter stays stable and
// multiplicatively decreases it on drift — the paper's Fig. 8 control loop.
type AIMD struct {
	// Decrease is the multiplicative scale-down factor on drift; values
	// ≤ 1 select the paper's default of 2 (halving). §7.8 uses 5 when the
	// check interval is coarsened to 5 rounds.
	Decrease float64
}

var _ FreezePolicy = AIMD{}

// NextPeriod implements FreezePolicy.
func (a AIMD) NextPeriod(prev float64, stable bool, step float64) float64 {
	if stable {
		return prev + step
	}
	d := a.Decrease
	if d <= 1 {
		d = 2
	}
	return clampPeriod(prev / d)
}

// PureAdditive increases and decreases the period additively (Fig. 15's
// "Pure-Additively" arm).
type PureAdditive struct{}

var _ FreezePolicy = PureAdditive{}

// NextPeriod implements FreezePolicy.
func (PureAdditive) NextPeriod(prev float64, stable bool, step float64) float64 {
	if stable {
		return prev + step
	}
	return clampPeriod(prev - step)
}

// PureMultiplicative doubles and halves the period (Fig. 15's
// "Pure-Multiplicatively" arm).
type PureMultiplicative struct{}

var _ FreezePolicy = PureMultiplicative{}

// NextPeriod implements FreezePolicy.
func (PureMultiplicative) NextPeriod(prev float64, stable bool, step float64) float64 {
	if stable {
		if prev < step {
			return step
		}
		return prev * 2
	}
	return clampPeriod(prev / 2)
}

// Fixed freezes every stable parameter for a constant number of stability
// checks (Fig. 15's "Fixed (10)" arm).
type Fixed struct {
	// Checks is the freezing duration in stability checks.
	Checks float64
}

var _ FreezePolicy = Fixed{}

// NextPeriod implements FreezePolicy.
func (f Fixed) NextPeriod(_ float64, stable bool, step float64) float64 {
	if f.Checks <= 0 {
		panic(fmt.Sprintf("core: Fixed policy requires positive Checks, got %v", f.Checks))
	}
	if stable {
		return f.Checks * step
	}
	return 0
}

// Permanent freezes a stable parameter forever — strawman 2 of §4.1
// ("permanent freezing"), which preserves consistency but traps
// temporarily-stable parameters away from their true optima (Fig. 6).
type Permanent struct{}

var _ FreezePolicy = Permanent{}

// NextPeriod implements FreezePolicy with an effectively infinite period.
func (Permanent) NextPeriod(prev float64, stable bool, _ float64) float64 {
	if stable {
		return math.MaxInt32 // far beyond any experiment's round count
	}
	return prev
}

// clampPeriod snaps sub-round periods to zero: a period shorter than one
// round cannot freeze anything.
func clampPeriod(p float64) float64 {
	if p < 1 {
		return 0
	}
	return p
}
