// Package core implements Adaptive Parameter Freezing (APF) — the paper's
// contribution — as a client-side synchronization manager. It identifies
// stable ("mature") scalars by their effective perturbation, freezes them
// at their last synchronized value for adaptively controlled periods, and
// excludes them from both the push and pull phases of synchronization.
//
// The manager mirrors the paper's Alg. 1 / Fig. 8 / Fig. 10 design:
//
//   - Fine-grained (per-scalar) freezing is emulated by rolling frozen
//     scalars back after every local update (PostIterate).
//   - Every synchronization exchanges only the unfrozen scalars; the
//     freezing bitmap M_is_frozen is computed independently on every
//     client from synchronized state, so it never crosses the wire and is
//     identical everywhere.
//   - Stability is checked once every Fc rounds from the accumulated
//     update since the previous check, smoothed with exponential moving
//     averages (Eq. 17).
//   - Freezing periods follow a pluggable FreezePolicy; the default AIMD
//     policy additively lengthens the period while a parameter remains
//     stable after unfreezing and halves it when the parameter drifts.
//     (Alg. 1's tensor-selection formulation applies its updates to all
//     parameters each check; as in the paper's authoritative Fig. 8
//     flowchart, a frozen parameter's period must only be re-adjusted
//     after it has resumed training, so checks here skip still-frozen
//     scalars.)
//   - The stability threshold halves whenever the frozen fraction reaches
//     ThresholdDecayFrac (§6.1, "stability threshold decay").
//   - APF# and APF++ additionally freeze random unstable scalars
//     (§5), with a fixed or a growing probability/length respectively.
package core

import (
	"fmt"
	"math"

	"apf/internal/bitset"
	"apf/internal/perturb"
	"apf/internal/stats"
)

// RandomFreezeMode selects the §5 extension behaviour.
type RandomFreezeMode int

// Random-freezing modes.
const (
	// RandomOff disables random freezing (standard APF).
	RandomOff RandomFreezeMode = iota + 1
	// RandomFixed is APF#: every unstable scalar is frozen for one round
	// with a fixed probability.
	RandomFixed
	// RandomGrowing is APF++: the freezing probability is a1·K and the
	// freezing length is drawn from U[1, 1+a2·K], K being the round.
	RandomGrowing
)

// RandomFreeze configures APF# / APF++.
type RandomFreeze struct {
	Mode RandomFreezeMode
	// Prob is APF#'s fixed freezing probability (paper: 0.5).
	Prob float64
	// ProbGrowth is APF++'s a1 (probability = a1·K, capped at 1).
	ProbGrowth float64
	// LenGrowth is APF++'s a2 (length ~ U[1, 1+a2·K] rounds).
	LenGrowth float64
}

// Config parameterizes a Manager.
type Config struct {
	// Dim is the flat model length.
	Dim int
	// CheckEveryRounds is the stability-check interval Fc expressed in
	// rounds (the paper's default Fs=10, Fc=50 gives 5).
	CheckEveryRounds int
	// Threshold is the initial stability threshold on effective
	// perturbation (paper: 0.05).
	Threshold float64
	// ThresholdDecayFrac halves Threshold whenever at least this fraction
	// of parameters is frozen (paper: 0.8). 0 disables decay.
	ThresholdDecayFrac float64
	// EMAAlpha is the effective-perturbation smoothing factor (paper: 0.99).
	EMAAlpha float64
	// BytesPerValue is the wire size of one transmitted scalar (paper: 4,
	// i.e. float32).
	BytesPerValue int
	// Policy controls freezing periods; nil selects AIMD.
	Policy FreezePolicy
	// Random configures the APF#/APF++ extensions; zero value disables.
	Random RandomFreeze
	// Seed drives the shared random-freezing stream. All clients must use
	// the same seed so their masks agree (decisions are a deterministic
	// function of (Seed, check index), never of client state).
	Seed int64
	// Observer receives freezing-state events; nil disables. Implementations
	// must be cheap and must not call back into the Manager — they run
	// synchronously on the round hot path, which stays allocation-free
	// (scalar arguments only, no boxing).
	Observer Observer
}

// Observer is the narrow instrumentation hook through which external
// telemetry watches a Manager. core deliberately defines the interface
// itself and carries no metrics dependency; the adapter lives with the
// telemetry plane and is injected via Config.Observer.
type Observer interface {
	// RoundApplied fires once per ApplyDownload with the freezing state
	// that governed the round: frozen scalars out of dim total.
	RoundApplied(round, frozen, dim int)
	// StabilityChecked fires after stability check number check (1-based)
	// ran at round, having newly frozen the given number of scalars by
	// stability (random freezing not included).
	StabilityChecked(check, round, frozen int)
	// ThresholdDecayed fires when the stability threshold halves,
	// reporting the new threshold.
	ThresholdDecayed(threshold float64)
}

// withDefaults fills unset fields with the paper's defaults.
func (c Config) withDefaults() Config {
	if c.CheckEveryRounds == 0 {
		c.CheckEveryRounds = 5
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	if c.ThresholdDecayFrac == 0 {
		c.ThresholdDecayFrac = 0.8
	}
	if c.EMAAlpha == 0 {
		c.EMAAlpha = 0.99
	}
	if c.BytesPerValue == 0 {
		c.BytesPerValue = 4
	}
	if c.Policy == nil {
		c.Policy = AIMD{}
	}
	if c.Random.Mode == 0 {
		c.Random.Mode = RandomOff
	}
	return c
}

// Manager is the per-client APF synchronization manager (the paper's
// APF_Manager module). It implements the fl.SyncManager contract.
type Manager struct {
	cfg Config

	ref       []float64 // last synchronized values: rollback targets
	lastCheck []float64 // values at the previous stability check
	tracker   *perturb.EMATracker

	period      []float64 // AIMD state, in rounds
	unfreezeAt  []int     // round at which stability freezing expires
	randomUntil []int     // round at which random freezing expires

	mask      *bitset.BitSet // frozen scalars for maskRound
	maskRound int
	// maskCount is the set-bit count of mask (cached with each rebuild).
	maskCount int
	// maskValidUntil is the last round (inclusive) for which the current
	// mask words stay correct: freezing deadlines only change at stability
	// checks, so between checks the mask is static until the earliest
	// frozen scalar's deadline expires. Rounds inside the window skip the
	// O(Dim) rebuild entirely.
	maskValidUntil int

	// wordGen tracks, per 64-scalar word, round+1 of the last round
	// that mutated any synchronized state in it (0 = never). See
	// recon.go for the touch-site inventory and the replica-identity
	// invariant it maintains.
	wordGen []uint32

	threshold   float64
	checkCount  int
	initialized bool
	initRound   int
	// lastRound is the most recent round observed by ApplyDownload; lazy
	// mask refreshes (FrozenRatio/MaskWords after a check reset) derive
	// their round from it rather than guessing from the check count.
	lastRound int

	// Hot-path scratch, lazily sized to Dim and reused every round so
	// steady-state rounds allocate nothing. Each buffer backs the return
	// value of exactly one method; see the method contracts.
	contribBuf []float64 // PrepareUpload
	deltaBuf   []float64 // stabilityCheck
	compactBuf []float64 // CompactUpload
	denseBuf   []float64 // ExpandDownload
}

// NewManager constructs an APF manager.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		panic(fmt.Sprintf("core: invalid model dimension %d", cfg.Dim))
	}
	if cfg.CheckEveryRounds <= 0 {
		panic(fmt.Sprintf("core: invalid check interval %d", cfg.CheckEveryRounds))
	}
	m := &Manager{
		cfg:            cfg,
		ref:            make([]float64, cfg.Dim),
		lastCheck:      make([]float64, cfg.Dim),
		tracker:        perturb.NewEMATracker(cfg.Dim, cfg.EMAAlpha),
		period:         make([]float64, cfg.Dim),
		unfreezeAt:     make([]int, cfg.Dim),
		randomUntil:    make([]int, cfg.Dim),
		mask:           bitset.New(cfg.Dim),
		wordGen:        make([]uint32, (cfg.Dim+63)/64),
		maskRound:      -1,
		maskValidUntil: -1,
		threshold:      cfg.Threshold,
		initRound:      -1,
		lastRound:      -1,
	}
	return m
}

// frozenAt reports whether scalar j is frozen during the given round.
func (m *Manager) frozenAt(j, round int) bool {
	return round < m.unfreezeAt[j] || round < m.randomUntil[j]
}

// refreshMask makes the freezing bitmap current for round. Scalars only
// gain freezing deadlines at stability checks (which invalidate the mask
// outright), so a mask built for an earlier round stays correct until the
// first frozen deadline expires; advancing inside that window is O(1).
func (m *Manager) refreshMask(round int) {
	if m.maskRound == round {
		return
	}
	if m.maskRound >= 0 && round > m.maskRound && round <= m.maskValidUntil {
		m.maskRound = round
		return
	}
	count := 0
	validUntil := math.MaxInt
	m.mask.Fill(func(j int) bool {
		u, r := m.unfreezeAt[j], m.randomUntil[j]
		if round < u || round < r {
			count++
			if u < r {
				u = r
			}
			if u < validUntil {
				validUntil = u // scalar j unfreezes at round u
			}
			return true
		}
		return false
	})
	m.maskRound = round
	m.maskCount = count
	m.maskValidUntil = validUntil - 1
}

// PostIterate rolls frozen scalars back to their last synchronized values,
// emulating per-scalar freezing exactly as the paper does atop PyTorch
// (Alg. 1 line 2).
func (m *Manager) PostIterate(round int, x []float64) {
	m.checkDim(x)
	m.refreshMask(round)
	if m.maskCount == 0 {
		return
	}
	m.mask.ApplyMasked(x, m.ref)
}

// PrepareUpload packages the contribution for server aggregation. Frozen
// entries carry their (cluster-wide identical) frozen values and cost no
// bandwidth; only the unfrozen scalars are counted as pushed bytes.
//
// The returned slice is a manager-owned scratch buffer, overwritten by the
// next PrepareUpload call; it never aliases x.
func (m *Manager) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	m.checkDim(x)
	m.refreshMask(round)
	if m.contribBuf == nil {
		m.contribBuf = make([]float64, m.cfg.Dim)
	}
	m.mask.ApplyUnmasked(m.contribBuf, x)
	if m.maskCount > 0 {
		m.mask.ApplyMasked(m.contribBuf, m.ref)
	}
	unfrozen := m.cfg.Dim - m.maskCount
	return m.contribBuf, 1, int64(unfrozen) * int64(m.cfg.BytesPerValue)
}

// ApplyDownload merges the aggregated unfrozen scalars into the local
// model (pull phase, also mask-compressed) and, on check boundaries, runs
// the stability check that adjusts freezing state for the next rounds.
func (m *Manager) ApplyDownload(round int, x, global []float64) int64 {
	m.checkDim(x)
	m.checkDim(global)
	m.refreshMask(round)
	m.lastRound = round
	m.mask.ApplyUnmasked(x, global)
	m.mask.ApplyUnmasked(m.ref, global)
	if m.maskCount > 0 {
		m.mask.ApplyMasked(x, m.ref)
	}
	unfrozen := m.cfg.Dim - m.maskCount
	if m.cfg.Observer != nil {
		// Report the mask that governed this round now: the stability
		// check below may invalidate it (maskRound = -1) for lazy rebuild.
		m.cfg.Observer.RoundApplied(round, m.maskCount, m.cfg.Dim)
	}
	if !m.initialized {
		// Seed the check baseline from *synchronized* state: every
		// client sees the identical post-aggregation vector here, which
		// is what keeps M_is_frozen identical across the cluster. (A
		// baseline taken from a client's own local updates would differ
		// per client and let masks diverge.)
		copy(m.lastCheck, x)
		m.initialized = true
		m.initRound = round
	}
	if round == m.initRound {
		// The initializing download seeds x, ref, and the check
		// baseline everywhere: every word is touched.
		g := uint32(round + 1)
		for w := range m.wordGen {
			m.wordGen[w] = g
		}
	} else {
		m.touchUnfrozenWords(round)
	}
	// Run the stability check on check boundaries — but never on the
	// round that seeded the baseline, whose accumulated delta would be
	// degenerate and misread as stability.
	if round > m.initRound && (round+1)%m.cfg.CheckEveryRounds == 0 {
		m.stabilityCheck(round, x)
	}
	return int64(unfrozen) * int64(m.cfg.BytesPerValue)
}

// stabilityCheck implements Alg. 1's StabilityCheck with the Fig. 8
// semantics: only scalars that trained since the last check are
// re-assessed; stable ones are (re-)frozen with policy-controlled periods,
// and the random-freezing extensions add their masks on top.
func (m *Manager) stabilityCheck(round int, x []float64) {
	m.checkCount++
	// The caller (ApplyDownload) refreshed the mask for this round, so the
	// bitmap is exactly the frozen-now set; every loop below iterates it
	// word-level instead of re-deriving per-scalar freezing.
	if m.deltaBuf == nil {
		m.deltaBuf = make([]float64, m.cfg.Dim)
	}
	delta := m.deltaBuf
	for j := range delta {
		delta[j] = x[j] - m.lastCheck[j]
	}
	m.tracker.ObserveUnfrozen(delta, m.mask)

	step := float64(m.cfg.CheckEveryRounds)
	m.mask.IterateClear(func(j int) {
		p := m.tracker.Perturbation(j)
		stable := p < m.threshold
		m.period[j] = m.cfg.Policy.NextPeriod(m.period[j], stable, step)
		if stable && m.period[j] >= 1 {
			m.unfreezeAt[j] = round + 1 + int(m.period[j])
			m.ref[j] = x[j]
		} else {
			m.unfreezeAt[j] = 0
		}
	})

	m.applyRandomFreezing(round)
	// Refresh the check baseline, tracking which words it actually
	// changes bit-wise: frozen rollback can move lastCheck inside words
	// that are fully frozen this round (a randomly-frozen scalar whose
	// x rolled back to ref since the last check), which the unfrozen
	// touch above cannot see.
	gen := uint32(round + 1)
	for j := range x {
		if math.Float64bits(m.lastCheck[j]) != math.Float64bits(x[j]) {
			m.lastCheck[j] = x[j]
			m.wordGen[j>>6] = gen
		}
	}

	// Threshold decay (§6.1): halve once most parameters are frozen by
	// *stability*. Randomly frozen scalars (APF#/APF++) say nothing about
	// stability — under APF++ the freezing probability approaches 1, so
	// counting them would fire the decay on nearly every check and drive
	// the threshold to zero regardless of actual parameter maturity.
	// The observer wants the same stability-frozen count, so one pass
	// serves both.
	if m.cfg.ThresholdDecayFrac > 0 || m.cfg.Observer != nil {
		frozen := 0
		for j := 0; j < m.cfg.Dim; j++ {
			if round+1 < m.unfreezeAt[j] {
				frozen++
			}
		}
		if m.cfg.ThresholdDecayFrac > 0 &&
			float64(frozen) >= m.cfg.ThresholdDecayFrac*float64(m.cfg.Dim) {
			m.threshold /= 2
			if m.cfg.Observer != nil {
				m.cfg.Observer.ThresholdDecayed(m.threshold)
			}
		}
		if m.cfg.Observer != nil {
			m.cfg.Observer.StabilityChecked(m.checkCount, round, frozen)
		}
	}
	m.maskRound = -1 // mask changed; recompute lazily
}

// applyRandomFreezing implements APF# / APF++ (§5). Decisions derive from
// (Seed, checkCount) only, so every client freezes the same scalars.
func (m *Manager) applyRandomFreezing(round int) {
	rf := m.cfg.Random
	if rf.Mode == RandomOff {
		return
	}
	var prob float64
	switch rf.Mode {
	case RandomFixed:
		prob = rf.Prob
	case RandomGrowing:
		prob = rf.ProbGrowth * float64(round+1)
	default:
		panic(fmt.Sprintf("core: unknown random freeze mode %d", rf.Mode))
	}
	if prob <= 0 {
		return
	}
	if prob > 1 {
		prob = 1
	}
	rng := stats.SplitRNG(m.cfg.Seed, int64(m.checkCount))
	for j := 0; j < m.cfg.Dim; j++ {
		if round+1 < m.unfreezeAt[j] {
			continue // already frozen by stability or a previous draw
		}
		if rng.Float64() >= prob {
			continue
		}
		length := 1
		if rf.Mode == RandomGrowing {
			maxLen := 1 + rf.LenGrowth*float64(round+1)
			length = 1 + int(rng.Float64()*math.Max(0, maxLen-1))
		}
		m.randomUntil[j] = round + 1 + length
		// Random freezing can hit otherwise fully-frozen words.
		m.wordGen[j>>6] = uint32(round + 1)
	}
}

// CompactUpload extracts the unfrozen scalars of a dense contribution, in
// index order — the compact tensor of Alg. 1 line 4 (masked_select) that
// actually crosses the wire.
//
// The returned slice is a manager-owned scratch buffer, overwritten by the
// next CompactUpload call.
func (m *Manager) CompactUpload(round int, contrib []float64) []float64 {
	m.checkDim(contrib)
	m.refreshMask(round)
	if cap(m.compactBuf) < m.cfg.Dim {
		m.compactBuf = make([]float64, 0, m.cfg.Dim)
	}
	m.compactBuf = m.mask.GatherUnmasked(m.compactBuf[:0], contrib)
	return m.compactBuf
}

// ExpandDownload reconstructs the dense global vector from an aggregated
// compact payload (Alg. 1 line 6, masked_fill), filling frozen entries from
// the local reference values — which are identical on every client.
//
// The returned slice is a manager-owned scratch buffer, overwritten by the
// next ExpandDownload call.
func (m *Manager) ExpandDownload(round int, compact []float64) []float64 {
	m.refreshMask(round)
	unfrozen := m.cfg.Dim - m.maskCount
	if len(compact) != unfrozen {
		panic(fmt.Sprintf("core: compact payload length %d, want %d unfrozen scalars", len(compact), unfrozen))
	}
	if m.denseBuf == nil {
		m.denseBuf = make([]float64, m.cfg.Dim)
	}
	m.mask.ScatterUnmasked(m.denseBuf, compact, m.ref)
	return m.denseBuf
}

// CompactLen returns the compact payload length for the given round (the
// unfrozen-scalar count) without building the payload — transports use it
// to validate an incoming compact aggregate before expanding it.
func (m *Manager) CompactLen(round int) int {
	m.refreshMask(round)
	return m.cfg.Dim - m.maskCount
}

// FrozenRatio returns the fraction of scalars frozen in the most recently
// observed round.
func (m *Manager) FrozenRatio() float64 {
	if m.maskRound < 0 {
		m.refreshMask(m.lastKnownRound())
	}
	return m.mask.Ratio()
}

// lastKnownRound picks a round for lazy mask refreshes triggered outside
// the engine's call sequence (FrozenRatio/MaskWords right after a check
// reset the mask). The mask then in force is the one governing the round
// after the synchronization ApplyDownload last actually observed — the
// same mask the §9 server placement ships to its clients. It is derived
// from that observed round, NOT guessed as checkCount·CheckEveryRounds:
// the guess undercounts whenever the first check was delayed past
// initRound (e.g. a client joining late under partial participation) and
// then reports freezing deadlines that have in fact already expired.
func (m *Manager) lastKnownRound() int {
	if m.maskRound >= 0 {
		return m.maskRound
	}
	if m.lastRound >= 0 {
		return m.lastRound + 1
	}
	return 0
}

// MaskWords exposes the freezing bitmap for cross-client consistency
// checks.
func (m *Manager) MaskWords() []uint64 {
	if m.maskRound < 0 {
		m.refreshMask(m.lastKnownRound())
	}
	return m.mask.Words()
}

// Threshold returns the current (possibly decayed) stability threshold.
func (m *Manager) Threshold() float64 { return m.threshold }

// Checks returns how many stability checks have run.
func (m *Manager) Checks() int { return m.checkCount }

// MaskGeneration returns the freezing mask's generation: the number of
// stability checks that have shaped it. Two deterministic replicas hold
// the same mask exactly when their generations and mask words agree, so
// transports ship the generation as a cheap divergence tripwire alongside
// the mask hash (fl.MaskGenerationReporter).
func (m *Manager) MaskGeneration() int { return m.checkCount }

// checkDim panics when a vector of the wrong length reaches the manager.
func (m *Manager) checkDim(x []float64) {
	if len(x) != m.cfg.Dim {
		panic(fmt.Sprintf("core: vector length %d does not match model dimension %d", len(x), m.cfg.Dim))
	}
}
