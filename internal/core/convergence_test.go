package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestConvergenceOnNoisyQuadratic validates the paper's Theorem 2
// empirically on a strongly convex objective: noisy gradient descent on
// F(x) = ½‖x−θ*‖² run through the APF protocol still converges to the
// optimum — freezing periods delay but cannot prevent convergence, because
// drifting (unconverged) coordinates are unfrozen multiplicatively fast.
func TestConvergenceOnNoisyQuadratic(t *testing.T) {
	// lr > 1 overshoots the quadratic's optimum each step (still a
	// contraction since |1−lr| < 1), so stationary updates genuinely
	// oscillate — the regime APF freezes.
	const (
		dim    = 50
		rounds = 400
		lr     = 1.2
		noise  = 0.05
	)
	rng := rand.New(rand.NewSource(5))
	target := make([]float64, dim)
	for j := range target {
		target[j] = rng.NormFloat64() * 3
	}

	m := NewManager(Config{
		Dim:              dim,
		CheckEveryRounds: 2,
		Threshold:        0.2,
		EMAAlpha:         0.9,
		Seed:             5,
	})
	x := make([]float64, dim) // start at 0

	for round := 0; round < rounds; round++ {
		// One SGD step per round: ∇F = (x − θ*) + noise.
		for j := range x {
			g := (x[j] - target[j]) + noise*rng.NormFloat64()
			x[j] -= lr * g
		}
		m.PostIterate(round, x)
		contrib, _, _ := m.PrepareUpload(round, x)
		m.ApplyDownload(round, x, contrib)
	}

	// ‖x − θ*‖ must shrink to the noise floor (Theorem 2's stationary
	// term), far below the initial gap ‖θ*‖ ≈ 3·√dim ≈ 21.
	gap := 0.0
	for j := range x {
		gap += (x[j] - target[j]) * (x[j] - target[j])
	}
	gap = math.Sqrt(gap)
	if gap > 1.0 {
		t.Errorf("APF-constrained SGD stalled at distance %v from the optimum", gap)
	}

	// And the converged coordinates must be largely frozen by the end —
	// otherwise APF provided no compression on a converged model.
	if m.FrozenRatio() < 0.3 {
		t.Errorf("frozen ratio %v at convergence; expected substantial freezing", m.FrozenRatio())
	}
}

// TestFreezingDoesNotTrapDriftingOptimum moves the optimum mid-run: APF
// must release frozen parameters and track the new optimum (the Fig. 7/8
// temporary-stabilization behaviour, end to end).
func TestFreezingDoesNotTrapDriftingOptimum(t *testing.T) {
	const (
		dim    = 20
		lr     = 0.3
		noise  = 0.02
		phase1 = 150
		phase2 = 250
	)
	rng := rand.New(rand.NewSource(9))
	target := make([]float64, dim)
	for j := range target {
		target[j] = 1
	}

	m := NewManager(Config{
		Dim:              dim,
		CheckEveryRounds: 2,
		Threshold:        0.2,
		EMAAlpha:         0.9,
		Seed:             9,
	})
	x := make([]float64, dim)
	step := func(round int) {
		for j := range x {
			g := (x[j] - target[j]) + noise*rng.NormFloat64()
			x[j] -= lr * g
		}
		m.PostIterate(round, x)
		contrib, _, _ := m.PrepareUpload(round, x)
		m.ApplyDownload(round, x, contrib)
	}

	for round := 0; round < phase1; round++ {
		step(round)
	}
	if m.FrozenRatio() < 0.3 {
		t.Fatalf("precondition: expected freezing after phase 1, got %v", m.FrozenRatio())
	}

	// The landscape shifts: every coordinate's optimum moves to −2.
	for j := range target {
		target[j] = -2
	}
	for round := phase1; round < phase1+phase2; round++ {
		step(round)
	}

	gap := 0.0
	for j := range x {
		gap += (x[j] - target[j]) * (x[j] - target[j])
	}
	gap = math.Sqrt(gap)
	if gap > 1.0 {
		t.Errorf("APF trapped parameters after the optimum moved: distance %v", gap)
	}
}
