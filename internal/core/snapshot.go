package core

import (
	"fmt"

	"apf/internal/perturb"
)

// State is a serializable snapshot of a Manager (all fields exported for
// encoding/gob), enabling client checkpoint/restart in real deployments:
// a restored manager continues the freezing protocol exactly where the
// original left off, preserving cross-client mask consistency.
type State struct {
	Dim         int
	Ref         []float64
	LastCheck   []float64
	Tracker     perturb.EMAState
	Period      []float64
	UnfreezeAt  []int
	RandomUntil []int
	Threshold   float64
	CheckCount  int
	Initialized bool
	InitRound   int
	// LastRound is the most recent round observed by ApplyDownload (-1
	// before the first download).
	LastRound int
}

// Snapshot captures the manager's full protocol state. The configuration
// (policy, thresholds schedule, random-freezing mode) is not part of the
// snapshot; Restore must be given the same Config the original manager
// was built with.
func (m *Manager) Snapshot() *State {
	return &State{
		Dim:         m.cfg.Dim,
		Ref:         append([]float64(nil), m.ref...),
		LastCheck:   append([]float64(nil), m.lastCheck...),
		Tracker:     m.tracker.Snapshot(),
		Period:      append([]float64(nil), m.period...),
		UnfreezeAt:  append([]int(nil), m.unfreezeAt...),
		RandomUntil: append([]int(nil), m.randomUntil...),
		Threshold:   m.threshold,
		CheckCount:  m.checkCount,
		Initialized: m.initialized,
		InitRound:   m.initRound,
		LastRound:   m.lastRound,
	}
}

// Restore reconstructs a manager from cfg and a snapshot taken from a
// manager built with an identical cfg.
func Restore(cfg Config, s *State) (*Manager, error) {
	cfg = cfg.withDefaults()
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if cfg.Dim == 0 {
		cfg.Dim = s.Dim
	}
	if cfg.Dim != s.Dim {
		return nil, fmt.Errorf("core: snapshot dimension %d does not match config dimension %d", s.Dim, cfg.Dim)
	}
	for name, n := range map[string]int{
		"Ref":         len(s.Ref),
		"LastCheck":   len(s.LastCheck),
		"Period":      len(s.Period),
		"UnfreezeAt":  len(s.UnfreezeAt),
		"RandomUntil": len(s.RandomUntil),
	} {
		if n != s.Dim {
			return nil, fmt.Errorf("core: snapshot field %s has length %d, want %d", name, n, s.Dim)
		}
	}
	tracker, err := perturb.RestoreEMATracker(s.Tracker)
	if err != nil {
		return nil, fmt.Errorf("core: restore tracker: %w", err)
	}
	if tracker.Dim() != s.Dim {
		return nil, fmt.Errorf("core: snapshot tracker dimension %d, want %d", tracker.Dim(), s.Dim)
	}

	m := NewManager(cfg)
	copy(m.ref, s.Ref)
	copy(m.lastCheck, s.LastCheck)
	m.tracker = tracker
	copy(m.period, s.Period)
	copy(m.unfreezeAt, s.UnfreezeAt)
	copy(m.randomUntil, s.RandomUntil)
	m.threshold = s.Threshold
	m.checkCount = s.CheckCount
	m.initialized = s.Initialized
	m.initRound = s.InitRound
	m.lastRound = s.LastRound
	if !s.Initialized {
		m.lastRound = -1 // snapshots predating LastRound decode it as 0
	}
	m.maskRound = -1
	return m, nil
}
