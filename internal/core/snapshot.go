package core

import (
	"fmt"

	"apf/internal/perturb"
)

// State is a serializable snapshot of a Manager (all fields exported for
// encoding/gob), enabling client checkpoint/restart in real deployments:
// a restored manager continues the freezing protocol exactly where the
// original left off, preserving cross-client mask consistency.
type State struct {
	Dim         int
	Ref         []float64
	LastCheck   []float64
	Tracker     perturb.EMAState
	Period      []float64
	UnfreezeAt  []int
	RandomUntil []int
	Threshold   float64
	CheckCount  int
	Initialized bool
	InitRound   int
	// LastRound is the most recent round observed by ApplyDownload (-1
	// before the first download).
	LastRound int
	// WordGen is the per-word generation vector (see recon.go). Nil in
	// snapshots predating reconciliation; restore then stamps every
	// word with the last observed round, which over-reports the diff
	// (conservative: extra words reconcile, none are missed).
	WordGen []uint32
}

// Snapshot captures the manager's full protocol state. The configuration
// (policy, thresholds schedule, random-freezing mode) is not part of the
// snapshot; Restore must be given the same Config the original manager
// was built with.
func (m *Manager) Snapshot() *State {
	return &State{
		Dim:         m.cfg.Dim,
		Ref:         append([]float64(nil), m.ref...),
		LastCheck:   append([]float64(nil), m.lastCheck...),
		Tracker:     m.tracker.Snapshot(),
		Period:      append([]float64(nil), m.period...),
		UnfreezeAt:  append([]int(nil), m.unfreezeAt...),
		RandomUntil: append([]int(nil), m.randomUntil...),
		Threshold:   m.threshold,
		CheckCount:  m.checkCount,
		Initialized: m.initialized,
		InitRound:   m.initRound,
		LastRound:   m.lastRound,
		WordGen:     append([]uint32(nil), m.wordGen...),
	}
}

// Restore reconstructs a manager from cfg and a snapshot taken from a
// manager built with an identical cfg.
func Restore(cfg Config, s *State) (*Manager, error) {
	cfg = cfg.withDefaults()
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if cfg.Dim == 0 {
		cfg.Dim = s.Dim
	}
	if cfg.Dim != s.Dim {
		return nil, fmt.Errorf("core: snapshot dimension %d does not match config dimension %d", s.Dim, cfg.Dim)
	}
	m := NewManager(cfg)
	if err := m.RestoreSnapshot(s); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreSnapshot overwrites the manager's full protocol state in
// place from a snapshot of a manager built with an identical Config.
// It is the snapshot-catch-up entry point: a returning client adopts
// the coordinator's shadow state wholesale instead of replaying every
// missed round.
func (m *Manager) RestoreSnapshot(s *State) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	if s.Dim != m.cfg.Dim {
		return fmt.Errorf("core: snapshot dimension %d does not match manager dimension %d", s.Dim, m.cfg.Dim)
	}
	for name, n := range map[string]int{
		"Ref":         len(s.Ref),
		"LastCheck":   len(s.LastCheck),
		"Period":      len(s.Period),
		"UnfreezeAt":  len(s.UnfreezeAt),
		"RandomUntil": len(s.RandomUntil),
	} {
		if n != s.Dim {
			return fmt.Errorf("core: snapshot field %s has length %d, want %d", name, n, s.Dim)
		}
	}
	if s.WordGen != nil && len(s.WordGen) != len(m.wordGen) {
		return fmt.Errorf("core: snapshot word-gen length %d, want %d", len(s.WordGen), len(m.wordGen))
	}
	tracker, err := perturb.RestoreEMATracker(s.Tracker)
	if err != nil {
		return fmt.Errorf("core: restore tracker: %w", err)
	}
	if tracker.Dim() != s.Dim {
		return fmt.Errorf("core: snapshot tracker dimension %d, want %d", tracker.Dim(), s.Dim)
	}

	copy(m.ref, s.Ref)
	copy(m.lastCheck, s.LastCheck)
	m.tracker = tracker
	copy(m.period, s.Period)
	copy(m.unfreezeAt, s.UnfreezeAt)
	copy(m.randomUntil, s.RandomUntil)
	m.threshold = s.Threshold
	m.checkCount = s.CheckCount
	m.initialized = s.Initialized
	m.initRound = s.InitRound
	m.lastRound = s.LastRound
	if !s.Initialized {
		m.lastRound = -1 // snapshots predating LastRound decode it as 0
	}
	switch {
	case s.WordGen != nil:
		copy(m.wordGen, s.WordGen)
	case s.Initialized:
		// Legacy snapshot: stamp everything as last-touched now so a
		// later reconciliation over-reports rather than misses.
		g := uint32(s.LastRound + 1)
		for w := range m.wordGen {
			m.wordGen[w] = g
		}
	default:
		for w := range m.wordGen {
			m.wordGen[w] = 0
		}
	}
	m.maskRound = -1
	return nil
}
