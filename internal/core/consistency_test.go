package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMaskConsistencyAcrossClients is the paper's central systems
// invariant as a property test: N managers that observe identical
// synchronized state (but arbitrary private local updates) always compute
// identical freezing masks, for random configurations and update streams —
// including the APF# / APF++ random-freezing modes.
func TestQuickMaskConsistencyAcrossClients(t *testing.T) {
	f := func(seed int64, dimRaw, roundsRaw, modeRaw uint8) bool {
		dim := int(dimRaw%32) + 1
		rounds := int(roundsRaw%40) + 5
		mode := RandomFreezeMode(int(modeRaw)%3) + 1 // Off, Fixed, Growing

		cfg := Config{
			Dim:              dim,
			CheckEveryRounds: 1 + int(seed)&1,
			Threshold:        0.3,
			EMAAlpha:         0.85,
			Seed:             seed,
			Random: RandomFreeze{
				Mode:       mode,
				Prob:       0.4,
				ProbGrowth: 0.02,
				LenGrowth:  0.1,
			},
		}
		const clients = 3
		managers := make([]*Manager, clients)
		xs := make([][]float64, clients)
		rngs := make([]*rand.Rand, clients)
		for c := 0; c < clients; c++ {
			managers[c] = NewManager(cfg)
			xs[c] = make([]float64, dim)
			rngs[c] = rand.New(rand.NewSource(seed + int64(c)*1000))
		}

		for round := 0; round < rounds; round++ {
			contribs := make([][]float64, clients)
			for c := 0; c < clients; c++ {
				// Private local updates: different on every client.
				for j := range xs[c] {
					xs[c][j] += rngs[c].NormFloat64() * 0.1
				}
				managers[c].PostIterate(round, xs[c])
				contrib, _, _ := managers[c].PrepareUpload(round, xs[c])
				contribs[c] = contrib
			}
			global := make([]float64, dim)
			for c := 0; c < clients; c++ {
				for j := range global {
					global[j] += contribs[c][j] / clients
				}
			}
			for c := 0; c < clients; c++ {
				managers[c].ApplyDownload(round, xs[c], global)
			}
			// Masks and local models must agree exactly after every round.
			w0 := managers[0].MaskWords()
			for c := 1; c < clients; c++ {
				wc := managers[c].MaskWords()
				for i := range w0 {
					if w0[i] != wc[i] {
						return false
					}
				}
				for j := range xs[0] {
					if xs[c][j] != xs[0][j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompactCodecRoundTrip: for any freezing state, compacting an
// upload and expanding it back reconstructs the dense vector exactly
// (frozen entries from refs, unfrozen from the payload).
func TestQuickCompactCodecRoundTrip(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw%64) + 1
		m := NewManager(Config{
			Dim:              dim,
			CheckEveryRounds: 1,
			Threshold:        0.5,
			EMAAlpha:         0.8,
			Seed:             seed,
		})
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, dim)
		for round := 0; round < 12; round++ {
			for j := range x {
				if j%2 == 0 {
					x[j] += float64(1 - 2*(round%2)) // oscillates → freezes
				} else {
					x[j] += rng.NormFloat64()
				}
			}
			m.PostIterate(round, x)
			contrib, _, _ := m.PrepareUpload(round, x)

			compact := m.CompactUpload(round, contrib)
			expanded := m.ExpandDownload(round, compact)
			for j := range contrib {
				if expanded[j] != contrib[j] {
					return false
				}
			}
			m.ApplyDownload(round, x, contrib)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
