package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// driveRounds advances a manager through rounds [from, to) the way the
// transport does — PostIterate, a deterministic pseudo-training step,
// PrepareUpload, ApplyDownload of a deterministic "aggregate" — and
// returns the canonical post-ApplyDownload model. The aggregate is a
// pure function of (round, j), so any two managers driven over the
// same rounds are bit-exact replicas.
func driveRounds(m *Manager, x []float64, from, to int) []float64 {
	for round := from; round < to; round++ {
		m.PostIterate(round, x)
		for j := range x {
			x[j] += math.Sin(float64(round*31+j)) * 0.1
		}
		m.PostIterate(round, x)
		m.PrepareUpload(round, x)
		global := make([]float64, len(x))
		for j := range global {
			// An oscillating aggregate: per-check deltas alternate sign,
			// effective perturbation collapses, and scalars freeze — with
			// the oscillation amplitude varying by word so different words
			// freeze and thaw on different schedules. Whole words go
			// quiet, which is what gives generations something to share.
			osc := 0.001 * (1 + math.Sin(float64(j/64)))
			if round%2 == 1 {
				osc = -osc
			}
			global[j] = math.Cos(float64(j)) + osc + math.Pow(0.5, float64(round))*0.01
		}
		m.ApplyDownload(round, x, global)
	}
	return x
}

func reconTestConfig(dim int) Config {
	return Config{
		Dim:              dim,
		CheckEveryRounds: 5,
		Threshold:        0.9, // freeze aggressively so masks get dense
		EMAAlpha:         0.9,
		Seed:             42,
		Random:           RandomFreeze{Mode: RandomFixed, Prob: 0.3},
	}
}

// TestWordGenInvariant pins the replica-identity invariant behind the
// sketch catch-up: for two replicas of the same deterministic
// trajectory at different rounds, every word whose generations agree
// holds bit-identical state on both — so reconciling generations finds
// every difference.
func TestWordGenInvariant(t *testing.T) {
	const dim, rounds = 517, 60 // trailing partial word on purpose
	cfg := reconTestConfig(dim)
	ahead := NewManager(cfg)
	xa := make([]float64, dim)
	driveRounds(ahead, xa, 0, rounds)
	for _, stop := range []int{52, 55, 58} {
		behind := NewManager(cfg)
		xb := make([]float64, dim)
		driveRounds(behind, xb, 0, stop)
		ga, gb := ahead.WordGens(), behind.WordGens()
		same := 0
		for w := range ga {
			if ga[w] != gb[w] {
				continue
			}
			same++
			ba := ahead.ExportWordBlock(w, xa)
			bb := behind.ExportWordBlock(w, xb)
			if !reflect.DeepEqual(ba, bb) {
				t.Fatalf("stop %d: word %d has equal gen %d but different state", stop, w, ga[w])
			}
		}
		if same == 0 {
			t.Fatalf("stop %d: no shared generations — the invariant was never exercised", stop)
		}
		t.Logf("stop %d: %d/%d words share generations", stop, same, len(ga))
	}
}

// TestWordBlockDeltaRestoresReplica pins the delta import: applying
// the ahead replica's differing word blocks plus its sync header to a
// behind replica reproduces the ahead state bit-exactly, including all
// future behaviour.
func TestWordBlockDeltaRestoresReplica(t *testing.T) {
	const dim, stop, rounds = 517, 23, 60
	cfg := reconTestConfig(dim)
	ahead := NewManager(cfg)
	xa := make([]float64, dim)
	driveRounds(ahead, xa, 0, rounds)

	behind := NewManager(cfg)
	xb := make([]float64, dim)
	driveRounds(behind, xb, 0, stop)

	ga, gb := ahead.WordGens(), behind.WordGens()
	moved := 0
	for w := range ga {
		if ga[w] != gb[w] {
			if err := behind.ApplyWordBlock(ahead.ExportWordBlock(w, xa), xb); err != nil {
				t.Fatalf("apply word block %d: %v", w, err)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("trajectories at rounds %d vs %d share every word generation", rounds, stop)
	}
	if err := behind.ApplySyncHeader(ahead.SyncHeader()); err != nil {
		t.Fatalf("apply sync header: %v", err)
	}

	sa, sb := ahead.Snapshot(), behind.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("delta import did not reproduce the ahead state")
	}
	for j := range xa {
		if math.Float64bits(xa[j]) != math.Float64bits(xb[j]) {
			t.Fatalf("model scalar %d differs after delta import", j)
		}
	}
	// The repaired replica must stay bit-exact through future rounds.
	driveRounds(ahead, xa, rounds, rounds+20)
	driveRounds(behind, xb, rounds, rounds+20)
	if !reflect.DeepEqual(ahead.Snapshot(), behind.Snapshot()) {
		t.Fatalf("repaired replica diverged in later rounds")
	}
}

// TestRestoreSnapshotInPlace pins the snapshot catch-up entry point:
// an in-place restore reproduces the source manager bit-exactly and
// legacy snapshots (nil WordGen) restore with conservative gens.
func TestRestoreSnapshotInPlace(t *testing.T) {
	const dim, rounds = 320, 37
	cfg := reconTestConfig(dim)
	src := NewManager(cfg)
	x := make([]float64, dim)
	driveRounds(src, x, 0, rounds)

	dst := NewManager(cfg)
	if err := dst.RestoreSnapshot(src.Snapshot()); err != nil {
		t.Fatalf("restore snapshot: %v", err)
	}
	if !reflect.DeepEqual(src.Snapshot(), dst.Snapshot()) {
		t.Fatalf("in-place restore differs from source")
	}

	legacy := src.Snapshot()
	legacy.WordGen = nil
	if err := dst.RestoreSnapshot(legacy); err != nil {
		t.Fatalf("restore legacy snapshot: %v", err)
	}
	want := uint32(legacy.LastRound + 1)
	for w, g := range dst.WordGens() {
		if g != want {
			t.Fatalf("legacy restore word %d gen %d, want %d", w, g, want)
		}
	}

	bad := src.Snapshot()
	bad.Dim = dim + 1
	if err := dst.RestoreSnapshot(bad); err == nil {
		t.Fatalf("mismatched snapshot restored without error")
	}
}

// TestWordGenRandomizedStops sweeps random stop points so no touch
// site escapes: whatever round the behind replica pauses at, the
// gen-diff words plus header must fully repair it.
func TestWordGenRandomizedStops(t *testing.T) {
	const dim, rounds = 259, 80
	cfg := reconTestConfig(dim)
	ahead := NewManager(cfg)
	xa := make([]float64, dim)
	driveRounds(ahead, xa, 0, rounds)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		stop := 1 + rng.Intn(rounds-1)
		behind := NewManager(cfg)
		xb := make([]float64, dim)
		driveRounds(behind, xb, 0, stop)
		ga, gb := ahead.WordGens(), behind.WordGens()
		for w := range ga {
			if ga[w] != gb[w] {
				if err := behind.ApplyWordBlock(ahead.ExportWordBlock(w, xa), xb); err != nil {
					t.Fatalf("stop %d: apply word block %d: %v", stop, w, err)
				}
			}
		}
		if err := behind.ApplySyncHeader(ahead.SyncHeader()); err != nil {
			t.Fatalf("stop %d: apply sync header: %v", stop, err)
		}
		if !reflect.DeepEqual(ahead.Snapshot(), behind.Snapshot()) {
			t.Fatalf("stop %d: delta import did not reproduce the ahead state", stop)
		}
		for j := range xa {
			if math.Float64bits(xa[j]) != math.Float64bits(xb[j]) {
				t.Fatalf("stop %d: model scalar %d differs", stop, j)
			}
		}
	}
}
