package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAIMDPolicy(t *testing.T) {
	p := AIMD{}
	tests := []struct {
		name   string
		prev   float64
		stable bool
		want   float64
	}{
		{"first stable", 0, true, 5},
		{"keeps growing", 5, true, 10},
		{"halves on drift", 10, false, 5},
		{"halving below one round clears", 1.5, false, 0},
		{"zero stays zero on drift", 0, false, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.NextPeriod(tt.prev, tt.stable, 5); got != tt.want {
				t.Errorf("NextPeriod(%v, %v) = %v, want %v", tt.prev, tt.stable, got, tt.want)
			}
		})
	}
}

func TestPureAdditivePolicy(t *testing.T) {
	p := PureAdditive{}
	if got := p.NextPeriod(10, false, 5); got != 5 {
		t.Errorf("additive decrease = %v, want 5", got)
	}
	if got := p.NextPeriod(3, false, 5); got != 0 {
		t.Errorf("additive decrease floor = %v, want 0", got)
	}
	if got := p.NextPeriod(3, true, 5); got != 8 {
		t.Errorf("additive increase = %v, want 8", got)
	}
}

func TestPureMultiplicativePolicy(t *testing.T) {
	p := PureMultiplicative{}
	if got := p.NextPeriod(0, true, 5); got != 5 {
		t.Errorf("first stable = %v, want 5 (one step)", got)
	}
	if got := p.NextPeriod(5, true, 5); got != 10 {
		t.Errorf("doubling = %v, want 10", got)
	}
	if got := p.NextPeriod(10, false, 5); got != 5 {
		t.Errorf("halving = %v, want 5", got)
	}
}

func TestFixedPolicy(t *testing.T) {
	p := Fixed{Checks: 10}
	if got := p.NextPeriod(123, true, 5); got != 50 {
		t.Errorf("fixed stable = %v, want 50", got)
	}
	if got := p.NextPeriod(123, false, 5); got != 0 {
		t.Errorf("fixed unstable = %v, want 0", got)
	}
}

func TestFixedPolicyValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fixed{0} did not panic")
		}
	}()
	Fixed{}.NextPeriod(0, true, 5)
}

func TestPermanentPolicy(t *testing.T) {
	p := Permanent{}
	got := p.NextPeriod(0, true, 5)
	if got < 1e9 {
		t.Errorf("permanent period %v not effectively infinite", got)
	}
	if p.NextPeriod(7, false, 5) != 7 {
		t.Error("permanent policy should not shrink on drift")
	}
}

// Property: every policy returns a non-negative, finite-or-huge period and
// never freezes an unstable parameter longer than a stable one would be.
func TestQuickPolicyInvariants(t *testing.T) {
	policies := []FreezePolicy{AIMD{}, PureAdditive{}, PureMultiplicative{}, Fixed{Checks: 3}}
	f := func(prevRaw float64, step uint8) bool {
		prev := math.Abs(math.Mod(prevRaw, 1000))
		s := float64(step%10) + 1
		for _, p := range policies {
			stable := p.NextPeriod(prev, true, s)
			unstable := p.NextPeriod(prev, false, s)
			if stable < 0 || unstable < 0 || math.IsNaN(stable) || math.IsNaN(unstable) {
				return false
			}
			if unstable > stable && unstable > prev {
				// Drift must never *increase* the period beyond growth.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
