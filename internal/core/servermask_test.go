package core

import (
	"testing"
)

// driveMaskPair runs one round of the MaskServer/MaskClient protocol for a
// single client whose "local training" is the given update function.
func driveMaskPair(c *MaskClient, round int, x []float64, update func(j, round int) float64) {
	for j := range x {
		x[j] += update(j, round)
	}
	c.PostIterate(round, x)
	contrib, _, _ := c.PrepareUpload(round, x)
	c.ApplyDownload(round, x, contrib)
}

func TestMaskClientFreezesLikeManager(t *testing.T) {
	cfg := Config{Dim: 4, CheckEveryRounds: 1, Threshold: 0.3, EMAAlpha: 0.8, Seed: 3}
	srv := NewMaskServer(cfg)
	c := NewMaskClient(srv, 4)
	x := make([]float64, 4)

	// Reference: a plain client-side manager driven identically.
	ref := NewManager(cfg)
	xr := make([]float64, 4)

	for round := 0; round < 30; round++ {
		driveMaskPair(c, round, x, mixedUpdate)

		for j := range xr {
			xr[j] += mixedUpdate(j, round)
		}
		ref.PostIterate(round, xr)
		contrib, _, _ := ref.PrepareUpload(round, xr)
		ref.ApplyDownload(round, xr, contrib)

		// Models must track each other exactly.
		for j := range x {
			if x[j] != xr[j] {
				t.Fatalf("round %d: model diverged at %d: %v vs %v", round, j, x[j], xr[j])
			}
		}
	}
	// Final masks identical.
	cw, rw := c.MaskWords(), ref.MaskWords()
	for i := range cw {
		if cw[i] != rw[i] {
			t.Fatal("mask-client mask differs from manager mask")
		}
	}
	if c.FrozenRatio() != ref.FrozenRatio() {
		t.Errorf("frozen ratios differ: %v vs %v", c.FrozenRatio(), ref.FrozenRatio())
	}
}

func TestMaskServerObserveIdempotent(t *testing.T) {
	srv := NewMaskServer(Config{Dim: 3, CheckEveryRounds: 1, Threshold: 0.5, EMAAlpha: 0.8})
	a := NewMaskClient(srv, 4)
	b := NewMaskClient(srv, 4)
	xa := []float64{1, 2, 3}
	xb := []float64{1, 2, 3}
	// Both clients process the same round; the second observe must reuse
	// the first's result rather than advancing the server state twice.
	a.ApplyDownload(0, xa, []float64{1, 2, 3})
	b.ApplyDownload(0, xb, []float64{1, 2, 3})
	aw, bw := a.MaskWords(), b.MaskWords()
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatal("same-round clients received different masks")
		}
	}
}

func TestMaskServerRejectsRoundRegression(t *testing.T) {
	srv := NewMaskServer(Config{Dim: 2, CheckEveryRounds: 1})
	c := NewMaskClient(srv, 4)
	x := []float64{0, 0}
	c.ApplyDownload(3, x, []float64{1, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("round regression did not panic")
		}
	}()
	c.ApplyDownload(1, x, []float64{1, 1})
}

func TestMaskClientValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil server did not panic")
		}
	}()
	NewMaskClient(nil, 4)
}
