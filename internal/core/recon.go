package core

import (
	"fmt"
	"math"
)

// This file is the manager's reconciliation surface: exact per-word
// generation tracking plus word-granular state export/import. A "word"
// is 64 consecutive scalars (the freezing bitmap's word layout); the
// generation of a word is round+1 of the last round that mutated any
// synchronized state inside it (0 = never touched). Two deterministic
// replicas of the same trajectory hold bit-identical word state
// whenever their generations agree, so a returning client and the
// server can reconcile (word, generation) pairs in O(symmetric
// difference) and then ship only the differing words' state.
//
// The tracked state per word is everything a word block carries:
// x (the canonical post-ApplyDownload model), ref, lastCheck, the
// tracker's per-scalar averages/seeded bits, period, unfreezeAt, and
// randomUntil. Manager-global scalars (threshold, check count, the
// tracker's observation count, init/last round) ride in the SyncHeader
// instead. Touch sites:
//
//   - ApplyDownload touches every word with at least one unfrozen
//     scalar (x and ref absorb the aggregate there), and every word on
//     the initializing download (the check baseline seeds everywhere).
//   - stabilityCheck's re-assessment writes (tracker averages, period,
//     unfreezeAt, ref) hit only scalars unfrozen in the same round, so
//     the ApplyDownload touch already covers them; the baseline
//     refresh (lastCheck ← x) is tracked bit-exactly per word because
//     it can silently change words that are fully frozen (a
//     randomly-frozen scalar's x rolls back to ref between checks).
//   - applyRandomFreezing touches the word of every randomUntil write,
//     which may land in otherwise fully-frozen words.

// WordBlock is the full synchronized state of one 64-scalar word. The
// slices are wordWidth(w) long (64, or Dim%64 for a trailing partial
// word).
type WordBlock struct {
	Word        int
	Gen         uint32
	Seeded      uint64 // tracker seeded bits, bit k = scalar Word*64+k
	X           []float64
	Ref         []float64
	LastCheck   []float64
	E           []float64
	A           []float64
	Period      []float64
	UnfreezeAt  []int
	RandomUntil []int
}

// SyncHeader carries the manager-global scalars that word blocks
// cannot: the delta import applies it once alongside the blocks.
type SyncHeader struct {
	Threshold   float64
	CheckCount  int
	Seen        int
	Initialized bool
	InitRound   int
	LastRound   int
}

// Words returns the mask-word count of the model.
func (m *Manager) Words() int { return len(m.wordGen) }

// wordWidth returns how many scalars word w actually holds.
func (m *Manager) wordWidth(w int) int {
	n := m.cfg.Dim - w*64
	if n > 64 {
		n = 64
	}
	return n
}

// fullWordBits returns the frozen-bitmap value meaning "every scalar
// of word w is frozen" (trailing partial words keep their invalid high
// bits zero).
func (m *Manager) fullWordBits(w int) uint64 {
	if n := m.wordWidth(w); n < 64 {
		return 1<<uint(n) - 1
	}
	return ^uint64(0)
}

// touchUnfrozenWords stamps round's generation on every word with at
// least one unfrozen scalar under the current mask (which the caller
// has refreshed for round).
func (m *Manager) touchUnfrozenWords(round int) {
	g := uint32(round + 1)
	for w, bits := range m.mask.Words() {
		if bits != m.fullWordBits(w) {
			m.wordGen[w] = g
		}
	}
}

// WordGens returns a copy of the per-word generation vector.
func (m *Manager) WordGens() []uint32 {
	return append([]uint32(nil), m.wordGen...)
}

// ExportWordBlock copies word w's full synchronized state out of the
// manager and the caller's canonical model vector x (which must be the
// post-ApplyDownload model this manager last observed).
func (m *Manager) ExportWordBlock(w int, x []float64) WordBlock {
	m.checkDim(x)
	if w < 0 || w >= len(m.wordGen) {
		panic(fmt.Sprintf("core: word %d out of %d", w, len(m.wordGen)))
	}
	lo := w * 64
	n := m.wordWidth(w)
	b := WordBlock{
		Word:        w,
		Gen:         m.wordGen[w],
		X:           append([]float64(nil), x[lo:lo+n]...),
		Ref:         append([]float64(nil), m.ref[lo:lo+n]...),
		LastCheck:   append([]float64(nil), m.lastCheck[lo:lo+n]...),
		E:           make([]float64, n),
		A:           make([]float64, n),
		Period:      append([]float64(nil), m.period[lo:lo+n]...),
		UnfreezeAt:  append([]int(nil), m.unfreezeAt[lo:lo+n]...),
		RandomUntil: append([]int(nil), m.randomUntil[lo:lo+n]...),
	}
	for k := 0; k < n; k++ {
		e, a, seeded := m.tracker.ScalarState(lo + k)
		b.E[k], b.A[k] = e, a
		if seeded {
			b.Seeded |= 1 << uint(k)
		}
	}
	return b
}

// ApplyWordBlock overwrites word w's state from a block exported by a
// bit-exact replica, writing the model scalars into x. The freezing
// bitmap is invalidated; callers finish an import with
// ApplySyncHeader.
func (m *Manager) ApplyWordBlock(b WordBlock, x []float64) error {
	m.checkDim(x)
	if b.Word < 0 || b.Word >= len(m.wordGen) {
		return fmt.Errorf("core: word block %d out of %d words", b.Word, len(m.wordGen))
	}
	n := m.wordWidth(b.Word)
	for name, l := range map[string]int{
		"X": len(b.X), "Ref": len(b.Ref), "LastCheck": len(b.LastCheck),
		"E": len(b.E), "A": len(b.A), "Period": len(b.Period),
		"UnfreezeAt": len(b.UnfreezeAt), "RandomUntil": len(b.RandomUntil),
	} {
		if l != n {
			return fmt.Errorf("core: word block %d field %s has %d scalars, want %d", b.Word, name, l, n)
		}
	}
	lo := b.Word * 64
	copy(x[lo:lo+n], b.X)
	copy(m.ref[lo:lo+n], b.Ref)
	copy(m.lastCheck[lo:lo+n], b.LastCheck)
	copy(m.period[lo:lo+n], b.Period)
	copy(m.unfreezeAt[lo:lo+n], b.UnfreezeAt)
	copy(m.randomUntil[lo:lo+n], b.RandomUntil)
	for k := 0; k < n; k++ {
		m.tracker.RestoreScalarState(lo+k, b.E[k], b.A[k], b.Seeded&(1<<uint(k)) != 0)
	}
	m.wordGen[b.Word] = b.Gen
	m.maskRound = -1
	return nil
}

// SyncHeader exports the manager-global scalars.
func (m *Manager) SyncHeader() SyncHeader {
	return SyncHeader{
		Threshold:   m.threshold,
		CheckCount:  m.checkCount,
		Seen:        m.tracker.Seen(),
		Initialized: m.initialized,
		InitRound:   m.initRound,
		LastRound:   m.lastRound,
	}
}

// ApplySyncHeader overwrites the manager-global scalars and
// invalidates the freezing bitmap; the next mask use rebuilds it from
// the imported deadlines.
func (m *Manager) ApplySyncHeader(h SyncHeader) error {
	if math.IsNaN(h.Threshold) {
		return fmt.Errorf("core: sync header threshold NaN")
	}
	m.threshold = h.Threshold
	m.checkCount = h.CheckCount
	m.tracker.RestoreSeen(h.Seen)
	m.initialized = h.Initialized
	m.initRound = h.InitRound
	m.lastRound = h.LastRound
	m.maskRound = -1
	return nil
}
