package core

import (
	"math"
	"testing"
)

// driver simulates one client's view of the engine protocol against a
// single-client "server" (global = own contribution). update(j, round)
// returns the raw local movement scalar j would make that round.
type driver struct {
	m     *Manager
	x     []float64
	round int
	up    int64
	down  int64
}

func newDriver(m *Manager, dim int) *driver {
	return &driver{m: m, x: make([]float64, dim)}
}

// step runs one full round.
func (d *driver) step(update func(j, round int) float64) {
	for j := range d.x {
		d.x[j] += update(j, d.round)
	}
	d.m.PostIterate(d.round, d.x)
	contrib, _, up := d.m.PrepareUpload(d.round, d.x)
	d.down = d.m.ApplyDownload(d.round, d.x, contrib)
	d.up = up
	d.round++
}

// oscillating flips sign every round (a perfectly stable parameter);
// drifting moves one way forever (an unstable parameter).
func mixedUpdate(j, round int) float64 {
	if j%2 == 0 {
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	return 1
}

// newTestManager builds a small fast-reacting manager.
func newTestManager(dim int, policy FreezePolicy) *Manager {
	return NewManager(Config{
		Dim:                dim,
		CheckEveryRounds:   1,
		Threshold:          0.3,
		ThresholdDecayFrac: -1, // disabled unless a test opts in (negative → never)
		EMAAlpha:           0.8,
		BytesPerValue:      4,
		Policy:             policy,
		Seed:               42,
	})
}

func TestStableScalarsFreezeUnstableDoNot(t *testing.T) {
	m := newTestManager(4, AIMD{})
	d := newDriver(m, 4)
	frozenRounds := make([]int, 4)
	const rounds = 40
	for i := 0; i < rounds; i++ {
		d.step(mixedUpdate)
		words := m.MaskWords()
		for j := 0; j < 4; j++ {
			if words[0]&(1<<j) != 0 {
				frozenRounds[j]++
			}
		}
	}
	for j := 0; j < 4; j++ {
		if j%2 == 0 && frozenRounds[j] < rounds/4 {
			t.Errorf("oscillating scalar %d frozen only %d/%d rounds", j, frozenRounds[j], rounds)
		}
		if j%2 == 1 && frozenRounds[j] != 0 {
			t.Errorf("drifting scalar %d was frozen %d rounds; must never freeze", j, frozenRounds[j])
		}
	}
}

func TestRollbackPinsFrozenScalars(t *testing.T) {
	m := newTestManager(2, AIMD{})
	d := newDriver(m, 2)
	// Scalar 0 oscillates and will freeze; scalar 1 drifts.
	for i := 0; i < 50 && m.MaskWords()[0]&1 == 0; i++ {
		d.step(mixedUpdate)
	}
	if m.MaskWords()[0]&1 == 0 {
		t.Fatal("oscillating scalar never froze")
	}
	frozenVal := d.x[0]
	before1 := d.x[1]
	// While frozen, local movement of scalar 0 must be rolled back; the
	// drifting scalar keeps moving. Apply one big kick while still frozen.
	d.step(func(j, round int) float64 { return 5 })
	if m.MaskWords()[0]&1 != 0 && d.x[0] != frozenVal {
		t.Errorf("frozen scalar moved: %v -> %v", frozenVal, d.x[0])
	}
	if d.x[1] != before1+5 {
		t.Errorf("unfrozen scalar should keep moving: %v -> %v", before1, d.x[1])
	}
}

func TestByteAccountingExcludesFrozen(t *testing.T) {
	m := newTestManager(4, AIMD{})
	d := newDriver(m, 4)
	d.step(mixedUpdate)
	if d.up != 16 || d.down != 16 {
		t.Fatalf("round 0 bytes up=%d down=%d, want 16/16 (4 scalars × 4B)", d.up, d.down)
	}
	minUp, minDown := d.up, d.down
	for i := 0; i < 40; i++ {
		d.step(mixedUpdate)
		if d.up < minUp {
			minUp = d.up
		}
		if d.down < minDown {
			minDown = d.down
		}
	}
	// With the two oscillating scalars frozen, both phases must at times
	// carry only the two drifting scalars.
	if minUp != 8 || minDown != 8 {
		t.Fatalf("min bytes with half frozen: up=%d down=%d, want 8/8", minUp, minDown)
	}
}

func TestAIMDPeriodsGrowWhileStable(t *testing.T) {
	m := newTestManager(1, AIMD{})
	d := newDriver(m, 1)
	osc := func(j, round int) float64 {
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	frozenRounds := 0
	for i := 0; i < 100; i++ {
		d.step(osc)
		if m.FrozenRatio() == 1 {
			frozenRounds++
		}
	}
	// With growing periods the scalar must be frozen most of the time.
	if frozenRounds < 50 {
		t.Errorf("scalar frozen only %d/100 rounds; AIMD growth not working", frozenRounds)
	}
	// The freezing period must have grown beyond its initial value.
	if m.period[0] < 2 {
		t.Errorf("period = %v, want growth beyond initial", m.period[0])
	}
}

func TestUnfreezeOnDrift(t *testing.T) {
	m := newTestManager(1, AIMD{})
	d := newDriver(m, 1)
	osc := func(j, round int) float64 {
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	for i := 0; i < 60 && m.FrozenRatio() != 1; i++ {
		d.step(osc)
	}
	if m.FrozenRatio() != 1 {
		t.Fatal("precondition: scalar should be frozen after oscillation")
	}
	periodAtFreeze := m.period[0]
	// Switch to drifting: once the freezing period expires the parameter
	// trains again, the check sees directional movement, and the period
	// collapses multiplicatively.
	for i := 0; i < 60; i++ {
		d.step(func(j, round int) float64 { return 2 })
	}
	if m.period[0] >= periodAtFreeze {
		t.Errorf("period %v did not shrink after drift (was %v)", m.period[0], periodAtFreeze)
	}
	if m.FrozenRatio() != 0 {
		t.Error("drifting scalar should be unfrozen")
	}
	// And it must have made real progress despite the earlier freeze.
	if d.x[0] < 20 {
		t.Errorf("drifting scalar advanced only to %v", d.x[0])
	}
}

func TestPermanentPolicyNeverUnfreezes(t *testing.T) {
	m := newTestManager(1, Permanent{})
	d := newDriver(m, 1)
	osc := func(j, round int) float64 {
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	for i := 0; i < 60 && m.FrozenRatio() != 1; i++ {
		d.step(osc)
	}
	if m.FrozenRatio() != 1 {
		t.Fatal("precondition: scalar frozen")
	}
	val := d.x[0]
	for i := 0; i < 50; i++ {
		d.step(func(j, round int) float64 { return 3 })
	}
	if m.FrozenRatio() != 1 {
		t.Error("permanently frozen scalar unfroze")
	}
	if d.x[0] != val {
		t.Errorf("permanently frozen scalar moved %v -> %v", val, d.x[0])
	}
}

func TestThresholdDecay(t *testing.T) {
	m := NewManager(Config{
		Dim:                4,
		CheckEveryRounds:   1,
		Threshold:          0.5,
		ThresholdDecayFrac: 0.5, // decay once half the scalars freeze
		EMAAlpha:           0.5,
		Policy:             AIMD{},
	})
	d := newDriver(m, 4)
	for i := 0; i < 30; i++ {
		d.step(mixedUpdate)
	}
	if m.Threshold() >= 0.5 {
		t.Errorf("threshold %v did not decay although ≥50%% scalars froze", m.Threshold())
	}
}

func TestNegativeDecayFracDisablesDecay(t *testing.T) {
	m := newTestManager(2, AIMD{})
	d := newDriver(m, 2)
	osc := func(j, round int) float64 {
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	for i := 0; i < 40; i++ {
		d.step(osc)
	}
	if m.Threshold() != 0.3 {
		t.Errorf("threshold moved to %v with decay disabled", m.Threshold())
	}
}

func TestAPFSharpFreezesUnstableScalars(t *testing.T) {
	mk := func() *Manager {
		return NewManager(Config{
			Dim:              8,
			CheckEveryRounds: 1,
			Threshold:        0.3,
			EMAAlpha:         0.5,
			Policy:           AIMD{},
			Random:           RandomFreeze{Mode: RandomFixed, Prob: 1.0},
			Seed:             7,
		})
	}
	m := mk()
	d := newDriver(m, 8)
	drift := func(j, round int) float64 { return 1 }
	d.step(drift)
	d.step(drift)
	// With probability 1 every unstable scalar must now be frozen for one
	// round.
	if m.FrozenRatio() != 1 {
		t.Fatalf("APF# with p=1 froze ratio %v, want 1", m.FrozenRatio())
	}
	// One round later the 1-round random freezes expire; since frozen
	// params skip checks, the following round they are checked again.
	d.step(drift)
	d.step(drift)
	if d.x[0] <= 1 {
		t.Error("randomly frozen scalars should resume training after one round")
	}

	// Determinism: an identically configured manager driven identically
	// produces the identical mask (the cross-client consistency property).
	m2 := mk()
	d2 := newDriver(m2, 8)
	for i := 0; i < 4; i++ {
		d2.step(drift)
	}
	w1, w2 := m.MaskWords(), m2.MaskWords()
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("APF# masks diverged between identically-driven managers")
		}
	}
}

func TestAPFPlusPlusProbabilityGrows(t *testing.T) {
	m := NewManager(Config{
		Dim:              200,
		CheckEveryRounds: 1,
		Threshold:        0.01, // effectively nothing is "stable"
		EMAAlpha:         0.5,
		Policy:           AIMD{},
		Random:           RandomFreeze{Mode: RandomGrowing, ProbGrowth: 0.02, LenGrowth: 0.1},
		Seed:             11,
	})
	d := newDriver(m, 200)
	drift := func(j, round int) float64 { return 1 }
	early, late := 0.0, 0.0
	for i := 0; i < 40; i++ {
		d.step(drift)
		if i == 5 {
			early = m.FrozenRatio()
		}
	}
	late = m.FrozenRatio()
	if late <= early {
		t.Errorf("APF++ frozen ratio did not grow: early=%v late=%v", early, late)
	}
}

func TestUploadContribUsesFrozenReference(t *testing.T) {
	m := newTestManager(2, AIMD{})
	d := newDriver(m, 2)
	osc := func(j, round int) float64 {
		if j == 1 {
			return 0.5
		}
		if round%2 == 0 {
			return 1
		}
		return -1
	}
	for i := 0; i < 60 && m.MaskWords()[0]&1 == 0; i++ {
		d.step(osc)
	}
	if m.MaskWords()[0]&1 == 0 {
		t.Fatal("precondition: scalar 0 frozen")
	}
	ref0 := d.x[0]
	// Tamper with the local copy before upload; the contribution must
	// still carry the frozen reference value.
	d.x[0] = 999
	contrib, w, _ := m.PrepareUpload(d.round, d.x)
	if w != 1 {
		t.Errorf("weight = %v, want 1", w)
	}
	if contrib[0] != ref0 {
		t.Errorf("frozen contribution %v, want reference %v", contrib[0], ref0)
	}
	if contrib[1] != d.x[1] {
		t.Error("unfrozen contribution should carry the live value")
	}
}

func TestManagerValidation(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"dim", func() { NewManager(Config{Dim: 0}) }},
		{"check interval", func() { NewManager(Config{Dim: 3, CheckEveryRounds: -1}) }},
		{"vector length", func() {
			m := NewManager(Config{Dim: 3})
			m.PostIterate(0, make([]float64, 2))
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

// TestThresholdDecayCountsOnlyStabilityFreezing is the regression test for
// the §6.1 decay trigger: randomly frozen scalars (APF#/APF++) say nothing
// about parameter maturity, so they must not count toward
// ThresholdDecayFrac. Under APF++ the freezing probability approaches 1;
// with the buggy counting the decay fired on every check and drove the
// threshold to zero even though not a single scalar was stable.
func TestThresholdDecayCountsOnlyStabilityFreezing(t *testing.T) {
	const dim = 64
	m := NewManager(Config{
		Dim:                dim,
		CheckEveryRounds:   1,
		Threshold:          0.05,
		ThresholdDecayFrac: 0.8,
		EMAAlpha:           0.9,
		Random:             RandomFreeze{Mode: RandomGrowing, ProbGrowth: 1, LenGrowth: 0},
		Seed:               7,
	})
	d := newDriver(m, dim)
	for i := 0; i < 10; i++ {
		// Every scalar drifts monotonically whenever it trains: effective
		// perturbation 1, never stable, never stability-frozen. APF++
		// still randomly freezes (essentially) all of them every check.
		d.step(func(j, round int) float64 { return 1 })
	}
	if m.Checks() == 0 {
		t.Fatal("no stability check ran")
	}
	if m.FrozenRatio() < 0.5 {
		t.Fatalf("APF++ random freezing inactive (frozen ratio %v); test setup broken", m.FrozenRatio())
	}
	if got := m.Threshold(); got != 0.05 {
		t.Fatalf("threshold decayed to %v under pure random freezing; decay must count stability-frozen scalars only", got)
	}
}

// TestLazyMaskAfterDelayedFirstDownload is the regression test for the
// lazy-refresh round: a client that joins late under partial participation
// observes its first synchronization at initRound > 0, so the old guess of
// checkCount·CheckEveryRounds lags the true round and resurrects freezing
// deadlines that have long expired (here: a mask for round 4, before the
// client even joined).
func TestLazyMaskAfterDelayedFirstDownload(t *testing.T) {
	const dim = 8
	m := NewManager(Config{
		Dim:                dim,
		CheckEveryRounds:   2,
		Threshold:          0.3,
		ThresholdDecayFrac: -1,
		EMAAlpha:           0.8,
		Seed:               3,
	})
	x := make([]float64, dim)
	step := func(round int, update func(j int) float64) {
		for j := 0; j < dim; j++ {
			x[j] += update(j)
		}
		m.PostIterate(round, x)
		contrib, _, _ := m.PrepareUpload(round, x)
		m.ApplyDownload(round, x, contrib)
	}
	// First observed synchronization at round 7; checks run at 9 and 11.
	for round := 7; round <= 11; round++ {
		r := round
		step(round, func(j int) float64 {
			if j == 0 && r <= 9 {
				return 0 // holds still → stable at the round-9 check
			}
			return 1 // drifts → never stable
		})
	}
	// Scalar 0 froze at the round-9 check with AIMD period Fc=2:
	// unfreezeAt = 12, i.e. frozen for rounds 10-11 only. The round-11
	// check skipped it (still frozen) and reset the mask; the lazy rebuild
	// must answer for round 12 — where the freeze has expired — not for
	// the guessed round 2·2=4.
	if got := m.FrozenRatio(); got != 0 {
		t.Fatalf("FrozenRatio after delayed-join run = %v, want 0 (stale checkCount-based round guess)", got)
	}
	for i, w := range m.MaskWords() {
		if w != 0 {
			t.Fatalf("mask word %d = %#x after all freezes expired, want 0", i, w)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Config{Dim: 1}.withDefaults()
	if cfg.Threshold != 0.05 || cfg.EMAAlpha != 0.99 || cfg.ThresholdDecayFrac != 0.8 ||
		cfg.BytesPerValue != 4 || cfg.CheckEveryRounds != 5 {
		t.Errorf("defaults deviate from the paper: %+v", cfg)
	}
	if _, ok := cfg.Policy.(AIMD); !ok {
		t.Error("default policy must be AIMD")
	}
}

func TestFrozenValuesStayFiniteUnderLongRuns(t *testing.T) {
	m := newTestManager(3, AIMD{})
	d := newDriver(m, 3)
	frozenLate := 0
	for i := 0; i < 300; i++ {
		d.step(func(j, round int) float64 {
			switch j {
			case 0:
				return math.Sin(float64(round)) // oscillatory
			case 1:
				return 0.001 // slow drift
			default:
				return 0 // never moves
			}
		})
		if i >= 200 && m.MaskWords()[0]&(1<<2) != 0 {
			frozenLate++
		}
	}
	for j, v := range d.x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("scalar %d diverged to %v", j, v)
		}
	}
	// The never-moving scalar reads perfectly stable and must be frozen in
	// (nearly) every late round — it surfaces only for the occasional
	// one-round AIMD reassessment at ever-longer intervals.
	if frozenLate < 90 {
		t.Errorf("zero-movement scalar frozen in only %d/100 late rounds", frozenLate)
	}
}
