package core

import (
	"fmt"
	"sync"
)

// Server-side mask placement (§9, "Placement of freezing mask
// computation"): when client compute is the scarce resource (IoT devices),
// the stability checking can run once on the FL server instead of N times
// on the clients. The server drives a single Manager with the global model
// trajectory — which is exactly the synchronized state every client-side
// manager would observe, so the resulting masks are bit-identical to the
// client-side placement — and ships each client the *changes* to the mask
// (§9: "instead of transmitting the full mask vector, we can otherwise
// transfer a dense representation including change-indexes").
//
// MaskServer owns the manager; MaskClient is the thin per-client
// SyncManager that applies rollbacks and accounts for the mask-delta
// downlink bytes.

// MaskServer computes freezing masks centrally from the global model
// trajectory. It is safe for concurrent use by the per-client MaskClients.
type MaskServer struct {
	mu sync.Mutex

	manager *Manager
	x       []float64 // server-side replica of the synchronized state

	lastRound   int
	lastChanged []int  // indices whose frozen bit flipped at lastRound
	lastFrozen  []bool // full mask after lastRound
}

// NewMaskServer constructs the central mask computer with the same Config
// an equivalent client-side Manager would use.
func NewMaskServer(cfg Config) *MaskServer {
	m := NewManager(cfg)
	return &MaskServer{
		manager:   m,
		x:         make([]float64, m.cfg.Dim),
		lastRound: -1,
	}
}

// observe folds the round's aggregated global vector into the manager
// (idempotently — the first caller for a round performs the work, the
// remaining clients reuse the result) and returns the mask delta and the
// full mask for the *next* round.
func (s *MaskServer) observe(round int, global []float64) (changed []int, frozen []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if round == s.lastRound {
		return s.lastChanged, s.lastFrozen
	}
	if round < s.lastRound {
		panic(fmt.Sprintf("core: mask server observed round %d after round %d", round, s.lastRound))
	}

	prev := s.lastFrozen
	// Drive the embedded manager exactly like a client whose local state
	// is the synchronized state: rollback is a no-op on it, and the
	// stability check sees the same deltas every client-side manager
	// would.
	s.manager.PostIterate(round, s.x)
	s.manager.ApplyDownload(round, s.x, global)

	next := make([]bool, s.manager.cfg.Dim)
	s.manager.refreshMask(round + 1)
	for j := 0; j < s.manager.cfg.Dim; j++ {
		next[j] = s.manager.mask.Get(j)
	}

	var delta []int
	for j := range next {
		was := prev != nil && prev[j]
		if next[j] != was {
			delta = append(delta, j)
		}
	}
	s.lastRound = round
	s.lastChanged = delta
	s.lastFrozen = next
	return delta, next
}

// Dim returns the model dimension.
func (s *MaskServer) Dim() int { return s.manager.cfg.Dim }

// MaskClient is the client-side counterpart of a MaskServer: it freezes
// and elides parameters exactly like a full Manager, but receives its mask
// from the server instead of computing it — trading a small mask-delta
// downlink cost for zero client-side stability computation.
type MaskClient struct {
	srv           *MaskServer
	bytesPerValue int64

	frozen []bool
	ref    []float64
	// maskBytes accumulated into the next ApplyDownload's accounting.
}

// NewMaskClient constructs a client attached to srv.
func NewMaskClient(srv *MaskServer, bytesPerValue int) *MaskClient {
	if srv == nil {
		panic("core: nil mask server")
	}
	return &MaskClient{
		srv:           srv,
		bytesPerValue: int64(bytesPerValue),
		frozen:        make([]bool, srv.Dim()),
		ref:           make([]float64, srv.Dim()),
	}
}

// PostIterate rolls frozen scalars back to their reference values.
func (c *MaskClient) PostIterate(_ int, x []float64) {
	for j, f := range c.frozen {
		if f {
			x[j] = c.ref[j]
		}
	}
}

// PrepareUpload pushes the unfrozen scalars.
func (c *MaskClient) PrepareUpload(_ int, x []float64) ([]float64, float64, int64) {
	contrib := append([]float64(nil), x...)
	unfrozen := 0
	for j, f := range c.frozen {
		if f {
			contrib[j] = c.ref[j]
		} else {
			unfrozen++
		}
	}
	return contrib, 1, int64(unfrozen) * c.bytesPerValue
}

// ApplyDownload pulls the unfrozen scalars, then fetches the round's mask
// delta from the server; the delta's transfer cost (4 bytes per changed
// index) is charged to the downlink, as §9 prescribes.
func (c *MaskClient) ApplyDownload(round int, x, global []float64) int64 {
	unfrozen := 0
	for j, f := range c.frozen {
		if f {
			x[j] = c.ref[j]
		} else {
			x[j] = global[j]
			c.ref[j] = global[j]
			unfrozen++
		}
	}

	changed, frozen := c.srv.observe(round, global)
	copy(c.frozen, frozen)
	for _, j := range changed {
		if c.frozen[j] {
			c.ref[j] = x[j] // value pinned while frozen
		}
	}
	return int64(unfrozen)*c.bytesPerValue + int64(len(changed))*4
}

// FrozenRatio reports the frozen fraction of the current mask.
func (c *MaskClient) FrozenRatio() float64 {
	n := 0
	for _, f := range c.frozen {
		if f {
			n++
		}
	}
	if len(c.frozen) == 0 {
		return 0
	}
	return float64(n) / float64(len(c.frozen))
}

// MaskWords renders the mask in bitset word layout for consistency tests.
func (c *MaskClient) MaskWords() []uint64 {
	words := make([]uint64, (len(c.frozen)+63)/64)
	for j, f := range c.frozen {
		if f {
			words[j/64] |= 1 << (j % 64)
		}
	}
	return words
}
