package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// runRounds drives a manager through n single-client rounds with the
// given update stream, returning the final model vector.
func runRounds(m *Manager, x []float64, startRound, n int, rng *rand.Rand) []float64 {
	for r := startRound; r < startRound+n; r++ {
		for j := range x {
			if j%2 == 0 {
				x[j] += float64(1 - 2*(r%2))
			} else {
				x[j] += rng.NormFloat64()
			}
		}
		m.PostIterate(r, x)
		contrib, _, _ := m.PrepareUpload(r, x)
		m.ApplyDownload(r, x, contrib)
	}
	return x
}

func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	cfg := Config{
		Dim:              10,
		CheckEveryRounds: 1,
		Threshold:        0.3,
		EMAAlpha:         0.85,
		Seed:             4,
		Random:           RandomFreeze{Mode: RandomFixed, Prob: 0.3},
	}

	// Reference: one manager runs 30 rounds straight.
	ref := NewManager(cfg)
	xRef := make([]float64, 10)
	runRounds(ref, xRef, 0, 15, rand.New(rand.NewSource(1)))
	runRounds(ref, xRef, 15, 15, rand.New(rand.NewSource(2)))

	// Checkpointed: snapshot at round 15 (through gob, as a deployment
	// would), restore, continue.
	orig := NewManager(cfg)
	xOrig := make([]float64, 10)
	runRounds(orig, xOrig, 0, 15, rand.New(rand.NewSource(1)))

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(orig.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var state State
	if err := gob.NewDecoder(&buf).Decode(&state); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(cfg, &state)
	if err != nil {
		t.Fatal(err)
	}
	xRest := append([]float64(nil), xOrig...)
	runRounds(restored, xRest, 15, 15, rand.New(rand.NewSource(2)))

	for j := range xRef {
		if xRef[j] != xRest[j] {
			t.Fatalf("restored run diverged at scalar %d: %v vs %v", j, xRest[j], xRef[j])
		}
	}
	wRef, wRest := ref.MaskWords(), restored.MaskWords()
	for i := range wRef {
		if wRef[i] != wRest[i] {
			t.Fatal("restored mask differs from uninterrupted run")
		}
	}
	if ref.Threshold() != restored.Threshold() || ref.Checks() != restored.Checks() {
		t.Error("threshold/check bookkeeping not restored")
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := Config{Dim: 4, CheckEveryRounds: 1}
	good := NewManager(cfg).Snapshot()

	tests := []struct {
		name   string
		mutate func(s *State) *State
		cfg    Config
	}{
		{"nil", func(s *State) *State { return nil }, cfg},
		{"dim mismatch", func(s *State) *State { return s }, Config{Dim: 5, CheckEveryRounds: 1}},
		{"short field", func(s *State) *State { s.Period = s.Period[:2]; return s }, cfg},
		{"tracker dim", func(s *State) *State {
			s.Tracker.E = s.Tracker.E[:2]
			s.Tracker.A = s.Tracker.A[:2]
			return s
		}, cfg},
		{"bad alpha", func(s *State) *State { s.Tracker.Alpha = 2; return s }, cfg},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewManager(cfg).Snapshot()
			s = tt.mutate(s)
			if _, err := Restore(tt.cfg, s); err == nil {
				t.Error("Restore accepted an invalid snapshot")
			}
		})
	}

	// Config.Dim 0 is inferred from the snapshot.
	m, err := Restore(Config{CheckEveryRounds: 1}, good)
	if err != nil || m == nil {
		t.Fatalf("Restore with inferred dim failed: %v", err)
	}
}
