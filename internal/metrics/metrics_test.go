package metrics

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := &Series{Name: "acc"}
	if _, ok := s.Last(); ok {
		t.Error("empty series should have no last point")
	}
	s.Append(0, 0.1)
	s.Append(1, 0.9)
	s.Append(2, 0.7)
	last, ok := s.Last()
	if !ok || last.Y != 0.7 {
		t.Errorf("Last = %+v", last)
	}
	if s.MaxY() != 0.9 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
}

func TestFigureSeriesOrderStable(t *testing.T) {
	f := NewFigure("t", "x", "y")
	f.Series("b").Append(0, 1)
	f.Series("a").Append(0, 2)
	f.Series("b").Append(1, 3)
	names := f.SeriesNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("series order %v, want insertion order [b a]", names)
	}
}

func TestFigureTSVAlignment(t *testing.T) {
	f := NewFigure("fig", "round", "acc")
	f.Series("apf").Append(0, 0.5)
	f.Series("apf").Append(1, 0.6)
	f.Series("base").Append(1, 0.55)
	var b strings.Builder
	if err := f.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines:\n%s", len(lines), b.String())
	}
	if lines[0] != "round\tapf\tbase" {
		t.Errorf("header = %q", lines[0])
	}
	// x=0 has no value for "base" → empty cell.
	if !strings.HasPrefix(lines[1], "0\t0.5\t") {
		t.Errorf("row 0 = %q", lines[1])
	}
}

func TestFigureSummaryMentionsAllSeries(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	f.Series("one").Append(0, 1)
	f.Series("empty")
	s := f.Summary()
	if !strings.Contains(s, "one") || !strings.Contains(s, "empty") {
		t.Errorf("summary missing series:\n%s", s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("Table 1", "Model", "Acc")
	tbl.AddRow("LeNet-5", "0.666")
	md := tbl.Markdown()
	for _, want := range []string{"### Table 1", "| Model", "| LeNet-5", "0.666"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableRowLengthValidated(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short row")
		}
	}()
	tbl.AddRow("only one")
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{5 << 20, "5.00 MB"},
		{3 << 30, "3.00 GB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestASCIIPlot(t *testing.T) {
	f := NewFigure("accuracy", "round", "acc")
	for i := 0; i < 20; i++ {
		f.Series("apf").Append(float64(i), float64(i)/20)
		f.Series("base").Append(float64(i), 0.5)
	}
	plot := f.ASCIIPlot(40, 8)
	if plot == "" {
		t.Fatal("empty plot")
	}
	for _, want := range []string{"accuracy", "*", "o", "apf", "base", "(round)", "+--"} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot missing %q:\n%s", want, plot)
		}
	}
	lines := strings.Split(strings.TrimSpace(plot), "\n")
	// title + 8 grid rows + axis + x labels + 2 legend lines
	if len(lines) != 1+8+1+1+2 {
		t.Errorf("plot has %d lines:\n%s", len(lines), plot)
	}
}

func TestASCIIPlotEmptyAndDegenerate(t *testing.T) {
	f := NewFigure("t", "x", "y")
	if f.ASCIIPlot(40, 8) != "" {
		t.Error("empty figure should render nothing")
	}
	// A single constant point must not divide by zero.
	f.Series("s").Append(1, 1)
	plot := f.ASCIIPlot(10, 4)
	if !strings.Contains(plot, "*") {
		t.Errorf("degenerate plot missing point:\n%s", plot)
	}
}

func TestASCIIPlotClampsTinySizes(t *testing.T) {
	f := NewFigure("t", "x", "y")
	f.Series("s").Append(0, 0)
	f.Series("s").Append(1, 1)
	if f.ASCIIPlot(1, 1) == "" {
		t.Error("tiny sizes should clamp, not fail")
	}
}
