// Package metrics provides lightweight recorders and writers for the
// experiment harness: named series (for the paper's figures) and tables
// (for its tables), rendered as markdown or CSV.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points (one curve of a figure).
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Last returns the final point; ok is false when the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// MaxY returns the maximum Y of the series (0 when empty).
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, p := range s.Points {
		if i == 0 || p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Figure is a collection of series sharing an x axis, mirroring one paper
// figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	series map[string]*Series
	order  []string
}

// NewFigure constructs an empty figure.
func NewFigure(title, xLabel, yLabel string) *Figure {
	return &Figure{Title: title, XLabel: xLabel, YLabel: yLabel, series: make(map[string]*Series)}
}

// Series returns (creating on demand) the series with the given name.
func (f *Figure) Series(name string) *Series {
	if s, ok := f.series[name]; ok {
		return s
	}
	s := &Series{Name: name}
	f.series[name] = s
	f.order = append(f.order, name)
	return s
}

// SeriesNames returns the series names in insertion order.
func (f *Figure) SeriesNames() []string { return append([]string(nil), f.order...) }

// WriteTSV renders the figure as a tab-separated sheet: one x column and
// one column per series (aligned by x where xs coincide; otherwise rows
// are emitted per-series).
func (f *Figure) WriteTSV(w io.Writer) error {
	// Collect the union of x values.
	xsSet := make(map[float64]bool)
	for _, name := range f.order {
		for _, p := range f.series[name].Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := append([]string{f.XLabel}, f.order...)
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	// Index series by x for aligned output.
	byX := make(map[string]map[float64]float64, len(f.order))
	for _, name := range f.order {
		m := make(map[float64]float64)
		for _, p := range f.series[name].Points {
			m[p.X] = p.Y
		}
		byX[name] = m
	}
	for _, x := range xs {
		row := make([]string, 0, len(f.order)+1)
		row = append(row, strconv.FormatFloat(x, 'g', 6, 64))
		for _, name := range f.order {
			if y, ok := byX[name][x]; ok {
				row = append(row, strconv.FormatFloat(y, 'g', 6, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-line-per-series digest (final and best values),
// convenient for terminal output of accuracy curves.
func (f *Figure) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s vs %s]\n", f.Title, f.YLabel, f.XLabel)
	for _, name := range f.order {
		s := f.series[name]
		last, ok := s.Last()
		if !ok {
			fmt.Fprintf(&b, "  %-36s (empty)\n", name)
			continue
		}
		fmt.Fprintf(&b, "  %-36s final=%.4f best=%.4f points=%d\n", name, last.Y, s.MaxY(), len(s.Points))
	}
	return b.String()
}

// Table mirrors one paper table: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable constructs a table with the given header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; its length must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		panic(fmt.Sprintf("metrics: row of %d cells for %d columns", len(cells), len(t.Header)))
	}
	t.Rows = append(t.Rows, cells)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FormatBytes renders a byte count with a binary-ish human unit, matching
// how the paper reports MB/GB transmission volumes.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
