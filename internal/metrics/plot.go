package metrics

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarkers assigns one glyph per series in a terminal plot.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCIIPlot renders the figure as a width×height character plot, with all
// series overlaid (later series win collisions), a y-axis range label, and
// a marker legend — enough to see curve shapes directly in a terminal.
// Returns "" when the figure holds no points.
func (f *Figure) ASCIIPlot(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}

	// Shared axis ranges over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, name := range f.order {
		for _, p := range f.series[name].Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			points++
		}
	}
	if points == 0 {
		return ""
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range f.order {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for _, p := range f.series[name].Points {
			cx := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			cy := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - cy // y grows upward
			grid[row][cx] = marker
		}
	}

	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	topLabel := fmt.Sprintf("%.4g", maxY)
	botLabel := fmt.Sprintf("%.4g", minY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g  (%s)\n",
		strings.Repeat(" ", labelW), width/2, minX, width-width/2, maxX, f.XLabel)
	for si, name := range f.order {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarkers[si%len(seriesMarkers)], name)
	}
	return b.String()
}
