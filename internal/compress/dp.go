package compress

import (
	"fmt"
	"math/rand"

	"apf/internal/fl"
	"apf/internal/stats"
)

// DPNoise wraps a SyncManager with Gaussian differential-privacy noise on
// the pushed contribution, implementing the paper's §9 discussion: each
// client perturbs its upload with zero-mean Gaussian noise before the
// server sees it. Because the injected noise oscillates around zero it
// *lowers* measured effective perturbation, so §9 recommends a tighter
// stability threshold when DP is enabled — the DP experiment and tests
// verify that APF remains functional under this wrapper.
//
// Note the mask-consistency caveat: APF computes freezing masks from
// synchronized state, which under DP includes the aggregated noise — still
// identical on every client, so masks stay consistent.
type DPNoise struct {
	inner fl.SyncManager
	sigma float64
	rng   *rand.Rand
}

var _ fl.SyncManager = (*DPNoise)(nil)

// NewDPNoise wraps inner with per-upload Gaussian noise of standard
// deviation sigma. Each client must use a distinct seed (noise is local
// and private), unlike the APF manager seed which must be shared.
func NewDPNoise(inner fl.SyncManager, sigma float64, clientSeed int64) *DPNoise {
	if sigma < 0 {
		panic(fmt.Sprintf("compress: negative DP noise scale %v", sigma))
	}
	return &DPNoise{inner: inner, sigma: sigma, rng: stats.SplitRNG(clientSeed, 424242)}
}

// PostIterate delegates to the wrapped manager.
func (m *DPNoise) PostIterate(round int, x []float64) { m.inner.PostIterate(round, x) }

// PrepareUpload adds Gaussian noise to the inner contribution.
func (m *DPNoise) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	contrib, w, up := m.inner.PrepareUpload(round, x)
	if m.sigma > 0 {
		for j := range contrib {
			contrib[j] += m.sigma * m.rng.NormFloat64()
		}
	}
	return contrib, w, up
}

// ApplyDownload delegates to the wrapped manager.
func (m *DPNoise) ApplyDownload(round int, x, global []float64) int64 {
	return m.inner.ApplyDownload(round, x, global)
}

// FrozenRatio delegates when the wrapped manager freezes parameters.
func (m *DPNoise) FrozenRatio() float64 {
	if fr, ok := m.inner.(fl.FrozenRatioReporter); ok {
		return fr.FrozenRatio()
	}
	return 0
}

// MaskWords delegates when the wrapped manager exposes a mask.
func (m *DPNoise) MaskWords() []uint64 {
	if mr, ok := m.inner.(fl.MaskReporter); ok {
		return mr.MaskWords()
	}
	return nil
}
