// Package compress implements the synchronization schemes APF is compared
// against in the paper: the two §4.1 strawmen (partial synchronization and
// permanent freezing), the Gaia and CMFL sparsification baselines (§7.4),
// and a stackable fp16 quantization wrapper (§7.7). All implement the
// fl.SyncManager contract.
package compress

import (
	"fmt"
	"math"

	"apf/internal/bitset"
	"apf/internal/fl"
	"apf/internal/perturb"
	"apf/internal/quantize"
)

// PartialSync is strawman 1 (§4.1): scalars judged stable are excluded
// from synchronization forever but keep being updated locally. Under
// non-IID data the local copies diverge toward different local optima,
// which is exactly the failure mode Figs. 4-5 demonstrate.
type PartialSync struct {
	dim           int
	checkEvery    int
	threshold     float64
	bytesPerValue int64

	tracker     *perturb.EMATracker
	excluded    *bitset.BitSet
	lastCheck   []float64
	initialized bool
	initRound   int
}

var _ fl.SyncManager = (*PartialSync)(nil)
var _ fl.FrozenRatioReporter = (*PartialSync)(nil)

// NewPartialSync constructs the strawman with the given stability-check
// interval (rounds), effective-perturbation threshold, and wire bytes per
// scalar.
func NewPartialSync(dim, checkEveryRounds int, threshold, emaAlpha float64, bytesPerValue int) *PartialSync {
	if dim <= 0 || checkEveryRounds <= 0 {
		panic(fmt.Sprintf("compress: invalid PartialSync geometry dim=%d check=%d", dim, checkEveryRounds))
	}
	return &PartialSync{
		dim:           dim,
		checkEvery:    checkEveryRounds,
		threshold:     threshold,
		bytesPerValue: int64(bytesPerValue),
		tracker:       perturb.NewEMATracker(dim, emaAlpha),
		excluded:      bitset.New(dim),
		lastCheck:     make([]float64, dim),
		initRound:     -1,
	}
}

// PostIterate is a no-op: local updates proceed unrestricted (that is the
// point of this strawman).
func (m *PartialSync) PostIterate(int, []float64) {}

// PrepareUpload pushes only the still-synchronized scalars.
func (m *PartialSync) PrepareUpload(_ int, x []float64) ([]float64, float64, int64) {
	contrib := append([]float64(nil), x...)
	synced := m.dim - m.excluded.Count()
	return contrib, 1, int64(synced) * m.bytesPerValue
}

// ApplyDownload pulls only the still-synchronized scalars, then re-checks
// stability on check boundaries. Stability is judged from post-download
// (synchronized) values, so all clients exclude the same scalars.
func (m *PartialSync) ApplyDownload(round int, x, global []float64) int64 {
	synced := 0
	for j := 0; j < m.dim; j++ {
		if !m.excluded.Get(j) {
			x[j] = global[j]
			synced++
		}
	}
	if !m.initialized {
		// Baseline from synchronized state, so every client excludes the
		// same scalars (see core.Manager for the same reasoning).
		copy(m.lastCheck, x)
		m.initialized = true
		m.initRound = round
	}
	// Skip the check on the baseline-seeding round, whose delta would be
	// degenerate.
	if round > m.initRound && (round+1)%m.checkEvery == 0 {
		delta := make([]float64, m.dim)
		for j := range delta {
			delta[j] = x[j] - m.lastCheck[j]
		}
		m.tracker.ObserveMasked(delta, m.excluded.Get)
		for j := 0; j < m.dim; j++ {
			if m.excluded.Get(j) {
				continue
			}
			if m.tracker.Perturbation(j) < m.threshold {
				m.excluded.Set(j)
			}
		}
		copy(m.lastCheck, x)
	}
	return int64(synced) * m.bytesPerValue
}

// FrozenRatio reports the excluded fraction (for plotting parity with APF).
func (m *PartialSync) FrozenRatio() float64 { return m.excluded.Ratio() }

// MaskWords exposes the exclusion bitmap for consistency tests.
func (m *PartialSync) MaskWords() []uint64 { return m.excluded.Words() }

// Gaia reimplements the Gaia baseline (Hsieh et al., NSDI'17) as described
// in the paper's §2.2/§7.4: each round a client pushes only updates whose
// relative magnitude against the current global value exceeds a
// significance threshold; insignificant updates accumulate locally and are
// retried later. Only the push phase is compressed — the pull phase always
// carries the full model — which is one of the structural reasons APF's
// cumulative traffic beats it (Fig. 14).
type Gaia struct {
	dim           int
	threshold     float64
	decayEvery    int
	bytesPerValue int64

	lastGlobal  []float64
	residual    []float64
	initialized bool
	lastPushed  int
}

var _ fl.SyncManager = (*Gaia)(nil)

// NewGaia constructs the baseline. threshold is the initial relative
// significance threshold (the paper uses Gaia's default 0.01); it halves
// every decayEvery rounds (<=0 disables decay), approximating Gaia's
// "decaying threshold as elaborated in their paper".
func NewGaia(dim int, threshold float64, decayEvery, bytesPerValue int) *Gaia {
	if dim <= 0 {
		panic(fmt.Sprintf("compress: invalid Gaia dim %d", dim))
	}
	return &Gaia{
		dim:           dim,
		threshold:     threshold,
		decayEvery:    decayEvery,
		bytesPerValue: int64(bytesPerValue),
		lastGlobal:    make([]float64, dim),
		residual:      make([]float64, dim),
	}
}

// PostIterate captures the round-0 reference model on first call.
func (m *Gaia) PostIterate(_ int, x []float64) {
	if !m.initialized {
		copy(m.lastGlobal, x)
		m.initialized = true
	}
}

// thresholdAt returns the decayed significance threshold for round.
func (m *Gaia) thresholdAt(round int) float64 {
	if m.decayEvery <= 0 {
		return m.threshold
	}
	return m.threshold * math.Pow(0.5, float64(round/m.decayEvery))
}

// PrepareUpload pushes significant components of the accumulated update;
// the rest stays in the residual. Sparse payloads carry a 4-byte index per
// transmitted value.
func (m *Gaia) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	thr := m.thresholdAt(round)
	contrib := append([]float64(nil), m.lastGlobal...)
	sent := 0
	const magnitudeFloor = 1e-3 // relative-change denominator floor near zero
	for j := 0; j < m.dim; j++ {
		u := x[j] - m.lastGlobal[j] + m.residual[j]
		base := math.Abs(m.lastGlobal[j])
		if base < magnitudeFloor {
			base = magnitudeFloor
		}
		if math.Abs(u) >= thr*base {
			contrib[j] = m.lastGlobal[j] + u
			m.residual[j] = 0
			sent++
		} else {
			m.residual[j] = u
		}
	}
	m.lastPushed = sent
	return contrib, 1, int64(sent) * (m.bytesPerValue + 4)
}

// ApplyDownload pulls the full model (Gaia does not compress the pull
// phase).
func (m *Gaia) ApplyDownload(_ int, x, global []float64) int64 {
	copy(x, global)
	copy(m.lastGlobal, global)
	return int64(m.dim) * m.bytesPerValue
}

// LastPushedCount reports how many scalars the previous round pushed.
func (m *Gaia) LastPushedCount() int { return m.lastPushed }

// CMFL reimplements the CMFL baseline (Wang et al., ICDCS'19) as described
// in the paper: a client pushes its full local update only when the
// update's sign pattern agrees with the previous global update on at least
// a relevance-threshold fraction of components; irrelevant updates are
// withheld entirely (aggregation weight 0). Like Gaia, only the push phase
// is compressed.
type CMFL struct {
	dim           int
	threshold     float64
	decayPerRound float64
	bytesPerValue int64

	lastGlobal  []float64
	globalDelta []float64
	haveDelta   bool
	initialized bool
	lastSent    bool
}

var _ fl.SyncManager = (*CMFL)(nil)

// NewCMFL constructs the baseline with the paper's default relevance
// threshold 0.8, decayed multiplicatively by decayPerRound each round
// (use 1 for no decay).
func NewCMFL(dim int, threshold, decayPerRound float64, bytesPerValue int) *CMFL {
	if dim <= 0 {
		panic(fmt.Sprintf("compress: invalid CMFL dim %d", dim))
	}
	return &CMFL{
		dim:           dim,
		threshold:     threshold,
		decayPerRound: decayPerRound,
		bytesPerValue: int64(bytesPerValue),
		lastGlobal:    make([]float64, dim),
		globalDelta:   make([]float64, dim),
	}
}

// PostIterate captures the round-0 reference model on first call.
func (m *CMFL) PostIterate(_ int, x []float64) {
	if !m.initialized {
		copy(m.lastGlobal, x)
		m.initialized = true
	}
}

// PrepareUpload pushes the full update when it is relevant enough, and
// nothing otherwise.
func (m *CMFL) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	send := true
	if m.haveDelta {
		agree := 0
		for j := 0; j < m.dim; j++ {
			u := x[j] - m.lastGlobal[j]
			if (u >= 0) == (m.globalDelta[j] >= 0) {
				agree++
			}
		}
		thr := m.threshold
		if m.decayPerRound > 0 && m.decayPerRound != 1 {
			thr *= math.Pow(m.decayPerRound, float64(round))
		}
		send = float64(agree)/float64(m.dim) >= thr
	}
	m.lastSent = send
	contrib := append([]float64(nil), x...)
	if !send {
		return contrib, 0, 0
	}
	return contrib, 1, int64(m.dim) * m.bytesPerValue
}

// ApplyDownload pulls the full model and updates the reference direction.
func (m *CMFL) ApplyDownload(_ int, x, global []float64) int64 {
	for j := 0; j < m.dim; j++ {
		m.globalDelta[j] = global[j] - m.lastGlobal[j]
	}
	m.haveDelta = true
	copy(m.lastGlobal, global)
	copy(x, global)
	return int64(m.dim) * m.bytesPerValue
}

// LastSent reports whether the previous round's update was pushed.
func (m *CMFL) LastSent() bool { return m.lastSent }

// Quantized wraps another manager and transmits every value in IEEE
// binary16 instead of binary32, halving the value bytes in both phases and
// applying the corresponding precision loss (§7.7's Quantization_Manager
// stacked atop the APF_Manager). Byte accounting assumes the inner
// payloads are pure values (true for APF and the passthrough baseline).
type Quantized struct {
	inner fl.SyncManager
}

var _ fl.SyncManager = (*Quantized)(nil)

// NewQuantized wraps inner with fp16 transmission.
func NewQuantized(inner fl.SyncManager) *Quantized { return &Quantized{inner: inner} }

// PostIterate delegates to the wrapped manager.
func (m *Quantized) PostIterate(round int, x []float64) { m.inner.PostIterate(round, x) }

// PrepareUpload quantizes the inner payload and halves its wire size.
func (m *Quantized) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	contrib, w, up := m.inner.PrepareUpload(round, x)
	quantize.RoundTripSlice(contrib)
	return contrib, w, up / 2
}

// ApplyDownload hands the wrapped manager a half-precision view of the
// global model and halves the reported pull bytes.
func (m *Quantized) ApplyDownload(round int, x, global []float64) int64 {
	q := append([]float64(nil), global...)
	quantize.RoundTripSlice(q)
	return m.inner.ApplyDownload(round, x, q) / 2
}

// CompactUpload delegates mask-elided payload extraction to the wrapped
// manager (values are already quantized by PrepareUpload).
func (m *Quantized) CompactUpload(round int, contrib []float64) []float64 {
	if cc, ok := m.inner.(fl.CompactCodec); ok {
		return cc.CompactUpload(round, contrib)
	}
	return append([]float64(nil), contrib...)
}

// ExpandDownload delegates compact-payload expansion to the wrapped
// manager.
func (m *Quantized) ExpandDownload(round int, compact []float64) []float64 {
	if cc, ok := m.inner.(fl.CompactCodec); ok {
		return cc.ExpandDownload(round, compact)
	}
	return append([]float64(nil), compact...)
}

// CompactLen delegates the compact payload length when the wrapped manager
// reports it; -1 means unknown.
func (m *Quantized) CompactLen(round int) int {
	if cl, ok := m.inner.(interface{ CompactLen(round int) int }); ok {
		return cl.CompactLen(round)
	}
	return -1
}

// FrozenRatio delegates when the wrapped manager freezes parameters.
func (m *Quantized) FrozenRatio() float64 {
	if fr, ok := m.inner.(fl.FrozenRatioReporter); ok {
		return fr.FrozenRatio()
	}
	return 0
}

// MaskWords delegates when the wrapped manager exposes a mask.
func (m *Quantized) MaskWords() []uint64 {
	if mr, ok := m.inner.(fl.MaskReporter); ok {
		return mr.MaskWords()
	}
	return nil
}
