package compress

import (
	"fmt"
	"sort"

	"apf/internal/fl"
)

// TopK is the magnitude-based sparsification baseline of the §2.2 family
// (Dryden et al. [20], Strom [53]): each round a client pushes only the k%
// largest-magnitude components of its accumulated update; the remainder
// accumulates locally as a residual and is retried later. Like Gaia and
// CMFL it compresses only the push phase and decides from instantaneous
// magnitudes, blind to long-term convergence — the structural contrast
// with APF.
type TopK struct {
	dim           int
	fraction      float64
	bytesPerValue int64

	lastGlobal  []float64
	residual    []float64
	initialized bool
	lastPushed  int
}

var _ fl.SyncManager = (*TopK)(nil)

// NewTopK constructs the baseline pushing the given fraction (0, 1] of
// components per round.
func NewTopK(dim int, fraction float64, bytesPerValue int) *TopK {
	if dim <= 0 {
		panic(fmt.Sprintf("compress: invalid TopK dim %d", dim))
	}
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("compress: TopK fraction %v out of (0,1]", fraction))
	}
	return &TopK{
		dim:           dim,
		fraction:      fraction,
		bytesPerValue: int64(bytesPerValue),
		lastGlobal:    make([]float64, dim),
		residual:      make([]float64, dim),
	}
}

// PostIterate captures the round-0 reference model on first call.
func (m *TopK) PostIterate(_ int, x []float64) {
	if !m.initialized {
		copy(m.lastGlobal, x)
		m.initialized = true
	}
}

// PrepareUpload pushes the top-fraction components of update+residual by
// absolute value; each sparse value carries a 4-byte index.
func (m *TopK) PrepareUpload(_ int, x []float64) ([]float64, float64, int64) {
	k := int(m.fraction * float64(m.dim))
	if k < 1 {
		k = 1
	}
	u := make([]float64, m.dim)
	for j := 0; j < m.dim; j++ {
		u[j] = x[j] - m.lastGlobal[j] + m.residual[j]
	}
	// Select the k largest |u|. Sorting indices is O(d log d) — fine at
	// model scale, and simpler than a quickselect for this baseline.
	order := make([]int, m.dim)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := u[order[a]], u[order[b]]
		if ua < 0 {
			ua = -ua
		}
		if ub < 0 {
			ub = -ub
		}
		if ua != ub {
			return ua > ub
		}
		// Equal magnitudes tie-break by index: sort.Slice is unstable, and
		// an arbitrary tie selection would make the pushed set (and with it
		// every seeded baseline experiment) nondeterministic.
		return order[a] < order[b]
	})

	contrib := append([]float64(nil), m.lastGlobal...)
	selected := make(map[int]bool, k)
	for _, j := range order[:k] {
		contrib[j] = m.lastGlobal[j] + u[j]
		selected[j] = true
	}
	for j := 0; j < m.dim; j++ {
		if selected[j] {
			m.residual[j] = 0
		} else {
			m.residual[j] = u[j]
		}
	}
	m.lastPushed = k
	return contrib, 1, int64(k) * (m.bytesPerValue + 4)
}

// ApplyDownload pulls the full model (push-only compression).
func (m *TopK) ApplyDownload(_ int, x, global []float64) int64 {
	copy(x, global)
	copy(m.lastGlobal, global)
	return int64(m.dim) * m.bytesPerValue
}

// LastPushedCount reports how many components the previous round pushed.
func (m *TopK) LastPushedCount() int { return m.lastPushed }
