package compress

import (
	"math"
	"testing"

	"apf/internal/fl"
)

func TestDPNoisePerturbsUploadOnly(t *testing.T) {
	m := NewDPNoise(fl.NewPassthroughManager(4), 0.1, 7)
	x := []float64{1, 2, 3}
	m.PostIterate(0, x)
	contrib, w, up := m.PrepareUpload(0, x)
	if w != 1 || up != 12 {
		t.Fatalf("wrapper changed accounting: w=%v up=%d", w, up)
	}
	changed := false
	for j := range x {
		if contrib[j] != x[j] {
			changed = true
		}
		if math.Abs(contrib[j]-x[j]) > 1 {
			t.Errorf("noise too large at %d: %v vs %v", j, contrib[j], x[j])
		}
	}
	if !changed {
		t.Error("DP noise did not perturb the upload")
	}
	// Download path is untouched.
	down := m.ApplyDownload(0, x, []float64{9, 9, 9})
	if down != 12 || x[0] != 9 {
		t.Error("download path altered by DP wrapper")
	}
}

func TestDPNoiseZeroSigmaIsIdentity(t *testing.T) {
	m := NewDPNoise(fl.NewPassthroughManager(4), 0, 7)
	x := []float64{1, 2}
	contrib, _, _ := m.PrepareUpload(0, x)
	if contrib[0] != 1 || contrib[1] != 2 {
		t.Error("sigma=0 should be a no-op")
	}
}

func TestDPNoiseDistinctPerClient(t *testing.T) {
	a := NewDPNoise(fl.NewPassthroughManager(4), 0.5, 1)
	b := NewDPNoise(fl.NewPassthroughManager(4), 0.5, 2)
	x := []float64{0, 0, 0, 0}
	ca, _, _ := a.PrepareUpload(0, x)
	cb, _, _ := b.PrepareUpload(0, x)
	same := true
	for j := range ca {
		if ca[j] != cb[j] {
			same = false
		}
	}
	if same {
		t.Error("different client seeds must draw different noise")
	}
}

func TestDPNoiseValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative sigma did not panic")
		}
	}()
	NewDPNoise(fl.NewPassthroughManager(4), -1, 1)
}

func TestDPNoiseDelegatesReporting(t *testing.T) {
	m := NewDPNoise(NewPartialSync(4, 1, 0.5, 0.5, 4), 0.1, 1)
	if m.MaskWords() == nil {
		t.Error("mask should delegate")
	}
	if m.FrozenRatio() != 0 {
		t.Error("fresh PartialSync should report 0 frozen")
	}
	if n := NewDPNoise(fl.NewPassthroughManager(4), 0.1, 1); n.MaskWords() != nil || n.FrozenRatio() != 0 {
		t.Error("passthrough delegation wrong")
	}
}
