package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"apf/internal/fl"
	"apf/internal/quantize"
	"apf/internal/stats"
)

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	m := NewTopK(5, 0.4, 4) // k = 2 of 5
	x := []float64{0, 0, 0, 0, 0}
	m.PostIterate(0, x)

	x = []float64{0.1, -5, 0.2, 3, -0.05}
	contrib, w, up := m.PrepareUpload(0, x)
	if w != 1 {
		t.Fatal("TopK always contributes")
	}
	if m.LastPushedCount() != 2 {
		t.Fatalf("pushed %d, want 2", m.LastPushedCount())
	}
	if up != 2*(4+4) {
		t.Errorf("up bytes = %d, want 16", up)
	}
	// The two largest updates (-5 at idx 1, +3 at idx 3) go through.
	if contrib[1] != -5 || contrib[3] != 3 {
		t.Errorf("large updates not pushed: %v", contrib)
	}
	// The rest stay at the reference and accumulate as residual.
	if contrib[0] != 0 || contrib[2] != 0 || contrib[4] != 0 {
		t.Errorf("small updates leaked: %v", contrib)
	}
	if m.residual[0] != 0.1 || m.residual[2] != 0.2 {
		t.Errorf("residuals wrong: %v", m.residual)
	}
}

func TestTopKResidualEventuallySent(t *testing.T) {
	m := NewTopK(3, 0.34, 4) // k = 1 of 3
	x := []float64{0, 0, 0}
	m.PostIterate(0, x)

	// Scalar 0 moves a lot once; scalars 1 and 2 drip slowly. Their
	// accumulated residuals must eventually dominate and be pushed.
	sentSmall := false
	for round := 0; round < 30 && !sentSmall; round++ {
		if round == 0 {
			x[0] += 10
		}
		x[1] += 0.5
		x[2] += 0.4
		contrib, _, _ := m.PrepareUpload(round, x)
		if contrib[1] != m.lastGlobal[1] || contrib[2] != m.lastGlobal[2] {
			sentSmall = contrib[1] != 0 || contrib[2] != 0
		}
		m.ApplyDownload(round, x, contrib)
	}
	if !sentSmall {
		t.Error("small updates never escaped the residual")
	}
}

func TestTopKValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewTopK(0, 0.5, 4) },
		func() { NewTopK(3, 0, 4) },
		func() { NewTopK(3, 1.5, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: TopK never loses update mass — pushed + residual equals the
// accumulated raw update exactly.
func TestQuickTopKConservesMass(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw%20) + 2
		m := NewTopK(dim, 0.3, 4)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, dim)
		raw := make([]float64, dim) // total true movement
		m.PostIterate(0, x)
		for round := 0; round < 10; round++ {
			for j := range x {
				d := rng.NormFloat64()
				x[j] += d
				raw[j] += d
			}
			contrib, _, _ := m.PrepareUpload(round, x)
			m.ApplyDownload(round, x, contrib)
			// After a single-client round, the model equals the pushed
			// contribution and the residual carries exactly the raw
			// movement not yet reflected in it: no mass is ever lost.
			for j := range x {
				if math.Abs((x[j]+m.residual[j])-raw[j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStochasticQuantizedUnbiasedAndCheap(t *testing.T) {
	inner := fl.NewPassthroughManager(4)
	m := NewStochasticQuantized(inner, 4, 1, 99)
	x := []float64{0.5, -0.25, 1.0, 0}
	m.PostIterate(0, x)
	contrib, w, up := m.PrepareUpload(0, x)
	if w != 1 {
		t.Fatal("weight changed")
	}
	// 4 levels → 9 grid points → 4 bits per value: 16 B payload → 2 B + 8 B scale.
	if up != 16*4/32+8 {
		t.Errorf("up bytes = %d, want %d", up, 16*4/32+8)
	}
	// Values land on the grid scaled by max |x| = 1.
	for _, v := range contrib {
		g := v * 4
		if math.Abs(g-math.Round(g)) > 1e-9 {
			t.Errorf("value %v not on the 1/4 grid", v)
		}
	}
}

func TestStochasticQuantizedSharedDownload(t *testing.T) {
	// Two clients with different private seeds but the same shared seed
	// must apply the identical download quantization.
	a := NewStochasticQuantized(fl.NewPassthroughManager(4), 2, 1, 7)
	b := NewStochasticQuantized(fl.NewPassthroughManager(4), 2, 2, 7)
	global := []float64{0.3, -0.7, 0.9}
	xa := make([]float64, 3)
	xb := make([]float64, 3)
	a.ApplyDownload(0, xa, global)
	b.ApplyDownload(0, xb, global)
	for j := range xa {
		if xa[j] != xb[j] {
			t.Fatalf("download quantization diverged at %d: %v vs %v", j, xa[j], xb[j])
		}
	}
}

func TestStochasticQuantizerUnbiased(t *testing.T) {
	q := quantize.NewStochasticQuantizer(3, stats.SplitRNG(5, 0))
	const v = 0.37
	sum := 0.0
	const reps = 20000
	for i := 0; i < reps; i++ {
		xs := []float64{v, 1} // second element pins the scale at 1
		q.Quantize(xs)
		sum += xs[0]
	}
	mean := sum / reps
	if math.Abs(mean-v) > 0.01 {
		t.Errorf("stochastic quantization biased: mean %v, want %v", mean, v)
	}
}

func TestStochasticQuantizerBits(t *testing.T) {
	tests := []struct {
		levels int
		bits   int
	}{
		{1, 2},  // {-1,0,1} → 3 points → 2 bits
		{4, 4},  // 9 points → 4 bits
		{7, 4},  // 15 points → 4 bits
		{15, 5}, // 31 points → 5 bits
	}
	for _, tt := range tests {
		q := quantize.NewStochasticQuantizer(tt.levels, stats.SplitRNG(1, 0))
		if got := q.BitsPerValue(); got != tt.bits {
			t.Errorf("levels=%d: bits=%d, want %d", tt.levels, got, tt.bits)
		}
	}
}

func TestStochasticQuantizerZeroVector(t *testing.T) {
	q := quantize.NewStochasticQuantizer(2, stats.SplitRNG(2, 0))
	xs := []float64{0, 0}
	if scale := q.Quantize(xs); scale != 0 || xs[0] != 0 {
		t.Error("zero vector must pass through with scale 0")
	}
}

// TestTopKTieBreakDeterministic pins the tie-break contract: when update
// magnitudes tie, the k lowest indices win. With an unstable magnitude-only
// comparator the selection among ties is arbitrary (and changes with the
// sort implementation), breaking seeded bit-exact reproducibility; this
// test fails on that pre-fix comparator.
func TestTopKTieBreakDeterministic(t *testing.T) {
	// Magnitude-2 components scattered through magnitude-1 filler: the
	// input is far from sorted, so the sort really partitions, and the 2s
	// form one large tie group. With fraction 1/6 only 2s are selected,
	// and the contract says the lowest-indexed ones win.
	const dim = 256
	m := NewTopK(dim, 1.0/6, 8)
	zero := make([]float64, dim)
	m.PostIterate(0, zero) // reference model = 0

	x := make([]float64, dim)
	for j := range x {
		x[j] = 1
		if j%3 == 2 {
			x[j] = 2
		}
	}
	contrib, _, _ := m.PrepareUpload(0, x)
	k := dim / 6 // 42 slots for 85 tied 2s
	var got, want []int
	for j := 0; j < dim; j++ {
		if contrib[j] != 0 {
			got = append(got, j)
		}
	}
	for n := 0; n < k; n++ {
		want = append(want, 2+3*n) // the k lowest-indexed 2s
	}
	if len(got) != len(want) {
		t.Fatalf("selected %d components, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie selection not index-ordered: got %v..., want %v...", got[:i+1], want[:i+1])
		}
	}

	// Mixed magnitudes with a tie group: the two 5s win outright, the
	// remaining two slots go to the lowest-indexed 1s.
	m2 := NewTopK(8, 0.5, 8)
	m2.PostIterate(0, make([]float64, 8))
	x2 := []float64{5, 1, 1, -1, 1, 1, 1, -5}
	contrib2, _, _ := m2.PrepareUpload(0, x2)
	want2 := []float64{5, 1, 1, 0, 0, 0, 0, -5}
	for j := range want2 {
		if contrib2[j] != want2[j] {
			t.Fatalf("mixed-ties selection: contrib = %v, want %v", contrib2, want2)
		}
	}

	// Two identical fresh instances must make identical selections.
	a, b := NewTopK(dim, 0.1, 8), NewTopK(dim, 0.1, 8)
	a.PostIterate(0, zero)
	b.PostIterate(0, zero)
	ca, _, _ := a.PrepareUpload(0, x)
	cb, _, _ := b.PrepareUpload(0, x)
	for j := range ca {
		if ca[j] != cb[j] {
			t.Fatalf("identical instances diverged at component %d", j)
		}
	}
}
