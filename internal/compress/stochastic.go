package compress

import (
	"fmt"

	"apf/internal/fl"
	"apf/internal/quantize"
	"apf/internal/stats"
)

// StochasticQuantized wraps another manager with QSGD-style stochastic
// uniform quantization (§2.2's quantization family, generalizing the fp16
// wrapper): uploads are quantized with client-private randomness, and the
// broadcast global model is quantized once with randomness shared across
// clients (derived from (seed, round), emulating the server quantizing
// before broadcast) — shared, because each client applying different
// download noise would desynchronize local models and break APF's
// mask-consistency invariant.
type StochasticQuantized struct {
	inner      fl.SyncManager
	levels     int
	sharedSeed int64
	upQ        *quantize.StochasticQuantizer
}

var _ fl.SyncManager = (*StochasticQuantized)(nil)

// NewStochasticQuantized wraps inner with `levels` positive quantization
// levels (1 = TernGrad's {-1,0,1}). clientSeed drives the private upload
// randomness; sharedSeed must be identical on every client.
func NewStochasticQuantized(inner fl.SyncManager, levels int, clientSeed, sharedSeed int64) *StochasticQuantized {
	if inner == nil {
		panic("compress: nil inner manager")
	}
	return &StochasticQuantized{
		inner:      inner,
		levels:     levels,
		sharedSeed: sharedSeed,
		upQ:        quantize.NewStochasticQuantizer(levels, stats.SplitRNG(clientSeed, 555)),
	}
}

// PostIterate delegates to the wrapped manager.
func (m *StochasticQuantized) PostIterate(round int, x []float64) { m.inner.PostIterate(round, x) }

// wireBytes rescales a 32-bit-value byte count to the quantizer's bit
// width, plus the 8-byte shared scale.
func (m *StochasticQuantized) wireBytes(inner int64) int64 {
	bits := int64(m.upQ.BitsPerValue())
	return inner*bits/32 + 8
}

// PrepareUpload quantizes the inner payload with private randomness.
func (m *StochasticQuantized) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	contrib, w, up := m.inner.PrepareUpload(round, x)
	m.upQ.Quantize(contrib)
	return contrib, w, m.wireBytes(up)
}

// ApplyDownload quantizes the global model with shared per-round
// randomness, then delegates.
func (m *StochasticQuantized) ApplyDownload(round int, x, global []float64) int64 {
	q := quantize.NewStochasticQuantizer(m.levels, stats.SplitRNG(m.sharedSeed, int64(round)+777))
	g := append([]float64(nil), global...)
	q.Quantize(g)
	return m.wireBytes(m.inner.ApplyDownload(round, x, g))
}

// FrozenRatio delegates when the wrapped manager freezes parameters.
func (m *StochasticQuantized) FrozenRatio() float64 {
	if fr, ok := m.inner.(fl.FrozenRatioReporter); ok {
		return fr.FrozenRatio()
	}
	return 0
}

// MaskWords delegates when the wrapped manager exposes a mask.
func (m *StochasticQuantized) MaskWords() []uint64 {
	if mr, ok := m.inner.(fl.MaskReporter); ok {
		return mr.MaskWords()
	}
	return nil
}

// String describes the wrapper for logs.
func (m *StochasticQuantized) String() string {
	return fmt.Sprintf("StochasticQuantized(levels=%d, %d bits/value)", m.levels, m.upQ.BitsPerValue())
}
