package compress

import (
	"math"
	"testing"

	"apf/internal/fl"
	"apf/internal/quantize"
)

func TestPartialSyncExcludesStableForever(t *testing.T) {
	m := NewPartialSync(2, 1, 0.3, 0.8, 4)
	x := []float64{0, 0}
	// Scalar 0 oscillates, scalar 1 drifts.
	for round := 0; round < 40; round++ {
		if round%2 == 0 {
			x[0]++
		} else {
			x[0]--
		}
		x[1]++
		m.PostIterate(round, x)
		contrib, w, _ := m.PrepareUpload(round, x)
		if w != 1 {
			t.Fatal("partial sync must always contribute")
		}
		m.ApplyDownload(round, x, contrib)
	}
	if !m.excluded.Get(0) {
		t.Error("oscillating scalar should be excluded")
	}
	if m.excluded.Get(1) {
		t.Error("drifting scalar must stay synchronized")
	}
	if m.FrozenRatio() != 0.5 {
		t.Errorf("FrozenRatio = %v, want 0.5", m.FrozenRatio())
	}

	// Once excluded, the scalar is never re-included (no unfreezing in
	// this strawman) and downloads do not overwrite it.
	x[0] = 123
	global := []float64{777, 888}
	m.ApplyDownload(100, x, global)
	if x[0] != 123 {
		t.Error("excluded scalar overwritten by download")
	}
	if x[1] != 888 {
		t.Error("synchronized scalar not updated by download")
	}
}

func TestPartialSyncByteAccounting(t *testing.T) {
	m := NewPartialSync(4, 1, 0.5, 0.5, 4)
	x := make([]float64, 4)
	m.PostIterate(0, x)
	_, _, up := m.PrepareUpload(0, x)
	if up != 16 {
		t.Errorf("initial up bytes = %d, want 16", up)
	}
	m.excluded.Set(0)
	m.excluded.Set(1)
	_, _, up = m.PrepareUpload(1, x)
	if up != 8 {
		t.Errorf("up bytes with half excluded = %d, want 8", up)
	}
}

func TestGaiaSignificanceFiltering(t *testing.T) {
	m := NewGaia(3, 0.1, 0, 4)
	x := []float64{1, 1, 1}
	m.PostIterate(0, x)

	// Move scalar 0 a lot (significant: |0.5|/1 ≥ 0.1), scalar 1 a tiny
	// bit (insignificant), scalar 2 not at all.
	x[0] += 0.5
	x[1] += 0.001
	contrib, w, up := m.PrepareUpload(0, x)
	if w != 1 {
		t.Fatal("gaia always contributes")
	}
	if contrib[0] != 1.5 {
		t.Errorf("significant update not applied: %v", contrib[0])
	}
	if contrib[1] != 1 || contrib[2] != 1 {
		t.Errorf("insignificant updates leaked into contribution: %v", contrib)
	}
	if up != 8 { // one value: 4B value + 4B index
		t.Errorf("up bytes = %d, want 8", up)
	}
	if m.LastPushedCount() != 1 {
		t.Errorf("pushed count = %d, want 1", m.LastPushedCount())
	}

	// The withheld update accumulates: repeat small moves until their sum
	// crosses the threshold.
	m.ApplyDownload(0, x, contrib)
	sent := false
	for round := 1; round <= 200 && !sent; round++ {
		x[1] += 0.001
		c, _, _ := m.PrepareUpload(round, x)
		sent = c[1] != contrib[1]
		m.ApplyDownload(round, c, c)
		copy(x, c)
	}
	if !sent {
		t.Error("accumulated residual never crossed the significance threshold")
	}
}

func TestGaiaPullsFullModel(t *testing.T) {
	m := NewGaia(5, 0.01, 0, 4)
	x := make([]float64, 5)
	m.PostIterate(0, x)
	down := m.ApplyDownload(0, x, []float64{1, 2, 3, 4, 5})
	if down != 20 {
		t.Errorf("down bytes = %d, want full model (20)", down)
	}
	if x[4] != 5 {
		t.Error("download not applied")
	}
}

func TestGaiaThresholdDecay(t *testing.T) {
	m := NewGaia(1, 0.4, 10, 4)
	if m.thresholdAt(0) != 0.4 || m.thresholdAt(9) != 0.4 {
		t.Error("threshold decayed too early")
	}
	if m.thresholdAt(10) != 0.2 || m.thresholdAt(25) != 0.1 {
		t.Errorf("threshold decay wrong: %v %v", m.thresholdAt(10), m.thresholdAt(25))
	}
}

func TestCMFLRelevanceGate(t *testing.T) {
	m := NewCMFL(4, 0.75, 1, 4)
	x := []float64{0, 0, 0, 0}
	m.PostIterate(0, x)

	// Round 0: no reference direction yet → always send.
	x = []float64{1, 1, 1, 1}
	_, w, up := m.PrepareUpload(0, x)
	if w != 1 || up != 16 {
		t.Fatalf("first round must send full update: w=%v up=%d", w, up)
	}
	// Global moved in +1 direction everywhere.
	m.ApplyDownload(0, x, []float64{1, 1, 1, 1})

	// An aligned update (all +) is relevant.
	x = []float64{2, 2, 2, 1.5}
	_, w, up = m.PrepareUpload(1, x)
	if w != 1 || up != 16 {
		t.Errorf("aligned update withheld: w=%v up=%d", w, up)
	}

	// An opposing update (3 of 4 components negative → 25%% agreement)
	// is withheld entirely.
	x = []float64{0.5, 0.5, 0.5, 1.5}
	_, w, up = m.PrepareUpload(1, x)
	if w != 0 || up != 0 {
		t.Errorf("irrelevant update not withheld: w=%v up=%d", w, up)
	}
	if m.LastSent() {
		t.Error("LastSent should be false")
	}
}

func TestCMFLPullsFullModel(t *testing.T) {
	m := NewCMFL(3, 0.8, 1, 4)
	x := make([]float64, 3)
	m.PostIterate(0, x)
	down := m.ApplyDownload(0, x, []float64{1, 2, 3})
	if down != 12 {
		t.Errorf("down bytes = %d, want 12", down)
	}
}

func TestQuantizedWrapsPassthrough(t *testing.T) {
	inner := fl.NewPassthroughManager(4)
	m := NewQuantized(inner)
	x := []float64{0.1, -3.25, 70000}
	m.PostIterate(0, x)
	contrib, w, up := m.PrepareUpload(0, x)
	if w != 1 {
		t.Fatal("weight changed by quantization")
	}
	if up != 6 { // 3 scalars × 2 bytes
		t.Errorf("up bytes = %d, want 6", up)
	}
	if contrib[1] != -3.25 {
		t.Error("exactly representable value changed")
	}
	if contrib[0] == 0.1 {
		t.Error("0.1 should have lost precision in fp16")
	}
	if math.Abs(contrib[0]-0.1) > 1e-4 {
		t.Errorf("fp16 error too large: %v", contrib[0])
	}
	if !math.IsInf(contrib[2], 1) {
		t.Errorf("out-of-range value should saturate: %v", contrib[2])
	}

	// Downloads are quantized before the inner manager sees them.
	down := m.ApplyDownload(0, x, []float64{0.1, 1, 2})
	if down != 6 {
		t.Errorf("down bytes = %d, want 6", down)
	}
	if x[0] != quantize.RoundTrip(0.1) {
		t.Errorf("download not quantized: %v", x[0])
	}
}

func TestQuantizedDelegatesReporting(t *testing.T) {
	q := NewQuantized(fl.NewPassthroughManager(4))
	if q.FrozenRatio() != 0 {
		t.Error("passthrough has no frozen params")
	}
	if q.MaskWords() != nil {
		t.Error("passthrough exposes no mask")
	}

	p := NewQuantized(NewPartialSync(4, 1, 0.5, 0.5, 4))
	if p.MaskWords() == nil {
		t.Error("mask should delegate to PartialSync")
	}
}

func TestConstructorValidation(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"partial dim", func() { NewPartialSync(0, 1, 0.1, 0.9, 4) }},
		{"partial interval", func() { NewPartialSync(3, 0, 0.1, 0.9, 4) }},
		{"gaia dim", func() { NewGaia(0, 0.1, 0, 4) }},
		{"cmfl dim", func() { NewCMFL(0, 0.8, 1, 4) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}
