package opt

import (
	"math"
	"math/rand"
	"testing"

	"apf/internal/nn"
	"apf/internal/tensor"
)

// quadNet builds a one-parameter "model" whose loss is (x-target)²/2 by
// setting the gradient manually.
func singleParam(v float64) []*nn.Param {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(nn.NewDense(rng, "fc", 1, 1))
	params := net.Params()
	params[0].Data.Data[0] = v
	return params
}

// setQuadGrad writes the gradient of (x-target)²/2 for every trainable
// scalar.
func setQuadGrad(params []*nn.Param, target float64) {
	for _, p := range params {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = p.Data.Data[j] - target
		}
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	params := singleParam(10)
	sgd := NewSGD(params, 0.1, 0, 0)
	for i := 0; i < 200; i++ {
		setQuadGrad(params, 3)
		sgd.Step()
	}
	for _, p := range params {
		for _, v := range p.Data.Data {
			if math.Abs(v-3) > 1e-6 {
				t.Errorf("SGD did not converge: %v", v)
			}
		}
	}
}

func TestSGDMomentumAcceleratesDescent(t *testing.T) {
	run := func(momentum float64) float64 {
		params := singleParam(10)
		sgd := NewSGD(params, 0.01, momentum, 0)
		for i := 0; i < 50; i++ {
			setQuadGrad(params, 0)
			sgd.Step()
		}
		return math.Abs(params[0].Data.Data[0])
	}
	if run(0.9) >= run(0) {
		t.Error("momentum should make faster progress on a smooth quadratic")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	params := singleParam(1)
	sgd := NewSGD(params, 0.1, 0, 0.5)
	// Zero task gradient: only decay acts.
	nn.ZeroGrads(params)
	sgd.Step()
	want := 1 - 0.1*0.5
	got := params[0].Data.Data[0]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("weight decay step = %v, want %v", got, want)
	}
}

func TestSGDSkipsNonTrainable(t *testing.T) {
	params := singleParam(5)
	params[1].Trainable = false
	params[1].Data.Data[0] = 42
	params[1].Grad.Data[0] = 100
	sgd := NewSGD(params, 0.1, 0.9, 0.1)
	sgd.Step()
	if params[1].Data.Data[0] != 42 {
		t.Error("SGD updated a non-trainable parameter")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	params := singleParam(10)
	adam := NewAdam(params, 0.2, 0)
	for i := 0; i < 400; i++ {
		setQuadGrad(params, -2)
		adam.Step()
	}
	for _, p := range params {
		for _, v := range p.Data.Data {
			if math.Abs(v+2) > 1e-3 {
				t.Errorf("Adam did not converge: %v", v)
			}
		}
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first Adam step is ≈ lr regardless of the
	// gradient scale.
	for _, scale := range []float64{1e-3, 1, 1e3} {
		params := singleParam(0)
		adam := NewAdam(params, 0.1, 0)
		params[0].Grad.Data[0] = scale
		params[1].Grad.Data[0] = scale
		adam.Step()
		if got := math.Abs(params[0].Data.Data[0]); math.Abs(got-0.1) > 1e-6 {
			t.Errorf("first Adam step %v for gradient scale %v, want ≈ lr", got, scale)
		}
	}
}

func TestSetLR(t *testing.T) {
	params := singleParam(0)
	for _, o := range []Optimizer{NewSGD(params, 0.1, 0, 0), NewAdam(params, 0.1, 0)} {
		o.SetLR(0.5)
		if o.LR() != 0.5 {
			t.Errorf("SetLR/LR round trip failed for %T", o)
		}
	}
}

func TestSchedules(t *testing.T) {
	c := ConstantSchedule{Rate: 0.3}
	if c.LRAt(0) != 0.3 || c.LRAt(1000) != 0.3 {
		t.Error("constant schedule wrong")
	}

	m := MultiplicativeDecay{Base: 1, Factor: 0.5, Every: 10}
	if m.LRAt(0) != 1 || m.LRAt(9) != 1 {
		t.Error("decay applied too early")
	}
	if m.LRAt(10) != 0.5 || m.LRAt(25) != 0.25 {
		t.Errorf("decay wrong: %v %v", m.LRAt(10), m.LRAt(25))
	}

	s := StepDecay{Base: 1, Milestones: []int{5, 15}}
	if s.LRAt(4) != 1 || s.LRAt(5) != 0.1 || s.LRAt(20) != 0.01 {
		t.Errorf("step decay wrong: %v %v %v", s.LRAt(4), s.LRAt(5), s.LRAt(20))
	}
}

func TestMultiplicativeDecayValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Every=0")
		}
	}()
	MultiplicativeDecay{Base: 1, Factor: 0.9}.LRAt(3)
}

// TestOptimizerTrainsRealNetwork trains the same tiny network with both
// optimizers and checks both reach low loss.
func TestOptimizerTrainsRealNetwork(t *testing.T) {
	build := func() (*nn.Network, *tensor.Tensor, []int) {
		rng := rand.New(rand.NewSource(3))
		net := nn.NewNetwork(
			nn.NewDense(rng, "fc1", 2, 8),
			nn.NewTanh(),
			nn.NewDense(rng, "fc2", 8, 2),
		)
		x := tensor.New(32, 2)
		labels := make([]int, 32)
		for i := 0; i < 32; i++ {
			c := i % 2
			labels[i] = c
			x.Data[2*i] = float64(2*c-1) + 0.2*rng.NormFloat64()
			x.Data[2*i+1] = float64(1-2*c) + 0.2*rng.NormFloat64()
		}
		return net, x, labels
	}

	optimizers := map[string]func(p []*nn.Param) Optimizer{
		"sgd":  func(p []*nn.Param) Optimizer { return NewSGD(p, 0.3, 0.9, 0) },
		"adam": func(p []*nn.Param) Optimizer { return NewAdam(p, 0.05, 0) },
	}
	for name, mk := range optimizers {
		t.Run(name, func(t *testing.T) {
			net, x, labels := build()
			o := mk(net.Params())
			for i := 0; i < 150; i++ {
				nn.ZeroGrads(net.Params())
				net.LossGrad(x, labels)
				o.Step()
			}
			loss, acc := net.Eval(x, labels)
			if acc < 0.95 || loss > 0.3 {
				t.Errorf("%s: loss=%v acc=%v after training", name, loss, acc)
			}
		})
	}
}
