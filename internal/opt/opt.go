// Package opt provides the optimizers and learning-rate schedules used in
// the paper's evaluation: SGD (with momentum and weight decay) for
// ResNet/LSTM and Adam for LeNet-5, plus constant, step-decay, and
// multiplicative-decay schedules (§7.1, §7.8).
package opt

import (
	"fmt"
	"math"

	"apf/internal/nn"
)

// Optimizer updates trainable model parameters from their accumulated
// gradients.
type Optimizer interface {
	// Step applies one update using the current learning rate and then
	// leaves gradients untouched (the training loop zeroes them).
	Step()
	// LR returns the current learning rate.
	LR() float64
	// SetLR overrides the current learning rate (used by schedules).
	SetLR(lr float64)
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// L2 weight decay.
type SGD struct {
	params      []*nn.Param
	lr          float64
	momentum    float64
	weightDecay float64

	velocity [][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, weightDecay: weightDecay}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Data.Size())
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for i, p := range s.params {
		if !p.Trainable {
			continue
		}
		data, grad := p.Data.Data, p.Grad.Data
		for j := range data {
			g := grad[j] + s.weightDecay*data[j]
			if s.velocity != nil {
				v := s.momentum*s.velocity[i][j] + g
				s.velocity[i][j] = v
				g = v
			}
			data[j] -= s.lr * g
		}
	}
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// SetLR overrides the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Adam is the Adam optimizer with bias correction and L2 weight decay.
type Adam struct {
	params      []*nn.Param
	lr          float64
	beta1       float64
	beta2       float64
	eps         float64
	weightDecay float64

	step int
	m, v [][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam constructs an Adam optimizer with the standard β₁=0.9, β₂=0.999,
// ε=1e-8 defaults.
func NewAdam(params []*nn.Param, lr, weightDecay float64) *Adam {
	a := &Adam{
		params:      params,
		lr:          lr,
		beta1:       0.9,
		beta2:       0.999,
		eps:         1e-8,
		weightDecay: weightDecay,
		m:           make([][]float64, len(params)),
		v:           make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Data.Size())
		a.v[i] = make([]float64, p.Data.Size())
	}
	return a
}

// Step applies one Adam update.
func (a *Adam) Step() {
	a.step++
	c1 := 1 - math.Pow(a.beta1, float64(a.step))
	c2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		if !p.Trainable {
			continue
		}
		data, grad := p.Data.Data, p.Grad.Data
		for j := range data {
			g := grad[j] + a.weightDecay*data[j]
			a.m[i][j] = a.beta1*a.m[i][j] + (1-a.beta1)*g
			a.v[i][j] = a.beta2*a.v[i][j] + (1-a.beta2)*g*g
			mHat := a.m[i][j] / c1
			vHat := a.v[i][j] / c2
			data[j] -= a.lr * mHat / (math.Sqrt(vHat) + a.eps)
		}
	}
}

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// SetLR overrides the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// Schedule maps an iteration number to a learning rate.
type Schedule interface {
	// LRAt returns the learning rate for (0-based) iteration k.
	LRAt(k int) float64
}

// ConstantSchedule keeps the learning rate fixed.
type ConstantSchedule struct {
	Rate float64
}

var _ Schedule = ConstantSchedule{}

// LRAt returns the fixed rate.
func (c ConstantSchedule) LRAt(int) float64 { return c.Rate }

// MultiplicativeDecay multiplies the base rate by Factor every Every
// iterations, mirroring the paper's "×0.99 every 10 epochs" setup (§7.8).
type MultiplicativeDecay struct {
	Base   float64
	Factor float64
	Every  int
}

var _ Schedule = MultiplicativeDecay{}

// LRAt returns Base·Factor^(k/Every).
func (m MultiplicativeDecay) LRAt(k int) float64 {
	if m.Every <= 0 {
		panic(fmt.Sprintf("opt: MultiplicativeDecay.Every must be positive, got %d", m.Every))
	}
	return m.Base * math.Pow(m.Factor, float64(k/m.Every))
}

// StepDecay divides the base rate by 10 at each listed milestone iteration.
type StepDecay struct {
	Base       float64
	Milestones []int
}

var _ Schedule = StepDecay{}

// LRAt returns the decayed rate for iteration k.
func (s StepDecay) LRAt(k int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if k >= m {
			lr /= 10
		}
	}
	return lr
}
