package tensor

import "math/rand"

// FillRandn fills t with independent Gaussian samples of the given mean and
// standard deviation, drawn from rng.
func (t *Tensor) FillRandn(rng *rand.Rand, mean, std float64) {
	for i := range t.Data {
		t.Data[i] = mean + std*rng.NormFloat64()
	}
}

// FillUniform fills t with independent uniform samples in [lo, hi).
func (t *Tensor) FillUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
}

// Randn returns a new tensor filled with Gaussian samples.
func Randn(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	t.FillRandn(rng, mean, std)
	return t
}

// Uniform returns a new tensor filled with uniform samples in [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	t.FillUniform(rng, lo, hi)
	return t
}
