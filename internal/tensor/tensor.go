// Package tensor implements dense, row-major, float64 tensors and the
// numeric kernels used by the neural-network substrate. It is intentionally
// small: only the operations needed by the APF reproduction are provided,
// but each is implemented carefully and tested against naive references.
//
// A Tensor owns its backing slice. Shape and Data are exported for
// hot-path access by sibling packages; callers must not resize them.
package tensor

import (
	"fmt"
	"strconv"
	"strings"
)

// Tensor is a dense row-major multi-dimensional array of float64.
//
// The zero value is not usable; construct tensors with New, FromSlice, or
// the fill helpers.
type Tensor struct {
	// Shape holds the extent of each dimension. It is owned by the
	// tensor; callers must treat it as read-only.
	Shape []int
	// Data is the row-major backing storage of length prod(Shape). It is
	// shared, not copied, by views such as Reshape.
	Data []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := sizeOf(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); len(data) must equal prod(shape).
func FromSlice(data []float64, shape ...int) *Tensor {
	if n := sizeOf(shape); n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v requires %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones returns a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// sizeOf returns the number of elements implied by shape.
func sizeOf(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view sharing t's data with a new shape. The total
// element count must be unchanged. One dimension may be -1, in which case it
// is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		switch {
		case d == -1:
			if infer >= 0 {
				panic("tensor: at most one dimension may be -1 in Reshape")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: invalid dimension %d in Reshape", d))
		default:
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// offset computes the flat offset of a multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index. It is a
// convenience for tests and setup code, not a hot-path accessor.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if d != o.Shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(fmt.Sprint(t.Shape))
	b.WriteByte('[')
	limit := len(t.Data)
	const maxShown = 16
	truncated := false
	if limit > maxShown {
		limit = maxShown
		truncated = true
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(t.Data[i], 'g', 4, 64))
	}
	if truncated {
		b.WriteString(" ...")
	}
	b.WriteByte(']')
	return b.String()
}
