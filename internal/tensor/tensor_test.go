package tensor

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewAndSize(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
		want  int
	}{
		{"scalarish", []int{1}, 1},
		{"vector", []int{5}, 5},
		{"matrix", []int{3, 4}, 12},
		{"rank4", []int{2, 3, 4, 5}, 120},
		{"zero-dim", []int{3, 0, 4}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x := New(tt.shape...)
			if got := x.Size(); got != tt.want {
				t.Errorf("Size() = %d, want %d", got, tt.want)
			}
			if x.Rank() != len(tt.shape) {
				t.Errorf("Rank() = %d, want %d", x.Rank(), len(tt.shape))
			}
			for _, v := range x.Data {
				if v != 0 {
					t.Fatalf("New not zero-filled: %v", x.Data)
				}
			}
		})
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with mismatched length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Errorf("At(1,2,3) = %v, want 7.5", got)
	}
	// Row-major layout: offset of (1,2,3) in 2x3x4 is 1*12+2*4+3 = 23.
	if x.Data[23] != 7.5 {
		t.Errorf("expected value at flat offset 23, data=%v", x.Data)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	x.At(2, 0)
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Errorf("reshape changed element order: %v", y.Data)
	}
	// Views share storage.
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Error("Reshape must share backing data")
	}
	z := x.Reshape(-1, 2)
	if z.Shape[0] != 3 || z.Shape[1] != 2 {
		t.Errorf("inferred reshape = %v, want [3 2]", z.Shape)
	}
}

func TestReshapeInvalid(t *testing.T) {
	x := New(2, 3)
	for _, shape := range [][]int{{4, 2}, {-1, -1}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reshape(%v) did not panic", shape)
				}
			}()
			x.Reshape(shape...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)

	if got := Add(a, b).Data; got[3] != 44 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 9 {
		t.Errorf("Sub wrong: %v", got)
	}
	if got := MulElem(a, b).Data; got[2] != 90 {
		t.Errorf("MulElem wrong: %v", got)
	}

	c := a.Clone()
	c.Axpy(0.5, b)
	want := []float64{6, 12, 18, 24}
	for i, v := range c.Data {
		if v != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, v, want[i])
		}
	}

	c.Scale(2)
	if c.Data[0] != 12 {
		t.Errorf("Scale wrong: %v", c.Data)
	}
	c.Zero()
	if c.Sum() != 0 {
		t.Errorf("Zero wrong: %v", c.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	Add(a, b)
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if x.Sum() != 7 {
		t.Errorf("Sum = %v", x.Sum())
	}
	if x.Mean() != 3.5 {
		t.Errorf("Mean = %v", x.Mean())
	}
	if !almostEqual(x.Norm2(), 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", x.Norm2())
	}
	empty := New(0)
	if empty.Mean() != 0 {
		t.Error("Mean of empty tensor should be 0")
	}
}

// matMulNaive is the textbook reference implementation.
func matMulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.At(i, kk) * b.At(kk, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := Randn(rng, 0, 1, m, k)
		b := Randn(rng, 0, 1, k, n)
		want := matMulNaive(a, b)

		got := MatMul(a, b)
		for i := range got.Data {
			if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("MatMul mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}

		gotTA := MatMulTransA(Transpose2D(a), b)
		gotTB := MatMulTransB(a, Transpose2D(b))
		for i := range want.Data {
			if !almostEqual(gotTA.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("MatMulTransA mismatch at %d", i)
			}
			if !almostEqual(gotTB.Data[i], want.Data[i], 1e-12) {
				t.Fatalf("MatMulTransB mismatch at %d", i)
			}
		}
	}
}

func TestMatMulShapeChecks(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"inner mismatch", func() { MatMul(New(2, 3), New(4, 2)) }},
		{"rank", func() { MatMul(New(2, 3, 1), New(3, 2)) }},
		{"transA inner", func() { MatMulTransA(New(2, 3), New(3, 2)) }},
		{"transB inner", func() { MatMulTransB(New(2, 3), New(2, 4)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tt.f()
		})
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose2D(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("transpose shape %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("transpose values wrong: %v", at.Data)
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float64{1, 5, 2, 7, 0, 3, 3, 3, 1}, 3, 3)
	got := ArgMaxRows(a)
	want := []int{1, 0, 0} // last row ties resolve to the lowest index
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ArgMaxRows[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFillRandnStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(20000)
	x.FillRandn(rng, 2, 3)
	mean := x.Mean()
	if math.Abs(mean-2) > 0.1 {
		t.Errorf("sample mean %v too far from 2", mean)
	}
	varSum := 0.0
	for _, v := range x.Data {
		varSum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varSum / float64(x.Size()))
	if math.Abs(std-3) > 0.15 {
		t.Errorf("sample std %v too far from 3", std)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Uniform(rng, -2, 5, 1000)
	for _, v := range x.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform sample %v out of [-2,5)", v)
		}
	}
}

// Property: Dot is symmetric and matches Norm2 on self-products.
func TestQuickDotProperties(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				vals[i] = math.Mod(v, 1000)
				if math.IsNaN(vals[i]) {
					vals[i] = 0
				}
			}
		}
		a := FromSlice(vals, len(vals))
		b := a.Clone()
		b.Scale(2)
		if !almostEqual(Dot(a, b), Dot(b, a), 1e-9) {
			return false
		}
		n := a.Norm2()
		return almostEqual(Dot(a, a), n*n, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Sub is the identity.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		sanitize := func(s []float64) []float64 {
			out := make([]float64, n)
			for i := 0; i < n; i++ {
				v := s[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 1
				}
				out[i] = math.Mod(v, 1e6)
			}
			return out
		}
		a := FromSlice(sanitize(xs), n)
		b := FromSlice(sanitize(ys), n)
		back := Sub(Add(a, b), b)
		for i := range a.Data {
			if !almostEqual(back.Data[i], a.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestQuickMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 0, 1, m, k)
		b := Randn(rng, 0, 1, k, n)
		c := Randn(rng, 0, 1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		for i := range left.Data {
			if !almostEqual(left.Data[i], right.Data[i], 1e-9) {
				t.Fatalf("distributivity failed at trial %d", trial)
			}
		}
	}
}

func TestFullOnesString(t *testing.T) {
	f := Full(2.5, 2, 2)
	for _, v := range f.Data {
		if v != 2.5 {
			t.Fatal("Full wrong")
		}
	}
	o := Ones(3)
	if o.Sum() != 3 {
		t.Fatal("Ones wrong")
	}
	s := o.String()
	if !strings.Contains(s, "Tensor[3]") {
		t.Errorf("String = %q", s)
	}
	big := New(100)
	if !strings.Contains(big.String(), "...") {
		t.Error("large tensor String should truncate")
	}
}

func TestCopyFromFillDim(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	a.CopyFrom(b)
	if a.At(1, 1) != 4 {
		t.Fatal("CopyFrom wrong")
	}
	a.Fill(7)
	if a.Sum() != 28 {
		t.Fatal("Fill wrong")
	}
	if a.Dim(0) != 2 || a.Rank() != 2 {
		t.Fatal("Dim/Rank wrong")
	}
	c := a.Clone()
	c.SubAssign(b)
	if c.At(0, 0) != 6 {
		t.Fatal("SubAssign wrong")
	}
	c.MulAssign(b)
	if c.At(0, 1) != 10 {
		t.Fatalf("MulAssign wrong: %v", c.Data)
	}
}

func TestNegativeShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dimension did not panic")
		}
	}()
	New(2, -1)
}
