package tensor

import (
	"fmt"
	"math"
)

// checkSameShape panics if the two tensors differ in shape; op names the
// caller for the panic message.
func checkSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// CopyFrom copies o's elements into t. Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) {
	checkSameShape("CopyFrom", t, o)
	copy(t.Data, o.Data)
}

// AddAssign adds o elementwise into t.
func (t *Tensor) AddAssign(o *Tensor) {
	checkSameShape("AddAssign", t, o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubAssign subtracts o elementwise from t.
func (t *Tensor) SubAssign(o *Tensor) {
	checkSameShape("SubAssign", t, o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulAssign multiplies t elementwise by o.
func (t *Tensor) MulAssign(o *Tensor) {
	checkSameShape("MulAssign", t, o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element of t by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Axpy performs t += alpha*x elementwise.
func (t *Tensor) Axpy(alpha float64, x *Tensor) {
	checkSameShape("Axpy", t, x)
	for i, v := range x.Data {
		t.Data[i] += alpha * v
	}
}

// Add returns a new tensor holding a+b.
func Add(a, b *Tensor) *Tensor {
	checkSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a new tensor holding a-b.
func Sub(a, b *Tensor) *Tensor {
	checkSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// MulElem returns the elementwise product a*b.
func MulElem(a, b *Tensor) *Tensor {
	checkSameShape("MulElem", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements, or 0 for an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Norm2 returns the Euclidean (L2) norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	checkSameShape("Dot", a, b)
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// MatMul multiplies two rank-2 tensors: (m×k)·(k×n) → (m×n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop contiguous over both b and out.
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransA computes aᵀ·b for rank-2 a (k×m) and b (k×n) → (m×n).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimensions differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a·bᵀ for rank-2 a (m×k) and b (n×k) → (m×n).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimensions differ: %v vs %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for kk, av := range arow {
				s += av * brow[kk]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank-2 operand, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// ArgMaxRows returns, for a rank-2 tensor, the column index of the maximum
// element of each row. Ties resolve to the lowest index.
func ArgMaxRows(a *Tensor) []int {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires rank-2 operand, got %v", a.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := make([]int, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		best := 0
		for j := 1; j < n; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
