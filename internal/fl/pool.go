package fl

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is a fixed set of persistent goroutines executing indexed
// fan-out jobs. The engine previously spawned two goroutines per client per
// round; at hundreds of clients and thousands of rounds that is millions of
// goroutine launches whose stacks and scheduler churn dominate the barrier
// cost. A pool amortizes the spawn to once per run, and Do itself performs
// no allocation: the job is published through pre-existing fields and
// workers pull indices from an atomic cursor.
//
// Do is not reentrant: a job function must not call Do on the same pool.
type workerPool struct {
	workers int
	wake    chan struct{}
	quit    chan struct{}

	// Job state for the Do in flight, published to workers by the wake
	// sends (channel happens-before) and retired by wg.Wait.
	fn   func(int)
	n    int
	next atomic.Int64
	wg   sync.WaitGroup
}

// newWorkerPool starts a pool with the given worker count (<= 0 means
// GOMAXPROCS).
func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{
		workers: workers,
		wake:    make(chan struct{}),
		quit:    make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake:
			for {
				i := int(p.next.Add(1)) - 1
				if i >= p.n {
					break
				}
				p.fn(i)
			}
			p.wg.Done()
		}
	}
}

// Do runs fn(i) for every i in [0, n) across the pool and waits for
// completion. Exactly workers wake signals are sent and each consumed
// signal is balanced by one wg.Done, so the barrier holds even when a fast
// worker drains several signals; no job state from one Do can leak into the
// next because Wait returns only after every signal is consumed.
func (p *workerPool) Do(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.wake <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
}

// Close terminates the workers. The pool must be idle; Do must not be
// called afterwards.
func (p *workerPool) Close() { close(p.quit) }
