// Package fl implements the federated-learning engine of the reproduction:
// a central server and N clients that train private model replicas on
// non-IID local shards and synchronize through a pluggable SyncManager —
// the seam where APF, the strawman schemes, Gaia, CMFL, and quantization
// plug in (the paper's APF_Manager/Gaia_Manager/CMFL_Manager modules).
//
// The engine runs clients on parallel goroutines with a barrier at every
// aggregation, counts every byte that would cross the client↔server link
// in both the push and pull phases, and supports the FedProx objective and
// straggler behaviour of the paper's §7.7.
package fl

import (
	"math/rand"

	"apf/internal/nn"
	"apf/internal/opt"
)

// SyncManager handles everything synchronization-related on one client,
// mirroring the paper's pluggable manager modules. Implementations decide
// what is transmitted, maintain freezing/selection state, and report the
// exact wire bytes of each exchange.
//
// The engine guarantees the call order, per round:
//
//	PostIterate × localIters  →  PrepareUpload  →  ApplyDownload
//
// All clients observe identical global state, so deterministic managers
// produce identical masks on every client (the paper's M_is_frozen
// consistency property); the test suite asserts this.
type SyncManager interface {
	// PostIterate is invoked after every local optimizer step with the
	// flat model vector, which it may mutate in place (APF rolls frozen
	// scalars back here, emulating fine-grained freezing).
	PostIterate(round int, x []float64)

	// PrepareUpload returns the dense contribution vector the server
	// should fold into the weighted average for this client, the client's
	// aggregation weight (0 withholds the contribution entirely, as CMFL
	// does for irrelevant updates), and the bytes pushed on the wire.
	// The returned slice must not alias x; it may be manager-owned
	// scratch, valid only until the next PrepareUpload call — callers
	// that retain it across rounds must copy. (The engine consumes it
	// before the round's download barrier; the transport encodes it
	// synchronously.)
	PrepareUpload(round int, x []float64) (contrib []float64, weight float64, upBytes int64)

	// ApplyDownload merges the aggregated global vector into the local
	// model x in place and returns the bytes pulled on the wire.
	ApplyDownload(round int, x, global []float64) (downBytes int64)
}

// FrozenRatioReporter is implemented by managers that freeze parameters;
// the engine records the ratio for the paper's frozen-ratio curves.
type FrozenRatioReporter interface {
	// FrozenRatio returns the fraction of scalars currently frozen.
	FrozenRatio() float64
}

// CompactCodec is implemented by managers whose synchronization payloads
// omit frozen entries. Real network transports (package transport) use it
// to put only the actually-transmitted scalars on the wire — the compact
// slice travels verbatim as the F64s payload of a wire.UpdateMsg, raw
// IEEE-754 bits with no further filtering — and the aggregation server
// averages compact payloads positionally, which is sound because every
// client's freezing mask is identical (transports guard this with a mask
// hash per update).
// Like PrepareUpload's contribution, both returned slices may be
// manager-owned scratch, valid only until the next call of the same
// method.
type CompactCodec interface {
	// CompactUpload extracts the transmitted scalars from a dense
	// contribution for the given round.
	CompactUpload(round int, contrib []float64) []float64
	// ExpandDownload reconstructs the dense global vector from an
	// aggregated compact payload, filling frozen entries locally.
	ExpandDownload(round int, compact []float64) []float64
}

// MaskReporter exposes the raw freezing mask for cross-client consistency
// checks in tests.
type MaskReporter interface {
	// MaskWords returns the freezing bitmap's backing words (read-only).
	MaskWords() []uint64
}

// MaskGenerationReporter is implemented by managers that version their
// freezing mask (core.Manager counts stability checks). Transports attach
// the generation to sparse updates so the server can trip on divergent
// mask histories before positional aggregation, and echo it on sparse
// globals so clients verify they expand against the intended mask.
type MaskGenerationReporter interface {
	// MaskGeneration returns the mask's generation (≥ 0).
	MaskGeneration() int
}

// ModelFactory builds one model replica. The engine seeds every replica
// with the same initial parameter vector regardless of the factory's rng.
type ModelFactory func(rng *rand.Rand) *nn.Network

// OptimizerFactory builds a client-local optimizer over params.
type OptimizerFactory func(params []*nn.Param) opt.Optimizer

// ManagerFactory builds the SyncManager for one client; dim is the flat
// model length.
type ManagerFactory func(clientID, dim int) SyncManager

// PassthroughManager is the no-compression baseline (vanilla FedAvg): the
// full model crosses the wire in both phases. It also serves as the
// "w/o APF" arm of every end-to-end comparison.
type PassthroughManager struct {
	bytesPerValue int64
}

var _ SyncManager = (*PassthroughManager)(nil)

// NewPassthroughManager constructs the baseline manager; bytesPerValue is
// the wire size of one scalar (the paper transmits 32-bit floats, so 4).
func NewPassthroughManager(bytesPerValue int) *PassthroughManager {
	return &PassthroughManager{bytesPerValue: int64(bytesPerValue)}
}

// PostIterate is a no-op for the baseline.
func (m *PassthroughManager) PostIterate(int, []float64) {}

// PrepareUpload pushes the full model.
func (m *PassthroughManager) PrepareUpload(_ int, x []float64) ([]float64, float64, int64) {
	contrib := append([]float64(nil), x...)
	return contrib, 1, int64(len(x)) * m.bytesPerValue
}

// ApplyDownload pulls the full model.
func (m *PassthroughManager) ApplyDownload(_ int, x, global []float64) int64 {
	copy(x, global)
	return int64(len(x)) * m.bytesPerValue
}
