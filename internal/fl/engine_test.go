package fl

import (
	"math"
	"math/rand"
	"testing"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

// testDataset builds a small learnable image task.
func testDataset(samples int, seed int64) *data.Dataset {
	return data.SynthImages(data.ImageConfig{
		Classes:  4,
		Channels: 1,
		Size:     8,
		Samples:  samples,
		NoiseStd: 0.6,
		Seed:     seed,
	})
}

// splitDataset draws train and test sets from the same distribution (same
// class prototypes) by splitting one generated pool.
func splitDataset(trainN, testN int, seed int64) (train, test *data.Dataset) {
	pool := testDataset(trainN+testN, seed)
	trainIdx := make([]int, trainN)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, testN)
	for i := range testIdx {
		testIdx[i] = trainN + i
	}
	return pool.Subset(trainIdx), pool.Subset(testIdx)
}

// mlpFactory builds a small model over flattened 8×8 images.
func mlpFactory(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", 64, 24),
		nn.NewTanh(),
		nn.NewDense(rng, "fc2", 24, 4),
	)
}

func sgdFactory(lr float64) OptimizerFactory {
	return func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, lr, 0, 0) }
}

func passthroughFactory(clientID, dim int) SyncManager { return NewPassthroughManager(4) }

// baseConfig is a fast-but-learnable run.
func baseConfig() Config {
	return Config{
		Rounds:     25,
		LocalIters: 4,
		BatchSize:  16,
		Seed:       1,
		EvalEvery:  5,
	}
}

func TestFedAvgLearns(t *testing.T) {
	train, test := splitDataset(240, 80, 1)
	rng := stats.SplitRNG(1, 77)
	parts := data.PartitionIID(rng, train.Len(), 3)

	e := New(baseConfig(), mlpFactory, sgdFactory(0.3), passthroughFactory, train, parts, test)
	res := e.Run()

	if res.BestAcc < 0.8 {
		t.Errorf("FedAvg best accuracy %v, want ≥ 0.8 on an easy task", res.BestAcc)
	}
	// Full model both ways every round: bytes = rounds × clients × dim × 4.
	wantBytes := int64(25 * 3 * res.Dim * 4)
	if res.CumUpBytes != wantBytes || res.CumDownBytes != wantBytes {
		t.Errorf("bytes up=%d down=%d, want %d", res.CumUpBytes, res.CumDownBytes, wantBytes)
	}
}

func TestEngineIsDeterministic(t *testing.T) {
	train, test := splitDataset(120, 40, 3)
	run := func() *Result {
		rng := stats.SplitRNG(2, 0)
		parts := data.PartitionIID(rng, train.Len(), 2)
		cfg := baseConfig()
		cfg.Rounds = 8
		e := New(cfg, mlpFactory, sgdFactory(0.2), passthroughFactory, train, parts, test)
		return e.Run()
	}
	a, b := run(), run()
	if a.BestAcc != b.BestAcc || a.CumUpBytes != b.CumUpBytes {
		t.Errorf("engine not deterministic: %v/%v vs %v/%v", a.BestAcc, a.CumUpBytes, b.BestAcc, b.CumUpBytes)
	}
}

// recordingManager captures engine→manager interactions for protocol tests.
type recordingManager struct {
	dim        int
	iterations int
	contrib    float64
	weight     float64
	downloaded []float64
}

func (m *recordingManager) PostIterate(_ int, x []float64) { m.iterations++ }

func (m *recordingManager) PrepareUpload(_ int, x []float64) ([]float64, float64, int64) {
	c := make([]float64, m.dim)
	for i := range c {
		c[i] = m.contrib
	}
	return c, m.weight, 0
}

func (m *recordingManager) ApplyDownload(_ int, x, global []float64) int64 {
	m.downloaded = append([]float64(nil), global...)
	return 0
}

func TestAggregationIsWeightedMean(t *testing.T) {
	train := testDataset(60, 5)
	mgrs := make([]*recordingManager, 3)
	mf := func(clientID, dim int) SyncManager {
		m := &recordingManager{dim: dim, contrib: float64(clientID + 1), weight: 1}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(3, 0)
	parts := data.PartitionIID(rng, train.Len(), 3)
	cfg := baseConfig()
	cfg.Rounds = 1
	cfg.EvalEvery = 0
	e := New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil)
	e.Run()

	// Contributions 1, 2, 3 with equal weights → global = 2 everywhere.
	for _, m := range mgrs {
		for _, v := range m.downloaded {
			if v != 2 {
				t.Fatalf("global = %v, want 2 (mean of 1,2,3)", v)
			}
		}
	}
}

func TestZeroWeightContributionIgnored(t *testing.T) {
	train := testDataset(60, 6)
	mgrs := make([]*recordingManager, 2)
	mf := func(clientID, dim int) SyncManager {
		w := 1.0
		if clientID == 1 {
			w = 0 // withheld (e.g. CMFL irrelevant update)
		}
		m := &recordingManager{dim: dim, contrib: float64(100 * (clientID + 1)), weight: w}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(4, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Rounds = 1
	cfg.EvalEvery = 0
	e := New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil)
	e.Run()

	for _, v := range mgrs[0].downloaded {
		if v != 100 {
			t.Fatalf("global = %v, want 100 (only client 0 contributes)", v)
		}
	}
}

func TestStragglersRunFewerIterations(t *testing.T) {
	train := testDataset(60, 7)
	mgrs := make([]*recordingManager, 2)
	mf := func(clientID, dim int) SyncManager {
		m := &recordingManager{dim: dim, contrib: 1, weight: 1}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(5, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Rounds = 2
	cfg.LocalIters = 8
	cfg.EvalEvery = 0
	cfg.WorkFractions = []float64{1, 0.25}
	e := New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil)
	e.Run()

	if mgrs[0].iterations != 16 {
		t.Errorf("full client ran %d iterations, want 16", mgrs[0].iterations)
	}
	if mgrs[1].iterations != 4 {
		t.Errorf("straggler ran %d iterations, want 4 (25%% of 16)", mgrs[1].iterations)
	}
}

func TestDropStragglersExcludesFromAggregation(t *testing.T) {
	train := testDataset(60, 8)
	mgrs := make([]*recordingManager, 2)
	mf := func(clientID, dim int) SyncManager {
		m := &recordingManager{dim: dim, contrib: float64(10 * (clientID + 1)), weight: 1}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(6, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Rounds = 1
	cfg.EvalEvery = 0
	cfg.WorkFractions = []float64{1, 0.5}
	cfg.DropStragglers = true
	e := New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil)
	e.Run()

	for _, v := range mgrs[0].downloaded {
		if v != 10 {
			t.Fatalf("global = %v, want 10 (straggler dropped)", v)
		}
	}
}

func TestFedProxKeepsModelNearRoundStart(t *testing.T) {
	train := testDataset(120, 9)
	run := func(mu float64) float64 {
		rng := stats.SplitRNG(7, 0)
		parts := data.PartitionIID(rng, train.Len(), 2)
		cfg := baseConfig()
		cfg.Rounds = 1
		cfg.LocalIters = 20
		cfg.EvalEvery = 0
		cfg.Prox = mu
		var drift float64
		mf := func(clientID, dim int) SyncManager {
			return &driftProbe{inner: NewPassthroughManager(4), drift: &drift}
		}
		e := New(cfg, mlpFactory, sgdFactory(0.3), mf, train, parts, nil)
		e.Run()
		return drift
	}
	free := run(0)
	proximal := run(1) // proximal pull (μ·lr < 1 keeps the pull stable)
	if proximal >= free {
		t.Errorf("FedProx drift %v not smaller than FedAvg drift %v", proximal, free)
	}
}

// driftProbe measures how far the local model moved during the round.
type driftProbe struct {
	inner SyncManager
	start []float64
	drift *float64
}

func (p *driftProbe) PostIterate(round int, x []float64) {
	if p.start == nil {
		p.start = append([]float64(nil), x...)
	}
	p.inner.PostIterate(round, x)
}

func (p *driftProbe) PrepareUpload(round int, x []float64) ([]float64, float64, int64) {
	d := 0.0
	for j := range x {
		d += (x[j] - p.start[j]) * (x[j] - p.start[j])
	}
	*p.drift += math.Sqrt(d)
	return p.inner.PrepareUpload(round, x)
}

func (p *driftProbe) ApplyDownload(round int, x, global []float64) int64 {
	return p.inner.ApplyDownload(round, x, global)
}

func TestTrackParamsRecorded(t *testing.T) {
	train := testDataset(60, 10)
	rng := stats.SplitRNG(8, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Rounds = 3
	cfg.EvalEvery = 0
	cfg.TrackParams = []int{0, 5}
	e := New(cfg, mlpFactory, sgdFactory(0.1), passthroughFactory, train, parts, nil)
	res := e.Run()

	for _, rm := range res.Rounds {
		if len(rm.Tracked) != 2 {
			t.Fatalf("tracked %d clients, want 2", len(rm.Tracked))
		}
		for _, vals := range rm.Tracked {
			if len(vals) != 2 {
				t.Fatalf("tracked %d params, want 2", len(vals))
			}
		}
	}
}

func TestAPFIntegration(t *testing.T) {
	train, test := splitDataset(240, 80, 11)
	rng := stats.SplitRNG(9, 0)
	parts := data.PartitionIID(rng, train.Len(), 3)

	cfg := baseConfig()
	cfg.Rounds = 40

	apfManagers := make([]*core.Manager, 3)
	apfFactory := func(clientID, dim int) SyncManager {
		m := core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			Threshold:        0.2,
			EMAAlpha:         0.9,
			Seed:             99,
		})
		apfManagers[clientID] = m
		return m
	}

	apfRes := New(cfg, mlpFactory, sgdFactory(0.3), apfFactory, train, parts, test).Run()
	baseRes := New(cfg, mlpFactory, sgdFactory(0.3), passthroughFactory, train, parts, test).Run()

	// Masks must be identical across clients (the paper's consistency
	// property: M_is_frozen is a deterministic function of synchronized
	// state).
	w0 := apfManagers[0].MaskWords()
	for c := 1; c < 3; c++ {
		wc := apfManagers[c].MaskWords()
		for i := range w0 {
			if w0[i] != wc[i] {
				t.Fatalf("client %d freezing mask diverged from client 0", c)
			}
		}
	}

	// APF must save traffic...
	if apfRes.CumUpBytes >= baseRes.CumUpBytes {
		t.Errorf("APF up bytes %d not below baseline %d", apfRes.CumUpBytes, baseRes.CumUpBytes)
	}
	if apfRes.CumDownBytes >= baseRes.CumDownBytes {
		t.Errorf("APF down bytes %d not below baseline %d", apfRes.CumDownBytes, baseRes.CumDownBytes)
	}
	// ...freeze something...
	finalFrozen := apfRes.Rounds[len(apfRes.Rounds)-1].FrozenRatio
	if finalFrozen <= 0 {
		t.Error("APF froze nothing on a converged easy task")
	}
	// ...and stay accuracy-comparable (within 10 points on this task).
	if apfRes.BestAcc < baseRes.BestAcc-0.10 {
		t.Errorf("APF accuracy %v fell too far below baseline %v", apfRes.BestAcc, baseRes.BestAcc)
	}
}

func TestEvaluateModel(t *testing.T) {
	test := testDataset(50, 13)
	rng := stats.SplitRNG(10, 0)
	net := mlpFactory(rng)
	loss, acc := EvaluateModel(net, test, 16)
	if math.IsNaN(loss) || acc < 0 || acc > 1 {
		t.Errorf("EvaluateModel returned loss=%v acc=%v", loss, acc)
	}
	loss2, acc2 := EvaluateModel(net, test, 7) // odd batch size, same result
	if math.Abs(loss-loss2) > 1e-9 || math.Abs(acc-acc2) > 1e-9 {
		t.Error("EvaluateModel depends on batch size")
	}
	if l, a := EvaluateModel(net, nil, 16); !math.IsNaN(l) || !math.IsNaN(a) {
		t.Error("EvaluateModel on nil dataset should return NaN")
	}
}

func TestConfigValidation(t *testing.T) {
	train := testDataset(20, 14)
	rng := stats.SplitRNG(11, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	tests := []struct {
		name string
		mod  func(c *Config)
	}{
		{"rounds", func(c *Config) { c.Rounds = 0 }},
		{"iters", func(c *Config) { c.LocalIters = 0 }},
		{"batch", func(c *Config) { c.BatchSize = 0 }},
		{"work fractions", func(c *Config) { c.WorkFractions = []float64{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mod(&cfg)
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			New(cfg, mlpFactory, sgdFactory(0.1), passthroughFactory, train, parts, nil)
		})
	}
}
