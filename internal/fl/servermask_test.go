package fl_test

import (
	"math/rand"
	"testing"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

// TestServerSideMaskEquivalence verifies §9's "placement of freezing mask
// computation": moving the stability checking from the clients to the
// server changes *where* the mask is computed but not *what* it is — the
// two placements produce bit-identical masks, identical models, and
// identical upload traffic (the server placement pays a small extra
// mask-delta downlink).
func TestServerSideMaskEquivalence(t *testing.T) {
	pool := data.SynthImages(data.ImageConfig{
		Classes: 4, Channels: 1, Size: 8, Samples: 300, NoiseStd: 0.6, Seed: 41,
	})
	trainIdx := make([]int, 240)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, 60)
	for i := range testIdx {
		testIdx[i] = 240 + i
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	rng := stats.SplitRNG(41, 0)
	parts := data.PartitionIID(rng, train.Len(), 3)

	model := func(rng *rand.Rand) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewDense(rng, "fc1", 64, 24),
			nn.NewTanh(),
			nn.NewDense(rng, "fc2", 24, 4),
		)
	}
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) }
	apfCfg := core.Config{
		CheckEveryRounds: 2,
		Threshold:        0.25,
		EMAAlpha:         0.9,
		Seed:             55,
	}
	cfg := fl.Config{Rounds: 30, LocalIters: 4, BatchSize: 16, Seed: 41, EvalEvery: 10}

	// Arm 1: client-side masks (the default design).
	clientManagers := make([]*core.Manager, 3)
	clientSide := func(clientID, dim int) fl.SyncManager {
		c := apfCfg
		c.Dim = dim
		m := core.NewManager(c)
		clientManagers[clientID] = m
		return m
	}
	resClient := fl.New(cfg, model, optimizer, clientSide, train, parts, test).Run()

	// Arm 2: server-side masks (§9 placement). One MaskServer shared by
	// thin MaskClients.
	var srv *core.MaskServer
	maskClients := make([]*core.MaskClient, 3)
	serverSide := func(clientID, dim int) fl.SyncManager {
		if srv == nil {
			c := apfCfg
			c.Dim = dim
			srv = core.NewMaskServer(c)
		}
		mc := core.NewMaskClient(srv, 4)
		maskClients[clientID] = mc
		return mc
	}
	resServer := fl.New(cfg, model, optimizer, serverSide, train, parts, test).Run()

	// Identical masks...
	wantWords := clientManagers[0].MaskWords()
	for c := 0; c < 3; c++ {
		gotWords := maskClients[c].MaskWords()
		for i := range wantWords {
			if gotWords[i] != wantWords[i] {
				t.Fatalf("server-side mask diverged from client-side (client %d, word %d)", c, i)
			}
		}
	}
	// ...identical training outcome...
	if resClient.BestAcc != resServer.BestAcc {
		t.Errorf("accuracy differs: client-side %v vs server-side %v", resClient.BestAcc, resServer.BestAcc)
	}
	// ...identical upload traffic; downloads differ only by the
	// mask-delta bytes.
	if resClient.CumUpBytes != resServer.CumUpBytes {
		t.Errorf("upload bytes differ: %d vs %d", resClient.CumUpBytes, resServer.CumUpBytes)
	}
	if resServer.CumDownBytes < resClient.CumDownBytes {
		t.Errorf("server-side downloads %d below client-side %d — mask deltas must cost, not save",
			resServer.CumDownBytes, resClient.CumDownBytes)
	}
	extra := resServer.CumDownBytes - resClient.CumDownBytes
	if extra > resClient.CumDownBytes/10 {
		t.Errorf("mask-delta overhead %d suspiciously large vs %d", extra, resClient.CumDownBytes)
	}
}
