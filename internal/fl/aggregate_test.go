package fl

import (
	"apf/internal/quantize"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// serialWeightedMean is the unsharded, unpooled reference for the exact
// reduction: one column at a time, folding fixed-point products with the
// same primitives the Aggregator shards. Any deviation in the sharded
// path's chunking or pool scheduling shows up as a bit difference here.
func serialWeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	var wlo, whi uint64
	for _, w := range weights {
		if w == 0 {
			continue
		}
		plo, phi, ok := fixFromFloat(w)
		if !ok {
			return false
		}
		if wlo, whi, ok = fixAdd(wlo, whi, plo, phi); !ok {
			return false
		}
	}
	if int64(whi) < 0 || (whi == 0 && wlo == 0) {
		return false
	}
	wf := fixToFloat(wlo, whi)
	for j := range dst {
		var slo, shi uint64
		for k, c := range contribs {
			if weights[k] == 0 {
				continue
			}
			plo, phi, _ := fixFromFloat(weights[k] * c[j])
			slo, shi, _ = fixAdd(slo, shi, plo, phi)
		}
		dst[j] = fixToFloat(slo, shi) / wf
	}
	return true
}

// TestWeightedMeanMatchesSerial checks the sharded reduction is bit-exact
// against the serial loop across dimensions spanning the single-chunk fast
// path, ragged tails, and many-chunk fan-out, including zero-weight clients
// with nil contributions (inactive under partial participation). Run under
// -race this also exercises the pool's publish/retire synchronization over
// many back-to-back jobs.
func TestWeightedMeanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 3, 8} {
		a := NewAggregator(workers)
		for _, dim := range []int{1, 100, minChunk, minChunk + 1, 8*minChunk + 37} {
			for _, clients := range []int{1, 7} {
				contribs := make([][]float64, clients)
				weights := make([]float64, clients)
				for k := range contribs {
					if k%3 == 2 {
						// Inactive client: no contribution this round.
						contribs[k], weights[k] = nil, 0
						continue
					}
					contribs[k] = make([]float64, dim)
					for j := range contribs[k] {
						contribs[k][j] = rng.NormFloat64()
					}
					weights[k] = rng.Float64() + 0.1
				}
				got := make([]float64, dim)
				want := make([]float64, dim)
				if g, w := a.WeightedMean(got, contribs, weights), serialWeightedMean(want, contribs, weights); g != w {
					t.Fatalf("workers=%d dim=%d clients=%d aggregated=%v, serial says %v", workers, dim, clients, g, w)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("workers=%d dim=%d clients=%d element %d = %v, want %v (not bit-exact)", workers, dim, clients, j, got[j], want[j])
					}
				}
			}
		}
		a.Close()
	}
}

// TestWeightedMeanZeroTotalWeightLeavesDst verifies the "nothing to
// aggregate" contract: dst keeps the previous global untouched.
func TestWeightedMeanZeroTotalWeightLeavesDst(t *testing.T) {
	a := NewAggregator(2)
	defer a.Close()
	dst := []float64{1, 2, 3}
	if a.WeightedMean(dst, [][]float64{nil, nil}, []float64{0, 0}) {
		t.Fatal("WeightedMean reported aggregation with zero total weight")
	}
	for j, v := range dst {
		if v != float64(j+1) {
			t.Fatalf("dst[%d] mutated to %v", j, v)
		}
	}
}

// TestStreamingReduceMatchesOneShot collects rounds incrementally in
// arbitrary arrival order and checks Reduce is bit-exact with the
// one-shot WeightedMean over the same clients in id order.
func TestStreamingReduceMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewAggregator(3)
	defer a.Close()
	ref := NewAggregator(1)
	defer ref.Close()

	const clients, dim = 5, 2*minChunk + 11
	for round := 0; round < 4; round++ {
		contribs := make([][]float64, clients)
		weights := make([]float64, clients)
		for k := range contribs {
			contribs[k] = make([]float64, dim)
			for j := range contribs[k] {
				contribs[k][j] = rng.NormFloat64()
			}
			weights[k] = rng.Float64() + 0.1
		}

		a.Open(round, clients)
		for _, id := range rng.Perm(clients) { // arrival order must not matter
			if err := a.Add(id, contribs[id], weights[id]); err != nil {
				t.Fatalf("round %d Add(%d): %v", round, id, err)
			}
		}
		if a.Count() != clients || a.Dim() != dim {
			t.Fatalf("round %d: count=%d dim=%d", round, a.Count(), a.Dim())
		}
		got := make([]float64, dim)
		count, ok := a.Reduce(got)
		if !ok || count != clients {
			t.Fatalf("round %d Reduce: count=%d ok=%v", round, count, ok)
		}
		want := make([]float64, dim)
		ref.WeightedMean(want, contribs, weights)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("round %d element %d = %v, want %v (not bit-exact)", round, j, got[j], want[j])
			}
		}
	}
}

// TestStreamingAndPartialModesBitExact drives the three collection modes
// — stored slots, streaming folds, and a two-tier relay split exporting
// and re-merging partials — over the same clients and requires all of
// them to reduce to identical bits, dropped clients included.
func TestStreamingAndPartialModesBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const clients, relays, dim = 11, 3, minChunk + 7
	for round := 0; round < 3; round++ {
		contribs := make([][]float64, clients)
		weights := make([]float64, clients)
		for k := range contribs {
			if k%5 == 4 {
				continue // dropped client: no contribution this round
			}
			contribs[k] = make([]float64, dim)
			for j := range contribs[k] {
				contribs[k][j] = rng.NormFloat64()
			}
			weights[k] = rng.Float64() + 0.1
		}

		// Reference: the default stored-slot path.
		flat := NewAggregator(2)
		flat.Open(round, clients)
		for k := range contribs {
			if contribs[k] == nil {
				continue
			}
			if err := flat.Add(k, contribs[k], weights[k]); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]float64, dim)
		wantCount, ok := flat.Reduce(want)
		flat.Close()
		if !ok {
			t.Fatal("flat Reduce failed")
		}

		// Streaming: same clients in random arrival order, nothing retained.
		stream := NewAggregator(2)
		stream.SetStreaming(true)
		stream.Open(round, clients)
		for _, k := range rng.Perm(clients) {
			if contribs[k] == nil {
				continue
			}
			if err := stream.Add(k, contribs[k], weights[k]); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]float64, dim)
		count, ok := stream.Reduce(got)
		stream.Close()
		if !ok || count != wantCount {
			t.Fatalf("streaming Reduce: count=%d ok=%v, want %d", count, ok, wantCount)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("round %d streaming element %d = %v, want %v", round, j, got[j], want[j])
			}
		}

		// Two-tier: clients partitioned across relays, partials exported
		// and merged at a root in random order.
		parts := make([]Partial, relays)
		for r := range parts {
			relay := NewAggregator(1)
			relay.SetStreaming(true)
			relay.Open(round, clients)
			for k := range contribs {
				if contribs[k] == nil || k%relays != r {
					continue
				}
				if err := relay.Add(k, contribs[k], weights[k]); err != nil {
					t.Fatal(err)
				}
			}
			if _, ok := relay.ExportPartial(&parts[r]); !ok {
				t.Fatalf("relay %d ExportPartial failed", r)
			}
			relay.Close()
		}
		root := NewAggregator(2)
		root.SetStreaming(true)
		root.Open(round, relays)
		for _, r := range rng.Perm(relays) {
			if err := root.AddPartial(r, &parts[r]); err != nil {
				t.Fatal(err)
			}
		}
		if root.Count() != relays || root.ClientCount() != wantCount {
			t.Fatalf("root counts: relays=%d clients=%d, want %d/%d",
				root.Count(), root.ClientCount(), relays, wantCount)
		}
		got2 := make([]float64, dim)
		if _, ok := root.Reduce(got2); !ok {
			t.Fatal("root Reduce failed")
		}
		root.Close()
		for j := range want {
			if got2[j] != want[j] {
				t.Fatalf("round %d two-tier element %d = %v, want %v", round, j, got2[j], want[j])
			}
		}

		// Non-streaming export folds the stored slots to the same partial.
		slotted := NewAggregator(1)
		slotted.Open(round, clients)
		for k := range contribs {
			if contribs[k] == nil {
				continue
			}
			if err := slotted.Add(k, contribs[k], weights[k]); err != nil {
				t.Fatal(err)
			}
		}
		var fromSlots, fromStream Partial
		if _, ok := slotted.ExportPartial(&fromSlots); !ok {
			t.Fatal("slotted ExportPartial failed")
		}
		slotted.Close()
		for _, p := range parts {
			if err := fromStream.Merge(&p); err != nil {
				t.Fatal(err)
			}
		}
		if fromSlots.Count != fromStream.Count ||
			fromSlots.WeightLo != fromStream.WeightLo || fromSlots.WeightHi != fromStream.WeightHi {
			t.Fatal("slot-fold and stream-fold partials disagree on weight/count")
		}
		for i := range fromSlots.Cols {
			if fromSlots.Cols[i] != fromStream.Cols[i] {
				t.Fatalf("slot-fold and stream-fold partials disagree at column word %d", i)
			}
		}
	}
}

// TestStreamingAddValidation pins the streaming-mode guards: duplicates,
// out-of-range ids, poisoned payloads, mode mixing, and the
// streaming/trimmed incompatibility.
func TestStreamingAddValidation(t *testing.T) {
	a := NewAggregator(1)
	defer a.Close()
	a.SetStreaming(true)
	a.Open(0, 3)
	if err := a.Add(0, []float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(0, []float64{1, 2}, 1); err == nil {
		t.Fatal("streaming duplicate accepted")
	}
	if err := a.Add(5, []float64{1, 2}, 1); err == nil {
		t.Fatal("streaming out-of-range id accepted")
	}
	if err := a.Add(1, []float64{math.NaN(), 2}, 1); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("streaming NaN err = %v", err)
	}
	if err := a.Add(1, []float64{1}, 1); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("streaming length mismatch err = %v", err)
	}
	if a.Count() != 1 || !a.Received(0) || a.Received(1) {
		t.Fatalf("streaming guards mutated state: count=%d", a.Count())
	}
	if a.Dim() != 2 {
		t.Fatalf("streaming Dim = %d", a.Dim())
	}
	var p Partial
	if err := p.Fold([]float64{3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddPartial(1, &p); err == nil {
		t.Fatal("AddPartial mixed into a client round")
	}

	// And the converse: a partial round refuses plain Adds.
	a.Discard()
	a.Open(1, 3)
	if err := a.AddPartial(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(1, []float64{1, 2}, 1); err == nil {
		t.Fatal("Add mixed into a partial round")
	}

	// AddPartial needs streaming mode.
	b := NewAggregator(1)
	defer b.Close()
	b.Open(0, 2)
	if err := b.AddPartial(0, &p); err == nil {
		t.Fatal("AddPartial accepted on a non-streaming aggregator")
	}

	// Streaming and trimmed reduction are mutually exclusive, both ways.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetReduction(trimmed) on a streaming aggregator did not panic")
			}
		}()
		c := NewAggregator(1)
		defer c.Close()
		c.SetStreaming(true)
		c.SetReduction(ReduceTrimmed, 0.25)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetStreaming on a trimmed aggregator did not panic")
			}
		}()
		c := NewAggregator(1)
		defer c.Close()
		c.SetReduction(ReduceTrimmed, 0.25)
		c.SetStreaming(true)
	}()
}

// TestAddRejectsPoisonedContribution is the poisoned-client regression:
// NaN and Inf scalars, non-finite weights, duplicates, and length
// disagreements all get typed errors, and a rejected contribution leaves
// the round's aggregate unchanged.
func TestAddRejectsPoisonedContribution(t *testing.T) {
	a := NewAggregator(1)
	defer a.Close()
	a.Open(0, 3)

	good0 := []float64{1, 2, 3}
	good2 := []float64{4, 5, 6}
	if err := a.Add(0, good0, 1); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		id      int
		contrib []float64
		weight  float64
		finite  bool // expect ErrNonFinite specifically
	}{
		{"nan scalar", 1, []float64{1, math.NaN(), 3}, 1, true},
		{"inf scalar", 1, []float64{math.Inf(1), 2, 3}, 1, true},
		{"nan weight", 1, good2, math.NaN(), true},
		{"inf weight", 1, good2, math.Inf(-1), true},
		{"negative weight", 1, good2, -2, true},
		{"id out of range", 7, good2, 1, false},
		{"duplicate", 0, good0, 1, false},
		{"length disagreement", 1, []float64{1, 2}, 1, false},
	}
	for _, tc := range cases {
		err := a.Add(tc.id, tc.contrib, tc.weight)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if tc.finite != errors.Is(err, ErrNonFinite) {
			t.Fatalf("%s: err = %v, ErrNonFinite match = %v", tc.name, err, !tc.finite)
		}
	}
	if a.Count() != 1 || a.Received(1) {
		t.Fatalf("rejected contributions counted: count=%d received(1)=%v", a.Count(), a.Received(1))
	}

	// The surviving clients aggregate as if the poisoned one never sent.
	if err := a.Add(2, good2, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 3)
	if _, ok := a.Reduce(got); !ok {
		t.Fatal("Reduce failed")
	}
	want := make([]float64, 3)
	ref := NewAggregator(1)
	defer ref.Close()
	ref.WeightedMean(want, [][]float64{good0, good2}, []float64{1, 3})
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("element %d = %v, want %v", j, got[j], want[j])
		}
	}
}

// TestAggregatorSnapshotRoundTrip exports an in-flight round, restores it
// into a fresh aggregator, and checks the restored round reduces to the
// identical result; a snapshot poisoned after export must be refused.
func TestAggregatorSnapshotRoundTrip(t *testing.T) {
	a := NewAggregator(2)
	defer a.Close()
	a.Open(3, 4)
	c0 := []float64{0.5, -1, 2}
	c2 := []float64{3, 4, -0.25}
	if err := a.Add(0, c0, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(2, c2, 1); err != nil {
		t.Fatal(err)
	}

	s := a.SnapshotRound()
	if !s.Open || s.Round != 3 || s.Clients != 4 || len(s.IDs) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}

	b := NewAggregator(2)
	defer b.Close()
	if err := b.RestoreRound(s); err != nil {
		t.Fatal(err)
	}
	if !b.Received(0) || !b.Received(2) || b.Count() != 2 {
		t.Fatalf("restored received-set wrong: count=%d", b.Count())
	}
	got := make([]float64, 3)
	want := make([]float64, 3)
	b.Reduce(got)
	a.Reduce(want)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("restored element %d = %v, want %v", j, got[j], want[j])
		}
	}

	s2 := a.SnapshotRound() // closed round exports empty
	if s2.Open || len(s2.IDs) != 0 {
		t.Fatalf("closed-round snapshot = %+v", s2)
	}

	s.Contribs[0][1] = math.NaN() // tampered snapshot must not restore
	if err := b.RestoreRound(s); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("tampered restore err = %v, want ErrNonFinite", err)
	}
	if b.Count() != 0 || b.Received(0) {
		t.Fatalf("failed restore left partial state: count=%d", b.Count())
	}
}

// TestDiscardDropsRound checks crash-recovery semantics: a discarded
// round leaves no trace and the aggregator reopens cleanly.
func TestDiscardDropsRound(t *testing.T) {
	a := NewAggregator(1)
	defer a.Close()
	a.Open(0, 2)
	if err := a.Add(0, []float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	a.Discard()
	if a.Count() != 0 || a.Received(0) {
		t.Fatalf("discard left state: count=%d", a.Count())
	}
	if _, ok := a.Reduce(make([]float64, 2)); ok {
		t.Fatal("Reduce succeeded on a discarded round")
	}
	a.Open(1, 2)
	if err := a.Add(0, []float64{3, 4}, 1); err != nil {
		t.Fatalf("reopen after discard: %v", err)
	}
}

// TestPoolDoBarrier stresses the pool barrier: every index of every job
// must run exactly once, with full completion before Do returns, across
// jobs both wider and narrower than the worker count.
func TestPoolDoBarrier(t *testing.T) {
	p := newWorkerPool(4)
	defer p.Close()
	for job := 0; job < 200; job++ {
		n := 1 + job%13
		hits := make([]int32, n)
		p.Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("job %d index %d ran %d times", job, i, h)
			}
		}
	}
}

// TestRelayMergePropertyRandomPartitions is the hierarchy's property test:
// for random client populations, random client→relay assignments (empty
// relays included), random dropped clients, and contributions drawn both
// as raw doubles and as binary16-representable values (the sparse/q16
// codec's image under quantize.RoundTripSlice), the root's merge of relay
// partials must reduce to exactly the bits a flat aggregator over the
// same surviving clients produces.
func TestRelayMergePropertyRandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		clients := 1 + rng.Intn(20)
		relays := 1 + rng.Intn(5)
		dim := 1 + rng.Intn(200)
		q16 := trial%2 == 1
		assign := make([]int, clients)
		contribs := make([][]float64, clients)
		weights := make([]float64, clients)
		alive := 0
		for k := range contribs {
			assign[k] = rng.Intn(relays)
			if rng.Float64() < 0.25 && alive > 0 {
				continue // dropped client (keep at least one contributor)
			}
			alive++
			contribs[k] = make([]float64, dim)
			for j := range contribs[k] {
				if rng.Float64() < 0.3 {
					continue // sparse coordinate: frozen, rides as zero
				}
				contribs[k][j] = math.Ldexp(rng.NormFloat64(), rng.Intn(20)-10)
			}
			if q16 {
				contribs[k] = quantize.RoundTripSlice(contribs[k])
			}
			weights[k] = rng.Float64()*5 + 0.01
		}

		flat := NewAggregator(2)
		flat.SetStreaming(true)
		flat.Open(0, clients)
		for _, k := range rng.Perm(clients) {
			if contribs[k] == nil {
				continue
			}
			if err := flat.Add(k, contribs[k], weights[k]); err != nil {
				t.Fatalf("trial %d flat Add: %v", trial, err)
			}
		}
		want := make([]float64, dim)
		wantCount, ok := flat.Reduce(want)
		flat.Close()
		if !ok || wantCount != alive {
			t.Fatalf("trial %d: flat Reduce count=%d ok=%v, want %d", trial, wantCount, ok, alive)
		}

		parts := make([]Partial, relays)
		for r := range parts {
			edge := NewAggregator(1)
			edge.SetStreaming(true)
			edge.Open(0, clients)
			for k := range contribs {
				if contribs[k] == nil || assign[k] != r {
					continue
				}
				if err := edge.Add(k, contribs[k], weights[k]); err != nil {
					t.Fatalf("trial %d relay %d Add: %v", trial, r, err)
				}
			}
			if _, ok := edge.ExportPartial(&parts[r]); !ok {
				t.Fatalf("trial %d relay %d ExportPartial failed", trial, r)
			}
			edge.Close()
		}

		root := NewAggregator(2)
		root.SetStreaming(true)
		root.Open(0, relays)
		for _, r := range rng.Perm(relays) {
			if err := root.AddPartial(r, &parts[r]); err != nil {
				t.Fatalf("trial %d root AddPartial(%d): %v", trial, r, err)
			}
		}
		if got := root.ClientCount(); got != alive {
			t.Fatalf("trial %d: root ClientCount = %d, want %d", trial, got, alive)
		}
		got := make([]float64, dim)
		_, ok = root.Reduce(got)
		root.Close()
		if !ok {
			t.Fatalf("trial %d: root Reduce failed", trial)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d (clients=%d relays=%d dim=%d q16=%v): element %d = %v, want %v",
					trial, clients, relays, dim, q16, j, got[j], want[j])
			}
		}
	}
}
