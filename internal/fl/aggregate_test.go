package fl

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// serialWeightedMean is the client-major loop the sharded Aggregator
// replaced, kept verbatim as the bit-exactness reference.
func serialWeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	if totalW <= 0 {
		return false
	}
	for j := range dst {
		dst[j] = 0
	}
	for k, c := range contribs {
		if weights[k] == 0 {
			continue
		}
		w := weights[k] / totalW
		for j, v := range c {
			dst[j] += w * v
		}
	}
	return true
}

// TestWeightedMeanMatchesSerial checks the sharded reduction is bit-exact
// against the serial loop across dimensions spanning the single-chunk fast
// path, ragged tails, and many-chunk fan-out, including zero-weight clients
// with nil contributions (inactive under partial participation). Run under
// -race this also exercises the pool's publish/retire synchronization over
// many back-to-back jobs.
func TestWeightedMeanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 3, 8} {
		a := NewAggregator(workers)
		for _, dim := range []int{1, 100, minChunk, minChunk + 1, 8*minChunk + 37} {
			for _, clients := range []int{1, 7} {
				contribs := make([][]float64, clients)
				weights := make([]float64, clients)
				for k := range contribs {
					if k%3 == 2 {
						// Inactive client: no contribution this round.
						contribs[k], weights[k] = nil, 0
						continue
					}
					contribs[k] = make([]float64, dim)
					for j := range contribs[k] {
						contribs[k][j] = rng.NormFloat64()
					}
					weights[k] = rng.Float64() + 0.1
				}
				got := make([]float64, dim)
				want := make([]float64, dim)
				if g, w := a.WeightedMean(got, contribs, weights), serialWeightedMean(want, contribs, weights); g != w {
					t.Fatalf("workers=%d dim=%d clients=%d aggregated=%v, serial says %v", workers, dim, clients, g, w)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("workers=%d dim=%d clients=%d element %d = %v, want %v (not bit-exact)", workers, dim, clients, j, got[j], want[j])
					}
				}
			}
		}
		a.Close()
	}
}

// TestWeightedMeanZeroTotalWeightLeavesDst verifies the "nothing to
// aggregate" contract: dst keeps the previous global untouched.
func TestWeightedMeanZeroTotalWeightLeavesDst(t *testing.T) {
	a := NewAggregator(2)
	defer a.Close()
	dst := []float64{1, 2, 3}
	if a.WeightedMean(dst, [][]float64{nil, nil}, []float64{0, 0}) {
		t.Fatal("WeightedMean reported aggregation with zero total weight")
	}
	for j, v := range dst {
		if v != float64(j+1) {
			t.Fatalf("dst[%d] mutated to %v", j, v)
		}
	}
}

// TestStreamingReduceMatchesOneShot collects rounds incrementally in
// arbitrary arrival order and checks Reduce is bit-exact with the
// one-shot WeightedMean over the same clients in id order.
func TestStreamingReduceMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewAggregator(3)
	defer a.Close()
	ref := NewAggregator(1)
	defer ref.Close()

	const clients, dim = 5, 2*minChunk + 11
	for round := 0; round < 4; round++ {
		contribs := make([][]float64, clients)
		weights := make([]float64, clients)
		for k := range contribs {
			contribs[k] = make([]float64, dim)
			for j := range contribs[k] {
				contribs[k][j] = rng.NormFloat64()
			}
			weights[k] = rng.Float64() + 0.1
		}

		a.Open(round, clients)
		for _, id := range rng.Perm(clients) { // arrival order must not matter
			if err := a.Add(id, contribs[id], weights[id]); err != nil {
				t.Fatalf("round %d Add(%d): %v", round, id, err)
			}
		}
		if a.Count() != clients || a.Dim() != dim {
			t.Fatalf("round %d: count=%d dim=%d", round, a.Count(), a.Dim())
		}
		got := make([]float64, dim)
		count, ok := a.Reduce(got)
		if !ok || count != clients {
			t.Fatalf("round %d Reduce: count=%d ok=%v", round, count, ok)
		}
		want := make([]float64, dim)
		ref.WeightedMean(want, contribs, weights)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("round %d element %d = %v, want %v (not bit-exact)", round, j, got[j], want[j])
			}
		}
	}
}

// TestAddRejectsPoisonedContribution is the poisoned-client regression:
// NaN and Inf scalars, non-finite weights, duplicates, and length
// disagreements all get typed errors, and a rejected contribution leaves
// the round's aggregate unchanged.
func TestAddRejectsPoisonedContribution(t *testing.T) {
	a := NewAggregator(1)
	defer a.Close()
	a.Open(0, 3)

	good0 := []float64{1, 2, 3}
	good2 := []float64{4, 5, 6}
	if err := a.Add(0, good0, 1); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		id      int
		contrib []float64
		weight  float64
		finite  bool // expect ErrNonFinite specifically
	}{
		{"nan scalar", 1, []float64{1, math.NaN(), 3}, 1, true},
		{"inf scalar", 1, []float64{math.Inf(1), 2, 3}, 1, true},
		{"nan weight", 1, good2, math.NaN(), true},
		{"inf weight", 1, good2, math.Inf(-1), true},
		{"negative weight", 1, good2, -2, true},
		{"id out of range", 7, good2, 1, false},
		{"duplicate", 0, good0, 1, false},
		{"length disagreement", 1, []float64{1, 2}, 1, false},
	}
	for _, tc := range cases {
		err := a.Add(tc.id, tc.contrib, tc.weight)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if tc.finite != errors.Is(err, ErrNonFinite) {
			t.Fatalf("%s: err = %v, ErrNonFinite match = %v", tc.name, err, !tc.finite)
		}
	}
	if a.Count() != 1 || a.Received(1) {
		t.Fatalf("rejected contributions counted: count=%d received(1)=%v", a.Count(), a.Received(1))
	}

	// The surviving clients aggregate as if the poisoned one never sent.
	if err := a.Add(2, good2, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 3)
	if _, ok := a.Reduce(got); !ok {
		t.Fatal("Reduce failed")
	}
	want := make([]float64, 3)
	ref := NewAggregator(1)
	defer ref.Close()
	ref.WeightedMean(want, [][]float64{good0, good2}, []float64{1, 3})
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("element %d = %v, want %v", j, got[j], want[j])
		}
	}
}

// TestAggregatorSnapshotRoundTrip exports an in-flight round, restores it
// into a fresh aggregator, and checks the restored round reduces to the
// identical result; a snapshot poisoned after export must be refused.
func TestAggregatorSnapshotRoundTrip(t *testing.T) {
	a := NewAggregator(2)
	defer a.Close()
	a.Open(3, 4)
	c0 := []float64{0.5, -1, 2}
	c2 := []float64{3, 4, -0.25}
	if err := a.Add(0, c0, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(2, c2, 1); err != nil {
		t.Fatal(err)
	}

	s := a.SnapshotRound()
	if !s.Open || s.Round != 3 || s.Clients != 4 || len(s.IDs) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}

	b := NewAggregator(2)
	defer b.Close()
	if err := b.RestoreRound(s); err != nil {
		t.Fatal(err)
	}
	if !b.Received(0) || !b.Received(2) || b.Count() != 2 {
		t.Fatalf("restored received-set wrong: count=%d", b.Count())
	}
	got := make([]float64, 3)
	want := make([]float64, 3)
	b.Reduce(got)
	a.Reduce(want)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("restored element %d = %v, want %v", j, got[j], want[j])
		}
	}

	s2 := a.SnapshotRound() // closed round exports empty
	if s2.Open || len(s2.IDs) != 0 {
		t.Fatalf("closed-round snapshot = %+v", s2)
	}

	s.Contribs[0][1] = math.NaN() // tampered snapshot must not restore
	if err := b.RestoreRound(s); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("tampered restore err = %v, want ErrNonFinite", err)
	}
	if b.Count() != 0 || b.Received(0) {
		t.Fatalf("failed restore left partial state: count=%d", b.Count())
	}
}

// TestDiscardDropsRound checks crash-recovery semantics: a discarded
// round leaves no trace and the aggregator reopens cleanly.
func TestDiscardDropsRound(t *testing.T) {
	a := NewAggregator(1)
	defer a.Close()
	a.Open(0, 2)
	if err := a.Add(0, []float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	a.Discard()
	if a.Count() != 0 || a.Received(0) {
		t.Fatalf("discard left state: count=%d", a.Count())
	}
	if _, ok := a.Reduce(make([]float64, 2)); ok {
		t.Fatal("Reduce succeeded on a discarded round")
	}
	a.Open(1, 2)
	if err := a.Add(0, []float64{3, 4}, 1); err != nil {
		t.Fatalf("reopen after discard: %v", err)
	}
}

// TestPoolDoBarrier stresses the pool barrier: every index of every job
// must run exactly once, with full completion before Do returns, across
// jobs both wider and narrower than the worker count.
func TestPoolDoBarrier(t *testing.T) {
	p := newWorkerPool(4)
	defer p.Close()
	for job := 0; job < 200; job++ {
		n := 1 + job%13
		hits := make([]int32, n)
		p.Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("job %d index %d ran %d times", job, i, h)
			}
		}
	}
}
