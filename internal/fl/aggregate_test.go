package fl

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// serialWeightedMean is the client-major loop the sharded Aggregator
// replaced, kept verbatim as the bit-exactness reference.
func serialWeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	if totalW <= 0 {
		return false
	}
	for j := range dst {
		dst[j] = 0
	}
	for k, c := range contribs {
		if weights[k] == 0 {
			continue
		}
		w := weights[k] / totalW
		for j, v := range c {
			dst[j] += w * v
		}
	}
	return true
}

// TestWeightedMeanMatchesSerial checks the sharded reduction is bit-exact
// against the serial loop across dimensions spanning the single-chunk fast
// path, ragged tails, and many-chunk fan-out, including zero-weight clients
// with nil contributions (inactive under partial participation). Run under
// -race this also exercises the pool's publish/retire synchronization over
// many back-to-back jobs.
func TestWeightedMeanMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, workers := range []int{1, 3, 8} {
		a := NewAggregator(workers)
		for _, dim := range []int{1, 100, minChunk, minChunk + 1, 8*minChunk + 37} {
			for _, clients := range []int{1, 7} {
				contribs := make([][]float64, clients)
				weights := make([]float64, clients)
				for k := range contribs {
					if k%3 == 2 {
						// Inactive client: no contribution this round.
						contribs[k], weights[k] = nil, 0
						continue
					}
					contribs[k] = make([]float64, dim)
					for j := range contribs[k] {
						contribs[k][j] = rng.NormFloat64()
					}
					weights[k] = rng.Float64() + 0.1
				}
				got := make([]float64, dim)
				want := make([]float64, dim)
				if g, w := a.WeightedMean(got, contribs, weights), serialWeightedMean(want, contribs, weights); g != w {
					t.Fatalf("workers=%d dim=%d clients=%d aggregated=%v, serial says %v", workers, dim, clients, g, w)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("workers=%d dim=%d clients=%d element %d = %v, want %v (not bit-exact)", workers, dim, clients, j, got[j], want[j])
					}
				}
			}
		}
		a.Close()
	}
}

// TestWeightedMeanZeroTotalWeightLeavesDst verifies the "nothing to
// aggregate" contract: dst keeps the previous global untouched.
func TestWeightedMeanZeroTotalWeightLeavesDst(t *testing.T) {
	a := NewAggregator(2)
	defer a.Close()
	dst := []float64{1, 2, 3}
	if a.WeightedMean(dst, [][]float64{nil, nil}, []float64{0, 0}) {
		t.Fatal("WeightedMean reported aggregation with zero total weight")
	}
	for j, v := range dst {
		if v != float64(j+1) {
			t.Fatalf("dst[%d] mutated to %v", j, v)
		}
	}
}

// TestPoolDoBarrier stresses the pool barrier: every index of every job
// must run exactly once, with full completion before Do returns, across
// jobs both wider and narrower than the worker count.
func TestPoolDoBarrier(t *testing.T) {
	p := newWorkerPool(4)
	defer p.Close()
	for job := 0; job < 200; job++ {
		n := 1 + job%13
		hits := make([]int32, n)
		p.Do(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("job %d index %d ran %d times", job, i, h)
			}
		}
	}
}
