package fl

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// fixToBig interprets a two's-complement (lo, hi) pair as a big.Int.
func fixToBig(lo, hi uint64) *big.Int {
	neg := int64(hi) < 0
	if neg {
		lo, hi = negate128(lo, hi)
	}
	n := new(big.Int).SetUint64(hi)
	n.Lsh(n, 64)
	n.Or(n, new(big.Int).SetUint64(lo))
	if neg {
		n.Neg(n)
	}
	return n
}

// TestFixFromFloatCorrectlyRounded checks fixFromFloat against exact
// rational arithmetic: the returned integer must be within half a unit
// of x·2^64, with exact ties resolved to the even integer.
func TestFixFromFloatCorrectlyRounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	two64 := new(big.Rat).SetInt(new(big.Int).Lsh(big.NewInt(1), 64))
	half := big.NewRat(1, 2)

	check := func(x float64) {
		lo, hi, ok := fixFromFloat(x)
		if !ok {
			t.Fatalf("fixFromFloat(%v) refused a representable value", x)
		}
		got := fixToBig(lo, hi)
		exact := new(big.Rat).SetFloat64(x)
		exact.Mul(exact, two64)
		diff := new(big.Rat).Sub(exact, new(big.Rat).SetInt(got))
		ad := new(big.Rat).Abs(diff)
		switch ad.Cmp(half) {
		case 1:
			t.Fatalf("fixFromFloat(%v) = %v, off by %v units (> 1/2)", x, got, ad.FloatString(4))
		case 0:
			if got.Bit(0) != 0 {
				t.Fatalf("fixFromFloat(%v) = %v broke the tie toward odd", x, got)
			}
		}
	}

	check(0)
	check(math.Copysign(0, -1))
	check(1)
	check(-1)
	check(0x1p-64)  // one unit exactly
	check(0x3p-65)  // tie at 1.5 units: must round to 2 (even)
	check(-0x3p-65) // negative tie
	check(0x1p-65)  // tie at half a unit: must round to 0
	check(0x1p-1040)
	check(5e-324) // smallest subnormal: rounds to zero
	check(math.Nextafter(0x1p62, 0))
	for i := 0; i < 20000; i++ {
		check(math.Ldexp(rng.NormFloat64(), rng.Intn(131)-70))
	}

	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0x1p63, -0x1p64, math.MaxFloat64} {
		if _, _, ok := fixFromFloat(bad); ok {
			t.Fatalf("fixFromFloat(%v) accepted an unrepresentable value", bad)
		}
	}
}

// TestFixAddMatchesBig drives fixAdd with random signed 128-bit values
// and checks both the sum and the overflow verdict against big.Int.
func TestFixAddMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lim := new(big.Int).Lsh(big.NewInt(1), 127)
	negLim := new(big.Int).Neg(lim)
	randFix := func() (uint64, uint64) {
		lo, hi := rng.Uint64(), rng.Uint64()
		// Mix magnitudes so overflow actually occurs sometimes.
		switch rng.Intn(3) {
		case 0:
			hi &= 0xffff
		case 1:
			hi |= 0xffff_0000_0000_0000
		}
		return lo, hi
	}
	for i := 0; i < 50000; i++ {
		alo, ahi := randFix()
		blo, bhi := randFix()
		lo, hi, ok := fixAdd(alo, ahi, blo, bhi)
		want := new(big.Int).Add(fixToBig(alo, ahi), fixToBig(blo, bhi))
		fits := want.Cmp(lim) < 0 && want.Cmp(negLim) >= 0
		if ok != fits {
			t.Fatalf("fixAdd overflow verdict %v, big says fits=%v (a=%v b=%v)",
				ok, fits, fixToBig(alo, ahi), fixToBig(blo, bhi))
		}
		if ok && fixToBig(lo, hi).Cmp(want) != 0 {
			t.Fatalf("fixAdd = %v, want %v", fixToBig(lo, hi), want)
		}
	}
}

// TestFixToFloatCorrectlyRounded checks fixToFloat against big.Float's
// correctly-rounded conversion, and that values on the float grid
// round-trip exactly.
func TestFixToFloatCorrectlyRounded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	check := func(lo, hi uint64) {
		got := fixToFloat(lo, hi)
		bf := new(big.Float).SetPrec(200).SetInt(fixToBig(lo, hi))
		bf.Quo(bf, new(big.Float).SetPrec(200).SetInt(new(big.Int).Lsh(big.NewInt(1), 64)))
		want, _ := bf.Float64()
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("fixToFloat(%v) = %v, want %v", fixToBig(lo, hi), got, want)
		}
	}
	check(0, 0)
	check(1, 0)
	check(^uint64(0), ^uint64(0)) // -1 unit
	check(0, 1)
	check(0, 0x8000_0000_0000_0000) // most negative
	for i := 0; i < 50000; i++ {
		lo, hi := rng.Uint64(), rng.Uint64()
		switch rng.Intn(4) {
		case 0:
			hi = 0
		case 1:
			hi &= 0xff
		case 2:
			hi |= ^uint64(0xff)
		}
		check(lo, hi)
	}

	// Grid round-trip: |x| ≥ 2^-12 converts exactly, so to-fix-and-back
	// is the identity.
	for i := 0; i < 20000; i++ {
		x := math.Ldexp(rng.NormFloat64(), rng.Intn(70)-10)
		if math.Abs(x) < 0x1p-12 || math.Abs(x) >= 0x1p62 {
			continue
		}
		lo, hi, ok := fixFromFloat(x)
		if !ok {
			t.Fatalf("fixFromFloat(%v) refused", x)
		}
		if y := fixToFloat(lo, hi); y != x {
			t.Fatalf("round trip %v -> %v", x, y)
		}
	}
}

// TestPartialPartitionInvariance is the property the relay tier rests
// on: folding clients into per-group partials and merging the groups in
// any order is bit-identical to folding everything into one flat
// partial, for any random partitioning.
func TestPartialPartitionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const dim = 257
	for trial := 0; trial < 40; trial++ {
		clients := 2 + rng.Intn(30)
		groups := 1 + rng.Intn(6)
		contribs := make([][]float64, clients)
		weights := make([]float64, clients)
		for k := range contribs {
			contribs[k] = make([]float64, dim)
			for j := range contribs[k] {
				contribs[k][j] = math.Ldexp(rng.NormFloat64(), rng.Intn(30)-15)
			}
			weights[k] = rng.Float64()*10 + 0.01
		}

		var flat Partial
		for _, k := range rng.Perm(clients) { // arrival order must not matter
			if err := flat.Fold(contribs[k], weights[k]); err != nil {
				t.Fatal(err)
			}
		}

		parts := make([]Partial, groups)
		for k := range contribs {
			g := rng.Intn(groups)
			if err := parts[g].Fold(contribs[k], weights[k]); err != nil {
				t.Fatal(err)
			}
		}
		var merged Partial
		for _, g := range rng.Perm(groups) { // merge order must not matter
			if err := merged.Merge(&parts[g]); err != nil {
				t.Fatal(err)
			}
		}

		if merged.Count != flat.Count || merged.WeightLo != flat.WeightLo || merged.WeightHi != flat.WeightHi {
			t.Fatalf("trial %d: merged (count=%d w=%d,%d) != flat (count=%d w=%d,%d)",
				trial, merged.Count, merged.WeightLo, merged.WeightHi, flat.Count, flat.WeightLo, flat.WeightHi)
		}
		for i := range flat.Cols {
			if merged.Cols[i] != flat.Cols[i] {
				t.Fatalf("trial %d: column word %d differs", trial, i)
			}
		}
		got := make([]float64, dim)
		want := make([]float64, dim)
		if !merged.Mean(got) || !flat.Mean(want) {
			t.Fatalf("trial %d: Mean failed", trial)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: mean[%d] = %v, want %v", trial, j, got[j], want[j])
			}
		}
	}
}

// TestPartialMeanMatchesBig cross-checks the whole pipeline (fold,
// merge, mean) against exact rational arithmetic: the computed mean must
// equal round(round(S)/round(W)) where S and W are the true fixed-point
// sums.
func TestPartialMeanMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const dim, clients = 31, 9
	var p Partial
	sums := make([]*big.Int, dim)
	for j := range sums {
		sums[j] = new(big.Int)
	}
	wsum := new(big.Int)
	for k := 0; k < clients; k++ {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.NormFloat64() * 3
		}
		w := rng.Float64() + 0.05
		if err := p.Fold(c, w); err != nil {
			t.Fatal(err)
		}
		for j, v := range c {
			lo, hi, _ := fixFromFloat(w * v)
			sums[j].Add(sums[j], fixToBig(lo, hi))
		}
		lo, hi, _ := fixFromFloat(w)
		wsum.Add(wsum, fixToBig(lo, hi))
	}
	for j := 0; j < dim; j++ {
		if fixToBig(p.Cols[2*j], p.Cols[2*j+1]).Cmp(sums[j]) != 0 {
			t.Fatalf("column %d: partial %v, big %v", j, fixToBig(p.Cols[2*j], p.Cols[2*j+1]), sums[j])
		}
	}
	if fixToBig(p.WeightLo, p.WeightHi).Cmp(wsum) != 0 {
		t.Fatalf("weight: partial %v, big %v", fixToBig(p.WeightLo, p.WeightHi), wsum)
	}
	got := make([]float64, dim)
	if !p.Mean(got) {
		t.Fatal("Mean failed")
	}
	wf := fixToFloat(p.WeightLo, p.WeightHi)
	for j := range got {
		want := fixToFloat(p.Cols[2*j], p.Cols[2*j+1]) / wf
		if got[j] != want {
			t.Fatalf("mean[%d] = %v, want %v", j, got[j], want)
		}
	}
}

// TestPartialRejections pins the validation and poison semantics: clean
// rejects leave no trace, overflow poisons stickily, and empty or
// zero-weight partials refuse to aggregate.
func TestPartialRejections(t *testing.T) {
	var p Partial
	good := []float64{1, 2}
	if err := p.Fold(good, 1); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		contrib []float64
		weight  float64
		want    error
	}{
		{"nan scalar", []float64{math.NaN(), 0}, 1, ErrNonFinite},
		{"inf scalar", []float64{0, math.Inf(1)}, 1, ErrNonFinite},
		{"nan weight", good, math.NaN(), ErrNonFinite},
		{"negative weight", good, -1, ErrNonFinite},
		{"length mismatch", []float64{1}, 1, ErrLengthMismatch},
		{"huge weight", good, 0x1p70, ErrAccumOverflow},
	} {
		if err := p.Fold(tc.contrib, tc.weight); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if p.Count != 1 || p.Poisoned() {
			t.Fatalf("%s: clean reject mutated state (count=%d poisoned=%v)", tc.name, p.Count, p.Poisoned())
		}
	}

	// Column overflow: 2^61-magnitude addends overflow on the fourth fold
	// (4·2^61 = 2^63) and poison the partial stickily.
	var q Partial
	huge := []float64{0x1p61}
	for i := 0; i < 3; i++ {
		if err := q.Fold(huge, 1); err != nil {
			t.Fatalf("fold %d: %v", i, err)
		}
	}
	if err := q.Fold(huge, 1); !errors.Is(err, ErrAccumOverflow) {
		t.Fatalf("overflow fold err = %v", err)
	}
	if !q.Poisoned() {
		t.Fatal("overflow did not poison")
	}
	if err := q.Fold(good, 1); !errors.Is(err, ErrAccumOverflow) {
		t.Fatalf("post-poison fold err = %v", err)
	}
	if q.Mean(make([]float64, 1)) {
		t.Fatal("poisoned partial aggregated")
	}
	var r Partial
	if err := r.Merge(&q); !errors.Is(err, ErrAccumOverflow) {
		t.Fatalf("merge of poisoned partial err = %v", err)
	}

	// Nothing to aggregate: empty, and zero total weight.
	var empty Partial
	if empty.Mean(nil) {
		t.Fatal("empty partial aggregated")
	}
	var zw Partial
	if err := zw.Fold(good, 0); err != nil {
		t.Fatal(err)
	}
	dst := []float64{7, 7}
	if zw.Mean(dst) {
		t.Fatal("zero-weight partial aggregated")
	}
	if dst[0] != 7 || dst[1] != 7 {
		t.Fatal("failed Mean touched dst")
	}

	// Hostile merge inputs: negative count, negative weight, odd columns,
	// dimension disagreement.
	var h Partial
	if err := h.Merge(&Partial{Count: -1}); err == nil {
		t.Fatal("negative count merged")
	}
	if err := h.Merge(&Partial{Count: 1, WeightHi: 1 << 63}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("negative weight merge err = %v", err)
	}
	if err := h.Merge(&Partial{Count: 1, Cols: make([]uint64, 3)}); err == nil {
		t.Fatal("odd column count merged")
	}
	if err := h.Fold(good, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.Merge(&Partial{Count: 1, Cols: make([]uint64, 6)}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("dim mismatch merge err = %v", err)
	}

	// Reset clears everything for reuse.
	q.Reset()
	if q.Poisoned() || q.Count != 0 || len(q.Cols) != 0 {
		t.Fatalf("Reset left state: %+v", q)
	}
	if err := q.Fold(good, 2); err != nil {
		t.Fatal(err)
	}
}
