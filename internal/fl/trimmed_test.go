package fl

import (
	"math"
	"math/rand"
	"testing"

	"apf/internal/quantize"
)

// randFixture builds a reproducible (contribs, weights) fixture. q16
// additionally rounds every scalar through binary16, matching what a
// sparse-q16 cluster's aggregator actually sees.
func randFixture(seed int64, n, dim int, q16 bool) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	contribs := make([][]float64, n)
	weights := make([]float64, n)
	for k := range contribs {
		c := make([]float64, dim)
		for j := range c {
			c[j] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		if q16 {
			quantize.RoundTripSlice(c)
		}
		contribs[k] = c
		weights[k] = 1 + rng.Float64()*9
	}
	return contribs, weights
}

// TestTrimmedZeroFractionBitExact is the satellite property test: with
// trim fraction 0 the trimmed mean must be bit-identical to weighted
// FedAvg — same operations in the same order — on random fixtures,
// including binary16-rounded (q16) inputs.
func TestTrimmedZeroFractionBitExact(t *testing.T) {
	t.Parallel()
	agg := NewAggregator(4)
	defer agg.Close()
	for seed := int64(1); seed <= 20; seed++ {
		for _, q16 := range []bool{false, true} {
			n := 2 + int(seed%7)
			dim := 1 + int(seed*37%257)
			contribs, weights := randFixture(seed, n, dim, q16)
			if seed%3 == 0 {
				weights[0] = 0 // skipped-client path must match too
				contribs[0] = nil
			}
			want := make([]float64, dim)
			if !agg.WeightedMean(want, contribs, weights) {
				t.Fatalf("seed %d: mean aggregated nothing", seed)
			}
			got := make([]float64, dim)
			if !agg.TrimmedMean(got, contribs, weights, 0) {
				t.Fatalf("seed %d: trimmed(0) aggregated nothing", seed)
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("seed %d q16=%v: scalar %d: trimmed(0) %v != mean %v",
						seed, q16, j, got[j], want[j])
				}
			}
		}
	}
}

// TestTrimmedPermutationInvariant: the trimmed mean must not depend on
// client order — columns sort by (value, weight), so any permutation of
// the same multiset yields bit-identical output.
func TestTrimmedPermutationInvariant(t *testing.T) {
	t.Parallel()
	agg := NewAggregator(4)
	defer agg.Close()
	for seed := int64(1); seed <= 10; seed++ {
		n := 4 + int(seed%5)
		dim := 64 + int(seed*13%100)
		contribs, weights := randFixture(seed, n, dim, seed%2 == 0)
		// Duplicate one contribution (ties in value AND weight) so the
		// tie-break path is exercised, not just distinct columns.
		contribs[n-1] = append([]float64(nil), contribs[0]...)
		weights[n-1] = weights[0]
		want := make([]float64, dim)
		if !agg.TrimmedMean(want, contribs, weights, 0.25) {
			t.Fatalf("seed %d: aggregated nothing", seed)
		}
		rng := rand.New(rand.NewSource(seed + 999))
		for trial := 0; trial < 5; trial++ {
			perm := rng.Perm(n)
			pc := make([][]float64, n)
			pw := make([]float64, n)
			for i, p := range perm {
				pc[i], pw[i] = contribs[p], weights[p]
			}
			got := make([]float64, dim)
			agg.TrimmedMean(got, pc, pw, 0.25)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("seed %d perm %v: scalar %d: %v != %v", seed, perm, j, got[j], want[j])
				}
			}
		}
	}
}

// TestTrimmedMedianDegenerate: with one survivor per coordinate the
// trimmed mean is the exact coordinate-wise median — taken directly, not
// through a (w·v)/w round trip.
func TestTrimmedMedianDegenerate(t *testing.T) {
	t.Parallel()
	agg := NewAggregator(2)
	defer agg.Close()
	contribs := [][]float64{
		{1, -5, 0.3},
		{2, -7, 0.1},
		{9, -6, 0.2},
	}
	weights := []float64{3, 1, 7} // weights must not skew a single survivor
	got := make([]float64, 3)
	if !agg.TrimmedMean(got, contribs, weights, 0.34) {
		t.Fatal("aggregated nothing")
	}
	want := []float64{2, -6, 0.2}
	for j := range want {
		if got[j] != want[j] {
			t.Errorf("scalar %d = %v, want the median %v", j, got[j], want[j])
		}
	}
	if k, m := agg.LastTrim(); k != 1 || m != 3 {
		t.Errorf("LastTrim = (%d, %d), want (1, 3)", k, m)
	}
}

// TestTrimmedBoundsOutlier: a single Byzantine contribution — sign-flipped
// or norm-matched-scaled — cannot move any output coordinate outside the
// honest values' range.
func TestTrimmedBoundsOutlier(t *testing.T) {
	t.Parallel()
	agg := NewAggregator(2)
	defer agg.Close()
	honest, weights := randFixture(7, 5, 200, false)
	for name, poison := range map[string]func(v []float64){
		"sign-flip": func(v []float64) {
			for j := range v {
				v[j] = -v[j]
			}
		},
		"scale": func(v []float64) {
			for j := range v {
				v[j] *= 100
			}
		},
	} {
		contribs := make([][]float64, len(honest))
		for i := range honest {
			contribs[i] = append([]float64(nil), honest[i]...)
		}
		poison(contribs[len(contribs)-1])
		out := make([]float64, 200)
		if !agg.TrimmedMean(out, contribs, weights, 0.2) {
			t.Fatalf("%s: aggregated nothing", name)
		}
		for j := range out {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < len(contribs)-1; i++ {
				lo = math.Min(lo, honest[i][j])
				hi = math.Max(hi, honest[i][j])
			}
			if out[j] < lo || out[j] > hi {
				t.Fatalf("%s: coordinate %d = %v escaped the honest range [%v, %v]", name, j, out[j], lo, hi)
			}
		}
	}
}

// TestReduceTrimmedMatchesOneShot: the incremental Open/Add/Reduce path in
// trimmed mode is bit-identical to the one-shot TrimmedMean, exactly as
// the mean path's contract.
func TestReduceTrimmedMatchesOneShot(t *testing.T) {
	t.Parallel()
	contribs, weights := randFixture(11, 6, 300, false)
	one := NewAggregator(3)
	defer one.Close()
	want := make([]float64, 300)
	one.TrimmedMean(want, contribs, weights, 0.25)

	inc := NewAggregator(3)
	defer inc.Close()
	inc.SetReduction(ReduceTrimmed, 0.25)
	inc.Open(0, 6)
	for id := range contribs {
		if err := inc.Add(id, contribs[id], weights[id]); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]float64, 300)
	if n, ok := inc.Reduce(got); n != 6 || !ok {
		t.Fatalf("Reduce = (%d, %v)", n, ok)
	}
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("scalar %d: %v != %v", j, got[j], want[j])
		}
	}
	if k, m := inc.LastTrim(); k != 1 || m != 6 {
		t.Errorf("LastTrim = (%d, %d), want (1, 6)", k, m)
	}
}

// TestTrimmedSmallClusters: below 3 participants there is nothing to
// trim; the reduction must fall back to the exact weighted mean.
func TestTrimmedSmallClusters(t *testing.T) {
	t.Parallel()
	agg := NewAggregator(1)
	defer agg.Close()
	contribs := [][]float64{{2, 4}, {4, 8}}
	weights := []float64{1, 3}
	want := make([]float64, 2)
	agg.WeightedMean(want, contribs, weights)
	got := make([]float64, 2)
	agg.TrimmedMean(got, contribs, weights, 0.25)
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("scalar %d: %v != %v", j, got[j], want[j])
		}
	}
	if k, _ := agg.LastTrim(); k != 0 {
		t.Errorf("trim depth %d for 2 participants, want 0", k)
	}
}

// TestParseReduction pins the flag spellings.
func TestParseReduction(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]Reduction{"mean": ReduceMean, "": ReduceMean, "trimmed": ReduceTrimmed} {
		got, err := ParseReduction(s)
		if err != nil || got != want {
			t.Errorf("ParseReduction(%q) = (%v, %v), want %v", s, got, err, want)
		}
	}
	if _, err := ParseReduction("krum"); err == nil {
		t.Error("ParseReduction accepted an unknown mode")
	}
	if ReduceTrimmed.String() != "trimmed" || ReduceMean.String() != "mean" {
		t.Error("Reduction.String does not round-trip the flag spellings")
	}
}
