package fl

import (
	"testing"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/stats"
)

func TestParticipationActivatesSubset(t *testing.T) {
	train := testDataset(90, 20)
	mgrs := make([]*recordingManager, 4)
	mf := func(clientID, dim int) SyncManager {
		m := &recordingManager{dim: dim, contrib: 1, weight: 1}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(20, 0)
	parts := data.PartitionIID(rng, train.Len(), 4)
	cfg := baseConfig()
	cfg.Rounds = 10
	cfg.LocalIters = 2
	cfg.EvalEvery = 0
	cfg.Participation = 0.5
	New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil).Run()

	// Half of 4 clients per round over 10 rounds: 2 × 2 iterations × 10 =
	// 40 iterations total across clients.
	total := 0
	for i, m := range mgrs {
		total += m.iterations
		if m.iterations == 2*2*10 {
			t.Errorf("client %d participated every round at 50%% participation", i)
		}
	}
	if total != 2*2*10 {
		t.Errorf("total iterations %d, want 40 (2 clients × 2 iters × 10 rounds)", total)
	}
}

func TestParticipationKeepsAPFMasksConsistent(t *testing.T) {
	train, test := splitDataset(240, 80, 21)
	rng := stats.SplitRNG(21, 0)
	parts := data.PartitionIID(rng, train.Len(), 4)

	apfManagers := make([]*core.Manager, 4)
	mf := func(clientID, dim int) SyncManager {
		m := core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			Threshold:        0.25,
			EMAAlpha:         0.9,
			Seed:             77,
		})
		apfManagers[clientID] = m
		return m
	}
	cfg := baseConfig()
	cfg.Rounds = 30
	cfg.Participation = 0.5
	res := New(cfg, mlpFactory, sgdFactory(0.3), mf, train, parts, test).Run()

	// The paper's footnote-5 claim: dynamic participation does not break
	// APF, because every client derives the identical mask from the
	// synchronized state it observes.
	w0 := apfManagers[0].MaskWords()
	for c := 1; c < 4; c++ {
		wc := apfManagers[c].MaskWords()
		for i := range w0 {
			if w0[i] != wc[i] {
				t.Fatalf("client %d mask diverged under partial participation", c)
			}
		}
	}
	if res.BestAcc < 0.7 {
		t.Errorf("model failed to learn under partial participation: %v", res.BestAcc)
	}
}

func TestParticipationValidation(t *testing.T) {
	train := testDataset(40, 22)
	rng := stats.SplitRNG(22, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Participation = 1.5
	defer func() {
		if recover() == nil {
			t.Fatal("participation > 1 did not panic")
		}
	}()
	New(cfg, mlpFactory, sgdFactory(0.1), passthroughFactory, train, parts, nil)
}

func TestParticipationOneMeansEveryone(t *testing.T) {
	train := testDataset(60, 23)
	mgrs := make([]*recordingManager, 3)
	mf := func(clientID, dim int) SyncManager {
		m := &recordingManager{dim: dim, contrib: 1, weight: 1}
		mgrs[clientID] = m
		return m
	}
	rng := stats.SplitRNG(23, 0)
	parts := data.PartitionIID(rng, train.Len(), 3)
	cfg := baseConfig()
	cfg.Rounds = 3
	cfg.LocalIters = 2
	cfg.EvalEvery = 0
	cfg.Participation = 1
	New(cfg, mlpFactory, sgdFactory(0.1), mf, train, parts, nil).Run()
	for i, m := range mgrs {
		if m.iterations != 6 {
			t.Errorf("client %d ran %d iterations, want 6", i, m.iterations)
		}
	}
}

func TestOnRoundCallback(t *testing.T) {
	train := testDataset(60, 24)
	rng := stats.SplitRNG(24, 0)
	parts := data.PartitionIID(rng, train.Len(), 2)
	cfg := baseConfig()
	cfg.Rounds = 4
	cfg.EvalEvery = 0
	var seen []int
	cfg.OnRound = func(m RoundMetrics) { seen = append(seen, m.Round) }
	New(cfg, mlpFactory, sgdFactory(0.1), passthroughFactory, train, parts, nil).Run()
	if len(seen) != 4 || seen[0] != 0 || seen[3] != 3 {
		t.Errorf("OnRound calls = %v, want [0 1 2 3]", seen)
	}
}
