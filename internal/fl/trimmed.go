package fl

import "fmt"

// Reduction selects how an Aggregator folds a round's contributions into
// the committed aggregate.
type Reduction int

const (
	// ReduceMean is the classic weighted FedAvg: every accepted
	// contribution participates with weight w/ΣW. The default.
	ReduceMean Reduction = iota
	// ReduceTrimmed is the coordinate-wise trimmed mean: on each
	// coordinate the k lowest and k highest values are dropped and the
	// survivors are weighted-averaged. It bounds the influence any single
	// (or any k) Byzantine contribution can exert on any coordinate —
	// including attacks a magnitude gate cannot see, like sign flips and
	// norm-matched scalers. With one survivor per coordinate it degrades
	// to the coordinate-wise median.
	ReduceTrimmed
)

// String renders the reduction as its flag spelling.
func (r Reduction) String() string {
	switch r {
	case ReduceMean:
		return "mean"
	case ReduceTrimmed:
		return "trimmed"
	default:
		return fmt.Sprintf("reduction(%d)", int(r))
	}
}

// ParseReduction parses the -aggregator flag spelling.
func ParseReduction(s string) (Reduction, error) {
	switch s {
	case "mean", "":
		return ReduceMean, nil
	case "trimmed":
		return ReduceTrimmed, nil
	default:
		return 0, fmt.Errorf("fl: unknown aggregator %q (want mean or trimmed)", s)
	}
}

// DefaultTrimFraction is the per-side trim fraction used when
// ReduceTrimmed is selected without an explicit fraction.
const DefaultTrimFraction = 0.25

// SetReduction selects the reduction Reduce applies to subsequent rounds.
// trimFrac is the per-side trim fraction for ReduceTrimmed (<= 0 takes
// DefaultTrimFraction); it must stay below 0.5 — trimming half or more
// from each side would leave no survivors.
func (a *Aggregator) SetReduction(r Reduction, trimFrac float64) {
	if r == ReduceTrimmed {
		if a.stream {
			panic("fl: streaming aggregation cannot apply a trimmed reduction")
		}
		if trimFrac <= 0 {
			trimFrac = DefaultTrimFraction
		}
		if trimFrac >= 0.5 {
			panic(fmt.Sprintf("fl: trim fraction %v leaves no survivors", trimFrac))
		}
	}
	a.reduction = r
	a.trimFrac = trimFrac
}

// Reduction returns the configured reduction mode.
func (a *Aggregator) Reduction() Reduction { return a.reduction }

// LastTrim reports the per-side trim depth k and participant count m of
// the most recent trimmed reduction (k = 0 when the last reduction was a
// plain mean, including the degenerate trimmed cases below).
func (a *Aggregator) LastTrim() (k, m int) { return a.lastTrimK, a.lastTrimM }

// trimK derives the per-side trim depth for m participants: at least one
// value per side once trimming is on, never so many that no survivor
// remains. m <= 2 cannot trim (k = 0 → plain weighted mean).
func trimK(m int, frac float64) int {
	k := int(frac * float64(m))
	if k < 1 {
		k = 1
	}
	if max := (m - 1) / 2; k > max {
		k = max
	}
	if k < 0 {
		k = 0
	}
	return k
}

// trimPair is one (value, weight) sample of a coordinate's column.
type trimPair struct{ v, w float64 }

// TrimmedMean fills dst[j] with the coordinate-wise trimmed weighted mean
// of the contributions: on each coordinate the k lowest and k highest
// values are dropped (k from trimK of the participant count and frac) and
// the survivors averaged by their weights. Clients with weight 0 are
// skipped exactly as in WeightedMean; when no trimming is possible
// (k = 0, i.e. fewer than 3 participants or frac <= 0) the result is
// bit-identical to WeightedMean over the same inputs — same operations in
// the same order. Columns are sorted by (value, weight), so the output is
// invariant under any permutation of the client order. Returns false when
// the total weight is 0 (dst untouched).
func (a *Aggregator) TrimmedMean(dst []float64, contribs [][]float64, weights []float64, frac float64) bool {
	if len(contribs) != len(weights) {
		panic(fmt.Sprintf("fl: %d contributions for %d weights", len(contribs), len(weights)))
	}
	totalW := 0.0
	m := 0
	for k, w := range weights {
		if w == 0 {
			continue
		}
		if len(contribs[k]) != len(dst) {
			panic(fmt.Sprintf("fl: contribution %d has length %d, want %d", k, len(contribs[k]), len(dst)))
		}
		totalW += w
		m++
	}
	if totalW <= 0 {
		return false
	}
	k := 0
	if frac > 0 {
		k = trimK(m, frac)
	}
	a.lastTrimK, a.lastTrimM = k, m
	if k == 0 {
		// Degenerate case: nothing to trim. Run the exact WeightedMean op
		// sequence so trim-fraction-0 is bit-identical to FedAvg.
		return a.WeightedMean(dst, contribs, weights)
	}

	// Compact the participant list once; the per-coordinate loop then
	// indexes dense slices instead of re-skipping zero weights.
	a.tContribs = a.tContribs[:0]
	a.tWeights = a.tWeights[:0]
	for i, w := range weights {
		if w == 0 {
			continue
		}
		a.tContribs = append(a.tContribs, contribs[i])
		a.tWeights = append(a.tWeights, w)
	}

	dim := len(dst)
	chunk := (dim + a.pool.workers*4 - 1) / (a.pool.workers * 4)
	if chunk < minChunk {
		chunk = minChunk
	}
	nChunks := (dim + chunk - 1) / chunk
	for len(a.trimScratch) < nChunks {
		a.trimScratch = append(a.trimScratch, nil)
	}

	a.dst, a.chunk, a.trimDepth = dst, chunk, k
	if nChunks <= 1 {
		a.runTrimChunk(0)
	} else {
		a.pool.Do(nChunks, a.runTrimFn)
	}
	a.dst = nil
	return true
}

// runTrimChunk reduces one shard [ci·chunk, min(dim, (ci+1)·chunk)) by
// the coordinate-wise trimmed mean. Each chunk owns its scratch column,
// so concurrent chunks never share buffers.
func (a *Aggregator) runTrimChunk(ci int) {
	lo := ci * a.chunk
	hi := lo + a.chunk
	if hi > len(a.dst) {
		hi = len(a.dst)
	}
	dst := a.dst[lo:hi]
	m := len(a.tContribs)
	col := a.trimScratch[ci]
	if cap(col) < m {
		col = make([]trimPair, m)
		a.trimScratch[ci] = col
	}
	col = col[:m]
	k := a.trimDepth
	for j := range dst {
		for i, c := range a.tContribs {
			col[i] = trimPair{v: c[lo+j], w: a.tWeights[i]}
		}
		// Insertion sort by (value, weight): m is the client count — tiny
		// against the coordinate count — and the (v, w) key makes the
		// order a pure function of the multiset, so any client
		// permutation yields bit-identical output.
		for i := 1; i < m; i++ {
			p := col[i]
			t := i - 1
			for t >= 0 && (col[t].v > p.v || (col[t].v == p.v && col[t].w > p.w)) {
				col[t+1] = col[t]
				t--
			}
			col[t+1] = p
		}
		if m-2*k == 1 {
			// Single survivor: the coordinate-wise median, taken exactly
			// rather than through a (w·v)/w round trip.
			dst[j] = col[k].v
			continue
		}
		var sw, swv float64
		for t := k; t < m-k; t++ {
			swv += col[t].w * col[t].v
			sw += col[t].w
		}
		dst[j] = swv / sw
	}
}
