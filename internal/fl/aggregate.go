package fl

import (
	"errors"
	"fmt"
	"math"
)

// Aggregator computes the server-side weighted mean of client contributions
// by sharding the parameter range across a persistent worker pool. The
// mean is the exact fixed-point reduction defined in exact.go: every
// product is converted to a 128-bit fixed-point integer and summed
// exactly, so the result is bit-identical regardless of worker count,
// scheduling, arrival order, or how the clients are partitioned across
// relay pre-aggregators.
//
// Beyond the one-shot WeightedMean, an Aggregator also collects a round
// incrementally (Open/Add/Reduce): Add stores each client's in-flight
// contribution after a finiteness guard — a NaN or Inf scalar yields a
// typed ErrNonFinite instead of silently corrupting the aggregate — and
// Reduce folds the stored set through the identical exact reduction, so
// incremental collection is bit-exact with the one-shot path. The
// in-flight round (partial contributions plus the received-set) is
// exportable as an AggregatorState for checkpointing.
//
// Two further collection modes serve the hierarchical topology. With
// SetStreaming(true), Add folds each contribution into exact partial
// state immediately and retains nothing — constant memory per relay no
// matter how many clients an edge terminates — and ExportPartial hands
// the mergeable state upstream. With AddPartial, a root folds the
// partials relays exported; because the underlying sums are exact
// integers, the root's Reduce is bit-identical to a flat server having
// collected every client directly.
//
// An Aggregator is NOT safe for concurrent WeightedMean calls; it reuses
// internal job state across calls to keep the steady state allocation-free.
type Aggregator struct {
	pool    *workerPool
	ownPool bool

	// Job state for the WeightedMean in flight (published to the workers
	// via the pool's Do barrier).
	dst      []float64
	contribs [][]float64
	jobW     []float64 // raw weights, 0 marks a skipped client
	wf       float64   // correctly-rounded float of the exact total weight
	chunk    int

	runFn func(int) // bound once so Do allocates nothing per call

	// Reduction mode (SetReduction) plus the trimmed path's job state and
	// per-chunk scratch columns — reused across rounds like the mean
	// path's buffers, so the steady state stays allocation-free.
	reduction            Reduction
	trimFrac             float64
	tContribs            [][]float64
	tWeights             []float64
	trimScratch          [][]trimPair
	trimDepth            int
	lastTrimK, lastTrimM int
	runTrimFn            func(int)

	// In-flight round state (Open/Add/Reduce).
	open     bool
	round    int
	slots    [][]float64 // stored contributions by client id, nil = absent
	slotW    []float64
	received int

	// Streaming / partial-merge state. In streaming mode Add folds into
	// psum and discards the payload; pMode marks a round collected from
	// relay partials via AddPartial (pCount sums their client counts).
	stream bool
	seen   []bool
	psum   Partial
	pMode  bool
	pCount int
}

// NewAggregator builds an aggregator over its own pool of the given worker
// count (<= 0 means GOMAXPROCS). Close must be called to release the pool.
func NewAggregator(workers int) *Aggregator {
	return newAggregatorOn(newWorkerPool(workers), true)
}

func newAggregatorOn(pool *workerPool, own bool) *Aggregator {
	a := &Aggregator{pool: pool, ownPool: own}
	a.runFn = a.runChunk
	a.runTrimFn = a.runTrimChunk
	return a
}

// minChunk keeps shards coarse enough that the per-task dispatch cost stays
// negligible against the arithmetic.
const minChunk = 4096

// WeightedMean fills dst with the exact weighted mean of the
// contributions: dst[j] = float64(Σ_k fix(w_k·c_k[j])) / float64(Σ_k
// fix(w_k)), skipping clients with weight 0 (their contrib may be nil —
// e.g. inactive clients under partial participation). When the exact
// total weight is not strictly positive, or a weight is non-finite,
// there is nothing to aggregate: dst is left untouched and false is
// returned. A coordinate whose column hits a non-finite product or an
// accumulator overflow becomes NaN.
func (a *Aggregator) WeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	if len(contribs) != len(weights) {
		panic(fmt.Sprintf("fl: %d contributions for %d weights", len(contribs), len(weights)))
	}
	var wlo, whi uint64
	for k, w := range weights {
		if w == 0 {
			continue
		}
		if len(contribs[k]) != len(dst) {
			panic(fmt.Sprintf("fl: contribution %d has length %d, want %d", k, len(contribs[k]), len(dst)))
		}
		plo, phi, ok := fixFromFloat(w)
		if !ok {
			return false
		}
		if wlo, whi, ok = fixAdd(wlo, whi, plo, phi); !ok {
			return false
		}
	}
	if int64(whi) < 0 || (whi == 0 && wlo == 0) {
		return false
	}
	a.wf = fixToFloat(wlo, whi)

	dim := len(dst)
	chunk := (dim + a.pool.workers*4 - 1) / (a.pool.workers * 4)
	if chunk < minChunk {
		chunk = minChunk
	}
	nChunks := (dim + chunk - 1) / chunk

	a.dst, a.contribs, a.jobW, a.chunk = dst, contribs, weights, chunk
	if nChunks <= 1 {
		a.runChunk(0) // too small to be worth the barrier
	} else {
		a.pool.Do(nChunks, a.runFn)
	}
	a.dst, a.contribs, a.jobW = nil, nil, nil
	return true
}

// runChunk reduces one shard [ci·chunk, min(dim, (ci+1)·chunk)). Each
// coordinate's column is summed exactly in 128-bit fixed point; because
// integer addition is associative the shard boundaries (and the worker
// schedule) cannot affect the bits.
func (a *Aggregator) runChunk(ci int) {
	base := ci * a.chunk
	end := base + a.chunk
	if end > len(a.dst) {
		end = len(a.dst)
	}
	dst := a.dst[base:end]
	for j := range dst {
		var slo, shi uint64
		ok := true
		for k, c := range a.contribs {
			w := a.jobW[k]
			if w == 0 {
				continue
			}
			var plo, phi uint64
			if plo, phi, ok = fixFromFloat(w * c[base+j]); ok {
				slo, shi, ok = fixAdd(slo, shi, plo, phi)
			}
			if !ok {
				break
			}
		}
		if !ok {
			dst[j] = math.NaN()
			continue
		}
		dst[j] = fixToFloat(slo, shi) / a.wf
	}
}

// Close releases the aggregator's pool (when it owns one).
func (a *Aggregator) Close() {
	if a.ownPool {
		a.pool.Close()
	}
}

// ErrNonFinite is returned (wrapped) by Add when a contribution carries a
// NaN or Inf scalar or weight. One poisoned client must never fold into
// the shards: a single non-finite scalar contaminates the global model
// and every downstream stability statistic.
var ErrNonFinite = errors.New("fl: non-finite contribution")

// ErrLengthMismatch is returned (wrapped) by Add when a contribution's
// length disagrees with one already stored for the round — positionally
// aligned averaging is meaningless across different geometries.
var ErrLengthMismatch = errors.New("fl: payload length mismatch")

// SetStreaming switches incremental collection to constant-memory exact
// folding: Add validates each contribution and folds it into the round's
// Partial immediately instead of retaining the payload — the relay-tier
// mode, where an edge may terminate far more clients than fit in memory.
// Streaming rounds cannot apply a trimmed reduction (it needs every
// per-client value) and SnapshotRound cannot export their per-client
// payloads; the transport never snapshots in-flight streaming rounds.
// Must be called outside an open round.
func (a *Aggregator) SetStreaming(on bool) {
	if a.open {
		panic("fl: SetStreaming inside an open round")
	}
	if on && a.reduction == ReduceTrimmed {
		panic("fl: streaming aggregation cannot apply a trimmed reduction")
	}
	a.stream = on
}

// Streaming reports whether streaming collection is enabled.
func (a *Aggregator) Streaming() bool { return a.stream }

// Open begins incremental collection of one round with n client slots,
// discarding any round still in flight. Slot buffers are reused across
// rounds.
func (a *Aggregator) Open(round, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("fl: invalid client count %d", n))
	}
	if a.stream {
		if cap(a.seen) < n {
			a.seen = make([]bool, n)
		}
		a.seen = a.seen[:n]
		for i := range a.seen {
			a.seen[i] = false
		}
		a.psum.Reset()
	} else {
		if cap(a.slots) < n {
			a.slots = make([][]float64, n)
			a.slotW = make([]float64, n)
		}
		a.slots = a.slots[:n]
		a.slotW = a.slotW[:n]
		for i := range a.slots {
			a.slots[i], a.slotW[i] = nil, 0
		}
	}
	a.open, a.round, a.received = true, round, 0
	a.pMode, a.pCount = false, 0
}

// Add stores client id's contribution for the open round. It returns a
// typed error — never panics — on an out-of-range id, a duplicate, a
// payload whose length disagrees with an already-stored one, or any
// non-finite scalar or weight (ErrNonFinite, naming the first offending
// index). In the default mode the slice is stored, not copied; callers
// must not mutate it until the round is reduced or discarded. In
// streaming mode the contribution is folded exactly into the round's
// partial state and the slice is not retained.
func (a *Aggregator) Add(id int, contrib []float64, weight float64) error {
	if !a.open {
		return fmt.Errorf("fl: Add outside an open round")
	}
	if a.pMode {
		return fmt.Errorf("fl: Add into round %d already collecting relay partials", a.round)
	}
	if a.stream {
		if id < 0 || id >= len(a.seen) {
			return fmt.Errorf("fl: client id %d out of range [0,%d)", id, len(a.seen))
		}
		if a.seen[id] {
			return fmt.Errorf("fl: duplicate contribution from client %d in round %d", id, a.round)
		}
		if err := a.psum.Fold(contrib, weight); err != nil {
			return fmt.Errorf("round %d client %d: %w", a.round, id, err)
		}
		a.seen[id] = true
		a.received++
		return nil
	}
	if id < 0 || id >= len(a.slots) {
		return fmt.Errorf("fl: client id %d out of range [0,%d)", id, len(a.slots))
	}
	if a.slots[id] != nil {
		return fmt.Errorf("fl: duplicate contribution from client %d in round %d", id, a.round)
	}
	if contrib == nil {
		// A fully-frozen round's compact payload is legitimately empty, and
		// the wire decoder hands it over as nil; the nil slot would read as
		// an absent client (and a duplicate re-send would slip through).
		contrib = []float64{}
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
		return fmt.Errorf("%w: round %d client %d weight %v", ErrNonFinite, a.round, id, weight)
	}
	for i := range a.slots {
		if a.slots[i] != nil && len(a.slots[i]) != len(contrib) {
			return fmt.Errorf("%w: round %d client %d payload length %d disagrees with client %d's %d",
				ErrLengthMismatch, a.round, id, len(contrib), i, len(a.slots[i]))
		}
	}
	for j, v := range contrib {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: round %d client %d scalar %d is %v", ErrNonFinite, a.round, id, j, v)
		}
	}
	a.slots[id] = contrib
	a.slotW[id] = weight
	a.received++
	return nil
}

// AddPartial folds a relay's exported partial into the open round — the
// root face of the hierarchy. The aggregator must be in streaming mode,
// and a round that has seen AddPartial refuses plain Adds (and vice
// versa): a round is collected from clients or from relays, never both.
// Validation (dimension, count, weight sign, poison, overflow) is
// Merge's; id-range and duplicate checks mirror Add's.
func (a *Aggregator) AddPartial(id int, p *Partial) error {
	if !a.open {
		return fmt.Errorf("fl: AddPartial outside an open round")
	}
	if !a.stream {
		return fmt.Errorf("fl: AddPartial needs a streaming aggregator")
	}
	if !a.pMode && a.received > 0 {
		return fmt.Errorf("fl: AddPartial into round %d already collecting client updates", a.round)
	}
	if id < 0 || id >= len(a.seen) {
		return fmt.Errorf("fl: relay id %d out of range [0,%d)", id, len(a.seen))
	}
	if a.seen[id] {
		return fmt.Errorf("fl: duplicate partial from relay %d in round %d", id, a.round)
	}
	if err := a.psum.Merge(p); err != nil {
		return fmt.Errorf("round %d relay %d: %w", a.round, id, err)
	}
	a.pMode = true
	a.seen[id] = true
	a.received++
	a.pCount += p.Count
	return nil
}

// Received reports whether client id already contributed to the open
// round.
func (a *Aggregator) Received(id int) bool {
	if !a.open || id < 0 {
		return false
	}
	if a.stream {
		return id < len(a.seen) && a.seen[id]
	}
	return id < len(a.slots) && a.slots[id] != nil
}

// Count returns how many contributions (clients, or relay partials in
// partial-merge rounds) the open round holds.
func (a *Aggregator) Count() int { return a.received }

// ClientCount returns how many client contributions the open round
// represents: for a partial-merge round, the sum of the relays' counts;
// otherwise the number of Adds.
func (a *Aggregator) ClientCount() int {
	if a.pMode {
		return a.pCount
	}
	return a.received
}

// Dim returns the payload length of the open round's contributions (-1
// while none are stored).
func (a *Aggregator) Dim() int {
	if a.stream {
		if len(a.psum.Cols) == 0 {
			return -1
		}
		return a.psum.Dim()
	}
	for _, c := range a.slots {
		if c != nil {
			return len(c)
		}
	}
	return -1
}

// Reduce closes the open round and folds the stored contributions through
// the configured reduction into dst. In ReduceMean mode the result is
// bit-identical to a one-shot WeightedMean over the same
// (contribs, weights) — and, in streaming or partial-merge rounds, to a
// flat aggregation of every underlying client (the sums are exact, so
// grouping cannot change the bits). ReduceTrimmed applies the
// coordinate-wise trimmed mean instead (which itself degrades bit-exactly
// to the mean when fewer than 3 contributions arrive). Returns the
// direct contribution count (Adds, or relay partials — see ClientCount
// for the underlying client total) and false when nothing aggregates (no
// contributions or zero total weight); the round is closed either way.
func (a *Aggregator) Reduce(dst []float64) (int, bool) {
	if !a.open {
		return 0, false
	}
	a.open = false
	count := a.received
	if count == 0 {
		return 0, false
	}
	var ok bool
	if a.stream {
		a.lastTrimK, a.lastTrimM = 0, count
		ok = a.psum.Mean(dst)
	} else if a.reduction == ReduceTrimmed {
		ok = a.TrimmedMean(dst, a.slots, a.slotW, a.trimFrac)
	} else {
		a.lastTrimK, a.lastTrimM = 0, count
		ok = a.WeightedMean(dst, a.slots, a.slotW)
	}
	return count, ok
}

// ExportPartial closes the open round and copies its exact mergeable
// state into p — the relay face of the hierarchy. In streaming mode this
// is a copy of the folded state; otherwise the stored slots are folded
// in id order (identical bits either way: the sums are exact). Returns
// the contribution count and false when no round was open; a round with
// zero contributions exports a valid empty partial.
func (a *Aggregator) ExportPartial(p *Partial) (int, bool) {
	if !a.open {
		return 0, false
	}
	a.open = false
	count := a.received
	if a.stream {
		p.CopyFrom(&a.psum)
		return count, true
	}
	p.Reset()
	for id, c := range a.slots {
		if c == nil {
			continue
		}
		if err := p.Fold(c, a.slotW[id]); err != nil {
			// Stored slots already passed Add's validation; only an
			// accumulator overflow can surface here, and it poisons p
			// for the caller to detect.
			return count, true
		}
	}
	return count, true
}

// Discard drops the in-flight round without aggregating — the crash-
// recovery semantics: partials of an uncommitted round are thrown away
// and the round re-opened, which idempotent client re-sends tolerate.
func (a *Aggregator) Discard() {
	if !a.open {
		return
	}
	for i := range a.slots {
		a.slots[i], a.slotW[i] = nil, 0
	}
	if a.stream {
		for i := range a.seen {
			a.seen[i] = false
		}
		a.psum.Reset()
	}
	a.open, a.received = false, 0
	a.pMode, a.pCount = false, 0
}

// AggregatorState is a serializable snapshot of an in-flight round: the
// partial (per-client) contributions and the received-set. All fields are
// exported for codecs (package checkpoint frames it in binary).
type AggregatorState struct {
	Open  bool
	Round int
	// Clients is the slot count (cluster size) of the open round.
	Clients int
	// IDs lists the clients whose contributions are stored, ascending.
	IDs []int
	// Contribs and Weights hold the stored payloads, parallel to IDs.
	Contribs [][]float64
	Weights  []float64
}

// SnapshotRound exports the in-flight round (empty state when no round is
// open). Payloads are copied.
func (a *Aggregator) SnapshotRound() *AggregatorState {
	s := &AggregatorState{Open: a.open, Round: a.round, Clients: len(a.slots)}
	if !a.open {
		return s
	}
	for id, c := range a.slots {
		if c == nil {
			continue
		}
		s.IDs = append(s.IDs, id)
		s.Contribs = append(s.Contribs, append([]float64(nil), c...))
		s.Weights = append(s.Weights, a.slotW[id])
	}
	return s
}

// RestoreRound reloads an in-flight round from a snapshot, replacing any
// open round. Every stored contribution passes the same validation Add
// applies.
func (a *Aggregator) RestoreRound(s *AggregatorState) error {
	if s == nil {
		return fmt.Errorf("fl: nil aggregator snapshot")
	}
	if len(s.IDs) != len(s.Contribs) || len(s.IDs) != len(s.Weights) {
		return fmt.Errorf("fl: inconsistent aggregator snapshot (%d ids, %d contribs, %d weights)",
			len(s.IDs), len(s.Contribs), len(s.Weights))
	}
	if !s.Open {
		a.Discard()
		return nil
	}
	if s.Clients <= 0 {
		return fmt.Errorf("fl: aggregator snapshot with %d clients", s.Clients)
	}
	a.Open(s.Round, s.Clients)
	for k, id := range s.IDs {
		if err := a.Add(id, s.Contribs[k], s.Weights[k]); err != nil {
			a.Discard()
			return err
		}
	}
	return nil
}
