package fl

import (
	"errors"
	"fmt"
	"math"
)

// Aggregator computes the server-side weighted mean of client contributions
// by sharding the parameter range across a persistent worker pool. Shards
// are disjoint and each accumulates its clients in submission order, so
// every output scalar sees exactly the addition sequence of the serial
// loop this replaces — the result is bit-identical regardless of worker
// count or scheduling.
//
// Beyond the one-shot WeightedMean, an Aggregator also collects a round
// incrementally (Open/Add/Reduce): Add stores each client's in-flight
// contribution after a finiteness guard — a NaN or Inf scalar yields a
// typed ErrNonFinite instead of silently corrupting every shard — and
// Reduce folds the stored set through the identical ordered reduction, so
// incremental collection is bit-exact with the one-shot path. The
// in-flight round (partial contributions plus the received-set) is
// exportable as an AggregatorState for checkpointing.
//
// An Aggregator is NOT safe for concurrent WeightedMean calls; it reuses
// internal job state across calls to keep the steady state allocation-free.
type Aggregator struct {
	pool    *workerPool
	ownPool bool

	// Job state for the WeightedMean in flight (published to the workers
	// via the pool's Do barrier).
	dst      []float64
	contribs [][]float64
	normw    []float64 // weights[k]/totalW, 0 for skipped clients
	chunk    int

	runFn func(int) // bound once so Do allocates nothing per call

	// Reduction mode (SetReduction) plus the trimmed path's job state and
	// per-chunk scratch columns — reused across rounds like the mean
	// path's buffers, so the steady state stays allocation-free.
	reduction            Reduction
	trimFrac             float64
	tContribs            [][]float64
	tWeights             []float64
	trimScratch          [][]trimPair
	trimDepth            int
	lastTrimK, lastTrimM int
	runTrimFn            func(int)

	// In-flight round state (Open/Add/Reduce).
	open     bool
	round    int
	slots    [][]float64 // stored contributions by client id, nil = absent
	slotW    []float64
	received int
}

// NewAggregator builds an aggregator over its own pool of the given worker
// count (<= 0 means GOMAXPROCS). Close must be called to release the pool.
func NewAggregator(workers int) *Aggregator {
	return newAggregatorOn(newWorkerPool(workers), true)
}

func newAggregatorOn(pool *workerPool, own bool) *Aggregator {
	a := &Aggregator{pool: pool, ownPool: own}
	a.runFn = a.runChunk
	a.runTrimFn = a.runTrimChunk
	return a
}

// minChunk keeps shards coarse enough that the per-task dispatch cost stays
// negligible against the arithmetic.
const minChunk = 4096

// WeightedMean fills dst[j] = Σ_k (weights[k]/ΣW)·contribs[k][j], skipping
// clients with weight 0 (their contrib may be nil — e.g. inactive clients
// under partial participation). When the total weight is 0 there is nothing
// to aggregate: dst is left untouched and false is returned.
func (a *Aggregator) WeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	if len(contribs) != len(weights) {
		panic(fmt.Sprintf("fl: %d contributions for %d weights", len(contribs), len(weights)))
	}
	totalW := 0.0
	for k, w := range weights {
		if w == 0 {
			continue
		}
		if len(contribs[k]) != len(dst) {
			panic(fmt.Sprintf("fl: contribution %d has length %d, want %d", k, len(contribs[k]), len(dst)))
		}
		totalW += w
	}
	if totalW <= 0 {
		return false
	}

	if cap(a.normw) < len(weights) {
		a.normw = make([]float64, len(weights))
	}
	a.normw = a.normw[:len(weights)]
	for k, w := range weights {
		if w == 0 {
			a.normw[k] = 0
			continue
		}
		a.normw[k] = w / totalW
	}

	dim := len(dst)
	chunk := (dim + a.pool.workers*4 - 1) / (a.pool.workers * 4)
	if chunk < minChunk {
		chunk = minChunk
	}
	nChunks := (dim + chunk - 1) / chunk

	a.dst, a.contribs, a.chunk = dst, contribs, chunk
	if nChunks <= 1 {
		a.runChunk(0) // too small to be worth the barrier
	} else {
		a.pool.Do(nChunks, a.runFn)
	}
	a.dst, a.contribs = nil, nil
	return true
}

// runChunk reduces one shard [ci·chunk, min(dim, (ci+1)·chunk)).
func (a *Aggregator) runChunk(ci int) {
	lo := ci * a.chunk
	hi := lo + a.chunk
	if hi > len(a.dst) {
		hi = len(a.dst)
	}
	dst := a.dst[lo:hi]
	for j := range dst {
		dst[j] = 0
	}
	for k, c := range a.contribs {
		w := a.normw[k]
		if w == 0 {
			continue
		}
		for j, v := range c[lo:hi] {
			dst[j] += w * v
		}
	}
}

// Close releases the aggregator's pool (when it owns one).
func (a *Aggregator) Close() {
	if a.ownPool {
		a.pool.Close()
	}
}

// ErrNonFinite is returned (wrapped) by Add when a contribution carries a
// NaN or Inf scalar or weight. One poisoned client must never fold into
// the shards: a single non-finite scalar contaminates the global model
// and every downstream stability statistic.
var ErrNonFinite = errors.New("fl: non-finite contribution")

// ErrLengthMismatch is returned (wrapped) by Add when a contribution's
// length disagrees with one already stored for the round — positionally
// aligned averaging is meaningless across different geometries.
var ErrLengthMismatch = errors.New("fl: payload length mismatch")

// Open begins incremental collection of one round with n client slots,
// discarding any round still in flight. Slot buffers are reused across
// rounds.
func (a *Aggregator) Open(round, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("fl: invalid client count %d", n))
	}
	if cap(a.slots) < n {
		a.slots = make([][]float64, n)
		a.slotW = make([]float64, n)
	}
	a.slots = a.slots[:n]
	a.slotW = a.slotW[:n]
	for i := range a.slots {
		a.slots[i], a.slotW[i] = nil, 0
	}
	a.open, a.round, a.received = true, round, 0
}

// Add stores client id's contribution for the open round. It returns a
// typed error — never panics — on an out-of-range id, a duplicate, a
// payload whose length disagrees with an already-stored one, or any
// non-finite scalar or weight (ErrNonFinite, naming the first offending
// index). The slice is stored, not copied; callers must not mutate it
// until the round is reduced or discarded.
func (a *Aggregator) Add(id int, contrib []float64, weight float64) error {
	if !a.open {
		return fmt.Errorf("fl: Add outside an open round")
	}
	if id < 0 || id >= len(a.slots) {
		return fmt.Errorf("fl: client id %d out of range [0,%d)", id, len(a.slots))
	}
	if a.slots[id] != nil {
		return fmt.Errorf("fl: duplicate contribution from client %d in round %d", id, a.round)
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
		return fmt.Errorf("%w: round %d client %d weight %v", ErrNonFinite, a.round, id, weight)
	}
	for i := range a.slots {
		if a.slots[i] != nil && len(a.slots[i]) != len(contrib) {
			return fmt.Errorf("%w: round %d client %d payload length %d disagrees with client %d's %d",
				ErrLengthMismatch, a.round, id, len(contrib), i, len(a.slots[i]))
		}
	}
	for j, v := range contrib {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: round %d client %d scalar %d is %v", ErrNonFinite, a.round, id, j, v)
		}
	}
	a.slots[id] = contrib
	a.slotW[id] = weight
	a.received++
	return nil
}

// Received reports whether client id already contributed to the open
// round.
func (a *Aggregator) Received(id int) bool {
	return a.open && id >= 0 && id < len(a.slots) && a.slots[id] != nil
}

// Count returns how many contributions the open round holds.
func (a *Aggregator) Count() int { return a.received }

// Dim returns the payload length of the open round's contributions (-1
// while none are stored).
func (a *Aggregator) Dim() int {
	for _, c := range a.slots {
		if c != nil {
			return len(c)
		}
	}
	return -1
}

// Reduce closes the open round and folds the stored contributions through
// the configured reduction into dst. In ReduceMean mode the result is
// bit-identical to a one-shot WeightedMean over the same
// (contribs, weights) in client-id order; ReduceTrimmed applies the
// coordinate-wise trimmed mean instead (which itself degrades bit-exactly
// to the mean when fewer than 3 contributions arrive). Returns the
// participant count and false when nothing aggregates (no contributions
// or zero total weight); the round is closed either way.
func (a *Aggregator) Reduce(dst []float64) (int, bool) {
	if !a.open {
		return 0, false
	}
	a.open = false
	count := a.received
	if count == 0 {
		return 0, false
	}
	var ok bool
	if a.reduction == ReduceTrimmed {
		ok = a.TrimmedMean(dst, a.slots, a.slotW, a.trimFrac)
	} else {
		a.lastTrimK, a.lastTrimM = 0, count
		ok = a.WeightedMean(dst, a.slots, a.slotW)
	}
	return count, ok
}

// Discard drops the in-flight round without aggregating — the crash-
// recovery semantics: partials of an uncommitted round are thrown away
// and the round re-opened, which idempotent client re-sends tolerate.
func (a *Aggregator) Discard() {
	if !a.open {
		return
	}
	for i := range a.slots {
		a.slots[i], a.slotW[i] = nil, 0
	}
	a.open, a.received = false, 0
}

// AggregatorState is a serializable snapshot of an in-flight round: the
// partial (per-client) contributions and the received-set. All fields are
// exported for codecs (package checkpoint frames it in binary).
type AggregatorState struct {
	Open  bool
	Round int
	// Clients is the slot count (cluster size) of the open round.
	Clients int
	// IDs lists the clients whose contributions are stored, ascending.
	IDs []int
	// Contribs and Weights hold the stored payloads, parallel to IDs.
	Contribs [][]float64
	Weights  []float64
}

// SnapshotRound exports the in-flight round (empty state when no round is
// open). Payloads are copied.
func (a *Aggregator) SnapshotRound() *AggregatorState {
	s := &AggregatorState{Open: a.open, Round: a.round, Clients: len(a.slots)}
	if !a.open {
		return s
	}
	for id, c := range a.slots {
		if c == nil {
			continue
		}
		s.IDs = append(s.IDs, id)
		s.Contribs = append(s.Contribs, append([]float64(nil), c...))
		s.Weights = append(s.Weights, a.slotW[id])
	}
	return s
}

// RestoreRound reloads an in-flight round from a snapshot, replacing any
// open round. Every stored contribution passes the same validation Add
// applies.
func (a *Aggregator) RestoreRound(s *AggregatorState) error {
	if s == nil {
		return fmt.Errorf("fl: nil aggregator snapshot")
	}
	if len(s.IDs) != len(s.Contribs) || len(s.IDs) != len(s.Weights) {
		return fmt.Errorf("fl: inconsistent aggregator snapshot (%d ids, %d contribs, %d weights)",
			len(s.IDs), len(s.Contribs), len(s.Weights))
	}
	if !s.Open {
		a.Discard()
		return nil
	}
	if s.Clients <= 0 {
		return fmt.Errorf("fl: aggregator snapshot with %d clients", s.Clients)
	}
	a.Open(s.Round, s.Clients)
	for k, id := range s.IDs {
		if err := a.Add(id, s.Contribs[k], s.Weights[k]); err != nil {
			a.Discard()
			return err
		}
	}
	return nil
}
