package fl

import "fmt"

// Aggregator computes the server-side weighted mean of client contributions
// by sharding the parameter range across a persistent worker pool. Shards
// are disjoint and each accumulates its clients in submission order, so
// every output scalar sees exactly the addition sequence of the serial
// loop this replaces — the result is bit-identical regardless of worker
// count or scheduling.
//
// An Aggregator is NOT safe for concurrent WeightedMean calls; it reuses
// internal job state across calls to keep the steady state allocation-free.
type Aggregator struct {
	pool    *workerPool
	ownPool bool

	// Job state for the WeightedMean in flight (published to the workers
	// via the pool's Do barrier).
	dst      []float64
	contribs [][]float64
	normw    []float64 // weights[k]/totalW, 0 for skipped clients
	chunk    int

	runFn func(int) // bound once so Do allocates nothing per call
}

// NewAggregator builds an aggregator over its own pool of the given worker
// count (<= 0 means GOMAXPROCS). Close must be called to release the pool.
func NewAggregator(workers int) *Aggregator {
	return newAggregatorOn(newWorkerPool(workers), true)
}

func newAggregatorOn(pool *workerPool, own bool) *Aggregator {
	a := &Aggregator{pool: pool, ownPool: own}
	a.runFn = a.runChunk
	return a
}

// minChunk keeps shards coarse enough that the per-task dispatch cost stays
// negligible against the arithmetic.
const minChunk = 4096

// WeightedMean fills dst[j] = Σ_k (weights[k]/ΣW)·contribs[k][j], skipping
// clients with weight 0 (their contrib may be nil — e.g. inactive clients
// under partial participation). When the total weight is 0 there is nothing
// to aggregate: dst is left untouched and false is returned.
func (a *Aggregator) WeightedMean(dst []float64, contribs [][]float64, weights []float64) bool {
	if len(contribs) != len(weights) {
		panic(fmt.Sprintf("fl: %d contributions for %d weights", len(contribs), len(weights)))
	}
	totalW := 0.0
	for k, w := range weights {
		if w == 0 {
			continue
		}
		if len(contribs[k]) != len(dst) {
			panic(fmt.Sprintf("fl: contribution %d has length %d, want %d", k, len(contribs[k]), len(dst)))
		}
		totalW += w
	}
	if totalW <= 0 {
		return false
	}

	if cap(a.normw) < len(weights) {
		a.normw = make([]float64, len(weights))
	}
	a.normw = a.normw[:len(weights)]
	for k, w := range weights {
		if w == 0 {
			a.normw[k] = 0
			continue
		}
		a.normw[k] = w / totalW
	}

	dim := len(dst)
	chunk := (dim + a.pool.workers*4 - 1) / (a.pool.workers * 4)
	if chunk < minChunk {
		chunk = minChunk
	}
	nChunks := (dim + chunk - 1) / chunk

	a.dst, a.contribs, a.chunk = dst, contribs, chunk
	if nChunks <= 1 {
		a.runChunk(0) // too small to be worth the barrier
	} else {
		a.pool.Do(nChunks, a.runFn)
	}
	a.dst, a.contribs = nil, nil
	return true
}

// runChunk reduces one shard [ci·chunk, min(dim, (ci+1)·chunk)).
func (a *Aggregator) runChunk(ci int) {
	lo := ci * a.chunk
	hi := lo + a.chunk
	if hi > len(a.dst) {
		hi = len(a.dst)
	}
	dst := a.dst[lo:hi]
	for j := range dst {
		dst[j] = 0
	}
	for k, c := range a.contribs {
		w := a.normw[k]
		if w == 0 {
			continue
		}
		for j, v := range c[lo:hi] {
			dst[j] += w * v
		}
	}
}

// Close releases the aggregator's pool (when it owns one).
func (a *Aggregator) Close() {
	if a.ownPool {
		a.pool.Close()
	}
}
