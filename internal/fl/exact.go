package fl

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Exact order-invariant accumulation.
//
// IEEE float addition is not associative, so a weighted mean computed by
// chaining float adds depends on summation order — and therefore on how
// clients are partitioned across relays in a hierarchical topology. To
// make pre-aggregation bit-exact under ANY client→relay partitioning,
// the canonical weighted mean is defined over an exact integer
// accumulator instead:
//
//	S[j] = Σ_k fix(w_k · c_k[j])      W = Σ_k fix(w_k)
//	mean[j] = float64(S[j]) / float64(W)
//
// where fix(x) is x·2^64 rounded to the nearest signed 128-bit integer
// (ties to even) — i.e. signed fixed point with 64 fractional bits — and
// float64(·) is the correctly-rounded conversion back. Each product is a
// single float64 multiply (deterministic), its conversion is
// deterministic, and 128-bit integer addition is exact, associative, and
// commutative: any arrival order, sharding, or relay grouping of the
// same contributions produces identical bits.
//
// Range and precision: magnitudes below 2^-1022 scale to well under half
// a unit and round to zero; products with |p| ≥ 2^-12 convert exactly
// (53-bit mantissa above the 2^-64 grid); the accumulator holds sums up
// to |Σ| < 2^63, far beyond any sane model geometry — overflow is
// detected and poisons the aggregate loudly rather than wrapping.

// ErrAccumOverflow is returned (wrapped) when an exact accumulator
// overflows its ±2^63 range. A mid-fold overflow poisons the partial
// (sticky): the column state is already half-mutated, so the whole
// aggregate is discarded rather than silently wrong.
var ErrAccumOverflow = errors.New("fl: exact accumulator overflow")

// fixFromFloat converts x into round-to-nearest-even(x·2^64) as a
// two's-complement 128-bit (lo, hi) pair. ok is false when x is
// non-finite or |x| ≥ 2^63 (outside the accumulator's range).
func fixFromFloat(x float64) (lo, hi uint64, ok bool) {
	b := math.Float64bits(x)
	exp := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	if exp == 0x7ff { // NaN or ±Inf
		return 0, 0, false
	}
	if exp == 0 {
		// ±0, or a subnormal (|x| < 2^-1022) whose scaled magnitude is
		// far below half a unit: rounds to zero.
		return 0, 0, true
	}
	mant |= 1 << 52
	shift := exp - 1011 // x·2^64 = ±mant·2^shift, mant ∈ [2^52, 2^53)
	switch {
	case shift >= 75:
		return 0, 0, false // |x| ≥ 2^63
	case shift >= 64:
		hi = mant << (shift - 64)
	case shift >= 0:
		hi = mant >> (64 - shift)
		lo = mant << shift
	case shift >= -53:
		// Fractional tail dropped: round to nearest, ties to even.
		s := uint(-shift)
		r := mant >> s
		if mant>>(s-1)&1 == 1 && (mant&(1<<(s-1)-1) != 0 || r&1 == 1) {
			r++
		}
		lo = r
	default:
		// mant·2^shift < 1/2 strictly: rounds to zero.
	}
	if b>>63 == 1 {
		lo, hi = negate128(lo, hi)
	}
	return lo, hi, true
}

// negate128 returns the two's-complement negation of (lo, hi).
func negate128(lo, hi uint64) (uint64, uint64) {
	nlo, borrow := bits.Sub64(0, lo, 0)
	nhi, _ := bits.Sub64(0, hi, borrow)
	return nlo, nhi
}

// fixAdd adds two signed 128-bit values. ok is false on signed overflow
// (operands share a sign the result lost).
func fixAdd(alo, ahi, blo, bhi uint64) (lo, hi uint64, ok bool) {
	var c uint64
	lo, c = bits.Add64(alo, blo, 0)
	hi, _ = bits.Add64(ahi, bhi, c)
	return lo, hi, (ahi^bhi)>>63 != 0 || (ahi^hi)>>63 == 0
}

// fixToFloat converts a signed 128-bit fixed-point value (64 fractional
// bits) to the nearest float64, ties to even. The rounding decision sees
// the full 128-bit magnitude, so the conversion is correctly rounded.
func fixToFloat(lo, hi uint64) float64 {
	neg := int64(hi) < 0
	if neg {
		lo, hi = negate128(lo, hi)
	}
	if hi == 0 && lo == 0 {
		return 0
	}
	var nbits int
	if hi != 0 {
		nbits = 128 - bits.LeadingZeros64(hi)
	} else {
		nbits = 64 - bits.LeadingZeros64(lo)
	}
	mant := lo // nbits ≤ 53 implies hi == 0: the value is already exact
	e2 := 0
	if s := uint(nbits - 53); nbits > 53 {
		var rb, sticky uint64
		switch {
		case s < 64:
			mant = hi<<(64-s) | lo>>s
			rb = lo >> (s - 1) & 1
			sticky = lo & (1<<(s-1) - 1)
		case s == 64:
			mant = hi
			rb = lo >> 63
			sticky = lo &^ (1 << 63)
		default: // 64 < s ≤ 74
			t := s - 64
			mant = hi >> t
			rb = hi >> (t - 1) & 1
			sticky = hi&(1<<(t-1)-1) | lo
		}
		if rb == 1 && (sticky != 0 || mant&1 == 1) {
			mant++
		}
		e2 = int(s)
		if mant == 1<<53 { // carry out of the 53-bit mantissa
			mant >>= 1
			e2++
		}
	}
	f := math.Ldexp(float64(mant), e2-64)
	if neg {
		return -f
	}
	return f
}

// Partial is the mergeable state of an exact weighted sum: per-coordinate
// fixed-point column sums plus the fixed-point total weight and the
// contribution count. Because every field is an exact integer sum,
// partials from any disjoint grouping of the same contributions merge to
// identical bits — the property the hierarchical relay tier rests on.
// Weight and count ride along so weighted FedAvg over merged partials
// equals the flat computation exactly.
type Partial struct {
	// Count is the number of client contributions folded in, transitively
	// through merges.
	Count int
	// WeightLo/WeightHi hold the exact fixed-point total weight
	// (two's complement, 64 fractional bits).
	WeightLo, WeightHi uint64
	// Cols holds the exact per-coordinate sums, two words per coordinate:
	// lo at 2j, hi at 2j+1. Empty until the first fold fixes the
	// dimension.
	Cols []uint64

	poisoned bool
}

// Reset clears the partial for reuse, keeping column capacity.
func (p *Partial) Reset() {
	p.Count, p.WeightLo, p.WeightHi = 0, 0, 0
	p.Cols = p.Cols[:0]
	p.poisoned = false
}

// Dim returns the coordinate count (0 until the first fold).
func (p *Partial) Dim() int { return len(p.Cols) / 2 }

// Poisoned reports whether an accumulator overflow invalidated the
// partial; a poisoned partial refuses further folds and never aggregates.
func (p *Partial) Poisoned() bool { return p.poisoned }

// adopt sizes the columns for dim coordinates when the partial is still
// empty, zeroing any reused capacity.
func (p *Partial) adopt(dim int) {
	if cap(p.Cols) < 2*dim {
		p.Cols = make([]uint64, 2*dim)
		return
	}
	p.Cols = p.Cols[:2*dim]
	for i := range p.Cols {
		p.Cols[i] = 0
	}
}

// Fold adds one weighted contribution exactly. Validation happens before
// any state changes: non-finite scalars, non-finite or negative weights
// (ErrNonFinite), and payload lengths disagreeing with the partial's
// dimension (ErrLengthMismatch) are rejected cleanly. An accumulator
// overflow mid-fold poisons the partial and returns ErrAccumOverflow.
func (p *Partial) Fold(contrib []float64, weight float64) error {
	if p.poisoned {
		return fmt.Errorf("%w: partial is poisoned", ErrAccumOverflow)
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
		return fmt.Errorf("%w: weight %v", ErrNonFinite, weight)
	}
	if len(p.Cols) != 0 && 2*len(contrib) != len(p.Cols) {
		return fmt.Errorf("%w: payload length %d, partial holds %d",
			ErrLengthMismatch, len(contrib), p.Dim())
	}
	for j, v := range contrib {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: scalar %d is %v", ErrNonFinite, j, v)
		}
	}
	wlo, whi, ok := fixFromFloat(weight)
	if !ok {
		return fmt.Errorf("%w: weight %v", ErrAccumOverflow, weight)
	}
	if len(p.Cols) == 0 && len(contrib) > 0 {
		p.adopt(len(contrib))
	}
	for j, v := range contrib {
		plo, phi, ok := fixFromFloat(weight * v)
		if ok {
			p.Cols[2*j], p.Cols[2*j+1], ok = fixAdd(p.Cols[2*j], p.Cols[2*j+1], plo, phi)
		}
		if !ok {
			p.poisoned = true
			return fmt.Errorf("%w: coordinate %d", ErrAccumOverflow, j)
		}
	}
	if p.WeightLo, p.WeightHi, ok = fixAdd(p.WeightLo, p.WeightHi, wlo, whi); !ok {
		p.poisoned = true
		return fmt.Errorf("%w: total weight", ErrAccumOverflow)
	}
	p.Count++
	return nil
}

// Merge folds another partial in exactly. Integer addition makes the
// result order- and grouping-invariant: merging per-relay partials in any
// order yields the same bits as folding every underlying contribution
// into one flat partial. A dimension disagreement (ErrLengthMismatch), a
// negative count or weight, a poisoned source, or an overflow
// (ErrAccumOverflow, poisoning) is rejected.
func (p *Partial) Merge(q *Partial) error {
	if p.poisoned {
		return fmt.Errorf("%w: partial is poisoned", ErrAccumOverflow)
	}
	if q.poisoned {
		return fmt.Errorf("%w: source partial is poisoned", ErrAccumOverflow)
	}
	if q.Count < 0 {
		return fmt.Errorf("fl: merge of partial with negative count %d", q.Count)
	}
	if int64(q.WeightHi) < 0 {
		return fmt.Errorf("%w: negative partial weight", ErrNonFinite)
	}
	if len(q.Cols) != 0 && len(q.Cols)%2 != 0 {
		return fmt.Errorf("fl: merge of partial with odd column length %d", len(q.Cols))
	}
	if len(p.Cols) != 0 && len(q.Cols) != 0 && len(p.Cols) != len(q.Cols) {
		return fmt.Errorf("%w: partial dim %d, source dim %d",
			ErrLengthMismatch, p.Dim(), q.Dim())
	}
	if len(p.Cols) == 0 && len(q.Cols) != 0 {
		p.adopt(q.Dim())
	}
	var ok bool
	for j := 0; j < len(q.Cols); j += 2 {
		if p.Cols[j], p.Cols[j+1], ok = fixAdd(p.Cols[j], p.Cols[j+1], q.Cols[j], q.Cols[j+1]); !ok {
			p.poisoned = true
			return fmt.Errorf("%w: coordinate %d", ErrAccumOverflow, j/2)
		}
	}
	if p.WeightLo, p.WeightHi, ok = fixAdd(p.WeightLo, p.WeightHi, q.WeightLo, q.WeightHi); !ok {
		p.poisoned = true
		return fmt.Errorf("%w: total weight", ErrAccumOverflow)
	}
	p.Count += q.Count
	return nil
}

// CopyFrom overwrites p with q's state, reusing column capacity.
func (p *Partial) CopyFrom(q *Partial) {
	p.Count, p.WeightLo, p.WeightHi = q.Count, q.WeightLo, q.WeightHi
	p.Cols = append(p.Cols[:0], q.Cols...)
	p.poisoned = q.poisoned
}

// Mean writes the exact weighted mean into dst. Returns false with dst
// untouched when nothing aggregates: zero contributions, a non-positive
// total weight, or a poisoned partial. dst must match the partial's
// dimension.
func (p *Partial) Mean(dst []float64) bool {
	if p.poisoned || p.Count == 0 {
		return false
	}
	if int64(p.WeightHi) < 0 || (p.WeightHi == 0 && p.WeightLo == 0) {
		return false
	}
	if 2*len(dst) != len(p.Cols) {
		panic(fmt.Sprintf("fl: mean into %d coordinates from a %d-dim partial", len(dst), p.Dim()))
	}
	w := fixToFloat(p.WeightLo, p.WeightHi)
	for j := range dst {
		dst[j] = fixToFloat(p.Cols[2*j], p.Cols[2*j+1]) / w
	}
	return true
}
