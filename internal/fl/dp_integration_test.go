// External test package: compress imports fl, so this integration test of
// the two together must live outside package fl to avoid an import cycle.
package fl_test

import (
	"math/rand"
	"testing"

	"apf/internal/compress"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

// TestAPFWithDPNoise verifies the paper's §9 discussion: APF remains
// functional when clients add differential-privacy noise to uploads —
// masks stay consistent across clients (the noise enters only through the
// synchronized aggregate, identical everywhere) and the model still
// learns.
func TestAPFWithDPNoise(t *testing.T) {
	pool := data.SynthImages(data.ImageConfig{
		Classes: 4, Channels: 1, Size: 8, Samples: 320, NoiseStd: 0.6, Seed: 31,
	})
	trainIdx := make([]int, 240)
	for i := range trainIdx {
		trainIdx[i] = i
	}
	testIdx := make([]int, 80)
	for i := range testIdx {
		testIdx[i] = 240 + i
	}
	train, test := pool.Subset(trainIdx), pool.Subset(testIdx)
	rng := stats.SplitRNG(31, 0)
	parts := data.PartitionIID(rng, train.Len(), 3)

	model := func(rng *rand.Rand) *nn.Network {
		return nn.NewNetwork(
			nn.NewFlatten(),
			nn.NewDense(rng, "fc1", 64, 24),
			nn.NewTanh(),
			nn.NewDense(rng, "fc2", 24, 4),
		)
	}
	optimizer := func(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) }

	apfManagers := make([]*core.Manager, 3)
	mf := func(clientID, dim int) fl.SyncManager {
		m := core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			// §9: tighten the threshold under DP, because zero-mean noise
			// makes parameters look more stable than they are.
			Threshold: 0.1,
			EMAAlpha:  0.9,
			Seed:      99,
		})
		apfManagers[clientID] = m
		// DP noise well below the typical update magnitude, per §9.
		return compress.NewDPNoise(m, 0.002, int64(clientID))
	}

	cfg := fl.Config{Rounds: 40, LocalIters: 4, BatchSize: 16, Seed: 31, EvalEvery: 5}
	res := fl.New(cfg, model, optimizer, mf, train, parts, test).Run()

	if res.BestAcc < 0.7 {
		t.Errorf("APF+DP failed to learn: best accuracy %v", res.BestAcc)
	}
	w0 := apfManagers[0].MaskWords()
	for c := 1; c < 3; c++ {
		wc := apfManagers[c].MaskWords()
		for i := range w0 {
			if w0[i] != wc[i] {
				t.Fatalf("client %d mask diverged under DP noise", c)
			}
		}
	}
	if res.Rounds[len(res.Rounds)-1].FrozenRatio <= 0 {
		t.Error("APF froze nothing under DP noise")
	}
}
