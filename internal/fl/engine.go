package fl

import (
	"fmt"
	"math"

	"apf/internal/data"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

// Config parameterizes one federated training run.
type Config struct {
	// Rounds is the number of communication rounds.
	Rounds int
	// LocalIters is Fs, the local iterations per round (the paper's
	// synchronization frequency, §7.8 equates it with local epochs E).
	LocalIters int
	// BatchSize is the local mini-batch size (the paper uses 100).
	BatchSize int
	// Seed drives every RNG stream of the run deterministically.
	Seed int64
	// EvalEvery evaluates the global model on the test set every this
	// many rounds (and always on the final round). 0 disables evaluation.
	EvalEvery int
	// EvalBatch is the test-set forward batch size (default 256).
	EvalBatch int
	// Prox, when positive, adds the FedProx proximal term
	// μ/2·‖x − x_round‖² to every client objective (§7.7).
	Prox float64
	// WorkFractions optionally scales each client's local iterations to
	// simulate stragglers (e.g. 0.25 runs a quarter of LocalIters).
	// Empty means all clients do full work.
	WorkFractions []float64
	// DropStragglers reproduces FedAvg's straggler handling: clients
	// with WorkFraction < 1 are excluded from aggregation.
	DropStragglers bool
	// LRSchedule, when set, overrides the optimizer learning rate per
	// global iteration index.
	LRSchedule opt.Schedule
	// TrackParams lists flat-vector indices whose per-client local values
	// are recorded each round (used for the parameter-trajectory figures).
	TrackParams []int
	// OnRound, when set, is invoked after every completed round with its
	// metrics — progress reporting for long runs. It runs on the engine
	// goroutine; keep it fast.
	OnRound func(m RoundMetrics)
	// Participation, when in (0, 1), activates only that fraction of
	// clients (rounded up, at least one) in each round — the partial
	// participation of production FL (the paper's footnote 5: inactive
	// clients rejoin from the latest global model and mask). Inactive
	// clients skip local training and upload nothing; they still observe
	// the broadcast state so deterministic managers (APF) stay mask-
	// consistent. 0 or 1 means full participation.
	Participation float64
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.EvalBatch <= 0 {
		c.EvalBatch = 256
	}
	return c
}

// validate panics on nonsensical configurations (programmer error).
func (c Config) validate(clients int) {
	if c.Rounds <= 0 || c.LocalIters <= 0 || c.BatchSize <= 0 {
		panic(fmt.Sprintf("fl: invalid config rounds=%d localIters=%d batch=%d", c.Rounds, c.LocalIters, c.BatchSize))
	}
	if len(c.WorkFractions) != 0 && len(c.WorkFractions) != clients {
		panic(fmt.Sprintf("fl: %d work fractions for %d clients", len(c.WorkFractions), clients))
	}
	if c.Participation < 0 || c.Participation > 1 {
		panic(fmt.Sprintf("fl: participation %v out of [0,1]", c.Participation))
	}
}

// RoundMetrics records what happened in one communication round.
type RoundMetrics struct {
	Round    int
	TestAcc  float64 // NaN when the round was not evaluated
	TestLoss float64 // NaN when the round was not evaluated
	BestAcc  float64 // best-ever accuracy so far (the paper reports best-ever)
	// FrozenRatio is the mean frozen-parameter ratio across clients (0
	// for schemes that do not freeze).
	FrozenRatio float64
	// UpBytes/DownBytes are summed over all clients for this round.
	UpBytes   int64
	DownBytes int64
	// PerClientUpBytes/PerClientDownBytes feed the link-time model.
	PerClientUpBytes   []int64
	PerClientDownBytes []int64
	// Tracked[c][t] is client c's local value of Config.TrackParams[t]
	// at the end of the round's local phase (pre-aggregation).
	Tracked [][]float64
}

// Result aggregates a full run.
type Result struct {
	Rounds       []RoundMetrics
	BestAcc      float64
	FinalAcc     float64
	CumUpBytes   int64
	CumDownBytes int64
	Dim          int
	NumClients   int
}

// EvaluatedRounds returns only the rounds that carry test metrics.
func (r *Result) EvaluatedRounds() []RoundMetrics {
	out := make([]RoundMetrics, 0, len(r.Rounds))
	for _, m := range r.Rounds {
		if !math.IsNaN(m.TestAcc) {
			out = append(out, m)
		}
	}
	return out
}

// client is one simulated edge device.
type client struct {
	id      int
	net     *nn.Network
	params  []*nn.Param
	optim   opt.Optimizer
	batcher *data.Batcher
	manager SyncManager

	x          []float64 // flat model scratch
	roundStart []float64 // round-start snapshot for FedProx
	work       float64

	// Per-round outputs, read by the server between barriers.
	contrib []float64
	weight  float64
	up      int64
	down    int64
	tracked []float64
}

// Engine runs federated training over an in-process cluster.
type Engine struct {
	cfg     Config
	clients []*client
	test    *data.Dataset
	evalNet *nn.Network
	global  []float64
	dim     int

	// Run-scoped worker pool driving both the client phases and the
	// sharded aggregation, plus reusable aggregation scratch.
	pool     *workerPool
	agg      *Aggregator
	aggBuf   []float64
	contribs [][]float64
	weights  []float64
}

// New assembles an engine. parts[i] lists the training-set indices owned by
// client i; managers are built per client via mf.
func New(cfg Config, model ModelFactory, optimizer OptimizerFactory, mf ManagerFactory, train *data.Dataset, parts [][]int, test *data.Dataset) *Engine {
	cfg = cfg.withDefaults()
	cfg.validate(len(parts))
	if len(parts) == 0 {
		panic("fl: need at least one client")
	}

	// One canonical initialization shared by every replica.
	initNet := model(stats.SplitRNG(cfg.Seed, 1_000_000))
	initVec := nn.FlattenParams(initNet.Params(), nil)
	dim := len(initVec)

	e := &Engine{cfg: cfg, test: test, dim: dim}
	e.global = append([]float64(nil), initVec...)
	e.evalNet = initNet

	for i, indices := range parts {
		net := model(stats.SplitRNG(cfg.Seed, int64(2_000_000+i)))
		params := net.Params()
		nn.SetFlat(params, initVec)
		work := 1.0
		if len(cfg.WorkFractions) > 0 {
			work = cfg.WorkFractions[i]
		}
		c := &client{
			id:      i,
			net:     net,
			params:  params,
			optim:   optimizer(params),
			batcher: data.NewBatcher(train, indices, cfg.BatchSize, stats.SplitRNG(cfg.Seed, int64(3_000_000+i))),
			manager: mf(i, dim),
			x:       make([]float64, dim),
			work:    work,
		}
		e.clients = append(e.clients, c)
	}
	return e
}

// Dim returns the flat model length.
func (e *Engine) Dim() int { return e.dim }

// Global returns the current global model vector (shared storage; callers
// must not mutate it while Run is active).
func (e *Engine) Global() []float64 { return e.global }

// Run executes the configured number of rounds and returns the metrics.
func (e *Engine) Run() *Result {
	res := &Result{Dim: e.dim, NumClients: len(e.clients)}
	best := 0.0

	// One pool for the whole run: client phases and aggregation shards
	// reuse the same persistent workers instead of spawning goroutines
	// every round.
	e.pool = newWorkerPool(0)
	e.agg = newAggregatorOn(e.pool, false)
	if e.aggBuf == nil {
		e.aggBuf = make([]float64, e.dim)
	}
	defer func() {
		e.pool.Close()
		e.pool, e.agg = nil, nil
	}()

	for round := 0; round < e.cfg.Rounds; round++ {
		active := e.activeSet(round)
		e.parallel(func(c *client) {
			if active[c.id] {
				e.localPhase(c, round)
			} else {
				e.idlePhase(c, round)
			}
		})

		// Server aggregation: weighted mean of the contributions, sharded
		// over the pool and double-buffered (aggBuf holds the previous
		// global after the swap, ready to be overwritten next round).
		e.contribs, e.weights = e.contribs[:0], e.weights[:0]
		for _, c := range e.clients {
			e.contribs = append(e.contribs, c.contrib)
			e.weights = append(e.weights, c.weight)
		}
		if e.agg.WeightedMean(e.aggBuf, e.contribs, e.weights) {
			e.global, e.aggBuf = e.aggBuf, e.global
		}

		e.parallel(func(c *client) {
			c.down = c.manager.ApplyDownload(round, c.x, e.global)
			if !active[c.id] {
				// An inactive client's manager observes the broadcast for
				// state continuity, but no bytes cross its link this
				// round (it pulls the latest state when it rejoins).
				c.down = 0
			}
			nn.SetFlat(c.params, c.x)
		})

		m := RoundMetrics{
			Round:              round,
			TestAcc:            math.NaN(),
			TestLoss:           math.NaN(),
			PerClientUpBytes:   make([]int64, len(e.clients)),
			PerClientDownBytes: make([]int64, len(e.clients)),
		}
		frozenSum := 0.0
		for i, c := range e.clients {
			m.UpBytes += c.up
			m.DownBytes += c.down
			m.PerClientUpBytes[i] = c.up
			m.PerClientDownBytes[i] = c.down
			if fr, ok := c.manager.(FrozenRatioReporter); ok {
				frozenSum += fr.FrozenRatio()
			}
			if len(e.cfg.TrackParams) > 0 {
				m.Tracked = append(m.Tracked, c.tracked)
			}
		}
		m.FrozenRatio = frozenSum / float64(len(e.clients))
		res.CumUpBytes += m.UpBytes
		res.CumDownBytes += m.DownBytes

		if e.cfg.EvalEvery > 0 && (round%e.cfg.EvalEvery == e.cfg.EvalEvery-1 || round == e.cfg.Rounds-1) {
			loss, acc := e.Evaluate()
			m.TestAcc = acc
			m.TestLoss = loss
			if acc > best {
				best = acc
			}
			res.FinalAcc = acc
		}
		m.BestAcc = best
		res.Rounds = append(res.Rounds, m)
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(m)
		}
	}
	res.BestAcc = best
	return res
}

// activeSet selects the clients participating in the given round.
func (e *Engine) activeSet(round int) []bool {
	active := make([]bool, len(e.clients))
	p := e.cfg.Participation
	if p == 0 || p == 1 {
		for i := range active {
			active[i] = true
		}
		return active
	}
	k := int(math.Ceil(p * float64(len(e.clients))))
	if k < 1 {
		k = 1
	}
	rng := stats.SplitRNG(e.cfg.Seed, int64(5_000_000+round))
	for i, j := range rng.Perm(len(e.clients))[:k] {
		_ = i
		active[j] = true
	}
	return active
}

// idlePhase is the round body of a non-participating client: no training,
// no upload; the local flat vector is refreshed so managers and trackers
// see consistent state.
func (e *Engine) idlePhase(c *client, round int) {
	c.x = nn.FlattenParams(c.params, c.x)
	if n := len(e.cfg.TrackParams); n > 0 {
		c.tracked = make([]float64, n)
		for t, j := range e.cfg.TrackParams {
			c.tracked[t] = c.x[j]
		}
	}
	c.contrib, c.weight, c.up = nil, 0, 0
}

// parallel runs fn for every client across the run's worker pool and waits.
func (e *Engine) parallel(fn func(c *client)) {
	e.pool.Do(len(e.clients), func(i int) { fn(e.clients[i]) })
}

// localPhase runs one client's local iterations and prepares its upload.
func (e *Engine) localPhase(c *client, round int) {
	iters := e.cfg.LocalIters
	if c.work < 1 {
		iters = int(math.Round(c.work * float64(e.cfg.LocalIters)))
		if iters < 1 {
			iters = 1
		}
	}

	if e.cfg.Prox > 0 {
		c.roundStart = nn.FlattenParams(c.params, c.roundStart)
	}

	for i := 0; i < iters; i++ {
		k := round*e.cfg.LocalIters + i
		if e.cfg.LRSchedule != nil {
			c.optim.SetLR(e.cfg.LRSchedule.LRAt(k))
		}
		xb, yb := c.batcher.Next()
		nn.ZeroGrads(c.params)
		c.net.LossGrad(xb, yb)
		if e.cfg.Prox > 0 {
			e.addProximal(c)
		}
		c.optim.Step()

		c.x = nn.FlattenParams(c.params, c.x)
		c.manager.PostIterate(round, c.x)
		nn.SetFlat(c.params, c.x)
	}

	if n := len(e.cfg.TrackParams); n > 0 {
		c.tracked = make([]float64, n)
		for t, j := range e.cfg.TrackParams {
			c.tracked[t] = c.x[j]
		}
	}

	contrib, weight, up := c.manager.PrepareUpload(round, c.x)
	if e.cfg.DropStragglers && c.work < 1 {
		weight = 0
	}
	c.contrib, c.weight, c.up = contrib, weight, up
}

// addProximal adds μ(x − x_round) to the gradients (FedProx, §7.7).
func (e *Engine) addProximal(c *client) {
	off := 0
	for _, p := range c.params {
		n := p.Data.Size()
		if p.Trainable {
			for j := 0; j < n; j++ {
				p.Grad.Data[j] += e.cfg.Prox * (p.Data.Data[j] - c.roundStart[off+j])
			}
		}
		off += n
	}
}

// Evaluate scores the current global model on the test set.
func (e *Engine) Evaluate() (loss, acc float64) {
	nn.SetFlat(e.evalNet.Params(), e.global)
	return EvaluateModel(e.evalNet, e.test, e.cfg.EvalBatch)
}

// EvaluateModel computes mean loss and accuracy of net over ds in batches.
func EvaluateModel(net *nn.Network, ds *data.Dataset, batch int) (loss, acc float64) {
	if ds == nil || ds.Len() == 0 {
		return math.NaN(), math.NaN()
	}
	if batch <= 0 {
		batch = 256
	}
	n := ds.Len()
	totalLoss, totalCorrect := 0.0, 0.0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		xb, yb := ds.Gather(idx)
		l, a := net.Eval(xb, yb)
		totalLoss += l * float64(len(idx))
		totalCorrect += a * float64(len(idx))
	}
	return totalLoss / float64(n), totalCorrect / float64(n)
}
