package netsim

import (
	"testing"
	"time"
)

func TestTransferTimes(t *testing.T) {
	p := LinkProfile{UpBitsPerSec: 8e6, DownBitsPerSec: 16e6}
	if got := p.TransferUp(1e6); got != time.Second {
		t.Errorf("1MB over 8Mbps = %v, want 1s", got)
	}
	if got := p.TransferDown(1e6); got != 500*time.Millisecond {
		t.Errorf("1MB over 16Mbps = %v, want 0.5s", got)
	}
}

func TestGlobalInternetProfile(t *testing.T) {
	p := GlobalInternet()
	// Paper §7.1: 3 Mbps up, 9 Mbps down.
	if p.UpBitsPerSec != 3e6 || p.DownBitsPerSec != 9e6 {
		t.Errorf("profile %+v deviates from the paper's 3/9 Mbps", p)
	}
	// Asymmetry: uploads of equal size take 3× longer (allow for
	// nanosecond truncation in the Duration conversion).
	up, down := p.TransferUp(3e5), p.TransferDown(3e5)
	if diff := up - 3*down; diff < -3 || diff > 3 {
		t.Errorf("up %v should be 3× down %v", up, down)
	}
}

func TestRoundTimeTakesSlowestClient(t *testing.T) {
	profiles := UniformProfiles(3, LinkProfile{
		UpBitsPerSec:   8e6,
		DownBitsPerSec: 8e6,
		ComputePerIter: time.Millisecond,
	})
	iters := UniformIters(3, 10)
	up := []int64{1000, 1e6, 1000} // client 1 pushes 1MB
	down := []int64{1000, 1000, 1000}
	rt := RoundTime(profiles, iters, up, down)
	// Client 1 dominates: 10ms compute + 1s upload + 1ms download.
	if rt < time.Second || rt > 1100*time.Millisecond {
		t.Errorf("round time %v, want ≈ 1.01s (slowest client)", rt)
	}
}

func TestRoundTimeValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	RoundTime(UniformProfiles(2, GlobalInternet()), UniformIters(3, 1), []int64{1, 2}, []int64{1, 2})
}

func TestInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero bandwidth")
		}
	}()
	LinkProfile{}.TransferUp(10)
}
