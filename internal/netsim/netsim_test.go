package netsim

import (
	"testing"
	"time"
)

func TestTransferTimes(t *testing.T) {
	p := LinkProfile{UpBitsPerSec: 8e6, DownBitsPerSec: 16e6}
	if got := p.TransferUp(1e6); got != time.Second {
		t.Errorf("1MB over 8Mbps = %v, want 1s", got)
	}
	if got := p.TransferDown(1e6); got != 500*time.Millisecond {
		t.Errorf("1MB over 16Mbps = %v, want 0.5s", got)
	}
}

func TestGlobalInternetProfile(t *testing.T) {
	p := GlobalInternet()
	// Paper §7.1: 3 Mbps up, 9 Mbps down.
	if p.UpBitsPerSec != 3e6 || p.DownBitsPerSec != 9e6 {
		t.Errorf("profile %+v deviates from the paper's 3/9 Mbps", p)
	}
	// Asymmetry: uploads of equal size take 3× longer (allow for
	// nanosecond truncation in the Duration conversion).
	up, down := p.TransferUp(3e5), p.TransferDown(3e5)
	if diff := up - 3*down; diff < -3 || diff > 3 {
		t.Errorf("up %v should be 3× down %v", up, down)
	}
}

func TestRoundTimeTakesSlowestClient(t *testing.T) {
	profiles := UniformProfiles(3, LinkProfile{
		UpBitsPerSec:   8e6,
		DownBitsPerSec: 8e6,
		ComputePerIter: time.Millisecond,
	})
	iters := UniformIters(3, 10)
	up := []int64{1000, 1e6, 1000} // client 1 pushes 1MB
	down := []int64{1000, 1000, 1000}
	rt := RoundTime(profiles, iters, up, down)
	// Client 1 dominates: 10ms compute + 1s upload + 1ms download.
	if rt < time.Second || rt > 1100*time.Millisecond {
		t.Errorf("round time %v, want ≈ 1.01s (slowest client)", rt)
	}
}

func TestRoundTimeValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	RoundTime(UniformProfiles(2, GlobalInternet()), UniformIters(3, 1), []int64{1, 2}, []int64{1, 2})
}

func TestInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero bandwidth")
		}
	}()
	LinkProfile{}.TransferUp(10)
}

func TestDropoutScheduleDeterministicAndSeedSensitive(t *testing.T) {
	a := NewDropoutSchedule(42, 5, 0.3)
	b := NewDropoutSchedule(42, 5, 0.3)
	c := NewDropoutSchedule(43, 5, 0.3)
	same, diff := true, true
	for r := 0; r < 40; r++ {
		for cl := 0; cl < 5; cl++ {
			if a.Active(r, cl) != b.Active(r, cl) {
				same = false
			}
			if a.Active(r, cl) != c.Active(r, cl) {
				diff = false
			}
		}
	}
	if !same {
		t.Error("identical seeds produced different schedules")
	}
	if diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestDropoutScheduleRates(t *testing.T) {
	// Rate 0: nobody ever drops.
	full := NewDropoutSchedule(1, 4, 0)
	for r := 0; r < 20; r++ {
		for c := 0; c < 4; c++ {
			if !full.Active(r, c) {
				t.Fatalf("rate-0 schedule dropped client %d at round %d", c, r)
			}
		}
	}
	// Rate 1: everyone would drop, but the fallback keeps exactly one
	// client per round so the server can always aggregate.
	empty := NewDropoutSchedule(1, 4, 1)
	for r := 0; r < 20; r++ {
		active := empty.ActiveSet(r)
		count := 0
		for _, on := range active {
			if on {
				count++
			}
		}
		if count != 1 || !active[r%4] {
			t.Fatalf("rate-1 round %d active set %v, want only the fallback slot", r, active)
		}
	}
	// A middling rate drops someone eventually.
	mid := NewDropoutSchedule(7, 4, 0.4)
	dropped := false
	for r := 0; r < 40 && !dropped; r++ {
		for c := 0; c < 4; c++ {
			if !mid.Active(r, c) {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Error("rate-0.4 schedule never dropped anyone in 40 rounds")
	}
}

func TestPartialRoundTime(t *testing.T) {
	profiles := UniformProfiles(3, LinkProfile{
		UpBitsPerSec:   8e6,
		DownBitsPerSec: 8e6,
		ComputePerIter: time.Millisecond,
	})
	iters := UniformIters(3, 10)
	up := []int64{1000, 1e6, 1000} // client 1 pushes 1MB
	down := []int64{1000, 1000, 1000}

	// Everyone active: identical to the strict barrier.
	allOn := []bool{true, true, true}
	if got, want := PartialRoundTime(profiles, iters, up, down, allOn, 30*time.Second),
		RoundTime(profiles, iters, up, down); got != want {
		t.Errorf("full participation: %v, want RoundTime %v", got, want)
	}

	// The slow client sits out: the deadline dominates the fast ones.
	slowOff := []bool{true, false, true}
	deadline := 5 * time.Second
	if got := PartialRoundTime(profiles, iters, up, down, slowOff, deadline); got != deadline {
		t.Errorf("partial round took %v, want the %v deadline", got, deadline)
	}

	// An active straggler slower than the deadline still bounds the round.
	if got := PartialRoundTime(profiles, iters, up, down, slowOff, time.Millisecond); got < 12*time.Millisecond {
		t.Errorf("partial round %v shorter than its slowest active client", got)
	}
}

func TestPartialRoundTimeValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched active length")
		}
	}()
	PartialRoundTime(UniformProfiles(2, GlobalInternet()), UniformIters(2, 1),
		[]int64{1, 2}, []int64{1, 2}, []bool{true}, time.Second)
}

// TestDropoutScheduleMarginalRate is the property test for the dropout
// model: over many seeded rounds the empirical per-cell drop frequency
// must converge on the configured rate. The fallback slot biases the
// empirical rate low by at most rate^clients per round, negligible here.
func TestDropoutScheduleMarginalRate(t *testing.T) {
	t.Parallel()
	const rounds, clients = 4000, 8
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		d := NewDropoutSchedule(99, clients, rate)
		dropped := 0
		for r := 0; r < rounds; r++ {
			for c := 0; c < clients; c++ {
				if !d.Active(r, c) {
					dropped++
				}
			}
		}
		got := float64(dropped) / float64(rounds*clients)
		if diff := got - rate; diff > 0.02 || diff < -0.02 {
			t.Errorf("rate %.2f: empirical drop rate %.4f (off by %.4f)", rate, got, diff)
		}
	}
}

// TestDropoutScheduleNeverEmpty: at any rate, every round keeps at least
// one active client (the server's aggregation floor depends on it).
func TestDropoutScheduleNeverEmpty(t *testing.T) {
	t.Parallel()
	for _, rate := range []float64{0.5, 0.9, 1.0} {
		d := NewDropoutSchedule(3, 6, rate)
		for r := 0; r < 500; r++ {
			any := false
			for _, on := range d.ActiveSet(r) {
				any = any || on
			}
			if !any {
				t.Fatalf("rate %.1f: round %d has no active client", rate, r)
			}
		}
	}
}

// TestDelayScheduleMarginalRate is the property test for the delay model:
// the fraction of delayed cells converges on the configured rate, and
// every non-zero delay lands in [delay/2, delay).
func TestDelayScheduleMarginalRate(t *testing.T) {
	t.Parallel()
	const rounds, clients = 4000, 8
	base := 40 * time.Millisecond
	for _, rate := range []float64{0.15, 0.4} {
		d := NewDelaySchedule(17, clients, rate, base)
		delayed := 0
		for r := 0; r < rounds; r++ {
			for c := 0; c < clients; c++ {
				dl := d.DelayAt(r, c)
				if dl == 0 {
					continue
				}
				delayed++
				if dl < base/2 || dl >= base {
					t.Fatalf("rate %.2f: delay %v outside [%v, %v)", rate, dl, base/2, base)
				}
			}
		}
		got := float64(delayed) / float64(rounds*clients)
		if diff := got - rate; diff > 0.02 || diff < -0.02 {
			t.Errorf("rate %.2f: empirical delay rate %.4f (off by %.4f)", rate, got, diff)
		}
	}
}

// TestDelayScheduleDeterministicAndSeedSensitive mirrors the dropout
// determinism contract for the delay model, and checks that sharing a
// seed with a DropoutSchedule does not correlate the two draws.
func TestDelayScheduleDeterministicAndSeedSensitive(t *testing.T) {
	t.Parallel()
	base := 20 * time.Millisecond
	a := NewDelaySchedule(42, 5, 0.3, base)
	b := NewDelaySchedule(42, 5, 0.3, base)
	c := NewDelaySchedule(43, 5, 0.3, base)
	same, diff := true, true
	for r := 0; r < 40; r++ {
		for cl := 0; cl < 5; cl++ {
			if a.DelayAt(r, cl) != b.DelayAt(r, cl) {
				same = false
			}
			if a.DelayAt(r, cl) != c.DelayAt(r, cl) {
				diff = false
			}
		}
	}
	if !same {
		t.Error("identical seeds produced different delay schedules")
	}
	if diff {
		t.Error("different seeds produced identical delay schedules")
	}

	// Decorrelation from a same-seed dropout schedule: the delayed set and
	// the dropped set must not coincide.
	drop := NewDropoutSchedule(42, 5, 0.3)
	agree, total := 0, 0
	for r := 0; r < 200; r++ {
		for cl := 0; cl < 5; cl++ {
			total++
			if (a.DelayAt(r, cl) > 0) == !drop.Active(r, cl) {
				agree++
			}
		}
	}
	if agree == total {
		t.Error("delay draws perfectly correlate with dropout draws sharing the seed")
	}
}
