package netsim

import (
	"testing"
	"time"
)

func TestTransferTimes(t *testing.T) {
	p := LinkProfile{UpBitsPerSec: 8e6, DownBitsPerSec: 16e6}
	if got := p.TransferUp(1e6); got != time.Second {
		t.Errorf("1MB over 8Mbps = %v, want 1s", got)
	}
	if got := p.TransferDown(1e6); got != 500*time.Millisecond {
		t.Errorf("1MB over 16Mbps = %v, want 0.5s", got)
	}
}

func TestGlobalInternetProfile(t *testing.T) {
	p := GlobalInternet()
	// Paper §7.1: 3 Mbps up, 9 Mbps down.
	if p.UpBitsPerSec != 3e6 || p.DownBitsPerSec != 9e6 {
		t.Errorf("profile %+v deviates from the paper's 3/9 Mbps", p)
	}
	// Asymmetry: uploads of equal size take 3× longer (allow for
	// nanosecond truncation in the Duration conversion).
	up, down := p.TransferUp(3e5), p.TransferDown(3e5)
	if diff := up - 3*down; diff < -3 || diff > 3 {
		t.Errorf("up %v should be 3× down %v", up, down)
	}
}

func TestRoundTimeTakesSlowestClient(t *testing.T) {
	profiles := UniformProfiles(3, LinkProfile{
		UpBitsPerSec:   8e6,
		DownBitsPerSec: 8e6,
		ComputePerIter: time.Millisecond,
	})
	iters := UniformIters(3, 10)
	up := []int64{1000, 1e6, 1000} // client 1 pushes 1MB
	down := []int64{1000, 1000, 1000}
	rt := RoundTime(profiles, iters, up, down)
	// Client 1 dominates: 10ms compute + 1s upload + 1ms download.
	if rt < time.Second || rt > 1100*time.Millisecond {
		t.Errorf("round time %v, want ≈ 1.01s (slowest client)", rt)
	}
}

func TestRoundTimeValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	RoundTime(UniformProfiles(2, GlobalInternet()), UniformIters(3, 1), []int64{1, 2}, []int64{1, 2})
}

func TestInvalidBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero bandwidth")
		}
	}()
	LinkProfile{}.TransferUp(10)
}

func TestDropoutScheduleDeterministicAndSeedSensitive(t *testing.T) {
	a := NewDropoutSchedule(42, 5, 0.3)
	b := NewDropoutSchedule(42, 5, 0.3)
	c := NewDropoutSchedule(43, 5, 0.3)
	same, diff := true, true
	for r := 0; r < 40; r++ {
		for cl := 0; cl < 5; cl++ {
			if a.Active(r, cl) != b.Active(r, cl) {
				same = false
			}
			if a.Active(r, cl) != c.Active(r, cl) {
				diff = false
			}
		}
	}
	if !same {
		t.Error("identical seeds produced different schedules")
	}
	if diff {
		t.Error("different seeds produced identical schedules")
	}
}

func TestDropoutScheduleRates(t *testing.T) {
	// Rate 0: nobody ever drops.
	full := NewDropoutSchedule(1, 4, 0)
	for r := 0; r < 20; r++ {
		for c := 0; c < 4; c++ {
			if !full.Active(r, c) {
				t.Fatalf("rate-0 schedule dropped client %d at round %d", c, r)
			}
		}
	}
	// Rate 1: everyone would drop, but the fallback keeps exactly one
	// client per round so the server can always aggregate.
	empty := NewDropoutSchedule(1, 4, 1)
	for r := 0; r < 20; r++ {
		active := empty.ActiveSet(r)
		count := 0
		for _, on := range active {
			if on {
				count++
			}
		}
		if count != 1 || !active[r%4] {
			t.Fatalf("rate-1 round %d active set %v, want only the fallback slot", r, active)
		}
	}
	// A middling rate drops someone eventually.
	mid := NewDropoutSchedule(7, 4, 0.4)
	dropped := false
	for r := 0; r < 40 && !dropped; r++ {
		for c := 0; c < 4; c++ {
			if !mid.Active(r, c) {
				dropped = true
			}
		}
	}
	if !dropped {
		t.Error("rate-0.4 schedule never dropped anyone in 40 rounds")
	}
}

func TestPartialRoundTime(t *testing.T) {
	profiles := UniformProfiles(3, LinkProfile{
		UpBitsPerSec:   8e6,
		DownBitsPerSec: 8e6,
		ComputePerIter: time.Millisecond,
	})
	iters := UniformIters(3, 10)
	up := []int64{1000, 1e6, 1000} // client 1 pushes 1MB
	down := []int64{1000, 1000, 1000}

	// Everyone active: identical to the strict barrier.
	allOn := []bool{true, true, true}
	if got, want := PartialRoundTime(profiles, iters, up, down, allOn, 30*time.Second),
		RoundTime(profiles, iters, up, down); got != want {
		t.Errorf("full participation: %v, want RoundTime %v", got, want)
	}

	// The slow client sits out: the deadline dominates the fast ones.
	slowOff := []bool{true, false, true}
	deadline := 5 * time.Second
	if got := PartialRoundTime(profiles, iters, up, down, slowOff, deadline); got != deadline {
		t.Errorf("partial round took %v, want the %v deadline", got, deadline)
	}

	// An active straggler slower than the deadline still bounds the round.
	if got := PartialRoundTime(profiles, iters, up, down, slowOff, time.Millisecond); got < 12*time.Millisecond {
		t.Errorf("partial round %v shorter than its slowest active client", got)
	}
}

func TestPartialRoundTimeValidatesLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched active length")
		}
	}()
	PartialRoundTime(UniformProfiles(2, GlobalInternet()), UniformIters(2, 1),
		[]int64{1, 2}, []int64{1, 2}, []bool{true}, time.Second)
}
