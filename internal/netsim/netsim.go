// Package netsim models the edge network of the paper's testbed (§7.1):
// every client has an asymmetric Internet link (9 Mbps down / 3 Mbps up,
// the global-average profile the paper cites) to a well-provisioned
// central server. It converts the engine's exact per-round byte counts
// into the per-round wall-clock times of Table 3.
package netsim

import (
	"fmt"
	"time"
)

// LinkProfile describes one client's connectivity and compute speed.
type LinkProfile struct {
	// UpBitsPerSec is the client→server bandwidth.
	UpBitsPerSec float64
	// DownBitsPerSec is the server→client bandwidth.
	DownBitsPerSec float64
	// RTT is the per-exchange round-trip latency.
	RTT time.Duration
	// ComputePerIter is the local time for one training iteration.
	ComputePerIter time.Duration
}

// GlobalInternet is the paper's §7.1 client profile: 3 Mbps up, 9 Mbps
// down. The compute cost defaults to zero; experiments scale it per model.
func GlobalInternet() LinkProfile {
	return LinkProfile{
		UpBitsPerSec:   3e6,
		DownBitsPerSec: 9e6,
		RTT:            50 * time.Millisecond,
	}
}

// TransferUp returns the push time for the given payload.
func (p LinkProfile) TransferUp(bytes int64) time.Duration {
	return transfer(bytes, p.UpBitsPerSec)
}

// TransferDown returns the pull time for the given payload.
func (p LinkProfile) TransferDown(bytes int64) time.Duration {
	return transfer(bytes, p.DownBitsPerSec)
}

// transfer converts bytes over a bandwidth into a duration.
func transfer(bytes int64, bitsPerSec float64) time.Duration {
	if bitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: invalid bandwidth %v", bitsPerSec))
	}
	seconds := float64(bytes*8) / bitsPerSec
	return time.Duration(seconds * float64(time.Second))
}

// RoundTime returns the wall-clock duration of one synchronous FL round:
// the slowest client's compute + push + pull (plus one RTT), since the
// aggregation barrier waits for every client.
func RoundTime(profiles []LinkProfile, iters []int, upBytes, downBytes []int64) time.Duration {
	if len(profiles) != len(iters) || len(profiles) != len(upBytes) || len(profiles) != len(downBytes) {
		panic(fmt.Sprintf("netsim: mismatched lengths profiles=%d iters=%d up=%d down=%d",
			len(profiles), len(iters), len(upBytes), len(downBytes)))
	}
	var worst time.Duration
	for i, p := range profiles {
		t := time.Duration(iters[i])*p.ComputePerIter +
			p.TransferUp(upBytes[i]) +
			p.TransferDown(downBytes[i]) +
			p.RTT
		if t > worst {
			worst = t
		}
	}
	return worst
}

// UniformProfiles returns n copies of profile.
func UniformProfiles(n int, profile LinkProfile) []LinkProfile {
	out := make([]LinkProfile, n)
	for i := range out {
		out[i] = profile
	}
	return out
}

// UniformIters returns n copies of iters.
func UniformIters(n, iters int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = iters
	}
	return out
}
