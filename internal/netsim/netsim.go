// Package netsim models the edge network of the paper's testbed (§7.1):
// every client has an asymmetric Internet link (9 Mbps down / 3 Mbps up,
// the global-average profile the paper cites) to a well-provisioned
// central server. It converts the engine's exact per-round byte counts
// into the per-round wall-clock times of Table 3.
package netsim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// LinkProfile describes one client's connectivity and compute speed.
type LinkProfile struct {
	// UpBitsPerSec is the client→server bandwidth.
	UpBitsPerSec float64
	// DownBitsPerSec is the server→client bandwidth.
	DownBitsPerSec float64
	// RTT is the per-exchange round-trip latency.
	RTT time.Duration
	// ComputePerIter is the local time for one training iteration.
	ComputePerIter time.Duration
}

// GlobalInternet is the paper's §7.1 client profile: 3 Mbps up, 9 Mbps
// down. The compute cost defaults to zero; experiments scale it per model.
func GlobalInternet() LinkProfile {
	return LinkProfile{
		UpBitsPerSec:   3e6,
		DownBitsPerSec: 9e6,
		RTT:            50 * time.Millisecond,
	}
}

// TransferUp returns the push time for the given payload.
func (p LinkProfile) TransferUp(bytes int64) time.Duration {
	return transfer(bytes, p.UpBitsPerSec)
}

// TransferDown returns the pull time for the given payload.
func (p LinkProfile) TransferDown(bytes int64) time.Duration {
	return transfer(bytes, p.DownBitsPerSec)
}

// transfer converts bytes over a bandwidth into a duration.
func transfer(bytes int64, bitsPerSec float64) time.Duration {
	if bitsPerSec <= 0 {
		panic(fmt.Sprintf("netsim: invalid bandwidth %v", bitsPerSec))
	}
	seconds := float64(bytes*8) / bitsPerSec
	return time.Duration(seconds * float64(time.Second))
}

// RoundTime returns the wall-clock duration of one synchronous FL round:
// the slowest client's compute + push + pull (plus one RTT), since the
// aggregation barrier waits for every client.
func RoundTime(profiles []LinkProfile, iters []int, upBytes, downBytes []int64) time.Duration {
	if len(profiles) != len(iters) || len(profiles) != len(upBytes) || len(profiles) != len(downBytes) {
		panic(fmt.Sprintf("netsim: mismatched lengths profiles=%d iters=%d up=%d down=%d",
			len(profiles), len(iters), len(upBytes), len(downBytes)))
	}
	var worst time.Duration
	for i, p := range profiles {
		t := time.Duration(iters[i])*p.ComputePerIter +
			p.TransferUp(upBytes[i]) +
			p.TransferDown(downBytes[i]) +
			p.RTT
		if t > worst {
			worst = t
		}
	}
	return worst
}

// DropoutSchedule deterministically decides which clients sit out each
// round, modelling the client churn the fault-tolerant transport absorbs
// with partial aggregation. Every (round, client) decision is a pure
// function of the seed, so simulator and testbed runs can share one
// schedule. At least one client is always kept active per round — the
// server's MinClients floor never lets a round aggregate nothing.
type DropoutSchedule struct {
	seed    int64
	clients int
	rate    float64
}

// NewDropoutSchedule builds a schedule where each client independently
// misses a round with probability rate (clamped to [0, 1]).
func NewDropoutSchedule(seed int64, clients int, rate float64) *DropoutSchedule {
	if clients <= 0 {
		panic(fmt.Sprintf("netsim: invalid client count %d", clients))
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &DropoutSchedule{seed: seed, clients: clients, rate: rate}
}

// Active reports whether the client participates in the round. The
// fallback client (round mod clients) participates whenever the draw
// would otherwise empty the round.
func (d *DropoutSchedule) Active(round, client int) bool {
	if d.draw(round, client) >= d.rate {
		return true
	}
	if client != round%d.clients {
		return false
	}
	// Fallback slot: stay active unless some other client already is.
	for c := 0; c < d.clients; c++ {
		if c != client && d.draw(round, c) >= d.rate {
			return false
		}
	}
	return true
}

// ActiveSet returns the round's participation mask, one entry per client.
func (d *DropoutSchedule) ActiveSet(round int) []bool {
	out := make([]bool, d.clients)
	for c := range out {
		out[c] = d.Active(round, c)
	}
	return out
}

// draw returns the uniform [0,1) variate for one (round, client) cell.
func (d *DropoutSchedule) draw(round, client int) float64 {
	return cellRNG(d.seed, round, client).Float64()
}

// cellRNG derives the deterministic RNG of one (seed, round, client)
// cell, so every schedule decision is a pure function of the seed and
// simulator and testbed runs can share one schedule.
func cellRNG(seed int64, round, client int) *rand.Rand {
	h := fnv.New64a()
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(round))
	binary.LittleEndian.PutUint64(buf[16:], uint64(client))
	h.Write(buf[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// DelaySchedule deterministically decides which clients suffer an extra
// network stall each round, and how long it lasts. Like DropoutSchedule,
// every (round, client) decision is a pure function of the seed. Delay
// durations are jittered uniformly in [Delay/2, Delay) so concurrent
// stalls don't align on one magic duration.
type DelaySchedule struct {
	seed    int64
	clients int
	rate    float64
	delay   time.Duration
}

// NewDelaySchedule builds a schedule where each client independently
// stalls in a round with probability rate (clamped to [0, 1]) for a
// jittered duration up to delay.
func NewDelaySchedule(seed int64, clients int, rate float64, delay time.Duration) *DelaySchedule {
	if clients <= 0 {
		panic(fmt.Sprintf("netsim: invalid client count %d", clients))
	}
	if delay < 0 {
		panic(fmt.Sprintf("netsim: invalid delay %v", delay))
	}
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &DelaySchedule{seed: seed, clients: clients, rate: rate, delay: delay}
}

// DelayAt returns the extra stall for the client in the round: zero when
// the draw spares it, otherwise a deterministic duration in
// [delay/2, delay). The dropout and delay draws are decorrelated by
// seeding the delay cells from a distinct stream.
func (d *DelaySchedule) DelayAt(round, client int) time.Duration {
	rng := cellRNG(d.seed^delayStream, round, client)
	if rng.Float64() >= d.rate || d.delay == 0 {
		return 0
	}
	half := float64(d.delay) / 2
	return time.Duration(half + rng.Float64()*half)
}

// delayStream decorrelates DelaySchedule draws from DropoutSchedule draws
// that share a seed.
const delayStream = 0x64656c6179 // "delay"

// PartialRoundTime is RoundTime for a fault-tolerant round: only active
// clients are waited for, and whenever any client sits out the server
// still waits out its round deadline before aggregating, so the round
// never finishes earlier than that. Stragglers are assumed to land within
// the deadline; slower ones would be dropped, making this an upper bound.
func PartialRoundTime(profiles []LinkProfile, iters []int, upBytes, downBytes []int64, active []bool, deadline time.Duration) time.Duration {
	if len(profiles) != len(iters) || len(profiles) != len(upBytes) ||
		len(profiles) != len(downBytes) || len(profiles) != len(active) {
		panic(fmt.Sprintf("netsim: mismatched lengths profiles=%d iters=%d up=%d down=%d active=%d",
			len(profiles), len(iters), len(upBytes), len(downBytes), len(active)))
	}
	var worst time.Duration
	absent := false
	for i, p := range profiles {
		if !active[i] {
			absent = true
			continue
		}
		t := time.Duration(iters[i])*p.ComputePerIter +
			p.TransferUp(upBytes[i]) +
			p.TransferDown(downBytes[i]) +
			p.RTT
		if t > worst {
			worst = t
		}
	}
	if absent && worst < deadline {
		worst = deadline
	}
	return worst
}

// UniformProfiles returns n copies of profile.
func UniformProfiles(n int, profile LinkProfile) []LinkProfile {
	out := make([]LinkProfile, n)
	for i := range out {
		out[i] = profile
	}
	return out
}

// UniformIters returns n copies of iters.
func UniformIters(n, iters int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = iters
	}
	return out
}
