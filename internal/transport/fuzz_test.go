package transport

import (
	"testing"

	"apf/internal/wire"
)

// encodeAll frames a sequence of messages into one wire stream, as a peer
// would produce on the socket.
func encodeAll(msgs ...wire.Msg) []byte {
	var buf []byte
	for _, m := range msgs {
		buf = wire.Append(buf, m)
	}
	return buf
}

// FuzzServerDecode drives the server's inbound decode path — a JoinMsg
// followed by UpdateMsgs — with arbitrary bytes, then pushes every decoded
// update through the same validation the round loop applies. Nothing here
// may panic, however malformed the stream.
func FuzzServerDecode(f *testing.F) {
	f.Add(encodeAll(
		&JoinMsg{Name: "shard-0", SessionKey: "shard-0", HaveRound: -1},
		&UpdateMsg{Round: 0, Payload: []float64{1, 2, 3}, Weight: 3, MaskHash: 42},
		&UpdateMsg{Round: 1, Payload: []float64{4, 5, 6}, Weight: 3, MaskHash: 42},
	))
	f.Add(encodeAll(&JoinMsg{Name: "reconnector", SessionKey: "k", HaveRound: 7}))
	f.Add([]byte("not a wire frame at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 64<<10 {
			t.Skip("oversized input")
		}
		m, rest, err := wire.Decode(in, joinPayloadLimit)
		if err != nil {
			return
		}
		if _, ok := m.(*JoinMsg); !ok {
			return
		}
		for i := 0; i < 16; i++ {
			m, next, err := wire.Decode(rest, modelPayloadLimit(3))
			if err != nil {
				return
			}
			rest = next
			u, ok := m.(*UpdateMsg)
			if !ok {
				continue
			}
			// The round loop's validation must tolerate anything that
			// decodes: reject or accept, never panic.
			_ = checkUpdates(u.Round, []*UpdateMsg{u})
			_ = checkUpdates(u.Round, []*UpdateMsg{nil, u, {Payload: u.Payload, Weight: 1}})
		}
	})
}

// FuzzClientDecode drives the client's inbound decode path — a WelcomeMsg
// followed by GlobalMsgs — with arbitrary bytes, then pushes the decoded
// messages through the client-side validators.
func FuzzClientDecode(f *testing.F) {
	f.Add(encodeAll(
		&WelcomeMsg{ClientID: 0, NumClients: 2, Rounds: 3, Dim: 3, Init: []float64{1, 2, 3}},
		&GlobalMsg{Round: 0, Payload: []float64{1, 2, 3}, Participants: 2},
		&GlobalMsg{Round: 1, Payload: []float64{4, 5, 6}, Participants: 1},
	))
	f.Add(encodeAll(&WelcomeMsg{
		ClientID: 1, NumClients: 2, Rounds: 8, Dim: 3,
		Init: []float64{1, 2, 3}, Round: 5, Resumed: true,
		Missed: []GlobalMsg{{Round: 4, Payload: []float64{7, 8, 9}, Participants: 2}},
	}))
	f.Add([]byte{0xff, 0xfe, 0x00})

	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) > 64<<10 {
			t.Skip("oversized input")
		}
		m, rest, err := wire.Decode(in, wire.MaxPayload)
		if err != nil {
			return
		}
		w, ok := m.(*WelcomeMsg)
		if !ok {
			return
		}
		_ = checkWelcome(w, 3)
		_ = checkWelcome(w, w.Dim)
		expect := 0
		for i := 0; i < 16; i++ {
			m, next, err := wire.Decode(rest, modelPayloadLimit(3))
			if err != nil {
				return
			}
			rest = next
			g, ok := m.(*GlobalMsg)
			if !ok {
				continue
			}
			if checkGlobal(g, expect, 3, true) == nil {
				expect++
			}
		}
	})
}
