package transport

import (
	"errors"
	"math"
	"testing"
)

// TestValidatorTypedRejections drives each rejection class through Check
// and asserts the typed error surfaces.
func TestValidatorTypedRejections(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 4, Dim: 3, StrikeLimit: 100})
	good := []float64{1, 2, 3}

	cases := []struct {
		name    string
		id      int
		payload []float64
		weight  float64
		want    error
	}{
		{"empty payload", 0, nil, 1, ErrDimMismatch},
		{"oversized payload", 0, []float64{1, 2, 3, 4}, 1, ErrDimMismatch},
		{"id out of range", 9, good, 1, ErrDimMismatch},
		{"nan weight", 1, good, math.NaN(), ErrNonFiniteUpdate},
		{"inf weight", 1, good, math.Inf(1), ErrNonFiniteUpdate},
		{"nan scalar", 2, []float64{1, math.NaN(), 3}, 1, ErrNonFiniteUpdate},
		{"inf scalar", 2, []float64{math.Inf(-1), 2, 3}, 1, ErrNonFiniteUpdate},
	}
	for _, tc := range cases {
		err := v.Check(tc.id, 0, tc.payload, tc.weight)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := v.Check(0, 0, good, 1); err != nil {
		t.Fatalf("good update rejected: %v", err)
	}
	// A compact (mask-elided) payload is shorter than Dim and legal.
	if err := v.Check(1, 0, []float64{7}, 1); err != nil {
		t.Fatalf("compact payload rejected: %v", err)
	}
}

// TestValidatorNormGate arms the median gate and checks a 100x-norm
// update is rejected while same-scale updates keep flowing; the gate
// stays silent until MinHistory norms are recorded.
func TestValidatorNormGate(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 3, Dim: 4, MaxNormMult: 10, MinHistory: 3, StrikeLimit: 100})
	base := []float64{1, 1, 1, 1}
	huge := []float64{100, 100, 100, 100}

	// Before MinHistory accepted norms, even a wild update passes (there
	// is no reference scale yet).
	if err := v.Check(0, 0, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := v.Check(1, 0, huge, 1); err != nil {
		t.Fatalf("gate fired before MinHistory: %v", err)
	}
	if err := v.Check(2, 0, base, 1); err != nil {
		t.Fatal(err)
	}

	// Armed now (3 norms recorded; median 2 — two base norms and one
	// huge). 100x the base norm exceeds 10x the median.
	if err := v.Check(0, 1, huge, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("outlier err = %v, want ErrNormOutlier", err)
	}
	if err := v.Check(1, 1, base, 1); err != nil {
		t.Fatalf("in-scale update rejected after outlier: %v", err)
	}
	if v.Strikes(0) != 1 {
		t.Fatalf("strikes(0) = %d, want 1", v.Strikes(0))
	}
}

// TestValidatorQuarantine checks the strike limit trips into quarantine
// and stays there.
func TestValidatorQuarantine(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, StrikeLimit: 3})
	poison := []float64{math.NaN(), 0}
	for i := 0; i < 3; i++ {
		if v.Quarantined(0) {
			t.Fatalf("quarantined after %d strikes", i)
		}
		if err := v.Check(0, i, poison, 1); !errors.Is(err, ErrNonFiniteUpdate) {
			t.Fatalf("strike %d: %v", i, err)
		}
	}
	if !v.Quarantined(0) || v.QuarantinedCount() != 1 {
		t.Fatalf("not quarantined at the strike limit (strikes=%d)", v.Strikes(0))
	}
	// Even a clean update from a quarantined client is refused, without
	// charging further strikes.
	if err := v.Check(0, 9, []float64{1, 2}, 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-quarantine err = %v, want ErrQuarantined", err)
	}
	if v.Strikes(0) != 3 {
		t.Fatalf("quarantined rejections still strike: %d", v.Strikes(0))
	}
	// The other client is unaffected.
	if err := v.Check(1, 9, []float64{1, 2}, 1); err != nil {
		t.Fatalf("clean client rejected: %v", err)
	}
}

// TestValidatorRollingWindow fills the norm window past capacity and
// checks the median tracks the recent scale, not the whole run.
func TestValidatorRollingWindow(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 1, Dim: 1, MaxNormMult: 4, NormWindow: 4, MinHistory: 2, StrikeLimit: 100})
	// Old scale ~1, then the model converges and updates shrink to ~0.1.
	for i := 0; i < 4; i++ {
		if err := v.Check(0, i, []float64{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 8; i++ {
		if err := v.Check(0, i, []float64{0.1}, 1); err != nil {
			t.Fatalf("shrinking update %d rejected: %v", i, err)
		}
	}
	// Window now holds only the small norms; an old-scale update is 10x
	// the median and must trip the 4x gate.
	if err := v.Check(0, 8, []float64{1}, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("stale-scale update err = %v, want ErrNormOutlier", err)
	}
}
