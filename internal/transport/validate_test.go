package transport

import (
	"errors"
	"math"
	"testing"
)

// accept drives one update through Check and, when it passes, Commit —
// the same two-step protocol the server's admit path uses.
func accept(t *testing.T, v *Validator, id, round int, payload []float64, weight float64) error {
	t.Helper()
	norm, err := v.Check(id, round, payload, weight)
	if err != nil {
		return err
	}
	v.Commit(norm, payload)
	return nil
}

// TestValidatorTypedRejections drives each rejection class through Check
// and asserts the typed error surfaces.
func TestValidatorTypedRejections(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 4, Dim: 3, StrikeLimit: 100})
	good := []float64{1, 2, 3}

	cases := []struct {
		name    string
		id      int
		payload []float64
		weight  float64
		want    error
	}{
		{"empty payload", 0, nil, 1, ErrDimMismatch},
		{"oversized payload", 0, []float64{1, 2, 3, 4}, 1, ErrDimMismatch},
		{"id out of range", 9, good, 1, ErrDimMismatch},
		{"nan weight", 1, good, math.NaN(), ErrNonFiniteUpdate},
		{"inf weight", 1, good, math.Inf(1), ErrNonFiniteUpdate},
		{"nan scalar", 2, []float64{1, math.NaN(), 3}, 1, ErrNonFiniteUpdate},
		{"inf scalar", 2, []float64{math.Inf(-1), 2, 3}, 1, ErrNonFiniteUpdate},
	}
	for _, tc := range cases {
		_, err := v.Check(tc.id, 0, tc.payload, tc.weight)
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if err := accept(t, v, 0, 0, good, 1); err != nil {
		t.Fatalf("good update rejected: %v", err)
	}
	// A compact (mask-elided) payload is shorter than Dim and legal.
	if err := accept(t, v, 1, 0, []float64{7}, 1); err != nil {
		t.Fatalf("compact payload rejected: %v", err)
	}
}

// TestValidatorNormGate arms the median gate and checks a 100x-norm
// update is rejected while same-scale updates keep flowing; the gate
// stays silent until MinHistory norms are recorded.
func TestValidatorNormGate(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 3, Dim: 4, MaxNormMult: 10, MinHistory: 3, StrikeLimit: 100})
	base := []float64{1, 1, 1, 1}
	huge := []float64{100, 100, 100, 100}

	// Before MinHistory accepted norms, even a wild update passes (there
	// is no reference scale yet).
	if err := accept(t, v, 0, 0, base, 1); err != nil {
		t.Fatal(err)
	}
	if err := accept(t, v, 1, 0, huge, 1); err != nil {
		t.Fatalf("gate fired before MinHistory: %v", err)
	}
	if err := accept(t, v, 2, 0, base, 1); err != nil {
		t.Fatal(err)
	}

	// Armed now (3 norms recorded; median 2 — two base norms and one
	// huge). 100x the base norm exceeds 10x the median.
	if err := accept(t, v, 0, 1, huge, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("outlier err = %v, want ErrNormOutlier", err)
	}
	if err := accept(t, v, 1, 1, base, 1); err != nil {
		t.Fatalf("in-scale update rejected after outlier: %v", err)
	}
	if v.Strikes(0) != 1 {
		t.Fatalf("strikes(0) = %d, want 1", v.Strikes(0))
	}
}

// TestCheckAloneDoesNotRecordNorms separates validation from recording:
// an update that passes Check but is never Commit-ted (the aggregator
// refused it, say for a cross-client length mismatch) must not feed the
// median gate — otherwise rejected updates could skew the reference
// scale.
func TestCheckAloneDoesNotRecordNorms(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, MaxNormMult: 2, MinHistory: 1, StrikeLimit: 100})
	base := []float64{1, 1}
	huge := []float64{100, 100}

	// Checks without Commit: the history stays empty, so the gate never
	// arms and even a wild norm keeps passing.
	for i := 0; i < 5; i++ {
		if _, err := v.Check(0, i, base, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Check(1, 5, huge, 1); err != nil {
		t.Fatalf("gate armed from un-committed norms: %v", err)
	}

	// One committed norm arms it (MinHistory 1) at the base scale.
	if err := accept(t, v, 0, 6, base, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Check(1, 7, huge, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("outlier err = %v, want ErrNormOutlier", err)
	}
}

// TestValidatorQuarantine checks the strike limit trips into quarantine
// and stays there.
func TestValidatorQuarantine(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, StrikeLimit: 3})
	poison := []float64{math.NaN(), 0}
	for i := 0; i < 3; i++ {
		if v.Quarantined(0) {
			t.Fatalf("quarantined after %d strikes", i)
		}
		if _, err := v.Check(0, i, poison, 1); !errors.Is(err, ErrNonFiniteUpdate) {
			t.Fatalf("strike %d: %v", i, err)
		}
	}
	if !v.Quarantined(0) || v.QuarantinedCount() != 1 {
		t.Fatalf("not quarantined at the strike limit (strikes=%d)", v.Strikes(0))
	}
	// Even a clean update from a quarantined client is refused, without
	// charging further strikes.
	if _, err := v.Check(0, 9, []float64{1, 2}, 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-quarantine err = %v, want ErrQuarantined", err)
	}
	if v.Strikes(0) != 3 {
		t.Fatalf("quarantined rejections still strike: %d", v.Strikes(0))
	}
	// The other client is unaffected.
	if err := accept(t, v, 1, 9, []float64{1, 2}, 1); err != nil {
		t.Fatalf("clean client rejected: %v", err)
	}
}

// TestValidatorRollingWindow fills the norm window past capacity and
// checks the median tracks the recent scale, not the whole run.
func TestValidatorRollingWindow(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 1, Dim: 1, MaxNormMult: 4, NormWindow: 4, MinHistory: 2, StrikeLimit: 100})
	// Old scale ~1, then the model converges and updates shrink to ~0.1.
	for i := 0; i < 4; i++ {
		if err := accept(t, v, 0, i, []float64{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < 8; i++ {
		if err := accept(t, v, 0, i, []float64{0.1}, 1); err != nil {
			t.Fatalf("shrinking update %d rejected: %v", i, err)
		}
	}
	// Window now holds only the small norms; an old-scale update is 10x
	// the median and must trip the 4x gate.
	if err := accept(t, v, 0, 8, []float64{1}, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("stale-scale update err = %v, want ErrNormOutlier", err)
	}
}

// TestValidatorStateRoundTrip snapshots a validator mid-run (one client
// quarantined, gate armed), round-trips it through the server snapshot
// codec, restores it into a fresh validator, and checks both defenses
// survive: the quarantine holds and the norm gate fires immediately,
// without waiting for MinHistory fresh norms.
func TestValidatorStateRoundTrip(t *testing.T) {
	cfg := ValidatorConfig{Clients: 3, Dim: 2, MaxNormMult: 4, NormWindow: 4, MinHistory: 3, StrikeLimit: 2}
	v := NewValidator(cfg)
	poison := []float64{math.NaN(), 0}
	for i := 0; i < 2; i++ {
		if _, err := v.Check(2, i, poison, 1); !errors.Is(err, ErrNonFiniteUpdate) {
			t.Fatalf("strike %d: %v", i, err)
		}
	}
	if !v.Quarantined(2) {
		t.Fatal("client 2 not quarantined")
	}
	// Arm the gate at scale ~1, overflowing the 4-slot window once so the
	// chronological export of a wrapped ring is exercised.
	for i := 0; i < 6; i++ {
		if err := accept(t, v, i%2, i, []float64{1, 1}, 1); err != nil {
			t.Fatal(err)
		}
	}

	st := &serverState{
		NumClients: 3,
		Rounds:     8,
		Init:       []float64{0, 0},
		Keys:       []string{"a", "b", "c"},
		Names:      []string{"a", "b", "c"},
		Validator:  v.snapshotState(),
	}
	decoded, err := decodeServerState(encodeServerState(st))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := verifyRecovered(decoded, ServerConfig{NumClients: 3, Rounds: 8, Init: []float64{0, 0}}); err != nil {
		t.Fatalf("verifyRecovered: %v", err)
	}

	v2 := NewValidator(cfg)
	if err := v2.restoreState(decoded.Validator); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !v2.Quarantined(2) || v2.Strikes(2) != 2 {
		t.Fatalf("quarantine lost across restart (strikes=%d)", v2.Strikes(2))
	}
	// The gate is armed from the restored history: a 100x update is
	// rejected on the very first post-restart check.
	if _, err := v2.Check(0, 6, []float64{100, 100}, 1); !errors.Is(err, ErrNormOutlier) {
		t.Fatalf("post-restart outlier err = %v, want ErrNormOutlier", err)
	}
	if err := accept(t, v2, 1, 6, []float64{1, 1}, 1); err != nil {
		t.Fatalf("post-restart in-scale update rejected: %v", err)
	}

	// A validator state sized for a different cluster must be refused.
	if err := NewValidator(ValidatorConfig{Clients: 2, Dim: 2}).restoreState(decoded.Validator); err == nil {
		t.Fatal("restore accepted a state for a different cluster size")
	}
}

// TestValidatorQuarantineRound pins when the quarantine round is
// recorded: -1 until the strike limit trips, then the round of the final
// strike, immutable afterwards — and the sentinel returns after a state
// restore, which carries the flag but not the round.
func TestValidatorQuarantineRound(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, StrikeLimit: 2})
	poison := []float64{math.NaN(), 0}
	if v.QuarantineRound(0) != -1 || v.QuarantineRound(1) != -1 {
		t.Fatal("fresh validator should report -1 quarantine rounds")
	}
	if _, err := v.Check(0, 3, poison, 1); !errors.Is(err, ErrNonFiniteUpdate) {
		t.Fatalf("strike 1: %v", err)
	}
	if v.QuarantineRound(0) != -1 {
		t.Fatalf("quarantine round set before the limit: %d", v.QuarantineRound(0))
	}
	if _, err := v.Check(0, 5, poison, 1); !errors.Is(err, ErrNonFiniteUpdate) {
		t.Fatalf("strike 2: %v", err)
	}
	if v.QuarantineRound(0) != 5 {
		t.Fatalf("quarantine round = %d, want 5", v.QuarantineRound(0))
	}
	// Further rejections must not move the recorded round.
	if _, err := v.Check(0, 7, poison, 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("post-quarantine err = %v", err)
	}
	if v.QuarantineRound(0) != 5 {
		t.Fatalf("quarantine round drifted to %d", v.QuarantineRound(0))
	}
	if v.QuarantineRound(1) != -1 {
		t.Fatal("unquarantined client grew a quarantine round")
	}

	// Snapshots persist the round alongside the flag.
	v2 := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, StrikeLimit: 2})
	if err := v2.restoreState(v.snapshotState()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !v2.Quarantined(0) {
		t.Fatal("quarantine flag lost across restore")
	}
	if v2.QuarantineRound(0) != 5 {
		t.Fatalf("restored quarantine round = %d, want 5", v2.QuarantineRound(0))
	}
	if v2.QuarantineRound(1) != -1 {
		t.Fatal("unquarantined client grew a quarantine round across restore")
	}

	// A legacy snapshot (written before quarantine rounds were durable)
	// carries the flag but not the round: the restored validator reports
	// the honest -1 sentinel.
	legacy := v.snapshotState()
	legacy.QuarRound = nil
	v3 := NewValidator(ValidatorConfig{Clients: 2, Dim: 2, StrikeLimit: 2})
	if err := v3.restoreState(legacy); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
	if !v3.Quarantined(0) {
		t.Fatal("quarantine flag lost across legacy restore")
	}
	if v3.QuarantineRound(0) != -1 {
		t.Fatalf("legacy restored quarantine round = %d, want -1", v3.QuarantineRound(0))
	}
}

// TestCosineGate arms the direction gate with a stable honest direction
// and checks that an inverted update is rejected with
// ErrDirectionOutlier while an aligned one passes.
func TestCosineGate(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 3, Dim: 4, CosineFloor: 0.2, StrikeLimit: 100})
	honest := []float64{1, 2, 0, -1}
	flipped := []float64{-1, -2, 0, 1}

	// Unarmed (fewer than CosineMinHistory commits): even an inverted
	// update passes — there is no reference to judge against yet.
	for i := 0; i < 3; i++ {
		if err := accept(t, v, 0, i, honest, 1); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if _, ok := v.LastCosine(); ok {
		t.Fatal("cosine computed before the gate armed")
	}
	if _, err := v.Check(1, 3, flipped, 1); !errors.Is(err, ErrDirectionOutlier) {
		t.Fatalf("inverted update: err = %v, want ErrDirectionOutlier", err)
	}
	if cos, ok := v.LastCosine(); !ok || cos > -0.99 {
		t.Fatalf("LastCosine = (%v, %v), want ~-1", cos, ok)
	}
	if v.Strikes(1) != 1 {
		t.Fatalf("strikes = %d, want 1", v.Strikes(1))
	}
	if err := accept(t, v, 2, 3, honest, 1); err != nil {
		t.Fatalf("aligned update rejected: %v", err)
	}
	if cos, ok := v.LastCosine(); !ok || cos < 0.99 {
		t.Fatalf("LastCosine = (%v, %v), want ~1", cos, ok)
	}
}

// TestCosineGateGeometryReset: a payload-length change (mask refresh)
// restarts the reference — the gate holds fire at the new geometry until
// CosineMinHistory fresh commits rebuild it, then arms again.
func TestCosineGateGeometryReset(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 2, Dim: 8, CosineFloor: 0.2, StrikeLimit: 100})
	wide := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	for i := 0; i < 3; i++ {
		if err := accept(t, v, 0, i, wide, 1); err != nil {
			t.Fatalf("wide commit %d: %v", i, err)
		}
	}
	if _, err := v.Check(1, 3, []float64{-1, -1, -1, -1, -1, -1, -1, -1}, 1); !errors.Is(err, ErrDirectionOutlier) {
		t.Fatalf("gate should be armed at the wide geometry: %v", err)
	}

	// Mask refresh: compact payloads are shorter. The first commits at the
	// new geometry pass unjudged (no reference), including inverted ones.
	narrow := []float64{2, -1}
	for i := 0; i < 3; i++ {
		if err := accept(t, v, 0, 4+i, narrow, 1); err != nil {
			t.Fatalf("narrow commit %d: %v", i, err)
		}
	}
	if _, err := v.Check(1, 7, []float64{-2, 1}, 1); !errors.Is(err, ErrDirectionOutlier) {
		t.Fatalf("gate should re-arm after the reset: %v", err)
	}
}

// TestCosineStateRoundTrip: the reference direction survives
// snapshot/restore — a restarted validator rejects a flipper on its
// first post-restore update, with no re-arming window. A legacy snapshot
// (no reference) restores with the gate disarmed until fresh commits.
func TestCosineStateRoundTrip(t *testing.T) {
	cfg := ValidatorConfig{Clients: 2, Dim: 4, CosineFloor: 0.2, StrikeLimit: 100}
	v := NewValidator(cfg)
	honest := []float64{3, 0, -1, 2}
	flipped := []float64{-3, 0, 1, -2}
	for i := 0; i < 4; i++ {
		if err := accept(t, v, 0, i, honest, 1); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}

	v2 := NewValidator(cfg)
	if err := v2.restoreState(v.snapshotState()); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := v2.Check(1, 4, flipped, 1); !errors.Is(err, ErrDirectionOutlier) {
		t.Fatalf("restored gate disarmed: %v", err)
	}
	if err := accept(t, v2, 0, 4, honest, 1); err != nil {
		t.Fatalf("restored gate rejects honest update: %v", err)
	}

	legacy := v.snapshotState()
	legacy.Ref, legacy.RefCount = nil, 0
	v3 := NewValidator(cfg)
	if err := v3.restoreState(legacy); err != nil {
		t.Fatalf("legacy restore: %v", err)
	}
	if _, err := v3.Check(1, 4, flipped, 1); err != nil {
		t.Fatalf("legacy restore should disarm the cosine gate: %v", err)
	}
}

// TestReviewRound: the post-round norm review strikes participants whose
// norm towers over the round median, accumulating to quarantine, and
// stays silent below 3 participants.
func TestReviewRound(t *testing.T) {
	v := NewValidator(ValidatorConfig{Clients: 4, Dim: 8, RoundNormMult: 1.5, StrikeLimit: 2})

	if s := v.ReviewRound(0, []int{0, 1}, []float64{1, 100}); s != nil {
		t.Fatalf("review of 2 participants struck %v", s)
	}
	strikes := v.ReviewRound(1, []int{0, 1, 2, 3}, []float64{1, 1.1, 0.9, 1.6})
	if len(strikes) != 1 || strikes[0].ID != 3 {
		t.Fatalf("round 1 strikes = %+v, want client 3 only", strikes)
	}
	if !errors.Is(strikes[0].Err, ErrNormOutlier) {
		t.Fatalf("strike error = %v, want ErrNormOutlier", strikes[0].Err)
	}
	if v.Quarantined(3) {
		t.Fatal("quarantined after one strike with limit 2")
	}
	strikes = v.ReviewRound(2, []int{0, 1, 2, 3}, []float64{1, 1, 1, 1.9})
	if len(strikes) != 1 || strikes[0].ID != 3 {
		t.Fatalf("round 2 strikes = %+v, want client 3 only", strikes)
	}
	if !v.Quarantined(3) || v.QuarantineRound(3) != 2 {
		t.Fatalf("client 3 quarantine = (%v, round %d), want (true, 2)",
			v.Quarantined(3), v.QuarantineRound(3))
	}

	// Disabled review never strikes.
	off := NewValidator(ValidatorConfig{Clients: 4, Dim: 8})
	if s := off.ReviewRound(0, []int{0, 1, 2}, []float64{1, 1, 50}); s != nil {
		t.Fatalf("disabled review struck %v", s)
	}
}
