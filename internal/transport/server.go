package transport

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"apf/internal/checkpoint"
	"apf/internal/core"
	"apf/internal/fl"
	"apf/internal/telemetry"
	"apf/internal/telemetry/hooks"
	"apf/internal/wire"
)

// ServerConfig parameterizes an aggregation server.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Listener, when non-nil, is used instead of binding Addr — the hook
	// for fault-injecting wrappers (package chaos).
	Listener net.Listener
	// NumClients is the cluster size; the server waits for exactly this
	// many registrations before round 0. Ignored when Relays > 0 (the root
	// tier registers relays, not clients).
	NumClients int
	// Relays switches the server into the hierarchy's root tier: it
	// registers exactly this many edge relays (RelayJoinMsg) instead of
	// clients, collects one exact pre-aggregated PartialUpdateMsg per relay
	// per round, and broadcasts the committed aggregate back to the relays
	// — per-round root traffic and work are O(Relays), independent of how
	// many clients the edges terminate. Because the partial sums are exact
	// integer accumulators, the committed trajectory is bit-identical to a
	// flat coordinator over the same clients under any client→relay
	// partitioning. The trimmed reduction does not decompose over partial
	// sums (it needs every per-client value) and inbound sanitization runs
	// where the per-client payloads are (the relays), so NewServer rejects
	// Relays > 0 combined with fl.ReduceTrimmed or a Validator. 0 keeps the
	// flat coordinator.
	Relays int
	// Rounds is the number of aggregation rounds to run.
	Rounds int
	// Init is the initial global model distributed to every client.
	Init []float64
	// IOTimeout bounds each message exchange (default 30s). It should
	// exceed RoundDeadline plus the slowest client's training time, since
	// a connection idle past it is treated as dead.
	IOTimeout time.Duration
	// RoundDeadline enables fault-tolerant operation: after this much time
	// in a round, aggregation proceeds with the K ≤ N updates received
	// (weighted partial FedAvg), disconnected clients may resume their
	// session later, and client failures are survived rather than fatal.
	// 0 keeps the strict barrier: every round waits for all clients and
	// any failure aborts the run.
	RoundDeadline time.Duration
	// MinClients is the minimum number of updates required before a round
	// deadline may fire the aggregation (default 1). The deadline never
	// aggregates fewer; the round keeps waiting instead.
	MinClients int
	// Codec is the strongest payload codec the server will negotiate per
	// session (wire.NegotiateCodec caps it by each client's advertised
	// capabilities). CodecDense — the zero value — keeps every session on
	// the v1 dense kinds. CodecSparseQ16 additionally rounds every
	// committed aggregate through binary16, so dense and quantized sessions
	// of one cluster observe bit-identical models.
	Codec wire.Codec
	// CheckpointDir makes the coordinator durable: the server persists a
	// snapshot plus write-ahead log under this directory and, when it
	// finds a consistent checkpoint there at startup, resumes the run
	// from it bit-exactly (committed rounds are replayed from the WAL;
	// the round left open by a crash is discarded and re-collected from
	// the clients' idempotent re-sends). Empty disables durability.
	// Recovery is only useful with RoundDeadline > 0, since a restarted
	// strict-barrier server aborts on its first disconnected client.
	CheckpointDir string
	// SnapshotEvery rotates the snapshot every K committed rounds
	// (default 5); between snapshots only the WAL grows.
	SnapshotEvery int
	// Validator, when non-nil, enables inbound update sanitization:
	// non-finite values, impossible dimensions, median-gated norm
	// outliers, and direction outliers (when CosineFloor is set) are
	// rejected with typed errors, repeat offenders are quarantined, and
	// the post-round norm review (when RoundNormMult is set) strikes
	// norm-evasive scalers. Clients and Dim are filled from the server
	// config.
	Validator *ValidatorConfig
	// Reduction selects how accepted contributions fold into the committed
	// aggregate: fl.ReduceMean (the zero value) is classic weighted
	// FedAvg; fl.ReduceTrimmed is the coordinate-wise trimmed mean, which
	// bounds the influence of any single contribution on any coordinate —
	// including attacks no inbound gate rejects. TrimFraction is its
	// per-side trim fraction (0 takes fl.DefaultTrimFraction; must stay
	// below 0.5).
	Reduction    fl.Reduction
	TrimFraction float64
	// HistoryRounds bounds the in-memory aggregate history to the most
	// recent K committed rounds (0 keeps every round). Eviction bounds
	// server memory to O(dim + sessions) over arbitrarily long runs; a
	// client whose round fell off the window resumes through the wire-v4
	// catch-up protocol (snapshot or sketch reconciliation) instead of
	// the missed-payload replay, bit-exactly either way.
	HistoryRounds int
	// Shadow, when non-nil, is the core manager configuration every
	// client was built with (Dim may be left 0; it is filled from Init).
	// The server then maintains a shadow replica of the deterministic
	// manager state — advanced at every commit — which powers the
	// stateful catch-up modes: sketch reconciliation and manager-carrying
	// snapshots. Nil restricts catch-up to the stateless snapshot (model
	// payload only), which suffices for stateless clients and relays.
	Shadow *core.Config
	// Metrics, when non-nil, receives runtime metrics from every layer of
	// the server (rounds, updates, wire traffic, durability, validation).
	// Nil keeps the server metric-free at the cost of one branch per
	// record site.
	Metrics *telemetry.Registry
	// Log, when non-nil, receives structured events (round commits,
	// rejections, resumes, recovery). Nil keeps the server silent.
	Log *telemetry.Logger
}

// peers returns the size of the tier the server terminates: relays on the
// hierarchy's root, clients on a flat coordinator.
func (cfg *ServerConfig) peers() int {
	if cfg.Relays > 0 {
		return cfg.Relays
	}
	return cfg.NumClients
}

// root reports whether the server is the hierarchy's root tier.
func (cfg *ServerConfig) root() bool { return cfg.Relays > 0 }

// maxQueuedFrames bounds a session's outbound frame queue. A client that
// stops draining its connection is detached once the queue fills, instead
// of growing server memory without bound; after resuming it catches up
// through the missed-payload replay. In practice the protocol's lockstep
// (one Update in flight per Global out) keeps queues at depth ≤ 2.
const maxQueuedFrames = 64

// Server is the central FL aggregation endpoint.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// done is closed when Run returns; it unblocks reader goroutines.
	done chan struct{}
	// events carries decoded updates and connection failures to the engine.
	events chan event
	// regErr carries a fatal registration failure (strict mode).
	regErr chan error
	// regReady is closed once all NumClients sessions registered.
	regReady chan struct{}

	// store persists snapshots and the WAL when durability is enabled;
	// startRound is the first round still to run after recovery (0 on a
	// fresh start). recovered marks that openStore restored an existing
	// checkpoint — even one with startRound still 0 (a crash inside round
	// 0), in which case the base snapshot on disk must not be re-written.
	// validator is nil unless sanitization is configured.
	store      *checkpoint.Store
	startRound int
	recovered  bool
	validator  *Validator

	// reducer and streaming configure the engine's relay face: the relay
	// installs its upstream partial-sum exchange (and streaming collection)
	// between NewServer and Run, never concurrently with either.
	reducer   roundReducer
	streaming bool

	// metrics/wireM/log are nil-safe instrumentation handles (no-ops
	// unless ServerConfig injected a registry or logger).
	metrics *serverMetrics
	wireM   *wireMetrics
	log     *telemetry.Logger

	mu    sync.Mutex
	round int // round currently being collected
	// history holds the retained committed aggregates: history[i] is round
	// histBase+i. histBase is 0 until HistoryRounds eviction starts
	// dropping old rounds.
	history  []GlobalMsg
	histBase int
	frames   []*roundFrames // per-codec encoded aggregates, parallel to history
	// shadow replicates the clients' manager state (nil unless
	// cfg.Shadow); lastDense/lastDenseRound keep the newest full-length
	// committed payload for the stateless catch-up fallback; jumpSnap is
	// an upstream snapshot staged by a relay for commitJump.
	shadow         *shadow
	lastDense      []float64
	lastDenseRound int
	jumpSnap       *wire.SnapshotMsg
	sessions       []*session // by client id, registration order
	byKey          map[string]*session
	conns          map[*countingConn]struct{} // live, un-absorbed connections
	regDone        bool
	bytesRead      int64
	bytesSent      int64
	partialRounds  int
	rejected       int // updates refused by validation/aggregation guards
}

// session is the server-side state of one client, surviving reconnects.
// Each attached connection gets a dedicated writer goroutine draining
// queue, so a stalled client blocks only its own writer — never the round
// loop or another client's delivery.
type session struct {
	id   int
	key  string
	name string

	mu sync.Mutex
	// codec is the payload codec negotiated at the session's latest join
	// (wire.NegotiateCodec of the server's cap and the client's Caps).
	codec wire.Codec
	cond  *sync.Cond    // signalled on queue/conn/inflight changes
	conn  *countingConn // nil while disconnected
	gen   int           // bumps per attached connection; stale readers detach no-one
	sent  int           // next round whose GlobalMsg this connection needs
	// queue holds encoded frames awaiting the writer goroutine; inflight
	// marks a frame popped but not yet written; sendErr is the sticky
	// write failure of the current connection.
	queue    [][]byte
	inflight bool
	sendErr  error
}

// newSession builds a session with its condition variable armed.
func newSession(id int, key, name string) *session {
	sess := &session{id: id, key: key, name: name}
	sess.cond = sync.NewCond(&sess.mu)
	return sess
}

// roundFrames caches the encoded forms of one committed aggregate — at
// most one immutable frame per codec, shared by every session writer, so
// encode cost stays O(1) in client count per codec actually in use. The
// dense frame is built eagerly at commit; sparse variants are built on the
// first session that needs them.
type roundFrames struct {
	g    GlobalMsg
	meta roundMeta
	dim  int // dense model dimension (sparse frame metadata)

	mu      sync.Mutex
	encoded [int(wire.CodecSparseQ16) + 1][]byte
}

// newRoundFrames builds the cache for one committed aggregate with its
// dense frame pre-encoded.
func newRoundFrames(g *GlobalMsg, meta roundMeta, dim int) *roundFrames {
	rf := &roundFrames{g: *g, meta: meta, dim: dim}
	rf.encoded[wire.CodecDense] = wire.Encode(g)
	return rf
}

// frame returns the round's frame for a session codec, encoding it on
// first request. A sparse frame is only sound when the round proved mask
// agreement (every participant attested the same non-zero hash, which the
// receiver re-checks against its own mask before expanding); rounds
// without that evidence fall back to the dense frame, which sparse
// sessions accept as well.
func (rf *roundFrames) frame(c wire.Codec) []byte {
	if c <= wire.CodecDense || int(c) >= len(rf.encoded) || rf.meta.maskHash == 0 {
		return rf.encoded[wire.CodecDense]
	}
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if rf.encoded[c] == nil {
		sg := &SparseGlobalMsg{
			Round:        rf.g.Round,
			Participants: rf.g.Participants,
			MaskHash:     rf.meta.maskHash,
			MaskGen:      rf.meta.maskGen,
			Dim:          rf.dim,
			Enc:          c.Enc(),
		}
		sg.Values, sg.Q = wire.PackSparse(c.Enc(), rf.g.Payload)
		rf.encoded[c] = wire.Encode(sg)
	}
	return rf.encoded[c]
}

// NewServer binds the listen socket. Call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.peers() <= 0 || cfg.Rounds <= 0 || len(cfg.Init) == 0 {
		return nil, fmt.Errorf("transport: invalid server config peers=%d rounds=%d dim=%d",
			cfg.peers(), cfg.Rounds, len(cfg.Init))
	}
	if cfg.root() {
		// The trimmed reduction inspects every per-client value per
		// coordinate, which an exact partial sum has already folded away;
		// inbound sanitization likewise needs the per-client payloads, which
		// only the relays see. Both belong on a flat topology (or, for
		// sanitization, on the relays themselves).
		if cfg.Reduction == fl.ReduceTrimmed {
			return nil, fmt.Errorf("transport: the trimmed reduction does not decompose over relay partial sums; run it on a flat topology")
		}
		if cfg.Validator != nil {
			return nil, fmt.Errorf("transport: inbound sanitization needs per-client payloads, which the root tier never sees; configure the validator on the relays")
		}
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.MinClients > cfg.peers() {
		cfg.MinClients = cfg.peers()
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 5
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
		}
	}
	if cfg.Validator != nil && cfg.Validator.Clients != 0 && cfg.Validator.Clients != cfg.NumClients {
		closeQuietly(ln)
		return nil, fmt.Errorf("transport: validator clients %d conflicts with cluster size %d",
			cfg.Validator.Clients, cfg.NumClients)
	}
	if cfg.Reduction == fl.ReduceTrimmed && cfg.TrimFraction >= 0.5 {
		closeQuietly(ln)
		return nil, fmt.Errorf("transport: trim fraction %v leaves no survivors (must be < 0.5)", cfg.TrimFraction)
	}
	if cfg.HistoryRounds < 0 {
		closeQuietly(ln)
		return nil, fmt.Errorf("transport: negative history bound %d", cfg.HistoryRounds)
	}
	s := &Server{
		cfg:            cfg,
		ln:             ln,
		done:           make(chan struct{}),
		events:         make(chan event, cfg.peers()*4),
		regErr:         make(chan error, 1),
		regReady:       make(chan struct{}),
		byKey:          make(map[string]*session),
		conns:          make(map[*countingConn]struct{}),
		lastDenseRound: -1,
		metrics:        newServerMetrics(cfg.Metrics),
		wireM:          newWireMetrics(cfg.Metrics),
		log:            cfg.Log.With("component", "server"),
	}
	if cfg.Shadow != nil {
		scfg := *cfg.Shadow
		if scfg.Dim == 0 {
			scfg.Dim = len(cfg.Init)
		}
		if scfg.Dim != len(cfg.Init) {
			closeQuietly(ln)
			return nil, fmt.Errorf("transport: shadow dimension %d conflicts with model dimension %d",
				scfg.Dim, len(cfg.Init))
		}
		s.shadow = newShadow(scfg)
	}
	if cfg.Validator != nil {
		vcfg := *cfg.Validator
		vcfg.Clients = cfg.NumClients
		vcfg.Dim = len(cfg.Init)
		s.validator = NewValidator(vcfg)
	}
	if cfg.CheckpointDir != "" {
		if err := s.openStore(); err != nil {
			closeQuietly(ln)
			return nil, err
		}
	}
	return s, nil
}

// openStore attaches the checkpoint store and, when it holds a
// consistent checkpoint, restores the run: session table, aggregate
// history, and accounting come back exactly as committed, the round
// counter resumes after the last committed round, and the registration
// barrier is considered already passed (clients re-attach through the
// session-resume path).
func (s *Server) openStore() error {
	store, err := checkpoint.Open(s.cfg.CheckpointDir)
	if err != nil {
		return err
	}
	// Attach durability instrumentation before recovery so the recovery
	// Load itself is observed.
	store.SetObserver(hooks.Store(s.cfg.Metrics, s.cfg.Log))
	st, err := recoverState(store, s.cfg.root())
	if err != nil {
		store.Close()
		return fmt.Errorf("transport: recover checkpoint: %w", err)
	}
	s.store = store
	if st == nil {
		return nil // fresh start: the base snapshot is written at regDone
	}
	if err := verifyRecovered(st, s.cfg); err != nil {
		store.Close()
		return err
	}
	if st.Validator != nil && s.validator != nil {
		if err := s.validator.restoreState(st.Validator); err != nil {
			store.Close()
			return err
		}
	}
	for id := range st.Keys {
		sess := newSession(id, st.Keys[id], st.Names[id])
		s.sessions = append(s.sessions, sess)
		if sess.key != "" {
			s.byKey[sess.key] = sess
		}
	}
	s.history = st.History
	s.histBase = st.HistoryBase
	// Re-frame the recovered history so the broadcast index stays aligned
	// with it (frames[i] always carries history[i]). Mask evidence is not
	// persisted, so recovered rounds serve dense frames to every codec —
	// correct, and irrelevant in practice: resuming clients catch up via
	// the Welcome's missed-payload replay, not the writer queues.
	for i := range s.history {
		s.frames = append(s.frames, newRoundFrames(&s.history[i], roundMeta{maskGen: -1}, len(s.cfg.Init)))
	}
	s.partialRounds = st.PartialRounds
	s.startRound = st.HistoryBase + len(st.History)
	// Restore the catch-up state. The shadow comes back from its persisted
	// snapshot when one exists; otherwise it replays the retained history,
	// which is only complete on an unevicted server — a shadow that cannot
	// see round 0 is marked broken rather than desynced silently. The
	// stateless fallback payload is the newest retained dense commit.
	if s.shadow != nil {
		restored := false
		if st.ShadowRound >= 0 && len(st.Shadow) > 0 {
			if err := s.shadow.restore(st.ShadowRound, st.ShadowX, st.Shadow); err != nil {
				store.Close()
				return fmt.Errorf("transport: restore shadow replica: %w", err)
			}
			restored = true
		} else if s.histBase > 0 {
			s.shadow.broken = true
		}
		if !s.shadow.broken {
			for i := range s.history {
				if restored && s.history[i].Round <= s.shadow.round {
					continue
				}
				s.shadow.observe(&s.history[i])
			}
		}
	}
	for i := len(s.history) - 1; i >= 0; i-- {
		if len(s.history[i].Payload) == len(s.cfg.Init) {
			s.lastDense = append([]float64(nil), s.history[i].Payload...)
			s.lastDenseRound = s.history[i].Round
			break
		}
	}
	s.evictLocked()
	s.recovered = true
	s.round = s.startRound
	s.regDone = true
	close(s.regReady)
	if s.metrics != nil {
		s.metrics.recoveries.Inc()
		s.metrics.recoveredRound.Set(float64(s.startRound))
		s.metrics.committedRounds.Set(float64(s.startRound))
		s.metrics.historyLen.Set(float64(len(s.history)))
	}
	s.log.Info("run recovered from checkpoint",
		"start_round", s.startRound, "sessions", len(s.sessions),
		"partial_rounds", s.partialRounds)
	return nil
}

// snapshotState captures the server's durable state under s.mu.
func (s *Server) snapshotState() *serverState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &serverState{
		NumClients:    s.cfg.peers(),
		Rounds:        s.cfg.Rounds,
		Init:          s.cfg.Init,
		History:       append([]GlobalMsg(nil), s.history...),
		HistoryBase:   s.histBase,
		PartialRounds: s.partialRounds,
		ShadowRound:   -1,
	}
	for _, sess := range s.sessions {
		st.Keys = append(st.Keys, sess.key)
		st.Names = append(st.Names, sess.name)
	}
	if s.validator != nil {
		st.Validator = s.validator.snapshotState()
	}
	if sh := s.shadow; sh != nil && !sh.broken && sh.round >= 0 {
		st.ShadowRound = sh.round
		st.Shadow = checkpoint.EncodeManager(sh.mgr.Snapshot())
		st.ShadowX = append([]float64(nil), sh.x...)
	}
	return st
}

// evictLocked drops committed rounds beyond the HistoryRounds window.
// Caller holds s.mu (or has exclusive access during recovery). Slices
// are reallocated so the dropped rounds' payloads and frames actually
// become collectable instead of staying pinned by the backing arrays.
func (s *Server) evictLocked() {
	hr := s.cfg.HistoryRounds
	if hr <= 0 || len(s.history) <= hr {
		return
	}
	drop := len(s.history) - hr
	s.histBase += drop
	s.history = append(make([]GlobalMsg, 0, hr), s.history[drop:]...)
	s.frames = append(make([]*roundFrames, 0, hr), s.frames[drop:]...)
	if s.metrics != nil {
		s.metrics.evictedRounds.Add(int64(drop))
	}
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// faultTolerant reports whether partial aggregation and resume are enabled.
func (s *Server) faultTolerant() bool { return s.cfg.RoundDeadline > 0 }

// WireBytes returns the total bytes received from and sent to clients.
func (s *Server) WireBytes() (read, sent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	read, sent = s.bytesRead, s.bytesSent
	for cc := range s.conns {
		r, w := cc.Counts()
		read += r
		sent += w
	}
	return read, sent
}

// PartialRounds returns how many rounds aggregated fewer than NumClients
// updates (always 0 in strict mode).
func (s *Server) PartialRounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partialRounds
}

// RejectedUpdates returns how many updates the sanitization and
// aggregation guards refused.
func (s *Server) RejectedUpdates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// Validator exposes the sanitization state (nil when disabled). Read it
// only after Run returns; the round loop owns it while running.
func (s *Server) Validator() *Validator { return s.validator }

// StartRound returns the first round the server will (or did) collect —
// 0 on a fresh start, the round after the last committed one when the
// server resumed from a checkpoint.
func (s *Server) StartRound() int { return s.startRound }

// Recovered reports whether the server restored an existing checkpoint.
// Unlike StartRound() > 0 it also covers a crash inside round 0, where
// the recovered history is still empty.
func (s *Server) Recovered() bool { return s.recovered }

// Round returns the round currently being collected. Safe to call while
// the server runs (the /healthz endpoint does).
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// CommittedRounds returns how many rounds have been committed over the
// run's lifetime (eviction does not shrink it). Safe to call while the
// server runs.
func (s *Server) CommittedRounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.histBase + len(s.history)
}

// Sessions returns how many client sessions have registered so far. Safe
// to call while the server runs; harnesses use it to stagger client
// launches so server-assigned ids follow a deterministic join order.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// track registers a live connection for byte accounting.
func (s *Server) track(cc *countingConn) {
	s.mu.Lock()
	s.conns[cc] = struct{}{}
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.connsTotal.Inc()
		s.metrics.connsActive.Add(1)
	}
}

// absorb folds a connection's byte counts into the server totals exactly
// once and closes it.
func (s *Server) absorb(cc *countingConn) {
	s.mu.Lock()
	_, live := s.conns[cc]
	if live {
		delete(s.conns, cc)
		r, w := cc.Counts()
		s.bytesRead += r
		s.bytesSent += w
	}
	s.mu.Unlock()
	if live && s.metrics != nil {
		s.metrics.connsActive.Add(-1)
	}
	closeQuietly(cc)
}

// detach drops a session's connection if it still is the given
// generation, waking its writer and any flush waiter.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen != gen || sess.conn == nil {
		sess.mu.Unlock()
		return
	}
	cc := sess.conn
	sess.conn = nil
	sess.cond.Broadcast()
	sess.mu.Unlock()
	if s.metrics != nil {
		s.metrics.writerDetaches.Inc()
	}
	s.log.Warn("session detached", "client", sess.id, "name", sess.name)
	s.absorb(cc)
}

// post delivers an event to the round loop unless Run already returned.
func (s *Server) post(ev event) {
	select {
	case s.events <- ev:
	case <-s.done:
	}
}

// Run accepts clients, drives all rounds, and returns the final global
// model. It honours ctx cancellation by tearing down the listener and all
// connections.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer close(s.done)
	defer func() {
		if s.store != nil {
			_ = s.store.Close()
		}
		closeQuietly(s.ln)
		s.mu.Lock()
		sessions := append([]*session(nil), s.sessions...)
		live := make([]*countingConn, 0, len(s.conns))
		for cc := range s.conns {
			live = append(live, cc)
		}
		s.mu.Unlock()
		// Release every writer goroutine before closing its socket.
		for _, sess := range sessions {
			sess.mu.Lock()
			sess.conn = nil
			sess.cond.Broadcast()
			sess.mu.Unlock()
		}
		for _, cc := range live {
			s.absorb(cc)
		}
	}()

	// Tear everything down if the context is cancelled.
	go func() {
		select {
		case <-ctx.Done():
			closeQuietly(s.ln)
			s.mu.Lock()
			for cc := range s.conns {
				closeQuietly(cc)
			}
			s.mu.Unlock()
		case <-s.done:
		}
	}()

	go s.acceptLoop()

	// Registration barrier: all NumClients sessions must exist before
	// round 0 (reconnects of registered sessions are fine meanwhile).
	select {
	case <-s.regReady:
	case err := <-s.regErr:
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	// The base snapshot makes the completed registration durable: every
	// later recovery restores the session table from it, keeping client
	// ids stable across restarts. A recovered server skips this — even
	// when startRound is still 0 (crash inside round 0), the base
	// generation is already on disk and re-writing it would be refused.
	if s.store != nil && !s.recovered {
		if err := s.store.WriteSnapshot(0, kindServerSnap, encodeServerState(s.snapshotState())); err != nil {
			return nil, err
		}
	}

	engine := &roundEngine{
		clients:    s.cfg.peers(),
		rounds:     s.cfg.Rounds,
		deadline:   s.cfg.RoundDeadline,
		minClients: s.cfg.MinClients,
		validator:  s.validator,
		events:     s.events,
		sink:       s,
		// On the root tier the peers are relays and each event carries one
		// exact pre-aggregated partial sum; partialTier switches the engine
		// to the streaming merge. On a relay the installed reducer replaces
		// the local reduction with the upstream exchange.
		partialTier: s.cfg.root(),
		reducer:     s.reducer,
		streaming:   s.streaming,
		// Config-driven, not negotiation-driven: a q16-capable server
		// quantizes commits whether or not any client negotiated q16, so
		// the committed trajectory never depends on who happens to be
		// connected (or on recovery timing).
		quantizeCommit: s.cfg.Codec == wire.CodecSparseQ16,
		reduction:      s.cfg.Reduction,
		trimFrac:       s.cfg.TrimFraction,
		metrics:        newEngineMetrics(s.cfg.Metrics),
	}
	s.mu.Lock()
	history := append([]GlobalMsg(nil), s.history...)
	s.mu.Unlock()
	global, err := engine.run(ctx, s.startRound, s.cfg.Init, history)
	if err != nil {
		return nil, err
	}
	// The engine's commits only enqueue frames; make sure the final
	// aggregates actually left the building before declaring the run done.
	if err := s.flush(ctx); err != nil {
		return nil, err
	}
	return global, nil
}

// markRound implements roundSink: it records the round being collected
// (the resume path reads it) and announces it on every live connection so
// fault-injecting wrappers (package chaos) can fire scripted faults.
func (s *Server) markRound(round int) {
	s.mu.Lock()
	s.round = round
	sessions := append([]*session(nil), s.sessions...)
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.round.Set(float64(round))
	}
	s.log.Debug("collecting round", "round", round)
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			markRound(sess.conn, round)
		}
		sess.mu.Unlock()
	}
}

// logUpdate implements roundSink: an admitted update reaches the WAL
// before it counts toward the round. A sparse update is logged in the
// frame that crossed the wire — smaller, and lossless to replay since the
// dense form the engine aggregated was derived from it.
func (s *Server) logUpdate(id int, u *UpdateMsg, sp *SparseUpdateMsg) error {
	if s.store == nil {
		return nil
	}
	if sp != nil {
		return s.store.Append(kindWALSparseUpdate, encodeWALSparseUpdate(id, sp))
	}
	return s.store.Append(kindWALUpdate, encodeWALUpdate(id, u))
}

// logPartial implements roundSink: an admitted relay partial reaches the
// WAL before it counts toward the round, exactly as a client update does
// on the flat tier.
func (s *Server) logPartial(id int, p *PartialUpdateMsg) error {
	if s.store == nil {
		return nil
	}
	return s.store.Append(kindWALPartial, encodeWALPartial(id, p))
}

// rejectUpdate implements roundSink (fault-tolerant accounting).
func (s *Server) rejectUpdate(id, round int, err error) {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
	s.metrics.recordRejection(err)
	if s.metrics != nil && s.validator != nil {
		// The validator is owned by the round loop, which is the only
		// caller here, so the read is race-free.
		s.metrics.quarantined.Set(float64(s.validator.QuarantinedCount()))
	}
	s.log.Warn("update rejected", "client", id, "round", round, "err", err)
}

// strikeClient implements roundSink: the post-round norm review charged a
// strike against an already-aggregated update. No rejection is counted —
// the update did fold into the round — but the quarantine gauge may move.
func (s *Server) strikeClient(id, round int, err error) {
	if s.metrics != nil && s.validator != nil {
		s.metrics.quarantined.Set(float64(s.validator.QuarantinedCount()))
	}
	s.log.Warn("post-round review strike", "client", id, "round", round, "err", err)
}

// commitRound implements roundSink. Commit before broadcast: once any
// client observes round R, a restarted server must still know it, or
// resume would refuse the client for claiming rounds the server never
// produced. The aggregate is encoded into a single frame shared by every
// session's outbound queue, so serialization cost is O(1) in client count
// and delivery never blocks the round loop.
func (s *Server) commitRound(g *GlobalMsg, meta roundMeta, partial bool) error {
	if s.store != nil {
		if err := s.store.Append(kindWALGlobal, encodeWALGlobal(g)); err != nil {
			return err
		}
	}
	rf := newRoundFrames(g, meta, len(s.cfg.Init))
	s.mu.Lock()
	if s.shadow != nil {
		// Inside the commit's critical section, so a concurrent resume's
		// capture always matches the committed history exactly.
		s.shadow.observe(g)
	}
	if len(g.Payload) == len(s.cfg.Init) {
		if s.lastDense == nil {
			s.lastDense = make([]float64, len(s.cfg.Init))
		}
		copy(s.lastDense, g.Payload)
		s.lastDenseRound = g.Round
	}
	s.history = append(s.history, *g)
	s.frames = append(s.frames, rf)
	s.evictLocked()
	if partial {
		s.partialRounds++
	}
	sessions := append([]*session(nil), s.sessions...)
	frames := s.frames
	base := s.histBase
	committed := base + len(s.history)
	retained := len(s.history)
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.roundsTotal.Inc()
		s.metrics.committedRounds.Set(float64(committed))
		s.metrics.historyLen.Set(float64(retained))
		if partial {
			s.metrics.partialRounds.Inc()
		}
	}
	s.log.Info("round committed",
		"round", g.Round, "participants", g.Participants, "partial", partial)
	if s.store != nil && (g.Round+1)%s.cfg.SnapshotEvery == 0 {
		if err := s.store.WriteSnapshot(g.Round+1, kindServerSnap, encodeServerState(s.snapshotState())); err != nil {
			return err
		}
	}
	for _, sess := range sessions {
		s.enqueueGlobals(sess, g.Round, frames, base)
	}
	return nil
}

// commitJump implements roundSink: a relay adopting the root's state
// after its own upstream catch-up commits a round discontinuity. The
// snapshot staged by the exchange replaces the retained history outright
// — rounds between the relay's last commit and the jump never existed
// on this tier — and every attached downstream session receives the
// snapshot frame itself, which clients and nested relays apply through
// the same catch-up machinery. Commit-before-broadcast still holds: the
// jumped state reaches the checkpoint store before any session can
// observe it.
func (s *Server) commitJump(g *GlobalMsg) error {
	snap := s.takeJump()
	if snap == nil || snap.Round != g.Round {
		return fmt.Errorf("transport: commitJump without a staged snapshot for round %d", g.Round)
	}
	frame := wire.Encode(snap)
	s.mu.Lock()
	if s.shadow != nil {
		if len(snap.Manager) > 0 {
			if err := s.shadow.restore(snap.Round, snap.Payload, snap.Manager); err != nil {
				s.shadow.broken = true
			}
		} else {
			s.shadow.broken = true
		}
	}
	if s.lastDense == nil {
		s.lastDense = make([]float64, len(s.cfg.Init))
	}
	copy(s.lastDense, g.Payload)
	s.lastDenseRound = g.Round
	s.histBase = g.Round
	s.history = []GlobalMsg{*g}
	s.frames = []*roundFrames{newRoundFrames(g, roundMeta{maskGen: -1}, len(s.cfg.Init))}
	s.round = g.Round + 1
	sessions := append([]*session(nil), s.sessions...)
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.committedRounds.Set(float64(g.Round + 1))
		s.metrics.historyLen.Set(1)
	}
	s.log.Info("history jumped to upstream snapshot", "round", g.Round)
	if s.store != nil {
		if err := s.store.WriteSnapshot(g.Round+1, kindServerSnap, encodeServerState(s.snapshotState())); err != nil {
			return err
		}
	}
	for _, sess := range sessions {
		s.enqueueJump(sess, snap.Round, frame)
	}
	return nil
}

// enqueueJump queues the snapshot frame on one session's writer and
// advances its cursor past the jumped round.
func (s *Server) enqueueJump(sess *session, round int, frame []byte) {
	sess.mu.Lock()
	if sess.conn == nil || sess.sent > round {
		sess.mu.Unlock()
		return
	}
	gen := sess.gen
	if len(sess.queue) >= maxQueuedFrames {
		err := fmt.Errorf("client %d (%s) stopped draining: outbound queue full at %d frames",
			sess.id, sess.name, maxQueuedFrames)
		if sess.sendErr == nil {
			sess.sendErr = err
		}
		sess.cond.Broadcast()
		sess.mu.Unlock()
		s.detach(sess, gen)
		s.post(event{id: sess.id, name: sess.name, err: err})
		return
	}
	sess.queue = append(sess.queue, frame)
	sess.sent = round + 1
	if s.metrics != nil {
		s.metrics.queueFrames.Add(1)
	}
	sess.cond.Broadcast()
	sess.mu.Unlock()
}

// enqueueGlobals queues every not-yet-sent aggregate frame (up to round)
// on a session's writer, keeping per-connection GlobalMsg delivery
// strictly sequential. frames is an immutable suffix snapshot of s.frames
// covering rounds base…round; each entry serves the frame variant of the
// session's negotiated codec. A queue overflow means the client stopped
// draining: the session is detached (it catches up via resume in
// fault-tolerant mode; in strict mode the posted failure aborts the run).
func (s *Server) enqueueGlobals(sess *session, round int, frames []*roundFrames, base int) {
	sess.mu.Lock()
	if sess.conn == nil {
		// Disconnected: a later resume replays the history instead.
		sess.mu.Unlock()
		return
	}
	gen := sess.gen
	codec := sess.codec
	for r := sess.sent; r <= round; r++ {
		if len(sess.queue) >= maxQueuedFrames || r < base {
			// Overflow — or (r < base, unreachable while attached since
			// eviction never outpaces a live cursor) the retained window no
			// longer covers this connection's next round.
			err := fmt.Errorf("client %d (%s) stopped draining: outbound queue full at %d frames",
				sess.id, sess.name, maxQueuedFrames)
			if sess.sendErr == nil {
				sess.sendErr = err
			}
			sess.cond.Broadcast()
			sess.mu.Unlock()
			s.detach(sess, gen)
			s.post(event{id: sess.id, name: sess.name, err: err})
			return
		}
		frame := frames[r-base].frame(codec)
		sess.queue = append(sess.queue, frame)
		sess.sent = r + 1
		if s.metrics != nil {
			s.metrics.queueFrames.Add(1)
			if wire.FrameKind(frame) == wire.KindSparseGlobal {
				// What this broadcast would have cost on a dense session of
				// the same round. Lossless sparse frames usually cost a few
				// metadata bytes MORE (the scalars are identical — dense
				// payloads are already mask-compacted); the quantized codec
				// is where the wire actually shrinks.
				if saved := len(frames[r-base].frame(wire.CodecDense)) - len(frame); saved > 0 {
					s.metrics.sparseSavedBytes.Add(int64(saved))
				}
			}
		}
	}
	sess.cond.Broadcast()
	sess.mu.Unlock()
}

// writer drains one connection's outbound queue, writing each frame with
// the I/O deadline. It exits when the connection is replaced (generation
// bump), detached, or fails. Frames are shared, never mutated.
func (s *Server) writer(sess *session, gen int) {
	for {
		sess.mu.Lock()
		for sess.gen == gen && sess.conn != nil && len(sess.queue) == 0 {
			sess.cond.Wait()
		}
		if sess.gen != gen || sess.conn == nil {
			sess.mu.Unlock()
			return
		}
		frame := sess.queue[0]
		sess.queue = sess.queue[1:]
		sess.inflight = true
		cc := sess.conn
		sess.mu.Unlock()
		if s.metrics != nil {
			s.metrics.queueFrames.Add(-1)
		}

		err := writeFrame(cc, s.cfg.IOTimeout, frame, s.wireM, wire.FrameKind(frame))

		sess.mu.Lock()
		sess.inflight = false
		if err != nil && sess.gen == gen && sess.sendErr == nil {
			sess.sendErr = err
		}
		sess.cond.Broadcast()
		sess.mu.Unlock()
		if err != nil {
			s.detach(sess, gen)
			s.post(event{id: sess.id, name: sess.name, err: err})
			return
		}
	}
}

// flush waits until every session's outbound queue has drained or its
// connection has died. Each pending write is bounded by the I/O deadline
// (and by the cancellation watcher closing the sockets), so the wait
// terminates. In strict mode an undelivered aggregate fails the run — the
// old synchronous broadcast aborted on the same condition, just earlier.
func (s *Server) flush(ctx context.Context) error {
	s.mu.Lock()
	sessions := append([]*session(nil), s.sessions...)
	rounds := s.histBase + len(s.history)
	s.mu.Unlock()
	// In fault-tolerant mode, a session severed during the final
	// broadcast gets a bounded window to resume: once Run returns the
	// listener closes, so a straggler cut at the last round's mark could
	// otherwise never fetch the final aggregates (its reconnects would be
	// refused). Resume replays the missed rounds in the welcome, so
	// "caught up" is sent == rounds with an empty, error-free queue. The
	// window is shared across sessions and bounded by the round deadline.
	var resumeDeadline time.Time
	if s.faultTolerant() {
		resumeDeadline = time.Now().Add(s.cfg.RoundDeadline)
	}
	var firstErr error
	for _, sess := range sessions {
		var err error
		var undelivered int
		for {
			sess.mu.Lock()
			// An in-flight frame is waited out even after the connection is
			// gone: a peer that reads the final aggregate and closes
			// immediately can EOF-detach the session (conn = nil) in the gap
			// between its write succeeding and the writer clearing inflight,
			// and judging that window would miscount a delivered frame as
			// undelivered. The writer always clears inflight — the write
			// carries the I/O deadline — so the wait terminates; a genuine
			// write failure surfaces through sendErr instead.
			for sess.sendErr == nil && (sess.inflight || (sess.conn != nil && len(sess.queue) > 0)) {
				sess.cond.Wait()
			}
			err = sess.sendErr
			undelivered = len(sess.queue) + boolToInt(sess.inflight)
			caughtUp := err == nil && undelivered == 0 && sess.sent >= rounds
			sess.mu.Unlock()
			if !s.faultTolerant() || caughtUp || ctx.Err() != nil ||
				time.Now().After(resumeDeadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if s.faultTolerant() {
			continue
		}
		if err == nil && undelivered > 0 {
			err = fmt.Errorf("client disconnected with %d aggregate(s) undelivered", undelivered)
		}
		if err != nil && firstErr == nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			firstErr = fmt.Errorf("transport: send to client %d: %w", sess.id, err)
		}
	}
	return firstErr
}

// boolToInt counts a pending in-flight frame.
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// acceptLoop serves joins — registrations and session resumes — for the
// whole run.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutdown or cancellation
		}
		cc := &countingConn{Conn: conn}
		s.track(cc)
		m, err := readMsg(cc, s.cfg.IOTimeout, joinPayloadLimit, s.wireM)
		var join *JoinMsg
		if err == nil {
			switch j := m.(type) {
			case *JoinMsg:
				if s.cfg.root() {
					err = protocolErrorf("expected a relay join on the root tier, got %s", m.WireKind())
				} else {
					join = j
				}
			case *RelayJoinMsg:
				if !s.cfg.root() {
					err = protocolErrorf("relay join on a flat coordinator")
				} else {
					// A relay session is a join with no codec capabilities:
					// the upstream leg is always dense (the relay folds
					// whatever its clients negotiated into exact fixed-point
					// columns), so the shared registration, resume, and
					// replay machinery applies unchanged.
					join = &JoinMsg{Name: j.Name, SessionKey: j.SessionKey, HaveRound: j.HaveRound}
					s.log.Info("relay joining", "relay", j.Name, "clients", j.Clients)
				}
			default:
				err = protocolErrorf("expected a join frame, got %s", m.WireKind())
			}
		}
		if err != nil {
			s.mu.Lock()
			reg := s.regDone
			s.mu.Unlock()
			s.absorb(cc)
			if !reg && !s.faultTolerant() {
				// Strict registration keeps the hard barrier semantics: a
				// client that fails to join aborts the run.
				select {
				case s.regErr <- fmt.Errorf("transport: registration: %w", err):
				default:
				}
			}
			continue
		}
		s.handleJoin(cc, join)
	}
}

// handleJoin registers a fresh session or resumes an existing one.
func (s *Server) handleJoin(cc *countingConn, join *JoinMsg) {
	s.mu.Lock()
	if sess, ok := s.byKey[join.SessionKey]; ok && join.SessionKey != "" {
		s.resume(sess, cc, join)
		return // resume unlocks
	}
	if s.regDone || len(s.sessions) >= s.cfg.peers() {
		// Unknown sessions cannot join a running cluster.
		s.mu.Unlock()
		s.absorb(cc)
		return
	}
	sess := newSession(len(s.sessions), join.SessionKey, join.Name)
	sess.conn = cc
	sess.gen = 1
	sess.codec = wire.NegotiateCodec(s.cfg.Codec, join.Caps)
	s.sessions = append(s.sessions, sess)
	if sess.key != "" {
		s.byKey[sess.key] = sess
	}
	if len(s.sessions) == s.cfg.peers() {
		s.regDone = true
		close(s.regReady)
	}
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.codecSessions[sess.codec].Add(1)
	}
	s.log.Info("session negotiated", "client", sess.id, "name", sess.name,
		"codec", sess.codec.String())

	w := WelcomeMsg{
		ClientID:   sess.id,
		NumClients: s.cfg.peers(),
		Rounds:     s.cfg.Rounds,
		Dim:        len(s.cfg.Init),
		Init:       s.cfg.Init,
		Codec:      sess.codec,
	}
	// The welcome is written directly: the session's writer goroutine only
	// starts afterwards, so queued aggregate frames cannot overtake it.
	if err := s.sendWelcome(sess, 1, &w); err != nil {
		s.detach(sess, 1)
		if !s.faultTolerant() {
			// Run may be at the registration barrier or already in the
			// round loop; feed whichever stage is listening.
			werr := fmt.Errorf("transport: welcome client %d: %w", sess.id, err)
			select {
			case s.regErr <- werr:
			default:
			}
			s.post(event{id: sess.id, name: sess.name, err: err})
		}
		return
	}
	go s.writer(sess, 1)
	go s.reader(sess, 1, cc)
}

// resume re-attaches a reconnecting client to its session. When the
// retained history still covers its round, it receives the aggregates it
// missed (HaveRound+1 … latest) for replay; when eviction dropped them,
// the Welcome instead carries CatchUp and the connection enters the
// wire-v4 catch-up conversation (sketch reconciliation or snapshot).
// Either way this connection's sequential GlobalMsg stream continues
// after the latest committed round. Called with s.mu held; unlocks it.
// Holding s.mu across the session swap keeps the missed list (or the
// catch-up capture) and the writer cursor (sent) consistent: no round
// can commit between computing one and setting the other.
func (s *Server) resume(sess *session, cc *countingConn, join *JoinMsg) {
	done := s.histBase + len(s.history) // rounds aggregated so far
	round := s.round
	if join.HaveRound < -1 || join.HaveRound >= done {
		s.mu.Unlock()
		s.absorb(cc) // claims rounds the server never produced
		return
	}
	var missed []GlobalMsg
	var cap *catchupCapture
	if join.HaveRound+1 >= s.histBase {
		missed = s.history[join.HaveRound+1-s.histBase : done-s.histBase]
	} else if cap = s.captureLocked(); cap == nil {
		// Evicted past the client's round and no consistent capture to
		// serve (broken shadow, no dense commit): refuse the resume.
		s.mu.Unlock()
		s.log.Warn("catch-up refused: no capture", "client", sess.id, "name", sess.name,
			"have_round", join.HaveRound)
		s.absorb(cc)
		return
	}
	// Renegotiate from the fresh Caps: the session's codec tracks what the
	// currently attached client actually speaks. The missed replay above
	// stays dense regardless, so resume reconstruction is codec-independent.
	codec := wire.NegotiateCodec(s.cfg.Codec, join.Caps)
	w := WelcomeMsg{
		ClientID:   sess.id,
		NumClients: s.cfg.peers(),
		Rounds:     s.cfg.Rounds,
		Dim:        len(s.cfg.Init),
		Init:       s.cfg.Init,
		Round:      round,
		Resumed:    true,
		Missed:     missed,
		Codec:      codec,
	}
	if cap != nil {
		w.CatchUp = true
		w.MaskGen = cap.gen
	}

	sess.mu.Lock()
	old := sess.conn
	sess.gen++
	gen := sess.gen
	sess.conn = cc
	sess.codec = codec
	sess.sent = done
	dropped := len(sess.queue)
	sess.queue = nil
	sess.inflight = false
	sess.sendErr = nil
	sess.cond.Broadcast() // release the old connection's writer
	sess.mu.Unlock()
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.resumes.Inc()
		s.metrics.replayedGlobals.Add(int64(len(missed)))
		s.metrics.queueFrames.Add(float64(-dropped))
		s.metrics.codecSessions[codec].Add(1)
		if cap == nil {
			s.metrics.resumeReplay.Inc()
		}
	}
	s.log.Info("session resumed", "client", sess.id, "name", sess.name,
		"have_round", join.HaveRound, "replayed", len(missed), "catch_up", cap != nil)
	if old != nil {
		s.absorb(old)
	}

	if err := s.sendWelcome(sess, gen, &w); err != nil {
		s.detach(sess, gen)
		return
	}
	if cap != nil {
		// The writer starts only after the conversation: queued aggregate
		// frames must not interleave with catch-up frames.
		go s.catchupSession(sess, gen, cc, cap)
		return
	}
	go s.writer(sess, gen)
	go s.reader(sess, gen, cc)
}

// sendWelcome writes the welcome frame on a session's current connection
// if it still is the given generation. The write happens outside sess.mu
// so a slow handshake never blocks the round loop's enqueues.
func (s *Server) sendWelcome(sess *session, gen int, w *WelcomeMsg) error {
	sess.mu.Lock()
	cc := sess.conn
	if sess.gen != gen || cc == nil {
		sess.mu.Unlock()
		return fmt.Errorf("connection replaced")
	}
	sess.mu.Unlock()
	return writeMsg(cc, s.cfg.IOTimeout, w, s.wireM)
}

// reader decodes one connection's updates into the event stream until the
// connection fails; then it detaches the session (a resumed connection has
// a newer generation and is left alone).
func (s *Server) reader(sess *session, gen int, cc *countingConn) {
	if s.cfg.root() {
		s.relayReader(sess, gen, cc)
		return
	}
	limit := modelPayloadLimit(len(s.cfg.Init))
	for {
		m, err := readMsg(cc, s.cfg.IOTimeout, limit, s.wireM)
		if err == nil {
			switch u := m.(type) {
			case *UpdateMsg:
				s.post(event{id: sess.id, name: sess.name, upd: u})
				continue
			case *SparseUpdateMsg:
				if err = s.checkSparseUpdate(sess, u); err == nil {
					// The engine aggregates the dense-expanded form; the
					// sparse original rides along for the WAL and the
					// round's mask-generation cross-check.
					dense := &UpdateMsg{
						Round:    u.Round,
						Weight:   u.Weight,
						MaskHash: u.MaskHash,
						Payload:  u.Floats(nil),
					}
					s.post(event{id: sess.id, name: sess.name, upd: dense, sp: u})
					continue
				}
			default:
				err = protocolErrorf("expected an update frame, got %s", m.WireKind())
			}
		}
		s.detach(sess, gen)
		s.post(event{id: sess.id, name: sess.name, err: err})
		return
	}
}

// relayReader is reader's root-tier counterpart: it decodes one relay
// connection's partial sums into the event stream. The payload limit
// admits the 16-bytes-per-coordinate exact accumulator; a declared column
// count that disagrees with the model is refused here, before the frame
// reaches the engine.
func (s *Server) relayReader(sess *session, gen int, cc *countingConn) {
	limit := partialPayloadLimit(len(s.cfg.Init))
	for {
		m, err := readMsg(cc, s.cfg.IOTimeout, limit, s.wireM)
		if err == nil {
			if p, ok := m.(*PartialUpdateMsg); ok {
				if len(p.Cols) == 2*len(s.cfg.Init) {
					s.post(event{id: sess.id, name: sess.name, part: p})
					continue
				}
				err = protocolErrorf("relay %d partial carries %d accumulator words, model needs %d",
					sess.id, len(p.Cols), 2*len(s.cfg.Init))
			} else {
				err = protocolErrorf("expected a partial-update frame, got %s", m.WireKind())
			}
		}
		s.detach(sess, gen)
		s.post(event{id: sess.id, name: sess.name, err: err})
		return
	}
}

// checkSparseUpdate validates a sparse update against the session's
// negotiated codec: the kind is only legal on sparse sessions, the scalar
// encoding must be the negotiated one, and the declared dense dimension
// must be the run's.
func (s *Server) checkSparseUpdate(sess *session, u *SparseUpdateMsg) error {
	sess.mu.Lock()
	codec := sess.codec
	sess.mu.Unlock()
	if codec <= wire.CodecDense {
		return protocolErrorf("client %d sent a sparse update on a %s session", sess.id, codec)
	}
	if u.Enc != codec.Enc() {
		return protocolErrorf("client %d sparse update encoding %s, session negotiated %s",
			sess.id, u.Enc, codec.Enc())
	}
	if u.Dim != len(s.cfg.Init) {
		return protocolErrorf("client %d sparse update dimension %d, model has %d",
			sess.id, u.Dim, len(s.cfg.Init))
	}
	return nil
}
