package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"apf/internal/checkpoint"
	"apf/internal/fl"
)

// ServerConfig parameterizes an aggregation server.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Listener, when non-nil, is used instead of binding Addr — the hook
	// for fault-injecting wrappers (package chaos).
	Listener net.Listener
	// NumClients is the cluster size; the server waits for exactly this
	// many registrations before round 0.
	NumClients int
	// Rounds is the number of aggregation rounds to run.
	Rounds int
	// Init is the initial global model distributed to every client.
	Init []float64
	// IOTimeout bounds each message exchange (default 30s). It should
	// exceed RoundDeadline plus the slowest client's training time, since
	// a connection idle past it is treated as dead.
	IOTimeout time.Duration
	// RoundDeadline enables fault-tolerant operation: after this much time
	// in a round, aggregation proceeds with the K ≤ N updates received
	// (weighted partial FedAvg), disconnected clients may resume their
	// session later, and client failures are survived rather than fatal.
	// 0 keeps the strict barrier: every round waits for all clients and
	// any failure aborts the run.
	RoundDeadline time.Duration
	// MinClients is the minimum number of updates required before a round
	// deadline may fire the aggregation (default 1). The deadline never
	// aggregates fewer; the round keeps waiting instead.
	MinClients int
	// CheckpointDir makes the coordinator durable: the server persists a
	// snapshot plus write-ahead log under this directory and, when it
	// finds a consistent checkpoint there at startup, resumes the run
	// from it bit-exactly (committed rounds are replayed from the WAL;
	// the round left open by a crash is discarded and re-collected from
	// the clients' idempotent re-sends). Empty disables durability.
	// Recovery is only useful with RoundDeadline > 0, since a restarted
	// strict-barrier server aborts on its first disconnected client.
	CheckpointDir string
	// SnapshotEvery rotates the snapshot every K committed rounds
	// (default 5); between snapshots only the WAL grows.
	SnapshotEvery int
	// Validator, when non-nil, enables inbound update sanitization:
	// non-finite values, impossible dimensions, and median-gated norm
	// outliers are rejected with typed errors, repeat offenders are
	// quarantined. Clients and Dim are filled from the server config.
	Validator *ValidatorConfig
}

// Server is the central FL aggregation endpoint.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	// done is closed when Run returns; it unblocks reader goroutines.
	done chan struct{}
	// events carries decoded updates and connection failures to Run.
	events chan event
	// regErr carries a fatal registration failure (strict mode).
	regErr chan error
	// regReady is closed once all NumClients sessions registered.
	regReady chan struct{}

	// store persists snapshots and the WAL when durability is enabled;
	// startRound is the first round still to run after recovery (0 on a
	// fresh start). recovered marks that openStore restored an existing
	// checkpoint — even one with startRound still 0 (a crash inside round
	// 0), in which case the base snapshot on disk must not be re-written.
	// validator is nil unless sanitization is configured.
	store      *checkpoint.Store
	startRound int
	recovered  bool
	validator  *Validator

	mu            sync.Mutex
	round         int         // round currently being collected
	history       []GlobalMsg // aggregates of completed rounds, by round
	sessions      []*session  // by client id, registration order
	byKey         map[string]*session
	conns         map[*countingConn]struct{} // live, un-absorbed connections
	regDone       bool
	bytesRead     int64
	bytesSent     int64
	partialRounds int
	rejected      int // updates refused by validation/aggregation guards
}

// session is the server-side state of one client, surviving reconnects.
type session struct {
	id   int
	key  string
	name string

	mu   sync.Mutex
	conn *countingConn // nil while disconnected
	enc  *gob.Encoder
	gen  int // bumps per attached connection; stale readers detach no-one
	sent int // next round whose GlobalMsg this connection needs
}

// event is a reader/accept notification to the round loop.
type event struct {
	sess *session
	upd  *UpdateMsg // nil for a connection failure
	err  error
}

// NewServer binds the listen socket. Call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 || len(cfg.Init) == 0 {
		return nil, fmt.Errorf("transport: invalid server config clients=%d rounds=%d dim=%d",
			cfg.NumClients, cfg.Rounds, len(cfg.Init))
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.MinClients <= 0 {
		cfg.MinClients = 1
	}
	if cfg.MinClients > cfg.NumClients {
		cfg.MinClients = cfg.NumClients
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 5
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
		}
	}
	if cfg.Validator != nil && cfg.Validator.Clients != 0 && cfg.Validator.Clients != cfg.NumClients {
		closeQuietly(ln)
		return nil, fmt.Errorf("transport: validator clients %d conflicts with cluster size %d",
			cfg.Validator.Clients, cfg.NumClients)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		done:     make(chan struct{}),
		events:   make(chan event, cfg.NumClients*4),
		regErr:   make(chan error, 1),
		regReady: make(chan struct{}),
		byKey:    make(map[string]*session),
		conns:    make(map[*countingConn]struct{}),
	}
	if cfg.Validator != nil {
		vcfg := *cfg.Validator
		vcfg.Clients = cfg.NumClients
		vcfg.Dim = len(cfg.Init)
		s.validator = NewValidator(vcfg)
	}
	if cfg.CheckpointDir != "" {
		if err := s.openStore(); err != nil {
			closeQuietly(ln)
			return nil, err
		}
	}
	return s, nil
}

// openStore attaches the checkpoint store and, when it holds a
// consistent checkpoint, restores the run: session table, aggregate
// history, and accounting come back exactly as committed, the round
// counter resumes after the last committed round, and the registration
// barrier is considered already passed (clients re-attach through the
// session-resume path).
func (s *Server) openStore() error {
	store, err := checkpoint.Open(s.cfg.CheckpointDir)
	if err != nil {
		return err
	}
	st, err := recoverState(store)
	if err != nil {
		store.Close()
		return fmt.Errorf("transport: recover checkpoint: %w", err)
	}
	s.store = store
	if st == nil {
		return nil // fresh start: the base snapshot is written at regDone
	}
	if err := verifyRecovered(st, s.cfg); err != nil {
		store.Close()
		return err
	}
	if st.Validator != nil && s.validator != nil {
		if err := s.validator.restoreState(st.Validator); err != nil {
			store.Close()
			return err
		}
	}
	for id := range st.Keys {
		sess := &session{id: id, key: st.Keys[id], name: st.Names[id]}
		s.sessions = append(s.sessions, sess)
		if sess.key != "" {
			s.byKey[sess.key] = sess
		}
	}
	s.history = st.History
	s.partialRounds = st.PartialRounds
	s.startRound = len(st.History)
	s.recovered = true
	s.round = s.startRound
	s.regDone = true
	close(s.regReady)
	return nil
}

// snapshotState captures the server's durable state under s.mu.
func (s *Server) snapshotState() *serverState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &serverState{
		NumClients:    s.cfg.NumClients,
		Rounds:        s.cfg.Rounds,
		Init:          s.cfg.Init,
		History:       append([]GlobalMsg(nil), s.history...),
		PartialRounds: s.partialRounds,
	}
	for _, sess := range s.sessions {
		st.Keys = append(st.Keys, sess.key)
		st.Names = append(st.Names, sess.name)
	}
	if s.validator != nil {
		st.Validator = s.validator.snapshotState()
	}
	return st
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// faultTolerant reports whether partial aggregation and resume are enabled.
func (s *Server) faultTolerant() bool { return s.cfg.RoundDeadline > 0 }

// WireBytes returns the total bytes received from and sent to clients.
func (s *Server) WireBytes() (read, sent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	read, sent = s.bytesRead, s.bytesSent
	for cc := range s.conns {
		r, w := cc.Counts()
		read += r
		sent += w
	}
	return read, sent
}

// PartialRounds returns how many rounds aggregated fewer than NumClients
// updates (always 0 in strict mode).
func (s *Server) PartialRounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partialRounds
}

// RejectedUpdates returns how many updates the sanitization and
// aggregation guards refused.
func (s *Server) RejectedUpdates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// Validator exposes the sanitization state (nil when disabled). Read it
// only after Run returns; the round loop owns it while running.
func (s *Server) Validator() *Validator { return s.validator }

// StartRound returns the first round the server will (or did) collect —
// 0 on a fresh start, the round after the last committed one when the
// server resumed from a checkpoint.
func (s *Server) StartRound() int { return s.startRound }

// Recovered reports whether the server restored an existing checkpoint.
// Unlike StartRound() > 0 it also covers a crash inside round 0, where
// the recovered history is still empty.
func (s *Server) Recovered() bool { return s.recovered }

// track registers a live connection for byte accounting.
func (s *Server) track(cc *countingConn) {
	s.mu.Lock()
	s.conns[cc] = struct{}{}
	s.mu.Unlock()
}

// absorb folds a connection's byte counts into the server totals exactly
// once and closes it.
func (s *Server) absorb(cc *countingConn) {
	s.mu.Lock()
	if _, live := s.conns[cc]; live {
		delete(s.conns, cc)
		r, w := cc.Counts()
		s.bytesRead += r
		s.bytesSent += w
	}
	s.mu.Unlock()
	closeQuietly(cc)
}

// detach drops a session's connection if it still is the given generation.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen != gen || sess.conn == nil {
		sess.mu.Unlock()
		return
	}
	cc := sess.conn
	sess.conn, sess.enc = nil, nil
	sess.mu.Unlock()
	s.absorb(cc)
}

// post delivers an event to the round loop unless Run already returned.
func (s *Server) post(ev event) {
	select {
	case s.events <- ev:
	case <-s.done:
	}
}

// Run accepts clients, drives all rounds, and returns the final global
// model. It honours ctx cancellation by tearing down the listener and all
// connections.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer close(s.done)
	defer func() {
		if s.store != nil {
			_ = s.store.Close()
		}
		closeQuietly(s.ln)
		s.mu.Lock()
		live := make([]*countingConn, 0, len(s.conns))
		for cc := range s.conns {
			live = append(live, cc)
		}
		s.mu.Unlock()
		for _, cc := range live {
			s.absorb(cc)
		}
	}()

	// Tear everything down if the context is cancelled.
	go func() {
		select {
		case <-ctx.Done():
			closeQuietly(s.ln)
			s.mu.Lock()
			for cc := range s.conns {
				closeQuietly(cc)
			}
			s.mu.Unlock()
		case <-s.done:
		}
	}()

	go s.acceptLoop()

	// Registration barrier: all NumClients sessions must exist before
	// round 0 (reconnects of registered sessions are fine meanwhile).
	select {
	case <-s.regReady:
	case err := <-s.regErr:
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	// The base snapshot makes the completed registration durable: every
	// later recovery restores the session table from it, keeping client
	// ids stable across restarts. A recovered server skips this — even
	// when startRound is still 0 (crash inside round 0), the base
	// generation is already on disk and re-writing it would be refused.
	if s.store != nil && !s.recovered {
		if err := s.store.WriteSnapshot(0, kindServerSnap, encodeServerState(s.snapshotState())); err != nil {
			return nil, err
		}
	}

	agg := fl.NewAggregator(0)
	defer agg.Close()

	n := s.cfg.NumClients
	received := make([]*UpdateMsg, n)
	global := append([]float64(nil), s.cfg.Init...)
	// After recovery the dense global resumes from the last full-length
	// aggregate (compact aggregates leave the server's dense copy
	// informational, exactly as in an uninterrupted run).
	for i := len(s.history) - 1; i >= 0; i-- {
		if len(s.history[i].Payload) == len(global) {
			global = append(global[:0], s.history[i].Payload...)
			break
		}
	}

	for round := s.startRound; round < s.cfg.Rounds; round++ {
		s.mu.Lock()
		s.round = round
		s.mu.Unlock()
		s.markRound(round)

		for i := range received {
			received[i] = nil
		}
		agg.Open(round, n)
		count, err := s.collect(ctx, round, received, agg)
		if err != nil {
			agg.Discard()
			return nil, err
		}
		if err := checkUpdates(round, received); err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}

		out := make([]float64, agg.Dim())
		if _, ok := agg.Reduce(out); !ok {
			return nil, protocolErrorf("round %d: all contributions withheld (total weight 0)", round)
		}

		msg := GlobalMsg{Round: round, Payload: out, Participants: count}
		// Commit before broadcast: once any client observes round R, a
		// restarted server must still know it, or resume would refuse the
		// client for claiming rounds the server never produced.
		if s.store != nil {
			if err := s.store.Append(kindWALGlobal, encodeWALGlobal(&msg)); err != nil {
				return nil, err
			}
		}
		s.mu.Lock()
		s.history = append(s.history, msg)
		if count < n {
			s.partialRounds++
		}
		s.mu.Unlock()
		if s.store != nil && (round+1)%s.cfg.SnapshotEvery == 0 {
			if err := s.store.WriteSnapshot(round+1, kindServerSnap, encodeServerState(s.snapshotState())); err != nil {
				return nil, err
			}
		}

		if err := s.broadcast(ctx, round); err != nil {
			return nil, err
		}
		// A full-length aggregate is the new dense global; compact
		// (mask-elided) aggregates only update the transmitted positions
		// on the clients, so the server's dense copy is informational.
		if len(out) == len(global) {
			global = out
		}
	}
	return global, nil
}

// collect gathers round updates into received (indexed by client id) and
// the aggregator until every eligible client reported or, in fault-
// tolerant mode, the round deadline passed with at least MinClients
// updates. Quarantined clients are not waited for. Every accepted update
// passes the sanitization hook (when configured) and the aggregator's
// own finiteness guard, and is logged to the WAL before it counts.
// Returns the participant count.
func (s *Server) collect(ctx context.Context, round int, received []*UpdateMsg, agg *fl.Aggregator) (int, error) {
	var deadline <-chan time.Time
	var timer *time.Timer
	if s.faultTolerant() {
		timer = time.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadline = timer.C
	}
	count := 0
	for {
		// Quarantine can trip mid-round, so the target is re-derived each
		// iteration: a poisoned client must not hold the barrier hostage.
		needed := len(received)
		if s.validator != nil {
			needed -= s.validator.QuarantinedCount()
		}
		if needed <= 0 {
			return 0, fmt.Errorf("transport: round %d: every client is quarantined: %w", round, ErrQuarantined)
		}
		if count >= needed {
			return count, nil
		}
		floor := s.cfg.MinClients
		if floor > needed {
			floor = needed
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-deadline:
			deadline = nil
			if count >= floor {
				return count, nil
			}
			// Below the aggregation floor: keep waiting for stragglers
			// or reconnecting clients; ctx bounds the overall run.
		case ev := <-s.events:
			if ev.err != nil {
				if s.faultTolerant() {
					continue // the reader already detached the session
				}
				if ctx.Err() != nil {
					return 0, ctx.Err()
				}
				return 0, fmt.Errorf("transport: round %d recv from client %d (%s): %w",
					round, ev.sess.id, ev.sess.name, ev.err)
			}
			u := ev.upd
			if u.Round < round {
				continue // stale re-send of an already-aggregated round
			}
			if u.Round > round {
				return 0, protocolErrorf("client %d sent round %d during round %d",
					ev.sess.id, u.Round, round)
			}
			if received[ev.sess.id] != nil {
				continue // idempotent duplicate (reconnect re-send)
			}
			if err := s.admit(ev.sess.id, round, u, agg); err != nil {
				if !s.faultTolerant() {
					// The strict barrier cannot complete without this
					// client, so a poisoned update aborts the run.
					return 0, fmt.Errorf("transport: round %d: %w", round, err)
				}
				s.mu.Lock()
				s.rejected++
				s.mu.Unlock()
				continue
			}
			received[ev.sess.id] = u
			count++
			if s.store != nil {
				if err := s.store.Append(kindWALUpdate, encodeWALUpdate(ev.sess.id, u)); err != nil {
					return 0, err
				}
			}
		}
	}
}

// admit runs one update through the sanitization hook and the
// aggregator's independent finiteness guard. The validator (when
// configured) is the first line — typed rejections, strikes, quarantine;
// fl.Aggregator.Add re-checks finiteness regardless, so even with
// sanitization disabled a NaN/Inf contribution cannot fold into the
// shards.
func (s *Server) admit(id, round int, u *UpdateMsg, agg *fl.Aggregator) error {
	var norm float64
	if s.validator != nil {
		var err error
		norm, err = s.validator.Check(id, round, u.Payload, u.Weight)
		if err != nil {
			return err
		}
	}
	if err := agg.Add(id, u.Payload, u.Weight); err != nil {
		if errors.Is(err, fl.ErrLengthMismatch) {
			// Cross-client geometry disagreement is a protocol violation
			// (misaligned compact payloads), not a sanitization matter.
			return protocolErrorf("client %d: %v", id, err)
		}
		if s.validator != nil && errors.Is(err, fl.ErrNonFinite) {
			// Validator enabled but bypassed (e.g. gate raced a decode
			// quirk): still charge the strike so repeat offenders
			// quarantine.
			s.validator.strike(id, err)
		}
		return err
	}
	// The norm enters the median history only now, when every guard has
	// accepted the update; an aggregator rejection above must not let a
	// refused update skew the gate.
	if s.validator != nil {
		s.validator.Commit(norm)
	}
	return nil
}

// broadcast delivers every not-yet-sent aggregate (up to round) to each
// connected session, keeping per-connection GlobalMsg delivery strictly
// sequential. In strict mode a send failure aborts; in fault-tolerant mode
// the session is detached and catches up after resuming.
func (s *Server) broadcast(ctx context.Context, round int) error {
	s.mu.Lock()
	hist := s.history
	sessions := append([]*session(nil), s.sessions...)
	s.mu.Unlock()

	for _, sess := range sessions {
		sess.mu.Lock()
		cc, enc, gen := sess.conn, sess.enc, sess.gen
		var err error
		if cc == nil {
			err = fmt.Errorf("client disconnected")
		} else {
			for r := sess.sent; r <= round; r++ {
				if err = cc.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
					break
				}
				if err = enc.Encode(&hist[r]); err != nil {
					break
				}
				sess.sent = r + 1
			}
		}
		sess.mu.Unlock()
		if err == nil {
			continue
		}
		if !s.faultTolerant() {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("transport: round %d send to client %d: %w", round, sess.id, err)
		}
		if cc != nil {
			s.detach(sess, gen)
		}
	}
	return nil
}

// markRound announces the round on every live connection so fault-injecting
// wrappers (package chaos) can fire scripted faults.
func (s *Server) markRound(round int) {
	s.mu.Lock()
	sessions := append([]*session(nil), s.sessions...)
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			markRound(sess.conn, round)
		}
		sess.mu.Unlock()
	}
}

// acceptLoop serves joins — registrations and session resumes — for the
// whole run.
func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutdown or cancellation
		}
		cc := &countingConn{Conn: conn}
		s.track(cc)
		enc := gob.NewEncoder(cc)
		dec := gob.NewDecoder(cc)
		_ = cc.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout))
		var join JoinMsg
		if err := dec.Decode(&join); err != nil {
			s.mu.Lock()
			reg := s.regDone
			s.mu.Unlock()
			s.absorb(cc)
			if !reg && !s.faultTolerant() {
				// Strict registration keeps the hard barrier semantics: a
				// client that fails to join aborts the run.
				select {
				case s.regErr <- fmt.Errorf("transport: registration: %w", err):
				default:
				}
			}
			continue
		}
		s.handleJoin(cc, enc, dec, &join)
	}
}

// handleJoin registers a fresh session or resumes an existing one.
func (s *Server) handleJoin(cc *countingConn, enc *gob.Encoder, dec *gob.Decoder, join *JoinMsg) {
	s.mu.Lock()
	if sess, ok := s.byKey[join.SessionKey]; ok && join.SessionKey != "" {
		s.resume(sess, cc, enc, dec, join)
		return // resume unlocks
	}
	if s.regDone || len(s.sessions) >= s.cfg.NumClients {
		// Unknown sessions cannot join a running cluster.
		s.mu.Unlock()
		s.absorb(cc)
		return
	}
	sess := &session{
		id:   len(s.sessions),
		key:  join.SessionKey,
		name: join.Name,
		conn: cc,
		enc:  enc,
		gen:  1,
	}
	s.sessions = append(s.sessions, sess)
	if sess.key != "" {
		s.byKey[sess.key] = sess
	}
	if len(s.sessions) == s.cfg.NumClients {
		s.regDone = true
		close(s.regReady)
	}
	s.mu.Unlock()

	w := WelcomeMsg{
		ClientID:   sess.id,
		NumClients: s.cfg.NumClients,
		Rounds:     s.cfg.Rounds,
		Dim:        len(s.cfg.Init),
		Init:       s.cfg.Init,
	}
	if err := s.send(sess, 1, &w); err != nil {
		s.detach(sess, 1)
		if !s.faultTolerant() {
			// Run may be at the registration barrier or already in the
			// round loop; feed whichever stage is listening.
			werr := fmt.Errorf("transport: welcome client %d: %w", sess.id, err)
			select {
			case s.regErr <- werr:
			default:
			}
			s.post(event{sess: sess, err: err})
		}
		return
	}
	go s.reader(sess, 1, cc, dec)
}

// resume re-attaches a reconnecting client to its session: it receives the
// aggregates it missed (HaveRound+1 … latest) for replay, and this
// connection's sequential GlobalMsg stream continues from there. Called
// with s.mu held; unlocks it.
func (s *Server) resume(sess *session, cc *countingConn, enc *gob.Encoder, dec *gob.Decoder, join *JoinMsg) {
	done := len(s.history) // rounds aggregated so far
	round := s.round
	if join.HaveRound < -1 || join.HaveRound >= done {
		s.mu.Unlock()
		s.absorb(cc) // claims rounds the server never produced
		return
	}
	missed := s.history[join.HaveRound+1 : done]
	w := WelcomeMsg{
		ClientID:   sess.id,
		NumClients: s.cfg.NumClients,
		Rounds:     s.cfg.Rounds,
		Dim:        len(s.cfg.Init),
		Init:       s.cfg.Init,
		Round:      round,
		Resumed:    true,
		Missed:     missed,
	}
	s.mu.Unlock()

	sess.mu.Lock()
	old := sess.conn
	sess.gen++
	gen := sess.gen
	sess.conn, sess.enc = cc, enc
	sess.sent = done
	sess.mu.Unlock()
	if old != nil {
		s.absorb(old)
	}

	if err := s.send(sess, gen, &w); err != nil {
		s.detach(sess, gen)
		return
	}
	go s.reader(sess, gen, cc, dec)
}

// send encodes one message on a session's current connection if it still is
// the given generation.
func (s *Server) send(sess *session, gen int, msg any) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.gen != gen || sess.conn == nil {
		return fmt.Errorf("connection replaced")
	}
	if err := sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		return err
	}
	return sess.enc.Encode(msg)
}

// reader decodes one connection's updates into the event stream until the
// connection fails; then it detaches the session (a resumed connection has
// a newer generation and is left alone).
func (s *Server) reader(sess *session, gen int, cc *countingConn, dec *gob.Decoder) {
	for {
		if err := cc.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
			s.detach(sess, gen)
			s.post(event{sess: sess, err: err})
			return
		}
		var u UpdateMsg
		if err := dec.Decode(&u); err != nil {
			s.detach(sess, gen)
			s.post(event{sess: sess, err: err})
			return
		}
		s.post(event{sess: sess, upd: &u})
	}
}
