package transport

import (
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// ServerConfig parameterizes an aggregation server.
type ServerConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// NumClients is the cluster size; the server waits for exactly this
	// many registrations before round 0.
	NumClients int
	// Rounds is the number of aggregation rounds to run.
	Rounds int
	// Init is the initial global model distributed to every client.
	Init []float64
	// IOTimeout bounds each message exchange (default 30s).
	IOTimeout time.Duration
}

// Server is the central FL aggregation endpoint.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu        sync.Mutex
	bytesRead int64
	bytesSent int64
}

// NewServer binds the listen socket. Call Run to serve.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.NumClients <= 0 || cfg.Rounds <= 0 || len(cfg.Init) == 0 {
		return nil, fmt.Errorf("transport: invalid server config clients=%d rounds=%d dim=%d",
			cfg.NumClients, cfg.Rounds, len(cfg.Init))
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
	}
	return &Server{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// WireBytes returns the total bytes received from and sent to clients.
func (s *Server) WireBytes() (read, sent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRead, s.bytesSent
}

// peer is the server-side state of one client connection.
type peer struct {
	conn *countingConn
	enc  *gob.Encoder
	dec  *gob.Decoder
	name string
}

// Run accepts the configured number of clients, drives all rounds, and
// returns the final global model. It honours ctx cancellation by tearing
// down the listener and all connections.
func (s *Server) Run(ctx context.Context) ([]float64, error) {
	defer closeQuietly(s.ln)

	// Tear everything down if the context is cancelled.
	var peersMu sync.Mutex
	var peers []*peer
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			closeQuietly(s.ln)
			peersMu.Lock()
			for _, p := range peers {
				closeQuietly(p.conn)
			}
			peersMu.Unlock()
		case <-stop:
		}
	}()

	// Registration barrier.
	for len(peers) < s.cfg.NumClients {
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		cc := &countingConn{Conn: conn}
		p := &peer{conn: cc, enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}
		var join JoinMsg
		if err := s.recv(p, &join); err != nil {
			closeQuietly(cc)
			return nil, fmt.Errorf("transport: registration: %w", err)
		}
		p.name = join.Name
		peersMu.Lock()
		peers = append(peers, p)
		peersMu.Unlock()
	}
	defer func() {
		for _, p := range peers {
			closeQuietly(p.conn)
		}
	}()

	for id, p := range peers {
		w := WelcomeMsg{
			ClientID:   id,
			NumClients: s.cfg.NumClients,
			Rounds:     s.cfg.Rounds,
			Dim:        len(s.cfg.Init),
			Init:       s.cfg.Init,
		}
		if err := s.send(p, &w); err != nil {
			return nil, fmt.Errorf("transport: welcome client %d: %w", id, err)
		}
	}

	global := append([]float64(nil), s.cfg.Init...)
	for round := 0; round < s.cfg.Rounds; round++ {
		updates := make([]UpdateMsg, len(peers))
		var wg sync.WaitGroup
		errs := make([]error, len(peers))
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p *peer) {
				defer wg.Done()
				errs[i] = s.recv(p, &updates[i])
			}(i, p)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("transport: round %d recv from client %d (%s): %w", round, i, peers[i].name, err)
			}
			if updates[i].Round != round {
				return nil, protocolErrorf("client %d sent round %d during round %d", i, updates[i].Round, round)
			}
		}

		agg, err := aggregate(updates)
		if err != nil {
			return nil, fmt.Errorf("transport: round %d: %w", round, err)
		}
		msg := GlobalMsg{Round: round, Payload: agg}
		for i, p := range peers {
			if err := s.send(p, &msg); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				return nil, fmt.Errorf("transport: round %d send to client %d: %w", round, i, err)
			}
		}
		// A full-length aggregate is the new dense global; compact
		// (mask-elided) aggregates only update the transmitted positions
		// on the clients, so the server's dense copy is informational.
		if len(agg) == len(global) {
			global = agg
		}
	}

	s.mu.Lock()
	for _, p := range peers {
		r, w := p.conn.Counts()
		s.bytesRead += r
		s.bytesSent += w
	}
	s.mu.Unlock()
	return global, nil
}

// aggregate computes the weighted mean of equal-length payloads.
func aggregate(updates []UpdateMsg) ([]float64, error) {
	if len(updates) == 0 {
		return nil, protocolErrorf("no updates")
	}
	n := len(updates[0].Payload)
	totalW := 0.0
	for i, u := range updates {
		if len(u.Payload) != n {
			return nil, protocolErrorf("payload length mismatch: client 0 sent %d, client %d sent %d", n, i, len(u.Payload))
		}
		if u.Weight < 0 {
			return nil, protocolErrorf("negative weight %v from client %d", u.Weight, i)
		}
		totalW += u.Weight
	}
	if totalW == 0 {
		return nil, protocolErrorf("all contributions withheld (total weight 0)")
	}
	out := make([]float64, n)
	for _, u := range updates {
		if u.Weight == 0 {
			continue
		}
		w := u.Weight / totalW
		for j, v := range u.Payload {
			out[j] += w * v
		}
	}
	return out, nil
}

// send encodes one message with a write deadline.
func (s *Server) send(p *peer, msg any) error {
	if err := p.conn.SetWriteDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		return err
	}
	return p.enc.Encode(msg)
}

// recv decodes one message with a read deadline.
func (s *Server) recv(p *peer, msg any) error {
	if err := p.conn.SetReadDeadline(time.Now().Add(s.cfg.IOTimeout)); err != nil {
		return err
	}
	return p.dec.Decode(msg)
}
