package transport

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"apf/internal/core"
	"apf/internal/fl"
	"apf/internal/stats"
	"apf/internal/telemetry"
	"apf/internal/wire"
)

// RelayConfig parameterizes one edge relay: a full aggregation server on
// its downward face (client sessions, codec negotiation, sanitization,
// durability) that, instead of reducing locally, exports each round's
// exact fixed-point partial sum and streams it to the root coordinator.
type RelayConfig struct {
	// Addr is the downward listen address for client sessions.
	Addr string
	// Listener, when non-nil, is used instead of binding Addr.
	Listener net.Listener
	// Upstream is the root coordinator's address.
	Upstream string
	// Name labels this relay in root-side errors and logs.
	Name string
	// SessionKey identifies the relay's resumable session on the root.
	// Required: a relay that cannot resume would strand its clients on
	// every upstream hiccup.
	SessionKey string
	// NumClients is the number of client sessions this relay terminates.
	NumClients int
	// IOTimeout bounds each message exchange on both faces (default 30s).
	// Upstream it must exceed the root's full round time — the root answers
	// a partial only when every relay reported or its deadline fired.
	IOTimeout time.Duration
	// RoundDeadline/MinClients configure the downward face's fault
	// tolerance, exactly as on ServerConfig.
	RoundDeadline time.Duration
	MinClients    int
	// Codec is the strongest payload codec negotiated with clients. The
	// upstream leg is always dense — partial sums are exact integer
	// columns, not payloads. With CodecSparseQ16 here, configure the root
	// with the same codec so its commits are binary16-representable and
	// the relay's quantized downward framing stays lossless.
	Codec wire.Codec
	// CheckpointDir/SnapshotEvery make the relay's downward face durable,
	// exactly as on ServerConfig.
	CheckpointDir string
	SnapshotEvery int
	// HistoryRounds/Shadow configure the downward face's bounded replay
	// history and catch-up shadow replica, exactly as on ServerConfig. A
	// relay that falls off the ROOT's history catches up through the same
	// protocol (always snapshot mode — the relay leg carries no manager
	// state of its own) and propagates the adopted snapshot downstream.
	HistoryRounds int
	Shadow        *core.Config
	// Validator enables inbound sanitization at this edge. This is where
	// per-client defenses live in a hierarchy: the root only ever sees
	// pre-aggregated sums.
	Validator *ValidatorConfig
	// DialTimeout bounds upstream connection setup (default 10s);
	// MaxRetries bounds consecutive upstream reconnect attempts, with
	// RetryBaseDelay/RetryMaxDelay shaping the jittered exponential
	// backoff (defaults 50ms / 2s), all as on ClientConfig.
	DialTimeout    time.Duration
	MaxRetries     int
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Dial, when non-nil, replaces the default upstream TCP dialer (the
	// fault-injection hook).
	Dial DialFunc
	// Seed drives the backoff jitter stream.
	Seed int64
	// Metrics/Log instrument both faces plus the relay-specific handles
	// (apf_relay_*). Nil disables.
	Metrics *telemetry.Registry
	Log     *telemetry.Logger
}

// Relay is one edge pre-aggregator. Its downward face is a full *Server
// driving the shared round engine; its reduceRound hook replaces the local
// reduction with an upstream partial-sum exchange, so admission, review,
// WAL, and broadcast semantics are identical to the flat coordinator's.
type Relay struct {
	cfg RelayConfig
	ln  net.Listener
	srv *Server

	relayM *relayMetrics
	wireM  *wireMetrics
	log    *telemetry.Logger
	jitter *rand.Rand

	// Upstream session state. All of it is owned by the engine goroutine
	// (reduceRound is called synchronously per round); only conn needs the
	// mutex, for the cancellation watcher.
	connMu  sync.Mutex
	conn    *countingConn
	relayID int
	rounds  int
	dim     int
	// applied is the last round whose root aggregate this relay committed
	// (-1 none); the resume HaveRound. adopted holds root-committed rounds
	// received through welcome replays, consumed as the local round loop
	// reaches them. inflight is the prepared partial, re-sent idempotently
	// after a reconnect (the root drops duplicates by slot).
	applied  int
	adopted  map[int]*GlobalMsg
	inflight *PartialUpdateMsg
	// pendingJump holds a snapshot adopted from the root's catch-up
	// conversation (this relay fell off the root's replay history); the
	// next reduceRound commits it as a round discontinuity.
	pendingJump *wire.SnapshotMsg

	upRead    int64
	upWritten int64
}

// NewRelay binds the downward listener. Call Run to serve; the upstream
// session and the downward server are built there, because the run's
// geometry (rounds, dimension, init model) arrives in the root's welcome.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.NumClients <= 0 || cfg.Upstream == "" {
		return nil, fmt.Errorf("transport: invalid relay config clients=%d upstream=%q",
			cfg.NumClients, cfg.Upstream)
	}
	if cfg.SessionKey == "" {
		return nil, fmt.Errorf("transport: relay requires a session key (upstream resume)")
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = defaultIOTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 50 * time.Millisecond
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = 2 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, cfg.DialTimeout)
		}
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addr, err)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(cfg.SessionKey + "/" + cfg.Name))
	return &Relay{
		cfg:     cfg,
		ln:      ln,
		relayM:  newRelayMetrics(cfg.Metrics),
		wireM:   newWireMetrics(cfg.Metrics),
		log:     cfg.Log.With("component", "relay", "name", cfg.Name),
		jitter:  stats.SplitRNG(cfg.Seed, 5_000_000+int64(h.Sum64()%1_000_000)),
		applied: -1,
		adopted: make(map[int]*GlobalMsg),
	}, nil
}

// Addr returns the bound downward listen address (useful with ":0").
func (r *Relay) Addr() net.Addr { return r.ln.Addr() }

// Server exposes the downward face after Run has built it (nil before).
// Read its accounting only after Run returns.
func (r *Relay) Server() *Server { return r.srv }

// UpstreamBytes returns the total bytes exchanged with the root across
// every upstream connection the relay used. Read it after Run returns.
func (r *Relay) UpstreamBytes() (read, written int64) {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	return r.upRead, r.upWritten
}

// Run joins the root, serves the relay's clients for the announced number
// of rounds, and returns the final global model. It honours ctx
// cancellation on both faces.
func (r *Relay) Run(ctx context.Context) ([]float64, error) {
	// Tear the upstream connection down on cancellation to unblock I/O;
	// the downward server has its own watcher.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			r.dropConn()
		case <-stop:
		}
	}()
	defer r.dropConn()

	// First upstream join always asks for the full history (HaveRound -1):
	// the relay's own checkpoint is only restored when the downward server
	// is built below, and replayed rounds it already holds are cheap to
	// drop. The retry loop covers a root that is still coming up.
	welcome, err := r.withUpstream(ctx, func(conn *countingConn) error { return nil })
	if err != nil {
		closeQuietly(r.ln)
		return nil, err
	}

	srv, err := NewServer(ServerConfig{
		Listener:      r.ln,
		NumClients:    r.cfg.NumClients,
		Rounds:        welcome.Rounds,
		Init:          welcome.Init,
		IOTimeout:     r.cfg.IOTimeout,
		RoundDeadline: r.cfg.RoundDeadline,
		MinClients:    r.cfg.MinClients,
		Codec:         r.cfg.Codec,
		CheckpointDir: r.cfg.CheckpointDir,
		SnapshotEvery: r.cfg.SnapshotEvery,
		Validator:     r.cfg.Validator,
		HistoryRounds: r.cfg.HistoryRounds,
		Shadow:        r.cfg.Shadow,
		Metrics:       r.cfg.Metrics,
		Log:           r.cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	r.srv = srv
	// The downward engine streams contributions into the exact accumulator
	// and hands each closed round to reduceRound instead of reducing
	// locally. Set before Run starts the engine; never touched after.
	srv.reducer = r
	srv.streaming = true

	// A recovered downward checkpoint already holds a prefix of the root's
	// history; the engine resumes after it, so adopted rounds before that
	// point will never be asked for.
	r.applied = srv.StartRound() - 1
	for round := range r.adopted {
		if round <= r.applied {
			delete(r.adopted, round)
		}
	}
	if r.pendingJump != nil && r.pendingJump.Round <= r.applied {
		// The recovered downward checkpoint already covers the snapshot the
		// initial join's catch-up produced.
		r.pendingJump = nil
	}
	if srv.Recovered() {
		r.log.Info("relay resumed from checkpoint", "start_round", srv.StartRound())
	}
	return srv.Run(ctx)
}

// reduceRound implements roundReducer: export the closed round's exact
// partial sum, stream it to the root, and return the root's aggregate —
// which the downward server then commits and broadcasts exactly as a flat
// coordinator commits its local reduction.
func (r *Relay) reduceRound(ctx context.Context, round int, agg *fl.Aggregator, meta roundMeta) (*GlobalMsg, error) {
	var p fl.Partial
	count, ok := agg.ExportPartial(&p)
	if !ok {
		return nil, protocolErrorf("round %d: no open round to export", round)
	}
	if p.Poisoned() {
		// Overflowing the 128-bit accumulator takes ~2^63 unit-weight
		// clients of unit-scale updates; if it happens, the round's sum is
		// gone and no re-collection can restore it.
		return nil, fmt.Errorf("transport: round %d: %w", round, fl.ErrAccumOverflow)
	}
	if r.relayM != nil {
		r.relayM.sessions.Set(float64(r.srv.Sessions()))
	}
	if g, ok := r.adopted[round]; ok {
		// The root committed this round before we collected it (relay
		// restart, or a late join into a running root): the local partial
		// is dropped — those client updates missed the root's round, the
		// documented cost of a relay dying mid-round — and the canonical
		// aggregate is re-committed verbatim so the downward trajectory
		// stays identical to the root's.
		delete(r.adopted, round)
		r.applied = round
		r.log.Info("adopted root-committed round", "round", round, "dropped_clients", count)
		return g, nil
	}
	r.inflight = &PartialUpdateMsg{
		Round:    round,
		Count:    count,
		WeightLo: p.WeightLo,
		WeightHi: p.WeightHi,
		MaskHash: meta.maskHash,
		Cols:     p.Cols,
	}
	start := time.Now()
	g, err := r.exchange(ctx, round)
	if err != nil {
		return nil, err
	}
	if r.relayM != nil {
		r.relayM.partials.Inc()
		r.relayM.upstreamSeconds.Observe(time.Since(start).Seconds())
	}
	r.inflight = nil
	r.applied = g.Round // g.Round == round, unless the exchange jumped ahead
	if g.Round > round {
		for rr := range r.adopted {
			if rr <= g.Round {
				delete(r.adopted, rr)
			}
		}
	}
	return g, nil
}

// exchange pushes the in-flight partial and waits for the round's
// aggregate, reconnecting with jittered exponential backoff on connection
// failures. Protocol violations and mask divergence are fatal, exactly as
// on the client.
func (r *Relay) exchange(ctx context.Context, round int) (*GlobalMsg, error) {
	attempts := 0
	for {
		g, err := r.tryExchange(ctx, round)
		if err == nil {
			return g, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, errProtocol) || errors.Is(err, ErrMaskDivergence) ||
			errors.Is(err, ErrFutureGeneration) {
			return nil, err
		}
		attempts++
		if r.relayM != nil {
			r.relayM.reconnects.Inc()
		}
		if attempts > r.cfg.MaxRetries {
			return nil, fmt.Errorf("transport: upstream connection failed (after %d reconnect attempt(s)): %w",
				attempts-1, err)
		}
		r.log.Warn("upstream connection lost, retrying", "round", round, "attempt", attempts, "err", err)
		if err := sleepBackoff(ctx, r.jitter, r.cfg.RetryBaseDelay, r.cfg.RetryMaxDelay, attempts); err != nil {
			return nil, err
		}
	}
}

// tryExchange runs one upstream attempt: ensure a joined connection (whose
// welcome replay may already resolve the round), push the partial, and
// read the round's global.
func (r *Relay) tryExchange(ctx context.Context, round int) (*GlobalMsg, error) {
	conn, err := r.joinedConn(ctx)
	if err != nil {
		return nil, err
	}
	if snap := r.pendingJump; snap != nil {
		r.pendingJump = nil
		if snap.Round >= round {
			// The join's catch-up adopted the root's snapshot: stage it on the
			// downward server and return it as a round discontinuity, which the
			// engine commits via commitJump. This round's local partial is
			// dropped — the root committed past it without this relay.
			r.srv.stageJump(snap)
			r.log.Info("jumping to root snapshot", "from_round", round, "round", snap.Round)
			return &GlobalMsg{Round: snap.Round, Payload: snap.Payload}, nil
		}
	}
	if g, ok := r.adopted[round]; ok {
		// The resume replay covered this round: the root committed it
		// without our partial while we were disconnected.
		delete(r.adopted, round)
		return g, nil
	}
	markRound(conn, round)
	if err := writeMsg(conn, r.cfg.IOTimeout, r.inflight, r.wireM); err != nil {
		r.dropConn()
		return nil, fmt.Errorf("push partial: %w", err)
	}
	m, err := readMsg(conn, r.cfg.IOTimeout, modelPayloadLimit(r.dim), r.wireM)
	if err != nil {
		r.dropConn()
		return nil, fmt.Errorf("pull aggregate: %w", err)
	}
	g, ok := m.(*GlobalMsg)
	if !ok {
		return nil, protocolErrorf("round %d: expected a global frame upstream, got %s", round, m.WireKind())
	}
	if g.Round != round {
		return nil, protocolErrorf("upstream sent round %d during round %d", g.Round, round)
	}
	return g, nil
}

// joinedConn returns the live upstream connection, dialing and joining
// (with welcome validation and missed-round adoption) when there is none.
func (r *Relay) joinedConn(ctx context.Context) (*countingConn, error) {
	r.connMu.Lock()
	conn := r.conn
	r.connMu.Unlock()
	if conn != nil {
		return conn, nil
	}
	_, err := r.withUpstream(ctx, nil)
	if err != nil {
		return nil, err
	}
	r.connMu.Lock()
	conn = r.conn
	r.connMu.Unlock()
	if conn == nil {
		return nil, fmt.Errorf("transport: upstream connection closed during join")
	}
	return conn, nil
}

// withUpstream dials the root, joins (or resumes) the relay session, and
// leaves the validated connection installed as r.conn. The initial call in
// Run retries with backoff until the root answers or the budget is spent;
// later callers (joinedConn) do a single attempt — their retry loop is
// exchange's.
func (r *Relay) withUpstream(ctx context.Context, once func(*countingConn) error) (*WelcomeMsg, error) {
	attempts := 0
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w, err := r.joinOnce(ctx)
		if err == nil {
			if once != nil {
				if err := once(r.conn); err != nil {
					return nil, err
				}
			}
			return w, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if errors.Is(err, errProtocol) || errors.Is(err, ErrMaskDivergence) ||
			errors.Is(err, ErrFutureGeneration) {
			return nil, err
		}
		if once == nil {
			return nil, err // single attempt for joinedConn
		}
		attempts++
		if attempts > r.cfg.MaxRetries {
			return nil, fmt.Errorf("transport: upstream join failed (after %d attempt(s)): %w", attempts, err)
		}
		r.log.Warn("upstream join failed, retrying", "attempt", attempts, "err", err)
		if err := sleepBackoff(ctx, r.jitter, r.cfg.RetryBaseDelay, r.cfg.RetryMaxDelay, attempts); err != nil {
			return nil, err
		}
	}
}

// joinOnce performs one dial + join + welcome exchange and adopts the
// replayed history.
func (r *Relay) joinOnce(ctx context.Context) (*WelcomeMsg, error) {
	raw, err := r.cfg.Dial("tcp", r.cfg.Upstream)
	if err != nil {
		return nil, fmt.Errorf("transport: dial upstream %s: %w", r.cfg.Upstream, err)
	}
	conn := &countingConn{Conn: raw}
	r.connMu.Lock()
	r.conn = conn
	r.connMu.Unlock()
	if ctx.Err() != nil {
		r.dropConn()
		return nil, ctx.Err()
	}
	join := &RelayJoinMsg{
		Name:       r.cfg.Name,
		SessionKey: r.cfg.SessionKey,
		HaveRound:  r.applied,
		Clients:    r.cfg.NumClients,
	}
	if err := writeMsg(conn, r.cfg.IOTimeout, join, r.wireM); err != nil {
		r.dropConn()
		return nil, fmt.Errorf("transport: relay join: %w", err)
	}
	m, err := readMsg(conn, r.cfg.IOTimeout, wire.MaxPayload, r.wireM)
	if err != nil {
		r.dropConn()
		return nil, fmt.Errorf("transport: relay welcome: %w", err)
	}
	w, ok := m.(*WelcomeMsg)
	if !ok {
		r.dropConn()
		return nil, protocolErrorf("expected a welcome frame upstream, got %s", m.WireKind())
	}
	if err := r.acceptWelcome(w); err != nil {
		r.dropConn()
		return nil, err
	}
	if w.CatchUp {
		if err := r.catchUpUpstream(conn); err != nil {
			r.dropConn()
			return nil, err
		}
	}
	return w, nil
}

// catchUpUpstream runs the relay side of the wire-v4 catch-up
// conversation: the relay always requests snapshot mode (MaskGen -1) —
// its upstream leg is model payloads, not manager state — and holds the
// received snapshot as a pending round jump for the engine to commit.
func (r *Relay) catchUpUpstream(conn *countingConn) error {
	offer := &wire.ResumeOfferMsg{Round: r.applied, MaskGen: -1}
	if err := writeMsg(conn, r.cfg.IOTimeout, offer, r.wireM); err != nil {
		return fmt.Errorf("transport: catch-up offer: %w", err)
	}
	m, err := readMsg(conn, r.cfg.IOTimeout, snapshotPayloadLimit(r.dim), r.wireM)
	if err != nil {
		return fmt.Errorf("transport: catch-up: %w", err)
	}
	snap, ok := m.(*wire.SnapshotMsg)
	if !ok {
		return protocolErrorf("expected a snapshot frame upstream, got %s", m.WireKind())
	}
	if len(snap.Payload) != r.dim {
		return protocolErrorf("snapshot payload length %d, model has %d", len(snap.Payload), r.dim)
	}
	if snap.Round <= r.applied {
		return protocolErrorf("snapshot for round %d at applied round %d", snap.Round, r.applied)
	}
	r.pendingJump = snap
	r.log.Info("adopted root snapshot", "round", snap.Round, "applied", r.applied)
	return nil
}

// acceptWelcome validates the root's welcome and adopts its missed-round
// replay. The first welcome fixes the geometry; reconnects must repeat it.
func (r *Relay) acceptWelcome(w *WelcomeMsg) error {
	if w.Codec != wire.CodecDense {
		return protocolErrorf("root negotiated codec %s on the relay leg (always dense)", w.Codec)
	}
	if r.dim != 0 {
		if w.ClientID != r.relayID || w.Rounds != r.rounds || w.Dim != r.dim {
			return protocolErrorf("resume welcome changed geometry: id %d→%d rounds %d→%d dim %d→%d",
				r.relayID, w.ClientID, r.rounds, w.Rounds, r.dim, w.Dim)
		}
	} else {
		if w.Dim <= 0 || len(w.Init) != w.Dim || w.Rounds <= 0 {
			return protocolErrorf("invalid relay welcome: rounds=%d dim=%d init=%d", w.Rounds, w.Dim, len(w.Init))
		}
		r.relayID, r.rounds, r.dim = w.ClientID, w.Rounds, w.Dim
		r.log.Info("joined root", "relay", w.ClientID, "rounds", w.Rounds, "dim", w.Dim)
	}
	for i := range w.Missed {
		g := &w.Missed[i]
		if g.Round > r.applied {
			r.adopted[g.Round] = g
		}
	}
	return nil
}

// dropConn closes the upstream connection (if any) and folds its byte
// counts into the relay totals. The fold stays under connMu because the
// cancellation watcher and the engine goroutine can both land here.
func (r *Relay) dropConn() {
	r.connMu.Lock()
	conn := r.conn
	r.conn = nil
	if conn != nil {
		read, written := conn.Counts()
		r.upRead += read
		r.upWritten += written
	}
	r.connMu.Unlock()
	if conn != nil {
		closeQuietly(conn)
	}
}
