package transport

import (
	"fmt"

	"apf/internal/checkpoint"
	"apf/internal/wire"
)

// Checkpoint frame kinds used by the server, in the KindUser space of
// package checkpoint.
const (
	// kindServerSnap frames a full server snapshot: geometry, session
	// table, aggregate history, accounting.
	kindServerSnap = checkpoint.KindUser + iota
	// kindWALUpdate records one accepted UpdateMsg (client id + message).
	kindWALUpdate
	// kindWALGlobal records one emitted GlobalMsg — the commit record of
	// its round. A round is durable exactly when its global record is.
	kindWALGlobal
	// kindWALSparseUpdate records one accepted SparseUpdateMsg (client id +
	// message), used when the update arrived on a sparse session. Like
	// kindWALUpdate records it belongs to the round left open by a crash
	// and is discarded at recovery.
	kindWALSparseUpdate
	// kindWALPartial records one accepted relay PartialUpdateMsg (relay id +
	// message) on the hierarchy's root tier. In-flight like kindWALUpdate:
	// discarded at recovery, repopulated by the relays' idempotent re-sends.
	kindWALPartial
)

// serverState is the decoded form of a server snapshot: everything a
// restarted coordinator needs to resume the run bit-exactly (the session
// table keeps client ids stable across the restart; the history feeds
// both resume replay and the round counter).
type serverState struct {
	// NumClients is the size of the tier this server terminates: clients
	// on a flat coordinator, relays on the hierarchy's root.
	NumClients int
	Rounds     int
	Init       []float64
	Keys       []string // session keys by client id
	Names      []string // session names by client id
	History    []GlobalMsg
	// PartialRounds preserves the partial-aggregation count across
	// restarts so accounting reflects the whole run.
	PartialRounds int
	// Validator carries the sanitization state (nil when sanitization is
	// disabled). Persisting it keeps quarantined clients out and the norm
	// gate armed across a restart; granularity is the snapshot cadence —
	// strikes charged since the last rotation are lost with the crash.
	Validator *validatorState
	// Catch-up tail (optional — absent in snapshots written before bounded
	// history existed, which decode with base 0 and no shadow). HistoryBase
	// is the round of History[0]; ShadowRound/Shadow/ShadowX persist the
	// catch-up shadow replica (round -1 and empty when none was usable at
	// snapshot time).
	HistoryBase int
	ShadowRound int
	Shadow      []byte
	ShadowX     []float64
}

// validatorState is the durable slice of a Validator: strike counters,
// quarantine flags, and the rolling accepted-norm history (chronological,
// oldest first). The cosine-gate fields (reference direction, its commit
// count, quarantine rounds) ride as an optional tail so snapshots written
// before the gate existed still decode: a legacy snapshot restores with
// an empty reference (the gate re-arms from fresh commits) and -1
// quarantine-round sentinels.
type validatorState struct {
	Strikes []int
	Quar    []bool
	Norms   []float64
	// Optional tail (absent in legacy snapshots; QuarRound nil there).
	Ref       []float64
	RefCount  int
	QuarRound []int
}

// encodeServerState frames the snapshot payload (without the outer frame;
// checkpoint.Store adds it).
func encodeServerState(s *serverState) []byte {
	var w checkpoint.Writer
	w.Int(s.NumClients)
	w.Int(s.Rounds)
	w.F64s(s.Init)
	w.Int(len(s.Keys))
	for i := range s.Keys {
		w.String(s.Keys[i])
		w.String(s.Names[i])
	}
	w.Int(len(s.History))
	for i := range s.History {
		wire.AppendGlobalBody(&w, &s.History[i])
	}
	w.Int(s.PartialRounds)
	w.Bool(s.Validator != nil)
	if v := s.Validator; v != nil {
		w.Ints(v.Strikes)
		w.Int(len(v.Quar))
		for _, q := range v.Quar {
			w.Bool(q)
		}
		w.F64s(v.Norms)
		w.F64s(v.Ref)
		w.Int(v.RefCount)
		w.Ints(v.QuarRound)
	}
	// Catch-up tail (always written; optional on decode for forward
	// compatibility with pre-eviction snapshots).
	w.Int(s.HistoryBase)
	w.Int(s.ShadowRound)
	w.String(string(s.Shadow))
	w.F64s(s.ShadowX)
	return w.Bytes()
}

// decodeServerState reads a snapshot payload back.
func decodeServerState(payload []byte) (*serverState, error) {
	r := checkpoint.NewReader(payload)
	s := &serverState{}
	s.NumClients = r.Int()
	s.Rounds = r.Int()
	s.Init = r.F64s()
	nSess := r.Int()
	if r.Err() == nil && (nSess < 0 || nSess > len(payload)) {
		return nil, fmt.Errorf("%w: session count %d", checkpoint.ErrCorrupt, nSess)
	}
	for i := 0; i < nSess && r.Err() == nil; i++ {
		s.Keys = append(s.Keys, r.String())
		s.Names = append(s.Names, r.String())
	}
	nHist := r.Int()
	if r.Err() == nil && (nHist < 0 || nHist > len(payload)) {
		return nil, fmt.Errorf("%w: history count %d", checkpoint.ErrCorrupt, nHist)
	}
	for i := 0; i < nHist && r.Err() == nil; i++ {
		s.History = append(s.History, wire.ReadGlobalBody(r))
	}
	s.PartialRounds = r.Int()
	if r.Bool() && r.Err() == nil {
		v := &validatorState{Strikes: r.Ints()}
		nQuar := r.Int()
		if r.Err() == nil && (nQuar < 0 || nQuar > len(payload)) {
			return nil, fmt.Errorf("%w: quarantine count %d", checkpoint.ErrCorrupt, nQuar)
		}
		for i := 0; i < nQuar && r.Err() == nil; i++ {
			v.Quar = append(v.Quar, r.Bool())
		}
		v.Norms = r.F64s()
		if r.Err() == nil && r.Remaining() > 0 {
			v.Ref = r.F64s()
			v.RefCount = r.Int()
			v.QuarRound = r.Ints()
		}
		s.Validator = v
	}
	// Catch-up tail: absent in pre-eviction snapshots, which decode with
	// an unevicted history (base 0) and no shadow.
	s.ShadowRound = -1
	if r.Err() == nil && r.Remaining() > 0 {
		s.HistoryBase = r.Int()
		s.ShadowRound = r.Int()
		if b := r.String(); b != "" {
			s.Shadow = []byte(b)
		}
		s.ShadowX = r.F64s()
		if r.Err() == nil && s.HistoryBase < 0 {
			return nil, fmt.Errorf("%w: negative history base %d", checkpoint.ErrCorrupt, s.HistoryBase)
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	if len(s.Keys) != len(s.Names) {
		return nil, fmt.Errorf("%w: inconsistent session table", checkpoint.ErrCorrupt)
	}
	return s, nil
}

// encodeWALUpdate frames one accepted update for the WAL: the client id
// followed by the message body in its wire encoding, so the WAL and the
// socket share one codec (and one set of codec tests).
func encodeWALUpdate(clientID int, u *UpdateMsg) []byte {
	var w checkpoint.Writer
	w.Int(clientID)
	wire.AppendUpdateBody(&w, u)
	return w.Bytes()
}

// decodeWALUpdate reads an update record back.
func decodeWALUpdate(payload []byte) (clientID int, u *UpdateMsg, err error) {
	r := checkpoint.NewReader(payload)
	clientID = r.Int()
	msg := wire.ReadUpdateBody(r)
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return clientID, &msg, nil
}

// encodeWALSparseUpdate frames one accepted sparse update for the WAL, in
// the same body encoding the socket uses.
func encodeWALSparseUpdate(clientID int, u *SparseUpdateMsg) []byte {
	var w checkpoint.Writer
	w.Int(clientID)
	wire.AppendSparseUpdateBody(&w, u)
	return w.Bytes()
}

// decodeWALSparseUpdate reads a sparse update record back.
func decodeWALSparseUpdate(payload []byte) (clientID int, u *SparseUpdateMsg, err error) {
	r := checkpoint.NewReader(payload)
	clientID = r.Int()
	msg := wire.ReadSparseUpdateBody(r)
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return clientID, &msg, nil
}

// encodeWALPartial frames one accepted relay partial sum for the WAL, in
// the same body encoding the socket uses (relay id first, mirroring the
// update records).
func encodeWALPartial(relayID int, p *PartialUpdateMsg) []byte {
	var w checkpoint.Writer
	w.Int(relayID)
	wire.AppendPartialUpdateBody(&w, p)
	return w.Bytes()
}

// decodeWALPartial reads a partial record back.
func decodeWALPartial(payload []byte) (relayID int, p *PartialUpdateMsg, err error) {
	r := checkpoint.NewReader(payload)
	relayID = r.Int()
	msg := wire.ReadPartialUpdateBody(r)
	if err := r.Done(); err != nil {
		return 0, nil, err
	}
	return relayID, &msg, nil
}

// encodeWALGlobal frames one emitted aggregate for the WAL, in the same
// body encoding the socket uses.
func encodeWALGlobal(g *GlobalMsg) []byte {
	var w checkpoint.Writer
	wire.AppendGlobalBody(&w, g)
	return w.Bytes()
}

// decodeWALGlobal reads a global record back.
func decodeWALGlobal(payload []byte) (*GlobalMsg, error) {
	r := checkpoint.NewReader(payload)
	g := wire.ReadGlobalBody(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &g, nil
}

// recoverState loads the newest consistent snapshot from the store and
// rolls its WAL forward: global records extend the aggregate history in
// round order; update and partial records belong to the round left open by
// the crash and are discarded — the round re-opens and the idempotent
// client (or relay) re-send repopulates it. Returns nil state when the
// store is empty. rootTier disables the partial-round re-derivation for
// rolled-forward globals: on the root tier Participants counts underlying
// clients while NumClients counts relays, so the comparison is meaningless
// there (the live commit path records the flag correctly either way).
func recoverState(store *checkpoint.Store, rootTier bool) (*serverState, error) {
	_, kind, payload, wal, found, err := store.Load()
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	if kind != kindServerSnap {
		return nil, fmt.Errorf("%w: snapshot frame kind %d, want %d", checkpoint.ErrCorrupt, kind, kindServerSnap)
	}
	st, err := decodeServerState(payload)
	if err != nil {
		return nil, fmt.Errorf("transport: decode snapshot: %w", err)
	}
	for _, rec := range wal {
		switch rec.Kind {
		case kindWALGlobal:
			g, err := decodeWALGlobal(rec.Payload)
			if err != nil {
				return nil, fmt.Errorf("transport: decode wal global: %w", err)
			}
			if g.Round != st.HistoryBase+len(st.History) {
				// Replays of rounds the snapshot already holds (or gaps,
				// which cannot happen with ordered appends) are skipped
				// rather than corrupting the history.
				continue
			}
			st.History = append(st.History, *g)
			if !rootTier && g.Participants < st.NumClients {
				st.PartialRounds++
			}
		case kindWALUpdate, kindWALSparseUpdate, kindWALPartial:
			// In-flight contribution of the re-opened round: discarded.
		default:
			// Unknown record kinds from a newer writer are skipped; the
			// commit records above are self-contained.
		}
	}
	return st, nil
}

// verifyRecovered checks a recovered state against the configured run:
// a checkpoint from a different geometry (cluster size, round count,
// model) must never silently resume.
func verifyRecovered(st *serverState, cfg ServerConfig) error {
	if st.NumClients != cfg.peers() || st.Rounds != cfg.Rounds || len(st.Init) != len(cfg.Init) {
		return fmt.Errorf("transport: checkpoint geometry peers=%d rounds=%d dim=%d does not match config peers=%d rounds=%d dim=%d",
			st.NumClients, st.Rounds, len(st.Init), cfg.peers(), cfg.Rounds, len(cfg.Init))
	}
	for j := range st.Init {
		if st.Init[j] != cfg.Init[j] {
			return fmt.Errorf("transport: checkpoint init vector differs from config at scalar %d", j)
		}
	}
	if len(st.Keys) != st.NumClients {
		// The base snapshot is only written once registration completes,
		// so a valid checkpoint always carries the full session table.
		return fmt.Errorf("transport: checkpoint session table has %d entries for %d clients", len(st.Keys), st.NumClients)
	}
	if st.HistoryBase+len(st.History) > st.Rounds {
		return fmt.Errorf("transport: checkpoint history reaches round %d of a %d-round run",
			st.HistoryBase+len(st.History), st.Rounds)
	}
	if v := st.Validator; v != nil && (len(v.Strikes) != st.NumClients || len(v.Quar) != st.NumClients) {
		return fmt.Errorf("transport: checkpoint validator state covers %d strike / %d quarantine entries for %d clients",
			len(v.Strikes), len(v.Quar), st.NumClients)
	}
	return nil
}
