package transport

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/preset"
	"apf/internal/stats"
)

// TestCrashRealSIGKILL is the out-of-process crash drill behind `make
// crashtest`: it builds the real apf-server binary, runs a cluster where
// a scripted kill-server fault makes the server SIGKILL ITSELF mid-round
// (no deferred cleanup, no flushing — the genuine article), restarts the
// binary against the same checkpoint directory, and asserts the final
// weights are bit-identical to an uninterrupted run of the same cluster.
//
// Gated behind APF_CRASHTEST=1 because it compiles a binary and runs two
// full multi-second clusters — too heavy for the tier-1 loop.
func TestCrashRealSIGKILL(t *testing.T) {
	if os.Getenv("APF_CRASHTEST") == "" {
		t.Skip("set APF_CRASHTEST=1 (make crashtest) to run the SIGKILL drill")
	}

	const (
		seed    = 42
		clients = 3
		rounds  = 10
		model   = "mlp"
	)

	bin := filepath.Join(t.TempDir(), "apf-server")
	build := exec.Command("go", "build", "-o", bin, "apf/cmd/apf-server")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build apf-server: %v\n%s", err, out)
	}

	// The client side mirrors cmd/apf-client's configuration exactly, so
	// the drill exercises the same wire behaviour an operator gets.
	p, err := preset.Load(model, seed)
	if err != nil {
		t.Fatal(err)
	}
	parts := data.PartitionDirichlet(stats.SplitRNG(seed, 1), p.Data.Labels, p.Data.Classes, clients, 1.0)

	// killRound < 0 runs the arm uninterrupted; otherwise a scripted
	// kill-server fault SIGKILLs the server when that round is announced,
	// and the arm restarts the binary against the same checkpoint dir.
	runArm := func(name string, killRound int) []float64 {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()

		addr := freeAddr(t)
		maddr := freeAddr(t)
		dir := t.TempDir()
		args := []string{
			"-addr", addr, "-clients", fmt.Sprint(clients), "-rounds", fmt.Sprint(rounds),
			"-model", model, "-seed", fmt.Sprint(seed),
			"-deadline", "5s", "-checkpoint-dir", dir, "-snapshot-every", "3",
			// Sanitization armed with the direction gate: the drill proves the
			// recovered validator — including the persisted reference
			// direction — neither strikes honest clients after the restart
			// nor perturbs the bit-exact recovery.
			"-max-norm-mult", "3", "-cosine-floor", "0.2",
			"-metrics-addr", maddr, "-log-level", "info",
		}
		srvArgs := args
		if killRound >= 0 {
			srvArgs = append(append([]string(nil), args...), "-chaos", fmt.Sprintf("kill-server@%d", killRound))
		}
		srv := exec.CommandContext(ctx, bin, srvArgs...)
		srv.Stdout, srv.Stderr = os.Stderr, os.Stderr
		if err := srv.Start(); err != nil {
			t.Fatalf("%s: start server: %v", name, err)
		}
		srvDone := make(chan error, 1)
		go func() { srvDone <- srv.Wait() }()

		// The observability endpoint serves from process start: metrics,
		// health, and the pprof index must all answer before any round
		// completes (and, in the crash arm, before the SIGKILL fires).
		pollHTTP(t, name+" pre-crash", "http://"+maddr+"/metrics", "apf_round")
		for _, path := range []string{"/healthz", "/debug/pprof/"} {
			if _, err := httpGetBody("http://" + maddr + path); err != nil {
				t.Errorf("%s: %s unreachable: %v", name, path, err)
			}
		}

		results := make([]*ClientResult, clients)
		errs := make([]error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			cname := fmt.Sprintf("shard-%d", i)
			cfg := ClientConfig{
				Addr:       addr,
				Name:       cname,
				SessionKey: cname,
				Model:      p.Model,
				Optimizer:  p.Optimizer,
				Manager: func(clientID, dim int) fl.SyncManager {
					return core.NewManager(core.Config{
						Dim: dim, CheckEveryRounds: 2, Threshold: 0.1, EMAAlpha: 0.85, Seed: seed,
					})
				},
				Data:           p.Data,
				Indices:        parts[i],
				LocalIters:     4,
				BatchSize:      p.Batch,
				Seed:           seed + int64(i),
				MaxRetries:     100,
				RetryBaseDelay: 20 * time.Millisecond,
				RetryMaxDelay:  300 * time.Millisecond,
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = RunClient(ctx, cfg)
			}(i)
			time.Sleep(150 * time.Millisecond)
		}

		if killRound >= 0 {
			// The chaos fault SIGKILLs the server at the scripted round.
			// Wait for the corpse, then restart against the same checkpoint
			// directory — without the chaos flag this time.
			if err := <-srvDone; err == nil {
				t.Fatalf("%s: server exited cleanly; the kill fault never fired", name)
			}
			srv2 := exec.CommandContext(ctx, bin, args...)
			srv2.Stdout, srv2.Stderr = os.Stderr, os.Stderr
			if err := srv2.Start(); err != nil {
				t.Fatalf("%s: restart server: %v", name, err)
			}
			srvDone = make(chan error, 1)
			go func() { srvDone <- srv2.Wait() }()

			// Post-recovery observability: the restarted process reports
			// the recovery in its counters and health, and its update
			// accounting stays internally consistent mid-run.
			body := pollHTTP(t, name+" post-recovery", "http://"+maddr+"/metrics", "apf_recoveries_total 1")
			m := parseMetricsText(t, body)
			recv, acc, rej, stale := updateCounts(m)
			if acc+rej+stale > recv {
				t.Errorf("%s: classified %v+%v+%v updates but only %v received",
					name, acc, rej, stale, recv)
			}
			if hz, err := httpGetBody("http://" + maddr + "/healthz"); err != nil {
				t.Errorf("%s: /healthz after recovery: %v", name, err)
			} else if !strings.Contains(hz, `"recovered":true`) {
				t.Errorf("%s: /healthz does not report the recovery: %s", name, hz)
			}
		}

		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s: client %d: %v", name, i, err)
			}
		}
		if err := <-srvDone; err != nil {
			t.Fatalf("%s: server: %v", name, err)
		}
		return results[0].FinalModel
	}

	clean := runArm("clean", -1)
	// Round 6: the classic mid-run crash. Round 0: the nastiest window —
	// the base snapshot is on disk but nothing has committed, so recovery
	// restarts from a generation-0 checkpoint with an empty history.
	for _, killRound := range []int{6, 0} {
		crashed := runArm(fmt.Sprintf("crashed@%d", killRound), killRound)
		if len(clean) != len(crashed) {
			t.Fatalf("kill@%d: model dims differ: %d vs %d", killRound, len(clean), len(crashed))
		}
		diffs := 0
		for j := range clean {
			if clean[j] != crashed[j] {
				diffs++
			}
		}
		if diffs != 0 {
			t.Fatalf("kill@%d: crash-and-recover diverged from the uninterrupted run at %d/%d scalars",
				killRound, diffs, len(clean))
		}
	}
}

// httpGetBody fetches url with a short timeout and returns the body of a
// 200 response.
func httpGetBody(url string) (string, error) {
	c := http.Client{Timeout: 2 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// pollHTTP polls url until its body contains want (the target process may
// still be binding its listener), failing the test after 30 seconds.
func pollHTTP(t *testing.T, label, url, want string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		body, err := httpGetBody(url)
		if err == nil && strings.Contains(body, want) {
			return body
		}
		if err == nil {
			lastErr = fmt.Errorf("body does not contain %q", want)
		} else {
			lastErr = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s: %s never served %q: %v", label, url, want, lastErr)
	return ""
}

// freeAddr reserves a loopback port and releases it for the server
// process to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}
