package transport

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/nn"
	"apf/internal/stats"
	"apf/internal/telemetry"
)

// singleSampleSetup builds a dataset and per-client single-sample
// partitions. With one sample per client the batcher's shuffle is a no-op,
// so a client's training trajectory depends only on its partition — not on
// the server-assigned client ID, which differs between a flat cluster and
// a relay's local numbering. That isolation is what lets the flat and
// two-tier runs below be compared bitwise.
func singleSampleSetup(clients int) (*data.Dataset, [][]int, []float64) {
	ds := data.SynthImages(data.ImageConfig{Classes: 3, Channels: 1, Size: 6,
		Samples: clients, NoiseStd: 0.5, Seed: 5})
	parts := make([][]int, clients)
	for i := range parts {
		parts[i] = []int{i}
	}
	init := nn.FlattenParams(tinyModel(stats.SplitRNG(5, 99)).Params(), nil)
	return ds, parts, init
}

// runClientsAgainst drives one RunClient per partition slice against addr
// and returns the results, failing the test on any client error.
func runClientsAgainst(ctx context.Context, t *testing.T, addr string, ds *data.Dataset, parts [][]int) []*ClientResult {
	t.Helper()
	results := make([]*ClientResult, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunClient(ctx, ClientConfig{
				Addr:       addr,
				Name:       "client",
				Model:      tinyModel,
				Optimizer:  tinySGD,
				Manager:    func(clientID, dim int) fl.SyncManager { return fl.NewPassthroughManager(4) },
				Data:       ds,
				Indices:    parts[i],
				LocalIters: 3,
				BatchSize:  1,
				Seed:       5,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	return results
}

// TestTwoTierBitExactVsFlat is the topology-refactor acceptance test: the
// same four clients run once against a flat coordinator and once split
// across two real-TCP relays under a root, and every committed artifact —
// root global, both relay globals, and all client models — must match the
// flat run bit for bit. It also pins the two-tier telemetry identity
// (accepted + rejected + stale == received on every engine) and the
// relay-specific handles.
func TestTwoTierBitExactVsFlat(t *testing.T) {
	const (
		clients  = 4
		perRelay = 2
		rounds   = 4
	)
	ds, parts, init := singleSampleSetup(clients)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Flat reference run.
	flatSrv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: clients, Rounds: rounds, Init: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	var flatGlobal []float64
	flatErr := make(chan error, 1)
	go func() {
		g, err := flatSrv.Run(ctx)
		flatGlobal = g
		flatErr <- err
	}()
	flatResults := runClientsAgainst(ctx, t, flatSrv.Addr().String(), ds, parts)
	if err := <-flatErr; err != nil {
		t.Fatalf("flat server: %v", err)
	}

	// Two-tier run: root over two relays, two clients each.
	rootReg := telemetry.New()
	root, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Relays: 2, Rounds: rounds, Init: init, Metrics: rootReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rootGlobal []float64
	rootErr := make(chan error, 1)
	go func() {
		g, err := root.Run(ctx)
		rootGlobal = g
		rootErr <- err
	}()

	relayRegs := [2]*telemetry.Registry{telemetry.New(), telemetry.New()}
	relays := make([]*Relay, 2)
	relayGlobals := make([][]float64, 2)
	relayErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		rel, err := NewRelay(RelayConfig{
			Addr:       "127.0.0.1:0",
			Upstream:   root.Addr().String(),
			Name:       []string{"edge-a", "edge-b"}[i],
			SessionKey: []string{"edge-a", "edge-b"}[i],
			NumClients: perRelay,
			Seed:       5,
			Metrics:    relayRegs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		relays[i] = rel
		go func(i int) {
			g, err := rel.Run(ctx)
			relayGlobals[i] = g
			relayErrs <- err
		}(i)
	}

	var wg sync.WaitGroup
	tierResults := make([][]*ClientResult, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tierResults[i] = runClientsAgainst(ctx, t, relays[i].Addr().String(), ds, parts[i*perRelay:(i+1)*perRelay])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-relayErrs; err != nil {
			t.Fatalf("relay %d: %v", i, err)
		}
	}
	if err := <-rootErr; err != nil {
		t.Fatalf("root: %v", err)
	}

	// Bit-exactness across the whole hierarchy.
	if len(rootGlobal) != len(flatGlobal) {
		t.Fatalf("root global dim %d, flat %d", len(rootGlobal), len(flatGlobal))
	}
	for j := range flatGlobal {
		if rootGlobal[j] != flatGlobal[j] {
			t.Fatalf("root global differs from flat at %d: %v vs %v", j, rootGlobal[j], flatGlobal[j])
		}
	}
	for i, g := range relayGlobals {
		for j := range flatGlobal {
			if g[j] != flatGlobal[j] {
				t.Fatalf("relay %d global differs from flat at %d", i, j)
			}
		}
	}
	for i := 0; i < 2; i++ {
		for c, res := range tierResults[i] {
			flat := flatResults[i*perRelay+c]
			for j := range flat.FinalModel {
				if res.FinalModel[j] != flat.FinalModel[j] {
					t.Fatalf("relay %d client %d model differs from flat client at %d", i, c, j)
				}
			}
			if res.Rounds != rounds {
				t.Errorf("relay %d client %d rounds = %d, want %d", i, c, res.Rounds, rounds)
			}
		}
	}

	// Relay upstream traffic actually happened and was accounted.
	for i, rel := range relays {
		read, written := rel.UpstreamBytes()
		if read <= 0 || written <= 0 {
			t.Errorf("relay %d upstream bytes r=%d w=%d, want both > 0", i, read, written)
		}
	}

	// Engine telemetry identity holds on every tier, and the relay handles
	// carry the expected counts.
	checkIdentity := func(name string, snap map[string]float64, wantAccepted float64) {
		recv := snap["apf_updates_received_total"]
		acc := snap[`apf_updates_total{result="accepted"}`]
		rej := snap[`apf_updates_total{result="rejected"}`]
		stale := snap[`apf_updates_total{result="stale"}`]
		if acc+rej+stale != recv {
			t.Errorf("%s: accepted %v + rejected %v + stale %v != received %v", name, acc, rej, stale, recv)
		}
		if acc != wantAccepted {
			t.Errorf("%s: accepted = %v, want %v", name, acc, wantAccepted)
		}
	}
	checkIdentity("root", rootReg.Snapshot(), 2*rounds) // one partial per relay per round
	for i, reg := range relayRegs {
		snap := reg.Snapshot()
		checkIdentity([]string{"relay 0", "relay 1"}[i], snap, perRelay*rounds)
		if got := snap["apf_relay_partials_total"]; got != rounds {
			t.Errorf("relay %d partials = %v, want %d", i, got, rounds)
		}
		if got := snap["apf_relay_sessions"]; got != perRelay {
			t.Errorf("relay %d session gauge = %v, want %d", i, got, perRelay)
		}
		if got := snap["apf_relay_upstream_seconds"]; got != rounds {
			t.Errorf("relay %d upstream RTT observations = %v, want %d", i, got, rounds)
		}
	}
}

// TestRootRejectsTrimmedReduction pins the documented non-decomposability:
// a trimmed reduction needs every per-client value per coordinate, which a
// pre-aggregated partial sum has already folded away.
func TestRootRejectsTrimmedReduction(t *testing.T) {
	_, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Relays: 2, Rounds: 1, Init: []float64{0, 0},
		Reduction: fl.ReduceTrimmed,
	})
	if err == nil || !strings.Contains(err.Error(), "does not decompose") {
		t.Fatalf("trimmed reduction on the root tier: err = %v, want non-decomposability rejection", err)
	}
}

// TestRootRejectsValidator pins that inbound sanitization must live on the
// relays, the only tier that sees per-client payloads.
func TestRootRejectsValidator(t *testing.T) {
	_, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Relays: 2, Rounds: 1, Init: []float64{0, 0},
		Validator: &ValidatorConfig{},
	})
	if err == nil || !strings.Contains(err.Error(), "per-client payloads") {
		t.Fatalf("validator on the root tier: err = %v, want per-client-payload rejection", err)
	}
}

func TestNewRelayValidation(t *testing.T) {
	if _, err := NewRelay(RelayConfig{Upstream: "127.0.0.1:1", NumClients: 0}); err == nil {
		t.Error("NewRelay accepted zero clients")
	}
	if _, err := NewRelay(RelayConfig{NumClients: 2}); err == nil {
		t.Error("NewRelay accepted an empty upstream address")
	}
	if _, err := NewRelay(RelayConfig{Upstream: "127.0.0.1:1", NumClients: 2}); err == nil {
		t.Error("NewRelay accepted an empty session key")
	}
}
