package transport

// O(diff) resume: when a client's round has fallen off the server's
// bounded replay history (ServerConfig.HistoryRounds), the wire-v4
// catch-up sub-protocol replaces the full-history replay. The server
// keeps a shadow replica of the clients' deterministic manager state —
// the manager is a pure function of the committed global trajectory, so
// observing each commit reproduces every client's post-apply state bit
// for bit — and a returning client reconciles against it in one of two
// modes, chosen by its opening ResumeOffer:
//
//   - sketch (O(diff) bytes): the server streams rateless-IBLT cells
//     coded over its (mask-word, generation) set until the client's
//     decoder peels the symmetric difference; the client answers with
//     the diff word indices and receives exactly those words' state
//     (DeltaMsg). Cost scales with how much state actually changed,
//     not with the absence length or the model size.
//   - snapshot (O(dim) bytes): the full current model plus the
//     checkpoint-encoded manager snapshot in one bounded frame.
//     Cost is flat in the absence length; the fallback for stateless
//     managers, relays (always-dense tier), non-converging sketches,
//     and clients that lost their local state entirely.
//
// Either mode ends with the client bit-identical to a never-severed
// twin, because both rebuild the exact replica state the replay would
// have produced. Server memory stays O(dim + sessions): the bounded
// history plus one shadow manager.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"apf/internal/checkpoint"
	"apf/internal/core"
	"apf/internal/nn"
	"apf/internal/recon"
	"apf/internal/wire"
)

// ErrFutureGeneration is returned (wrapped) when a catch-up peer's mask
// generation is ahead of the server's: the client claims freezing state
// the server never produced, so no reconciliation can be trusted. The
// client fails fast (not retryable); the server logs and drops the
// connection.
var ErrFutureGeneration = errors.New("transport: mask generation ahead of the server")

// snapshotPayloadLimit bounds a catch-up frame (SnapshotMsg, DeltaMsg):
// the manager snapshot carries ~8 dim-length arrays (64 B/scalar) and a
// delta word block peaks near 66 B/scalar, so 80·dim plus slack admits
// both while still rejecting hostile length fields before allocation.
func snapshotPayloadLimit(dim int) int { return dim*80 + 4096 }

// Sketch batches double from 16 cells up to 1024 per round trip: tiny
// diffs decode from the first batch, large ones converge in a few
// exchanges without shipping the worst case up front.
const (
	sketchBatchStart = 16
	sketchBatchMax   = 1024
)

// reconManager is the manager surface sketch reconciliation needs:
// per-word generation tracking plus word-granular state import/export
// (core.Manager implements it). Structural, so transport carries no
// hard dependency on the concrete manager.
type reconManager interface {
	WordGens() []uint32
	ExportWordBlock(w int, x []float64) core.WordBlock
	ApplyWordBlock(b core.WordBlock, x []float64) error
	SyncHeader() core.SyncHeader
	ApplySyncHeader(h core.SyncHeader) error
}

// snapshotRestorer is the manager surface snapshot catch-up needs
// (core.Manager implements it). A stateful manager without it cannot
// adopt a snapshot, which is a configuration error surfaced as a
// protocol violation.
type snapshotRestorer interface {
	RestoreSnapshot(s *core.State) error
}

// shadow is the server-side replica of the clients' manager state,
// advanced at every commit. All fields are guarded by Server.mu: the
// observe call runs inside commitRound's critical section so a capture
// can never be ahead of or behind the committed history.
type shadow struct {
	cfg core.Config
	mgr *core.Manager
	x   []float64
	// round is the last committed round folded in (-1 none).
	round int
	// broken marks a replica that desynced (a committed payload it could
	// not expand); captures then fall back to the stateless path.
	broken bool
}

// newShadow builds the replica from the same core.Config every client
// manager was built with (Seed included — random freezing draws from it).
func newShadow(cfg core.Config) *shadow {
	return &shadow{
		cfg:   cfg,
		mgr:   core.NewManager(cfg),
		x:     make([]float64, cfg.Dim),
		round: -1,
	}
}

// observe folds one committed aggregate into the replica, exactly as
// every client folds it: rollback on the synchronized state (a no-op
// that refreshes the mask), compact-payload expansion when the commit
// was mask-elided, then the download application that runs the
// stability checking. Commits must arrive in round order with no gaps;
// anything else desyncs the replica and marks it broken rather than
// serving wrong state.
func (sh *shadow) observe(g *GlobalMsg) {
	if sh.broken || g.Round <= sh.round {
		return
	}
	if g.Round != sh.round+1 {
		sh.broken = true
		return
	}
	sh.mgr.PostIterate(g.Round, sh.x)
	dense := g.Payload
	if len(dense) != len(sh.x) {
		if sh.mgr.CompactLen(g.Round) != len(dense) {
			sh.broken = true
			return
		}
		dense = sh.mgr.ExpandDownload(g.Round, dense)
	}
	sh.mgr.ApplyDownload(g.Round, sh.x, dense)
	sh.round = g.Round
}

// restore overwrites the replica from a snapshot frame (a relay
// adopting the root's state after its own catch-up).
func (sh *shadow) restore(round int, payload []float64, manager []byte) error {
	st, err := checkpoint.DecodeManager(manager)
	if err != nil {
		return err
	}
	if err := sh.mgr.RestoreSnapshot(st); err != nil {
		return err
	}
	copy(sh.x, payload)
	sh.round = round
	sh.broken = false
	return nil
}

// catchupCapture is one atomic cut of the server's catch-up state,
// taken under Server.mu at resume time and then served without locks:
// the conversation never blocks the round loop, and commits that land
// meanwhile reach the client through its (already positioned) writer
// queue.
type catchupCapture struct {
	cfg   core.Config
	round int
	// gen is the captured mask generation (-1 for the stateless path).
	gen int
	x   []float64
	// state is the manager snapshot; nil on the stateless path, where
	// only Round and x ship.
	state *core.State
}

// captureLocked cuts the current catch-up state. Caller holds s.mu.
// Returns nil when no consistent capture exists (broken shadow and no
// dense last commit), in which case the resume is refused.
func (s *Server) captureLocked() *catchupCapture {
	done := s.histBase + len(s.history)
	if done == 0 {
		return nil
	}
	last := done - 1
	if sh := s.shadow; sh != nil && !sh.broken && sh.round == last {
		return &catchupCapture{
			cfg:   sh.cfg,
			round: last,
			gen:   sh.mgr.MaskGeneration(),
			x:     append([]float64(nil), sh.x...),
			state: sh.mgr.Snapshot(),
		}
	}
	if s.lastDenseRound == last {
		return &catchupCapture{round: last, gen: -1, x: append([]float64(nil), s.lastDense...)}
	}
	return nil
}

// catchupSession drives one catch-up conversation to completion and
// then promotes the connection to a normal session (writer + reader).
// It runs on its own goroutine; the session's writer is not started
// until the conversation ends, so queued aggregate frames can never
// interleave with catch-up frames.
func (s *Server) catchupSession(sess *session, gen int, cc *countingConn, cap *catchupCapture) {
	start := time.Now()
	r0, w0 := cc.Counts()
	mode, err := s.runCatchup(cc, cap)
	if s.metrics != nil {
		r1, w1 := cc.Counts()
		s.metrics.catchupBytes.Observe(float64((r1 - r0) + (w1 - w0)))
		s.metrics.catchupSeconds.Observe(time.Since(start).Seconds())
		switch mode {
		case "sketch":
			s.metrics.resumeSketch.Inc()
		case "snapshot":
			s.metrics.resumeSnapshot.Inc()
		}
	}
	if err != nil {
		s.log.Warn("catch-up failed", "client", sess.id, "name", sess.name,
			"mode", mode, "err", err)
		s.detach(sess, gen)
		s.post(event{id: sess.id, name: sess.name, err: err})
		return
	}
	s.log.Info("catch-up complete", "client", sess.id, "name", sess.name,
		"mode", mode, "round", cap.round, "seconds", time.Since(start).Seconds())
	go s.writer(sess, gen)
	go s.reader(sess, gen, cc)
}

// runCatchup reads the client's opening offer and serves the chosen
// mode. Returns the mode actually served ("sketch"/"snapshot") for
// accounting; mode is best-effort on errors.
func (s *Server) runCatchup(cc *countingConn, cap *catchupCapture) (string, error) {
	m, err := readMsg(cc, s.cfg.IOTimeout, modelPayloadLimit(len(s.cfg.Init)), s.wireM)
	if err != nil {
		return "", err
	}
	offer, ok := m.(*wire.ResumeOfferMsg)
	if !ok {
		return "", protocolErrorf("expected a resume offer, got %s", m.WireKind())
	}
	if offer.NeedMore || offer.Words != nil {
		return "", protocolErrorf("catch-up opened mid-conversation (need-more=%v, %d words)",
			offer.NeedMore, len(offer.Words))
	}
	if offer.MaskGen > cap.gen {
		return "", fmt.Errorf("%w: client offers generation %d, server captured %d",
			ErrFutureGeneration, offer.MaskGen, cap.gen)
	}
	if offer.MaskGen < 0 || cap.state == nil || len(cap.state.WordGen) == 0 {
		return "snapshot", s.sendSnapshot(cc, cap)
	}
	return s.serveSketch(cc, cap)
}

// sendSnapshot ships the captured state in one frame: the canonical
// post-round model, plus the manager snapshot when the capture has one.
func (s *Server) sendSnapshot(cc *countingConn, cap *catchupCapture) error {
	msg := &wire.SnapshotMsg{Round: cap.round, MaskGen: cap.gen, Payload: cap.x}
	if cap.state != nil {
		msg.Manager = checkpoint.EncodeManager(cap.state)
	}
	return writeMsg(cc, s.cfg.IOTimeout, msg, s.wireM)
}

// serveSketch streams coded cells over the capture's (word, generation)
// set in doubling batches, lockstep with the client's offers, until the
// client reports the decoded diff (answered with a DeltaMsg) or either
// side gives up (answered with the snapshot). The total cell budget
// bounds a hostile or hopeless decoder: past ~2 cells per word the
// sketch cannot beat the snapshot it is trying to avoid.
func (s *Server) serveSketch(cc *countingConn, cap *catchupCapture) (string, error) {
	enc := recon.NewEncoder()
	for w, g := range cap.state.WordGen {
		enc.Add(recon.PackWordGen(w, g))
	}
	words := len(cap.state.WordGen)
	budget := 2*words + 128
	limit := modelPayloadLimit(len(s.cfg.Init))
	sent := 0
	batch := sketchBatchStart
	for {
		n := batch
		if batch < sketchBatchMax {
			batch *= 2
		}
		if sent+n > budget {
			n = budget - sent
		}
		if n <= 0 {
			return "snapshot", s.sendSnapshot(cc, cap)
		}
		sm := &wire.SketchMsg{Round: cap.round, MaskGen: cap.gen, Start: sent,
			Cells: make([]recon.Cell, n)}
		for i := range sm.Cells {
			sm.Cells[i] = enc.Next()
		}
		if err := writeMsg(cc, s.cfg.IOTimeout, sm, s.wireM); err != nil {
			return "sketch", err
		}
		sent += n
		m, err := readMsg(cc, s.cfg.IOTimeout, limit, s.wireM)
		if err != nil {
			return "sketch", err
		}
		offer, ok := m.(*wire.ResumeOfferMsg)
		if !ok {
			return "sketch", protocolErrorf("expected a resume offer, got %s", m.WireKind())
		}
		switch {
		case offer.MaskGen > cap.gen:
			return "sketch", fmt.Errorf("%w: client offers generation %d, server captured %d",
				ErrFutureGeneration, offer.MaskGen, cap.gen)
		case offer.Words != nil:
			return "sketch", s.sendDelta(cc, cap, offer.Words)
		case offer.NeedMore:
			continue
		case offer.MaskGen < 0:
			// The client's decoder gave up; it is now awaiting the snapshot.
			return "snapshot", s.sendSnapshot(cc, cap)
		default:
			return "sketch", protocolErrorf("resume offer neither requests cells nor closes the sketch")
		}
	}
}

// sendDelta closes a decoded sketch: the manager-global header plus the
// full state of exactly the requested words, exported from a private
// restore of the captured snapshot (the shared shadow keeps advancing
// meanwhile). Indices are validated and deduplicated before any export,
// so a hostile word list cannot amplify the response past one model.
func (s *Server) sendDelta(cc *countingConn, cap *catchupCapture, words []int) error {
	mgr, err := core.Restore(cap.cfg, cap.state)
	if err != nil {
		return fmt.Errorf("transport: restore capture for delta: %w", err)
	}
	total := mgr.Words()
	if len(words) > total {
		return protocolErrorf("delta requests %d words, model has %d", len(words), total)
	}
	d := &wire.DeltaMsg{Round: cap.round, MaskGen: cap.gen, Header: mgr.SyncHeader()}
	seen := make(map[int]bool, len(words))
	for _, w := range words {
		if w < 0 || w >= total || seen[w] {
			return protocolErrorf("delta word index %d out of range or duplicated", w)
		}
		seen[w] = true
		d.Words = append(d.Words, mgr.ExportWordBlock(w, cap.x))
	}
	return writeMsg(cc, s.cfg.IOTimeout, d, s.wireM)
}

// stageJump hands a snapshot adopted from upstream (relay catch-up) to
// the engine's commitJump, which consumes it via takeJump.
func (s *Server) stageJump(snap *wire.SnapshotMsg) {
	s.mu.Lock()
	s.jumpSnap = snap
	s.mu.Unlock()
}

// takeJump consumes the staged jump snapshot.
func (s *Server) takeJump() *wire.SnapshotMsg {
	s.mu.Lock()
	snap := s.jumpSnap
	s.jumpSnap = nil
	s.mu.Unlock()
	return snap
}

// catchUp is the client side of the conversation, entered when the
// resume welcome carries CatchUp. It opens in sketch mode when the
// manager tracks word generations and the server has a stateful capture
// to reconcile against; otherwise it requests the snapshot outright.
func (r *clientRun) catchUp(conn *countingConn, w *WelcomeMsg) error {
	own := -1
	if r.maskGenR != nil {
		own = r.maskGenR.MaskGeneration()
	}
	if own > w.MaskGen {
		// The server cannot reproduce freezing state this client already
		// holds (rolled-back server, or a stateless server behind stateful
		// clients): fail fast instead of adopting a regressed replica.
		return fmt.Errorf("%w: local generation %d, server offers %d",
			ErrFutureGeneration, own, w.MaskGen)
	}
	rm, sketchable := r.manager.(reconManager)
	var dec *recon.Decoder
	offer := &wire.ResumeOfferMsg{Round: r.applied, MaskGen: -1}
	if sketchable && r.applied >= 0 && w.MaskGen >= 0 {
		offer.MaskGen = own
		dec = recon.NewDecoder()
		for wi, g := range rm.WordGens() {
			dec.AddLocal(recon.PackWordGen(wi, g))
		}
	}
	if err := writeMsg(conn, r.cfg.IOTimeout, offer, r.wireM); err != nil {
		return fmt.Errorf("transport: catch-up offer: %w", err)
	}
	budget := 2*((r.dim+63)/64) + 64
	for {
		m, err := readMsg(conn, r.cfg.IOTimeout, snapshotPayloadLimit(r.dim), r.wireM)
		if err != nil {
			return fmt.Errorf("transport: catch-up: %w", err)
		}
		switch msg := m.(type) {
		case *wire.SketchMsg:
			if dec == nil {
				return protocolErrorf("sketch cells on a snapshot catch-up")
			}
			if len(msg.Cells) == 0 {
				return protocolErrorf("empty sketch batch")
			}
			if msg.Start != dec.Cells() {
				return protocolErrorf("sketch batch starts at cell %d, decoder expects %d",
					msg.Start, dec.Cells())
			}
			for _, c := range msg.Cells {
				dec.AddCell(c)
			}
			reply := &wire.ResumeOfferMsg{Round: r.applied, MaskGen: own}
			switch {
			case dec.Decoded():
				reply.Words = diffWords(dec)
			case dec.Cells() >= budget:
				// Not converging (heavy diff): bail to the snapshot, which
				// this conversation's next frame will be.
				reply.MaskGen = -1
				dec = nil
			default:
				reply.NeedMore = true
			}
			if err := writeMsg(conn, r.cfg.IOTimeout, reply, r.wireM); err != nil {
				return fmt.Errorf("transport: catch-up reply: %w", err)
			}
		case *wire.DeltaMsg:
			if rm == nil || dec != nil && !dec.Decoded() {
				return protocolErrorf("delta before the sketch decoded")
			}
			return r.applyDelta(rm, msg)
		case *wire.SnapshotMsg:
			// The server may force the snapshot at any point (budget
			// exhausted, stateless capture).
			return r.applySnapshot(msg)
		default:
			return protocolErrorf("catch-up: unexpected %s frame", m.WireKind())
		}
	}
}

// diffWords maps the decoded symmetric difference to sorted, unique
// mask-word indices: a word differs if either side holds a generation
// symbol for it the other lacks.
func diffWords(dec *recon.Decoder) []int {
	seen := make(map[int]bool)
	words := []int{}
	add := func(ss []recon.Symbol) {
		for _, s := range ss {
			if w := s.Word(); !seen[w] {
				seen[w] = true
				words = append(words, w)
			}
		}
	}
	add(dec.Remote())
	add(dec.Missing())
	sort.Ints(words)
	return words
}

// applyDelta merges a sketch-mode delta: the full state of exactly the
// differing words, plus the manager-global header. Words with equal
// generations are bit-identical by the replica-identity invariant, so
// the untouched remainder of the local state is already the server's.
func (r *clientRun) applyDelta(rm reconManager, d *wire.DeltaMsg) error {
	if d.Round <= r.applied {
		return protocolErrorf("catch-up delta for round %d at applied round %d", d.Round, r.applied)
	}
	for i := range d.Words {
		if err := rm.ApplyWordBlock(d.Words[i], r.x); err != nil {
			return protocolErrorf("catch-up delta word %d: %v", d.Words[i].Word, err)
		}
	}
	if err := rm.ApplySyncHeader(d.Header); err != nil {
		return protocolErrorf("catch-up delta header: %v", err)
	}
	r.finishCatchUp(d.Round, len(d.Words), "sketch")
	return nil
}

// applySnapshot adopts a snapshot frame: model payload, and — for
// stateful managers — the manager snapshot. Also the handler for a
// mid-run snapshot broadcast (the server jumped its history forward
// after its own upstream catch-up).
func (r *clientRun) applySnapshot(sm *wire.SnapshotMsg) error {
	if sm.Round <= r.applied {
		return protocolErrorf("snapshot for round %d at applied round %d", sm.Round, r.applied)
	}
	if len(sm.Payload) != r.dim {
		return protocolErrorf("snapshot payload length %d, model has %d", len(sm.Payload), r.dim)
	}
	if sr, ok := r.manager.(snapshotRestorer); ok {
		if len(sm.Manager) == 0 {
			return protocolErrorf("snapshot carries no manager state for a stateful manager")
		}
		st, err := checkpoint.DecodeManager(sm.Manager)
		if err != nil {
			return protocolErrorf("snapshot manager state: %v", err)
		}
		if err := sr.RestoreSnapshot(st); err != nil {
			return protocolErrorf("snapshot manager state: %v", err)
		}
	}
	copy(r.x, sm.Payload)
	r.finishCatchUp(sm.Round, 0, "snapshot")
	return nil
}

// finishCatchUp installs the reconciled state as the applied round:
// model parameters, round cursor, in-flight update (now superseded),
// accounting, and the OnRound callback — the same post-apply surface
// applyGlobal presents.
func (r *clientRun) finishCatchUp(round, words int, mode string) {
	nn.SetFlat(r.params, r.x)
	from := r.applied
	r.applied = round
	r.inflight = nil
	if r.metrics != nil {
		r.metrics.round.Set(float64(round))
		switch mode {
		case "sketch":
			r.metrics.catchupSketch.Inc()
		case "snapshot":
			r.metrics.catchupSnapshot.Inc()
		}
	}
	r.log.Info("caught up", "mode", mode, "from", from, "round", round, "diff_words", words)
	if r.cfg.OnRound != nil {
		r.cfg.OnRound(round, r.x)
	}
}
