package transport

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"apf/internal/compress"
	"apf/internal/core"
	"apf/internal/data"
	"apf/internal/fl"
	"apf/internal/nn"
	"apf/internal/opt"
	"apf/internal/stats"
)

// tinyModel builds a small model over flattened 6×6 images.
func tinyModel(rng *rand.Rand) *nn.Network {
	return nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(rng, "fc1", 36, 12),
		nn.NewTanh(),
		nn.NewDense(rng, "fc2", 12, 3),
	)
}

func tinySGD(p []*nn.Param) opt.Optimizer { return opt.NewSGD(p, 0.3, 0, 0) }

// runCluster spins up a server and clients over loopback and returns the
// per-client results and the server.
func runCluster(t *testing.T, clients, rounds int, mf fl.ManagerFactory) ([]*ClientResult, *Server, []float64) {
	t.Helper()
	ds := data.SynthImages(data.ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 90, NoiseStd: 0.5, Seed: 5})
	rng := stats.SplitRNG(5, 50)
	parts := data.PartitionIID(rng, ds.Len(), clients)

	initNet := tinyModel(stats.SplitRNG(5, 99))
	init := nn.FlattenParams(initNet.Params(), nil)

	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: clients,
		Rounds:     rounds,
		Init:       init,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var serverGlobal []float64
	serverErr := make(chan error, 1)
	go func() {
		g, err := srv.Run(ctx)
		serverGlobal = g
		serverErr <- err
	}()

	results := make([]*ClientResult, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunClient(ctx, ClientConfig{
				Addr:       srv.Addr().String(),
				Name:       "client",
				Model:      tinyModel,
				Optimizer:  tinySGD,
				Manager:    mf,
				Data:       ds,
				Indices:    parts[i],
				LocalIters: 3,
				BatchSize:  10,
				Seed:       5,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	return results, srv, serverGlobal
}

func TestTCPClusterWithPassthrough(t *testing.T) {
	mf := func(clientID, dim int) fl.SyncManager { return fl.NewPassthroughManager(4) }
	results, _, global := runCluster(t, 3, 5, mf)

	// All clients end with the identical final model, equal to the
	// server's last aggregate.
	for c := 1; c < 3; c++ {
		for j := range results[0].FinalModel {
			if results[c].FinalModel[j] != results[0].FinalModel[j] {
				t.Fatalf("client %d model diverged at %d", c, j)
			}
		}
	}
	for j := range global {
		if math.Abs(global[j]-results[0].FinalModel[j]) > 1e-12 {
			t.Fatalf("server global differs from client model at %d", j)
		}
	}
	if results[0].Rounds != 5 {
		t.Errorf("rounds = %d, want 5", results[0].Rounds)
	}
}

func TestTCPClusterWithAPFSavesWireBytes(t *testing.T) {
	const clients, rounds = 2, 24
	apfFactory := func(clientID, dim int) fl.SyncManager {
		return core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			Threshold:        0.25,
			EMAAlpha:         0.9,
			Seed:             7,
		})
	}
	apfResults, apfSrv, _ := runCluster(t, clients, rounds, apfFactory)

	baseFactory := func(clientID, dim int) fl.SyncManager { return fl.NewPassthroughManager(4) }
	baseResults, baseSrv, _ := runCluster(t, clients, rounds, baseFactory)

	// Manager-reported accounting must show savings...
	if apfResults[0].UpBytes >= baseResults[0].UpBytes {
		t.Errorf("APF reported up bytes %d not below baseline %d",
			apfResults[0].UpBytes, baseResults[0].UpBytes)
	}
	// ...and so must the real TCP byte counters, since frozen scalars
	// never enter the wire payload.
	apfRead, apfSent := apfSrv.WireBytes()
	baseRead, baseSent := baseSrv.WireBytes()
	if apfRead >= baseRead || apfSent >= baseSent {
		t.Errorf("APF wire bytes (r=%d s=%d) not below baseline (r=%d s=%d)",
			apfRead, apfSent, baseRead, baseSent)
	}

	// Clients stay consistent under compact payloads.
	for j := range apfResults[0].FinalModel {
		if apfResults[0].FinalModel[j] != apfResults[1].FinalModel[j] {
			t.Fatal("APF clients diverged over the real transport")
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{NumClients: 0, Rounds: 1, Init: []float64{1}}); err == nil {
		t.Error("accepted zero clients")
	}
	if _, err := NewServer(ServerConfig{NumClients: 1, Rounds: 0, Init: []float64{1}}); err == nil {
		t.Error("accepted zero rounds")
	}
	if _, err := NewServer(ServerConfig{NumClients: 1, Rounds: 1}); err == nil {
		t.Error("accepted empty init model")
	}
}

func TestClientConfigValidation(t *testing.T) {
	_, err := RunClient(context.Background(), ClientConfig{LocalIters: 0, BatchSize: 1})
	if err == nil {
		t.Error("accepted zero local iters")
	}
}

func TestClientContextCancellation(t *testing.T) {
	// A server that never answers: the client must honour cancellation.
	srv, err := NewServer(ServerConfig{
		Addr:       "127.0.0.1:0",
		NumClients: 2, // never fulfilled
		Rounds:     1,
		Init:       []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go srv.Run(ctx)

	ds := data.SynthImages(data.ImageConfig{Classes: 3, Channels: 1, Size: 6, Samples: 9, NoiseStd: 0.5, Seed: 5})
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(ctx, ClientConfig{
			Addr:       srv.Addr().String(),
			Model:      tinyModel,
			Optimizer:  tinySGD,
			Manager:    func(int, int) fl.SyncManager { return fl.NewPassthroughManager(4) },
			Data:       ds,
			Indices:    []int{0, 1, 2},
			LocalIters: 1,
			BatchSize:  3,
		})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("client returned nil error after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not return after cancellation")
	}
}

func TestCheckUpdatesAndWeightedMean(t *testing.T) {
	ups := []*UpdateMsg{
		{Payload: []float64{1, 2}, Weight: 1},
		{Payload: []float64{3, 6}, Weight: 3},
	}
	if err := checkUpdates(0, ups); err != nil {
		t.Fatal(err)
	}
	agg := fl.NewAggregator(1)
	defer agg.Close()
	out := make([]float64, 2)
	if !agg.WeightedMean(out, [][]float64{ups[0].Payload, ups[1].Payload}, []float64{1, 3}) {
		t.Fatal("WeightedMean reported nothing to aggregate")
	}
	if out[0] != 2.5 || out[1] != 5 {
		t.Errorf("aggregate = %v, want [2.5 5]", out)
	}

	if err := checkUpdates(0, nil); err == nil {
		t.Error("accepted empty updates")
	}
	if err := checkUpdates(0, []*UpdateMsg{nil, nil}); err == nil {
		t.Error("accepted all-absent updates")
	}
	if err := checkUpdates(0, []*UpdateMsg{{Payload: []float64{1}}, {Payload: []float64{1, 2}}}); err == nil {
		t.Error("accepted mismatched payload lengths")
	}
	if err := checkUpdates(0, []*UpdateMsg{{Payload: []float64{1}, Weight: -1}}); err == nil {
		t.Error("accepted negative weight")
	}
	if err := checkUpdates(0, []*UpdateMsg{{Payload: []float64{1}, Weight: math.NaN()}}); err == nil {
		t.Error("accepted NaN weight")
	}
	// Partial rounds skip absent clients.
	if err := checkUpdates(0, []*UpdateMsg{nil, {Payload: []float64{1}, Weight: 1}}); err != nil {
		t.Errorf("rejected a valid partial round: %v", err)
	}
	// Mask divergence is a typed error.
	err := checkUpdates(0, []*UpdateMsg{
		{Payload: []float64{1}, Weight: 1, MaskHash: 7},
		{Payload: []float64{2}, Weight: 1, MaskHash: 8},
	})
	if !errors.Is(err, ErrMaskDivergence) {
		t.Errorf("expected ErrMaskDivergence, got %v", err)
	}
}

func TestTCPClusterWithQuantizedAPF(t *testing.T) {
	// APF wrapped in fp16 quantization must still ride the compact codec
	// (the wrapper delegates CompactUpload/ExpandDownload) and keep the
	// clients consistent.
	mf := func(clientID, dim int) fl.SyncManager {
		return compress.NewQuantized(core.NewManager(core.Config{
			Dim:              dim,
			CheckEveryRounds: 2,
			Threshold:        0.25,
			EMAAlpha:         0.9,
			Seed:             13,
		}))
	}
	results, srv, _ := runCluster(t, 2, 16, mf)
	for j := range results[0].FinalModel {
		if results[0].FinalModel[j] != results[1].FinalModel[j] {
			t.Fatal("quantized APF clients diverged over TCP")
		}
	}
	read, sent := srv.WireBytes()
	if read <= 0 || sent <= 0 {
		t.Fatal("no traffic recorded")
	}
	// Reported payload bytes reflect both compressions (mask + fp16).
	full := int64(len(results[0].FinalModel) * 4 * 16)
	if results[0].UpBytes >= full/2+1 {
		t.Errorf("reported up bytes %d not below fp16 ceiling %d", results[0].UpBytes, full/2)
	}
}
